package core

import (
	"math"
	"math/rand"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
	"optsync/internal/sig"
)

// silentProto models a crashed/silent faulty process.
type silentProto struct{}

func (silentProto) Start(node.Env)                          {}
func (silentProto) Deliver(node.Env, node.ID, node.Message) {}

// testCluster assembles a cluster of n nodes running the given variant with
// f silent faulty processes (the highest-numbered ids), random-walk clocks
// with initial offsets in [0, params.InitialSkew], and uniform delays.
func testCluster(t *testing.T, p bounds.Params, seed int64) *node.Cluster {
	t.Helper()
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid params: %v", err)
	}
	cfg := ConfigFromBounds(p)
	return node.NewCluster(node.Config{
		N: p.N, F: p.F, Seed: seed,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			offset := rng.Float64() * p.InitialSkew
			return clock.NewHardware(offset, p.Rho,
				clock.RandomWalk{Rho: p.Rho, MinDur: p.Period / 7, MaxDur: p.Period}, rng)
		},
		Protocols: func(i int) node.Protocol {
			if i >= p.N-p.F {
				return silentProto{}
			}
			if p.Variant == bounds.Primitive {
				return NewPrimitive(cfg)
			}
			return NewAuth(cfg)
		},
		Faulty: faultySet(p.N, p.F),
	})
}

func faultySet(n, f int) map[int]bool {
	m := make(map[int]bool)
	for i := n - f; i < n; i++ {
		m[i] = true
	}
	return m
}

// runAndSample starts the cluster, samples the skew among correct nodes
// every interval, and returns the max observed skew.
func runAndSample(c *node.Cluster, horizon, interval float64) float64 {
	c.Start()
	maxSkew := 0.0
	for t := interval; t <= horizon; t += interval {
		c.Run(t)
		ids := c.CorrectIDs()
		if s := c.Skew(ids); s > maxSkew {
			maxSkew = s
		}
	}
	return maxSkew
}

func authParams() bounds.Params {
	return bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

func primParams() bounds.Params {
	p := authParams()
	p.N, p.F = 7, 2
	p.Variant = bounds.Primitive
	return p.WithDefaults()
}

func TestAuthAgreementWithinBound(t *testing.T) {
	p := authParams()
	c := testCluster(t, p, 1)
	got := runAndSample(c, 30, 0.05)
	if limit := p.DmaxWithStart(); got > limit {
		t.Fatalf("max skew %v exceeds bound %v", got, limit)
	}
	if got == 0 {
		t.Fatal("skew identically zero: clocks not drifting, test vacuous")
	}
}

func TestPrimitiveAgreementWithinBound(t *testing.T) {
	p := primParams()
	c := testCluster(t, p, 2)
	got := runAndSample(c, 30, 0.05)
	if limit := p.DmaxWithStart(); got > limit {
		t.Fatalf("max skew %v exceeds bound %v", got, limit)
	}
}

func TestAuthLivenessAllRoundsAllNodes(t *testing.T) {
	p := authParams()
	c := testCluster(t, p, 3)
	c.Start()
	c.Run(20.5)
	// Every correct node must have accepted every round 1..19ish; count
	// pulses per round.
	perRound := make(map[int]int)
	maxRound := 0
	for _, r := range c.Pulses {
		perRound[r.Round]++
		if r.Round > maxRound {
			maxRound = r.Round
		}
	}
	if maxRound < 18 {
		t.Fatalf("only %d rounds in 20s with P=1", maxRound)
	}
	correct := p.N - p.F
	for k := 1; k < maxRound; k++ { // last round may be mid-flight
		if perRound[k] != correct {
			t.Fatalf("round %d pulsed by %d/%d correct nodes", k, perRound[k], correct)
		}
	}
}

func TestAcceptanceSpreadWithinBeta(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    bounds.Params
	}{
		{"auth", authParams()},
		{"primitive", primParams()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := testCluster(t, tc.p, 4)
			c.Start()
			c.Run(15)
			first := make(map[int]float64)
			last := make(map[int]float64)
			for _, r := range c.Pulses {
				if v, ok := first[r.Round]; !ok || r.Real < v {
					first[r.Round] = r.Real
				}
				if v, ok := last[r.Round]; !ok || r.Real > v {
					last[r.Round] = r.Real
				}
			}
			beta := tc.p.Beta()
			for k := range first {
				if spread := last[k] - first[k]; spread > beta+1e-9 {
					t.Fatalf("round %d spread %v > beta %v", k, spread, beta)
				}
			}
		})
	}
}

func TestPulsePeriodsWithinBounds(t *testing.T) {
	p := authParams()
	c := testCluster(t, p, 5)
	c.Start()
	c.Run(25)
	// Per-node consecutive pulse separation in [Pmin, Pmax].
	byNode := make(map[node.ID][]float64)
	for _, r := range c.Pulses {
		byNode[r.Node] = append(byNode[r.Node], r.Real)
	}
	pmin, pmax := p.Pmin(), p.Pmax()
	for id, ts := range byNode {
		for i := 1; i < len(ts); i++ {
			d := ts[i] - ts[i-1]
			if d < pmin-1e-9 || d > pmax+1e-9 {
				t.Fatalf("node %d pulse gap %v outside [%v, %v]", id, d, pmin, pmax)
			}
		}
	}
}

// Unforgeability: no round k is accepted before some correct process's
// logical clock could have read k*P (its evidence must originate there).
func TestUnforgeabilityTiming(t *testing.T) {
	p := authParams()
	c := testCluster(t, p, 6)
	c.Start()
	c.Run(15)
	for _, r := range c.Pulses {
		// At acceptance the new value is k*P+alpha; the old clock of the
		// first-ready correct node read k*P at least DMin before any
		// acceptance (evidence needs one hop).
		if r.Real < p.DMin {
			t.Fatalf("round %d accepted at %v, before any message could arrive", r.Round, r.Real)
		}
		wantLogical := float64(r.Round)*p.Period + p.Alpha
		if math.Abs(r.Logical-wantLogical) > 1e-9 {
			t.Fatalf("pulse logical %v, want %v", r.Logical, wantLogical)
		}
	}
}

func TestAuthToleratesMaxFaults(t *testing.T) {
	// n=5 tolerates f=2 silent with authentication (quorum f+1=3 <= n-f=3).
	p := authParams()
	p.F = bounds.Auth.MaxFaults(p.N)
	c := testCluster(t, p, 7)
	c.Start()
	c.Run(10)
	if len(c.Pulses) == 0 {
		t.Fatal("no pulses with maximum tolerated faults")
	}
}

func TestPrimitiveToleratesMaxFaults(t *testing.T) {
	p := primParams()
	p.F = bounds.Primitive.MaxFaults(p.N)
	c := testCluster(t, p, 8)
	c.Start()
	c.Run(10)
	if len(c.Pulses) == 0 {
		t.Fatal("no pulses with maximum tolerated faults")
	}
}

func TestPrimitiveStallsBeyondResilience(t *testing.T) {
	// n=7 with f_actual=3 > floor((n-1)/3)=2 silent faults: the 2f+1=5
	// quorum over f=2 config... With 4 correct and threshold 5, liveness
	// must fail (but safety — no bogus pulses — holds).
	p := primParams() // configured for f=2
	pActual := p
	pActual.F = 2
	cfg := ConfigFromBounds(pActual)
	c := node.NewCluster(node.Config{
		N: p.N, F: 2, Seed: 9,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Protocols: func(i int) node.Protocol {
			if i >= 4 { // 3 silent faulty: beyond resilience
				return silentProto{}
			}
			return NewPrimitive(cfg)
		},
		Faulty: faultySet(p.N, 3),
	})
	c.Start()
	c.Run(10)
	if len(c.Pulses) != 0 {
		t.Fatalf("pulses fired with only 4 correct of quorum 5: %d", len(c.Pulses))
	}
}

func TestZeroFaultConfiguration(t *testing.T) {
	// f=0: quorum of one signature; every node accepts its own round
	// evidence after self-delivery.
	p := bounds.Params{
		N: 3, F: 0, Variant: bounds.Auth,
		Rho: clock.Rho(1e-5), DMin: 0.001, DMax: 0.005,
		Period: 0.5, InitialSkew: 0.002,
	}.WithDefaults()
	c := testCluster(t, p, 10)
	got := runAndSample(c, 10, 0.02)
	if limit := p.DmaxWithStart(); got > limit {
		t.Fatalf("skew %v > bound %v", got, limit)
	}
}

func TestDeterministicReplay(t *testing.T) {
	p := authParams()
	run := func() []node.PulseRecord {
		c := testCluster(t, p, 77)
		c.Start()
		c.Run(10)
		return c.Pulses
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("pulse counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pulse %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProtocolsIgnoreForeignMessages(t *testing.T) {
	p := authParams()
	c := testCluster(t, p, 11)
	c.Start()
	c.Run(0.1)
	// Inject garbage directly; must not panic or change state.
	auth := c.Nodes[0].Protocol().(*AuthProtocol)
	before := auth.LastAccepted()
	auth.Deliver(c.Nodes[0], 1, network.Raw("garbage"))
	auth.Deliver(c.Nodes[0], 1, ReadyMessage(5))
	auth.Deliver(c.Nodes[0], 1, RoundMessage(-1, nil))
	auth.Deliver(c.Nodes[0], 1, RoundMessage(1<<30, nil))
	if auth.LastAccepted() != before {
		t.Fatal("garbage changed acceptance state")
	}

	pp := primParams()
	c2 := testCluster(t, pp, 12)
	c2.Start()
	c2.Run(0.1)
	prim := c2.Nodes[0].Protocol().(*PrimitiveProtocol)
	before = prim.LastAccepted()
	prim.Deliver(c2.Nodes[0], 1, network.Raw("garbage"))
	prim.Deliver(c2.Nodes[0], 1, RoundMessage(2, nil))
	prim.Deliver(c2.Nodes[0], 1, ReadyMessage(-3))
	if prim.LastAccepted() != before {
		t.Fatal("garbage changed primitive acceptance state")
	}
}

func TestForgedSignaturesRejected(t *testing.T) {
	p := authParams()
	c := testCluster(t, p, 13)
	c.Start()
	c.Run(0.01)
	auth := c.Nodes[0].Protocol().(*AuthProtocol)
	// f+1 = 3 entries with garbage signatures for a future round.
	msg := RoundMessage(3, []SignedEntry{
		{Signer: 1, Sig: []byte("forged")},
		{Signer: 2, Sig: []byte("forged")},
		{Signer: 3, Sig: []byte("forged")},
	})
	auth.Deliver(c.Nodes[0], 4, msg)
	if auth.LastAccepted() != 0 {
		t.Fatal("forged signatures triggered acceptance")
	}
	// Signatures for round 2 do not validate round 3.
	wrong := RoundMessage(3, []SignedEntry{
		{Signer: 1, Sig: c.Nodes[1].Sign(roundPayload(2))},
		{Signer: 2, Sig: c.Nodes[2].Sign(roundPayload(2))},
		{Signer: 3, Sig: c.Nodes[3].Sign(roundPayload(2))},
	})
	auth.Deliver(c.Nodes[0], 4, wrong)
	if auth.LastAccepted() != 0 {
		t.Fatal("cross-round signatures triggered acceptance")
	}
	// Duplicate signers must not fill the quorum.
	s1 := c.Nodes[1].Sign(roundPayload(3))
	dup := RoundMessage(3, []SignedEntry{
		{Signer: 1, Sig: s1}, {Signer: 1, Sig: s1}, {Signer: 1, Sig: s1},
	})
	auth.Deliver(c.Nodes[0], 4, dup)
	if auth.LastAccepted() != 0 {
		t.Fatal("duplicate signers filled the quorum")
	}
}

// TestSchemeIndependence runs the same cluster under HMAC and Ed25519
// signatures: the protocol's observable behaviour (pulse times, rounds)
// must be identical — the algorithm depends only on the unforgeability
// axiom, not the scheme.
func TestSchemeIndependence(t *testing.T) {
	p := authParams()
	run := func(scheme sig.Scheme) []node.PulseRecord {
		cfg := ConfigFromBounds(p)
		c := node.NewCluster(node.Config{
			N: p.N, F: p.F, Seed: 55,
			Rho:    p.Rho,
			Scheme: scheme,
			Delay:  network.Uniform{Min: p.DMin, Max: p.DMax},
			Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
				offset := rng.Float64() * p.InitialSkew
				return clock.NewHardware(offset, p.Rho,
					clock.RandomWalk{Rho: p.Rho, MinDur: p.Period / 7, MaxDur: p.Period}, rng)
			},
			Protocols: func(i int) node.Protocol {
				if i >= p.N-p.F {
					return silentProto{}
				}
				return NewAuth(cfg)
			},
			Faulty: faultySet(p.N, p.F),
		})
		c.Start()
		c.Run(10)
		return c.Pulses
	}
	hm := run(sig.NewHMAC(p.N, 55))
	ed := run(sig.NewEd25519(p.N, 55))
	if len(hm) != len(ed) {
		t.Fatalf("pulse counts differ: hmac %d vs ed25519 %d", len(hm), len(ed))
	}
	for i := range hm {
		if hm[i] != ed[i] {
			t.Fatalf("pulse %d differs: %+v vs %+v", i, hm[i], ed[i])
		}
	}
}

func TestMaxRoundAheadBoundsMemory(t *testing.T) {
	p := authParams()
	cfg := ConfigFromBounds(p)
	cfg.MaxRoundAhead = 8
	auth := NewAuth(cfg)
	c := node.NewCluster(node.Config{
		N: p.N, F: p.F, Seed: 30,
		Delay: network.Fixed{D: 0.001},
		Protocols: func(i int) node.Protocol {
			if i == 0 {
				return auth
			}
			return silentProto{}
		},
	})
	c.Start()
	c.Run(0.01)
	// A spammer floods evidence for thousands of future rounds; only the
	// window survives.
	for k := 1; k <= 5000; k++ {
		auth.Deliver(c.Nodes[0], 1, RoundMessage(k, []SignedEntry{
			{Signer: 1, Sig: c.Nodes[1].Sign(roundPayload(k))},
		}))
	}
	if got := len(auth.evidence); got > cfg.MaxRoundAhead {
		t.Fatalf("evidence retained for %d rounds, cap %d", got, cfg.MaxRoundAhead)
	}

	prim := NewPrimitive(cfg)
	c2 := node.NewCluster(node.Config{
		N: 7, F: 2, Seed: 31,
		Delay: network.Fixed{D: 0.001},
		Protocols: func(i int) node.Protocol {
			if i == 0 {
				return prim
			}
			return silentProto{}
		},
	})
	c2.Start()
	c2.Run(0.01)
	for k := 1; k <= 5000; k++ {
		prim.Deliver(c2.Nodes[0], 1, ReadyMessage(k))
	}
	if got := len(prim.readyFrom); got > cfg.MaxRoundAhead {
		t.Fatalf("ready state retained for %d rounds, cap %d", got, cfg.MaxRoundAhead)
	}
}

func TestReplayedOldEvidenceIgnored(t *testing.T) {
	// Once round k is accepted, replays of rounds <= k are discarded and
	// do not resurrect state.
	p := authParams()
	c := testCluster(t, p, 32)
	c.Start()
	c.Run(3.5) // a few rounds in
	auth := c.Nodes[0].Protocol().(*AuthProtocol)
	accepted := auth.LastAccepted()
	if accepted < 2 {
		t.Fatalf("only %d rounds accepted", accepted)
	}
	for k := 1; k <= accepted; k++ {
		auth.Deliver(c.Nodes[0], 1, RoundMessage(k, []SignedEntry{
			{Signer: 1, Sig: c.Nodes[1].Sign(roundPayload(k))},
			{Signer: 2, Sig: c.Nodes[2].Sign(roundPayload(k))},
			{Signer: 3, Sig: c.Nodes[3].Sign(roundPayload(k))},
		}))
	}
	if auth.LastAccepted() != accepted {
		t.Fatal("replayed evidence changed acceptance state")
	}
	for r := range auth.evidence {
		if r <= accepted {
			t.Fatalf("stale evidence retained for round %d", r)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero period":    {Period: 0},
		"negative alpha": {Period: 1, Alpha: -0.1},
		"alpha>=period":  {Period: 1, Alpha: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: NewAuth did not panic", name)
				}
			}()
			NewAuth(cfg)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: NewPrimitive did not panic", name)
				}
			}()
			NewPrimitive(cfg)
		}()
	}
}

func TestRoundPayloadDistinct(t *testing.T) {
	seen := map[string]bool{}
	for k := -2; k < 100; k++ {
		s := string(roundPayload(k))
		if seen[s] {
			t.Fatalf("payload collision at round %d", k)
		}
		seen[s] = true
	}
}

func TestOnAcceptHooks(t *testing.T) {
	p := authParams()
	cfg := ConfigFromBounds(p)
	var authRounds, primRounds []int
	a := NewAuth(cfg)
	a.OnAccept = func(k int) { authRounds = append(authRounds, k) }
	pr := NewPrimitive(cfg)
	pr.OnAccept = func(k int) { primRounds = append(primRounds, k) }

	c := node.NewCluster(node.Config{
		N: 5, F: 2, Seed: 20,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Protocols: func(i int) node.Protocol {
			if i == 0 {
				return a
			}
			return NewAuth(cfg)
		},
	})
	c.Start()
	c.Run(5)
	if len(authRounds) < 3 {
		t.Fatalf("OnAccept fired %d times", len(authRounds))
	}
	for i := 1; i < len(authRounds); i++ {
		if authRounds[i] != authRounds[i-1]+1 {
			t.Fatalf("acceptances not consecutive: %v", authRounds)
		}
	}
	_ = primRounds // primitive hook covered in harness tests
}
