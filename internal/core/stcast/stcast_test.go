package stcast

import (
	"testing"

	"optsync/internal/network"
	"optsync/internal/node"
)

// castProto is a minimal protocol hosting one Receiver; the dealer
// broadcasts a single tag at boot.
type castProto struct {
	rx        *Receiver
	deal      bool
	tag       string
	accepts   []string
	acceptAt  []float64
	acceptSrc []node.ID
}

func newCastProto(deal bool, tag string) *castProto {
	p := &castProto{deal: deal, tag: tag}
	p.rx = NewReceiver(func(env node.Env, src node.ID, tg string) {
		p.accepts = append(p.accepts, tg)
		p.acceptAt = append(p.acceptAt, env.RealTime())
		p.acceptSrc = append(p.acceptSrc, src)
	})
	return p
}

func (p *castProto) Start(env node.Env) {
	if p.deal {
		p.rx.Broadcast(env, p.tag)
	}
}

func (p *castProto) Deliver(env node.Env, from node.ID, msg node.Message) {
	p.rx.Deliver(env, from, msg)
}

// silent is a faulty process that never participates.
type silent struct{}

func (silent) Start(node.Env)                          {}
func (silent) Deliver(node.Env, node.ID, node.Message) {}

// forger tries to make correct processes accept a broadcast the (correct)
// dealer never made: it spams echo and spoofed init messages.
type forger struct {
	victim node.ID
	tag    string
	peers  []node.ID // co-conspirators, for coordinated echoes
}

func (f *forger) Start(env node.Env) {
	// Spoofed init "from" the victim (transport reveals true sender).
	env.Broadcast(Init(f.victim, f.tag))
	// Echoes for the never-broadcast tag.
	env.Broadcast(Echo(f.victim, f.tag))
	// Repeat: duplicates from one sender must count once.
	env.Broadcast(Echo(f.victim, f.tag))
}

func (f *forger) Deliver(node.Env, node.ID, node.Message) {}

// partialDealer is a faulty dealer that sends init to only some processes.
type partialDealer struct {
	tag     string
	targets []node.ID
}

func (d *partialDealer) Start(env node.Env) {
	for _, to := range d.targets {
		env.Send(to, Init(env.ID(), d.tag))
	}
}

func (d *partialDealer) Deliver(node.Env, node.ID, node.Message) {}

func runCluster(n, f int, protos map[int]node.Protocol, dmax float64, horizon float64) (*node.Cluster, map[int]*castProto) {
	correct := make(map[int]*castProto)
	cluster := node.NewCluster(node.Config{
		N: n, F: f, Seed: 42,
		Delay: network.Uniform{Min: dmax / 2, Max: dmax},
		Protocols: func(i int) node.Protocol {
			if p, ok := protos[i]; ok {
				return p
			}
			cp := newCastProto(false, "")
			correct[i] = cp
			return cp
		},
	})
	cluster.Start()
	cluster.Run(horizon)
	return cluster, correct
}

func TestCorrectDealerAllAccept(t *testing.T) {
	const n, f, dmax = 4, 1, 0.01
	dealer := newCastProto(true, "m1")
	_, correct := runCluster(n, f, map[int]node.Protocol{0: dealer}, dmax, 1)
	correct[0] = dealer
	for i, p := range correct {
		if len(p.accepts) != 1 || p.accepts[0] != "m1" {
			t.Fatalf("node %d accepts = %v, want [m1]", i, p.accepts)
		}
		if p.acceptSrc[0] != 0 {
			t.Fatalf("node %d accepted src %d, want 0", i, p.acceptSrc[0])
		}
		// Correctness: accept within 2*dmax of the broadcast (t=0).
		if p.acceptAt[0] > 2*dmax+1e-9 {
			t.Fatalf("node %d accepted at %v > 2*dmax", i, p.acceptAt[0])
		}
	}
}

func TestCorrectnessWithSilentFaults(t *testing.T) {
	// n=7, f=2: two faulty processes stay silent; accept must still happen
	// (quorums 2f+1=5 <= n-f=5).
	dealer := newCastProto(true, "m")
	protos := map[int]node.Protocol{0: dealer, 5: silent{}, 6: silent{}}
	_, correct := runCluster(7, 2, protos, 0.01, 1)
	correct[0] = dealer
	for i, p := range correct {
		if len(p.accepts) != 1 {
			t.Fatalf("node %d accepts = %v, want 1 accept", i, p.accepts)
		}
	}
}

func TestUnforgeability(t *testing.T) {
	// n=4, f=1: the faulty process tries to forge a broadcast by the
	// correct (and silent-as-dealer) node 1. No correct process may accept.
	protos := map[int]node.Protocol{
		3: &forger{victim: 1, tag: "forged"},
	}
	_, correct := runCluster(4, 1, protos, 0.01, 1)
	for i, p := range correct {
		if len(p.accepts) != 0 {
			t.Fatalf("node %d accepted forged broadcast: %v", i, p.accepts)
		}
		if p.rx.Echoed(1, "forged") {
			t.Fatalf("node %d echoed a forged broadcast", i)
		}
	}
}

func TestUnforgeabilityColludingForgers(t *testing.T) {
	// n=7, f=2: two colluding forgers echo a never-broadcast message.
	// f echoes < f+1, so no correct process joins and none accepts.
	protos := map[int]node.Protocol{
		5: &forger{victim: 0, tag: "x"},
		6: &forger{victim: 0, tag: "x"},
	}
	_, correct := runCluster(7, 2, protos, 0.01, 1)
	for i, p := range correct {
		if len(p.accepts) != 0 {
			t.Fatalf("node %d accepted forged broadcast", i)
		}
	}
}

func TestRelayPartialDealer(t *testing.T) {
	// n=4, f=1: faulty dealer sends init to a single correct process.
	// Either nobody accepts, or — if anyone does — all correct processes
	// accept within 2*dmax of the first (relay property). With one init
	// the lone echo stays below f+1=2, so here nobody accepts.
	protos := map[int]node.Protocol{
		3: &partialDealer{tag: "p", targets: []node.ID{0}},
	}
	_, correct := runCluster(4, 1, protos, 0.01, 1)
	accepted := 0
	for _, p := range correct {
		accepted += len(p.accepts)
	}
	if accepted != 0 {
		t.Fatalf("single-target partial dealer caused %d accepts", accepted)
	}
}

func TestRelayPartialDealerMajority(t *testing.T) {
	// n=7, f=2: faulty dealer inits only 3 of 5 correct processes. Their 3
	// echoes reach everyone (>= f+1 = 3), all 5 correct processes echo,
	// quorum 2f+1 = 5 is met: ALL correct processes must accept, within
	// 2*dmax of the first acceptance.
	const dmax = 0.01
	protos := map[int]node.Protocol{
		6: &partialDealer{tag: "p", targets: []node.ID{0, 1, 2}},
	}
	_, correct := runCluster(7, 2, protos, dmax, 1)
	var times []float64
	for i, p := range correct {
		if len(p.accepts) != 1 {
			t.Fatalf("node %d accepts = %v, want exactly 1 (relay)", i, p.accepts)
		}
		times = append(times, p.acceptAt[i%1])
	}
	lo, hi := times[0], times[0]
	for _, tt := range times {
		if tt < lo {
			lo = tt
		}
		if tt > hi {
			hi = tt
		}
	}
	if hi-lo > 2*dmax+1e-9 {
		t.Fatalf("acceptance spread %v > 2*dmax", hi-lo)
	}
}

func TestAcceptExactlyOnce(t *testing.T) {
	// The dealer broadcasts the same tag twice; accept fires once.
	dealer := newCastProto(true, "dup")
	protos := map[int]node.Protocol{0: dealer}
	cluster, correct := runCluster(4, 1, protos, 0.01, 0.5)
	// Re-broadcast the same tag.
	dealer.rx.Broadcast(cluster.Nodes[0], "dup")
	cluster.Run(1)
	correct[0] = dealer
	for i, p := range correct {
		if len(p.accepts) != 1 {
			t.Fatalf("node %d accepted %d times, want 1", i, len(p.accepts))
		}
	}
}

func TestDistinctTagsIndependent(t *testing.T) {
	// Two dealers, two tags: both accepted independently by everyone.
	d0 := newCastProto(true, "a")
	d1 := newCastProto(true, "b")
	protos := map[int]node.Protocol{0: d0, 1: d1}
	_, correct := runCluster(4, 1, protos, 0.01, 1)
	correct[0] = d0
	correct[1] = d1
	for i, p := range correct {
		if len(p.accepts) != 2 {
			t.Fatalf("node %d accepts = %v, want both tags", i, p.accepts)
		}
		if !p.rx.Accepted(0, "a") || !p.rx.Accepted(1, "b") {
			t.Fatalf("node %d Accepted() bookkeeping wrong", i)
		}
		if p.rx.Accepted(0, "b") {
			t.Fatalf("node %d accepted tag under wrong dealer", i)
		}
	}
}

func TestDeliverIgnoresForeignMessages(t *testing.T) {
	rx := NewReceiver(nil)
	c := node.NewCluster(node.Config{
		N: 1, F: 0, Seed: 1,
		Protocols: func(int) node.Protocol { return newCastProto(false, "") },
	})
	c.Start()
	c.Run(0)
	if rx.Deliver(c.Nodes[0], 0, network.Raw("not an stcast message")) {
		t.Fatal("foreign message reported as consumed")
	}
	if !rx.Deliver(c.Nodes[0], 0, Echo(0, "t")) {
		t.Fatal("stcast message not consumed")
	}
}

func TestKindString(t *testing.T) {
	if KindInit.String() != "stcast/init" || KindEcho.String() != "stcast/echo" {
		t.Fatal("Kind strings wrong")
	}
}

func TestNilOnAcceptSafe(t *testing.T) {
	dealer := newCastProto(true, "t")
	dealer.rx.OnAccept = nil
	protos := map[int]node.Protocol{0: dealer}
	_, correct := runCluster(4, 1, protos, 0.01, 1)
	for i, p := range correct {
		if !p.rx.Accepted(0, "t") {
			t.Fatalf("node %d did not accept", i)
		}
	}
}
