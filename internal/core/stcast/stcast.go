// Package stcast implements the Srikanth-Toueg broadcast primitive in its
// general, designated-dealer form (paper Section 4).
//
// The primitive simulates the properties of authenticated broadcast using
// only message counting, for n > 3f:
//
//	broadcast(p, tag): dealer p sends (init, p, tag) to all.
//	on (init, p, tag) received directly from p:  send (echo, p, tag) to all
//	on (echo, p, tag) from f+1 distinct senders: send (echo, p, tag) to all
//	                                             (if not yet sent)
//	on (echo, p, tag) from 2f+1 distinct senders: accept(p, tag)
//
// Guarantees (all proved in the paper, all asserted by this package's
// tests):
//
//	Correctness:    if a correct dealer broadcasts (p, tag) at time t, every
//	                correct process accepts (p, tag) by t + 2*dmax.
//	Unforgeability: if a correct dealer never broadcasts (p, tag), no
//	                correct process ever accepts it.
//	Relay:          if a correct process accepts (p, tag) at time t, every
//	                correct process accepts it by t + 2*dmax.
//
// The type is a mixin: a protocol embeds *Receiver, routes stcast.Message
// deliveries to Deliver, and receives accepted broadcasts through the
// OnAccept callback. The symmetric specialization used by the clock
// synchronization algorithm is inlined in package core; this general form
// is exercised by its own experiment (T6) and available for building other
// protocols on top (e.g. simulated authenticated consensus).
package stcast

import (
	"optsync/internal/network"
	"optsync/internal/node"
)

// The primitive's two message kinds. Src names the original dealer; for
// init messages it must equal the transport-level sender (receivers
// enforce this — the channels are authenticated, so a faulty process
// cannot initiate a broadcast in another process's name). The tag rides
// in the envelope payload.
var (
	// KindInit is the dealer's initial transmission.
	KindInit = network.NewKind("stcast/init")
	// KindEcho is a witness's confirmation.
	KindEcho = network.NewKind("stcast/echo")
)

// Init assembles a dealer transmission for (src, tag).
func Init(src node.ID, tag string) node.Message {
	return node.Message{Kind: KindInit, Src: src, Payload: tag}
}

// Echo assembles a witness confirmation for (src, tag).
func Echo(src node.ID, tag string) node.Message {
	return node.Message{Kind: KindEcho, Src: src, Payload: tag}
}

type key struct {
	src node.ID
	tag string
}

// Receiver holds one process's primitive state across all broadcast
// instances, keyed by (dealer, tag).
type Receiver struct {
	echoed   map[key]bool
	echoes   map[key]map[node.ID]bool
	accepted map[key]bool

	// OnAccept is invoked exactly once per accepted (dealer, tag).
	OnAccept func(env node.Env, src node.ID, tag string)
}

// NewReceiver returns an empty receiver.
func NewReceiver(onAccept func(env node.Env, src node.ID, tag string)) *Receiver {
	return &Receiver{
		echoed:   make(map[key]bool),
		echoes:   make(map[key]map[node.ID]bool),
		accepted: make(map[key]bool),
		OnAccept: onAccept,
	}
}

// Broadcast initiates the primitive as dealer for tag.
func (r *Receiver) Broadcast(env node.Env, tag string) {
	env.Broadcast(Init(env.ID(), tag))
}

// Accepted reports whether (src, tag) has been accepted.
func (r *Receiver) Accepted(src node.ID, tag string) bool {
	return r.accepted[key{src, tag}]
}

// Echoed reports whether this process echoed (src, tag) (test hook).
func (r *Receiver) Echoed(src node.ID, tag string) bool {
	return r.echoed[key{src, tag}]
}

// Deliver processes a primitive message. It returns false if msg is not a
// primitive kind, so protocols can fall through to their own types.
func (r *Receiver) Deliver(env node.Env, from node.ID, msg node.Message) bool {
	if msg.Kind != KindInit && msg.Kind != KindEcho {
		return false
	}
	tag, ok := msg.Payload.(string)
	if !ok {
		return true // malformed primitive traffic contributes nothing
	}
	k := key{msg.Src, tag}
	switch msg.Kind {
	case KindInit:
		// Authenticated channels: an init for Src counts only when it
		// arrives from Src itself.
		if from != msg.Src {
			return true
		}
		r.sendEcho(env, k)
	case KindEcho:
		set := r.echoes[k]
		if set == nil {
			set = make(map[node.ID]bool)
			r.echoes[k] = set
		}
		set[from] = true
		if len(set) >= env.F()+1 {
			r.sendEcho(env, k)
		}
		if len(set) >= 2*env.F()+1 {
			r.accept(env, k)
		}
	}
	return true
}

func (r *Receiver) sendEcho(env node.Env, k key) {
	if r.echoed[k] {
		return
	}
	r.echoed[k] = true
	env.Broadcast(Echo(k.src, k.tag))
}

func (r *Receiver) accept(env node.Env, k key) {
	if r.accepted[k] {
		return
	}
	r.accepted[k] = true
	if r.OnAccept != nil {
		r.OnAccept(env, k.src, k.tag)
	}
}
