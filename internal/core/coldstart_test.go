package core

import (
	"math/rand"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
)

// coldCluster builds a cluster whose hardware clocks are arbitrarily wrong
// (offsets up to maxOffset) and whose nodes boot at staggered times, with
// ColdStart enabled.
func coldCluster(t *testing.T, p bounds.Params, maxOffset float64, startAt map[int]float64, seed int64) *node.Cluster {
	t.Helper()
	cfg := ConfigFromBounds(p)
	cfg.ColdStart = true
	return node.NewCluster(node.Config{
		N: p.N, F: p.F, Seed: seed,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			return clock.NewHardware(rng.Float64()*maxOffset, p.Rho,
				clock.RandomWalk{Rho: p.Rho, MinDur: p.Period / 7, MaxDur: p.Period}, rng)
		},
		Protocols: func(i int) node.Protocol {
			if i >= p.N-p.F {
				return silentProto{}
			}
			return NewAuth(cfg)
		},
		Faulty:  faultySet(p.N, p.F),
		StartAt: startAt,
	})
}

func TestColdStartSynchronizesArbitraryClocks(t *testing.T) {
	p := authParams()
	// Hardware clocks up to 100 s wrong — no initial synchrony whatsoever.
	c := coldCluster(t, p, 100, nil, 21)
	c.Start()
	c.Run(10)
	ids := c.CorrectIDs()
	for _, id := range ids {
		if !c.Nodes[id].Protocol().(*AuthProtocol).Synchronized() {
			t.Fatalf("node %d never synchronized", id)
		}
	}
	// After cold start + a few rounds, skew is governed by the usual bound.
	if skew := c.Skew(ids); skew > p.Dmax() {
		t.Fatalf("post-cold-start skew %v > %v", skew, p.Dmax())
	}
	if len(c.Pulses) == 0 {
		t.Fatal("no rounds after cold start")
	}
}

func TestColdStartStaggeredBoots(t *testing.T) {
	p := authParams()
	// Correct nodes boot over a 3-second window; the last one boots after
	// the others are already running rounds and must integrate.
	startAt := map[int]float64{0: 0, 1: 0.4, 2: 3.0}
	c := coldCluster(t, p, 50, startAt, 22)
	c.Start()
	c.Run(12)
	ids := c.CorrectIDs()
	if len(ids) != 3 {
		t.Fatalf("correct ids = %v", ids)
	}
	for _, id := range ids {
		if !c.Nodes[id].Protocol().(*AuthProtocol).Synchronized() {
			t.Fatalf("node %d never synchronized", id)
		}
	}
	if skew := c.Skew(ids); skew > p.Dmax() {
		t.Fatalf("skew %v > %v after staggered cold start", skew, p.Dmax())
	}
}

func TestColdStartNoQuorumNoProgress(t *testing.T) {
	// With only f correct nodes booted, the awake quorum f+1 cannot form
	// (faulty are silent): nobody may start the round schedule.
	p := authParams()                   // n=5, f=2
	startAt := map[int]float64{2: 1000} // third correct node boots far away
	c := coldCluster(t, p, 10, startAt, 23)
	c.Start()
	c.Run(50)
	if len(c.Pulses) != 0 {
		t.Fatalf("%d pulses with only f correct nodes up", len(c.Pulses))
	}
	for _, id := range []node.ID{0, 1} {
		if c.Nodes[id].Protocol().(*AuthProtocol).Synchronized() {
			t.Fatalf("node %d synchronized without a quorum", id)
		}
	}
}

func TestColdStartForgedAwakeRejected(t *testing.T) {
	p := authParams()
	c := coldCluster(t, p, 10, map[int]float64{1: 500, 2: 500}, 24)
	c.Start()
	c.Run(0.5)
	auth := c.Nodes[0].Protocol().(*AuthProtocol)
	// Forged awake signatures must not complete the quorum.
	auth.Deliver(c.Nodes[0], 3, AwakeMessage([]SignedEntry{
		{Signer: 1, Sig: []byte("forged")},
		{Signer: 2, Sig: []byte("forged")},
	}))
	if auth.Synchronized() {
		t.Fatal("forged awake evidence synchronized the node")
	}
	// Genuine signatures (the adversary controls faulty keys 3, 4) do
	// count — f+1 = 3 total with node 0's own.
	auth.Deliver(c.Nodes[0], 3, AwakeMessage([]SignedEntry{
		{Signer: 3, Sig: c.Nodes[3].Sign(awakePayload())},
		{Signer: 4, Sig: c.Nodes[4].Sign(awakePayload())},
	}))
	if !auth.Synchronized() {
		t.Fatal("valid awake quorum did not synchronize")
	}
}

func TestColdStartOnSynchronizedHook(t *testing.T) {
	p := authParams()
	cfg := ConfigFromBounds(p)
	cfg.ColdStart = true
	fired := 0
	protos := make([]*AuthProtocol, 0, p.N)
	c := node.NewCluster(node.Config{
		N: p.N, F: p.F, Seed: 25,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Protocols: func(i int) node.Protocol {
			a := NewAuth(cfg)
			a.OnSynchronized = func() { fired++ }
			protos = append(protos, a)
			return a
		},
	})
	c.Start()
	c.Run(2)
	if fired != p.N {
		t.Fatalf("OnSynchronized fired %d times, want %d", fired, p.N)
	}
}

// testSelectiveSigner is a minimal in-package copy of the selective-
// signing adversary (the adversary package imports core, so it cannot be
// imported from core's in-package tests): it signs each round early and
// serves the signature to a single target.
type testSelectiveSigner struct {
	cfg    Config
	target node.ID
	rounds int
}

func (s *testSelectiveSigner) Start(env node.Env) {
	for k := 1; k <= s.rounds; k++ {
		k := k
		env.AtLogical(float64(k)*s.cfg.Period-s.cfg.Period/4, func() {
			entry := SignedEntry{Signer: env.ID(), Sig: env.Sign(RoundPayload(k))}
			env.Send(s.target, RoundMessage(k, []SignedEntry{entry}))
		})
	}
}

func (s *testSelectiveSigner) Deliver(node.Env, node.ID, node.Message) {}

func TestDisableRelayWidensSpread(t *testing.T) {
	// Ablation: faulty signers serve their signatures only to node 0, so
	// node 0 accepts the instant the first correct process signs. With
	// the relay step, everyone else follows within one delay (spread <=
	// beta = dmax). Without it, the others must assemble a quorum from
	// f+1 = 3 correct signers — i.e. wait for the slowest correct clock —
	// and the spread (hence the skew) escapes the bound.
	p := authParams()
	run := func(disable bool, seed int64) (spread, skew float64) {
		cfg := ConfigFromBounds(p)
		cfg.DisableRelay = disable
		c := node.NewCluster(node.Config{
			N: p.N, F: p.F, Seed: seed,
			Rho:   p.Rho,
			Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
			Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
				offset := rng.Float64() * p.InitialSkew
				return clock.NewHardware(offset, p.Rho,
					clock.RandomWalk{Rho: p.Rho, MinDur: p.Period / 7, MaxDur: p.Period}, rng)
			},
			Protocols: func(i int) node.Protocol {
				if i >= p.N-p.F {
					return &testSelectiveSigner{cfg: cfg, target: 0, rounds: 25}
				}
				return NewAuth(cfg)
			},
			Faulty: faultySet(p.N, p.F),
		})
		c.Start()
		maxSkew := 0.0
		for tt := 0.05; tt <= 20; tt += 0.05 {
			c.Run(tt)
			if s := c.Skew(c.CorrectIDs()); s > maxSkew {
				maxSkew = s
			}
		}
		first := make(map[int]float64)
		last := make(map[int]float64)
		count := make(map[int]int)
		for _, rec := range c.Pulses {
			if v, ok := first[rec.Round]; !ok || rec.Real < v {
				first[rec.Round] = rec.Real
			}
			if v, ok := last[rec.Round]; !ok || rec.Real > v {
				last[rec.Round] = rec.Real
			}
			count[rec.Round]++
		}
		for k := range first {
			if count[k] != p.N-p.F {
				continue // incomplete round
			}
			if s := last[k] - first[k]; s > spread {
				spread = s
			}
		}
		return spread, maxSkew
	}
	relaySpread, relaySkew := run(false, 7)
	noRelaySpread, noRelaySkew := run(true, 7)
	if relaySpread > p.Beta()+1e-9 {
		t.Fatalf("relay-mode spread %v exceeds beta %v", relaySpread, p.Beta())
	}
	if relaySkew > p.DmaxWithStart() {
		t.Fatalf("relay-mode skew %v exceeds Dmax %v", relaySkew, p.DmaxWithStart())
	}
	if noRelaySpread <= relaySpread {
		t.Fatalf("relay ablation did not widen spread: %v <= %v", noRelaySpread, relaySpread)
	}
	if noRelaySkew <= relaySkew {
		t.Fatalf("relay ablation did not widen skew: %v <= %v", noRelaySkew, relaySkew)
	}
}
