package core

import (
	"sort"

	"optsync/internal/network"
	"optsync/internal/node"
	"optsync/internal/sig"
)

// Message kinds of the two ST algorithms (see prim.go for ready).
var (
	// KindRound carries round-k evidence: envelope.Round is k and the
	// payload is a []SignedEntry over roundPayload(k). f+1 valid distinct
	// signatures prove that at least one correct process's clock reached
	// k*P.
	KindRound = network.NewKind("st/round")
	// KindAwake carries cold-start liveness evidence: a []SignedEntry
	// over the awake payload by distinct processes.
	KindAwake = network.NewKind("st/awake")
)

// SignedEntry is one signer's signature over the round payload.
type SignedEntry struct {
	Signer node.ID
	Sig    sig.Signature
}

// RoundMessage assembles a round-k evidence envelope.
func RoundMessage(round int, sigs []SignedEntry) node.Message {
	return node.Message{Kind: KindRound, Round: round, Payload: sigs}
}

// AwakeMessage assembles a cold-start liveness envelope.
func AwakeMessage(sigs []SignedEntry) node.Message {
	return node.Message{Kind: KindAwake, Payload: sigs}
}

// AuthProtocol is the authenticated algorithm (paper Section 3).
//
// Behaviour of a correct process v:
//
//	when C_v = k*P:                sign "round k", broadcast all evidence
//	                               collected for k (at least the own
//	                               signature)
//	on f+1 distinct valid sigs
//	for round k > last accepted:   accept: C_v := k*P + alpha, relay the
//	                               full signature set, start waiting for
//	                               round k+1
//
// Signatures are produced only when the signer's own clock reaches k*P;
// relays forward other processes' signatures without adding one, so a
// signature by a correct process always witnesses "my clock read k*P".
type AuthProtocol struct {
	cfg Config

	lastAccepted int
	lastSigned   int
	evidence     map[int]map[node.ID]sig.Signature
	timer        node.Timer

	// Cold-start state (Config.ColdStart).
	awake        map[node.ID]sig.Signature
	synchronized bool

	// OnAccept, if set, observes each acceptance (round, logical target).
	OnAccept func(round int)
	// OnSynchronized, if set, observes cold-start completion.
	OnSynchronized func()
}

var _ node.Protocol = (*AuthProtocol)(nil)

// NewAuth constructs the protocol; cfg.Period must be positive and
// cfg.Alpha within [0, Period).
func NewAuth(cfg Config) *AuthProtocol {
	cfg = cfg.withDefaults()
	cfg.validate()
	return &AuthProtocol{
		cfg:      cfg,
		evidence: make(map[int]map[node.ID]sig.Signature),
		awake:    make(map[node.ID]sig.Signature),
	}
}

// Synchronized reports whether the process has established
// synchronization (always true once running without ColdStart).
func (p *AuthProtocol) Synchronized() bool { return p.synchronized }

// LastAccepted returns the highest accepted round (0 before the first).
func (p *AuthProtocol) LastAccepted() int { return p.lastAccepted }

// Start implements node.Protocol.
func (p *AuthProtocol) Start(env node.Env) {
	if p.cfg.ColdStart {
		// Announce liveness; the round schedule begins once f+1 distinct
		// processes are provably up (or once any round is accepted, for
		// processes that boot into a running system).
		p.awake[env.ID()] = env.Sign(awakePayload())
		env.Broadcast(AwakeMessage(awakeEntries(p.awake)))
		p.maybeSynchronize(env)
		return
	}
	p.synchronized = true
	p.armTimer(env)
}

// Deliver implements node.Protocol.
func (p *AuthProtocol) Deliver(env node.Env, _ node.ID, msg node.Message) {
	switch msg.Kind {
	case KindAwake:
		sigs, _ := msg.Payload.([]SignedEntry)
		p.deliverAwake(env, sigs)
		return
	case KindRound:
	default:
		return // foreign or malformed traffic is ignored
	}
	round := msg.Round
	sigs, ok := msg.Payload.([]SignedEntry)
	if !ok {
		return
	}
	if round <= p.lastAccepted || round > p.lastAccepted+p.cfg.MaxRoundAhead {
		return
	}
	payload := roundPayload(round)
	set := p.evidence[round]
	if set == nil {
		set = make(map[node.ID]sig.Signature)
		p.evidence[round] = set
	}
	for _, e := range sigs {
		if _, dup := set[e.Signer]; dup {
			continue
		}
		if !env.Verify(e.Signer, payload, e.Sig) {
			continue // forged or corrupted entries contribute nothing
		}
		set[e.Signer] = e.Sig
	}
	p.maybeAccept(env, round)
}

// armTimer schedules the next "sign round k" action at C = k*P for the
// first round not yet signed or accepted. Must be called after every clock
// adjustment, since pending logical timers assume no jumps.
func (p *AuthProtocol) armTimer(env node.Env) {
	env.Cancel(p.timer)
	next := p.lastSigned + 1
	if next <= p.lastAccepted {
		next = p.lastAccepted + 1
	}
	p.timer = env.AtLogical(p.cfg.roundDue(next), func() {
		p.signAndBroadcast(env, next)
	})
}

// signAndBroadcast runs when the local clock reads k*P.
func (p *AuthProtocol) signAndBroadcast(env node.Env, k int) {
	if k <= p.lastSigned || k <= p.lastAccepted {
		p.armTimer(env)
		return
	}
	p.lastSigned = k
	set := p.evidence[k]
	if set == nil {
		set = make(map[node.ID]sig.Signature)
		p.evidence[k] = set
	}
	set[env.ID()] = env.Sign(roundPayload(k))
	env.Broadcast(RoundMessage(k, entries(set)))
	// Own signature may complete the quorum (e.g. f=0, or evidence
	// arrived before our clock was due).
	p.maybeAccept(env, k)
	if p.lastAccepted < k {
		p.armTimer(env)
	}
}

// maybeAccept checks the f+1 quorum for round k and performs the
// resynchronization step.
func (p *AuthProtocol) maybeAccept(env node.Env, k int) {
	set := p.evidence[k]
	if len(set) < env.F()+1 || k <= p.lastAccepted {
		return
	}
	p.lastAccepted = k
	if p.lastSigned < k {
		p.lastSigned = k // the round is over; never sign it late
	}
	p.synchronized = true // a late booter integrates via its first round
	env.SetLogical(p.cfg.roundTarget(k))
	env.Pulse(k)
	if !p.cfg.DisableRelay {
		// Relay the complete evidence so every correct process accepts
		// within one message delay (the relay property).
		env.Broadcast(RoundMessage(k, entries(set)))
	}
	for r := range p.evidence {
		if r <= k {
			delete(p.evidence, r)
		}
	}
	if p.OnAccept != nil {
		p.OnAccept(k)
	}
	p.armTimer(env)
}

func awakeEntries(set map[node.ID]sig.Signature) []SignedEntry {
	return entries(set)
}

// deliverAwake merges awake evidence; on an f+1 quorum the process adopts
// logical time Alpha and starts the round schedule.
func (p *AuthProtocol) deliverAwake(env node.Env, sigs []SignedEntry) {
	if !p.cfg.ColdStart || p.synchronized {
		return
	}
	payload := awakePayload()
	for _, e := range sigs {
		if _, dup := p.awake[e.Signer]; dup {
			continue
		}
		if !env.Verify(e.Signer, payload, e.Sig) {
			continue
		}
		p.awake[e.Signer] = e.Sig
	}
	p.maybeSynchronize(env)
}

func (p *AuthProtocol) maybeSynchronize(env node.Env) {
	if p.synchronized || len(p.awake) < env.F()+1 {
		return
	}
	p.synchronized = true
	// Adopt a common epoch: logical time Alpha (one propagation delay
	// after the "first correct process is up" instant, mirroring the
	// round adjustment). Relay the quorum so everyone starts within one
	// message delay.
	env.SetLogical(p.cfg.Alpha)
	env.Broadcast(AwakeMessage(awakeEntries(p.awake)))
	if p.OnSynchronized != nil {
		p.OnSynchronized()
	}
	p.armTimer(env)
}

// entries flattens an evidence set deterministically (sorted by signer) so
// runs are reproducible byte-for-byte.
func entries(set map[node.ID]sig.Signature) []SignedEntry {
	out := make([]SignedEntry, 0, len(set))
	for id, s := range set {
		out = append(out, SignedEntry{Signer: id, Sig: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signer < out[j].Signer })
	return out
}
