package bounds

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optsync/internal/clock"
)

func sane() Params {
	return Params{
		N: 7, F: 3, Variant: Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.001, DMax: 0.01,
		Period:      10,
		InitialSkew: 0.02,
	}.WithDefaults()
}

func TestVariantString(t *testing.T) {
	if Auth.String() != "auth" || Primitive.String() != "primitive" {
		t.Fatalf("strings: %v %v", Auth, Primitive)
	}
	if got := Variant(9).String(); got != "Variant(9)" {
		t.Fatalf("unknown variant string = %q", got)
	}
}

func TestMaxFaults(t *testing.T) {
	cases := []struct {
		n          int
		auth, prim int
	}{
		{3, 1, 0}, {4, 1, 1}, {5, 2, 1}, {6, 2, 1}, {7, 3, 2},
		{9, 4, 2}, {10, 4, 3}, {13, 6, 4}, {31, 15, 10},
	}
	for _, c := range cases {
		if got := Auth.MaxFaults(c.n); got != c.auth {
			t.Errorf("Auth.MaxFaults(%d) = %d, want %d", c.n, got, c.auth)
		}
		if got := Primitive.MaxFaults(c.n); got != c.prim {
			t.Errorf("Primitive.MaxFaults(%d) = %d, want %d", c.n, got, c.prim)
		}
	}
}

func TestMaxFaultsMatchesValidate(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for _, v := range []Variant{Auth, Primitive} {
			f := v.MaxFaults(n)
			p := Params{N: n, F: f, Variant: v, DMax: 0.01, Period: 100}.WithDefaults()
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d %v f=%d should validate: %v", n, v, f, err)
			}
			p.F = f + 1
			if err := p.Validate(); !errors.Is(err, ErrResilience) {
				t.Fatalf("n=%d %v f=%d should fail resilience, got %v", n, v, f+1, err)
			}
		}
	}
}

func TestDefaultAlpha(t *testing.T) {
	got := DefaultAlpha(clock.Rho(0.5), 2)
	if got != 3 {
		t.Fatalf("DefaultAlpha = %v, want 3", got)
	}
	p := Params{N: 3, F: 1, Variant: Auth, Rho: 0.5, DMax: 2, Period: 100}
	if p.WithDefaults().Alpha != 3 {
		t.Fatalf("WithDefaults did not fill Alpha")
	}
	p.Alpha = 1
	if p.WithDefaults().Alpha != 1 {
		t.Fatalf("WithDefaults overwrote explicit Alpha")
	}
	if p0 := (Params{N: 3, F: 0, DMax: 1, Period: 10}).WithDefaults(); p0.Variant != Auth {
		t.Fatalf("WithDefaults variant = %v", p0.Variant)
	}
}

func TestBetaBySpreadHops(t *testing.T) {
	p := sane()
	if p.Beta() != p.DMax {
		t.Fatalf("auth beta = %v, want dmax", p.Beta())
	}
	p.Variant = Primitive
	p.F = 2
	if p.Beta() != 2*p.DMax {
		t.Fatalf("primitive beta = %v, want 2*dmax", p.Beta())
	}
}

func TestValidateRejectsBadDelays(t *testing.T) {
	p := sane()
	p.DMin, p.DMax = 0.5, 0.1
	if err := p.Validate(); !errors.Is(err, ErrDelays) {
		t.Fatalf("inverted delays: %v", err)
	}
	p = sane()
	p.DMax = 0
	if err := p.Validate(); !errors.Is(err, ErrDelays) {
		t.Fatalf("zero dmax: %v", err)
	}
	p = sane()
	p.DMin = -1
	if err := p.Validate(); !errors.Is(err, ErrDelays) {
		t.Fatalf("negative dmin: %v", err)
	}
}

func TestValidateRejectsShortPeriod(t *testing.T) {
	p := sane()
	p.Period = 0.001 // shorter than alpha+Dmax
	if err := p.Validate(); !errors.Is(err, ErrPeriod) {
		t.Fatalf("short period: %v", err)
	}
}

func TestValidateRejectsUnknownVariant(t *testing.T) {
	p := sane()
	p.Variant = Variant(42)
	if err := p.Validate(); err == nil {
		t.Fatal("unknown variant validated")
	}
}

func TestBoundsMonotoneInDmax(t *testing.T) {
	p := sane()
	small := p
	big := p
	big.DMax = p.DMax * 10
	big = Params{ // re-derive alpha for the new dmax
		N: big.N, F: big.F, Variant: big.Variant, Rho: big.Rho,
		DMin: big.DMin, DMax: big.DMax, Period: big.Period,
	}.WithDefaults()
	if big.Dmax() <= small.Dmax() {
		t.Fatalf("Dmax not monotone in dmax: %v <= %v", big.Dmax(), small.Dmax())
	}
	if big.D0() <= small.D0() {
		t.Fatalf("D0 not monotone in dmax")
	}
}

func TestBoundsMonotoneInPeriod(t *testing.T) {
	p := sane()
	long := p
	long.Period = p.Period * 10
	// Skew bound grows with P (drift term), the paper's F6 claim.
	if long.Dmax() <= p.Dmax() {
		t.Fatalf("Dmax not monotone in P: %v <= %v", long.Dmax(), p.Dmax())
	}
	// Envelope slack shrinks with P (accuracy converges to hardware rate).
	if long.EnvelopeSlack() >= p.EnvelopeSlack() {
		t.Fatalf("EnvelopeSlack not shrinking in P")
	}
}

func TestPminPmaxOrdering(t *testing.T) {
	p := sane()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Pmin() <= 0 {
		t.Fatalf("Pmin = %v", p.Pmin())
	}
	if p.Pmax() <= p.Pmin() {
		t.Fatalf("Pmax %v <= Pmin %v", p.Pmax(), p.Pmin())
	}
	// Both converge to about the period for tiny rho and delays.
	tiny := Params{N: 7, F: 3, Variant: Auth, Rho: 1e-9, DMin: 0, DMax: 1e-6, Period: 10}.WithDefaults()
	if math.Abs(tiny.Pmin()-10) > 0.01 || math.Abs(tiny.Pmax()-10) > 0.01 {
		t.Fatalf("tiny params: Pmin=%v Pmax=%v, want ~10", tiny.Pmin(), tiny.Pmax())
	}
}

func TestEnvelopeRateBoundsBracketHardware(t *testing.T) {
	p := sane()
	lo, hi := p.EnvelopeRateBounds()
	if lo >= p.Rho.MinRate() || hi <= p.Rho.MaxRate() {
		t.Fatalf("envelope [%v, %v] does not bracket hardware rates", lo, hi)
	}
	if lo >= 1 || hi <= 1 {
		t.Fatalf("envelope [%v, %v] does not contain 1", lo, hi)
	}
}

func TestDmaxWithStartCoversInitialSkew(t *testing.T) {
	p := sane()
	p.InitialSkew = 5 // huge initial skew dominates
	if got := p.DmaxWithStart(); got < 5 {
		t.Fatalf("DmaxWithStart = %v, must cover initial skew 5", got)
	}
	p.InitialSkew = 0
	if got := p.DmaxWithStart(); got != p.Dmax() {
		t.Fatalf("DmaxWithStart = %v, want steady-state %v", got, p.Dmax())
	}
}

func TestMessagesPerRound(t *testing.T) {
	p := sane() // n=7 f=3 auth: (7-3)*7*2 = 56
	if got := p.MessagesPerRound(); got != 56 {
		t.Fatalf("auth MessagesPerRound = %d, want 56", got)
	}
	p.Variant = Primitive
	p.F = 2 // (7-2)*7 = 35
	if got := p.MessagesPerRound(); got != 35 {
		t.Fatalf("primitive MessagesPerRound = %d, want 35", got)
	}
}

func TestRateBoundsCarryCorrectionTerms(t *testing.T) {
	p := sane()
	// Fast direction: the alpha pump.
	wantHi := p.Rho.MaxRate() * p.Period / (p.Period - p.Alpha)
	if got := p.RateUpper(); math.Abs(got-wantHi) > 1e-12 {
		t.Fatalf("RateUpper = %v, want %v", got, wantHi)
	}
	// Slow direction: acceptance lag.
	wantLo := p.Rho.MinRate() * p.Period / (p.Period + p.Beta() + p.DMax)
	if got := p.RateLower(); math.Abs(got-wantLo) > 1e-12 {
		t.Fatalf("RateLower = %v, want %v", got, wantLo)
	}
	if p.RateLower() >= 1 || p.RateUpper() <= 1 {
		t.Fatalf("rate bounds [%v, %v] do not straddle 1", p.RateLower(), p.RateUpper())
	}
	// Both converge to the hardware envelope as P grows.
	long := p
	long.Period = p.Period * 1000
	if long.RateUpper() >= p.RateUpper() || long.RateLower() <= p.RateLower() {
		t.Fatal("rate bounds not tightening with P")
	}
}

func TestEnvelopeSlackOverShrinksWithSpan(t *testing.T) {
	p := sane()
	short := p.EnvelopeSlackOver(20)
	long := p.EnvelopeSlackOver(2000)
	if long >= short {
		t.Fatalf("slack not shrinking: %v -> %v", short, long)
	}
	// Spans below Pmin clamp to Pmin.
	if got := p.EnvelopeSlackOver(0.001); got != p.EnvelopeSlackOver(p.Pmin()) {
		t.Fatalf("sub-Pmin span not clamped: %v", got)
	}
	lo, hi := p.EnvelopeRateBoundsOver(100)
	if lo >= 1 || hi <= 1 {
		t.Fatalf("span bounds [%v, %v] do not straddle 1", lo, hi)
	}
	lo2, hi2 := p.EnvelopeRateBounds()
	if lo2 > lo || hi2 < hi {
		t.Fatalf("per-period bounds [%v, %v] tighter than span bounds [%v, %v]", lo2, hi2, lo, hi)
	}
}

func TestResyncWindowPositive(t *testing.T) {
	p := sane()
	if p.ResyncWindow() <= 0 || p.ResyncWindow() < p.Period-p.Alpha {
		t.Fatalf("ResyncWindow = %v", p.ResyncWindow())
	}
}

// Property: for any valid parameterization, the internal ordering of the
// constants holds: 0 < D0 <= Dmax, beta > 0, Pmin < Period < Pmax + alpha.
func TestConstantOrderingProperty(t *testing.T) {
	f := func(rawN uint8, rawRho, rawD, rawP uint16, prim bool) bool {
		n := 4 + int(rawN%28)
		v := Auth
		if prim {
			v = Primitive
		}
		p := Params{
			N: n, F: v.MaxFaults(n), Variant: v,
			Rho:    clock.Rho(float64(rawRho%1000+1) * 1e-6),
			DMin:   0,
			DMax:   float64(rawD%100+1) * 1e-3,
			Period: 20 + float64(rawP%1000)/10,
		}.WithDefaults()
		if err := p.Validate(); err != nil {
			return true // invalid combos are out of scope
		}
		if p.D0() <= 0 || p.Dmax() < p.D0() || p.Beta() <= 0 {
			return false
		}
		if p.Pmin() <= 0 || p.Pmax() <= p.Pmin() {
			return false
		}
		lo, hi := p.EnvelopeRateBounds()
		return lo < 1 && hi > 1
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
