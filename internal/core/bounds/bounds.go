// Package bounds implements the analytic constants of Srikanth & Toueg's
// optimal clock synchronization as executable formulas, so that every
// simulated run can be checked against the theorems.
//
// Notation (matching DESIGN.md):
//
//	rho   hardware drift bound; rates in [1/(1+rho), 1+rho]
//	dmin, dmax   message delay bounds between correct processes
//	P     resynchronization period (logical time between rounds)
//	alpha adjustment constant: on accepting round k a process sets its
//	      logical clock to k*P + alpha
//	beta  acceptance-spread bound: all correct processes accept a round
//	      within beta real time of the first correct acceptance. For the
//	      authenticated algorithm beta = dmax (the accepting process relays
//	      the full signature set, one hop); for the broadcast-primitive
//	      algorithm beta = 2*dmax (ready messages take up to two hops:
//	      f+1 correct readies trigger joins, joins complete the 2f+1
//	      acceptance quorum).
//
// Derivations (proved in the paper; re-derived in comments here because the
// tests rely on them):
//
//	D0   := (1+rho) * beta
//	       Post-resynchronization skew. If v accepts at a_v and w at
//	       a_w >= a_v with a_w - a_v <= beta, then at a_w process v's clock
//	       reads k*P + alpha + (H_v(a_w) - H_v(a_v)) <= k*P + alpha +
//	       (1+rho)*beta while w's reads exactly k*P + alpha.
//
//	Dmax := D0 + ((1+rho) - 1/(1+rho)) * L
//	       Steady-state agreement bound, where L bounds the real time
//	       between the end of one resynchronization and the end of the
//	       next: L = (1+rho)*(P - alpha) + dmax + beta (slowest clock needs
//	       (1+rho)(P-alpha) to progress from k*P+alpha to (k+1)*P, plus one
//	       delay for its evidence to circulate, plus the next spread).
//	       During L, two correct clocks diverge at most at the relative
//	       drift rate (1+rho) - 1/(1+rho).
//
//	Pmin := (P - alpha - Dmax)/(1+rho) - beta
//	       Minimum real time between a process's consecutive pulses; must
//	       be positive for the algorithm (and the experiments) to be
//	       meaningful.
//
//	Pmax := (1+rho)*(P - alpha) + dmax + 2*beta + D0
//	       Maximum real time between consecutive pulses at any process.
package bounds

import (
	"errors"
	"fmt"

	"optsync/internal/clock"
)

// Variant selects which of the paper's two algorithms the constants
// describe.
type Variant int

const (
	// Auth is the authenticated algorithm (Section 3 of the paper):
	// tolerates f <= ceil(n/2)-1 with signatures; acceptance spreads in
	// one message hop.
	Auth Variant = iota + 1
	// Primitive is the non-authenticated algorithm built on the broadcast
	// primitive (Section 4): tolerates f < n/3; acceptance spreads in two
	// hops.
	Primitive
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Auth:
		return "auth"
	case Primitive:
		return "primitive"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// SpreadHops returns the number of message hops acceptance takes to spread.
func (v Variant) SpreadHops() float64 {
	if v == Primitive {
		return 2
	}
	return 1
}

// MaxFaults returns the paper's optimal resilience for the variant:
// ceil(n/2)-1 with authentication, floor((n-1)/3) without.
func (v Variant) MaxFaults(n int) int {
	if v == Primitive {
		return (n - 1) / 3
	}
	return (n+1)/2 - 1 // ceil(n/2) - 1
}

// Params carries a full parameterization of one deployment.
type Params struct {
	N, F    int
	Variant Variant
	Rho     clock.Rho
	// DMin, DMax bound the delay of messages between correct processes.
	DMin, DMax float64
	// Period is P, the logical time between resynchronization rounds.
	Period float64
	// Alpha is the adjustment constant; see DefaultAlpha.
	Alpha float64
	// InitialSkew bounds |H_i(0) - H_j(0)| over correct processes.
	InitialSkew float64
}

// DefaultAlpha returns the paper's choice of adjustment constant,
// (1+rho)*dmax: the expected local-clock advance between a correct process
// broadcasting "round k" and processes accepting it, so that jumps are
// small and centered.
func DefaultAlpha(rho clock.Rho, dmax float64) float64 {
	return rho.MaxRate() * dmax
}

// WithDefaults fills Alpha (if zero) and returns the updated Params.
func (p Params) WithDefaults() Params {
	if p.Variant == 0 {
		p.Variant = Auth
	}
	if p.Alpha == 0 {
		p.Alpha = DefaultAlpha(p.Rho, p.DMax)
	}
	return p
}

// Errors returned by Validate.
var (
	ErrResilience = errors.New("bounds: too many faults for variant")
	ErrPeriod     = errors.New("bounds: period too short for parameters")
	ErrDelays     = errors.New("bounds: invalid delay range")
)

// Validate checks that the parameterization satisfies the paper's
// constraints: resilience (n > 2f with authentication, n > 3f without) and
// a period long enough that rounds cannot overlap (Pmin > 0).
func (p Params) Validate() error {
	if p.DMin < 0 || p.DMax < p.DMin || p.DMax <= 0 {
		return fmt.Errorf("%w: [%v, %v]", ErrDelays, p.DMin, p.DMax)
	}
	switch p.Variant {
	case Auth:
		if 2*p.F >= p.N {
			return fmt.Errorf("%w: auth requires n > 2f, got n=%d f=%d", ErrResilience, p.N, p.F)
		}
	case Primitive:
		if 3*p.F >= p.N {
			return fmt.Errorf("%w: primitive requires n > 3f, got n=%d f=%d", ErrResilience, p.N, p.F)
		}
	default:
		return fmt.Errorf("bounds: unknown variant %v", p.Variant)
	}
	if p.Pmin() <= 0 {
		return fmt.Errorf("%w: P=%v yields Pmin=%v", ErrPeriod, p.Period, p.Pmin())
	}
	if p.Alpha >= p.Period {
		return fmt.Errorf("%w: alpha=%v >= P=%v", ErrPeriod, p.Alpha, p.Period)
	}
	return nil
}

// Beta returns the acceptance-spread bound.
func (p Params) Beta() float64 {
	return p.Variant.SpreadHops() * p.DMax
}

// D0 returns the post-resynchronization skew bound (1+rho)*beta, plus the
// initial skew term for round 0 (the bound must also cover the state before
// the first resynchronization, which is InitialSkew plus drift; steady
// state is governed by the resync term).
func (p Params) D0() float64 {
	return p.Rho.MaxRate() * p.Beta()
}

// ResyncWindow returns L, the real-time bound between the end of one
// resynchronization and the end of the next.
func (p Params) ResyncWindow() float64 {
	return p.Rho.MaxRate()*(p.Period-p.Alpha) + p.DMax + p.Beta()
}

// Dmax returns the steady-state agreement bound. Besides the
// post-resynchronization skew D0 and the drift accumulated between rounds,
// it carries an additive alpha for the *acceptance-wave transient*: while a
// round's acceptances propagate, a process that already accepted reads
// k*P + alpha while a process that has not yet accepted can read up to the
// pre-round skew behind k*P — with a small quorum (f+1 with small f)
// acceptance fires as soon as the fastest processes are ready, exposing the
// full alpha + D_pre gap for up to beta time.
func (p Params) Dmax() float64 {
	return p.D0() + p.Alpha + p.Rho.RelativeDrift()*p.ResyncWindow()
}

// DmaxWithStart returns the agreement bound covering the initial interval
// as well: the maximum of the steady-state bound and the initial skew plus
// drift accumulated until the first resynchronization completes.
func (p Params) DmaxWithStart() float64 {
	initial := p.InitialSkew + p.Rho.RelativeDrift()*(p.Rho.MaxRate()*p.Period+p.DMax+p.Beta())
	if d := p.Dmax(); d > initial {
		return d
	}
	return initial
}

// Pmin returns the minimum real time between a correct process's
// consecutive pulses.
func (p Params) Pmin() float64 {
	return (p.Period-p.Alpha-p.Dmax())/p.Rho.MaxRate() - p.Beta()
}

// Pmax returns the maximum real time between a correct process's
// consecutive pulses.
func (p Params) Pmax() float64 {
	return p.Rho.MaxRate()*(p.Period-p.Alpha) + p.DMax + 2*p.Beta() + p.D0()
}

// EnvelopeSlack returns the additive slack on the long-run logical clock
// rate induced by per-round jitter: each round contributes at most
// D0 + alpha + dmax of phase noise over a period of at least Pmin real
// time, so a rate measured by regression over many rounds lies within
// [1/(1+rho) - slack, (1+rho) + slack].
func (p Params) EnvelopeSlack() float64 {
	return (p.D0() + p.Alpha + p.DMax) / p.Pmin()
}

// RateUpper returns the worst-case long-run rate of the synchronized
// clocks under within-resilience adversarial timing. Faulty processes may
// sign "round k" arbitrarily early; acceptance then fires the instant the
// fastest correct clock reads k*P, and the +alpha jump compounds: logical
// progress P per at least (P-alpha)/(1+rho) real time, i.e. rate at most
// (1+rho)*P/(P-alpha). The paper's accuracy theorem carries exactly this
// correction term, and its optimality theorem shows no algorithm can avoid
// it (the adversary hides inside the delay uncertainty); "optimal
// accuracy" means matching these bounds, which converge to the hardware
// bounds as P grows.
func (p Params) RateUpper() float64 {
	return p.Rho.MaxRate() * p.Period / (p.Period - p.Alpha)
}

// RateLower is the slow-direction counterpart of RateUpper: acceptance can
// lag the last correct process's readiness by a full message delay plus the
// acceptance spread, so logical progress P can take up to about
// (P + beta + dmax)/(1/(1+rho)) real time.
func (p Params) RateLower() float64 {
	return p.Rho.MinRate() * p.Period / (p.Period + p.Beta() + p.DMax)
}

// EnvelopeRateBounds returns the admissible long-run rate interval for the
// synchronized logical clocks. Optimal accuracy means these bounds converge
// to the hardware bounds [1/(1+rho), 1+rho] as P grows — the defining
// property of the paper.
func (p Params) EnvelopeRateBounds() (lo, hi float64) {
	s := p.EnvelopeSlack()
	return p.RateLower() - s, p.RateUpper() + s
}

// EnvelopeSlackOver returns the rate slack for a least-squares fit over a
// measurement span of duration d. The synchronized clocks equal real time
// times a hardware-envelope rate plus bounded phase noise of amplitude
// eps = D0 + alpha + dmax; the worst-case slope bias of an OLS fit of
// bounded noise over span d is 3*eps/d (cov(x, g) <= eps*d/4 against
// var(x) = d^2/12), so we allow 4*eps/d for margin. This is the form in
// which the paper's optimal accuracy is falsifiable: the measured rate
// converges to the hardware envelope as the horizon grows, while a
// sub-optimal algorithm under attack has a genuine rate error that does
// not shrink with d.
func (p Params) EnvelopeSlackOver(d float64) float64 {
	if d < p.Pmin() {
		d = p.Pmin()
	}
	return 4 * (p.D0() + p.Alpha + p.DMax) / d
}

// EnvelopeRateBoundsOver is EnvelopeRateBounds with the measurement-span
// slack of EnvelopeSlackOver.
func (p Params) EnvelopeRateBoundsOver(d float64) (lo, hi float64) {
	s := p.EnvelopeSlackOver(d)
	return p.RateLower() - s, p.RateUpper() + s
}

// MessagesPerRound returns the worst-case number of messages correct
// processes send per resynchronization round: each broadcasts its evidence
// and relays once on acceptance (auth), or sends ready once (primitive
// processes send at most one ready per round) — O(n^2) links either way.
func (p Params) MessagesPerRound() int {
	correct := p.N - p.F
	if p.Variant == Auth {
		return 2 * correct * p.N // initial broadcast + relay, n recipients each
	}
	return correct * p.N // one ready broadcast each
}
