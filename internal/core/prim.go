package core

import (
	"optsync/internal/network"
	"optsync/internal/node"
)

// KindReady announces that the sender's clock reached Round*P (or that
// the sender joined the round after seeing f+1 readies). It carries no
// signature: the non-authenticated algorithm derives its guarantees purely
// from counting distinct senders, which the authenticated channels of the
// model make meaningful. The envelope is scalar-only — a ready crosses
// the network without allocating.
var KindReady = network.NewKind("st/ready")

// ReadyMessage assembles a ready(round) envelope.
func ReadyMessage(round int) node.Message {
	return node.Message{Kind: KindReady, Round: round}
}

// PrimitiveProtocol is the non-authenticated algorithm (paper Section 4),
// the symmetric specialization of the Srikanth-Toueg broadcast primitive
// for f < n/3:
//
//	when C_v = k*P:                     send ready(k) to all (if not yet)
//	on f+1 distinct ready(k):           send ready(k) to all (if not yet)
//	on 2f+1 distinct ready(k),
//	k > last accepted:                  accept: C_v := k*P + alpha
//
// Unforgeability: 2f+1 distinct senders include f+1 correct ones, and the
// first correct ready for a round is sent only when that process's clock
// reads k*P (a correct join presupposes f+1 earlier readies, of which one
// is correct and earlier — induction). Correctness: once f+1 correct
// processes are ready, every correct process joins within one delay and the
// 2f+1 quorum (n-f >= 2f+1) completes within another. Relay: if a correct
// process accepts at t, then f+1 correct readies were sent by t, so every
// correct process joins by t+dmax and accepts by t+2*dmax.
type PrimitiveProtocol struct {
	cfg Config

	lastAccepted int
	lastSent     int
	readyFrom    map[int]map[node.ID]bool
	sent         map[int]bool
	timer        node.Timer

	// OnAccept, if set, observes each acceptance.
	OnAccept func(round int)
}

var _ node.Protocol = (*PrimitiveProtocol)(nil)

// NewPrimitive constructs the protocol.
func NewPrimitive(cfg Config) *PrimitiveProtocol {
	cfg = cfg.withDefaults()
	cfg.validate()
	return &PrimitiveProtocol{
		cfg:       cfg,
		readyFrom: make(map[int]map[node.ID]bool),
		sent:      make(map[int]bool),
	}
}

// LastAccepted returns the highest accepted round (0 before the first).
func (p *PrimitiveProtocol) LastAccepted() int { return p.lastAccepted }

// Start implements node.Protocol.
func (p *PrimitiveProtocol) Start(env node.Env) {
	p.armTimer(env)
}

// Deliver implements node.Protocol.
func (p *PrimitiveProtocol) Deliver(env node.Env, from node.ID, msg node.Message) {
	if msg.Kind != KindReady {
		return
	}
	round := msg.Round
	if round <= p.lastAccepted || round > p.lastAccepted+p.cfg.MaxRoundAhead {
		return
	}
	set := p.readyFrom[round]
	if set == nil {
		set = make(map[node.ID]bool)
		p.readyFrom[round] = set
	}
	set[from] = true // duplicate readies from one sender count once
	if len(set) >= env.F()+1 {
		p.sendReady(env, round) // join
	}
	if len(set) >= 2*env.F()+1 {
		p.accept(env, round)
	}
}

func (p *PrimitiveProtocol) armTimer(env node.Env) {
	env.Cancel(p.timer)
	next := p.lastSent + 1
	if next <= p.lastAccepted {
		next = p.lastAccepted + 1
	}
	p.timer = env.AtLogical(p.cfg.roundDue(next), func() {
		p.sendReady(env, next)
		if p.lastAccepted < next {
			p.armTimer(env)
		}
	})
}

func (p *PrimitiveProtocol) sendReady(env node.Env, k int) {
	if p.sent[k] || k <= p.lastAccepted {
		return
	}
	p.sent[k] = true
	if p.lastSent < k {
		p.lastSent = k
	}
	env.Broadcast(ReadyMessage(k))
}

func (p *PrimitiveProtocol) accept(env node.Env, k int) {
	if k <= p.lastAccepted {
		return
	}
	p.lastAccepted = k
	env.SetLogical(p.cfg.roundTarget(k))
	env.Pulse(k)
	for r := range p.readyFrom {
		if r <= k {
			delete(p.readyFrom, r)
		}
	}
	for r := range p.sent {
		if r <= k {
			delete(p.sent, r)
		}
	}
	if p.OnAccept != nil {
		p.OnAccept(k)
	}
	p.armTimer(env)
}
