// Package core implements the two clock synchronization algorithms of
// Srikanth & Toueg, "Optimal Clock Synchronization" (PODC 1985 / JACM
// 1987).
//
// Both algorithms resynchronize in rounds: when a correct process's logical
// clock reads k*P it broadcasts evidence that round k is due; when a process
// *accepts* round k — obtains proof that at least one correct process's
// clock reached k*P — it sets its logical clock to k*P + alpha and relays
// the proof. The relay step bounds the spread of acceptance times across
// correct processes, which bounds the skew; because the clocks progress at
// hardware rate between rounds and the per-round adjustment is bounded by
// the skew, the synchronized clocks stay within a linear envelope of real
// time with the *same* rate bounds as the hardware clocks — the paper's
// optimal accuracy.
//
// The two variants differ in what constitutes proof:
//
//   - AuthProtocol (paper Section 3, f <= ceil(n/2)-1): a set of f+1
//     distinct valid signatures over "round k". Since at most f signers are
//     faulty, one signature comes from a correct process, which signs only
//     when its clock reads k*P (unforgeability). An accepting process
//     relays the signature set, so every correct process accepts within one
//     message delay of the first (relay).
//
//   - PrimitiveProtocol (paper Section 4, f < n/3): the symmetric
//     specialization of the paper's broadcast primitive. Processes send
//     ready(k) when their clock reads k*P; f+1 distinct ready(k) messages
//     prove some correct process is ready and cause a process to join
//     (send its own ready even before its clock reads k*P); 2f+1 distinct
//     ready(k) messages constitute acceptance. The general, asymmetric
//     primitive is in the stcast subpackage.
//
// Protocols communicate only through the node.Env interface and observe
// time only through the logical clock, as the model demands.
package core

import (
	"encoding/binary"
	"fmt"

	"optsync/internal/core/bounds"
)

// Config parameterizes either protocol variant.
type Config struct {
	// Period is P: the logical time between resynchronization rounds.
	Period float64
	// Alpha is the adjustment constant: accepting round k sets the clock
	// to k*P + Alpha. Use bounds.DefaultAlpha for the paper's choice.
	Alpha float64
	// MaxRoundAhead caps how far beyond the last accepted round per-round
	// state is retained, bounding memory against spam from faulty
	// processes. Rounds further ahead are ignored. Zero selects a
	// generous default.
	MaxRoundAhead int
	// ColdStart, when true, makes processes establish initial
	// synchronization instead of assuming it: hardware clocks may be
	// arbitrarily wrong at boot. Each process broadcasts a signed "awake"
	// message at boot; on f+1 distinct awake signatures (at least one
	// correct process is up) it sets its logical clock to Alpha, relays
	// the evidence, and starts the round schedule. Processes that boot
	// after the system is running synchronize by accepting the first
	// round they observe instead (the paper's integration path).
	ColdStart bool
	// DisableRelay turns off the relay-on-accept broadcast (authenticated
	// variant). FOR ABLATION ONLY: it voids the acceptance-spread bound —
	// the ablation benchmarks use it to measure what the relay step buys.
	DisableRelay bool
}

const defaultMaxRoundAhead = 1 << 14

func (c Config) withDefaults() Config {
	if c.MaxRoundAhead == 0 {
		c.MaxRoundAhead = defaultMaxRoundAhead
	}
	return c
}

func (c Config) validate() {
	if c.Period <= 0 {
		panic(fmt.Sprintf("core: non-positive period %v", c.Period))
	}
	if c.Alpha < 0 || c.Alpha >= c.Period {
		panic(fmt.Sprintf("core: alpha %v outside [0, period %v)", c.Alpha, c.Period))
	}
}

// ConfigFromBounds derives a protocol Config from a validated
// parameterization.
func ConfigFromBounds(p bounds.Params) Config {
	p = p.WithDefaults()
	return Config{Period: p.Period, Alpha: p.Alpha}
}

// RoundPayload is the canonical byte encoding of "round k" that gets
// signed. It is exported so that adversarial protocol implementations (the
// model lets faulty processes sign anything with their own keys) and tests
// can construct evidence; correct protocols never need it directly.
func RoundPayload(round int) []byte { return roundPayload(round) }

// roundPayload is the canonical byte encoding of "round k" that gets
// signed. The domain prefix prevents cross-protocol signature reuse.
func roundPayload(round int) []byte {
	const prefix = "optsync/st/round/"
	buf := make([]byte, len(prefix)+8)
	copy(buf, prefix)
	binary.BigEndian.PutUint64(buf[len(prefix):], uint64(int64(round)))
	return buf
}

// awakePayload is the canonical byte encoding of the cold-start "awake"
// announcement.
func awakePayload() []byte { return []byte("optsync/st/awake") }

// roundTarget returns the logical clock value a process adopts when
// accepting round k.
func (c Config) roundTarget(round int) float64 {
	return float64(round)*c.Period + c.Alpha
}

// roundDue returns the logical clock value at which round k evidence is
// broadcast.
func (c Config) roundDue(round int) float64 {
	return float64(round) * c.Period
}
