package tracelake

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"optsync/internal/probe"
)

// benchLake is built once: ~1M synthetic events shaped like a real
// broadcast-storm trace, so the column mix (const kinds, clustered
// node ids, monotone-ish timestamps) matches what live runs produce.
var benchLake struct {
	once sync.Once
	data []byte
	evs  int
	tMax float64
}

func benchSetup(b *testing.B) (*Lake, int, float64) {
	benchLake.once.Do(func() {
		evs := synthEvents(32, 1000, 42)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, ev := range evs {
			w.OnEvent(ev)
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
		benchLake.data = buf.Bytes()
		benchLake.evs = len(evs)
		benchLake.tMax = evs[len(evs)-1].T
	})
	l, err := OpenBytes(benchLake.data)
	if err != nil {
		b.Fatal(err)
	}
	return l, benchLake.evs, benchLake.tMax
}

// BenchmarkLakeScan/full is the raw-bandwidth number the CI floor
// gates: a single-core sequential ScanRows over every block, decoding
// every column of every event. events/s is the headline metric.
// Workers is pinned to 1 throughout: a zero Workers now means
// one-per-core, and these sub-benchmarks are the single-core record
// the serial-regression gate compares against (parallel scaling has its
// own family below).
func BenchmarkLakeScan(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		l, n, _ := benchSetup(b)
		defer l.Close()
		b.SetBytes(int64(len(benchLake.data)))
		b.ResetTimer()
		rows := uint64(0)
		for i := 0; i < b.N; i++ {
			st, err := l.ScanRows(Query{Workers: 1}, func(r *Rows) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			rows += st.RowsDecoded
		}
		if rows != uint64(n)*uint64(b.N) {
			b.Fatalf("decoded %d rows, want %d", rows, uint64(n)*uint64(b.N))
		}
		b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "events/s")
	})

	// pruned: a ~1%-selective time slice. The footer index should skip
	// almost every block, so ns/op must be far below full's (the compare
	// script enforces >5x).
	b.Run("pruned", func(b *testing.B) {
		l, _, tMax := benchSetup(b)
		defer l.Close()
		q := Query{Workers: 1}.WithTimeRange(tMax*0.495, tMax*0.505)
		b.ResetTimer()
		var last ScanStats
		for i := 0; i < b.N; i++ {
			st, err := l.ScanRows(q, func(r *Rows) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			last = st
		}
		b.StopTimer()
		if last.BlocksPruned == 0 || last.BlocksScanned*2 >= last.BlocksTotal {
			b.Fatalf("pruning ineffective: %+v", last)
		}
		b.ReportMetric(float64(last.BlocksScanned)/float64(last.BlocksTotal), "scanned-frac")
	})

	// merge: the ordered event-at-a-time path Replay rides on — not
	// floor-gated, tracked for trajectory.
	b.Run("merge", func(b *testing.B) {
		l, n, _ := benchSetup(b)
		defer l.Close()
		b.ResetTimer()
		events := uint64(0)
		for i := 0; i < b.N; i++ {
			st, err := l.Scan(Query{Workers: 1}, func(probe.Event) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			events += st.EventsMatched
		}
		if events != uint64(n)*uint64(b.N) {
			b.Fatalf("merged %d events, want %d", events, uint64(n)*uint64(b.N))
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkLakeScanParallel measures the multi-core full scan at fixed
// worker counts. The CI gate compares workers=8 against workers=1 on
// the same -cpu run and arms only when the runner actually has >= 8
// cores (run with -cpu 1,8 so both points exist). workers=1 doubles as
// the overhead probe: it takes the exact serial path, so any gap vs
// BenchmarkLakeScan/full is harness noise, not pool cost.
func BenchmarkLakeScanParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			l, n, _ := benchSetup(b)
			defer l.Close()
			b.SetBytes(int64(len(benchLake.data)))
			b.ResetTimer()
			rows := uint64(0)
			for i := 0; i < b.N; i++ {
				st, err := l.ScanRows(Query{Workers: workers}, func(r *Rows) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				rows += st.RowsDecoded
			}
			if rows != uint64(n)*uint64(b.N) {
				b.Fatalf("decoded %d rows, want %d", rows, uint64(n)*uint64(b.N))
			}
			b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkLakeWrite tracks the ingest side (probe sink hot path).
func BenchmarkLakeWrite(b *testing.B) {
	evs := synthEvents(16, 50, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriter(&nullWriter{})
		for _, ev := range evs {
			w.OnEvent(ev)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/s")
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
