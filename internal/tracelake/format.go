// Package tracelake is the columnar trace container and query engine of
// the observation layer: the at-rest form of the probe event stream.
//
// The trace formats of internal/probe (JSONL and the 40-byte binary
// framing) are row-oriented and write-only: answering "skew samples of
// node 17 between t=2.5 and t=9" means decoding every frame of the
// stream. A lake stores the same events partitioned into per-type row
// groups of struct-of-arrays column blocks, with a footer index carrying
// per-block type, count, and min/max bounds for time, node ids, and
// rounds — so a reader seeks straight to the blocks a query can match
// and never touches the rest (ndn-dpdk's packet-oriented SoA layout is
// the design reference). Columns are delta-encoded, then either
// bit-packed at a fixed width or prefix-varint coded, whichever is
// smaller (see below); no general-purpose compressor is used — the
// standard library has no zstd, and flate on the scan path would cost
// an order of magnitude in decode speed for ~2x the density the delta
// codecs already provide on this data.
//
// # Container layout (version 1)
//
//	offset 0           magic "OSLAKE1\n" (8 bytes)
//	...                blocks, back to back (layout below)
//	...                footer: crc32c + index of every block
//	size-16            trailer: footer length (8 bytes LE) + end magic
//	                   "OSLAKEX1" (8 bytes)
//
// A reader opens the trailer, checksums and parses the footer, and then
// has random access to every block without scanning the file. A writer
// only ever appends, so a live simulation can stream into a lake with
// one buffered file handle.
//
// Each block holds up to blockRows events of ONE event type, as eight
// columns (seq, t, from, to, kind, round, value, aux) encoded
// independently:
//
//	u32    crc32c of the payload below
//	u8     event type
//	u32    row count
//	8 x    u8 codec, u32 encoded length, then the column bytes
//
// The seq column is the event's position in the original stream: the
// partition by type destroys global order, and collectors (P² quantile
// estimators in particular) are order-sensitive, so replay merges blocks
// back by seq to reproduce the recorded stream exactly — including
// interleaved multi-run batch traces, whose timestamps are not monotone.
//
// # Column codecs
//
// codecConst: all rows carry one value; the payload is its 8-byte image.
//
// codecPacked: frame-of-reference — the block's minimum value as a raw
// 8-byte image, a width byte, then every row's residual (value minus
// minimum, on the 64-bit integer image: float columns use their
// IEEE-754 bit patterns, which round-trips exactly) at that fixed bit
// width; width 64 stores raw 8-byte words. Decoding is one 8-byte load
// plus an add per value at a constant bit stride — no loop-carried
// dependency at all, neither in the address chain nor through a prefix
// sum — which is what carries a full scan past 100M events/s.
//
// codecDelta: the column's first value as a raw 8-byte image, then the
// remaining rows as prefix-varint zigzag deltas from their predecessor
// (again on the integer image; exact for floats). The varint's encoded
// byte count sits in the low nibble of its first byte, so the decoder
// reads one length-free 8-byte load per value instead of chasing
// continuation bits. Denser than packed when magnitudes are skewed — a
// single outlier row would widen every packed residual.
//
// codecDict: for float columns whose rows repeat a small set of values
// (low-cardinality aux payloads — drop reason codes, per-kind
// constants): an entry count, the distinct 8-byte bit images sorted
// ascending, then every row as a bit-packed index into that table. A
// block of 4096 rows drawing from 16 values costs ~4 bits/row where
// frame-of-reference packing of unrelated float images would need
// 64. The writer measures the density (distinct-image count, abandoning
// past dictMaxEntries) and emits dict only when it beats both delta
// codecs; the codec byte gates the reader exactly like the others, so
// the container version is unchanged and round-trips stay bit-exact.
//
// The writer sizes both encodings and emits the smaller (packed on
// ties, for its faster decode), so the choice is a per-column,
// per-block decision the reader discovers from the codec byte.
package tracelake

import (
	"encoding/binary"
	"math"
	"math/bits"

	"optsync/internal/probe"
)

// Magic identifies a lake container (format version 1). probe.LakeMagic
// is the same sequence: ReadTrace uses it to reject lakes with a pointer
// here instead of misparsing them as JSONL.
var Magic = [8]byte{'O', 'S', 'L', 'A', 'K', 'E', '1', '\n'}

// endMagic closes the container; the 8 bytes before it are the footer
// length. Its presence is what distinguishes "truncated" from "garbage".
var endMagic = [8]byte{'O', 'S', 'L', 'A', 'K', 'E', 'X', '1'}

const (
	// blockRows is the row-group size: the pruning granularity and the
	// unit of decode. 4096 rows keeps a 1%-selective time query skipping
	// >95% of a large trace while the per-block footer entry stays ~1% of
	// the block's own size.
	blockRows = 4096

	// maxBlockRows bounds the row count a reader will believe. A const
	// column encodes any row count in 8 bytes, so the count cannot be
	// sanity-checked against the payload size alone; this cap keeps a
	// corrupt footer from asking for a multi-gigabyte decode buffer.
	maxBlockRows = 1 << 20

	// trailerSize is the fixed tail: footer length + end magic.
	trailerSize = 16

	// numCols is the per-block column count: seq, t, from, to, kind,
	// round, value, aux.
	numCols = 8

	// blockHeaderSize is the fixed prefix of a block: crc + type + count.
	blockHeaderSize = 4 + 1 + 4
)

// Column codecs. The writer encodes each column's zigzag delta stream
// both ways on paper (a size computation, not a second pass) and emits
// the smaller, preferring packed on ties for its faster decode. Float
// columns additionally compete against codecDict (see below), which
// wins on low-cardinality payloads — repeated aux values in particular.
const (
	codecConst  = 0x01 // all rows carry one value: the 8-byte image
	codecDelta  = 0x02 // prefix-varint zigzag deltas
	codecPacked = 0x03 // fixed-width bit-packed zigzag deltas
	codecDict   = 0x04 // sorted image dictionary + bit-packed indices
)

// dictMaxEntries bounds the dictionary codec: past 64 distinct images
// the indices need 7+ bits and the 8-byte-per-entry table starts eating
// the savings, while the writer's per-row binary search stops being
// negligible. A column that exceeds it falls back to delta/packed.
const dictMaxEntries = 64

// zigzag folds signed deltas into unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is its inverse.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendPV appends v as a prefix varint: low nibble of the first byte is
// the count of following bytes (0..8), high nibble the low 4 bits of v,
// following bytes the rest little-endian. Values below 16 cost one byte.
func appendPV(dst []byte, v uint64) []byte {
	w := v >> 4
	n := 0
	for x := w; x != 0; x >>= 8 {
		n++
	}
	var scratch [9]byte
	scratch[0] = byte(n) | byte(v<<4)
	binary.LittleEndian.PutUint64(scratch[1:], w)
	return append(dst, scratch[:1+n]...)
}

// pvMask[n] keeps the low 8*n bits: the mask applied to the 8-byte load
// behind a prefix varint's first byte. A table lookup instead of a
// computed shift matters on the scan path — Go guards variable shifts
// whose amount might reach 64, and that guard is per decoded value.
// Entries 9..15 (impossible lengths, reachable only through corrupt
// data) saturate; the per-loop offset guards keep such input safe.
var pvMask = [16]uint64{
	0x00, 0xff, 0xffff, 0xffffff, 0xffffffff,
	0xff_ffffffff, 0xffff_ffffffff, 0xffffff_ffffffff, 0xffffffff_ffffffff,
	^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0),
}

// pvAt decodes the prefix varint at src[off]. src MUST have at least 9
// readable bytes at off (column buffers are padded — see the block
// reader); the unconditional 8-byte load is what makes the decode
// branch-free on length. Returns the value and the offset past it.
func pvAt(src []byte, off int) (uint64, int) {
	b0 := src[off]
	n := int(b0 & 0x0f)
	w := binary.LittleEndian.Uint64(src[off+1:]) & pvMask[b0&0x0f]
	return uint64(b0>>4) | w<<4, off + 1 + n
}

// --- column encoders (writer side) ---

// appendConstCol appends a const-codec image.
func appendConstCol(dst []byte, image uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], image)
	return append(dst, b[:]...)
}

// pvLen is the encoded size of v as a prefix varint.
func pvLen(v uint64) int {
	n := 1
	for x := v >> 4; x != 0; x >>= 8 {
		n++
	}
	return n
}

// packedWidth is the bit width codecPacked would use for the residual
// stream: enough for the widest residual, saturating to a raw 8-byte
// layout past 57 bits (where a value could straddle more than one
// 64-bit load).
func packedWidth(resid []uint64) int {
	w := 0
	for _, r := range resid {
		w = max(w, 64-bits.LeadingZeros64(r))
	}
	if w > 57 {
		return 64
	}
	return w
}

// packedSize is the width byte plus n residuals at width w.
func packedSize(n, w int) int { return 1 + (n*w+7)/8 }

// appendPacked appends the width byte, then the residuals bit-packed
// little-endian (width 64 stores raw 8-byte words).
func appendPacked(dst []byte, resid []uint64, width int) []byte {
	dst = append(dst, byte(width))
	if width == 64 {
		for _, r := range resid {
			dst = binary.LittleEndian.AppendUint64(dst, r)
		}
		return dst
	}
	acc, accBits := uint64(0), 0
	for _, r := range resid {
		acc |= r << uint(accBits) // accBits <= 7 here, width <= 57: no overflow
		accBits += width
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// appendVarints appends the codecDelta payload for the deltas.
func appendVarints(dst []byte, deltas []uint64) []byte {
	for _, d := range deltas {
		dst = appendPV(dst, d)
	}
	return dst
}

// The deltas* helpers turn a column into its first value (as a raw
// 8-byte image) plus the zigzag delta stream of the REST — the shared
// input of both non-const codecs. Keeping the first value out of the
// stream matters: a block's opening seq or timestamp is a huge "delta
// from zero" that would otherwise widen every packed value in the
// block.

func deltasU64(scratch []uint64, vals []uint64) (uint64, []uint64) {
	scratch = scratch[:0]
	prev := vals[0]
	for _, v := range vals[1:] {
		scratch = append(scratch, zigzag(int64(v-prev)))
		prev = v
	}
	return vals[0], scratch
}

func deltasF64(scratch []uint64, vals []float64) (uint64, []uint64) {
	scratch = scratch[:0]
	prev := math.Float64bits(vals[0])
	for _, v := range vals[1:] {
		b := math.Float64bits(v)
		scratch = append(scratch, zigzag(int64(b-prev)))
		prev = b
	}
	return math.Float64bits(vals[0]), scratch
}

func deltasI32(scratch []uint64, vals []int32) (uint64, []uint64) {
	scratch = scratch[:0]
	prev := int64(vals[0])
	for _, v := range vals[1:] {
		scratch = append(scratch, zigzag(int64(v)-prev))
		prev = int64(v)
	}
	return uint64(uint32(vals[0])), scratch
}

func deltasU16(scratch []uint64, vals []uint16) (uint64, []uint64) {
	scratch = scratch[:0]
	prev := int64(vals[0])
	for _, v := range vals[1:] {
		scratch = append(scratch, zigzag(int64(v)-prev))
		prev = int64(v)
	}
	return uint64(vals[0]), scratch
}

// The residuals* helpers turn a column into codecPacked's input: the
// minimum value's 8-byte image plus every row's distance from it.
// Residuals are unsigned by construction, so no zigzag step is needed,
// and — unlike deltas — reconstruction has no serial dependency.

func residualsU64(scratch []uint64, vals []uint64) (uint64, []uint64) {
	scratch = scratch[:0]
	base := vals[0]
	for _, v := range vals {
		base = min(base, v)
	}
	for _, v := range vals {
		scratch = append(scratch, v-base)
	}
	return base, scratch
}

func residualsF64(scratch []uint64, vals []float64) (uint64, []uint64) {
	scratch = scratch[:0]
	base := math.Float64bits(vals[0])
	for _, v := range vals {
		base = min(base, math.Float64bits(v))
	}
	for _, v := range vals {
		scratch = append(scratch, math.Float64bits(v)-base)
	}
	return base, scratch
}

func residualsI32(scratch []uint64, vals []int32) (uint64, []uint64) {
	scratch = scratch[:0]
	base := vals[0]
	for _, v := range vals {
		base = min(base, v)
	}
	for _, v := range vals {
		scratch = append(scratch, uint64(int64(v)-int64(base)))
	}
	return uint64(uint32(base)), scratch
}

func residualsU16(scratch []uint64, vals []uint16) (uint64, []uint64) {
	scratch = scratch[:0]
	base := vals[0]
	for _, v := range vals {
		base = min(base, v)
	}
	for _, v := range vals {
		scratch = append(scratch, uint64(v-base))
	}
	return uint64(base), scratch
}

// --- column decoders (reader side) ---
//
// Each decoder walks one contiguous buffer in a tight loop; the scan
// path's throughput is essentially the sum of these loops. src is the
// column's declared bytes plus at least 8 padding bytes (see the block
// reader), so pvAt's 8-byte load stays in bounds as long as off stays
// inside the declared region — which the per-iteration guard enforces.
// Decoders return the consumed byte count, or -1 when a corrupt varint
// walks outside the declared region: validation fails, nothing faults.

// Both non-const codec frames open with the column's first value as a
// raw 8-byte image; the encoded deltas cover rows 1..n-1 only.
//
// The varint loops below hand-inline pvAt and unzigzag, and re-slice
// src to exactly declared+8 bytes up front: the guard `off >= len(src)-8`
// then doubles as the corruption check AND the fact the bounds-check
// eliminator needs to drop the per-value slice checks on the 8-byte
// load. Callers guarantee at least 8 padding bytes past declared.

func decodeU64Delta(dst []uint64, src []byte, declared int) int {
	if declared < 8 || len(dst) == 0 {
		return -1
	}
	src = src[:declared+8]
	prev := binary.LittleEndian.Uint64(src)
	dst[0] = prev
	off := 8
	for i := 1; i < len(dst); i++ {
		if off >= len(src)-8 {
			return -1
		}
		b0 := src[off]
		w := binary.LittleEndian.Uint64(src[off+1:]) & pvMask[b0&0x0f]
		u := uint64(b0>>4) | w<<4
		prev += uint64(int64(u>>1) ^ -int64(u&1))
		dst[i] = prev
		off += int(b0&0x0f) + 1
	}
	return off
}

func decodeF64Delta(dst []float64, src []byte, declared int) int {
	if declared < 8 || len(dst) == 0 {
		return -1
	}
	src = src[:declared+8]
	prev := binary.LittleEndian.Uint64(src)
	dst[0] = math.Float64frombits(prev)
	off := 8
	for i := 1; i < len(dst); i++ {
		if off >= len(src)-8 {
			return -1
		}
		b0 := src[off]
		w := binary.LittleEndian.Uint64(src[off+1:]) & pvMask[b0&0x0f]
		u := uint64(b0>>4) | w<<4
		prev += uint64(int64(u>>1) ^ -int64(u&1))
		dst[i] = math.Float64frombits(prev)
		off += int(b0&0x0f) + 1
	}
	return off
}

func decodeI32Delta(dst []int32, src []byte, declared int) int {
	if declared < 8 || len(dst) == 0 {
		return -1
	}
	src = src[:declared+8]
	prev := int64(int32(uint32(binary.LittleEndian.Uint64(src))))
	dst[0] = int32(prev)
	off := 8
	for i := 1; i < len(dst); i++ {
		if off >= len(src)-8 {
			return -1
		}
		b0 := src[off]
		w := binary.LittleEndian.Uint64(src[off+1:]) & pvMask[b0&0x0f]
		u := uint64(b0>>4) | w<<4
		prev += int64(u>>1) ^ -int64(u&1)
		dst[i] = int32(prev)
		off += int(b0&0x0f) + 1
	}
	return off
}

func decodeU16Delta(dst []uint16, src []byte, declared int) int {
	if declared < 8 || len(dst) == 0 {
		return -1
	}
	src = src[:declared+8]
	prev := int64(uint16(binary.LittleEndian.Uint64(src)))
	dst[0] = uint16(prev)
	off := 8
	for i := 1; i < len(dst); i++ {
		if off >= len(src)-8 {
			return -1
		}
		b0 := src[off]
		w := binary.LittleEndian.Uint64(src[off+1:]) & pvMask[b0&0x0f]
		u := uint64(b0>>4) | w<<4
		prev += int64(u>>1) ^ -int64(u&1)
		dst[i] = uint16(prev)
		off += int(b0&0x0f) + 1
	}
	return off
}

// The codecPacked decoders read each residual with one 8-byte load at
// a bit offset that advances by a CONSTANT stride and add the base —
// no loop-carried dependency, which is what lets them sustain well
// past the varint loops. checkPacked validates the frame once; after
// it returns a non-negative width, every load below stays inside src's
// declared bytes plus the 8-byte pad (widths <= 57 never straddle more
// than 8 bytes past the last packed bit; width 64 is raw 8-byte
// words).

// checkPacked validates a packed frame holding n residuals behind the
// 8-byte base image; clen is the frame length including the image.
func checkPacked(n int, src []byte, clen int) int {
	if clen < 9 {
		return -1
	}
	width := int(src[8])
	if width > 64 || (width > 57 && width < 64) {
		return -1
	}
	if clen != 8+packedSize(n, width) {
		return -1
	}
	return width
}

func decodeU64Packed(dst []uint64, src []byte, clen int) bool {
	width := checkPacked(len(dst), src, clen)
	if width < 0 {
		return false
	}
	base := binary.LittleEndian.Uint64(src)
	data := src[9:]
	if width == 64 {
		for i := range dst {
			dst[i] = base + binary.LittleEndian.Uint64(data[i*8:])
		}
		return true
	}
	mask := uint64(1)<<uint(width) - 1
	w1, w2, w3 := uint(width), uint(2*width), uint(3*width)
	bitpos, i, n := 0, 0, len(dst)
	if width <= 14 {
		for ; i+4 <= n; i += 4 {
			lw := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7)
			dst[i] = base + lw&mask
			dst[i+1] = base + lw>>w1&mask
			dst[i+2] = base + lw>>w2&mask
			dst[i+3] = base + lw>>w3&mask
			bitpos += 4 * width
		}
	} else if width <= 28 {
		for ; i+2 <= n; i += 2 {
			lw := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7)
			dst[i] = base + lw&mask
			dst[i+1] = base + lw>>w1&mask
			bitpos += 2 * width
		}
	}
	for ; i < n; i++ {
		u := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7) & mask
		dst[i] = base + u
		bitpos += width
	}
	return true
}

func decodeF64Packed(dst []float64, src []byte, clen int) bool {
	width := checkPacked(len(dst), src, clen)
	if width < 0 {
		return false
	}
	base := binary.LittleEndian.Uint64(src)
	data := src[9:]
	if width == 64 {
		for i := range dst {
			dst[i] = math.Float64frombits(base + binary.LittleEndian.Uint64(data[i*8:]))
		}
		return true
	}
	mask := uint64(1)<<uint(width) - 1
	bitpos := 0
	for i := range dst {
		u := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7) & mask
		dst[i] = math.Float64frombits(base + u)
		bitpos += width
	}
	return true
}

func decodeI32Packed(dst []int32, src []byte, clen int) bool {
	width := checkPacked(len(dst), src, clen)
	if width < 0 {
		return false
	}
	base := int64(int32(uint32(binary.LittleEndian.Uint64(src))))
	data := src[9:]
	if width == 64 {
		for i := range dst {
			dst[i] = int32(base + int64(binary.LittleEndian.Uint64(data[i*8:])))
		}
		return true
	}
	mask := uint64(1)<<uint(width) - 1
	w1, w2, w3 := uint(width), uint(2*width), uint(3*width)
	bitpos, i, n := 0, 0, len(dst)
	// Narrow widths unpack several values per 64-bit load: 7 shift bits
	// + 4 (or 2) values must fit in 64.
	if width <= 14 {
		for ; i+4 <= n; i += 4 {
			lw := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7)
			dst[i] = int32(base + int64(lw&mask))
			dst[i+1] = int32(base + int64(lw>>w1&mask))
			dst[i+2] = int32(base + int64(lw>>w2&mask))
			dst[i+3] = int32(base + int64(lw>>w3&mask))
			bitpos += 4 * width
		}
	} else if width <= 28 {
		for ; i+2 <= n; i += 2 {
			lw := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7)
			dst[i] = int32(base + int64(lw&mask))
			dst[i+1] = int32(base + int64(lw>>w1&mask))
			bitpos += 2 * width
		}
	}
	for ; i < n; i++ {
		u := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7) & mask
		dst[i] = int32(base + int64(u))
		bitpos += width
	}
	return true
}

func decodeU16Packed(dst []uint16, src []byte, clen int) bool {
	width := checkPacked(len(dst), src, clen)
	if width < 0 {
		return false
	}
	base := uint64(uint16(binary.LittleEndian.Uint64(src)))
	data := src[9:]
	if width == 64 {
		for i := range dst {
			dst[i] = uint16(base + binary.LittleEndian.Uint64(data[i*8:]))
		}
		return true
	}
	mask := uint64(1)<<uint(width) - 1
	bitpos := 0
	for i := range dst {
		u := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7) & mask
		dst[i] = uint16(base + u)
		bitpos += width
	}
	return true
}

// --- dictionary codec (float columns) ---
//
// Frame layout: u8 entry count (2..255), the distinct bit images sorted
// strictly ascending (8 bytes each), then the per-row indices in
// codecPacked's width-byte + bit-packed framing. The writer only emits
// dictionaries it measured to be smaller than both delta codecs; the
// width is always exactly dictWidth(entries), which the reader enforces
// so a corrupt frame fails validation instead of mis-decoding.

// dictWidth is the packed index width for a dictionary of nd entries.
func dictWidth(nd int) int { return max(1, bits.Len(uint(nd-1))) }

// dictSizeF64 is the encoded frame size for n rows over nd entries.
func dictSizeF64(n, nd int) int { return 1 + 8*nd + packedSize(n, dictWidth(nd)) }

// dictBuildF64 collects the sorted distinct bit images of vals into
// scratch, abandoning as soon as the count exceeds dictMaxEntries (for
// high-cardinality columns that happens within the first rows, so the
// probe costs almost nothing). The returned slice reuses scratch's
// backing array; ok reports whether the column fit.
func dictBuildF64(scratch []uint64, vals []float64) (dict []uint64, ok bool) {
	d := scratch[:0]
	for _, v := range vals {
		img := math.Float64bits(v)
		lo, hi := 0, len(d)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if d[mid] < img {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(d) && d[lo] == img {
			continue
		}
		if len(d) >= dictMaxEntries {
			return d, false
		}
		d = append(d, 0)
		copy(d[lo+1:], d[lo:])
		d[lo] = img
	}
	return d, true
}

// dictIndexesF64 maps every row to its position in the sorted dict.
func dictIndexesF64(scratch []uint64, dict []uint64, vals []float64) []uint64 {
	idx := scratch[:0]
	for _, v := range vals {
		img := math.Float64bits(v)
		lo, hi := 0, len(dict)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if dict[mid] < img {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx = append(idx, uint64(lo))
	}
	return idx
}

// appendDict appends the dictionary frame: entry count, sorted images,
// then the indices through the shared bit-packer.
func appendDict(dst []byte, dict []uint64, idx []uint64) []byte {
	dst = append(dst, byte(len(dict)))
	for _, img := range dict {
		dst = binary.LittleEndian.AppendUint64(dst, img)
	}
	return appendPacked(dst, idx, dictWidth(len(dict)))
}

// decodeF64Dict decodes a dictionary column. Validation pins the whole
// frame shape — entry count, exact index width, strictly ascending
// images, exact length — so corruption that survives the block CRC
// window (it cannot, but the decoder does not rely on that) fails here
// rather than decoding garbage. The index table is 256 entries because
// width <= 8 keeps the masked index in-bounds unconditionally; unused
// entries stay zero.
func decodeF64Dict(dst []float64, src []byte, clen int) bool {
	if clen < 1+2*8+1 {
		return false // minimum: 2 entries + count + width byte
	}
	nd := int(src[0])
	if nd < 2 {
		return false
	}
	width := dictWidth(nd)
	hs := 1 + 8*nd // frame bytes before the packed index stream
	if clen != hs+packedSize(len(dst), width) || int(src[hs]) != width {
		return false
	}
	var table [256]uint64
	prev := binary.LittleEndian.Uint64(src[1:])
	table[0] = prev
	for i := 1; i < nd; i++ {
		img := binary.LittleEndian.Uint64(src[1+8*i:])
		if img <= prev {
			return false // images are sorted and distinct by construction
		}
		table[i], prev = img, img
	}
	mask := uint64(1)<<uint(width) - 1
	data := src[hs+1:]
	bitpos := 0
	for i := range dst {
		u := binary.LittleEndian.Uint64(data[bitpos>>3:]) >> (bitpos & 7) & mask
		dst[i] = math.Float64frombits(table[u])
		bitpos += width
	}
	return true
}

// blockMeta is one footer index entry: everything pruning needs without
// touching the block itself.
type blockMeta struct {
	typ    probe.Type
	count  uint32
	offset uint64 // of the block in the file
	length uint64 // block bytes including header
	seqMin uint64 // seq of the first row (rows are seq-sorted)
	tMin   float64
	tMax   float64
	// nodeMin/nodeMax bound both the from and to columns (-1 sentinels
	// included, which only widen the range).
	nodeMin, nodeMax   int32
	roundMin, roundMax int32
}

// metaEncSize is the fixed on-disk size of one footer entry.
const metaEncSize = 1 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4

func (m *blockMeta) append(dst []byte) []byte {
	var b [metaEncSize]byte
	b[0] = byte(m.typ)
	binary.LittleEndian.PutUint32(b[1:], m.count)
	binary.LittleEndian.PutUint64(b[5:], m.offset)
	binary.LittleEndian.PutUint64(b[13:], m.length)
	binary.LittleEndian.PutUint64(b[21:], m.seqMin)
	binary.LittleEndian.PutUint64(b[29:], math.Float64bits(m.tMin))
	binary.LittleEndian.PutUint64(b[37:], math.Float64bits(m.tMax))
	binary.LittleEndian.PutUint32(b[45:], uint32(m.nodeMin))
	binary.LittleEndian.PutUint32(b[49:], uint32(m.nodeMax))
	binary.LittleEndian.PutUint32(b[53:], uint32(m.roundMin))
	binary.LittleEndian.PutUint32(b[57:], uint32(m.roundMax))
	return append(dst, b[:]...)
}

func decodeMeta(b []byte) blockMeta {
	return blockMeta{
		typ:      probe.Type(b[0]),
		count:    binary.LittleEndian.Uint32(b[1:]),
		offset:   binary.LittleEndian.Uint64(b[5:]),
		length:   binary.LittleEndian.Uint64(b[13:]),
		seqMin:   binary.LittleEndian.Uint64(b[21:]),
		tMin:     math.Float64frombits(binary.LittleEndian.Uint64(b[29:])),
		tMax:     math.Float64frombits(binary.LittleEndian.Uint64(b[37:])),
		nodeMin:  int32(binary.LittleEndian.Uint32(b[45:])),
		nodeMax:  int32(binary.LittleEndian.Uint32(b[49:])),
		roundMin: int32(binary.LittleEndian.Uint32(b[53:])),
		roundMax: int32(binary.LittleEndian.Uint32(b[57:])),
	}
}
