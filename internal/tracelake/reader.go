package tracelake

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync/atomic"

	"optsync/internal/probe"
)

// Lake is an open container: the parsed footer index plus random access
// to the blocks. It reads via io.ReaderAt, so the backing store can be a
// file, an mmap, or an in-memory buffer; blocks are fetched with one
// positioned read each and only when a query's pruning admits them.
// A Lake is safe for concurrent readers in the sense that it is
// immutable after Open; Scan calls each need their own cursor state and
// may run concurrently.
type Lake struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer
	blocks []blockMeta
	total  uint64
	// mem is set by OpenBytes: block reads slice it directly instead of
	// copying through a scratch buffer.
	mem []byte
	// verified[i] records that block i's checksum has been validated.
	// Only consulted for mem-backed lakes (the bytes cannot change under
	// us), so repeated scans checksum each block once, not once per scan.
	verified []atomic.Bool
	// mapped records that mem is a memory mapping owned by this lake.
	mapped bool
}

// Open opens a lake file. Where the platform supports it (unix), the
// container is memory-mapped: opening costs O(footer) no matter how
// large the lake is, blocks decode zero-copy from the mapped pages, and
// each block's checksum is verified on first touch instead of at open
// time. The mapped file must not be truncated while the lake is open.
// Set SYNCSIM_LAKE_MMAP=off to force the positioned-read fallback — the
// default behavior on platforms without mmap, or when mapping fails.
func Open(path string) (*Lake, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if mmapSupported && mmapEnabled() && st.Size() > 0 {
		if data, unmap, merr := mmapOpen(f, st.Size()); merr == nil {
			f.Close() // the mapping outlives the descriptor
			l, err := OpenBytes(data)
			if err != nil {
				unmap()
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			l.mapped = true
			l.closer = closerFunc(unmap)
			return l, nil
		}
		// Mapping failed (exotic filesystem, resource limits): fall
		// through to positioned reads rather than failing the open.
	}
	l, err := OpenReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	l.closer = f
	return l, nil
}

// mmapEnabled reports whether the SYNCSIM_LAKE_MMAP environment knob
// permits the mmap fast path (any value but "0"/"off"/"false"/"no").
func mmapEnabled() bool {
	switch os.Getenv("SYNCSIM_LAKE_MMAP") {
	case "0", "off", "false", "no":
		return false
	}
	return true
}

// closerFunc adapts the unmap function to io.Closer.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// OpenReader opens a lake from any random-access byte source of the
// given size. It validates the header magic, the trailer, and the
// footer checksum before trusting any of the index; every corruption
// error names the byte offset it was detected at.
func OpenReader(r io.ReaderAt, size int64) (*Lake, error) {
	var head [8]byte
	if size < int64(len(Magic))+trailerSize {
		return nil, fmt.Errorf("tracelake: file is %d bytes, smaller than an empty container (%d)",
			size, len(Magic)+trailerSize)
	}
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if head != Magic {
		return nil, fmt.Errorf("tracelake: bad magic %q at offset 0 (want %q): not a lake container",
			head[:], Magic[:])
	}

	var trailer [trailerSize]byte
	if _, err := r.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, err
	}
	if [8]byte(trailer[8:]) != endMagic {
		return nil, fmt.Errorf("tracelake: bad end magic %q at offset %d (want %q): container truncated or not finalized",
			trailer[8:], size-8, endMagic[:])
	}
	footerLen := binary.LittleEndian.Uint64(trailer[:8])
	footerOff := size - trailerSize - int64(footerLen)
	if footerLen < 4+16 || footerOff < int64(len(Magic)) {
		return nil, fmt.Errorf("tracelake: trailer at offset %d claims footer length %d, impossible for a %d-byte file",
			size-trailerSize, footerLen, size)
	}

	footer := make([]byte, footerLen)
	if _, err := io.ReadFull(io.NewSectionReader(r, footerOff, int64(footerLen)), footer); err != nil {
		return nil, fmt.Errorf("tracelake: reading footer at offset %d: %w", footerOff, err)
	}
	wantCRC := binary.LittleEndian.Uint32(footer[:4])
	if got := crc32.Checksum(footer[4:], castagnoli); got != wantCRC {
		return nil, fmt.Errorf("tracelake: footer checksum mismatch at offset %d (stored %08x, computed %08x)",
			footerOff, wantCRC, got)
	}
	body := footer[4:]
	nBlocks := binary.LittleEndian.Uint64(body[:8])
	total := binary.LittleEndian.Uint64(body[8:16])
	if uint64(len(body)-16) != nBlocks*metaEncSize {
		return nil, fmt.Errorf("tracelake: footer at offset %d indexes %d blocks but carries %d bytes of entries (want %d)",
			footerOff, nBlocks, len(body)-16, nBlocks*metaEncSize)
	}

	l := &Lake{r: r, size: size, total: total, blocks: make([]blockMeta, 0, nBlocks),
		verified: make([]atomic.Bool, nBlocks)}
	var sum uint64
	for i := uint64(0); i < nBlocks; i++ {
		m := decodeMeta(body[16+i*metaEncSize:])
		if int(m.typ) <= 0 || int(m.typ) >= probe.NumTypes {
			return nil, fmt.Errorf("tracelake: footer entry %d has invalid event type %d", i, m.typ)
		}
		if m.count == 0 || m.count > maxBlockRows {
			return nil, fmt.Errorf("tracelake: footer entry %d (block at offset %d) has implausible row count %d",
				i, m.offset, m.count)
		}
		if m.offset < uint64(len(Magic)) || m.offset+m.length > uint64(footerOff) || m.length < blockHeaderSize {
			return nil, fmt.Errorf("tracelake: footer entry %d places block at [%d, %d), outside the data region [%d, %d)",
				i, m.offset, m.offset+m.length, len(Magic), footerOff)
		}
		sum += uint64(m.count)
		l.blocks = append(l.blocks, m)
	}
	if sum != total {
		return nil, fmt.Errorf("tracelake: footer at offset %d claims %d events but its blocks sum to %d",
			footerOff, total, sum)
	}
	return l, nil
}

// OpenBytes opens a lake held in memory, with zero-copy block access:
// scans decode straight out of data instead of copying each block into
// a scratch buffer first. data must not be mutated while the lake is in
// use. The container layout guarantees the decoder's padding invariant
// for free — every block is followed by at least the footer and trailer
// (>= 36 bytes), so the 8-byte loads past a column's end stay inside
// data.
func OpenBytes(data []byte) (*Lake, error) {
	l, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	l.mem = data
	return l, nil
}

// Close releases the underlying file when the lake owns one (Open does,
// OpenReader does not).
func (l *Lake) Close() error {
	if l.closer != nil {
		return l.closer.Close()
	}
	return nil
}

// Mapped reports whether the lake decodes from a memory mapping Open
// established (false for OpenBytes images, OpenReader sources, and the
// positioned-read fallback).
func (l *Lake) Mapped() bool { return l.mapped }

// Events returns the total event count recorded in the footer.
func (l *Lake) Events() uint64 { return l.total }

// BlockCount returns the number of column blocks in the container.
func (l *Lake) BlockCount() int { return len(l.blocks) }

// Rows is one decoded column block: the struct-of-arrays view of up to
// blockRows events of a single type. All slices have equal length; Seq
// is strictly increasing (the events' positions in the recorded stream).
// The slices alias the decoder's reusable buffers — they are valid until
// the next block is decoded into the same cursor.
type Rows struct {
	Type  probe.Type
	Seq   []uint64
	T     []float64
	From  []int32
	To    []int32
	Kind  []uint16
	Round []int32
	Value []float64
	Aux   []float64
}

// Len returns the row count.
func (r *Rows) Len() int { return len(r.Seq) }

// Event materializes row i as a probe event.
func (r *Rows) Event(i int) probe.Event {
	return probe.Event{
		Type: r.Type, Kind: r.Kind[i],
		From: r.From[i], To: r.To[i], Round: r.Round[i],
		T: r.T[i], Value: r.Value[i], Aux: r.Aux[i],
	}
}

// blockReader decodes blocks into reusable buffers: one per cursor, so a
// steady-state scan performs zero allocations after the first block of
// each active type.
type blockReader struct {
	buf  []byte
	rows Rows
	// constImage/constN cache the last const fill per column: when
	// consecutive blocks repeat the same image (kind, value, aux almost
	// always do), the buffer's first constN[ci] entries already hold it
	// and the fill is skipped.
	constImage [numCols]uint64
	constN     [numCols]int
}

// grow returns b.buf with space for n+pad bytes, the pad zeroed.
func (b *blockReader) grow(n int) []byte {
	if cap(b.buf) < n+8 {
		b.buf = make([]byte, n+8)
	}
	b.buf = b.buf[:n+8]
	for i := n; i < n+8; i++ {
		b.buf[i] = 0
	}
	return b.buf
}

// read fetches and decodes block mi. The returned Rows aliases the
// reader's buffers.
func (b *blockReader) read(l *Lake, mi int) (*Rows, error) {
	m := &l.blocks[mi]
	blockLen := int(m.length)
	var buf []byte
	if l.mem != nil {
		// Zero-copy: the block plus its guaranteed >= 8 trailing bytes
		// (footer/trailer at minimum), viewed in place.
		buf = l.mem[m.offset : int(m.offset)+blockLen+8]
	} else {
		buf = b.grow(blockLen)
		if _, err := l.r.ReadAt(buf[:blockLen], int64(m.offset)); err != nil {
			return nil, fmt.Errorf("tracelake: reading block at offset %d (%d bytes): %w", m.offset, m.length, err)
		}
	}
	payload := buf[4:blockLen]
	if l.mem == nil || !l.verified[mi].Load() {
		wantCRC := binary.LittleEndian.Uint32(buf[:4])
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("tracelake: block at offset %d fails its checksum (stored %08x, computed %08x)",
				m.offset, wantCRC, got)
		}
		if l.mem != nil {
			l.verified[mi].Store(true)
		}
	}
	if probe.Type(payload[0]) != m.typ || binary.LittleEndian.Uint32(payload[1:]) != m.count {
		return nil, fmt.Errorf("tracelake: block at offset %d is (type %d, count %d) but the footer indexed (type %d, count %d)",
			m.offset, payload[0], binary.LittleEndian.Uint32(payload[1:]), m.typ, m.count)
	}
	n := int(m.count)
	r := &b.rows
	r.Type = m.typ
	if cap(r.Seq) < n || cap(r.T) < n || cap(r.From) < n || cap(r.To) < n ||
		cap(r.Kind) < n || cap(r.Round) < n || cap(r.Value) < n || cap(r.Aux) < n {
		b.constN = [numCols]int{} // buffers reallocate: cached fills are gone
	}
	r.Seq = growU64(r.Seq, n)
	r.T = growF64(r.T, n)
	r.From = growI32(r.From, n)
	r.To = growI32(r.To, n)
	r.Kind = growU16(r.Kind, n)
	r.Round = growI32(r.Round, n)
	r.Value = growF64(r.Value, n)
	r.Aux = growF64(r.Aux, n)

	// cols spans from the end of the block header through the 8 zeroed
	// pad bytes past the payload, so pvAt's unconditional 8-byte loads
	// stay inside buf for any in-payload offset; the per-column declared
	// lengths (validated below) keep decode offsets in-payload.
	cols := buf[blockHeaderSize:]
	off := 0
	limit := blockLen - blockHeaderSize // declared column bytes
	for ci := 0; ci < numCols; ci++ {
		if off+5 > limit {
			return nil, fmt.Errorf("tracelake: block at offset %d: column %d header overruns the block", m.offset, ci)
		}
		codec := cols[off]
		clen := int(binary.LittleEndian.Uint32(cols[off+1:]))
		off += 5
		if clen < 0 || off+clen > limit {
			return nil, fmt.Errorf("tracelake: block at offset %d: column %d claims %d bytes, overrunning the block",
				m.offset, ci, clen)
		}
		if err := b.decodeCol(r, ci, codec, cols[off:], clen); err != nil {
			return nil, fmt.Errorf("tracelake: block at offset %d: column %d: %w", m.offset, ci, err)
		}
		off += clen
	}
	if off != limit {
		return nil, fmt.Errorf("tracelake: block at offset %d: columns cover %d of %d payload bytes", m.offset, off, limit)
	}
	return r, nil
}

// decodeCol decodes one column (ci indexes seq,t,from,to,kind,round,
// value,aux) from data, whose declared length is clen; data extends past
// clen into the padded tail.
func (b *blockReader) decodeCol(r *Rows, ci int, codec byte, data []byte, clen int) error {
	switch codec {
	case codecConst:
		if clen != 8 {
			return fmt.Errorf("const column is %d bytes, want 8", clen)
		}
		image := binary.LittleEndian.Uint64(data)
		n := len(r.Seq)
		if b.constN[ci] >= n && b.constImage[ci] == image {
			return nil // buffer already holds this image
		}
		b.constImage[ci], b.constN[ci] = image, n
		switch ci {
		case 0:
			fillU64(r.Seq, image)
		case 1:
			fillF64(r.T, math.Float64frombits(image))
		case 2:
			fillI32(r.From, int32(uint32(image)))
		case 3:
			fillI32(r.To, int32(uint32(image)))
		case 4:
			fillU16(r.Kind, uint16(image))
		case 5:
			fillI32(r.Round, int32(uint32(image)))
		case 6:
			fillF64(r.Value, math.Float64frombits(image))
		case 7:
			fillF64(r.Aux, math.Float64frombits(image))
		}
		return nil
	case codecDelta:
		b.constN[ci] = 0
		var used int
		switch ci {
		case 0:
			used = decodeU64Delta(r.Seq, data, clen)
		case 1:
			used = decodeF64Delta(r.T, data, clen)
		case 2:
			used = decodeI32Delta(r.From, data, clen)
		case 3:
			used = decodeI32Delta(r.To, data, clen)
		case 4:
			used = decodeU16Delta(r.Kind, data, clen)
		case 5:
			used = decodeI32Delta(r.Round, data, clen)
		case 6:
			used = decodeF64Delta(r.Value, data, clen)
		case 7:
			used = decodeF64Delta(r.Aux, data, clen)
		}
		if used != clen {
			return fmt.Errorf("delta column decodes to %d of its declared %d bytes", used, clen)
		}
		return nil
	case codecPacked:
		b.constN[ci] = 0
		var ok bool
		switch ci {
		case 0:
			ok = decodeU64Packed(r.Seq, data, clen)
		case 1:
			ok = decodeF64Packed(r.T, data, clen)
		case 2:
			ok = decodeI32Packed(r.From, data, clen)
		case 3:
			ok = decodeI32Packed(r.To, data, clen)
		case 4:
			ok = decodeU16Packed(r.Kind, data, clen)
		case 5:
			ok = decodeI32Packed(r.Round, data, clen)
		case 6:
			ok = decodeF64Packed(r.Value, data, clen)
		case 7:
			ok = decodeF64Packed(r.Aux, data, clen)
		}
		if !ok {
			return fmt.Errorf("packed column frame is inconsistent with its declared %d bytes", clen)
		}
		return nil
	case codecDict:
		b.constN[ci] = 0
		var ok bool
		switch ci {
		case 1:
			ok = decodeF64Dict(r.T, data, clen)
		case 6:
			ok = decodeF64Dict(r.Value, data, clen)
		case 7:
			ok = decodeF64Dict(r.Aux, data, clen)
		default:
			return fmt.Errorf("dictionary codec on non-float column")
		}
		if !ok {
			return fmt.Errorf("dictionary column frame is inconsistent with its declared %d bytes", clen)
		}
		return nil
	default:
		return fmt.Errorf("unknown codec 0x%02x", codec)
	}
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU16(s []uint16, n int) []uint16 {
	if cap(s) < n {
		return make([]uint16, n)
	}
	return s[:n]
}

func fillU64(s []uint64, v uint64) {
	for i := range s {
		s[i] = v
	}
}

func fillF64(s []float64, v float64) {
	for i := range s {
		s[i] = v
	}
}

func fillI32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

func fillU16(s []uint16, v uint16) {
	for i := range s {
		s[i] = v
	}
}
