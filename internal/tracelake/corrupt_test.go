package tracelake

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"optsync/internal/probe"
)

// openCorrupt asserts that opening (or fully scanning) data fails with a
// clear error mentioning every fragment in want — and never panics.
func openCorrupt(t *testing.T, data []byte, want ...string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("corrupt container panicked: %v", r)
		}
	}()
	l, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err == nil {
		// Footer survived; the damage must surface during the scan.
		_, err = l.Scan(Query{}, func(probe.Event) error { return nil })
	}
	if err == nil {
		t.Fatalf("corrupt container accepted (%d bytes)", len(data))
	}
	for _, w := range want {
		if !strings.Contains(err.Error(), w) {
			t.Fatalf("error %q does not mention %q", err, w)
		}
	}
}

func TestCorruptLake(t *testing.T) {
	good := buildLake(t, synthEvents(6, 6, 9))

	t.Run("bad_magic", func(t *testing.T) {
		data := bytes.Clone(good)
		data[0] = 'X'
		openCorrupt(t, data, "bad magic", "offset 0")
	})

	t.Run("empty_file", func(t *testing.T) {
		openCorrupt(t, nil, "smaller than an empty container")
	})

	t.Run("truncated_mid_file", func(t *testing.T) {
		// Cut anywhere: the trailer is gone, so the end magic check fires.
		for _, frac := range []float64{0.2, 0.5, 0.9} {
			openCorrupt(t, good[:int(float64(len(good))*frac)], "offset")
		}
	})

	t.Run("truncated_one_byte", func(t *testing.T) {
		openCorrupt(t, good[:len(good)-1], "end magic", "truncated")
	})

	t.Run("garbage_footer", func(t *testing.T) {
		data := bytes.Clone(good)
		// The footer sits between the last block and the trailer; smash
		// the middle of it.
		fl := binary.LittleEndian.Uint64(data[len(data)-16:])
		start := len(data) - 16 - int(fl)
		for i := start + 4; i < start+int(fl); i++ {
			data[i] ^= 0xa5
		}
		openCorrupt(t, data, "footer checksum mismatch", "offset")
	})

	t.Run("footer_length_lies", func(t *testing.T) {
		data := bytes.Clone(good)
		binary.LittleEndian.PutUint64(data[len(data)-16:], uint64(len(data)*2))
		openCorrupt(t, data, "footer length")
	})

	t.Run("block_bitflip", func(t *testing.T) {
		data := bytes.Clone(good)
		// Flip a byte early in the first block's payload: the block crc
		// must catch it at scan time with the block's offset in the error.
		data[len(Magic)+16] ^= 0x40
		openCorrupt(t, data, "checksum", "offset")
	})

	t.Run("footer_points_outside_file", func(t *testing.T) {
		data := bytes.Clone(good)
		fl := binary.LittleEndian.Uint64(data[len(data)-16:])
		start := len(data) - 16 - int(fl)
		body := data[start+4:]
		// First meta's offset field (entry starts after 8B count + 8B total).
		binary.LittleEndian.PutUint64(body[16+5:], uint64(len(data)+1000))
		// Re-seal the footer so only the bounds check can object.
		reseal(data, start, fl)
		openCorrupt(t, data, "outside the data region")
	})

	t.Run("footer_count_implausible", func(t *testing.T) {
		data := bytes.Clone(good)
		fl := binary.LittleEndian.Uint64(data[len(data)-16:])
		start := len(data) - 16 - int(fl)
		body := data[start+4:]
		binary.LittleEndian.PutUint32(body[16+1:], maxBlockRows+1)
		reseal(data, start, fl)
		openCorrupt(t, data, "implausible row count")
	})
}

// reseal recomputes the footer crc after a deliberate mutation, so the
// test reaches the validation behind the checksum.
func reseal(data []byte, start int, fl uint64) {
	body := data[start+4 : start+int(fl)]
	binary.LittleEndian.PutUint32(data[start:], crc32.Checksum(body, castagnoli))
}
