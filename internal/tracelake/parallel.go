// Parallel block decoding: the scan entry points in scan.go partition a
// query's admitted blocks across a bounded pool of decode workers, each
// owning its own blockReader scratch, and consume the decoded blocks in
// a fixed order — so parallel scans are byte-identical to serial ones at
// every worker count, the same bit-exactness contract sim.Shards set for
// the engine. Readers recycle through a bounded free list: the feeder
// can only run as many blocks ahead of the consumer as there are
// readers, which bounds memory and keeps the steady-state decode path
// allocation-free per block.
//
// The goroutines below never touch simulation state: they decode
// immutable container bytes and hand the results back to a single
// consumer in deterministic stream order, which is why the detrand
// goroutine rule is carved out for this file.
//
//syncsim:allowlist detrand reader-side decode pool: workers decode immutable blocks and deliver in fixed stream order, so query output is bit-exact at any worker count; no simulation state is touched

package tracelake

import (
	"fmt"
	"runtime"
	"sync"
)

// resolveWorkers maps Query.Workers onto a concrete pool width: 0 means
// one worker per core, 1 is the serial scanner, negatives are an error.
func resolveWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("tracelake: negative worker count %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// decodeJob asks a worker to decode block stream.metas[pos] into br.
type decodeJob struct {
	stream *blockStream
	pos    int
	br     *blockReader
}

// decodePool is one scan's worker set, shared by every stream of that
// scan. Feeders enqueue jobs as readers free up; workers decode and
// deliver to the job's stream. close stops everything and waits, so no
// goroutine outlives the scan that spawned it — error paths included.
type decodePool struct {
	lake *Lake
	jobs chan decodeJob
	done chan struct{}
	wg   sync.WaitGroup
}

func newDecodePool(l *Lake, workers, queue int) *decodePool {
	p := &decodePool{
		lake: l,
		jobs: make(chan decodeJob, queue),
		done: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *decodePool) worker() {
	defer p.wg.Done()
	for {
		select {
		case j := <-p.jobs:
			rows, err := j.br.read(p.lake, j.stream.metas[j.pos])
			j.stream.deliver(j.pos, j.br, rows, err)
		case <-p.done:
			return
		}
	}
}

// close aborts feeders and workers and waits for them to exit. Callers
// defer it before consuming, so an early return (decode error, callback
// error) cannot leak goroutines: a worker mid-block finishes, delivers
// (deliver never blocks), and exits.
func (p *decodePool) close() {
	close(p.done)
	p.wg.Wait()
}

// stream starts delivering the blocks of metas in list order, decoding
// up to depth of them ahead of the consumer.
func (p *decodePool) stream(metas []int, depth int) *blockStream {
	depth = min(depth, len(metas))
	s := &blockStream{
		metas: metas,
		free:  make(chan *blockReader, depth),
		ring:  make([]streamSlot, depth),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < depth; i++ {
		s.free <- &blockReader{}
	}
	p.wg.Add(1)
	go p.feed(s)
	return s
}

// feed assigns free readers to successive positions. It runs at most
// depth blocks ahead of the consumer: a reader only returns to the free
// list once its block has been consumed.
func (p *decodePool) feed(s *blockStream) {
	defer p.wg.Done()
	for pos := range s.metas {
		var br *blockReader
		select {
		case br = <-s.free:
		case <-p.done:
			return
		}
		select {
		case p.jobs <- decodeJob{stream: s, pos: pos, br: br}:
		case <-p.done:
			return
		}
	}
}

// blockStream hands the decoded blocks of one metas list to its
// consumer in list order, whatever order the workers finish in. In-order
// delivery is what makes a parallel scan's output — and its error
// reporting — indistinguishable from the serial scanner's.
type blockStream struct {
	metas []int
	free  chan *blockReader

	mu   sync.Mutex
	cond *sync.Cond
	ring []streamSlot // the slot for position p is ring[p%len(ring)]
	next int          // next position take returns
}

type streamSlot struct {
	filled bool
	br     *blockReader
	rows   *Rows
	err    error
}

// deliver parks a decoded block at its ring slot. The slot is free by
// construction — at most len(ring) positions are in flight, one per
// reader — so deliver never blocks and workers cannot deadlock against
// a consumer that already returned.
func (s *blockStream) deliver(pos int, br *blockReader, rows *Rows, err error) {
	s.mu.Lock()
	s.ring[pos%len(s.ring)] = streamSlot{filled: true, br: br, rows: rows, err: err}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// take blocks until the next position has been decoded and returns it.
// The Rows alias the returned reader's buffers: recycle the reader only
// after the rows have been consumed.
func (s *blockStream) take() (*Rows, *blockReader, error) {
	s.mu.Lock()
	slot := &s.ring[s.next%len(s.ring)]
	for !slot.filled {
		s.cond.Wait()
	}
	rows, br, err := slot.rows, slot.br, slot.err
	*slot = streamSlot{}
	s.next++
	s.mu.Unlock()
	return rows, br, err
}

// recycle returns a consumed block's reader to the free list, letting
// the feeder assign it the next position. Never blocks (the list's
// capacity is the reader count).
func (s *blockStream) recycle(br *blockReader) {
	s.free <- br
}

// consume runs the blocks of metas through the pool and hands each to
// visit, in metas order.
func (p *decodePool) consume(metas []int, depth int, visit func(*Rows) error) error {
	s := p.stream(metas, depth)
	var held *blockReader
	for range metas {
		if held != nil {
			s.recycle(held)
			held = nil
		}
		rows, br, err := s.take()
		held = br
		if err != nil {
			return err
		}
		if err := visit(rows); err != nil {
			return err
		}
	}
	return nil
}
