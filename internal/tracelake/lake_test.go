package tracelake

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"optsync/internal/probe"
)

// synthEvents builds a deterministic stream shaped like a real trace:
// per-round broadcast storms (one sent + fan-out deliveries sharing the
// sender), pulses, resyncs, and skew samples, with non-trivial values in
// every column.
func synthEvents(n, rounds int, seed int64) []probe.Event {
	rng := rand.New(rand.NewSource(seed))
	var evs []probe.Event
	t := 0.0
	for k := 0; k < rounds; k++ {
		for s := 0; s < n; s++ {
			t += 1e-4 * rng.Float64()
			evs = append(evs, probe.Event{
				Type: probe.TypeMessageSent, Kind: 3, From: int32(s), To: -1,
				Round: int32(k), T: t, Value: t + 0.002 + 0.008*rng.Float64(),
			})
			for d := 0; d < n-1; d++ {
				to := int32((s + 1 + d) % n)
				evs = append(evs, probe.Event{
					Type: probe.TypeMessageDelivered, Kind: 3, From: int32(s), To: to,
					Round: int32(k), T: t + 0.002 + 0.008*rng.Float64(),
				})
			}
			if rng.Intn(7) == 0 {
				evs = append(evs, probe.Event{
					Type: probe.TypeMessageDropLink, Kind: 3, From: int32(s),
					To: int32(rng.Intn(n)), Round: int32(k), T: t, Value: -1,
				})
			}
		}
		for s := 0; s < n; s++ {
			evs = append(evs, probe.Event{
				Type: probe.TypePulse, From: int32(s), To: -1, Round: int32(k),
				T: t + 0.01, Value: float64(k) + 0.5*rng.Float64(),
			})
		}
		evs = append(evs, probe.Event{
			Type: probe.TypeSkewSample, From: -1, To: -1, Round: int32(n),
			T: t + 0.02, Value: 1e-3 * rng.Float64(),
		})
	}
	return evs
}

// buildLake writes events into an in-memory container.
func buildLake(t testing.TB, evs []probe.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range evs {
		w.OnEvent(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Events() != uint64(len(evs)) {
		t.Fatalf("writer recorded %d of %d events", w.Events(), len(evs))
	}
	return buf.Bytes()
}

func openLake(t testing.TB, data []byte) *Lake {
	t.Helper()
	l, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	return l
}

// TestRoundTripExact: a match-all Scan returns the recorded stream in
// order, bit-for-bit, across block boundaries and interleaved types.
func TestRoundTripExact(t *testing.T) {
	evs := synthEvents(9, 20, 1) // ~tens of thousands: several blocks per hot type
	l := openLake(t, buildLake(t, evs))
	defer l.Close()
	if l.Events() != uint64(len(evs)) {
		t.Fatalf("footer counts %d events, want %d", l.Events(), len(evs))
	}
	i := 0
	st, err := l.Scan(Query{}, func(ev probe.Event) error {
		if i >= len(evs) {
			t.Fatalf("scan produced more than %d events", len(evs))
		}
		if ev != evs[i] {
			t.Fatalf("event %d diverges:\n got %+v\nwant %+v", i, ev, evs[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(evs) {
		t.Fatalf("scan produced %d of %d events", i, len(evs))
	}
	if st.BlocksPruned != 0 || st.EventsMatched != uint64(len(evs)) {
		t.Fatalf("match-all stats = %+v", st)
	}
}

// TestRoundTripExtremeValues pins bit-exactness on the float edge cases
// delta-of-bits encoding has to survive.
func TestRoundTripExtremeValues(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1e-300, -1e300, math.Inf(1), math.Inf(-1),
		math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64, 3.141592653589793}
	var evs []probe.Event
	for i, v := range vals {
		evs = append(evs, probe.Event{
			Type: probe.TypeResync, From: int32(i), To: -1, Round: int32(i - 5),
			T: float64(i), Value: v, Aux: -v,
		})
	}
	l := openLake(t, buildLake(t, evs))
	defer l.Close()
	i := 0
	if _, err := l.Scan(Query{}, func(ev probe.Event) error {
		want := evs[i]
		if math.Float64bits(ev.Value) != math.Float64bits(want.Value) ||
			math.Float64bits(ev.Aux) != math.Float64bits(want.Aux) ||
			ev.T != want.T || ev.From != want.From || ev.Round != want.Round {
			t.Fatalf("event %d: got %+v want %+v", i, ev, want)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(evs) {
		t.Fatalf("replayed %d of %d", i, len(evs))
	}
}

// TestEmptyLake: a run nobody observed still finalizes into a valid,
// empty container.
func TestEmptyLake(t *testing.T) {
	l := openLake(t, buildLake(t, nil))
	defer l.Close()
	if l.Events() != 0 || l.BlockCount() != 0 {
		t.Fatalf("empty lake: %d events, %d blocks", l.Events(), l.BlockCount())
	}
	st, err := l.Scan(Query{}, func(probe.Event) error { t.Fatal("event in empty lake"); return nil })
	if err != nil || st.EventsMatched != 0 {
		t.Fatalf("scan: %+v, %v", st, err)
	}
}

// filterRef is the brute-force reference the query engine must agree
// with.
func filterRef(evs []probe.Event, q Query) []probe.Event {
	mask := q.typeMask()
	var out []probe.Event
	for _, ev := range evs {
		if !mask[ev.Type] {
			continue
		}
		if q.FilterTime && (ev.T < q.TMin || ev.T > q.TMax) {
			continue
		}
		if q.FilterNode && ev.From != q.Node && ev.To != q.Node {
			continue
		}
		if q.FilterRound && (ev.Round < q.RoundMin || ev.Round > q.RoundMax) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// TestQueryMatchesReference: every predicate combination agrees with the
// brute-force filter, in order, with pruning active.
func TestQueryMatchesReference(t *testing.T) {
	evs := synthEvents(8, 16, 2)
	l := openLake(t, buildLake(t, evs))
	defer l.Close()
	tMid := evs[len(evs)/2].T
	queries := []Query{
		Query{}.WithTypes(probe.TypeSkewSample),
		Query{}.WithTypes(probe.TypePulse, probe.TypeMessageDropLink),
		Query{}.WithNode(3),
		Query{}.WithNode(0), // node 0 must be filterable (zero-value footgun check)
		Query{}.WithTimeRange(tMid, math.Inf(1)),
		Query{}.WithTimeRange(0, tMid),
		Query{}.WithRound(5),
		Query{}.WithRounds(2, 4),
		Query{}.WithTypes(probe.TypeMessageDelivered).WithNode(1).WithTimeRange(tMid/2, tMid),
		Query{}.WithTypes(probe.TypePulse).WithRounds(10, 12).WithNode(7),
		Query{}.WithTimeRange(2, 1), // empty range
	}
	for qi, q := range queries {
		want := filterRef(evs, q)
		var got []probe.Event
		st, err := l.Scan(q, func(ev probe.Event) error {
			got = append(got, ev)
			return nil
		})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d (%+v): %d events, want %d", qi, q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d event %d: got %+v want %+v", qi, i, got[i], want[i])
			}
		}
		if st.EventsMatched != uint64(len(want)) {
			t.Fatalf("query %d stats: %+v, want %d matched", qi, st, len(want))
		}
	}
}

// TestPruningSkipsBlocks: a selective query must skip non-matching row
// groups at the footer, not decode-and-discard them.
func TestPruningSkipsBlocks(t *testing.T) {
	// 16 nodes x 240 rounds: the delivery column alone spans ~15 blocks,
	// so both type- and time-granular pruning have something to skip.
	evs := synthEvents(16, 240, 3)
	l := openLake(t, buildLake(t, evs))
	defer l.Close()

	// Type selectivity: skew samples are one block; everything else must
	// be pruned without a read.
	st, err := l.ScanRows(Query{}.WithTypes(probe.TypeSkewSample), func(*Rows) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksScanned == 0 || st.BlocksPruned == 0 ||
		st.BlocksScanned+st.BlocksPruned != st.BlocksTotal {
		t.Fatalf("type-pruned stats: %+v", st)
	}
	if st.BlocksScanned > st.BlocksTotal/4 {
		t.Fatalf("type query scanned %d of %d blocks — pruning is not working", st.BlocksScanned, st.BlocksTotal)
	}

	// Time selectivity: a ~1%% slice of the horizon.
	tMax := evs[len(evs)-1].T
	stTime, err := l.ScanRows(Query{}.WithTimeRange(tMax*0.49, tMax*0.50), func(*Rows) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stTime.BlocksPruned == 0 || stTime.BlocksScanned >= stTime.BlocksTotal/2 {
		t.Fatalf("time-pruned stats: %+v", stTime)
	}
}

// TestReplayReproducesCollectors is the probe-layer correctness
// contract: aggregates folded live and from a lake replay are identical.
func TestReplayReproducesCollectors(t *testing.T) {
	evs := synthEvents(7, 12, 4)

	live := []probe.Collector{probe.NewSkewStats(), probe.NewSpreadStats(), probe.NewMsgStats()}
	var bus probe.Bus
	var lw bytes.Buffer
	w := NewWriter(&lw)
	for _, c := range live {
		bus.AttachCollector(c)
	}
	bus.Attach(w)
	for _, ev := range evs {
		bus.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	l := openLake(t, lw.Bytes())
	defer l.Close()
	replayed := []probe.Collector{probe.NewSkewStats(), probe.NewSpreadStats(), probe.NewMsgStats()}
	probes := make([]probe.Probe, len(replayed))
	for i, c := range replayed {
		probes[i] = c
	}
	n, err := l.Replay(Query{}, probes...)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(evs) {
		t.Fatalf("replayed %d of %d events", n, len(evs))
	}
	for i := range live {
		la, ra := live[i].Aggregate(), replayed[i].Aggregate()
		if len(la) != len(ra) {
			t.Fatalf("%s: %d vs %d stats", live[i].Name(), len(la), len(ra))
		}
		for j := range la {
			if la[j] != ra[j] {
				t.Fatalf("%s stat %d: live %+v replay %+v", live[i].Name(), j, la[j], ra[j])
			}
		}
	}
}

// TestWriterAfterFlush: events after finalize are an error, not a drop.
func TestWriterAfterFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.OnEvent(probe.Event{Type: probe.TypePulse, T: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.OnEvent(probe.Event{Type: probe.TypePulse, T: 2})
	if err := w.Err(); err == nil || !strings.Contains(err.Error(), "after Flush") {
		t.Fatalf("OnEvent after Flush not rejected: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("second Flush must report the first call's (nil) outcome, got %v", err)
	}
}

// TestPrefixVarint exercises the codec over the whole value range.
func TestPrefixVarint(t *testing.T) {
	vals := []uint64{0, 1, 15, 16, 255, 256, 1<<20 - 1, 1 << 32, 1<<60 + 12345, math.MaxUint64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	var buf []byte
	for _, v := range vals {
		buf = appendPV(buf, v)
	}
	buf = append(buf, make([]byte, 8)...) // decoder pad
	off := 0
	for i, want := range vals {
		got, next := pvAt(buf, off)
		if got != want {
			t.Fatalf("value %d: decoded %d, want %d", i, got, want)
		}
		off = next
	}
	if off != len(buf)-8 {
		t.Fatalf("decoder consumed %d of %d bytes", off, len(buf)-8)
	}
}

// TestMagicMatchesProbe pins the cross-package contract: probe's format
// sniffing and this package's header must agree byte-for-byte.
func TestMagicMatchesProbe(t *testing.T) {
	if Magic != probe.LakeMagic {
		t.Fatalf("tracelake.Magic %q != probe.LakeMagic %q", Magic[:], probe.LakeMagic[:])
	}
}
