package tracelake

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"optsync/internal/probe"
)

// writeLakeFile persists an in-memory container to a temp file.
func writeLakeFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.lake")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func scanAll(t *testing.T, l *Lake) []probe.Event {
	t.Helper()
	var evs []probe.Event
	if _, err := l.Scan(Query{}, func(ev probe.Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestOpenMmap: on platforms with mmap support, Open maps the file and
// the scan reproduces the recorded stream exactly; with the env knob
// set, Open takes the positioned-read fallback and produces the same
// events. Both paths close cleanly.
func TestOpenMmap(t *testing.T) {
	evs := synthEvents(6, 20, 13)
	path := writeLakeFile(t, buildLake(t, evs))

	// CI runs the whole suite with the knob set to prove the fallback;
	// clear it here so this half tests the mapped path regardless.
	t.Setenv("SYNCSIM_LAKE_MMAP", "")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if mmapSupported && !l.Mapped() {
		t.Fatal("Open did not map on a supported platform")
	}
	got := scanAll(t, l)
	if err := l.Close(); err != nil {
		t.Fatalf("Close after mmap: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("mmap-backed scan diverges from the recorded stream")
	}

	t.Setenv("SYNCSIM_LAKE_MMAP", "off")
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Mapped() {
		t.Fatal("SYNCSIM_LAKE_MMAP=off still mapped")
	}
	got = scanAll(t, l)
	if err := l.Close(); err != nil {
		t.Fatalf("Close after fallback: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("fallback scan diverges from the recorded stream")
	}
}

// TestOpenMmapCorrupt: damage in an on-disk lake surfaces through the
// mmap path with the same offset-naming errors the in-memory path
// reports — truncation at open time, a flipped block byte at first
// touch (mmap verifies checksums lazily, once per block).
func TestOpenMmapCorrupt(t *testing.T) {
	good := buildLake(t, synthEvents(6, 20, 17))

	t.Run("truncated", func(t *testing.T) {
		path := writeLakeFile(t, good[:len(good)*2/3])
		l, err := Open(path)
		if err == nil {
			l.Close()
			t.Fatal("truncated lake opened")
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation error names no offset: %v", err)
		}
	})

	t.Run("block_bitflip", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[len(Magic)+16] ^= 0x40
		path := writeLakeFile(t, data)
		l, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		_, err = l.Scan(Query{}, func(probe.Event) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "checksum") || !strings.Contains(err.Error(), "offset") {
			t.Fatalf("flipped byte in mapped lake gave %v", err)
		}
	})
}
