package tracelake

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"optsync/internal/probe"
)

// workerCounts is the property-test grid: serial, the smallest real
// pool, and a pool wider than most CI runners have cores (so workers
// outnumber in-flight blocks and the free-list bound is exercised).
var workerCounts = []int{1, 2, 8}

// queryGrid returns the query shapes the parallel/serial equivalence
// tests sweep: match-all, a selective time slice, a node filter, and a
// typed round window — each at every worker count.
func queryGrid(tMax float64) []Query {
	return []Query{
		{},
		Query{}.WithTimeRange(tMax*0.3, tMax*0.6),
		Query{}.WithNode(3),
		Query{}.WithTypes(probe.TypePulse, probe.TypeSkewSample).WithRounds(2, 5),
	}
}

// scanOutcome captures everything observable from one scan: the exact
// event sequence, the stats, and the error text (empty when nil).
type scanOutcome struct {
	events []probe.Event
	stats  ScanStats
	errStr string
}

func runScan(l *Lake, q Query, ordered bool) scanOutcome {
	var o scanOutcome
	scan := l.ScanUnordered
	if ordered {
		scan = l.Scan
	}
	st, err := scan(q, func(ev probe.Event) error {
		o.events = append(o.events, ev)
		return nil
	})
	o.stats = st
	if err != nil {
		o.errStr = err.Error()
	}
	return o
}

// TestParallelScanByteIdentical is the determinism property test: for
// every query shape, Scan (ordered merge) and ScanUnordered (block
// order) must produce the identical event sequence and identical stats
// at workers 1, 2, and 8. Run under -race in CI, this also shakes the
// pool for data races.
func TestParallelScanByteIdentical(t *testing.T) {
	evs := synthEvents(10, 60, 5)
	data := buildLake(t, evs)
	tMax := evs[len(evs)-1].T
	for qi, base := range queryGrid(tMax) {
		for _, ordered := range []bool{false, true} {
			var ref scanOutcome
			for _, w := range workerCounts {
				l, err := OpenBytes(data)
				if err != nil {
					t.Fatal(err)
				}
				q := base.WithWorkers(w)
				got := runScan(l, q, ordered)
				l.Close()
				if got.errStr != "" {
					t.Fatalf("query %d ordered=%v workers=%d: %s", qi, ordered, w, got.errStr)
				}
				if len(got.events) == 0 {
					t.Fatalf("query %d matched nothing; widen the grid", qi)
				}
				if w == workerCounts[0] {
					ref = got
					continue
				}
				if !reflect.DeepEqual(got.events, ref.events) {
					t.Fatalf("query %d ordered=%v: workers=%d event stream diverges from workers=1", qi, ordered, w)
				}
				if got.stats != ref.stats {
					t.Fatalf("query %d ordered=%v: workers=%d stats %+v, workers=1 %+v", qi, ordered, w, got.stats, ref.stats)
				}
			}
		}
	}
}

// TestParallelScanErrorParity: corruption and callback aborts must
// surface identically at every worker count — same error text, same
// number of events delivered before the stop. In-order delivery makes
// the parallel scan's failure behavior indistinguishable from serial.
func TestParallelScanErrorParity(t *testing.T) {
	evs := synthEvents(8, 40, 11)
	good := buildLake(t, evs)

	t.Run("corrupt_block", func(t *testing.T) {
		data := append([]byte(nil), good...)
		l0, err := OpenBytes(good)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a payload byte in a middle block so several healthy blocks
		// decode first on other workers.
		mid := l0.blocks[len(l0.blocks)/2]
		l0.Close()
		data[int(mid.offset)+blockHeaderSize+3] ^= 0x10
		var ref scanOutcome
		for _, w := range workerCounts {
			l, err := OpenBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			got := runScan(l, Query{Workers: w}, true)
			l.Close()
			if got.errStr == "" {
				t.Fatalf("workers=%d: corrupt block scanned clean", w)
			}
			if w == workerCounts[0] {
				ref = got
				continue
			}
			if got.errStr != ref.errStr {
				t.Fatalf("workers=%d error %q, workers=1 %q", w, got.errStr, ref.errStr)
			}
			if len(got.events) != len(ref.events) {
				t.Fatalf("workers=%d delivered %d events before failing, workers=1 %d", w, len(got.events), len(ref.events))
			}
		}
	})

	t.Run("callback_abort", func(t *testing.T) {
		sentinel := errors.New("stop here")
		var refSeen int
		for _, w := range workerCounts {
			l, err := OpenBytes(good)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			_, err = l.ScanUnordered(Query{Workers: w}, func(probe.Event) error {
				seen++
				if seen == 1000 {
					return sentinel
				}
				return nil
			})
			l.Close()
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d: abort error lost: %v", w, err)
			}
			if w == workerCounts[0] {
				refSeen = seen
				continue
			}
			if seen != refSeen {
				t.Fatalf("workers=%d saw %d events before abort, workers=1 saw %d", w, seen, refSeen)
			}
		}
	})
}

// TestNegativeWorkersRejected: every scan entry point validates the
// worker count up front.
func TestNegativeWorkersRejected(t *testing.T) {
	l := openLake(t, buildLake(t, synthEvents(4, 4, 1)))
	defer l.Close()
	q := Query{Workers: -2}
	calls := map[string]func() error{
		"ScanRows": func() error {
			_, err := l.ScanRows(q, func(*Rows) error { return nil })
			return err
		},
		"Scan": func() error {
			_, err := l.Scan(q, func(probe.Event) error { return nil })
			return err
		},
		"ScanUnordered": func() error {
			_, err := l.ScanUnordered(q, func(probe.Event) error { return nil })
			return err
		},
		"Stats": func() error {
			_, err := l.Stats(q)
			return err
		},
	}
	for name, call := range calls {
		if err := call(); err == nil || !strings.Contains(err.Error(), "negative worker count") {
			t.Fatalf("%s: negative workers gave %v", name, err)
		}
	}
}

// TestStatsFooterFastPath pins the -stats short circuit: a query the
// footer can answer exactly decodes nothing, and the block taxonomy
// always partitions.
func TestStatsFooterFastPath(t *testing.T) {
	evs := synthEvents(9, 50, 7)
	l := openLake(t, buildLake(t, evs))
	defer l.Close()

	// Whole-lake count: every block fully covered, zero decode.
	st, err := l.Stats(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksScanned != 0 || st.RowsDecoded != 0 {
		t.Fatalf("whole-lake stats decoded: %+v", st)
	}
	if st.BlocksCovered != st.BlocksTotal || st.BlocksTotal != len(l.blocks) {
		t.Fatalf("whole-lake stats not fully covered: %+v (blocks %d)", st, len(l.blocks))
	}
	if st.EventsMatched != l.Events() || st.EventsMatched != uint64(len(evs)) {
		t.Fatalf("whole-lake stats matched %d of %d events", st.EventsMatched, len(evs))
	}

	// Every grid query: Stats' match count equals the scan's, the
	// taxonomy partitions, and worker counts agree.
	tMax := evs[len(evs)-1].T
	for qi, q := range queryGrid(tMax) {
		want, err := l.ScanUnordered(q, func(probe.Event) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		var ref ScanStats
		for _, w := range workerCounts {
			st, err := l.Stats(q.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if st.EventsMatched != want.EventsMatched {
				t.Fatalf("query %d workers=%d: Stats matched %d, scan matched %d", qi, w, st.EventsMatched, want.EventsMatched)
			}
			if st.BlocksPruned+st.BlocksCovered+st.BlocksScanned != st.BlocksTotal {
				t.Fatalf("query %d workers=%d: taxonomy does not partition: %+v", qi, w, st)
			}
			if w == workerCounts[0] {
				ref = st
				continue
			}
			if st != ref {
				t.Fatalf("query %d workers=%d stats %+v, workers=1 %+v", qi, w, st, ref)
			}
		}
	}
}
