package tracelake

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"optsync/internal/probe"
)

// castagnoli is the CRC-32C table shared by writer and reader; the
// polynomial with hardware support on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// colBuf accumulates the pending rows of one event type as plain
// struct-of-arrays columns until a block flush.
type colBuf struct {
	seq   []uint64
	t     []float64
	from  []int32
	to    []int32
	kind  []uint16
	round []int32
	value []float64
	aux   []float64
}

func (c *colBuf) reset() {
	c.seq = c.seq[:0]
	c.t = c.t[:0]
	c.from = c.from[:0]
	c.to = c.to[:0]
	c.kind = c.kind[:0]
	c.round = c.round[:0]
	c.value = c.value[:0]
	c.aux = c.aux[:0]
}

// Writer streams probe events into a lake container. It implements
// probe.Probe, so recording a live run is just attaching it to the bus
// (optsync.WithLakeTrace does); ConvertFrom-style callers feed it
// event-by-event the same way. Rows buffer per type and flush as column
// blocks every blockRows events; Flush writes the pending blocks, the
// footer index, and the trailer — a lake is complete only after a nil
// Flush, and accepts no events afterwards.
//
// I/O errors are sticky: the first one stops all further writes and is
// reported by Flush and Err, mirroring probe.Writer.
type Writer struct {
	bw       *bufio.Writer
	off      uint64
	blocks   []blockMeta
	pend     [probe.NumTypes]colBuf
	seq      uint64
	err      error
	done     bool
	finalErr error
	scratch  []byte
	deltas   []uint64
	resid    []uint64
	dict     []uint64
	didx     []uint64
}

// NewWriter returns a lake writer emitting to w. Writes are buffered and
// strictly sequential (a live run streams through one file handle).
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Events returns the number of events recorded so far.
func (w *Writer) Events() uint64 { return w.seq }

// Err returns the first error, if any.
func (w *Writer) Err() error { return w.err }

// OnEvent implements probe.Probe. Events arriving after Flush are an
// error (the footer is already on disk), not a silent drop.
func (w *Writer) OnEvent(ev probe.Event) {
	if w.err != nil {
		return
	}
	if w.done {
		w.err = fmt.Errorf("tracelake: OnEvent after Flush: the container is finalized")
		return
	}
	if w.seq == 0 {
		if _, err := w.bw.Write(Magic[:]); err != nil {
			w.err = err
			return
		}
		w.off = uint64(len(Magic))
	}
	ti := int(ev.Type)
	if ti <= 0 || ti >= len(w.pend) {
		w.err = fmt.Errorf("tracelake: event %d has invalid type %d", w.seq, ev.Type)
		return
	}
	c := &w.pend[ti]
	c.seq = append(c.seq, w.seq)
	c.t = append(c.t, ev.T)
	c.from = append(c.from, ev.From)
	c.to = append(c.to, ev.To)
	c.kind = append(c.kind, ev.Kind)
	c.round = append(c.round, ev.Round)
	c.value = append(c.value, ev.Value)
	c.aux = append(c.aux, ev.Aux)
	w.seq++
	if len(c.seq) >= blockRows {
		w.flushBlock(probe.Type(ti), c)
	}
}

// flushBlock encodes c as one column block, appends it, and records its
// footer entry.
func (w *Writer) flushBlock(typ probe.Type, c *colBuf) {
	if w.err != nil || len(c.seq) == 0 {
		return
	}
	meta := blockMeta{
		typ:    typ,
		count:  uint32(len(c.seq)),
		offset: w.off,
		seqMin: c.seq[0],
		tMin:   math.Inf(1), tMax: math.Inf(-1),
		nodeMin: math.MaxInt32, nodeMax: math.MinInt32,
		roundMin: math.MaxInt32, roundMax: math.MinInt32,
	}
	for i := range c.seq {
		meta.tMin = math.Min(meta.tMin, c.t[i])
		meta.tMax = math.Max(meta.tMax, c.t[i])
		meta.nodeMin = min(meta.nodeMin, min(c.from[i], c.to[i]))
		meta.nodeMax = max(meta.nodeMax, max(c.from[i], c.to[i]))
		meta.roundMin = min(meta.roundMin, c.round[i])
		meta.roundMax = max(meta.roundMax, c.round[i])
	}

	// Payload: type, count, then the eight columns.
	buf := w.scratch[:0]
	buf = append(buf, byte(typ))
	buf = binary.LittleEndian.AppendUint32(buf, meta.count)
	buf = w.appendU64Col(buf, c.seq)
	buf = w.appendF64Col(buf, c.t)
	buf = w.appendI32Col(buf, c.from)
	buf = w.appendI32Col(buf, c.to)
	buf = w.appendU16Col(buf, c.kind)
	buf = w.appendI32Col(buf, c.round)
	buf = w.appendF64Col(buf, c.value)
	buf = w.appendF64Col(buf, c.aux)
	w.scratch = buf

	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(buf, castagnoli))
	if _, err := w.bw.Write(crcb[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(buf); err != nil {
		w.err = err
		return
	}
	meta.length = uint64(4 + len(buf))
	w.off += meta.length
	w.blocks = append(w.blocks, meta)
	c.reset()
}

// Column appenders: pick codecConst when every row carries one value
// (kind, value, and aux usually do; skew samples' from/to are all -1);
// otherwise compute the column's zigzag delta stream once and emit
// whichever of codecPacked and codecDelta is smaller (packed on ties —
// its constant-stride decode is the faster one). Each column is framed
// as codec + length + bytes.

func appendColHeader(dst []byte, codec byte, n int) []byte {
	dst = append(dst, codec)
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

// appendNonConstCol frames and appends the column under the smaller of
// the two non-const codecs: frame-of-reference packing (base image +
// fixed-width residuals — the fast-decode path) or first value +
// prefix-varint zigzag deltas (denser under outliers).
func appendNonConstCol(dst []byte, first uint64, deltas []uint64, base uint64, resid []uint64) []byte {
	width := packedWidth(resid)
	psize := 8 + packedSize(len(resid), width)
	vsize := 8
	for _, d := range deltas {
		vsize += pvLen(d)
	}
	// Packed decodes several times faster than varint, so it wins unless
	// varint is at least 2x denser (a heavily outlier-skewed column).
	if psize <= 2*vsize {
		dst = appendColHeader(dst, codecPacked, psize)
		dst = appendConstCol(dst, base)
		return appendPacked(dst, resid, width)
	}
	dst = appendColHeader(dst, codecDelta, vsize)
	dst = appendConstCol(dst, first)
	return appendVarints(dst, deltas)
}

func (w *Writer) appendU64Col(dst []byte, vals []uint64) []byte {
	if allEqU64(vals) {
		dst = appendColHeader(dst, codecConst, 8)
		return appendConstCol(dst, vals[0])
	}
	first, deltas := deltasU64(w.deltas, vals)
	w.deltas = deltas
	base, resid := residualsU64(w.resid, vals)
	w.resid = resid
	return appendNonConstCol(dst, first, deltas, base, resid)
}

func (w *Writer) appendF64Col(dst []byte, vals []float64) []byte {
	if allEqF64(vals) {
		dst = appendColHeader(dst, codecConst, 8)
		return appendConstCol(dst, math.Float64bits(vals[0]))
	}
	first, deltas := deltasF64(w.deltas, vals)
	w.deltas = deltas
	base, resid := residualsF64(w.resid, vals)
	w.resid = resid
	// Float columns with few distinct values (aux payloads above all)
	// beat both delta codecs with a dictionary: measure the density and
	// emit codecDict only when the measured frame is strictly smaller
	// than both alternatives. High-cardinality columns abandon the
	// probe within their first dictMaxEntries+1 distinct rows.
	dict, ok := dictBuildF64(w.dict, vals)
	w.dict = dict
	if ok && len(dict) >= 2 {
		dsize := dictSizeF64(len(vals), len(dict))
		psize := 8 + packedSize(len(resid), packedWidth(resid))
		vsize := 8
		for _, d := range deltas {
			vsize += pvLen(d)
		}
		if dsize < psize && dsize < vsize {
			idx := dictIndexesF64(w.didx, dict, vals)
			w.didx = idx
			dst = appendColHeader(dst, codecDict, dsize)
			return appendDict(dst, dict, idx)
		}
	}
	return appendNonConstCol(dst, first, deltas, base, resid)
}

func (w *Writer) appendI32Col(dst []byte, vals []int32) []byte {
	if allEqI32(vals) {
		dst = appendColHeader(dst, codecConst, 8)
		return appendConstCol(dst, uint64(uint32(vals[0])))
	}
	first, deltas := deltasI32(w.deltas, vals)
	w.deltas = deltas
	base, resid := residualsI32(w.resid, vals)
	w.resid = resid
	return appendNonConstCol(dst, first, deltas, base, resid)
}

func (w *Writer) appendU16Col(dst []byte, vals []uint16) []byte {
	if allEqU16(vals) {
		dst = appendColHeader(dst, codecConst, 8)
		return appendConstCol(dst, uint64(vals[0]))
	}
	first, deltas := deltasU16(w.deltas, vals)
	w.deltas = deltas
	base, resid := residualsU16(w.resid, vals)
	w.resid = resid
	return appendNonConstCol(dst, first, deltas, base, resid)
}

func allEqU64(v []uint64) bool {
	for _, x := range v[1:] {
		if x != v[0] {
			return false
		}
	}
	return true
}

func allEqF64(v []float64) bool {
	b0 := math.Float64bits(v[0])
	for _, x := range v[1:] {
		if math.Float64bits(x) != b0 {
			return false
		}
	}
	return true
}

func allEqI32(v []int32) bool {
	for _, x := range v[1:] {
		if x != v[0] {
			return false
		}
	}
	return true
}

func allEqU16(v []uint16) bool {
	for _, x := range v[1:] {
		if x != v[0] {
			return false
		}
	}
	return true
}

// Flush writes the pending partial blocks, the footer index, and the
// trailer, then drains the buffer. It finalizes the container: further
// events are errors (reported by Err). Flush is idempotent — a second
// call reports the first call's outcome.
func (w *Writer) Flush() error {
	if w.done {
		return w.finalErr
	}
	if w.err != nil {
		w.done, w.finalErr = true, w.err
		return w.err
	}
	w.done = true
	if w.seq == 0 {
		// An empty trace still becomes a well-formed (empty) lake, so the
		// -trace flag never leaves a 0-byte file that Open rejects.
		if _, err := w.bw.Write(Magic[:]); err != nil {
			w.err = err
			return w.err
		}
		w.off = uint64(len(Magic))
	}
	// Blocks flush in stream order per type; the footer keeps that order,
	// so a type's blocks are seq-sorted by construction.
	for ti := range w.pend {
		w.flushBlock(probe.Type(ti), &w.pend[ti])
	}
	if w.err != nil {
		return w.err
	}

	footer := w.scratch[:0]
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(w.blocks)))
	footer = binary.LittleEndian.AppendUint64(footer, w.seq)
	for i := range w.blocks {
		footer = w.blocks[i].append(footer)
	}
	w.scratch = footer

	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(footer, castagnoli))
	if _, err := w.bw.Write(crcb[:]); err != nil {
		w.err = err
		return w.err
	}
	if _, err := w.bw.Write(footer); err != nil {
		w.err = err
		return w.err
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(4+len(footer)))
	copy(trailer[8:], endMagic[:])
	if _, err := w.bw.Write(trailer[:]); err != nil {
		w.err = err
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}
