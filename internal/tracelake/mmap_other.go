//go:build !unix

package tracelake

import (
	"errors"
	"os"
)

// mmapSupported gates the mmap fast path in Open: absent here, so Open
// always takes the positioned-read fallback.
const mmapSupported = false

func mmapOpen(_ *os.File, _ int64) ([]byte, func() error, error) {
	return nil, nil, errors.ErrUnsupported
}
