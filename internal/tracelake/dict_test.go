package tracelake

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"optsync/internal/probe"
)

// dictEvents builds a stream whose aux column repeats a small value set
// in shuffled order — the payload shape codecDict exists for. card is
// the number of distinct aux values; a large card degrades to random
// floats that no dictionary should win on.
func dictEvents(n int, card int, seed int64) []probe.Event {
	rng := rand.New(rand.NewSource(seed))
	palette := make([]float64, card)
	for i := range palette {
		palette[i] = 0.125 * float64(i+1) * (1 + 1e-9*rng.Float64())
	}
	evs := make([]probe.Event, n)
	t := 0.0
	for i := range evs {
		t += 1e-4 * rng.Float64()
		evs[i] = probe.Event{
			Type: probe.TypeResync, From: int32(i % 16), To: -1,
			Round: int32(i / 500), T: t,
			Value: t * (1 + rng.Float64()),
			Aux:   palette[rng.Intn(card)],
		}
	}
	return evs
}

// codecHistogram counts column codec bytes across every block by
// walking the raw container with the footer index.
func codecHistogram(t *testing.T, data []byte) map[byte]int {
	t.Helper()
	l, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	hist := map[byte]int{}
	for _, m := range l.blocks {
		off := int(m.offset) + blockHeaderSize
		end := int(m.offset) + int(m.length)
		for ci := 0; ci < numCols; ci++ {
			codec := data[off]
			clen := int(binary.LittleEndian.Uint32(data[off+1:]))
			hist[codec]++
			off += 5 + clen
		}
		if off != end {
			t.Fatalf("block at %d: columns cover %d..%d, block ends at %d", m.offset, m.offset, off, end)
		}
	}
	return hist
}

// TestDictCodecRoundTrip: a low-cardinality aux column must be stored
// with codecDict and decode bit-exactly; a high-cardinality stream must
// never pick the dictionary (it would be larger than the delta codecs).
func TestDictCodecRoundTrip(t *testing.T) {
	evs := dictEvents(12000, 8, 21)
	data := buildLake(t, evs)
	if n := codecHistogram(t, data)[codecDict]; n == 0 {
		t.Fatal("low-cardinality aux column never chose codecDict")
	}
	l := openLake(t, data)
	defer l.Close()
	i := 0
	if _, err := l.Scan(Query{}, func(ev probe.Event) error {
		if ev != evs[i] {
			t.Fatalf("event %d diverges:\n got %+v\nwant %+v", i, ev, evs[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(evs) {
		t.Fatalf("scanned %d of %d events", i, len(evs))
	}

	highCard := buildLake(t, dictEvents(12000, 11000, 22))
	if n := codecHistogram(t, highCard)[codecDict]; n != 0 {
		t.Fatalf("high-cardinality stream chose codecDict for %d columns", n)
	}
}

// findDictColumn locates one codecDict column frame: its absolute
// payload offset and declared length, plus the owning block's bounds
// for resealing.
func findDictColumn(t *testing.T, data []byte) (colOff, colLen, blockOff, blockLen int) {
	t.Helper()
	l, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, m := range l.blocks {
		off := int(m.offset) + blockHeaderSize
		for ci := 0; ci < numCols; ci++ {
			codec := data[off]
			clen := int(binary.LittleEndian.Uint32(data[off+1:]))
			if codec == codecDict {
				return off + 5, clen, int(m.offset), int(m.length)
			}
			off += 5 + clen
		}
	}
	t.Fatal("no codecDict column in the container")
	return 0, 0, 0, 0
}

// TestDictCodecCorrupt: damage inside a dictionary column is caught —
// by the block checksum for a blind bitflip, and by the dictionary
// frame validation when the checksum has been maliciously resealed.
// Both errors name the block's offset.
func TestDictCodecCorrupt(t *testing.T) {
	good := buildLake(t, dictEvents(9000, 6, 33))

	t.Run("bitflip", func(t *testing.T) {
		data := append([]byte(nil), good...)
		colOff, colLen, _, _ := findDictColumn(t, data)
		data[colOff+colLen/2] ^= 0x20
		openCorrupt(t, data, "checksum", "offset")
	})

	t.Run("resealed_entry_count", func(t *testing.T) {
		data := append([]byte(nil), good...)
		colOff, _, blockOff, blockLen := findDictColumn(t, data)
		// An entry count of 1 is never written (const wins); with the
		// block checksum recomputed, only the frame validation is left to
		// object.
		data[colOff] = 1
		payload := data[blockOff+4 : blockOff+blockLen]
		binary.LittleEndian.PutUint32(data[blockOff:], crc32.Checksum(payload, castagnoli))
		openCorrupt(t, data, "dictionary column frame is inconsistent", "offset")
	})
}
