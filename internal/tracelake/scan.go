package tracelake

import (
	"optsync/internal/probe"
)

// Query selects events. The zero value selects everything; the Filter*
// booleans arm the range predicates so that node 0, time 0, and round 0
// stay expressible. The chainable With* helpers set field and flag
// together:
//
//	q := tracelake.Query{}.WithTypes(probe.TypeSkewSample).
//		WithNode(17).WithTimeRange(2.5, 9.0)
//
// Every predicate is pushed down to the footer index first: blocks whose
// type, time span, node-id span, or round span cannot intersect the
// query are never read, let alone decoded.
type Query struct {
	// Types restricts to the listed event types; empty means all.
	Types []probe.Type
	// Node keeps events with From == Node or To == Node, when FilterNode.
	Node       int32
	FilterNode bool
	// TMin/TMax keep events with TMin <= T <= TMax, when FilterTime.
	TMin, TMax float64
	FilterTime bool
	// RoundMin/RoundMax keep events with RoundMin <= Round <= RoundMax,
	// when FilterRound.
	RoundMin, RoundMax int32
	FilterRound        bool
	// Workers bounds the scan's decode parallelism: 0 (the zero value)
	// means one worker per core (runtime.GOMAXPROCS), 1 forces the
	// serial scanner, higher values pin the pool width exactly. Output
	// and error reporting are byte-identical at every worker count —
	// parallel decode changes wall-clock time, nothing else. Negative
	// values are an error.
	Workers int
}

// WithTypes returns q restricted to the given event types.
func (q Query) WithTypes(types ...probe.Type) Query {
	q.Types = types
	return q
}

// WithNode returns q restricted to events touching node id (as sender or
// receiver).
func (q Query) WithNode(id int32) Query {
	q.Node, q.FilterNode = id, true
	return q
}

// WithTimeRange returns q restricted to events with lo <= T <= hi.
func (q Query) WithTimeRange(lo, hi float64) Query {
	q.TMin, q.TMax, q.FilterTime = lo, hi, true
	return q
}

// WithRounds returns q restricted to events with lo <= Round <= hi.
func (q Query) WithRounds(lo, hi int32) Query {
	q.RoundMin, q.RoundMax, q.FilterRound = lo, hi, true
	return q
}

// WithRound returns q restricted to one exact round.
func (q Query) WithRound(k int32) Query { return q.WithRounds(k, k) }

// WithWorkers returns q with the given decode-worker count (see the
// Workers field).
func (q Query) WithWorkers(n int) Query {
	q.Workers = n
	return q
}

// typeMask folds Types into a bitmap.
func (q *Query) typeMask() [probe.NumTypes]bool {
	var m [probe.NumTypes]bool
	if len(q.Types) == 0 {
		for i := 1; i < probe.NumTypes; i++ {
			m[i] = true
		}
		return m
	}
	for _, t := range q.Types {
		if int(t) > 0 && int(t) < probe.NumTypes {
			m[t] = true
		}
	}
	return m
}

// admitsBlock reports whether the block's footer bounds intersect q.
func (q *Query) admitsBlock(mask *[probe.NumTypes]bool, m *blockMeta) bool {
	if !mask[m.typ] {
		return false
	}
	if q.FilterTime && (m.tMax < q.TMin || m.tMin > q.TMax) {
		return false
	}
	if q.FilterNode && (q.Node < m.nodeMin || q.Node > m.nodeMax) {
		return false
	}
	if q.FilterRound && (m.roundMax < q.RoundMin || m.roundMin > q.RoundMax) {
		return false
	}
	return true
}

// coversBlock reports whether the footer bounds prove that EVERY row of
// an already-admitted block passes q's row predicates — the footer-only
// fast path of Stats. The node predicate keeps rows touching q.Node as
// sender or receiver, which the bounds only prove when both columns are
// pinned to that one id; anything wider is conservatively "partial".
func (q *Query) coversBlock(m *blockMeta) bool {
	if q.FilterTime && (m.tMin < q.TMin || m.tMax > q.TMax) {
		return false
	}
	if q.FilterNode && (m.nodeMin != q.Node || m.nodeMax != q.Node) {
		return false
	}
	if q.FilterRound && (m.roundMin < q.RoundMin || m.roundMax > q.RoundMax) {
		return false
	}
	return true
}

// admitsRow applies the row-level predicates to row i of r (the type was
// settled at block level).
func (q *Query) admitsRow(r *Rows, i int) bool {
	if q.FilterTime && (r.T[i] < q.TMin || r.T[i] > q.TMax) {
		return false
	}
	if q.FilterNode && r.From[i] != q.Node && r.To[i] != q.Node {
		return false
	}
	if q.FilterRound && (r.Round[i] < q.RoundMin || r.Round[i] > q.RoundMax) {
		return false
	}
	return true
}

// ScanStats reports what a scan touched — the observable proof that
// pruning skipped non-matching row groups.
type ScanStats struct {
	// BlocksTotal is the container's block count; BlocksPruned of them
	// were skipped on footer bounds alone and BlocksScanned were read
	// and decoded. BlocksCovered (Stats only) were answered from the
	// footer without decoding: the bounds proved every row matches.
	BlocksTotal, BlocksPruned, BlocksScanned, BlocksCovered int
	// RowsDecoded counts rows in scanned blocks; EventsMatched of them
	// passed the row-level predicates.
	RowsDecoded, EventsMatched uint64
}

// ScanRows visits every block q admits, in file order, decoded into
// struct-of-arrays form. fn sees whole blocks: rows failing q's
// row-level predicates are included (pruning is block-granular here);
// use Scan for exact row filtering in stream order. This is the raw
// bandwidth interface — a full scan decodes every column of every event
// and nothing else. With q.Workers != 1 the admitted blocks decode on a
// worker pool; fn still sees them one at a time, in file order, on the
// calling goroutine.
func (l *Lake) ScanRows(q Query, fn func(*Rows) error) (ScanStats, error) {
	workers, err := resolveWorkers(q.Workers)
	if err != nil {
		return ScanStats{}, err
	}
	mask := q.typeMask()
	st := ScanStats{BlocksTotal: len(l.blocks)}
	if workers > 1 {
		var metas []int
		for i := range l.blocks {
			if !q.admitsBlock(&mask, &l.blocks[i]) {
				st.BlocksPruned++
				continue
			}
			metas = append(metas, i)
		}
		if len(metas) == 0 {
			return st, nil
		}
		depth := min(workers+2, len(metas))
		pool := newDecodePool(l, workers, depth)
		defer pool.close()
		err := pool.consume(metas, depth, func(rows *Rows) error {
			st.BlocksScanned++
			st.RowsDecoded += uint64(rows.Len())
			return fn(rows)
		})
		return st, err
	}
	var br blockReader
	for i := range l.blocks {
		m := &l.blocks[i]
		if !q.admitsBlock(&mask, m) {
			st.BlocksPruned++
			continue
		}
		rows, err := br.read(l, i)
		if err != nil {
			return st, err
		}
		st.BlocksScanned++
		st.RowsDecoded += uint64(rows.Len())
		if err := fn(rows); err != nil {
			return st, err
		}
	}
	return st, nil
}

// cursor walks the admitted blocks of one event type in seq order,
// positioned on the next row that passes the query's row predicates.
// With a stream attached, block decode is prefetched on the scan's
// worker pool; the per-row loop is the same either way.
type cursor struct {
	lake  *Lake
	q     *Query
	metas []int // admitted block indices of this type, seq-sorted
	next  int   // next position in metas
	br    blockReader
	s     *blockStream // non-nil: parallel prefetch replaces br
	held  *blockReader // the stream reader whose rows are in use
	rows  *Rows
	idx   int
	st    *ScanStats
}

// advance moves to the next admitted row, loading blocks as needed.
// Returns false when the cursor is exhausted.
func (c *cursor) advance() (bool, error) {
	for {
		if c.rows != nil {
			for c.idx++; c.idx < c.rows.Len(); c.idx++ {
				if c.q.admitsRow(c.rows, c.idx) {
					return true, nil
				}
			}
			c.rows = nil
		}
		if c.next >= len(c.metas) {
			return false, nil
		}
		var rows *Rows
		var err error
		if c.s != nil {
			if c.held != nil {
				c.s.recycle(c.held)
				c.held = nil
			}
			rows, c.held, err = c.s.take()
		} else {
			rows, err = c.br.read(c.lake, c.metas[c.next])
		}
		if err != nil {
			return false, err
		}
		c.next++
		c.st.BlocksScanned++
		c.st.RowsDecoded += uint64(rows.Len())
		c.rows, c.idx = rows, -1
	}
}

// headSeq is the stream position of the cursor's current row.
func (c *cursor) headSeq() uint64 { return c.rows.Seq[c.idx] }

// Scan streams every event q admits through fn, in recorded stream
// order — the per-type blocks are merged back by the seq column, so a
// match-all Scan reproduces the original probe stream exactly (which is
// what Replay builds on). Block pruning happens first; rows of admitted
// blocks are then filtered exactly. With q.Workers != 1 each type's
// blocks prefetch-decode on a worker pool while the merge loop runs on
// the calling goroutine — the merged stream (and its error reporting)
// is byte-identical to the serial scan at every worker count.
func (l *Lake) Scan(q Query, fn func(probe.Event) error) (ScanStats, error) {
	workers, err := resolveWorkers(q.Workers)
	if err != nil {
		return ScanStats{}, err
	}
	mask := q.typeMask()
	st := ScanStats{BlocksTotal: len(l.blocks)}

	perType := make([][]int, probe.NumTypes)
	active := 0
	for i := range l.blocks {
		m := &l.blocks[i]
		if !q.admitsBlock(&mask, m) {
			st.BlocksPruned++
			continue
		}
		if len(perType[m.typ]) == 0 {
			active++
		}
		perType[m.typ] = append(perType[m.typ], i)
	}

	// The merge consumes one type at a time, so per-type prefetch past
	// a couple of blocks buys nothing — except when a single type holds
	// every admitted block, where the stream degenerates to ScanRows
	// and the full pool width pays off.
	var pool *decodePool
	depth := 2
	if workers > 1 && active > 0 {
		if active == 1 {
			depth = workers + 2
		}
		queue := 0
		for _, metas := range perType {
			if len(metas) > 0 {
				queue += min(depth, len(metas))
			}
		}
		pool = newDecodePool(l, workers, queue)
		defer pool.close()
	}

	cursors := make([]*cursor, 0, probe.NumTypes)
	for _, metas := range perType {
		if len(metas) == 0 {
			continue
		}
		c := &cursor{lake: l, q: &q, metas: metas, st: &st, idx: -1}
		if pool != nil {
			c.s = pool.stream(metas, depth)
		}
		ok, err := c.advance()
		if err != nil {
			return st, err
		}
		if ok {
			cursors = append(cursors, c)
		}
	}

	// K-way merge by seq. K is at most the number of event types, so a
	// linear min over the active cursors beats heap bookkeeping.
	for len(cursors) > 0 {
		mi := 0
		minSeq := cursors[0].headSeq()
		for i := 1; i < len(cursors); i++ {
			if s := cursors[i].headSeq(); s < minSeq {
				mi, minSeq = i, s
			}
		}
		c := cursors[mi]
		st.EventsMatched++
		if err := fn(c.rows.Event(c.idx)); err != nil {
			return st, err
		}
		ok, err := c.advance()
		if err != nil {
			return st, err
		}
		if !ok {
			cursors[mi] = cursors[len(cursors)-1]
			cursors = cursors[:len(cursors)-1]
		}
	}
	return st, nil
}

// ScanUnordered streams every event q admits through fn in FILE order
// instead of global stream order: an admitted block's matching rows are
// emitted consecutively, blocks in container order. That drops the
// k-way seq merge — for a single-type query the two orders coincide (a
// type's blocks are seq-sorted), for multi-type queries events of
// different types interleave differently than they were recorded. The
// order is still fully deterministic and identical at every worker
// count; use Scan when downstream consumers are order-sensitive
// (collectors, replay).
func (l *Lake) ScanUnordered(q Query, fn func(probe.Event) error) (ScanStats, error) {
	matched := uint64(0)
	st, err := l.ScanRows(q, func(r *Rows) error {
		for i := 0; i < r.Len(); i++ {
			if !q.admitsRow(r, i) {
				continue
			}
			matched++
			if err := fn(r.Event(i)); err != nil {
				return err
			}
		}
		return nil
	})
	st.EventsMatched = matched
	return st, err
}

// Stats reports what q would match without streaming any events. Blocks
// are classified from the footer index alone: pruned (bounds cannot
// intersect q), covered (bounds prove every row matches — the count
// comes straight from the footer entry), or partial. Only partial
// blocks are decoded and row-counted, so a whole-lake count — or any
// query whose predicates align with block bounds — answers in O(footer)
// with zero blocks decoded.
func (l *Lake) Stats(q Query) (ScanStats, error) {
	workers, err := resolveWorkers(q.Workers)
	if err != nil {
		return ScanStats{}, err
	}
	mask := q.typeMask()
	st := ScanStats{BlocksTotal: len(l.blocks)}
	var partial []int
	for i := range l.blocks {
		m := &l.blocks[i]
		if !q.admitsBlock(&mask, m) {
			st.BlocksPruned++
			continue
		}
		if q.coversBlock(m) {
			st.BlocksCovered++
			st.EventsMatched += uint64(m.count)
			continue
		}
		partial = append(partial, i)
	}
	if len(partial) == 0 {
		return st, nil
	}
	count := func(rows *Rows) error {
		st.BlocksScanned++
		st.RowsDecoded += uint64(rows.Len())
		for i := 0; i < rows.Len(); i++ {
			if q.admitsRow(rows, i) {
				st.EventsMatched++
			}
		}
		return nil
	}
	if workers > 1 {
		depth := min(workers+2, len(partial))
		pool := newDecodePool(l, workers, depth)
		defer pool.close()
		return st, pool.consume(partial, depth, count)
	}
	var br blockReader
	for _, mi := range partial {
		rows, err := br.read(l, mi)
		if err != nil {
			return st, err
		}
		if err := count(rows); err != nil {
			return st, err
		}
	}
	return st, nil
}

// Replay streams the events q admits through the given probes, in
// recorded order (collectors subscribe to the types they declare, like
// probe.Replay). A match-all Replay through fresh collectors reproduces
// the live run's aggregates exactly: the lake round-trips float64 bits
// and restores the stream order collectors are sensitive to. Returns the
// number of events replayed.
func (l *Lake) Replay(q Query, probes ...probe.Probe) (int, error) {
	var bus probe.Bus
	for _, p := range probes {
		if c, ok := p.(probe.Collector); ok {
			bus.AttachCollector(c)
			continue
		}
		bus.Attach(p)
	}
	n := 0
	_, err := l.Scan(q, func(ev probe.Event) error {
		n++
		//syncsim:allowlist probeguard selective replay emits every matched event to explicitly attached probes; no unobserved fast path here
		bus.Emit(ev)
		return nil
	})
	return n, err
}
