//go:build unix

package tracelake

import (
	"os"
	"syscall"
)

// mmapSupported gates the mmap fast path in Open.
const mmapSupported = true

// mmapOpen maps the whole file read-only and returns the mapping plus
// its releaser. The mapping is MAP_SHARED, so a multi-GB lake costs
// page-cache references, not a copy; PROT_READ keeps the container
// immutable under the decoder, which is what lets block checksums be
// cached after first verification.
func mmapOpen(f *os.File, size int64) ([]byte, func() error, error) {
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
