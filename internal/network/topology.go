package network

import (
	"fmt"
	"math/rand"

	"optsync/internal/sim"
)

// Topology decides which directed links exist at any virtual instant. The
// network consults it on every transmission: a send over a link that is
// down (or absent) is dropped at the sender and counted in
// Stats.DroppedLink, and Broadcast only pays for the links that exist.
//
// Topologies must be deterministic functions of (from, to, now) so that
// simulations stay reproducible. A topology that also shapes latency
// (WAN regions) additionally implements DelayShaper.
type Topology interface {
	// Linked reports whether the from->to link carries traffic at now.
	Linked(from, to NodeID, now sim.Time) bool
	// String names the topology for tables and traces.
	String() string
}

// DelayShaper is an optional Topology refinement: topologies with
// link-dependent latency implement it, and the network applies Shape to
// every delay the base Policy produces (base >= 0; returning a negative
// value drops the message).
type DelayShaper interface {
	Shape(from, to NodeID, now sim.Time, base float64, rng *rand.Rand) float64
}

// NeighborLister is an optional Topology refinement for sparse static
// topologies that can enumerate a node's linked set directly: Broadcast
// then visits degree+1 recipients instead of probing Linked across all n,
// which is what makes the 65536-node sparse tiers tractable. The listed
// set must equal {to : Linked(from, to, now)} at every instant (so only
// time-invariant topologies qualify — a Partitioned wrapper deliberately
// does not implement it), must include from itself, and must be in
// ascending id order: broadcast delivery order, traffic stats, and probe
// traces must be byte-identical whichever path the network takes.
type NeighborLister interface {
	// AppendNeighbors appends the linked set of from (including from) to
	// buf in ascending id order and returns the extended slice.
	AppendNeighbors(from NodeID, buf []NodeID) []NodeID
}

// FullMesh is the model's default connectivity: every pair of processes
// is joined by a reliable channel. It is the identity topology — results
// under FullMesh are byte-identical to a network with no topology at all.
type FullMesh struct{}

var _ Topology = FullMesh{}

// Linked implements Topology.
func (FullMesh) Linked(_, _ NodeID, _ sim.Time) bool { return true }

// String implements Topology.
func (FullMesh) String() string { return "mesh" }

// WANRegions arranges n nodes into R contiguous regions on a ring of
// cliques: links inside a region behave like the base policy, links
// between ring-adjacent regions exist but cost extra latency, and links
// between non-adjacent regions do not exist — traffic crosses the WAN
// only through the protocols' own relay steps. This is the standard
// "datacenters on a backbone" shape: it preserves the paper's liveness
// (every region hears every round within a few hops) while stretching
// acceptance spread by the per-hop envelope, which the W-series
// experiments measure against region count.
type WANRegions struct {
	// N is the cluster size; Regions the number of cliques (>= 1).
	N, Regions int
	// HopDelay is the deterministic extra latency of an inter-region link.
	HopDelay float64
	// HopJitter widens the inter-region latency to
	// [HopDelay, HopDelay+HopJitter] per message (drawn from the
	// simulation rng) — the region's "delay envelope".
	HopJitter float64
}

var _ Topology = WANRegions{}
var _ DelayShaper = WANRegions{}

// NewWANRegions builds the ring-of-cliques with a default hop envelope
// of [hopDelay, 2*hopDelay].
func NewWANRegions(n, regions int, hopDelay float64) WANRegions {
	if regions < 1 {
		regions = 1
	}
	if regions > n {
		regions = n
	}
	return WANRegions{N: n, Regions: regions, HopDelay: hopDelay, HopJitter: hopDelay}
}

// Region returns the region of node id (contiguous blocks).
func (w WANRegions) Region(id NodeID) int {
	if w.Regions <= 1 {
		return 0
	}
	return id * w.Regions / w.N
}

// Linked implements Topology: same region, or ring-adjacent regions.
func (w WANRegions) Linked(from, to NodeID, _ sim.Time) bool {
	rf, rt := w.Region(from), w.Region(to)
	if rf == rt {
		return true
	}
	d := rf - rt
	if d < 0 {
		d = -d
	}
	return d == 1 || d == w.Regions-1
}

// Shape implements DelayShaper: inter-region links pay the hop envelope.
func (w WANRegions) Shape(from, to NodeID, _ sim.Time, base float64, rng *rand.Rand) float64 {
	if w.Region(from) == w.Region(to) {
		return base
	}
	extra := w.HopDelay
	if w.HopJitter > 0 {
		extra += rng.Float64() * w.HopJitter
	}
	return base + extra
}

// String implements Topology.
func (w WANRegions) String() string { return fmt.Sprintf("wan:%d", w.Regions) }

// SparseGraph is a static undirected graph: only listed edges carry
// traffic (self-links always exist, since the model's broadcast includes
// the sender). Use NewCirculant for the deterministic degree-sweep family
// or NewSparseGraph for an explicit edge list.
type SparseGraph struct {
	n    int
	adj  []bool // n*n adjacency, row-major
	name string
}

var _ Topology = (*SparseGraph)(nil)

// NewSparseGraph builds a topology from an explicit undirected edge list.
func NewSparseGraph(n int, edges [][2]NodeID) *SparseGraph {
	g := &SparseGraph{n: n, adj: make([]bool, n*n), name: fmt.Sprintf("sparse(%d edges)", len(edges))}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			panic(fmt.Sprintf("network: edge (%d,%d) out of range [0,%d)", a, b, n))
		}
		g.adj[a*n+b] = true
		g.adj[b*n+a] = true
	}
	return g
}

// Circulant is the circulant graph C_n(1..Half): node i is linked to
// i±1, ..., i±Half (mod n). Circulants are the canonical fixed-degree
// family for measuring how synchronization degrades as the graph thins:
// diameter grows like n/degree while every node keeps an identical local
// view. Adjacency is pure ring arithmetic — no n² matrix — so the family
// scales to the n=65536 tier, and AppendNeighbors lets Broadcast visit
// degree+1 recipients instead of scanning all n.
type Circulant struct {
	n, half int
}

var _ Topology = (*Circulant)(nil)
var _ NeighborLister = (*Circulant)(nil)

// NewCirculant builds the circulant graph C_n(1..degree/2). The degree
// must be even and within [2, n-1] — silently rounding would mislabel
// experiment results, so invalid degrees panic (harness builders validate
// first and return errors).
func NewCirculant(n, degree int) *Circulant {
	if degree < 2 || degree%2 != 0 || degree >= n {
		panic(fmt.Sprintf("network: circulant degree %d invalid for n=%d (need even, in [2,%d])", degree, n, n-1))
	}
	return &Circulant{n: n, half: degree / 2}
}

// Linked implements Topology: ring distance at most degree/2.
func (c *Circulant) Linked(from, to NodeID, _ sim.Time) bool {
	d := from - to
	if d < 0 {
		d = -d
	}
	return d <= c.half || c.n-d <= c.half
}

// Degree returns the number of neighbours of any node (excluding itself).
func (c *Circulant) Degree(NodeID) int { return 2 * c.half }

// AppendNeighbors implements NeighborLister.
func (c *Circulant) AppendNeighbors(from NodeID, buf []NodeID) []NodeID {
	// The linked set is {from-half .. from+half} mod n (including from),
	// three already-sorted sub-ranges in ascending id order: offsets that
	// wrap past n-1 land on low ids, the unwrapped middle run keeps its
	// ids, and offsets that wrap below 0 land on high ids.
	lo, hi := from-c.half, from+c.half
	for j := c.n; j <= hi; j++ { // wrapped past the high end: ids 0..hi-n
		buf = append(buf, j-c.n)
	}
	start, end := lo, hi
	if start < 0 {
		start = 0
	}
	if end > c.n-1 {
		end = c.n - 1
	}
	for j := start; j <= end; j++ {
		buf = append(buf, j)
	}
	for j := lo; j < 0; j++ { // wrapped below zero: ids n+lo..n-1
		buf = append(buf, j+c.n)
	}
	return buf
}

// String implements Topology.
func (c *Circulant) String() string { return fmt.Sprintf("ring:%d", 2*c.half) }

// Linked implements Topology.
func (g *SparseGraph) Linked(from, to NodeID, _ sim.Time) bool {
	return from == to || g.adj[from*g.n+to]
}

// Degree returns the number of neighbours of id (excluding itself).
func (g *SparseGraph) Degree(id NodeID) int {
	d := 0
	for j := 0; j < g.n; j++ {
		if j != id && g.adj[id*g.n+j] {
			d++
		}
	}
	return d
}

// String implements Topology.
func (g *SparseGraph) String() string { return g.name }

// PartitionWindow is one scheduled cut: from At until Heal, links whose
// endpoints fall on different sides are down. Heal <= At means the cut
// never heals within the run.
type PartitionWindow struct {
	At, Heal float64
	// Left marks the members of the left side; everyone else is right.
	Left []bool
}

// active reports whether the cut is in force at now.
func (w PartitionWindow) active(now sim.Time) bool {
	return now >= w.At && (w.Heal <= w.At || now < w.Heal)
}

// cut reports whether the from->to link crosses the cut.
func (w PartitionWindow) cut(from, to NodeID) bool {
	return w.side(from) != w.side(to)
}

func (w PartitionWindow) side(id NodeID) bool {
	return id < len(w.Left) && w.Left[id]
}

// Partitioned layers scheduled partition/heal churn over a base topology:
// a link exists iff the base provides it and no active window cuts it.
// Windows are plain data consulted at send time, so churn costs nothing
// in the event queue and composes with any base topology.
type Partitioned struct {
	Base    Topology
	Windows []PartitionWindow
}

var _ Topology = (*Partitioned)(nil)

// NewSplit builds a single At->Heal window cutting the leftSize
// lowest-id nodes from the rest of an n-node cluster.
func NewSplit(base Topology, n, leftSize int, at, heal float64) *Partitioned {
	left := make([]bool, n)
	for i := 0; i < leftSize && i < n; i++ {
		left[i] = true
	}
	return &Partitioned{Base: base, Windows: []PartitionWindow{{At: at, Heal: heal, Left: left}}}
}

// Linked implements Topology.
func (p *Partitioned) Linked(from, to NodeID, now sim.Time) bool {
	if !p.Base.Linked(from, to, now) {
		return false
	}
	for _, w := range p.Windows {
		if w.active(now) && w.cut(from, to) {
			return false
		}
	}
	return true
}

// Shape implements DelayShaper by delegating to the base topology.
func (p *Partitioned) Shape(from, to NodeID, now sim.Time, base float64, rng *rand.Rand) float64 {
	if s, ok := p.Base.(DelayShaper); ok {
		return s.Shape(from, to, now, base, rng)
	}
	return base
}

// String implements Topology.
func (p *Partitioned) String() string {
	return fmt.Sprintf("%s+%d-partitions", p.Base, len(p.Windows))
}
