package network

import (
	"testing"

	"optsync/internal/sim"
)

// TestArenaReleasesBurstMemory asserts the delivery-arena cap: after a
// burst far larger than arenaTrimCap drains and the arena goes idle on a
// small steady workload, the burst's slots are released instead of
// pinned for the rest of the run (long campaign batches must not retain
// one worst-case round's batch memory).
func TestArenaReleasesBurstMemory(t *testing.T) {
	e := sim.New(1)
	const n = 80
	nt := New(e, n, Uniform{Min: 0.002, Max: 0.01}, nil)
	for i := 0; i < n; i++ {
		nt.Register(i, func(NodeID, Message) {})
	}
	// Raw payloads force the arena path; uniform delays make almost every
	// recipient a distinct batch, so one all-pairs round needs ~n^2 slots.
	for from := 0; from < n; from++ {
		nt.Broadcast(from, Raw("burst"))
	}
	peak := nt.inUse
	if peak <= arenaTrimCap {
		t.Fatalf("burst used only %d slots; fixture too small to test the cap", peak)
	}
	e.RunAll(0)
	if nt.inUse != 0 {
		t.Fatalf("arena not idle after drain: %d slots in use", nt.inUse)
	}
	if len(nt.arena) <= arenaTrimCap {
		t.Fatalf("arena shrank to %d during the burst's own drain; high-water fixture broken", len(nt.arena))
	}

	// A small steady workload goes idle far below the high-water mark:
	// the next idle point must release the arena.
	nt.Send(0, 1, Raw("steady"))
	e.RunAll(0)
	if got := len(nt.arena); got > arenaTrimCap {
		t.Fatalf("arena retains %d slots after the burst drained (cap %d, peak %d)",
			got, arenaTrimCap, peak)
	}

	// And the network still works after the release.
	delivered := 0
	nt.Register(2, func(NodeID, Message) { delivered++ })
	nt.Broadcast(0, Raw("after"))
	e.RunAll(0)
	if delivered != 1 {
		t.Fatalf("post-release broadcast delivered %d to node 2, want 1", delivered)
	}
}
