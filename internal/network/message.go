package network

import (
	"fmt"
	"sync"
)

// Kind discriminates message envelopes. Kinds are small integers handed
// out by NewKind at package-init time, so protocols dispatch on an
// integer compare instead of a type switch over `any`, and scalar-only
// messages (a round number, a clock reading) cross the network without a
// single heap allocation.
type Kind uint16

// KindRaw is the zero Kind: an envelope whose meaning lives entirely in
// Payload. Raw wraps arbitrary values for tests and ad-hoc protocols.
const KindRaw Kind = 0

// Message is the typed network envelope. The transport-level sender is
// delivered alongside (handlers receive `from` separately, and the model's
// authenticated channels make it trustworthy); the envelope carries the
// protocol-level content:
//
//   - Kind selects the protocol message type.
//   - Src names a claimed origin for relayed traffic (broadcast
//     primitives re-broadcast other processes' announcements).
//   - Round and Value are inline scalar payloads; the common protocol
//     messages ("ready(k)", "my clock reads v") need nothing else and
//     therefore allocate nothing.
//   - Payload carries structured content (signature sets, application
//     data). For messages fanned out by Broadcast the payload is shared
//     by all recipients, so it is boxed once per broadcast, not per
//     delivery.
type Message struct {
	Kind    Kind
	Src     NodeID
	Round   int
	Value   float64
	Payload any
}

// Raw wraps an arbitrary payload in a KindRaw envelope.
func Raw(payload any) Message { return Message{Payload: payload} }

var kinds = struct {
	mu    sync.Mutex
	names []string
}{names: []string{"raw"}}

// NewKind registers a new message kind under a diagnostic name and
// returns its id. Call it from package init (like protocol registration);
// it panics when the 16-bit kind space is exhausted.
func NewKind(name string) Kind {
	kinds.mu.Lock()
	defer kinds.mu.Unlock()
	if len(kinds.names) > 0xFFFF {
		panic("network: kind space exhausted")
	}
	kinds.names = append(kinds.names, name)
	return Kind(len(kinds.names) - 1)
}

// String returns the diagnostic name the kind was registered under.
func (k Kind) String() string {
	kinds.mu.Lock()
	defer kinds.mu.Unlock()
	if int(k) < len(kinds.names) {
		return kinds.names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint16(k))
}
