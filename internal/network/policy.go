package network

import (
	"fmt"
	"math"
	"math/rand"

	"optsync/internal/sim"
)

// MinDelayer is an optional Policy refinement: policies that know a hard
// floor on the delay of every message they ever deliver implement it. The
// floor is the sharded engine's conservative lookahead — the width of the
// safe window inside which shards run without synchronizing — so it must
// be a true lower bound: a policy that can deliver faster than its
// MinDelay would corrupt a parallel run. A policy that drops everything
// may return +Inf (no delivery constrains the window at all).
type MinDelayer interface {
	MinDelay() float64
}

// Lookahead returns the delivery-delay floor of p, or 0 when p does not
// expose one. A zero (or negative) lookahead means the sharded engine has
// no safe window and the simulation must run serially.
func Lookahead(p Policy) float64 {
	if m, ok := p.(MinDelayer); ok {
		return m.MinDelay()
	}
	return 0
}

// Fixed delivers every message after exactly D seconds.
type Fixed struct {
	D float64
}

var _ Policy = Fixed{}

// Delay implements Policy.
func (f Fixed) Delay(_, _ NodeID, _ sim.Time, _ *rand.Rand) float64 { return f.D }

// MinDelay implements MinDelayer.
func (f Fixed) MinDelay() float64 { return f.D }

// Uniform draws delays uniformly from [Min, Max]. This is the standard
// benign model: delay within (0, tdel].
type Uniform struct {
	Min, Max float64
}

var _ Policy = Uniform{}

// Delay implements Policy.
func (u Uniform) Delay(_, _ NodeID, _ sim.Time, rng *rand.Rand) float64 {
	if u.Max < u.Min {
		panic(fmt.Sprintf("network: Uniform{%v, %v} inverted", u.Min, u.Max))
	}
	return u.Min + rng.Float64()*(u.Max-u.Min)
}

// MinDelay implements MinDelayer.
func (u Uniform) MinDelay() float64 { return u.Min }

// PerLink delegates to an arbitrary function of the link; use for scripted
// adversarial schedules.
type PerLink struct {
	Fn func(from, to NodeID, now sim.Time, rng *rand.Rand) float64
}

var _ Policy = PerLink{}

// Delay implements Policy.
func (p PerLink) Delay(from, to NodeID, now sim.Time, rng *rand.Rand) float64 {
	return p.Fn(from, to, now, rng)
}

// FaultyAware routes links touching a faulty endpoint to a separate policy.
// The model requires correct-to-correct links to respect [dmin, dmax], but
// says nothing about links with a faulty endpoint: the adversary may rush
// (deliver arbitrarily fast) or withhold (drop) there.
type FaultyAware struct {
	// Honest applies to links whose two endpoints are correct.
	Honest Policy
	// Faulty applies to links with at least one faulty endpoint.
	Faulty Policy
	// IsFaulty reports whether a node is faulty.
	IsFaulty func(NodeID) bool
}

var _ Policy = FaultyAware{}

// Delay implements Policy.
func (f FaultyAware) Delay(from, to NodeID, now sim.Time, rng *rand.Rand) float64 {
	if f.IsFaulty(from) || f.IsFaulty(to) {
		return f.Faulty.Delay(from, to, now, rng)
	}
	return f.Honest.Delay(from, to, now, rng)
}

// MinDelay implements MinDelayer: the floor across both arms. An arm
// without a floor of its own makes the whole policy floorless (0) — the
// adversary could rush messages arbitrarily fast on faulty links, which
// is exactly the case conservative parallelism cannot admit.
func (f FaultyAware) MinDelay() float64 {
	h, a := Lookahead(f.Honest), Lookahead(f.Faulty)
	if h <= 0 || a <= 0 {
		return 0
	}
	return math.Min(h, a)
}

// Spread is the adversarial policy that maximizes acceptance spread among
// correct nodes: messages to nodes in Slow get the maximum delay, messages
// to everyone else the minimum. This realizes the worst case of the
// agreement proofs (some processes learn of a round as early as possible,
// others as late as possible).
type Spread struct {
	Min, Max float64
	Slow     map[NodeID]bool
}

var _ Policy = Spread{}

// Delay implements Policy.
func (s Spread) Delay(_, to NodeID, _ sim.Time, _ *rand.Rand) float64 {
	if s.Slow[to] {
		return s.Max
	}
	return s.Min
}

// MinDelay implements MinDelayer.
func (s Spread) MinDelay() float64 { return s.Min }

// Drop unconditionally drops everything; used as the Faulty arm of
// FaultyAware to model crashed or silenced nodes.
type Drop struct{}

var _ Policy = Drop{}

// Delay implements Policy.
func (Drop) Delay(_, _ NodeID, _ sim.Time, _ *rand.Rand) float64 { return -1 }

// MinDelay implements MinDelayer: a policy that never delivers anything
// places no constraint on the safe window.
func (Drop) MinDelay() float64 { return math.Inf(1) }
