package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"optsync/internal/sim"
)

func TestSendDeliversAfterFixedDelay(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{D: 0.5})
	var gotFrom NodeID = -1
	var gotMsg any
	var at sim.Time
	nt.Register(1, func(from NodeID, msg any) {
		gotFrom, gotMsg, at = from, msg, e.Now()
	})
	nt.Send(0, 1, "hello")
	e.RunAll(0)
	if gotFrom != 0 || gotMsg != "hello" || at != 0.5 {
		t.Fatalf("delivery = (%v, %v, %v)", gotFrom, gotMsg, at)
	}
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 4, Fixed{D: 0.1})
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nt.Register(i, func(from NodeID, msg any) { got[i]++ })
	}
	nt.Broadcast(2, "m")
	e.RunAll(0)
	for i, c := range got {
		if c != 1 {
			t.Fatalf("node %d received %d copies", i, c)
		}
	}
}

func TestUnregisteredDestinationDrops(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{D: 0.1})
	nt.Send(0, 1, "m")
	e.RunAll(0)
	s := nt.Stats()
	if s.Sent != 1 || s.Delivered != 0 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsCounting(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 3, Fixed{D: 0})
	for i := 0; i < 3; i++ {
		nt.Register(i, func(NodeID, any) {})
	}
	nt.Broadcast(0, "a")
	nt.Send(1, 2, "b")
	e.RunAll(0)
	s := nt.Stats()
	if s.Sent != 4 || s.Delivered != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BySender[0] != 3 || s.BySender[1] != 1 || s.BySender[2] != 0 {
		t.Fatalf("BySender = %v", s.BySender)
	}
	nt.ResetStats()
	if s := nt.Stats(); s.Sent != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestDropPolicy(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Drop{})
	delivered := false
	nt.Register(1, func(NodeID, any) { delivered = true })
	nt.Send(0, 1, "m")
	e.RunAll(0)
	if delivered {
		t.Fatal("Drop policy delivered a message")
	}
	if s := nt.Stats(); s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUniformPolicyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := Uniform{Min: 0.2, Max: 0.7}
	for i := 0; i < 1000; i++ {
		d := u.Delay(0, 1, 0, rng)
		if d < 0.2 || d > 0.7 {
			t.Fatalf("delay %v outside [0.2, 0.7]", d)
		}
	}
}

func TestUniformPolicyInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range did not panic")
		}
	}()
	Uniform{Min: 1, Max: 0}.Delay(0, 1, 0, rand.New(rand.NewSource(1)))
}

func TestFaultyAwareRouting(t *testing.T) {
	faulty := map[NodeID]bool{2: true}
	p := FaultyAware{
		Honest:   Fixed{D: 1.0},
		Faulty:   Fixed{D: 0.0},
		IsFaulty: func(id NodeID) bool { return faulty[id] },
	}
	rng := rand.New(rand.NewSource(1))
	if d := p.Delay(0, 1, 0, rng); d != 1.0 {
		t.Fatalf("honest link delay = %v", d)
	}
	if d := p.Delay(0, 2, 0, rng); d != 0.0 {
		t.Fatalf("to-faulty link delay = %v", d)
	}
	if d := p.Delay(2, 1, 0, rng); d != 0.0 {
		t.Fatalf("from-faulty link delay = %v", d)
	}
}

func TestSpreadPolicy(t *testing.T) {
	p := Spread{Min: 0.1, Max: 0.9, Slow: map[NodeID]bool{1: true}}
	rng := rand.New(rand.NewSource(1))
	if d := p.Delay(0, 1, 0, rng); d != 0.9 {
		t.Fatalf("slow target delay = %v", d)
	}
	if d := p.Delay(0, 2, 0, rng); d != 0.1 {
		t.Fatalf("fast target delay = %v", d)
	}
}

func TestPerLinkPolicy(t *testing.T) {
	p := PerLink{Fn: func(from, to NodeID, _ sim.Time, _ *rand.Rand) float64 {
		return float64(from*10 + to)
	}}
	if d := p.Delay(1, 2, 0, nil); d != 12 {
		t.Fatalf("delay = %v", d)
	}
}

func TestObserver(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{D: 0.25})
	nt.Register(1, func(NodeID, any) {})
	var seen int
	var lastDeliver sim.Time
	nt.SetObserver(func(from, to NodeID, msg any, sentAt, deliverAt sim.Time) {
		seen++
		lastDeliver = deliverAt
	})
	nt.Send(0, 1, "m")
	if seen != 1 || lastDeliver != 0.25 {
		t.Fatalf("observer saw %d sends, deliverAt=%v", seen, lastDeliver)
	}
	// Dropped messages are observed with deliverAt < 0.
	nt2 := New(e, 2, Drop{})
	var droppedAt sim.Time = 99
	nt2.SetObserver(func(_, _ NodeID, _ any, _, deliverAt sim.Time) { droppedAt = deliverAt })
	nt2.Send(0, 1, "m")
	if droppedAt >= 0 {
		t.Fatalf("dropped message observed with deliverAt=%v", droppedAt)
	}
}

func TestOutOfRangeIDsPanic(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{})
	for _, fn := range []func(){
		func() { nt.Send(-1, 0, "m") },
		func() { nt.Send(0, 7, "m") },
		func() { nt.Register(9, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range id did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: with a Uniform policy, messages between registered endpoints
// are always delivered within [Min, Max] of the send time, in order
// consistency with the engine (delivery time >= send time).
func TestDeliveryWithinBoundsProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		e := sim.New(seed)
		nt := New(e, 3, Uniform{Min: 0.1, Max: 0.4})
		type rec struct{ sent, got sim.Time }
		var recs []rec
		pendingSent := map[int]sim.Time{}
		seq := 0
		for i := 0; i < 3; i++ {
			nt.Register(i, func(_ NodeID, msg any) {
				id := msg.(int)
				recs = append(recs, rec{pendingSent[id], e.Now()})
			})
		}
		for _, r := range raw {
			from, to := int(r%3), int((r/3)%3)
			pendingSent[seq] = e.Now()
			nt.Send(from, to, seq)
			seq++
			e.Run(e.Now() + float64(r%7)/100)
		}
		e.RunAll(0)
		if len(recs) != len(raw) {
			return false
		}
		for _, r := range recs {
			d := r.got - r.sent
			if d < 0.1-1e-12 || d > 0.4+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
