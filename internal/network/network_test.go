package network

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"optsync/internal/probe"
	"optsync/internal/sim"
)

func TestSendDeliversAfterFixedDelay(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{D: 0.5}, nil)
	var gotFrom NodeID = -1
	var gotMsg Message
	var at sim.Time
	nt.Register(1, func(from NodeID, msg Message) {
		gotFrom, gotMsg, at = from, msg, e.Now()
	})
	nt.Send(0, 1, Raw("hello"))
	e.RunAll(0)
	if gotFrom != 0 || gotMsg.Payload != "hello" || at != 0.5 {
		t.Fatalf("delivery = (%v, %v, %v)", gotFrom, gotMsg, at)
	}
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 4, Fixed{D: 0.1}, nil)
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nt.Register(i, func(from NodeID, msg Message) { got[i]++ })
	}
	nt.Broadcast(2, Raw("m"))
	e.RunAll(0)
	for i, c := range got {
		if c != 1 {
			t.Fatalf("node %d received %d copies", i, c)
		}
	}
}

// A fixed-delay broadcast shares one delivery instant, so it must ride a
// single batched event rather than n heap entries.
func TestBroadcastBatchesSharedDeliveryTimes(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 8, Fixed{D: 0.1}, nil)
	order := make([]NodeID, 0, 8)
	for i := 0; i < 8; i++ {
		i := i
		nt.Register(i, func(NodeID, Message) { order = append(order, i) })
	}
	nt.Broadcast(3, Raw("m"))
	if got := e.Pending(); got != 1 {
		t.Fatalf("fixed-delay broadcast queued %d events, want 1 batch", got)
	}
	e.RunAll(0)
	for i, id := range order {
		if id != i {
			t.Fatalf("delivery order %v, want ascending ids", order)
		}
	}
	// Distinct delivery times (Spread: two buckets) stay distinct events.
	nt2 := New(e, 8, Spread{Min: 0.1, Max: 0.9, Slow: map[NodeID]bool{1: true, 5: true}}, nil)
	for i := 0; i < 8; i++ {
		nt2.Register(i, func(NodeID, Message) {})
	}
	nt2.Broadcast(0, Raw("m"))
	if got := e.Pending(); got != 2 {
		t.Fatalf("two-bucket broadcast queued %d events, want 2", got)
	}
	e.RunAll(0)
}

// A probe that injects traffic by calling Broadcast reentrantly from
// OnEvent must not corrupt the outer broadcast's delivery batches: with a
// fixed delay both calls share a delivery instant, and a shared scratch
// bucket map would merge the inner recipients into the outer batch
// (wrong sender, wrong payload).
func TestProbeReentrantBroadcast(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 3, Fixed{D: 0.1}, nil)
	type rec struct {
		to, from NodeID
		round    int
	}
	var got []rec
	for i := 0; i < 3; i++ {
		i := i
		nt.Register(i, func(from NodeID, msg Message) {
			got = append(got, rec{to: i, from: from, round: msg.Round})
		})
	}
	injected := false
	e.Probes().Attach(probe.Func(func(ev probe.Event) {
		if !injected && ev.Round == 1 {
			injected = true
			nt.Broadcast(2, Message{Round: 2}) // inject from another sender
		}
	}), probe.TypeMessageSent)
	nt.Broadcast(0, Message{Round: 1})
	e.RunAll(0)
	if len(got) != 6 {
		t.Fatalf("%d deliveries, want 6", len(got))
	}
	for _, r := range got {
		wantFrom := NodeID(0)
		if r.round == 2 {
			wantFrom = 2
		}
		if r.from != wantFrom {
			t.Fatalf("round %d delivered with sender %d, want %d (batch corruption)", r.round, r.from, wantFrom)
		}
	}
	// Each node got exactly one copy of each round.
	seen := map[rec]int{}
	for _, r := range got {
		seen[r]++
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("delivery %+v duplicated %d times", r, n)
		}
	}
}

// Both drop paths must hit their own counter and their own event type: a
// policy drop is charged to Dropped at send time (TypeMessageDropPolicy);
// an offline destination is charged to DroppedOffline at delivery time
// (a genuine TypeMessageSent preceded it — the old implementation folded
// this into Dropped, contradicting the trace).
func TestDropPathCounters(t *testing.T) {
	e := sim.New(1)

	// Path 1: policy drop at send time.
	nt := New(e, 2, Drop{}, nil)
	nt.Register(1, func(NodeID, Message) {})
	var events []probe.Type
	e.Probes().Attach(probe.Func(func(ev probe.Event) {
		events = append(events, ev.Type)
	}), probe.MessageTypes()...)
	nt.Send(0, 1, Raw("m"))
	e.RunAll(0)
	if s := nt.Stats(); s.Dropped != 1 || s.DroppedOffline != 0 || s.Delivered != 0 {
		t.Fatalf("policy drop stats = %+v", s)
	}
	if len(events) != 1 || events[0] != probe.TypeMessageDropPolicy {
		t.Fatalf("policy drop emitted %v, want [message_drop_policy]", events)
	}

	// Path 2: offline destination at delivery time. A fresh engine keeps
	// the event streams separate.
	e2 := sim.New(1)
	nt2 := New(e2, 2, Fixed{D: 0.1}, nil)
	events = nil
	e2.Probes().Attach(probe.Func(func(ev probe.Event) {
		events = append(events, ev.Type)
	}), probe.MessageTypes()...)
	nt2.Send(0, 1, Raw("m")) // no handler registered for 1
	e2.RunAll(0)
	if s := nt2.Stats(); s.Dropped != 0 || s.DroppedOffline != 1 || s.Delivered != 0 {
		t.Fatalf("offline drop stats = %+v", s)
	}
	want := []probe.Type{probe.TypeMessageSent, probe.TypeMessageDropOffline}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("offline drop emitted %v, want %v", events, want)
	}
}

func TestStatsCounting(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 3, Fixed{D: 0}, nil)
	for i := 0; i < 3; i++ {
		nt.Register(i, func(NodeID, Message) {})
	}
	nt.Broadcast(0, Raw("a"))
	nt.Send(1, 2, Raw("b"))
	e.RunAll(0)
	s := nt.Stats()
	if s.Sent != 4 || s.Delivered != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BySender[0] != 3 || s.BySender[1] != 1 || s.BySender[2] != 0 {
		t.Fatalf("BySender = %v", s.BySender)
	}
	nt.ResetStats()
	if s := nt.Stats(); s.Sent != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestDropPolicy(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Drop{}, nil)
	delivered := false
	nt.Register(1, func(NodeID, Message) { delivered = true })
	nt.Send(0, 1, Raw("m"))
	e.RunAll(0)
	if delivered {
		t.Fatal("Drop policy delivered a message")
	}
	if s := nt.Stats(); s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUniformPolicyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := Uniform{Min: 0.2, Max: 0.7}
	for i := 0; i < 1000; i++ {
		d := u.Delay(0, 1, 0, rng)
		if d < 0.2 || d > 0.7 {
			t.Fatalf("delay %v outside [0.2, 0.7]", d)
		}
	}
}

func TestUniformPolicyInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range did not panic")
		}
	}()
	Uniform{Min: 1, Max: 0}.Delay(0, 1, 0, rand.New(rand.NewSource(1)))
}

func TestFaultyAwareRouting(t *testing.T) {
	faulty := map[NodeID]bool{2: true}
	p := FaultyAware{
		Honest:   Fixed{D: 1.0},
		Faulty:   Fixed{D: 0.0},
		IsFaulty: func(id NodeID) bool { return faulty[id] },
	}
	rng := rand.New(rand.NewSource(1))
	if d := p.Delay(0, 1, 0, rng); d != 1.0 {
		t.Fatalf("honest link delay = %v", d)
	}
	if d := p.Delay(0, 2, 0, rng); d != 0.0 {
		t.Fatalf("to-faulty link delay = %v", d)
	}
	if d := p.Delay(2, 1, 0, rng); d != 0.0 {
		t.Fatalf("from-faulty link delay = %v", d)
	}
}

func TestSpreadPolicy(t *testing.T) {
	p := Spread{Min: 0.1, Max: 0.9, Slow: map[NodeID]bool{1: true}}
	rng := rand.New(rand.NewSource(1))
	if d := p.Delay(0, 1, 0, rng); d != 0.9 {
		t.Fatalf("slow target delay = %v", d)
	}
	if d := p.Delay(0, 2, 0, rng); d != 0.1 {
		t.Fatalf("fast target delay = %v", d)
	}
}

func TestPerLinkPolicy(t *testing.T) {
	p := PerLink{Fn: func(from, to NodeID, _ sim.Time, _ *rand.Rand) float64 {
		return float64(from*10 + to)
	}}
	if d := p.Delay(1, 2, 0, nil); d != 12 {
		t.Fatalf("delay = %v", d)
	}
}

// TestProbeMessageEvents pins the per-message event payloads: a send
// carries its delivery instant in Value, a delivery carries the envelope
// scalars, and the whole stream rides the engine bus.
func TestProbeMessageEvents(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{D: 0.25}, nil)
	nt.Register(1, func(NodeID, Message) {})
	k := NewKind("test/probe-events")
	var got []probe.Event
	e.Probes().Attach(probe.Func(func(ev probe.Event) {
		got = append(got, ev)
	}), probe.TypeMessageSent, probe.TypeMessageDelivered)
	nt.Send(0, 1, Message{Kind: k, Round: 9})
	e.RunAll(0)
	if len(got) != 2 {
		t.Fatalf("saw %d events, want sent+delivered", len(got))
	}
	sent, del := got[0], got[1]
	if sent.Type != probe.TypeMessageSent || sent.From != 0 || sent.To != 1 ||
		sent.Kind != uint16(k) || sent.Round != 9 || sent.T != 0 || sent.Value != 0.25 {
		t.Fatalf("sent event = %+v", sent)
	}
	if del.Type != probe.TypeMessageDelivered || del.T != 0.25 || del.Kind != uint16(k) {
		t.Fatalf("delivered event = %+v", del)
	}
	if nt.Probes() != e.Probes() {
		t.Fatal("Net.Probes must expose the engine bus")
	}
}

func TestOutOfRangeIDsPanic(t *testing.T) {
	e := sim.New(1)
	nt := New(e, 2, Fixed{}, nil)
	for _, fn := range []func(){
		func() { nt.Send(-1, 0, Raw("m")) },
		func() { nt.Send(0, 7, Raw("m")) },
		func() { nt.Register(9, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range id did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestKindRegistry(t *testing.T) {
	k := NewKind("test/ping")
	if k == KindRaw {
		t.Fatal("NewKind returned the raw kind")
	}
	if k.String() != "test/ping" {
		t.Fatalf("kind name = %q", k.String())
	}
	if KindRaw.String() != "raw" {
		t.Fatalf("raw kind name = %q", KindRaw.String())
	}
}

// --- Topology ---

func TestWANRegionsLinking(t *testing.T) {
	// 12 nodes, 4 regions of 3: regions 0-1-2-3 on a ring.
	w := NewWANRegions(12, 4, 0.02)
	if r := w.Region(0); r != 0 {
		t.Fatalf("region(0) = %d", r)
	}
	if r := w.Region(11); r != 3 {
		t.Fatalf("region(11) = %d", r)
	}
	if !w.Linked(0, 2, 0) { // same region
		t.Fatal("intra-region link missing")
	}
	if !w.Linked(0, 3, 0) { // regions 0 and 1 are adjacent
		t.Fatal("adjacent-region link missing")
	}
	if !w.Linked(0, 11, 0) { // regions 0 and 3 wrap around the ring
		t.Fatal("ring wrap-around link missing")
	}
	if w.Linked(0, 6, 0) { // regions 0 and 2 are opposite
		t.Fatal("non-adjacent regions must not be linked")
	}
	// Inter-region delay pays the hop envelope, intra-region does not.
	rng := rand.New(rand.NewSource(1))
	if d := w.Shape(0, 1, 0, 0.01, rng); d != 0.01 {
		t.Fatalf("intra-region shape = %v", d)
	}
	for i := 0; i < 100; i++ {
		d := w.Shape(0, 3, 0, 0.01, rng)
		if d < 0.01+w.HopDelay || d > 0.01+w.HopDelay+w.HopJitter {
			t.Fatalf("inter-region shape %v outside hop envelope", d)
		}
	}
}

func TestCirculantDegrees(t *testing.T) {
	g := NewCirculant(10, 4)
	for i := 0; i < 10; i++ {
		if d := g.Degree(i); d != 4 {
			t.Fatalf("node %d degree = %d, want 4", i, d)
		}
	}
	if !g.Linked(0, 2, 0) || g.Linked(0, 3, 0) {
		t.Fatal("circulant adjacency wrong")
	}
	if !g.Linked(0, 0, 0) {
		t.Fatal("self-link must always exist")
	}
	if !g.Linked(0, 9, 0) { // wrap-around
		t.Fatal("circulant wrap-around missing")
	}
}

func TestSparseTopologyGatesTraffic(t *testing.T) {
	e := sim.New(1)
	g := NewSparseGraph(3, [][2]NodeID{{0, 1}}) // 2 is isolated
	nt := New(e, 3, Fixed{D: 0.1}, g)
	got := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		nt.Register(i, func(NodeID, Message) { got[i]++ })
	}
	nt.Broadcast(0, Raw("m"))
	e.RunAll(0)
	if got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("deliveries = %v", got)
	}
	s := nt.Stats()
	if s.Sent != 2 || s.DroppedLink != 1 {
		t.Fatalf("stats = %+v (unlinked sends must not count as Sent)", s)
	}
}

func TestPartitionWindowCutsAndHeals(t *testing.T) {
	e := sim.New(1)
	topo := NewSplit(FullMesh{}, 4, 2, 1.0, 2.0) // {0,1} | {2,3} during [1,2)
	nt := New(e, 4, Fixed{D: 0.01}, topo)
	var delivered int
	for i := 0; i < 4; i++ {
		nt.Register(i, func(NodeID, Message) { delivered++ })
	}

	send := func() { nt.Send(0, 3, Raw("x")); nt.Send(0, 1, Raw("y")) }
	send() // before the cut: both pass
	e.Run(1.5)
	send() // during the cut: cross-cut send suppressed
	e.Run(2.5)
	send() // after heal: both pass
	e.RunAll(0)

	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5", delivered)
	}
	if s := nt.Stats(); s.DroppedLink != 1 || s.Sent != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPartitionNeverHeals(t *testing.T) {
	topo := NewSplit(FullMesh{}, 4, 2, 1.0, 0) // Heal <= At: permanent
	if topo.Linked(0, 3, 0.5) == false {
		t.Fatal("cut active before At")
	}
	if topo.Linked(0, 3, 100) {
		t.Fatal("permanent cut healed")
	}
	if !topo.Linked(0, 1, 100) {
		t.Fatal("same-side link cut")
	}
}

// Registering endpoints (and acquiring their per-node random streams) in
// a different order must leave the simulation byte-identical: node
// randomness comes from Engine.RandFor, which derives each stream from
// (seed, id) alone instead of from global draw order. Boot instants here
// are drawn from the per-node streams, so they — and every delivery that
// follows — would scramble under reordering if RandFor leaked call-order
// dependence.
func TestRegistrationOrderInvariance(t *testing.T) {
	run := func(order []int) []string {
		e := sim.New(7)
		nt := New(e, 4, Uniform{Min: 0.002, Max: 0.01}, nil)
		var trace []string
		for _, id := range order {
			id := id
			rng := e.RandFor(id)
			boot := 0.01 + rng.Float64()*0.1
			nt.Register(id, func(from NodeID, msg Message) {
				trace = append(trace, fmt.Sprintf("%d<-%d r%d @%.12f", id, from, msg.Round, e.Now()))
			})
			e.MustAt(boot, func() { nt.Broadcast(id, Message{Round: id}) })
		}
		e.RunAll(0)
		return trace
	}
	want := run([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 1, 0, 2}, {2, 3, 1, 0}, {1, 0, 3, 2}} {
		got := run(order)
		if len(got) != len(want) {
			t.Fatalf("order %v: %d deliveries, want %d", order, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v diverged at %d:\n got  %s\n want %s", order, i, got[i], want[i])
			}
		}
	}
}

// Property: with a Uniform policy, messages between registered endpoints
// are always delivered within [Min, Max] of the send time, in order
// consistency with the engine (delivery time >= send time).
func TestDeliveryWithinBoundsProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		e := sim.New(seed)
		nt := New(e, 3, Uniform{Min: 0.1, Max: 0.4}, nil)
		type rec struct{ sent, got sim.Time }
		var recs []rec
		pendingSent := map[int]sim.Time{}
		seq := 0
		for i := 0; i < 3; i++ {
			nt.Register(i, func(_ NodeID, msg Message) {
				recs = append(recs, rec{pendingSent[msg.Round], e.Now()})
			})
		}
		for _, r := range raw {
			from, to := int(r%3), int((r/3)%3)
			pendingSent[seq] = e.Now()
			nt.Send(from, to, Message{Round: seq})
			seq++
			e.Run(e.Now() + float64(r%7)/100)
		}
		e.RunAll(0)
		if len(recs) != len(raw) {
			return false
		}
		for _, r := range recs {
			d := r.got - r.sent
			if d < 0.1-1e-12 || d > 0.4+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
