// Package network simulates the message-passing network of the model:
// processes are joined by reliable, authenticated channels whose delay is
// chosen by the adversary within [dmin, dmax].
//
// Delays are produced by pluggable policies; adversarial policies may treat
// links with a faulty endpoint specially (e.g. deliver instantly to
// co-conspirators) and may drop messages on such links — the model maps
// link failures to node failures, so links between two correct processes
// are always reliable and within bounds, which the Net enforces.
//
// Connectivity is produced by a pluggable Topology (full mesh by default;
// WAN regions, sparse graphs, and scheduled partition churn are built in —
// see topology.go). The message path is allocation-light: envelopes are
// typed values (Message), deliveries ride value-inline sim message events
// instead of per-send closures, and Broadcast schedules one batched event
// per distinct delivery time rather than n independent queue entries
// (recipients are grouped through a sorted scratch array, not a hash map,
// so the per-broadcast cost is a contiguous sort instead of n map probes).
//
// Observation goes through the engine's probe bus: every send, delivery,
// and drop emits a typed probe.Event. The Bus.Active guards are hoisted
// out of the per-recipient loops, so an uninstrumented run pays one
// predictable branch per message on a cached local and an instrumented
// one stays allocation-free.
package network

import (
	"fmt"
	"math/rand"
	"slices"

	"optsync/internal/probe"
	"optsync/internal/sim"
)

// NodeID identifies a process (0..n-1).
type NodeID = int

// Handler receives a delivered message.
type Handler func(from NodeID, msg Message)

// Policy decides the delay of each message. Implementations must be
// deterministic given rng.
type Policy interface {
	// Delay returns the delivery delay in seconds for a message sent at
	// virtual time now. A negative return drops the message.
	Delay(from, to NodeID, now sim.Time, rng *rand.Rand) float64
}

// Stats aggregates traffic counters. The three drop counters are
// disjoint: Dropped is charged by the delay policy at send time,
// DroppedLink at send time when the topology provides no usable link
// (such transmissions are not counted in Sent — nothing was put on a
// wire), and DroppedOffline at delivery time when the destination has no
// registered handler. Sent therefore equals Delivered + Dropped +
// DroppedOffline + in-flight.
type Stats struct {
	Sent      uint64
	Delivered uint64
	// Dropped counts messages the delay policy refused at send time.
	Dropped uint64
	// DroppedOffline counts messages that reached their delivery instant
	// with no handler registered (destination offline). Probes saw a
	// TypeMessageSent with a positive delivery instant for these — the
	// send was genuine; the loss happened at the far end.
	DroppedOffline uint64
	// DroppedLink counts transmissions suppressed because the topology
	// had no usable from->to link (absent edge or active partition).
	DroppedLink uint64
	// BySender counts messages sent per node.
	BySender []uint64
}

// delivery is one scheduled transmission batch: the envelope plus every
// recipient sharing its delivery instant. Slots live in an arena indexed
// by sim.Message.Index and are recycled through a free list, so the
// steady-state send path performs no allocation.
type delivery struct {
	from    NodeID
	msg     Message
	targets []NodeID
}

// sendRec is one accepted transmission of a broadcast, before grouping:
// a plain 16-byte value sorted by (delivery instant, recipient).
type sendRec struct {
	at sim.Time
	to int32
}

// arenaTrimCap is the arena size (in delivery slots) above which a fully
// idle arena is released when the burst that just drained used less than
// a quarter of it: long runs and campaign batches do not retain one
// worst-case round's batch memory forever.
const arenaTrimCap = 4096

// msgInline marks a sim.Message whose scalar fields carry the whole
// envelope: Kind/Round/Value inline, no arena slot, exactly one
// recipient (To). Scalar-only envelopes — nil Payload, zero Src, Round
// within int32 — take this path, which is the entire traffic of the
// O(n^2) pulse rounds: delivery reads one self-contained 32-byte value
// instead of chasing an arena slot and its targets array.
const msgInline uint16 = 1

// inlinable reports whether msg can ride a sim event inline.
func inlinable(msg Message) bool {
	return msg.Payload == nil && msg.Src == 0 &&
		int64(msg.Round) == int64(int32(msg.Round))
}

// Net is the simulated network.
type Net struct {
	engine   *sim.Engine
	n        int
	policy   Policy
	topo     Topology
	shaper   DelayShaper    // non-nil iff topo shapes delays
	lister   NeighborLister // non-nil iff topo enumerates neighbours
	mesh     bool           // topo is the full mesh: skip per-recipient Linked calls
	handlers []Handler
	stats    Stats
	probes   *probe.Bus // the engine's bus, cached to skip a pointer hop

	// delayRng holds one delay stream per sender, derived from the engine
	// seed and the sender id alone (see linkDelay). Streams are created
	// lazily on first transmit.
	delayRng []*rand.Rand

	target    int // sim dispatch target id
	arena     []delivery
	freeSlots []uint32
	inUse     int // arena slots currently holding scheduled batches
	peakInUse int // max inUse since the arena was last fully idle
	scratch   []sendRec
	nbrBuf    []NodeID // reused AppendNeighbors buffer

	// Sharded-execution context, zero in a serial run. Each shard of a
	// parallel simulation owns one Net over its own shard engine; owner
	// maps every node id to its shard, and sends to a node owned
	// elsewhere are buffered into outbox[dstShard] (the sender's engine
	// assigns the event key, so ordering is exactly the local order) and
	// exchanged at the window barrier — see NewSharded.
	shard  int32
	owner  []int32
	outbox [][]outMsg
}

// outMsg is one cross-shard transmission parked in a mailbox until the
// window barrier: the sender-assigned event key plus the sim envelope.
// Non-inline messages carry the full payload; the destination shard
// re-interns it into its own arena at exchange time.
type outMsg struct {
	key        sim.Key
	sm         sim.Message
	payload    Message
	hasPayload bool
}

// New creates a network of n endpoints over the engine with the given
// delay policy and topology. A nil topology selects the full mesh (the
// model's default); results under FullMesh are byte-identical to the
// pre-topology network.
func New(engine *sim.Engine, n int, policy Policy, topo Topology) *Net {
	if policy == nil {
		panic("network: nil policy")
	}
	if topo == nil {
		topo = FullMesh{}
	}
	nt := &Net{
		engine:   engine,
		n:        n,
		policy:   policy,
		topo:     topo,
		handlers: make([]Handler, n),
		stats:    Stats{BySender: make([]uint64, n)},
		probes:   engine.Probes(),
	}
	if s, ok := topo.(DelayShaper); ok {
		nt.shaper = s
	}
	if l, ok := topo.(NeighborLister); ok {
		nt.lister = l
	}
	_, nt.mesh = topo.(FullMesh)
	nt.target = engine.RegisterDispatcher(nt)
	return nt
}

// NewSharded creates the k per-shard networks of a parallel simulation:
// one Net per shard engine, sharing one policy and topology, with owner
// mapping each node id to the shard that simulates it. Handlers must be
// registered on the owning shard's Net. The mailbox exchange is
// registered as a coordinator barrier hook, so cross-shard deliveries
// scheduled during a window reach their owner before the next window
// opens — the dmin lookahead guarantees they are never late.
func NewSharded(coord *sim.Shards, n int, policy Policy, topo Topology, owner []int32) []*Net {
	if len(owner) != n {
		panic(fmt.Sprintf("network: owner map covers %d of %d nodes", len(owner), n))
	}
	k := coord.K()
	nets := make([]*Net, k)
	for i := range nets {
		nt := New(coord.Shard(i), n, policy, topo)
		nt.shard = int32(i)
		nt.owner = owner
		nt.outbox = make([][]outMsg, k)
		nets[i] = nt
	}
	coord.OnBarrier(func() { exchange(nets) })
	return nets
}

// exchange drains every cross-shard mailbox at a window barrier. It runs
// single-threaded on the coordinator goroutine; iteration order is fixed
// (src-major) for reproducibility, though event order is fully determined
// by the sender-assigned keys regardless.
func exchange(nets []*Net) {
	for _, src := range nets {
		for dst, box := range src.outbox {
			if len(box) == 0 {
				continue
			}
			dn := nets[dst]
			for i := range box {
				om := &box[i]
				sm := om.sm
				if om.hasPayload {
					idx := dn.alloc(NodeID(sm.From), om.payload)
					dn.arena[idx].targets = append(dn.arena[idx].targets, NodeID(sm.To))
					sm.Index = idx
				}
				dn.engine.ScheduleMsg(om.key, dn.target, sm)
				*om = outMsg{} // release the payload reference
			}
			src.outbox[dst] = box[:0]
		}
	}
}

// MergeStats sums per-shard traffic counters into the totals a serial run
// would report. Sends are counted on the sender's shard and deliveries on
// the recipient's, so the disjoint-counter invariant documented on Stats
// survives the merge unchanged.
func MergeStats(nets []*Net) Stats {
	if len(nets) == 1 {
		return nets[0].Stats()
	}
	out := Stats{BySender: make([]uint64, nets[0].n)}
	for _, nt := range nets {
		out.Sent += nt.stats.Sent
		out.Delivered += nt.stats.Delivered
		out.Dropped += nt.stats.Dropped
		out.DroppedOffline += nt.stats.DroppedOffline
		out.DroppedLink += nt.stats.DroppedLink
		for i, c := range nt.stats.BySender {
			out.BySender[i] += c
		}
	}
	return out
}

// N returns the number of endpoints.
func (nt *Net) N() int { return nt.n }

// Topology returns the connectivity in force.
func (nt *Net) Topology() Topology { return nt.topo }

// Register installs the delivery handler for id. It must be called before
// any message addressed to id is delivered; re-registering replaces the
// handler (used when a node rejoins).
func (nt *Net) Register(id NodeID, h Handler) {
	nt.checkID(id)
	nt.handlers[id] = h
}

// Probes returns the observation bus messages are reported on (the
// engine's). Traffic probes subscribe to probe.MessageTypes().
func (nt *Net) Probes() *probe.Bus { return nt.probes }

// Stats returns a copy of the traffic counters.
func (nt *Net) Stats() Stats {
	s := nt.stats
	s.BySender = append([]uint64(nil), nt.stats.BySender...)
	return s
}

// ResetStats zeroes the traffic counters (used by per-phase measurements).
func (nt *Net) ResetStats() {
	nt.stats = Stats{BySender: make([]uint64, nt.n)}
}

// delaySalt derives the per-sender delay streams from the engine seed
// (see sim.StreamSeed); any fixed value distinct from other salts works.
const delaySalt = 0x6e65742d646c79 // "net-dly"

// senderRand returns the delay stream of one sender: a deterministic
// random source derived from (engine seed, sender id) alone. Draw order
// within a stream is the sender's own transmit order, which is identical
// in serial and sharded runs — unlike the engine's shared stream, whose
// draw order depends on global interleaving that shards cannot reproduce.
func (nt *Net) senderRand(from NodeID) *rand.Rand {
	if nt.delayRng == nil {
		nt.delayRng = make([]*rand.Rand, nt.n)
	}
	r := nt.delayRng[from]
	if r == nil {
		r = rand.New(rand.NewSource(sim.StreamSeed(nt.engine.Seed(), from, delaySalt)))
		nt.delayRng[from] = r
	}
	return r
}

// linkDelay runs the policy plus the topology's delay shaping for one
// usable link, drawing randomness from the sender's delay stream.
// Negative means dropped.
func (nt *Net) linkDelay(from, to NodeID, now sim.Time) float64 {
	rng := nt.senderRand(from)
	d := nt.policy.Delay(from, to, now, rng)
	if d >= 0 && nt.shaper != nil {
		d = nt.shaper.Shape(from, to, now, d, rng)
	}
	return d
}

// transmit runs the per-link send sequence shared by Send and Broadcast:
// topology gating, traffic accounting, delay resolution, and probe
// emission. It returns the delivery instant, or ok=false when the
// message was dropped at send time (already counted).
//
//syncsim:hotpath
func (nt *Net) transmit(from, to NodeID, now sim.Time, msg Message) (deliverAt sim.Time, ok bool) {
	if !nt.mesh && !nt.topo.Linked(from, to, now) {
		nt.stats.DroppedLink++
		if nt.probes.Active(probe.TypeMessageDropLink) {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropLink, from, to, now, -1, msg))
		}
		return 0, false
	}
	nt.stats.Sent++
	nt.stats.BySender[from]++
	d := nt.linkDelay(from, to, now)
	if d < 0 {
		nt.stats.Dropped++
		if nt.probes.Active(probe.TypeMessageDropPolicy) {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropPolicy, from, to, now, -1, msg))
		}
		return 0, false
	}
	deliverAt = now + d
	if nt.probes.Active(probe.TypeMessageSent) {
		nt.probes.Emit(nt.msgEvent(probe.TypeMessageSent, from, to, now, deliverAt, msg))
	}
	return deliverAt, true
}

// msgEvent builds the probe event for one per-message moment.
//
//syncsim:hotpath
func (nt *Net) msgEvent(t probe.Type, from, to NodeID, at sim.Time, deliverAt float64, msg Message) probe.Event {
	return probe.Event{
		Type: t,
		Kind: uint16(msg.Kind),
		From: int32(from), To: int32(to),
		Round: int32(msg.Round),
		T:     at,
		Value: deliverAt,
	}
}

// alloc takes an arena slot for a new delivery batch, reusing a recycled
// slot (and its targets backing array) when one is free.
func (nt *Net) alloc(from NodeID, msg Message) uint32 {
	nt.inUse++
	if nt.inUse > nt.peakInUse {
		nt.peakInUse = nt.inUse
	}
	if k := len(nt.freeSlots); k > 0 {
		idx := nt.freeSlots[k-1]
		nt.freeSlots = nt.freeSlots[:k-1]
		d := &nt.arena[idx]
		d.from, d.msg = from, msg
		return idx
	}
	nt.arena = append(nt.arena, delivery{from: from, msg: msg})
	return uint32(len(nt.arena) - 1)
}

// release recycles an arena slot after its batch delivered, and — when
// the arena goes fully idle far below its high-water mark — drops the
// arena entirely so one oversized burst does not pin memory for the rest
// of the run.
func (nt *Net) release(idx uint32, targets []NodeID) {
	d := &nt.arena[idx]
	d.msg = Message{}
	d.targets = targets[:0]
	nt.inUse--
	if nt.inUse == 0 {
		if len(nt.arena) > arenaTrimCap && nt.peakInUse*4 < len(nt.arena) {
			nt.arena = nil
			nt.freeSlots = nil
		} else {
			nt.freeSlots = append(nt.freeSlots, idx)
		}
		nt.peakInUse = 0
		return
	}
	nt.freeSlots = append(nt.freeSlots, idx)
}

// Dispatch implements sim.Dispatcher: deliver one inline message or one
// arena batch. Before each handler runs, the engine's execution lane is
// rebound to the recipient: everything the handler schedules — relays,
// timers — then carries the recipient's lane in its event key, which is
// what lets a sharded run (where the recipient's shard does the
// scheduling) assign the exact keys a serial run assigns.
//
//syncsim:hotpath
func (nt *Net) Dispatch(now sim.Time, m sim.Message) {
	if m.Flags&msgInline != 0 {
		from, to := NodeID(m.From), NodeID(m.To)
		msg := Message{Kind: Kind(m.Kind), Round: int(m.Round), Value: m.Value}
		h := nt.handlers[to]
		if h == nil {
			nt.stats.DroppedOffline++
			if nt.probes.Active(probe.TypeMessageDropOffline) {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropOffline, from, to, now, now, msg))
			}
			return
		}
		nt.stats.Delivered++
		if nt.probes.Active(probe.TypeMessageDelivered) {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDelivered, from, to, now, now, msg))
		}
		nt.engine.SetExecLane(int32(to))
		h(from, msg)
		return
	}
	// Copy the batch out of the arena first: handlers may send, and a
	// reentrant send can grow the arena, invalidating the slot pointer.
	d := &nt.arena[m.Index]
	from, msg, targets := d.from, d.msg, d.targets
	// Hoist the probe guards and counters out of the per-delivery loop:
	// the common unobserved run pays two local bool tests per batch.
	deliveredActive := nt.probes.Active(probe.TypeMessageDelivered)
	offlineActive := nt.probes.Active(probe.TypeMessageDropOffline)
	var delivered, offline uint64
	for _, to := range targets {
		h := nt.handlers[to]
		if h == nil {
			offline++
			if offlineActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropOffline, from, to, now, now, msg))
			}
			continue
		}
		delivered++
		if deliveredActive {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDelivered, from, to, now, now, msg))
		}
		nt.engine.SetExecLane(int32(to))
		h(from, msg)
	}
	nt.stats.Delivered += delivered
	nt.stats.DroppedOffline += offline
	nt.release(m.Index, targets)
}

// Send transmits msg from -> to. Delivery is scheduled according to the
// policy; a handler that is nil at delivery time drops the message at the
// far end (the destination is offline; see Stats.DroppedOffline). A send
// over a link the topology does not currently provide is suppressed
// entirely (Stats.DroppedLink).
func (nt *Net) Send(from, to NodeID, msg Message) {
	nt.checkID(from)
	nt.checkID(to)
	deliverAt, ok := nt.transmit(from, to, nt.engine.Now(), msg)
	if !ok {
		return
	}
	if nt.owner != nil && nt.owner[to] != nt.shard {
		nt.sendRemote(from, to, deliverAt, msg)
		return
	}
	if inlinable(msg) {
		nt.engine.MustAtMsg(deliverAt, nt.target, sim.Message{
			From: int32(from), To: int32(to), Kind: uint16(msg.Kind),
			Flags: msgInline, Round: int32(msg.Round), Value: msg.Value,
		})
		return
	}
	idx := nt.alloc(from, msg)
	nt.arena[idx].targets = append(nt.arena[idx].targets, to)
	nt.engine.MustAtMsg(deliverAt, nt.target, sim.Message{
		From: int32(from), To: int32(to), Index: idx,
	})
}

// sendRemote parks one accepted transmission to a node owned by another
// shard in that shard's mailbox. The event key is taken from the sender's
// engine — consuming the sender lane's next sequence number exactly as a
// local schedule would — so the merged event order is independent of
// where the recipient lives.
func (nt *Net) sendRemote(from, to NodeID, deliverAt sim.Time, msg Message) {
	k := nt.engine.TakeKey(deliverAt)
	box := &nt.outbox[nt.owner[to]]
	if inlinable(msg) {
		*box = append(*box, outMsg{key: k, sm: sim.Message{
			From: int32(from), To: int32(to), Kind: uint16(msg.Kind),
			Flags: msgInline, Round: int32(msg.Round), Value: msg.Value,
		}})
		return
	}
	*box = append(*box, outMsg{
		key:        k,
		sm:         sim.Message{From: int32(from), To: int32(to)},
		payload:    msg,
		hasPayload: true,
	})
}

// Broadcast sends msg from -> every endpoint the topology links to the
// sender, including the sender itself ("sends to all" in the paper
// includes the sender; self-delivery obeys the same delay bounds, which is
// the conservative reading). Recipients sharing a delivery instant ride a
// single batched event, so a fixed-delay broadcast costs one queue entry
// instead of n. Grouping runs over a sorted scratch array of (instant,
// recipient) values; batches are scheduled in ascending delivery order,
// which yields the exact delivery sequence of per-recipient scheduling
// (recipient order breaks ties within an instant, broadcast order across
// calls) without a hash map on the hot path.
func (nt *Net) Broadcast(from NodeID, msg Message) {
	nt.checkID(from)
	now := nt.engine.Now()
	if inlinable(msg) {
		nt.broadcastInline(from, msg, now)
		return
	}
	if nt.owner != nil {
		nt.broadcastPayloadSharded(from, msg, now)
		return
	}
	// Take exclusive ownership of the scratch array for the duration of
	// this call: a probe may reenter Broadcast from OnEvent, and a shared
	// scratch would let the inner call corrupt the outer call's batches.
	// A reentrant call finds nil and allocates its own (the steady-state,
	// non-reentrant path reuses one array forever).
	scratch := nt.scratch
	if scratch == nil {
		scratch = make([]sendRec, 0, nt.n)
	}
	nt.scratch = nil
	scratch = scratch[:0]
	// Per-recipient transmit sequence with the topology fast path and
	// probe guards hoisted out of the loop. Event emission (and the rng
	// draw order) is identical to calling transmit per recipient.
	mesh := nt.mesh
	linkActive := nt.probes.Active(probe.TypeMessageDropLink)
	policyActive := nt.probes.Active(probe.TypeMessageDropPolicy)
	sentActive := nt.probes.Active(probe.TypeMessageSent)
	sent, droppedLink, droppedPolicy := uint64(0), uint64(0), uint64(0)
	// Same sparse fast path as broadcastInline: enumerate neighbours
	// instead of probing all n links when the topology can list them and
	// no drop-link probe needs the per-absent-link scan.
	nbrs, count := nt.neighborList(from, linkActive)
	for i := 0; i < count; i++ {
		to := i
		if nbrs != nil {
			to = nbrs[i]
		} else if !mesh && !nt.topo.Linked(from, to, now) {
			droppedLink++
			if linkActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropLink, from, to, now, -1, msg))
			}
			continue
		}
		sent++
		d := nt.linkDelay(from, to, now)
		if d < 0 {
			droppedPolicy++
			if policyActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropPolicy, from, to, now, -1, msg))
			}
			continue
		}
		deliverAt := now + d
		if sentActive {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageSent, from, to, now, deliverAt, msg))
		}
		scratch = append(scratch, sendRec{at: deliverAt, to: int32(to)})
	}
	if nbrs != nil {
		droppedLink += uint64(nt.n - len(nbrs))
		nt.nbrBuf = nbrs[:0]
	}
	nt.stats.Sent += sent
	nt.stats.BySender[from] += sent
	nt.stats.DroppedLink += droppedLink
	nt.stats.Dropped += droppedPolicy
	// Group recipients into one batch per distinct delivery instant.
	// (at, to) pairs are unique, so the sort needs no stability.
	slices.SortFunc(scratch, func(a, b sendRec) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return int(a.to) - int(b.to)
	})
	for i := 0; i < len(scratch); {
		j := i + 1
		for j < len(scratch) && scratch[j].at == scratch[i].at {
			j++
		}
		idx := nt.alloc(from, msg)
		d := &nt.arena[idx]
		for k := i; k < j; k++ {
			d.targets = append(d.targets, NodeID(scratch[k].to))
		}
		nt.engine.MustAtMsg(scratch[i].at, nt.target, sim.Message{
			From: int32(from), To: -1, Index: idx,
		})
		i = j
	}
	nt.scratch = scratch[:0]
}

// broadcastPayloadSharded is the payload Broadcast of a sharded run:
// recipients may live on different shards, so instead of grouping by
// delivery instant it schedules one single-target batch per local
// recipient and parks remote ones in the mailboxes. The transmit loop —
// link gating, stats, rng draws, probe emissions — is identical to the
// serial path, and so is the observable delivery order: per-recipient
// events carry ascending sender-lane sequence numbers in recipient
// order, the same (instant, broadcast, recipient) order the serial
// batch path sorts into.
func (nt *Net) broadcastPayloadSharded(from NodeID, msg Message, now sim.Time) {
	mesh := nt.mesh
	linkActive := nt.probes.Active(probe.TypeMessageDropLink)
	policyActive := nt.probes.Active(probe.TypeMessageDropPolicy)
	sentActive := nt.probes.Active(probe.TypeMessageSent)
	sent, droppedLink, droppedPolicy := uint64(0), uint64(0), uint64(0)
	nbrs, count := nt.neighborList(from, linkActive)
	for i := 0; i < count; i++ {
		to := i
		if nbrs != nil {
			to = nbrs[i]
		} else if !mesh && !nt.topo.Linked(from, to, now) {
			droppedLink++
			if linkActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropLink, from, to, now, -1, msg))
			}
			continue
		}
		sent++
		d := nt.linkDelay(from, to, now)
		if d < 0 {
			droppedPolicy++
			if policyActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropPolicy, from, to, now, -1, msg))
			}
			continue
		}
		deliverAt := now + d
		if sentActive {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageSent, from, to, now, deliverAt, msg))
		}
		if nt.owner[to] != nt.shard {
			nt.sendRemote(from, to, deliverAt, msg)
			continue
		}
		idx := nt.alloc(from, msg)
		nt.arena[idx].targets = append(nt.arena[idx].targets, to)
		nt.engine.MustAtMsg(deliverAt, nt.target, sim.Message{
			From: int32(from), To: int32(to), Index: idx,
		})
	}
	if nbrs != nil {
		droppedLink += uint64(nt.n - len(nbrs))
		nt.nbrBuf = nbrs[:0]
	}
	nt.stats.Sent += sent
	nt.stats.BySender[from] += sent
	nt.stats.DroppedLink += droppedLink
	nt.stats.Dropped += droppedPolicy
}

// broadcastInline is Broadcast for scalar-only envelopes: every accepted
// recipient gets one self-contained inline event, so the fan-out needs no
// scratch array, no sort, and no arena slot — and delivery needs no
// arena load. Per-recipient event order equals the batched order exactly:
// the global (time, seq) order delivers by (instant, broadcast call,
// recipient id), the same key the batch path sorts by.
func (nt *Net) broadcastInline(from NodeID, msg Message, now sim.Time) {
	mesh := nt.mesh
	linkActive := nt.probes.Active(probe.TypeMessageDropLink)
	policyActive := nt.probes.Active(probe.TypeMessageDropPolicy)
	sentActive := nt.probes.Active(probe.TypeMessageSent)
	proto := sim.Message{
		From: int32(from), Kind: uint16(msg.Kind),
		Flags: msgInline, Round: int32(msg.Round), Value: msg.Value,
	}
	sharded := nt.owner != nil
	sent, droppedLink, droppedPolicy := uint64(0), uint64(0), uint64(0)
	nbrs, count := nt.neighborList(from, linkActive)
	if nbrs != nil {
		droppedLink += uint64(nt.n - len(nbrs))
	}
	for i := 0; i < count; i++ {
		to := i
		if nbrs != nil {
			to = nbrs[i]
		} else if !mesh && !nt.topo.Linked(from, to, now) {
			droppedLink++
			if linkActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropLink, from, to, now, -1, msg))
			}
			continue
		}
		sent++
		d := nt.linkDelay(from, to, now)
		if d < 0 {
			droppedPolicy++
			if policyActive {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropPolicy, from, to, now, -1, msg))
			}
			continue
		}
		deliverAt := now + d
		if sentActive {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageSent, from, to, now, deliverAt, msg))
		}
		if sharded && nt.owner[to] != nt.shard {
			nt.sendRemote(from, to, deliverAt, msg)
			continue
		}
		proto.To = int32(to)
		nt.engine.MustAtMsg(deliverAt, nt.target, proto)
	}
	if nbrs != nil {
		nt.nbrBuf = nbrs[:0]
	}
	nt.stats.Sent += sent
	nt.stats.BySender[from] += sent
	nt.stats.DroppedLink += droppedLink
	nt.stats.Dropped += droppedPolicy
}

// neighborList decides the sparse broadcast fast path: when the topology
// enumerates neighbours and no drop-link probe is attached, it returns
// the sender's linked set (degree+1 recipients) and its length, so the
// fan-out loop skips probing all n links — at n=65536 on a thin ring
// that is the difference between O(n·deg) and O(n²) per round. The
// listed set equals the linked set in ascending order, so stats, rng
// draws, event keys, and probe traces are byte-identical to the full
// scan; only the per-absent-link drop probe needs the scan, so an
// attached drop-link probe returns (nil, n) — the full-scan loop. The
// slice is taken from nt.nbrBuf under take-ownership-nil (a probe may
// reenter Broadcast from OnEvent): the caller must restore nt.nbrBuf
// and add n-len(nbrs) to DroppedLink when nbrs is non-nil.
func (nt *Net) neighborList(from NodeID, linkActive bool) ([]NodeID, int) {
	if nt.lister == nil || linkActive {
		return nil, nt.n
	}
	buf := nt.nbrBuf
	nt.nbrBuf = nil
	nbrs := nt.lister.AppendNeighbors(from, buf[:0])
	return nbrs, len(nbrs)
}

func (nt *Net) checkID(id NodeID) {
	if id < 0 || id >= nt.n {
		panic(fmt.Sprintf("network: node id %d out of range [0,%d)", id, nt.n))
	}
}
