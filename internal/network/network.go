// Package network simulates the message-passing network of the model:
// processes are joined by reliable, authenticated channels whose delay is
// chosen by the adversary within [dmin, dmax].
//
// Delays are produced by pluggable policies; adversarial policies may treat
// links with a faulty endpoint specially (e.g. deliver instantly to
// co-conspirators) and may drop messages on such links — the model maps
// link failures to node failures, so links between two correct processes
// are always reliable and within bounds, which the Net enforces.
//
// Connectivity is produced by a pluggable Topology (full mesh by default;
// WAN regions, sparse graphs, and scheduled partition churn are built in —
// see topology.go). The message path is allocation-light: envelopes are
// typed values (Message), deliveries ride pooled sim message events
// instead of per-send closures, and Broadcast schedules one batched event
// per distinct delivery time rather than n independent heap entries.
//
// Observation goes through the engine's probe bus: every send, delivery,
// and drop emits a typed probe.Event (guarded by Bus.Active, so an
// uninstrumented run pays one predictable branch per message and an
// instrumented one stays allocation-free).
package network

import (
	"fmt"
	"math/rand"

	"optsync/internal/probe"
	"optsync/internal/sim"
)

// NodeID identifies a process (0..n-1).
type NodeID = int

// Handler receives a delivered message.
type Handler func(from NodeID, msg Message)

// Policy decides the delay of each message. Implementations must be
// deterministic given rng.
type Policy interface {
	// Delay returns the delivery delay in seconds for a message sent at
	// virtual time now. A negative return drops the message.
	Delay(from, to NodeID, now sim.Time, rng *rand.Rand) float64
}

// Stats aggregates traffic counters. The three drop counters are
// disjoint: Dropped is charged by the delay policy at send time,
// DroppedLink at send time when the topology provides no usable link
// (such transmissions are not counted in Sent — nothing was put on a
// wire), and DroppedOffline at delivery time when the destination has no
// registered handler. Sent therefore equals Delivered + Dropped +
// DroppedOffline + in-flight.
type Stats struct {
	Sent      uint64
	Delivered uint64
	// Dropped counts messages the delay policy refused at send time.
	Dropped uint64
	// DroppedOffline counts messages that reached their delivery instant
	// with no handler registered (destination offline). Probes saw a
	// TypeMessageSent with a positive delivery instant for these — the
	// send was genuine; the loss happened at the far end.
	DroppedOffline uint64
	// DroppedLink counts transmissions suppressed because the topology
	// had no usable from->to link (absent edge or active partition).
	DroppedLink uint64
	// BySender counts messages sent per node.
	BySender []uint64
}

// delivery is one scheduled transmission batch: the envelope plus every
// recipient sharing its delivery instant. Slots live in an arena indexed
// by sim.Message.Index and are recycled through a free list, so the
// steady-state send path performs no allocation.
type delivery struct {
	from    NodeID
	msg     Message
	targets []NodeID
}

// Net is the simulated network.
type Net struct {
	engine   *sim.Engine
	n        int
	policy   Policy
	topo     Topology
	shaper   DelayShaper // non-nil iff topo shapes delays
	handlers []Handler
	stats    Stats
	probes   *probe.Bus // the engine's bus, cached to skip a pointer hop

	target    int // sim dispatch target id
	arena     []delivery
	freeSlots []uint32
	buckets   map[sim.Time]uint32 // scratch: deliverAt -> arena slot
}

// New creates a network of n endpoints over the engine with the given
// delay policy and topology. A nil topology selects the full mesh (the
// model's default); results under FullMesh are byte-identical to the
// pre-topology network.
func New(engine *sim.Engine, n int, policy Policy, topo Topology) *Net {
	if policy == nil {
		panic("network: nil policy")
	}
	if topo == nil {
		topo = FullMesh{}
	}
	nt := &Net{
		engine:   engine,
		n:        n,
		policy:   policy,
		topo:     topo,
		handlers: make([]Handler, n),
		stats:    Stats{BySender: make([]uint64, n)},
		buckets:  make(map[sim.Time]uint32),
		probes:   engine.Probes(),
	}
	if s, ok := topo.(DelayShaper); ok {
		nt.shaper = s
	}
	nt.target = engine.RegisterDispatcher(nt)
	return nt
}

// N returns the number of endpoints.
func (nt *Net) N() int { return nt.n }

// Topology returns the connectivity in force.
func (nt *Net) Topology() Topology { return nt.topo }

// Register installs the delivery handler for id. It must be called before
// any message addressed to id is delivered; re-registering replaces the
// handler (used when a node rejoins).
func (nt *Net) Register(id NodeID, h Handler) {
	nt.checkID(id)
	nt.handlers[id] = h
}

// Probes returns the observation bus messages are reported on (the
// engine's). Traffic probes subscribe to probe.MessageTypes().
func (nt *Net) Probes() *probe.Bus { return nt.probes }

// Stats returns a copy of the traffic counters.
func (nt *Net) Stats() Stats {
	s := nt.stats
	s.BySender = append([]uint64(nil), nt.stats.BySender...)
	return s
}

// ResetStats zeroes the traffic counters (used by per-phase measurements).
func (nt *Net) ResetStats() {
	nt.stats = Stats{BySender: make([]uint64, nt.n)}
}

// linkDelay runs the policy plus the topology's delay shaping for one
// usable link. Negative means dropped.
func (nt *Net) linkDelay(from, to NodeID, now sim.Time) float64 {
	d := nt.policy.Delay(from, to, now, nt.engine.Rand())
	if d >= 0 && nt.shaper != nil {
		d = nt.shaper.Shape(from, to, now, d, nt.engine.Rand())
	}
	return d
}

// transmit runs the per-link send sequence shared by Send and Broadcast:
// topology gating, traffic accounting, delay resolution, and probe
// emission. It returns the delivery instant, or ok=false when the
// message was dropped at send time (already counted).
func (nt *Net) transmit(from, to NodeID, now sim.Time, msg Message) (deliverAt sim.Time, ok bool) {
	if !nt.topo.Linked(from, to, now) {
		nt.stats.DroppedLink++
		if nt.probes.Active(probe.TypeMessageDropLink) {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropLink, from, to, now, -1, msg))
		}
		return 0, false
	}
	nt.stats.Sent++
	nt.stats.BySender[from]++
	d := nt.linkDelay(from, to, now)
	if d < 0 {
		nt.stats.Dropped++
		if nt.probes.Active(probe.TypeMessageDropPolicy) {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropPolicy, from, to, now, -1, msg))
		}
		return 0, false
	}
	deliverAt = now + d
	if nt.probes.Active(probe.TypeMessageSent) {
		nt.probes.Emit(nt.msgEvent(probe.TypeMessageSent, from, to, now, deliverAt, msg))
	}
	return deliverAt, true
}

// msgEvent builds the probe event for one per-message moment.
func (nt *Net) msgEvent(t probe.Type, from, to NodeID, at sim.Time, deliverAt float64, msg Message) probe.Event {
	return probe.Event{
		Type: t,
		Kind: uint16(msg.Kind),
		From: int32(from), To: int32(to),
		Round: int32(msg.Round),
		T:     at,
		Value: deliverAt,
	}
}

// alloc takes an arena slot for a new delivery batch, reusing a recycled
// slot (and its targets backing array) when one is free.
func (nt *Net) alloc(from NodeID, msg Message) uint32 {
	if k := len(nt.freeSlots); k > 0 {
		idx := nt.freeSlots[k-1]
		nt.freeSlots = nt.freeSlots[:k-1]
		d := &nt.arena[idx]
		d.from, d.msg = from, msg
		return idx
	}
	nt.arena = append(nt.arena, delivery{from: from, msg: msg})
	return uint32(len(nt.arena) - 1)
}

// Dispatch implements sim.Dispatcher: deliver one batch.
func (nt *Net) Dispatch(now sim.Time, m sim.Message) {
	// Copy the batch out of the arena first: handlers may send, and a
	// reentrant send can grow the arena, invalidating the slot pointer.
	d := &nt.arena[m.Index]
	from, msg, targets := d.from, d.msg, d.targets
	for _, to := range targets {
		h := nt.handlers[to]
		if h == nil {
			nt.stats.DroppedOffline++
			if nt.probes.Active(probe.TypeMessageDropOffline) {
				nt.probes.Emit(nt.msgEvent(probe.TypeMessageDropOffline, from, to, now, now, msg))
			}
			continue
		}
		nt.stats.Delivered++
		if nt.probes.Active(probe.TypeMessageDelivered) {
			nt.probes.Emit(nt.msgEvent(probe.TypeMessageDelivered, from, to, now, now, msg))
		}
		h(from, msg)
	}
	// Release the slot: drop payload references, keep the targets array.
	d = &nt.arena[m.Index]
	d.msg = Message{}
	d.targets = targets[:0]
	nt.freeSlots = append(nt.freeSlots, uint32(m.Index))
}

// Send transmits msg from -> to. Delivery is scheduled according to the
// policy; a handler that is nil at delivery time drops the message at the
// far end (the destination is offline; see Stats.DroppedOffline). A send
// over a link the topology does not currently provide is suppressed
// entirely (Stats.DroppedLink).
func (nt *Net) Send(from, to NodeID, msg Message) {
	nt.checkID(from)
	nt.checkID(to)
	deliverAt, ok := nt.transmit(from, to, nt.engine.Now(), msg)
	if !ok {
		return
	}
	idx := nt.alloc(from, msg)
	nt.arena[idx].targets = append(nt.arena[idx].targets, to)
	nt.engine.MustAtMsg(deliverAt, nt.target, sim.Message{
		From: int32(from), To: int32(to), Index: idx,
	})
}

// Broadcast sends msg from -> every endpoint the topology links to the
// sender, including the sender itself ("sends to all" in the paper
// includes the sender; self-delivery obeys the same delay bounds, which is
// the conservative reading). Recipients sharing a delivery instant ride a
// single batched event, so a fixed-delay broadcast costs one heap push
// instead of n.
func (nt *Net) Broadcast(from NodeID, msg Message) {
	nt.checkID(from)
	now := nt.engine.Now()
	// Take exclusive ownership of the scratch bucket map for the duration
	// of this call: a probe may reenter Broadcast from OnEvent, and a
	// shared map would let the inner call append recipients to the outer
	// call's batches. A reentrant call finds nil and allocates its own
	// (the steady-state, non-reentrant path still reuses one map forever).
	buckets := nt.buckets
	if buckets == nil {
		buckets = make(map[sim.Time]uint32)
	}
	nt.buckets = nil
	for to := 0; to < nt.n; to++ {
		deliverAt, ok := nt.transmit(from, to, now, msg)
		if !ok {
			continue
		}
		idx, seen := buckets[deliverAt]
		if !seen {
			idx = nt.alloc(from, msg)
			buckets[deliverAt] = idx
			nt.engine.MustAtMsg(deliverAt, nt.target, sim.Message{
				From: int32(from), To: -1, Index: idx,
			})
		}
		nt.arena[idx].targets = append(nt.arena[idx].targets, to)
	}
	clear(buckets)
	nt.buckets = buckets
}

func (nt *Net) checkID(id NodeID) {
	if id < 0 || id >= nt.n {
		panic(fmt.Sprintf("network: node id %d out of range [0,%d)", id, nt.n))
	}
}
