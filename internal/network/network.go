// Package network simulates the fully connected message-passing network of
// the model: every pair of processes is joined by a reliable, authenticated
// channel whose delay is chosen by the adversary within [dmin, dmax].
//
// Delays are produced by pluggable policies; adversarial policies may treat
// links with a faulty endpoint specially (e.g. deliver instantly to
// co-conspirators) and may drop messages on such links — the model maps
// link failures to node failures, so links between two correct processes
// are always reliable and within bounds, which the Net enforces.
package network

import (
	"fmt"
	"math/rand"

	"optsync/internal/sim"
)

// NodeID identifies a process (0..n-1).
type NodeID = int

// Handler receives a delivered message.
type Handler func(from NodeID, msg any)

// Policy decides the delay of each message. Implementations must be
// deterministic given rng.
type Policy interface {
	// Delay returns the delivery delay in seconds for a message sent at
	// virtual time now. A negative return drops the message.
	Delay(from, to NodeID, now sim.Time, rng *rand.Rand) float64
}

// Stats aggregates traffic counters.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	// BySender counts messages sent per node.
	BySender []uint64
}

// Observer is notified of every send (for tracing / message-complexity
// experiments). deliverAt < 0 means the message was dropped.
type Observer func(from, to NodeID, msg any, sentAt, deliverAt sim.Time)

// Net is the simulated network.
type Net struct {
	engine   *sim.Engine
	n        int
	policy   Policy
	handlers []Handler
	stats    Stats
	observer Observer
}

// New creates a network of n endpoints over the engine with the given delay
// policy.
func New(engine *sim.Engine, n int, policy Policy) *Net {
	if policy == nil {
		panic("network: nil policy")
	}
	return &Net{
		engine:   engine,
		n:        n,
		policy:   policy,
		handlers: make([]Handler, n),
		stats:    Stats{BySender: make([]uint64, n)},
	}
}

// N returns the number of endpoints.
func (nt *Net) N() int { return nt.n }

// Register installs the delivery handler for id. It must be called before
// any message addressed to id is delivered; re-registering replaces the
// handler (used when a node rejoins).
func (nt *Net) Register(id NodeID, h Handler) {
	nt.checkID(id)
	nt.handlers[id] = h
}

// SetObserver installs a trace observer (nil to remove).
func (nt *Net) SetObserver(o Observer) { nt.observer = o }

// Stats returns a copy of the traffic counters.
func (nt *Net) Stats() Stats {
	s := nt.stats
	s.BySender = append([]uint64(nil), nt.stats.BySender...)
	return s
}

// ResetStats zeroes the traffic counters (used by per-phase measurements).
func (nt *Net) ResetStats() {
	nt.stats = Stats{BySender: make([]uint64, nt.n)}
}

// Send transmits msg from -> to. Delivery is scheduled according to the
// policy; a handler that is nil at delivery time silently drops the message
// (the destination is offline).
func (nt *Net) Send(from, to NodeID, msg any) {
	nt.checkID(from)
	nt.checkID(to)
	now := nt.engine.Now()
	nt.stats.Sent++
	nt.stats.BySender[from]++
	d := nt.policy.Delay(from, to, now, nt.engine.Rand())
	if d < 0 {
		nt.stats.Dropped++
		if nt.observer != nil {
			nt.observer(from, to, msg, now, -1)
		}
		return
	}
	deliverAt := now + d
	if nt.observer != nil {
		nt.observer(from, to, msg, now, deliverAt)
	}
	nt.engine.MustAt(deliverAt, func() {
		h := nt.handlers[to]
		if h == nil {
			nt.stats.Dropped++
			return
		}
		nt.stats.Delivered++
		h(from, msg)
	})
}

// Broadcast sends msg from -> every endpoint, including the sender itself
// ("sends to all" in the paper includes the sender; self-delivery obeys the
// same delay bounds, which is the conservative reading).
func (nt *Net) Broadcast(from NodeID, msg any) {
	for to := 0; to < nt.n; to++ {
		nt.Send(from, to, msg)
	}
}

func (nt *Net) checkID(id NodeID) {
	if id < 0 || id >= nt.n {
		panic(fmt.Sprintf("network: node id %d out of range [0,%d)", id, nt.n))
	}
}
