package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"optsync/internal/harness"
)

// The segment tier. A campaign stores one JSON file per finished cell —
// perfect for atomicity, miserable for million-cell fleets (a million
// inodes, a million opens on every resume). Compact folds finished
// loose cells into append-only segment files of one JSON line per cell,
// addressed by a single index:
//
//	<dir>/segments/seg-NNNNNN.jsonl   cells, one cellFile line each
//	<dir>/segments/index.json         key -> (segment, offset, length)
//
// The ordering contract that makes compaction safe while workers keep
// reporting: a cell's index entry is durable *before* its loose file is
// unlinked, and Get consults the loose tier first, the index second. A
// reader therefore always finds the cell in at least one tier, and both
// tiers hold byte-identical documents (results are content-addressed),
// so it never matters which one answers.
const indexVersion = 1

// segRef locates one compacted cell inside a segment file.
type segRef struct {
	Segment string `json:"seg"`
	Offset  int64  `json:"off"`
	Length  int64  `json:"len"`
}

// indexFile is the on-disk segment index, rewritten atomically by every
// compaction.
type indexFile struct {
	Version int               `json:"version"`
	LastSeq int               `json:"last_seq"`
	Entries map[string]segRef `json:"entries"`
}

func (s *Store) indexPath() string {
	return filepath.Join(s.dir, "segments", "index.json")
}

func (s *Store) segmentPath(name string) string {
	return filepath.Join(s.dir, "segments", name)
}

// loadIndex reads the segment index into memory at Open. A corrupt
// index is recoverable damage, not a dead store: the loose tier and the
// next compaction rebuild coverage, so it is logged and treated as
// empty. (Cells referenced only by the lost index re-run; their fresh
// results land in the loose tier and re-compact later.)
func (s *Store) loadIndex() error {
	data, err := os.ReadFile(s.indexPath())
	if errors.Is(err, fs.ErrNotExist) {
		s.idx = make(map[string]segRef)
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: reading segment index: %w", err)
	}
	var idx indexFile
	if uerr := json.Unmarshal(data, &idx); uerr != nil || idx.Version != indexVersion {
		if uerr == nil {
			uerr = fmt.Errorf("index version %d, this binary speaks %d", idx.Version, indexVersion)
		}
		s.warn("campaign: store %s: corrupt segment index (%v); treating compacted cells as missing", s.dir, uerr)
		s.idx = make(map[string]segRef)
		return nil
	}
	if idx.Entries == nil {
		idx.Entries = make(map[string]segRef)
	}
	s.idx = idx.Entries
	s.seq = idx.LastSeq
	return nil
}

// getCompacted serves key from the segment tier. Damage at any layer —
// a vanished segment, a short read, a corrupt line — is logged and
// reported as a miss so the cell re-runs.
func (s *Store) getCompacted(key string) (harness.Result, bool, error) {
	s.mu.Lock()
	ref, ok := s.idx[key]
	s.mu.Unlock()
	if !ok {
		return harness.Result{}, false, nil
	}
	f, err := os.Open(s.segmentPath(ref.Segment))
	if err != nil {
		s.warnf("campaign: store %s: segment %s unreadable for cell %s (%v); treating as missing", s.dir, ref.Segment, key, err)
		return harness.Result{}, false, nil
	}
	defer f.Close()
	buf := make([]byte, ref.Length)
	if _, err := f.ReadAt(buf, ref.Offset); err != nil {
		s.warnf("campaign: store %s: truncated segment %s at cell %s (%v); treating as missing", s.dir, ref.Segment, key, err)
		return harness.Result{}, false, nil
	}
	res, err := decodeCell(buf, key)
	if err != nil {
		s.warnf("campaign: store %s: corrupt compacted cell %s in %s (%v); treating as missing", s.dir, key, ref.Segment, err)
		return harness.Result{}, false, nil
	}
	return res, true, nil
}

// CompactStats reports what one Compact pass did.
type CompactStats struct {
	// Compacted cells moved from the loose tier into the new segment.
	Compacted int
	// Skipped loose cells left in place: already indexed duplicates or
	// corrupt files (corrupt ones are logged and removed so they re-run).
	Skipped int
	// Segment is the file the pass appended, "" if nothing to do.
	Segment string
}

// Compact folds every finished loose cell into a new append-only
// segment and removes the loose files. It is safe to run while the
// store keeps accepting Put calls (a coordinator under live report
// traffic): only the loose files present when the pass started are
// touched, each is indexed before it is unlinked, and a concurrent Put
// of the same key writes an identical document by construction.
func (s *Store) Compact() (CompactStats, error) {
	var stats CompactStats
	loose, err := s.looseCells()
	if err != nil {
		return stats, err
	}
	// Work on a sorted snapshot so segment layout is deterministic in
	// the store contents.
	sort.Slice(loose, func(i, j int) bool { return loose[i][0] < loose[j][0] })

	type entry struct {
		key  string
		path string
		line []byte
	}
	var entries []entry
	for _, kp := range loose {
		key, path := kp[0], kp[1]
		s.mu.Lock()
		_, dup := s.idx[key]
		s.mu.Unlock()
		if dup {
			// Already compacted (a duplicate report re-created the loose
			// file after a previous pass); the segment copy is identical,
			// so just drop the loose one.
			os.Remove(path)
			stats.Skipped++
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // raced with nothing we own; ignore
			}
			return stats, fmt.Errorf("campaign: compacting cell %s: %w", key, err)
		}
		if _, derr := decodeCell(data, key); derr != nil {
			s.warnf("campaign: store %s: corrupt cell %s (%v); dropping it from compaction, it will be re-run", s.dir, key, derr)
			os.Remove(path)
			stats.Skipped++
			continue
		}
		if data[len(data)-1] != '\n' {
			data = append(data, '\n')
		}
		entries = append(entries, entry{key: key, path: path, line: data})
	}
	if len(entries) == 0 {
		return stats, nil
	}

	s.mu.Lock()
	s.seq++
	segName := fmt.Sprintf("seg-%06d.jsonl", s.seq)
	s.mu.Unlock()
	segPath := s.segmentPath(segName)
	f, err := os.OpenFile(segPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, storeFileMode)
	if err != nil {
		return stats, fmt.Errorf("campaign: creating segment: %w", err)
	}
	refs := make(map[string]segRef, len(entries))
	var off int64
	for _, e := range entries {
		n, err := f.Write(e.line)
		if err != nil {
			f.Close()
			os.Remove(segPath)
			return stats, fmt.Errorf("campaign: writing segment: %w", err)
		}
		refs[e.key] = segRef{Segment: segName, Offset: off, Length: int64(n)}
		off += int64(n)
	}
	// The segment must be durable before the index points into it.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(segPath)
		return stats, fmt.Errorf("campaign: syncing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(segPath)
		return stats, fmt.Errorf("campaign: closing segment: %w", err)
	}

	// Publish the merged index atomically, then — and only then —
	// unlink the loose files it supersedes.
	s.mu.Lock()
	for k, r := range refs {
		s.idx[k] = r
	}
	if err := s.writeIndexLocked(); err != nil {
		// Roll the in-memory merge back: the on-disk index still serves
		// the old view and the loose files all survive.
		for k := range refs {
			delete(s.idx, k)
		}
		s.mu.Unlock()
		os.Remove(segPath)
		return stats, err
	}
	s.mu.Unlock()
	for _, e := range entries {
		os.Remove(e.path)
	}
	stats.Compacted = len(entries)
	stats.Segment = segName
	return stats, nil
}

// writeIndexLocked persists the in-memory index atomically; the caller
// holds s.mu.
func (s *Store) writeIndexLocked() error {
	blob, err := json.Marshal(indexFile{Version: indexVersion, LastSeq: s.seq, Entries: s.idx})
	if err != nil {
		return fmt.Errorf("campaign: encoding segment index: %w", err)
	}
	if err := writeAtomic(s.indexPath(), append(blob, '\n')); err != nil {
		return fmt.Errorf("campaign: writing segment index: %w", err)
	}
	return nil
}

// CompactedLen counts the cells served by the segment tier (tests and
// progress endpoints).
func (s *Store) CompactedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}
