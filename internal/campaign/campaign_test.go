package campaign

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"optsync/internal/harness"
)

// testCampaign sweeps faulty count and seed-replicates each point: 3
// grid points x 2 seeds = 6 cells, 3 groups.
func testCampaign() Campaign {
	return Campaign{
		Name:  "test",
		Base:  testSpec(1),
		Axes:  []Axis{{Field: "faulty", Values: Ints(0, 1, 2)}},
		Seeds: 2,
	}
}

func TestCellsGridExpansion(t *testing.T) {
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{
			{Field: "faulty", Values: Ints(0, 1)},
			{Field: "dmax", Values: Floats(0.01, 0.02, 0.03)},
		},
		Seeds: 2,
	}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*3*2 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Last axis varies fastest; replicates are innermost.
	if cells[0].Group != "faulty=0 dmax=0.01" || cells[0].Replica != 0 {
		t.Fatalf("cell 0 = %+v", cells[0])
	}
	if cells[1].Group != "faulty=0 dmax=0.01" || cells[1].Replica != 1 {
		t.Fatalf("cell 1 = %+v", cells[1])
	}
	if cells[2].Group != "faulty=0 dmax=0.02" {
		t.Fatalf("cell 2 group = %q", cells[2].Group)
	}
	if cells[6].Group != "faulty=1 dmax=0.01" {
		t.Fatalf("cell 6 group = %q", cells[6].Group)
	}
	// Applied values reach the spec, and replicas get consecutive seeds.
	if cells[6].Spec.FaultyCount != 1 || cells[6].Spec.Params.DMax != 0.01 {
		t.Fatalf("cell 6 spec = %+v", cells[6].Spec)
	}
	if cells[1].Spec.Seed != cells[0].Spec.Seed+1 {
		t.Fatal("replicas do not use consecutive seeds")
	}
	// All keys distinct.
	seen := make(map[string]bool)
	for _, cell := range cells {
		if seen[cell.Key] {
			t.Fatalf("duplicate key %s", cell.Key)
		}
		seen[cell.Key] = true
	}
}

func TestCellsSamplingIsDeterministicSubset(t *testing.T) {
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{
			{Field: "faulty", Values: Ints(0, 1)},
			{Field: "seed", Values: Ints(1, 2, 3, 4, 5)},
		},
		Samples:    4,
		SampleSeed: 7,
	}
	first, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 4 {
		t.Fatalf("got %d sampled cells, want 4", len(first))
	}
	again, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("sampling not deterministic")
	}
	// Sampled cells are a subset of the full grid.
	c.Samples = 0
	full, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool)
	for _, cell := range full {
		keys[cell.Key] = true
	}
	for _, cell := range first {
		if !keys[cell.Key] {
			t.Fatalf("sampled cell %s not in the grid", cell.Key)
		}
	}
	// A different sample seed picks a different subset (5 choose 4 of 10
	// points; collision would mean the seed is ignored).
	c.Samples, c.SampleSeed = 4, 8
	other, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, other) {
		t.Fatal("sample seed ignored")
	}
}

func TestCellsValidation(t *testing.T) {
	base := testSpec(1)
	for name, c := range map[string]Campaign{
		"no axes":      {Base: base},
		"unknown":      {Base: base, Axes: []Axis{{Field: "warp", Values: Ints(1)}}},
		"empty values": {Base: base, Axes: []Axis{{Field: "f", Values: nil}}},
		"dup axis": {Base: base, Axes: []Axis{
			{Field: "f", Values: Ints(1)}, {Field: "f", Values: Ints(2)},
		}},
		"bad int":       {Base: base, Axes: []Axis{{Field: "n", Values: Strings("five")}}},
		"bad float":     {Base: base, Axes: []Axis{{Field: "dmax", Values: Strings("wide")}}},
		"bad seed":      {Base: base, Axes: []Axis{{Field: "seed", Values: Strings("x")}}},
		"bad partition": {Base: base, Axes: []Axis{{Field: "partitions", Values: Strings("1:2")}}},
	} {
		if _, err := c.Cells(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestCellsRejectDuplicateAxisValues(t *testing.T) {
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "faulty", Values: Ints(0, 1, 1)}},
	}
	if _, err := c.Cells(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate axis value accepted: %v", err)
	}
}

func TestCellsRejectOutOfModelParams(t *testing.T) {
	// n=5 auth admits f <= 2; sweeping the analytic bound past the model
	// must fail before anything simulates (resilience-boundary studies
	// sweep "faulty" instead, which stays unrestricted).
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "f", Values: Ints(1, 3)}},
	}
	if _, err := c.Cells(); err == nil || !strings.Contains(err.Error(), "f=3") {
		t.Fatalf("out-of-model f accepted: %v", err)
	}
	over := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "faulty", Values: Ints(0, 3)}},
	}
	if _, err := over.Cells(); err != nil {
		t.Fatalf("beyond-bound faulty count rejected: %v", err)
	}
}

func TestCellsFinishHook(t *testing.T) {
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "dmax", Values: Floats(0.01, 0.02)}},
		Finish: func(s *harness.Spec) error {
			s.Params.InitialSkew = s.Params.DMax / 2
			return nil
		},
	}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Spec.Params.InitialSkew != 0.005 || cells[1].Spec.Params.InitialSkew != 0.01 {
		t.Fatalf("finish hook not applied per cell: %v / %v",
			cells[0].Spec.Params.InitialSkew, cells[1].Spec.Params.InitialSkew)
	}
	c.Finish = func(*harness.Spec) error { return errors.New("derivation broke") }
	if _, err := c.Cells(); err == nil || !strings.Contains(err.Error(), "derivation broke") {
		t.Fatalf("finish error swallowed: %v", err)
	}
}

func TestPartitionsAxisParsing(t *testing.T) {
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "partitions", Values: Strings("", "1:2:2;3:0:1")}},
	}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells[0].Spec.Partitions) != 0 {
		t.Fatal("empty partitions value produced windows")
	}
	want := []harness.Partition{{At: 1, Heal: 2, LeftSize: 2}, {At: 3, Heal: 0, LeftSize: 1}}
	if !reflect.DeepEqual(cells[1].Spec.Partitions, want) {
		t.Fatalf("partitions = %+v", cells[1].Spec.Partitions)
	}
}

func TestRunAggregatesPerGroup(t *testing.T) {
	report, err := Run(context.Background(), testCampaign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Total != 6 || report.Executed != 6 || report.CacheHits != 0 {
		t.Fatalf("accounting = %s", report.Summary())
	}
	if len(report.Groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(report.Groups))
	}
	for _, g := range report.Groups {
		if g.Cells != 2 {
			t.Fatalf("group %q has %d cells", g.Key, g.Cells)
		}
		if g.Skew.Count != 2 || g.Skew.Min > g.Skew.Mean || g.Skew.Mean > g.Skew.Max {
			t.Fatalf("group %q skew summary inconsistent: %+v", g.Key, g.Skew)
		}
		if g.SkewBound <= 0 {
			t.Fatalf("group %q missing skew bound", g.Key)
		}
		if g.Pulses.Mean <= 0 {
			t.Fatalf("group %q shows no liveness", g.Key)
		}
	}
	// The fault-free and faulty groups genuinely differ (different runs).
	if report.Groups[0].Skew.Mean == report.Groups[2].Skew.Mean {
		t.Fatal("groups look identical — axis not applied?")
	}
	// Rendering covers every group plus the accounting note.
	text := report.Table().Render()
	for _, g := range report.Groups {
		if !strings.Contains(text, g.Key) {
			t.Fatalf("table missing group %q:\n%s", g.Key, text)
		}
	}
	if !strings.Contains(text, report.Summary()) {
		t.Fatal("table missing accounting note")
	}
}

// Acceptance: a killed-and-restarted campaign completes without
// recomputing finished cells, and its aggregates are byte-identical to
// an uninterrupted run.
func TestCampaignResumesAfterKill(t *testing.T) {
	c := testCampaign()
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the first campaign after 3 settled cells: the progress
	// callback cancels the context, exactly like SIGKILL landing between
	// cell completions (completed cells are already on disk, atomically).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const killAfter = 3
	_, err = Run(ctx, c, Options{Store: store, Workers: 1, Progress: func(done, total int) {
		if done == killAfter {
			cancel()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed campaign returned %v", err)
	}
	finished, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if finished < killAfter {
		t.Fatalf("only %d cells on disk after kill, want >= %d", finished, killAfter)
	}

	// Restart against the same store: finished cells must not recompute.
	report, err := Run(context.Background(), c, Options{Store: store, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Total != 6 || report.CacheHits != finished || report.Executed != 6-finished {
		t.Fatalf("resume recomputed finished cells: %s (store had %d)", report.Summary(), finished)
	}

	// And the stitched-together campaign is indistinguishable from an
	// uninterrupted one, byte for byte.
	fresh, err := Run(context.Background(), testCampaign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Groups, fresh.Groups) {
		t.Fatalf("resumed aggregates drifted:\n got  %+v\n want %+v", report.Groups, fresh.Groups)
	}
	if got, want := report.Table().CSV(), fresh.Table().CSV(); got != want {
		// The accounting note is not part of CSV, so this must match.
		t.Fatalf("resumed CSV drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRerunIsAllCacheHits(t *testing.T) {
	c := testCampaign()
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), c, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 6 {
		t.Fatalf("first pass: %s", first.Summary())
	}
	second, err := Run(context.Background(), c, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.CacheHits != 6 {
		t.Fatalf("second pass recomputed: %s", second.Summary())
	}
	if got, want := second.Table().Render(), first.Table().Render(); got != want {
		// Render includes the accounting note; strip the notes line by
		// comparing CSV (pure aggregates) AND per-group structs.
		if second.Table().CSV() != first.Table().CSV() ||
			!reflect.DeepEqual(second.Groups, first.Groups) {
			t.Fatalf("cached aggregates drifted:\n%s\nvs\n%s", got, want)
		}
	}

	// Recompute ignores the cache but reproduces the same numbers.
	third, err := Run(context.Background(), c, Options{Store: store, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 6 {
		t.Fatalf("recompute served hits: %s", third.Summary())
	}
	if !reflect.DeepEqual(third.Groups, first.Groups) {
		t.Fatal("recompute changed the aggregates")
	}
}

func TestRunWithoutAxesFails(t *testing.T) {
	if _, err := Run(context.Background(), Campaign{Base: testSpec(1)}, Options{}); err == nil {
		t.Fatal("axis-less campaign accepted")
	}
}

func TestRunProgressCoversEveryCell(t *testing.T) {
	var events []int
	_, err := Run(context.Background(), testCampaign(), Options{
		Workers: 2,
		Progress: func(done, total int) {
			if total != 6 {
				t.Errorf("total = %d", total)
			}
			events = append(events, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 || events[0] != 1 || events[5] != 6 {
		t.Fatalf("progress events = %v", events)
	}
}
