package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/harness"
)

// mustRun executes a known-good spec for store fixtures.
func mustRun(t *testing.T, spec harness.Spec) harness.Result {
	t.Helper()
	res, err := harness.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testSpec(seed int64) harness.Spec {
	p := bounds.Params{
		N: 5, F: 1, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	return harness.Spec{
		Algo: harness.AlgoAuth, Params: p,
		FaultyCount: 1, Attack: harness.AttackSilent,
		Horizon: 4, Seed: seed,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v", ok, err)
	}

	res := mustRun(t, spec)
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if got.MaxSkew != res.MaxSkew || got.TotalMsgs != res.TotalMsgs ||
		got.PulseCount != res.PulseCount || got.EnvHi != res.EnvHi {
		t.Fatalf("round trip drifted:\n got  %+v\n want %+v", got, res)
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}

	// Reopening sees the same contents.
	store2, err := Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store2.Get(key); err != nil || !ok {
		t.Fatalf("reopened Get = ok=%v err=%v", ok, err)
	}
}

func TestStoreDoesNotPersistSeries(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	spec.KeepSeries = true
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, spec)
	if len(res.Series) == 0 {
		t.Fatal("run kept no series")
	}
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, _, err := store.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 0 || len(got.Pulses) != 0 {
		t.Fatal("store persisted series/pulses")
	}
}

func TestStoreRefusesForeignVersion(t *testing.T) {
	dir := t.TempDir() + "/store"
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"version":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("foreign version accepted: %v", err)
	}
}

func TestStoreCorruptCellIsErrorNotMiss(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key, harness.Result{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store.Dir(), "cells", key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Get(key); err == nil {
		t.Fatal("corrupt cell served as a miss")
	}
}

func TestStoreEmptyDirIsError(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty store dir accepted")
	}
}
