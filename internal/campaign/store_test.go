package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/harness"
)

// mustRun executes a known-good spec for store fixtures.
func mustRun(t *testing.T, spec harness.Spec) harness.Result {
	t.Helper()
	res, err := harness.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testSpec(seed int64) harness.Spec {
	p := bounds.Params{
		N: 5, F: 1, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	return harness.Spec{
		Algo: harness.AlgoAuth, Params: p,
		FaultyCount: 1, Attack: harness.AttackSilent,
		Horizon: 4, Seed: seed,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v", ok, err)
	}

	res := mustRun(t, spec)
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if got.MaxSkew != res.MaxSkew || got.TotalMsgs != res.TotalMsgs ||
		got.PulseCount != res.PulseCount || got.EnvHi != res.EnvHi {
		t.Fatalf("round trip drifted:\n got  %+v\n want %+v", got, res)
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}

	// Reopening sees the same contents.
	store2, err := Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store2.Get(key); err != nil || !ok {
		t.Fatalf("reopened Get = ok=%v err=%v", ok, err)
	}
}

func TestStoreDoesNotPersistSeries(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	spec.KeepSeries = true
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, spec)
	if len(res.Series) == 0 {
		t.Fatal("run kept no series")
	}
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, _, err := store.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 0 || len(got.Pulses) != 0 {
		t.Fatal("store persisted series/pulses")
	}
}

func TestStoreRefusesForeignVersion(t *testing.T) {
	dir := t.TempDir() + "/store"
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"version":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("foreign version accepted: %v", err)
	}
}

// TestStoreCorruptCellIsMissWithWarning is the regression test for the
// truncated-cell robustness fix: a torn or corrupt cell file must not
// take the whole campaign down — it is logged, treated as missing, and
// the re-run overwrites the damage.
func TestStoreCorruptCellIsMissWithWarning(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	store.SetWarn(func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	spec := testSpec(1)
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key, harness.Result{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store.Dir(), "cells", key[:2], key+".json")
	// Deliberately truncate the finished cell mid-document, the exact
	// artifact a crashed copy or torn filesystem leaves behind.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("truncated cell: Get = ok=%v err=%v, want miss without error", ok, err)
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], "corrupt cell") {
		t.Fatalf("no corruption warning logged: %q", warnings)
	}
	// Re-running the cell heals the store in place.
	res := mustRun(t, spec)
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := store.Get(key); err != nil || !ok || got.MaxSkew != res.MaxSkew {
		t.Fatalf("healed cell unreadable: ok=%v err=%v", ok, err)
	}
}

// TestStoreDirCreationIsNormalized pins the ensureStoreDir contract:
// parent directories are created, and every directory and published
// file carries the one consistent store mode.
func TestStoreDirCreationIsNormalized(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "nested", "store")
	store, err := Open(dir) // parents "deep/nested" must be created too
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key, harness.Result{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"", "cells", "segments", filepath.Join("cells", key[:2])} {
		info, err := os.Stat(filepath.Join(dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		if got := info.Mode().Perm(); got != 0o755 {
			t.Fatalf("dir %q mode = %o, want 755", sub, got)
		}
	}
	for _, file := range []string{"meta.json", filepath.Join("cells", key[:2], key+".json")} {
		info, err := os.Stat(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		if got := info.Mode().Perm(); got != 0o644 {
			t.Fatalf("file %q mode = %o, want 644", file, got)
		}
	}
}

func TestStoreEmptyDirIsError(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty store dir accepted")
	}
}
