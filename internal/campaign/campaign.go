// Package campaign turns declarative parameter-space descriptions into
// executed, persisted, resumable experiment sweeps.
//
// A Campaign names a base Spec and a set of Axes — per-field value lists
// combined as a full grid or a seeded random sample of it. The engine
// expands the campaign into concrete Specs, keys each by its canonical
// content hash (harness.SpecKey), executes only the cells a Store has
// not already answered, and aggregates the results per group of non-seed
// axis values. An interrupted campaign re-run against the same store is
// therefore resumable by construction: finished cells are hits, nothing
// is recomputed.
package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"optsync/internal/clock"
	"optsync/internal/harness"
)

// Axis sweeps one spec field over a list of values. Values are the
// field's textual form (the same syntax the CLI accepts); the typed
// helpers Ints, Floats, and Strings build them from Go values. For
// threshold searches the values must be ordered from easiest to hardest,
// i.e. the pass/fail predicate must flip at most once along the axis.
type Axis struct {
	// Field names a sweepable spec field; Fields lists the vocabulary.
	Field string
	// Values are applied via the field's parser, in order. Grid
	// expansion varies the last listed axis fastest.
	Values []string
}

// Campaign declares a parameter-space sweep over a base spec.
type Campaign struct {
	// Name labels the campaign in output rows.
	Name string
	// Base supplies every field the axes do not sweep.
	Base harness.Spec
	// Axes are combined as a cartesian grid (or a sample of it).
	Axes []Axis
	// Seeds replicates every grid point with consecutive seeds
	// (Seed, Seed+1, ...); values < 1 mean 1. Replicates form the
	// population the per-group statistics summarize.
	Seeds int
	// Samples > 0 draws that many distinct grid points (without
	// replacement) instead of the full grid, deterministically from
	// SampleSeed. Samples >= the grid size degrades to the full grid.
	Samples int
	// SampleSeed seeds the sample draw; campaigns with equal SampleSeed
	// pick equal points.
	SampleSeed int64
	// Finish, if non-nil, runs on every assembled cell spec after the
	// axes are applied and before validation and keying — the place to
	// re-derive parameters whose conventional defaults depend on swept
	// fields (alpha from dmax, fault bounds from n, the CLI's
	// initial-skew convention). Axes only ever write the one field they
	// name; without a Finish hook, derived values baked into Base stay
	// frozen across the whole grid.
	Finish func(*harness.Spec) error
}

// Cell is one concrete run of an expanded campaign.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Values holds the applied axis values, aligned with Campaign.Axes.
	Values []string
	// Replica is the seed-replicate number in [0, Seeds).
	Replica int
	// Spec is the fully assembled run description.
	Spec harness.Spec
	// Key is the spec's content address (harness.SpecKey).
	Key string
	// Group joins the non-seed axis assignments ("f=2 dmax=0.01");
	// seed replicas and any "seed" axis fold into one group.
	Group string
}

// fieldApplier parses one axis value into a spec.
type fieldApplier func(spec *harness.Spec, value string) error

// axisFields is the sweepable-field vocabulary. Each entry parses the
// textual axis value and writes exactly one spec field, so a campaign
// description stays declarative: the spec assembly order cannot matter.
var axisFields = map[string]fieldApplier{
	"n":       intField(func(s *harness.Spec, v int) { s.Params.N = v }),
	"f":       intField(func(s *harness.Spec, v int) { s.Params.F = v }),
	"faulty":  intField(func(s *harness.Spec, v int) { s.FaultyCount = v }),
	"rho":     floatField(func(s *harness.Spec, v float64) { s.Params.Rho = clock.Rho(v) }),
	"dmin":    floatField(func(s *harness.Spec, v float64) { s.Params.DMin = v }),
	"dmax":    floatField(func(s *harness.Spec, v float64) { s.Params.DMax = v }),
	"period":  floatField(func(s *harness.Spec, v float64) { s.Params.Period = v }),
	"horizon": floatField(func(s *harness.Spec, v float64) { s.Horizon = v }),
	"initial-skew": floatField(func(s *harness.Spec, v float64) {
		s.Params.InitialSkew = v
	}),
	"bias":      floatField(func(s *harness.Spec, v float64) { s.Bias = v }),
	"slew":      floatField(func(s *harness.Spec, v float64) { s.SlewRate = v }),
	"cnv-delta": floatField(func(s *harness.Spec, v float64) { s.CNVDelta = v }),
	"algo": func(s *harness.Spec, v string) error {
		s.Algo = harness.Algorithm(v)
		return nil
	},
	"attack": func(s *harness.Spec, v string) error {
		s.Attack = harness.Attack(v)
		return nil
	},
	"topology": func(s *harness.Spec, v string) error {
		s.Topology = v
		return nil
	},
	"partitions": func(s *harness.Spec, v string) error {
		windows, err := parsePartitions(v)
		if err != nil {
			return err
		}
		s.Partitions = windows
		return nil
	},
	"seed": func(s *harness.Spec, v string) error {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", v)
		}
		s.Seed = seed
		return nil
	},
}

func intField(set func(*harness.Spec, int)) fieldApplier {
	return func(s *harness.Spec, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("invalid integer %q", v)
		}
		set(s, n)
		return nil
	}
}

func floatField(set func(*harness.Spec, float64)) fieldApplier {
	return func(s *harness.Spec, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("invalid number %q", v)
		}
		set(s, f)
		return nil
	}
}

// parsePartitions parses ";"-separated "at:heal:leftSize" windows via
// the shared harness parser; the empty string means no partitions, so a
// partitions axis can include an undisturbed cell.
func parsePartitions(v string) ([]harness.Partition, error) {
	if v == "" {
		return nil, nil
	}
	windows := strings.Split(v, ";")
	out := make([]harness.Partition, 0, len(windows))
	for _, w := range windows {
		p, err := harness.ParsePartition(w)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Fields returns the sweepable axis field names, sorted.
func Fields() []string {
	out := make([]string, 0, len(axisFields))
	for name := range axisFields {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Ints renders integer axis values.
func Ints(vs ...int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

// Floats renders numeric axis values with full round-trip precision.
func Floats(vs ...float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

// Strings is the identity helper, for symmetry with Ints and Floats.
func Strings(vs ...string) []string { return append([]string(nil), vs...) }

// validate checks the axes against the field vocabulary.
func (c Campaign) validate() error {
	if len(c.Axes) == 0 {
		return fmt.Errorf("campaign %q: no axes", c.Name)
	}
	seen := make(map[string]bool, len(c.Axes))
	for _, ax := range c.Axes {
		if _, ok := axisFields[ax.Field]; !ok {
			return fmt.Errorf("campaign %q: unknown axis field %q (have %v)",
				c.Name, ax.Field, Fields())
		}
		if seen[ax.Field] {
			return fmt.Errorf("campaign %q: axis %q listed twice", c.Name, ax.Field)
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("campaign %q: axis %q has no values", c.Name, ax.Field)
		}
		dup := make(map[string]bool, len(ax.Values))
		for _, v := range ax.Values {
			if dup[v] {
				// A repeated value is almost certainly a typo, and it
				// would double-count the point in every aggregate.
				return fmt.Errorf("campaign %q: axis %q lists value %q twice", c.Name, ax.Field, v)
			}
			dup[v] = true
		}
	}
	return nil
}

// seeds returns the effective replicate count.
func (c Campaign) seeds() int {
	if c.Seeds < 1 {
		return 1
	}
	return c.Seeds
}

// gridSize returns the number of grid points (before seed replication).
func (c Campaign) gridSize() int {
	total := 1
	for _, ax := range c.Axes {
		total *= len(ax.Values)
	}
	return total
}

// points returns the expanded grid point indices in execution order: the
// full grid, or a sorted Samples-sized random subset drawn from
// SampleSeed. Point i assigns axis a the value with index
// (i / stride(a)) % len(values(a)), last axis fastest.
func (c Campaign) points() []int {
	total := c.gridSize()
	if c.Samples <= 0 || c.Samples >= total {
		points := make([]int, total)
		for i := range points {
			points[i] = i
		}
		return points
	}
	rng := rand.New(rand.NewSource(c.SampleSeed))
	points := rng.Perm(total)[:c.Samples]
	sort.Ints(points)
	return points
}

// assignments renders axis values as "field=value" parts.
func assignments(axes []Axis, values []string) []string {
	out := make([]string, len(axes))
	for a, ax := range axes {
		out[a] = ax.Field + "=" + values[a]
	}
	return out
}

// Cells expands the campaign into keyed, runnable cells in deterministic
// order. Axis values are validated by actually applying them, so a typo
// anywhere in the grid surfaces before any simulation runs.
func (c Campaign) Cells() ([]Cell, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	seeds := c.seeds()
	points := c.points()
	cells := make([]Cell, 0, len(points)*seeds)
	for _, point := range points {
		spec := c.Base
		values := make([]string, len(c.Axes))
		var nameParts, groupParts []string
		stride := 1
		for a := len(c.Axes) - 1; a >= 0; a-- {
			ax := c.Axes[a]
			v := ax.Values[(point/stride)%len(ax.Values)]
			stride *= len(ax.Values)
			values[a] = v
			if err := axisFields[ax.Field](&spec, v); err != nil {
				return nil, fmt.Errorf("campaign %q: axis %q: %w", c.Name, ax.Field, err)
			}
		}
		if c.Finish != nil {
			if err := c.Finish(&spec); err != nil {
				return nil, fmt.Errorf("campaign %q: %w", c.Name, err)
			}
		}
		// Reject out-of-model parameterizations before anything runs: a
		// bad combination deep in a grid must not simulate meaningless
		// dynamics into the store. Resilience-boundary studies sweep
		// "faulty" (the actual Byzantine count, deliberately allowed past
		// the bound), not "f" (the analytic bound Validate enforces).
		if err := spec.Params.WithDefaults().Validate(); err != nil {
			return nil, fmt.Errorf("campaign %q: cell %s: %w",
				c.Name, strings.Join(assignments(c.Axes, values), " "), err)
		}
		for a, ax := range c.Axes {
			part := ax.Field + "=" + values[a]
			nameParts = append(nameParts, part)
			if ax.Field != "seed" {
				groupParts = append(groupParts, part)
			}
		}
		group := strings.Join(groupParts, " ")
		name := strings.Join(nameParts, " ")
		if c.Name != "" {
			name = c.Name + ": " + name
		}
		for k := 0; k < seeds; k++ {
			run := spec
			run.Name = name
			run.Seed = spec.Seed + int64(k)
			run.KeepSeries = false
			key, err := harness.SpecKey(run)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Cell{
				Index:   len(cells),
				Values:  values,
				Replica: k,
				Spec:    run,
				Key:     key,
				Group:   group,
			})
		}
	}
	return cells, nil
}
