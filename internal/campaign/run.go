package campaign

import (
	"context"
	"errors"
	"fmt"

	"optsync/internal/analysis"
	"optsync/internal/harness"
)

// Options configures campaign execution.
type Options struct {
	// Store persists completed cells and answers repeats; nil runs the
	// campaign unpersisted (every cell executes).
	Store *Store
	// Workers bounds the worker pool (<= 0: the harness default).
	Workers int
	// Recompute ignores cached cells — they execute again and the fresh
	// results overwrite the store.
	Recompute bool
	// Progress, if non-nil, is invoked serially after every settled cell
	// (cache hit or executed run).
	Progress func(done, total int)
}

// Group aggregates the seed replicates (and any explicit "seed" axis
// values) of one non-seed parameter point.
type Group struct {
	// Key is the non-seed axis assignment ("f=2 dmax=0.01").
	Key string `json:"key"`
	// Cells is the number of runs aggregated.
	Cells int `json:"cells"`
	// PassRate is the fraction of runs with MaxSkew within bound.
	PassRate float64 `json:"pass_rate"`
	// SkewBound is the analytic agreement bound (constant per group: it
	// depends only on swept non-seed parameters).
	SkewBound float64 `json:"skew_bound"`
	// Summaries of the per-run observables.
	Skew         analysis.Summary `json:"skew"`
	Pulses       analysis.Summary `json:"pulses"`
	Rounds       analysis.Summary `json:"rounds"`
	MsgsPerRound analysis.Summary `json:"msgs_per_round"`
	// RunSkewP95 summarizes each run's *within-run* streaming 95th
	// percentile skew (Result.SkewP95, the bounded-memory collector
	// estimate), where Skew summarizes the runs' maxima — together they
	// separate steady-state behaviour from worst transients without
	// retaining any series.
	RunSkewP95 analysis.Summary `json:"run_skew_p95"`
	// Drops summarizes total losses per run: policy drops + offline
	// deliveries + suppressed links.
	Drops analysis.Summary `json:"drops"`
}

// Report is the outcome of a campaign run.
type Report struct {
	// Name echoes the campaign.
	Name string `json:"name,omitempty"`
	// Total, Executed, and CacheHits count cells; Total = Executed +
	// CacheHits. A resumed campaign reports the already-finished cells
	// as hits.
	Total     int `json:"total"`
	Executed  int `json:"executed"`
	CacheHits int `json:"cache_hits"`
	// Groups aggregates the cells, in first-occurrence cell order.
	Groups []Group `json:"groups"`

	// Cells and Results align index-for-index (omitted from JSON: the
	// aggregate is the campaign-level answer; per-cell streams go
	// through sinks).
	Cells   []Cell           `json:"-"`
	Results []harness.Result `json:"-"`
}

// counters tracks work across engine entry points.
type counters struct {
	executed, cached, settled, total int
	progress                         func(done, total int)
}

func (ct *counters) step() {
	ct.settled++
	if ct.progress != nil {
		ct.progress(ct.settled, ct.total)
	}
}

// runCells settles every cell — from the store when possible, by
// simulation otherwise — and returns results aligned with cells. Fresh
// results are persisted as they complete, so an interruption loses at
// most the in-flight runs.
func runCells(ctx context.Context, cells []Cell, opts Options, ct *counters) ([]harness.Result, error) {
	results := make([]harness.Result, len(cells))
	pending := make([]int, 0, len(cells))
	for i, cell := range cells {
		if opts.Store != nil && !opts.Recompute {
			res, ok, err := opts.Store.Get(cell.Key)
			if err != nil {
				return nil, err
			}
			if ok {
				// The key excludes the cosmetic name; restore this
				// campaign's label so cached and fresh rows render alike.
				res.Spec.Name = cell.Spec.Name
				results[i] = res
				ct.cached++
				ct.step()
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, ctx.Err()
	}

	specs := make([]harness.Spec, len(pending))
	for pi, i := range pending {
		specs[pi] = cells[i].Spec
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var storeErr error
	batch, err := harness.RunBatch(ctx, specs, opts.Workers, func(pi int, res harness.Result) {
		if opts.Store != nil && storeErr == nil {
			if perr := opts.Store.Put(cells[pending[pi]].Key, res); perr != nil {
				// A store that stopped accepting writes makes the rest of
				// the campaign unresumable work; stop and report it.
				storeErr = perr
				cancel()
				return
			}
		}
		ct.executed++
		ct.step()
	})
	if storeErr != nil && (err == nil || errors.Is(err, context.Canceled)) {
		err = storeErr
	}
	if err != nil {
		return nil, err
	}
	for pi, i := range pending {
		results[i] = batch[pi]
	}
	return results, nil
}

// Run expands the campaign, settles every cell (store hits skip
// execution), and aggregates the results per non-seed group. The report
// is deterministic in the campaign alone: reruns against the same store
// produce byte-identical aggregates with zero executions.
func Run(ctx context.Context, c Campaign, opts Options) (*Report, error) {
	cells, err := c.Cells()
	if err != nil {
		return nil, err
	}
	ct := &counters{total: len(cells), progress: opts.Progress}
	results, err := runCells(ctx, cells, opts, ct)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:      c.Name,
		Total:     len(cells),
		Executed:  ct.executed,
		CacheHits: ct.cached,
		Groups:    Aggregate(cells, results),
		Cells:     cells,
		Results:   results,
	}, nil
}

// Aggregate folds cell results into per-group summaries, preserving
// first-occurrence group order.
func Aggregate(cells []Cell, results []harness.Result) []Group {
	var order []string
	byKey := make(map[string][]int)
	for i, cell := range cells {
		if _, seen := byKey[cell.Group]; !seen {
			order = append(order, cell.Group)
		}
		byKey[cell.Group] = append(byKey[cell.Group], i)
	}
	groups := make([]Group, 0, len(order))
	for _, key := range order {
		idx := byKey[key]
		var (
			skews  = make([]float64, 0, len(idx))
			p95s   = make([]float64, 0, len(idx))
			pulses = make([]float64, 0, len(idx))
			rounds = make([]float64, 0, len(idx))
			msgs   = make([]float64, 0, len(idx))
			drops  = make([]float64, 0, len(idx))
			passes int
		)
		for _, i := range idx {
			r := results[i]
			skews = append(skews, r.MaxSkew)
			p95s = append(p95s, r.SkewP95)
			pulses = append(pulses, float64(r.PulseCount))
			rounds = append(rounds, float64(r.CompleteRounds))
			msgs = append(msgs, r.MsgsPerRound)
			drops = append(drops, float64(r.Dropped+r.DroppedOffline+r.DroppedLink))
			if r.WithinSkew {
				passes++
			}
		}
		groups = append(groups, Group{
			Key:          key,
			Cells:        len(idx),
			PassRate:     float64(passes) / float64(len(idx)),
			SkewBound:    results[idx[0]].SkewBound,
			Skew:         analysis.Summarize(skews),
			Pulses:       analysis.Summarize(pulses),
			Rounds:       analysis.Summarize(rounds),
			MsgsPerRound: analysis.Summarize(msgs),
			Drops:        analysis.Summarize(drops),
			RunSkewP95:   analysis.Summarize(p95s),
		})
	}
	return groups
}

// Summary renders the one-line execution accounting.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d cells: %d executed, %d cached", r.Total, r.Executed, r.CacheHits)
}

// Table renders the per-group aggregates as a result table (Render for
// aligned text, CSV for machines).
func (r *Report) Table() *harness.Table {
	title := r.Name
	if title == "" {
		title = "campaign"
	}
	t := harness.NewTable(title,
		"group", "cells", "pass_rate",
		"skew_mean", "skew_std", "skew_p95", "skew_max", "skew_bound",
		"run_p95_mean",
		"pulses_mean", "rounds_mean", "msgs_per_round", "drops_mean")
	for _, g := range r.Groups {
		t.AddRow(
			g.Key, fmt.Sprint(g.Cells), harness.F(g.PassRate),
			harness.F(g.Skew.Mean), harness.F(g.Skew.Std),
			harness.F(g.Skew.P95), harness.F(g.Skew.Max), harness.F(g.SkewBound),
			harness.F(g.RunSkewP95.Mean),
			harness.F(g.Pulses.Mean), harness.F(g.Rounds.Mean),
			harness.F(g.MsgsPerRound.Mean), harness.F(g.Drops.Mean),
		)
	}
	t.AddNote(r.Summary())
	return t
}
