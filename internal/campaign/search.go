package campaign

import (
	"context"
	"fmt"
	"strings"

	"optsync/internal/harness"
)

// Search configures an adaptive threshold search: instead of running the
// full grid, one axis is bisected per group to find the last value whose
// runs still pass. The axis values must be ordered from easiest to
// hardest — the predicate may flip from pass to fail at most once along
// the axis (monotone in the swept parameter, e.g. growing faulty counts
// or widening delay bounds). Under that assumption bisection provably
// finds the same breaking point as an exhaustive scan in O(log k)
// instead of O(k) evaluations per group.
type Search struct {
	// Axis names the campaign axis to bisect (must be one of the
	// campaign's axes and not "seed").
	Axis string
	// Passes decides whether one run meets the target; nil means the
	// paper's agreement bound (Result.WithinSkew). A grid point passes
	// only if every seed replicate passes.
	Passes func(harness.Result) bool
}

// SearchGroup is the breaking point found for one setting of the
// non-search axes.
type SearchGroup struct {
	// Key is the non-search, non-seed axis assignment ("" with a single
	// axis).
	Key string `json:"key"`
	// LastPass and FirstFail bracket the threshold; LastPass is "" when
	// even the first value fails, FirstFail is "" when every value
	// passes.
	LastPass  string `json:"last_pass"`
	FirstFail string `json:"first_fail"`
	// Evaluated counts the cells settled for this group (executions plus
	// cache hits); an exhaustive scan would settle len(values)*seeds.
	Evaluated int `json:"evaluated"`
}

// SearchReport is the outcome of a threshold search.
type SearchReport struct {
	// Axis echoes the bisected axis and its ordered values.
	Axis   string   `json:"axis"`
	Values []string `json:"values"`
	// Groups holds one breaking point per non-search parameter point.
	Groups []SearchGroup `json:"groups"`
	// Executed and CacheHits count settled cells across all groups;
	// ExhaustiveCells is what a full grid would have settled.
	Executed        int `json:"executed"`
	CacheHits       int `json:"cache_hits"`
	ExhaustiveCells int `json:"exhaustive_cells"`
}

// RunSearch bisects the campaign's search axis per group. Evaluated
// cells go through the same store as Run, so a search and a later full
// campaign (or a repeated search) share work.
func RunSearch(ctx context.Context, c Campaign, s Search, opts Options) (*SearchReport, error) {
	ai := -1
	for i, ax := range c.Axes {
		if ax.Field == s.Axis {
			ai = i
		}
	}
	if ai < 0 {
		return nil, fmt.Errorf("campaign %q: search axis %q is not a campaign axis", c.Name, s.Axis)
	}
	if s.Axis == "seed" {
		return nil, fmt.Errorf("campaign %q: cannot search along the seed axis", c.Name)
	}
	if c.Samples > 0 {
		// A sampled grid leaves holes along the axis; bisection over
		// missing cells would report a breaking point nothing ever ran.
		// (Bisection already beats sampling at its own game here.)
		return nil, fmt.Errorf("campaign %q: threshold search needs the full grid, not Samples", c.Name)
	}
	passes := s.Passes
	if passes == nil {
		passes = func(r harness.Result) bool { return r.WithinSkew }
	}

	cells, err := c.Cells()
	if err != nil {
		return nil, err
	}
	values := c.Axes[ai].Values

	// Arrange the grid as group -> value index -> seed replicates. The
	// group key drops the search axis (it is what varies) and any seed
	// axis (replicates are the unit of evaluation, not a dimension).
	var order []string
	grid := make(map[string][][]Cell)
	for _, cell := range cells {
		var parts []string
		for a, ax := range c.Axes {
			if a == ai || ax.Field == "seed" {
				continue
			}
			parts = append(parts, ax.Field+"="+cell.Values[a])
		}
		key := strings.Join(parts, " ")
		if _, seen := grid[key]; !seen {
			order = append(order, key)
			grid[key] = make([][]Cell, len(values))
		}
		vi := -1
		for i, v := range values {
			if v == cell.Values[ai] {
				vi = i
				break
			}
		}
		grid[key][vi] = append(grid[key][vi], cell)
	}

	report := &SearchReport{Axis: s.Axis, Values: values, ExhaustiveCells: len(cells)}
	ct := &counters{progress: opts.Progress}
	// total is unknowable up front (that is the point of bisection);
	// report settled cells against the exhaustive worst case.
	ct.total = len(cells)
	for _, key := range order {
		replicas := grid[key]
		evaluatedBefore := ct.executed + ct.cached
		eval := func(vi int) (bool, error) {
			if len(replicas[vi]) == 0 {
				// Defense against expansion holes: a value no cell covers
				// must fail loudly, never pass vacuously.
				return false, fmt.Errorf("campaign %q: no cells for %s=%s in group %q",
					c.Name, s.Axis, values[vi], key)
			}
			results, err := runCells(ctx, replicas[vi], opts, ct)
			if err != nil {
				return false, err
			}
			for _, res := range results {
				if !passes(res) {
					return false, nil
				}
			}
			return true, nil
		}
		// Invariant: every value index < lo passes, every index >= hi
		// fails; lo converges on the first failing index.
		lo, hi := 0, len(values)
		for lo < hi {
			mid := lo + (hi-lo)/2
			ok, err := eval(mid)
			if err != nil {
				return nil, err
			}
			if ok {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		group := SearchGroup{Key: key, Evaluated: ct.executed + ct.cached - evaluatedBefore}
		if lo > 0 {
			group.LastPass = values[lo-1]
		}
		if lo < len(values) {
			group.FirstFail = values[lo]
		}
		report.Groups = append(report.Groups, group)
	}
	report.Executed = ct.executed
	report.CacheHits = ct.cached
	return report, nil
}

// Table renders the per-group breaking points.
func (r *SearchReport) Table() *harness.Table {
	t := harness.NewTable("threshold search on "+r.Axis,
		"group", "last_pass", "first_fail", "evaluated")
	for _, g := range r.Groups {
		key := g.Key
		if key == "" {
			key = "(all)"
		}
		lp, ff := g.LastPass, g.FirstFail
		if lp == "" {
			lp = "-"
		}
		if ff == "" {
			ff = "-"
		}
		t.AddRow(key, lp, ff, fmt.Sprint(g.Evaluated))
	}
	t.AddNote("%d executed, %d cached (exhaustive grid: %d cells)",
		r.Executed, r.CacheHits, r.ExhaustiveCells)
	return t
}
