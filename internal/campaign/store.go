package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"optsync/internal/harness"
)

// storeVersion is bumped whenever the cell file format (or the meaning
// of a spec key) changes incompatibly; Open refuses stores written by a
// different version rather than silently serving stale answers.
const storeVersion = 1

// Directory and file modes every store path is created with. Cell files
// historically inherited os.CreateTemp's 0600 while directories got
// 0755; ensureStoreDir + writeAtomic now normalize both so a store can
// be inspected (or served) by another uid without chmod surgery.
const (
	storeDirMode  = 0o755
	storeFileMode = 0o644
)

// storeMeta is the store's self-description, written once at creation.
type storeMeta struct {
	Version int `json:"version"`
}

// cellFile is the on-disk form of one completed cell, both as a loose
// one-file-per-cell JSON document and as one line of an append-only
// segment. The key is repeated inside the file so a store survives
// being rsynced or having files inspected in isolation.
type cellFile struct {
	Version int            `json:"version"`
	Key     string         `json:"key"`
	Result  harness.Result `json:"result"`
}

// Store is a content-addressed directory of completed runs, keyed by
// canonical spec hash (harness.SpecKey). Layout:
//
//	<dir>/meta.json
//	<dir>/cells/<key[:2]>/<key>.json     loose cells (one file each)
//	<dir>/segments/seg-NNNNNN.jsonl      compacted cells (append-only)
//	<dir>/segments/index.json            key -> (segment, offset, length)
//
// Writes are atomic (temp file + rename in the same directory), so a
// killed campaign never leaves a partial cell behind: a cell file either
// exists and is complete, or does not exist. That single invariant is
// what makes campaigns resumable by construction.
//
// Compact folds finished loose cells into indexed segments so
// million-cell campaigns don't mean a million files; lookups consult the
// loose tier first and fall back to the segment index, and the segment
// entry is indexed before its loose file is removed, so compaction is
// safe to run while a coordinator keeps writing fresh results.
//
// A Store is safe for concurrent use by multiple goroutines of one
// process. Write ownership across processes is not arbitrated: exactly
// one process (a campaign run, or a serve coordinator) should write and
// compact a given store at a time.
type Store struct {
	dir string

	mu  sync.Mutex
	idx map[string]segRef // compacted cells, loaded at Open
	seq int               // last allocated segment number
	// warn reports recoverable store damage (a truncated or corrupt cell
	// that will be treated as missing and re-run).
	warn func(format string, args ...any)
}

// ensureStoreDir normalizes store directory creation for every path
// that makes one — `syncsim campaign -store`, `syncsim serve -store`,
// workers, and the library API all funnel through it. It creates the
// directory and its parents plus the cells/ and segments/ tiers, all
// with one consistent mode.
func ensureStoreDir(dir string) error {
	if dir == "" {
		return errors.New("campaign: empty store directory")
	}
	for _, sub := range []string{"", "cells", "segments"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), storeDirMode); err != nil {
			return fmt.Errorf("campaign: creating store: %w", err)
		}
	}
	return nil
}

// Open opens or creates a store directory (parents included).
func Open(dir string) (*Store, error) {
	if err := ensureStoreDir(dir); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(metaPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		blob, err := json.Marshal(storeMeta{Version: storeVersion})
		if err != nil {
			return nil, err
		}
		if err := writeAtomic(metaPath, append(blob, '\n')); err != nil {
			return nil, fmt.Errorf("campaign: writing store meta: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("campaign: reading store meta: %w", err)
	default:
		var meta storeMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("campaign: corrupt store meta %s: %w", metaPath, err)
		}
		if meta.Version != storeVersion {
			return nil, fmt.Errorf("campaign: store %s has version %d, this binary speaks %d",
				dir, meta.Version, storeVersion)
		}
	}
	s := &Store{dir: dir, warn: log.Printf}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetWarn replaces the destination of recoverable-damage warnings
// (default log.Printf). A nil fn silences them.
func (s *Store) SetWarn(fn func(format string, args ...any)) {
	if fn == nil {
		fn = func(string, ...any) {}
	}
	s.mu.Lock()
	s.warn = fn
	s.mu.Unlock()
}

func (s *Store) warnf(format string, args ...any) {
	s.mu.Lock()
	fn := s.warn
	s.mu.Unlock()
	fn(format, args...)
}

func (s *Store) cellPath(key string) string {
	return filepath.Join(s.dir, "cells", key[:2], key+".json")
}

// decodeCell parses one cell document, enforcing the key it must carry.
func decodeCell(data []byte, key string) (harness.Result, error) {
	var cell cellFile
	if err := json.Unmarshal(data, &cell); err != nil {
		return harness.Result{}, err
	}
	if cell.Key != key {
		return harness.Result{}, fmt.Errorf("document claims key %s", cell.Key)
	}
	return cell.Result, nil
}

// Get returns the stored result for key, reporting whether it exists.
// A truncated or corrupt cell — a crash artifact, a torn copy, bit rot —
// is logged and treated as missing, so the campaign re-runs that one
// cell instead of refusing to make progress; the fresh result overwrites
// the damage. (Only I/O failures below the JSON layer are errors.)
func (s *Store) Get(key string) (harness.Result, bool, error) {
	data, err := os.ReadFile(s.cellPath(key))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return s.getCompacted(key)
	case err != nil:
		return harness.Result{}, false, fmt.Errorf("campaign: reading cell %s: %w", key, err)
	}
	res, derr := decodeCell(data, key)
	if derr != nil {
		s.warnf("campaign: store %s: corrupt cell %s (%v); treating as missing, it will be re-run", s.dir, key, derr)
		return s.getCompacted(key)
	}
	return res, true, nil
}

// Put stores the result under key, atomically. Series and pulse logs are
// not persisted: cells are the statistical unit of a campaign, and
// storing full time series would make store size proportional to
// simulated time rather than to the number of cells. A key the segment
// index already answers is a no-op: results are content-addressed, so a
// duplicate report carries byte-identical data by construction.
func (s *Store) Put(key string, res harness.Result) error {
	s.mu.Lock()
	_, compacted := s.idx[key]
	s.mu.Unlock()
	if compacted {
		return nil
	}
	res.Series = nil
	res.Pulses = nil
	// Encode through a pooled buffer: Put runs once per settled cell, and
	// a coordinator absorbing a fleet's reports would otherwise allocate
	// a fresh multi-KB blob per RPC. Encoder.Encode appends the trailing
	// newline Marshal+append used to.
	b := putBufPool.Get().(*putBuf)
	defer putBufPool.Put(b)
	b.buf.Reset()
	if err := b.enc.Encode(cellFile{Version: storeVersion, Key: key, Result: res}); err != nil {
		return fmt.Errorf("campaign: encoding cell %s: %w", key, err)
	}
	path := s.cellPath(key)
	if err := os.MkdirAll(filepath.Dir(path), storeDirMode); err != nil {
		return fmt.Errorf("campaign: creating cell shard: %w", err)
	}
	if err := writeAtomic(path, b.buf.Bytes()); err != nil {
		return fmt.Errorf("campaign: writing cell %s: %w", key, err)
	}
	return nil
}

// putBuf is Put's pooled encode scratch.
type putBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var putBufPool = sync.Pool{New: func() any {
	b := &putBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// looseCells walks the one-file-per-cell tier, yielding (key, path) in
// deterministic (lexical) order.
func (s *Store) looseCells() ([][2]string, error) {
	var out [][2]string
	err := filepath.WalkDir(filepath.Join(s.dir, "cells"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if !d.IsDir() && filepath.Ext(name) == ".json" && !strings.HasPrefix(name, ".") {
			out = append(out, [2]string{strings.TrimSuffix(name, ".json"), path})
		}
		return nil
	})
	return out, err
}

// Len counts the distinct completed cells in the store, across both the
// loose and compacted tiers.
func (s *Store) Len() (int, error) {
	loose, err := s.looseCells()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.idx)
	for _, kp := range loose {
		if _, ok := s.idx[kp[0]]; !ok {
			n++
		}
	}
	return n, nil
}

// writeAtomic writes data to path via a temp file and rename, so
// concurrent readers (and crashed writers) never observe a torn file.
// The published file carries the store-wide mode rather than
// CreateTemp's private 0600.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Chmod(storeFileMode)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
