package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"optsync/internal/harness"
)

// storeVersion is bumped whenever the cell file format (or the meaning
// of a spec key) changes incompatibly; Open refuses stores written by a
// different version rather than silently serving stale answers.
const storeVersion = 1

// storeMeta is the store's self-description, written once at creation.
type storeMeta struct {
	Version int `json:"version"`
}

// cellFile is the on-disk form of one completed cell. The key is
// repeated inside the file so a store survives being rsynced or having
// files inspected in isolation.
type cellFile struct {
	Version int            `json:"version"`
	Key     string         `json:"key"`
	Result  harness.Result `json:"result"`
}

// Store is a content-addressed directory of completed runs, keyed by
// canonical spec hash (harness.SpecKey). Layout:
//
//	<dir>/meta.json
//	<dir>/cells/<key[:2]>/<key>.json
//
// Writes are atomic (temp file + rename in the same directory), so a
// killed campaign never leaves a partial cell behind: a cell file either
// exists and is complete, or does not exist. That single invariant is
// what makes campaigns resumable by construction.
type Store struct {
	dir string
}

// Open opens or creates a store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaign: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating store: %w", err)
	}
	metaPath := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(metaPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		blob, err := json.Marshal(storeMeta{Version: storeVersion})
		if err != nil {
			return nil, err
		}
		if err := writeAtomic(metaPath, append(blob, '\n')); err != nil {
			return nil, fmt.Errorf("campaign: writing store meta: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("campaign: reading store meta: %w", err)
	default:
		var meta storeMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("campaign: corrupt store meta %s: %w", metaPath, err)
		}
		if meta.Version != storeVersion {
			return nil, fmt.Errorf("campaign: store %s has version %d, this binary speaks %d",
				dir, meta.Version, storeVersion)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) cellPath(key string) string {
	return filepath.Join(s.dir, "cells", key[:2], key+".json")
}

// Get returns the stored result for key, reporting whether it exists. A
// present-but-unreadable cell is an error, not a miss: recomputing over
// a corrupt store would silently fork its history.
func (s *Store) Get(key string) (harness.Result, bool, error) {
	data, err := os.ReadFile(s.cellPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return harness.Result{}, false, nil
	}
	if err != nil {
		return harness.Result{}, false, fmt.Errorf("campaign: reading cell %s: %w", key, err)
	}
	var cell cellFile
	if err := json.Unmarshal(data, &cell); err != nil {
		return harness.Result{}, false, fmt.Errorf("campaign: corrupt cell %s: %w", key, err)
	}
	if cell.Key != key {
		return harness.Result{}, false, fmt.Errorf("campaign: cell file %s claims key %s", key, cell.Key)
	}
	return cell.Result, true, nil
}

// Put stores the result under key, atomically. Series and pulse logs are
// not persisted: cells are the statistical unit of a campaign, and
// storing full time series would make store size proportional to
// simulated time rather than to the number of cells.
func (s *Store) Put(key string, res harness.Result) error {
	res.Series = nil
	res.Pulses = nil
	blob, err := json.Marshal(cellFile{Version: storeVersion, Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("campaign: encoding cell %s: %w", key, err)
	}
	path := s.cellPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: creating cell shard: %w", err)
	}
	if err := writeAtomic(path, append(blob, '\n')); err != nil {
		return fmt.Errorf("campaign: writing cell %s: %w", key, err)
	}
	return nil
}

// Len counts the completed cells in the store.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "cells"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// writeAtomic writes data to path via a temp file and rename, so
// concurrent readers (and crashed writers) never observe a torn file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
