package campaign

import (
	"context"
	"strings"
	"testing"

	"optsync/internal/harness"
)

// searchCampaign sweeps dmax over 8 ascending values for two faulty
// counts. The test predicate passes while dmax <= limit — monotone along
// the axis by construction, while still exercising real simulations
// through the store and the engine.
func searchCampaign() Campaign {
	return Campaign{
		Name: "search",
		Base: testSpec(1),
		Axes: []Axis{
			{Field: "faulty", Values: Ints(0, 1)},
			{Field: "dmax", Values: Floats(0.004, 0.006, 0.008, 0.010, 0.012, 0.014, 0.016, 0.018)},
		},
	}
}

func dmaxPasses(r harness.Result) bool { return r.Spec.Params.DMax <= 0.0105 }

// Acceptance: threshold search finds the same breaking point as the
// exhaustive grid with at most half the runs.
func TestSearchMatchesExhaustiveWithHalfTheRuns(t *testing.T) {
	c := searchCampaign()

	// Exhaustive reference: the full grid, scanned for the last passing
	// value per group.
	full, err := Run(context.Background(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive := make(map[string]string) // group (sans dmax) -> last passing dmax
	for i, cell := range full.Cells {
		key := "faulty=" + cell.Values[0]
		if dmaxPasses(full.Results[i]) {
			exhaustive[key] = cell.Values[1]
		}
	}

	report, err := RunSearch(context.Background(), c,
		Search{Axis: "dmax", Passes: dmaxPasses}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(report.Groups))
	}
	for _, g := range report.Groups {
		if g.LastPass != exhaustive[g.Key] {
			t.Fatalf("group %q: search found %q, exhaustive found %q",
				g.Key, g.LastPass, exhaustive[g.Key])
		}
		if g.FirstFail != "0.012" {
			t.Fatalf("group %q: first fail = %q", g.Key, g.FirstFail)
		}
	}
	if total := report.Executed + report.CacheHits; 2*total > report.ExhaustiveCells {
		t.Fatalf("search settled %d of %d cells — more than half", total, report.ExhaustiveCells)
	}
	text := report.Table().Render()
	if !strings.Contains(text, "0.01") || !strings.Contains(text, "0.012") {
		t.Fatalf("search table missing bracket:\n%s", text)
	}
}

func TestSearchSharesTheStore(t *testing.T) {
	c := searchCampaign()
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunSearch(context.Background(), c,
		Search{Axis: "dmax", Passes: dmaxPasses}, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 {
		t.Fatal("first search executed nothing")
	}
	// Repeating the search costs zero executions.
	again, err := RunSearch(context.Background(), c,
		Search{Axis: "dmax", Passes: dmaxPasses}, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.CacheHits != first.Executed {
		t.Fatalf("repeat search recomputed: executed=%d hits=%d", again.Executed, again.CacheHits)
	}
	// And a later full campaign reuses every searched cell.
	report, err := Run(context.Background(), c, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheHits != first.Executed {
		t.Fatalf("full campaign reused %d cells, search settled %d",
			report.CacheHits, first.Executed)
	}
}

func TestSearchBoundaryBrackets(t *testing.T) {
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "dmax", Values: Floats(0.004, 0.008)}},
	}
	// Everything passes: no FirstFail.
	all, err := RunSearch(context.Background(), c,
		Search{Axis: "dmax", Passes: func(harness.Result) bool { return true }}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := all.Groups[0]; g.LastPass != "0.008" || g.FirstFail != "" {
		t.Fatalf("all-pass bracket = %+v", g)
	}
	// Nothing passes: no LastPass.
	none, err := RunSearch(context.Background(), c,
		Search{Axis: "dmax", Passes: func(harness.Result) bool { return false }}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := none.Groups[0]; g.LastPass != "" || g.FirstFail != "0.004" {
		t.Fatalf("all-fail bracket = %+v", g)
	}
}

func TestSearchDefaultPredicateIsWithinSkew(t *testing.T) {
	// A fault-free sweep over reasonable delay bounds meets the paper's
	// agreement bound everywhere: the default predicate must say so.
	c := Campaign{
		Base: testSpec(1),
		Axes: []Axis{{Field: "dmax", Values: Floats(0.008, 0.010)}},
	}
	report, err := RunSearch(context.Background(), c, Search{Axis: "dmax"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := report.Groups[0]; g.LastPass != "0.01" || g.FirstFail != "" {
		t.Fatalf("default predicate bracket = %+v", g)
	}
}

func TestSearchValidation(t *testing.T) {
	c := searchCampaign()
	if _, err := RunSearch(context.Background(), c, Search{Axis: "period"}, Options{}); err == nil {
		t.Fatal("non-axis search accepted")
	}
	sampled := searchCampaign()
	sampled.Samples = 4
	if _, err := RunSearch(context.Background(), sampled, Search{Axis: "dmax"}, Options{}); err == nil {
		t.Fatal("sampled campaign accepted: bisection over grid holes would report unrun thresholds")
	}
	c.Axes = append(c.Axes, Axis{Field: "seed", Values: Ints(1, 2)})
	if _, err := RunSearch(context.Background(), c, Search{Axis: "seed"}, Options{}); err == nil {
		t.Fatal("seed-axis search accepted")
	}
}
