package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"optsync/internal/harness"
)

// storeFixture runs a handful of distinct cells and Puts them.
func storeFixture(t *testing.T, store *Store, n int) ([]string, []harness.Result) {
	t.Helper()
	keys := make([]string, n)
	results := make([]harness.Result, n)
	for i := 0; i < n; i++ {
		spec := testSpec(int64(i + 1))
		key, err := harness.SpecKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, spec)
		if err := store.Put(key, res); err != nil {
			t.Fatal(err)
		}
		keys[i], results[i] = key, res
	}
	return keys, results
}

func TestCompactRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	keys, results := storeFixture(t, store, 4)

	stats, err := store.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 4 || stats.Segment == "" {
		t.Fatalf("Compact stats = %+v, want 4 compacted into a segment", stats)
	}
	// The loose tier is gone; every cell still answers, byte-equal.
	loose, err := store.looseCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) != 0 {
		t.Fatalf("%d loose cells survive compaction", len(loose))
	}
	for i, key := range keys {
		got, ok, err := store.Get(key)
		if err != nil || !ok {
			t.Fatalf("compacted Get(%s) = ok=%v err=%v", key[:8], ok, err)
		}
		if got.MaxSkew != results[i].MaxSkew || got.TotalMsgs != results[i].TotalMsgs {
			t.Fatalf("compacted cell %d drifted", i)
		}
	}
	if n, err := store.Len(); err != nil || n != 4 {
		t.Fatalf("Len after compaction = %d, %v", n, err)
	}

	// A reopened store loads the index and still serves everything.
	store2, err := Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if store2.CompactedLen() != 4 {
		t.Fatalf("reopened CompactedLen = %d", store2.CompactedLen())
	}
	for _, key := range keys {
		if _, ok, err := store2.Get(key); err != nil || !ok {
			t.Fatalf("reopened compacted Get = ok=%v err=%v", ok, err)
		}
	}
}

// TestCompactIncremental checks that repeated passes only move fresh
// cells, and mixed loose+compacted stores count and serve correctly.
func TestCompactIncremental(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := storeFixture(t, store, 2)
	if _, err := store.Compact(); err != nil {
		t.Fatal(err)
	}

	// Two more cells arrive after the first pass.
	spec := testSpec(100)
	key3, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key3, mustRun(t, spec)); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.Len(); n != 3 {
		t.Fatalf("mixed-tier Len = %d, want 3", n)
	}
	stats, err := store.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 1 {
		t.Fatalf("second pass compacted %d cells, want 1", stats.Compacted)
	}
	if store.CompactedLen() != 3 {
		t.Fatalf("CompactedLen = %d, want 3", store.CompactedLen())
	}
	// A duplicate Put of a compacted key is a no-op (content-addressed).
	if err := store.Put(keys[0], harness.Result{}); err != nil {
		t.Fatal(err)
	}
	if loose, _ := store.looseCells(); len(loose) != 0 {
		t.Fatal("duplicate Put of a compacted key re-created a loose file")
	}

	// An empty pass is a no-op.
	stats, err = store.Compact()
	if err != nil || stats.Compacted != 0 || stats.Segment != "" {
		t.Fatalf("idle Compact = %+v, %v", stats, err)
	}
}

// TestCompactConcurrentWithPut drives Put traffic from several
// goroutines while Compact runs repeatedly — the coordinator's exact
// write pattern — and requires every key to remain readable throughout
// and afterwards.
func TestCompactConcurrentWithPut(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, testSpec(1))
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	keys := make([][]string, writers)
	for w := 0; w < writers; w++ {
		w := w
		keys[w] = make([]string, perWriter)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Distinct synthetic keys; the result payload is shared
				// (only store mechanics are under test here).
				key := fmt.Sprintf("%02x%062x", w, i)
				keys[w][i] = key
				r := res
				if err := store.Put(key, r); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := store.Get(key); err != nil || !ok {
					t.Errorf("Get(%s) after Put = ok=%v err=%v", key[:4], ok, err)
					return
				}
			}
		}()
	}
	compactDone := make(chan error, 1)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := store.Compact(); err != nil {
				compactDone <- err
				return
			}
		}
		compactDone <- nil
	}()
	wg.Wait()
	if err := <-compactDone; err != nil {
		t.Fatal(err)
	}
	if _, err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	for w := range keys {
		for _, key := range keys[w] {
			if _, ok, err := store.Get(key); err != nil || !ok {
				t.Fatalf("key %s lost across concurrent compaction: ok=%v err=%v", key[:4], ok, err)
			}
		}
	}
	if n, err := store.Len(); err != nil || n != writers*perWriter {
		t.Fatalf("Len = %d, %v; want %d", n, err, writers*perWriter)
	}
}

// TestCompactDropsCorruptCells: a torn loose cell is logged, removed,
// and simply absent afterwards (so it re-runs) — it must not poison the
// segment.
func TestCompactDropsCorruptCells(t *testing.T) {
	store, err := Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	var warned bool
	store.SetWarn(func(format string, args ...any) { warned = true })
	keys, _ := storeFixture(t, store, 2)
	torn := filepath.Join(store.Dir(), "cells", keys[0][:2], keys[0]+".json")
	if err := os.WriteFile(torn, []byte(`{"version":1,"key":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := store.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 1 || stats.Skipped != 1 || !warned {
		t.Fatalf("Compact over torn cell = %+v warned=%v", stats, warned)
	}
	if _, ok, _ := store.Get(keys[0]); ok {
		t.Fatal("torn cell still answers")
	}
	if _, ok, err := store.Get(keys[1]); err != nil || !ok {
		t.Fatalf("healthy cell lost: ok=%v err=%v", ok, err)
	}
}

// TestCorruptIndexIsRecoverable: a destroyed index degrades to "those
// cells re-run", never to a dead store.
func TestCorruptIndexIsRecoverable(t *testing.T) {
	dir := t.TempDir() + "/store"
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := storeFixture(t, store, 2)
	if _, err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "segments", "index.json"), []byte("{bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The warning fired during Open (default logger); the contract under
	// test is the clean miss: the cell re-runs instead of erroring out.
	if _, ok, err := store2.Get(keys[0]); err != nil || ok {
		t.Fatalf("Get over lost index = ok=%v err=%v, want clean miss", ok, err)
	}
	res := mustRun(t, testSpec(1))
	if err := store2.Put(keys[0], res); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store2.Get(keys[0]); err != nil || !ok {
		t.Fatalf("re-run after index loss unreadable: ok=%v err=%v", ok, err)
	}
}
