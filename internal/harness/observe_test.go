package harness

import (
	"context"
	"testing"

	"optsync/internal/core/bounds"
	"optsync/internal/probe"
)

func observeTestSpec() Spec {
	p := bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho: 1e-4, DMin: 0.002, DMax: 0.01,
		Period: 1.0, InitialSkew: 0.005,
	}.WithDefaults()
	return Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 8, Seed: 42,
	}
}

// TestProbesDoNotPerturbResults is the determinism half of the probe
// contract: a heavily observed run must produce a Result byte-identical
// to an unobserved one (the golden test pins the unobserved baseline).
func TestProbesDoNotPerturbResults(t *testing.T) {
	spec := observeTestSpec()
	plain, err := RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	observed, err := RunObserved(context.Background(), spec, func(_ Spec, bus *probe.Bus) {
		bus.Attach(probe.Func(func(probe.Event) { events++ }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("probe saw no events")
	}
	if recordOf(plain) != recordOf(observed) {
		t.Fatalf("probes perturbed the run:\n plain    %+v\n observed %+v",
			recordOf(plain), recordOf(observed))
	}
}

// TestRunObservedEventStream sanity-checks the cross-layer stream: the
// built-in collectors and a user spread collector must agree with the
// Result computed by the harness itself.
func TestRunObservedEventStream(t *testing.T) {
	spec := observeTestSpec()
	msgs := probe.NewMsgStats()
	spread := probe.NewSpreadStats()
	boots := 0
	res, err := RunObserved(context.Background(), spec, func(_ Spec, bus *probe.Bus) {
		bus.AttachCollector(msgs)
		bus.AttachCollector(spread)
		bus.Attach(probe.Func(func(probe.Event) { boots++ }), probe.TypeNodeBoot)
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs.Sent() != res.TotalMsgs {
		t.Fatalf("collector sent %d != Result.TotalMsgs %d", msgs.Sent(), res.TotalMsgs)
	}
	if msgs.Delivered() != res.Delivered {
		t.Fatalf("collector delivered %d != Result.Delivered %d", msgs.Delivered(), res.Delivered)
	}
	if boots != spec.Params.N {
		t.Fatalf("boot events = %d, want %d", boots, spec.Params.N)
	}
	// Spread over all pulses (incl. none here from faulty silent nodes)
	// must cover at least the complete rounds the report counted.
	if spread.Rounds() < res.CompleteRounds {
		t.Fatalf("spread collector saw %d rounds < %d complete", spread.Rounds(), res.CompleteRounds)
	}
}

// TestRunObservedSkewQuantiles: the new Result percentiles must be
// internally consistent and bounded by MaxSkew.
func TestRunObservedSkewQuantiles(t *testing.T) {
	res, err := RunContext(context.Background(), observeTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewP50 <= 0 || res.SkewP95 < res.SkewP50 || res.SkewP99 < res.SkewP95 {
		t.Fatalf("quantiles disordered: p50=%v p95=%v p99=%v", res.SkewP50, res.SkewP95, res.SkewP99)
	}
	if res.SkewP99 > res.MaxSkew {
		t.Fatalf("p99 %v > max %v", res.SkewP99, res.MaxSkew)
	}
}

// TestPartitionMarkerEvents: scheduled partition windows surface as cut
// and heal marker events at the right instants.
func TestPartitionMarkerEvents(t *testing.T) {
	spec := observeTestSpec()
	spec.FaultyCount = 0
	spec.Attack = AttackNone
	spec.Horizon = 12
	spec.Partitions = []Partition{{At: 3, Heal: 6, LeftSize: 2}, {At: 9, Heal: 0, LeftSize: 1}}
	var marks []probe.Event
	_, err := RunObserved(context.Background(), spec, func(_ Spec, bus *probe.Bus) {
		bus.Attach(probe.Func(func(ev probe.Event) {
			marks = append(marks, ev)
		}), probe.TypePartitionCut, probe.TypePartitionHeal)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 3 {
		t.Fatalf("marker events = %+v, want cut@3, heal@6, cut@9", marks)
	}
	if marks[0].Type != probe.TypePartitionCut || marks[0].T != 3 || marks[0].To != 2 {
		t.Fatalf("cut marker = %+v", marks[0])
	}
	if marks[1].Type != probe.TypePartitionHeal || marks[1].T != 6 || marks[1].To != 2 {
		t.Fatalf("heal marker = %+v", marks[1])
	}
	if marks[2].Type != probe.TypePartitionCut || marks[2].T != 9 || marks[2].To != 1 {
		t.Fatalf("unhealed cut marker = %+v", marks[2])
	}
}

// TestScenarioErrorsSurface: a scenario hitting a malformed spec must
// return an error, not panic (the batch path used to panic).
func TestScenarioErrorsSurface(t *testing.T) {
	if _, err := runAll([]Spec{{Algo: "no-such-algo", Params: observeTestSpec().Params}}); err == nil {
		t.Fatal("runAll swallowed a malformed spec")
	}
	if _, err := startedCluster(Spec{Algo: "no-such-algo", Params: observeTestSpec().Params}.withDefaults()); err == nil {
		t.Fatal("startedCluster swallowed a malformed spec")
	}
}
