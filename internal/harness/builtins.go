package harness

import (
	"fmt"

	"optsync/internal/adversary"
	"optsync/internal/baseline"
	"optsync/internal/core"
	"optsync/internal/node"
)

// Built-in registrations: the paper's two algorithms, the two prior-art
// baselines, and the seven attack behaviours. Everything the harness once
// hard-wired through switch statements now goes through the same registry
// that external packages extend with RegisterProtocol / RegisterAttack.

func init() {
	RegisterProtocol(AlgoAuth, func(spec Spec) (node.Protocol, error) {
		return core.NewAuth(coreConfig(spec)), nil
	}, WithEnvelope(stEnvelope))

	RegisterProtocol(AlgoPrim, func(spec Spec) (node.Protocol, error) {
		return core.NewPrimitive(coreConfig(spec)), nil
	}, WithEnvelope(stEnvelope))

	RegisterProtocol(AlgoCNV, func(spec Spec) (node.Protocol, error) {
		return baseline.NewCNV(baselineConfig(spec), spec.CNVDelta), nil
	})

	RegisterProtocol(AlgoFTM, func(spec Spec) (node.Protocol, error) {
		return baseline.NewFTM(baselineConfig(spec)), nil
	})

	// AttackNone is only registered for name validation: withDefaults
	// forces FaultyCount to 0, so the builder never actually runs on a
	// node. Falling back to correct behaviour keeps it harmless anyway.
	RegisterAttack(AttackNone, func(spec Spec, _ AttackEnv) (node.Protocol, error) {
		return NewProtocol(spec)
	})

	RegisterAttack(AttackSilent, func(Spec, AttackEnv) (node.Protocol, error) {
		return adversary.Silent{}, nil
	})

	RegisterAttack(AttackCrashMid, func(spec Spec, _ AttackEnv) (node.Protocol, error) {
		inner, err := NewProtocol(spec)
		if err != nil {
			return nil, err
		}
		return &adversary.CrashAt{Inner: inner, At: spec.Horizon / 2}, nil
	})

	RegisterAttack(AttackRush, func(spec Spec, env AttackEnv) (node.Protocol, error) {
		if spec.Algo == AlgoPrim {
			return &adversary.PrimRush{Interval: spec.RushInterval, Rounds: env.RushRounds}, nil
		}
		return &adversary.AuthRush{
			Coalition: env.Coalition,
			Leader:    env.Leader,
			Interval:  spec.RushInterval,
			Rounds:    env.RushRounds,
		}, nil
	})

	RegisterAttack(AttackBias, func(spec Spec, _ AttackEnv) (node.Protocol, error) {
		proto, err := NewProtocol(spec)
		if err != nil {
			return nil, err
		}
		inner, ok := proto.(*baseline.Protocol)
		if !ok {
			return nil, fmt.Errorf("harness: bias attack targets baselines, not %q", spec.Algo)
		}
		return &adversary.BiasedReporter{Inner: inner, Bias: spec.Bias}, nil
	})

	RegisterAttack(AttackEquivocate, func(spec Spec, _ AttackEnv) (node.Protocol, error) {
		p := spec.Params
		return &adversary.Equivocator{
			Cfg:     core.ConfigFromBounds(p),
			TargetA: 0, TargetB: 1,
			Rounds: int(spec.Horizon/p.Period) + 1,
		}, nil
	})

	RegisterAttack(AttackSelective, func(spec Spec, _ AttackEnv) (node.Protocol, error) {
		if spec.Algo != AlgoAuth {
			return nil, fmt.Errorf("harness: selective attack targets the auth algorithm, not %q", spec.Algo)
		}
		p := spec.Params
		targets := make(map[node.ID]bool)
		correct := p.N - spec.FaultyCount
		for i := 0; i < correct/2; i++ {
			targets[i] = true
		}
		return &adversary.SelectiveSigner{
			Cfg:     core.ConfigFromBounds(p),
			Targets: targets,
			Rounds:  int(spec.Horizon/p.Period) + 1,
			Lead:    p.Period / 4,
		}, nil
	})
}

func coreConfig(spec Spec) core.Config {
	cfg := core.ConfigFromBounds(spec.Params)
	cfg.ColdStart = spec.ColdStart
	cfg.DisableRelay = spec.DisableRelay
	return cfg
}

func baselineConfig(spec Spec) baseline.Config {
	p := spec.Params
	return baseline.Config{
		Period: p.Period,
		Window: spec.Window,
		DMin:   p.DMin, DMax: p.DMax,
		F: p.F,
	}
}

// stEnvelope is the accuracy envelope of the two Srikanth-Toueg
// algorithms: the hardware rate interval widened by the provably
// unavoidable alpha/P and (beta+dmax)/P correction terms.
func stEnvelope(spec Spec, span float64) (lo, hi float64) {
	return spec.Params.EnvelopeRateBoundsOver(span)
}
