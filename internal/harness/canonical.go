package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalSpec returns the spec in the form under which two specs
// describe the same computation: defaults applied (so an explicit value
// and the default it resolves to hash identically) and presentation-only
// fields cleared. Name labels output rows, KeepSeries only controls how
// much of the result is retained, and Shards selects the execution
// strategy (the sharded engine is bit-identical to serial at any shard
// count) — none changes a single simulated event, so none participates
// in content addressing.
func CanonicalSpec(spec Spec) Spec {
	spec = spec.withDefaults()
	spec.Name = ""
	spec.KeepSeries = false
	spec.Shards = 0
	return spec
}

// SpecKey returns the stable content address of a spec: the hex SHA-256
// of the canonical spec's JSON encoding. encoding/json sorts map keys
// (StartAt, ClockOffset) and emits shortest round-trip floats, so the
// key is deterministic across processes and platforms. Adding a field to
// Spec changes every key, which is exactly right: old cached results
// were computed without the field and cannot answer for specs that have
// it.
func SpecKey(spec Spec) (string, error) {
	data, err := json.Marshal(CanonicalSpec(spec))
	if err != nil {
		return "", fmt.Errorf("harness: canonicalizing spec %q: %w", spec.Name, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
