package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
)

// The golden test pins the numeric results of a representative spec slate
// so that refactors of the message path (typed envelopes, batched
// delivery, event pooling, topologies) can prove they leave default
// full-mesh simulations byte-identical. Regenerate with
//
//	go test ./internal/harness -run TestGoldenResults -update-golden
//
// only when a behaviour change is intended and reviewed.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden results file")

func goldenParams(n int, v bounds.Variant) bounds.Params {
	return bounds.Params{
		N: n, F: v.MaxFaults(n), Variant: v,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

// goldenSpecs covers every built-in algorithm, the attack family, and the
// spec knobs that alter cluster construction (spread delays, slew,
// cold start, staggered boots, pinned offsets).
func goldenSpecs() []Spec {
	pa7 := goldenParams(7, bounds.Auth)
	pa5 := goldenParams(5, bounds.Auth)
	pp7 := goldenParams(7, bounds.Primitive)
	return []Spec{
		{Name: "auth-none", Algo: AlgoAuth, Params: pa7, Attack: AttackNone, Horizon: 20, Seed: 1},
		{Name: "auth-silent", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSilent, Horizon: 20, Seed: 2},
		{Name: "auth-crash-mid", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackCrashMid, Horizon: 20, Seed: 3},
		{Name: "auth-rush-beyond", Algo: AlgoAuth, Params: pa5, FaultyCount: pa5.F + 1, Attack: AttackRush, RushInterval: pa5.Period / 5, Horizon: 20, Seed: 4},
		{Name: "auth-equivocate", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackEquivocate, Horizon: 20, Seed: 5},
		{Name: "auth-selective", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSelective, Horizon: 20, Seed: 6},
		{Name: "auth-spread", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSilent, SpreadDelays: true, Horizon: 20, Seed: 7},
		{Name: "auth-slew", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSilent, SlewRate: 0.1, Horizon: 20, Seed: 8},
		{Name: "auth-coldstart", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSilent, ColdStart: true, Horizon: 20, Seed: 9},
		{Name: "auth-reintegration", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSilent, Horizon: 20, Seed: 10,
			StartAt: map[int]float64{1: 7.25}, ClockOffset: map[int]float64{1: 0.004}},
		{Name: "auth-norelay", Algo: AlgoAuth, Params: pa7, FaultyCount: pa7.F, Attack: AttackSilent, DisableRelay: true, Horizon: 20, Seed: 11},
		{Name: "prim-silent", Algo: AlgoPrim, Params: pp7, FaultyCount: pp7.F, Attack: AttackSilent, Horizon: 20, Seed: 12},
		{Name: "prim-rush-beyond", Algo: AlgoPrim, Params: pp7, FaultyCount: pp7.F + 1, Attack: AttackRush, RushInterval: pp7.Period / 5, Horizon: 20, Seed: 13},
		{Name: "cnv-bias", Algo: AlgoCNV, Params: pp7, FaultyCount: pp7.F, Attack: AttackBias, Bias: 3 * pp7.Dmax(), Horizon: 30, Seed: 14},
		{Name: "ftm-silent", Algo: AlgoFTM, Params: pp7, FaultyCount: pp7.F, Attack: AttackSilent, Horizon: 30, Seed: 15},
	}
}

// goldenRecord snapshots every numeric observable of a Result with
// full-precision decimal strings ('g', -1 round-trips float64 exactly).
type goldenRecord struct {
	Name           string `json:"name"`
	MaxSkew        string `json:"max_skew"`
	MaxSpread      string `json:"max_spread"`
	MinPeriod      string `json:"min_period"`
	MaxPeriod      string `json:"max_period"`
	EnvLo          string `json:"env_lo"`
	EnvHi          string `json:"env_hi"`
	CompleteRounds int    `json:"complete_rounds"`
	PulseCount     int    `json:"pulse_count"`
	TotalMsgs      uint64 `json:"total_msgs"`
}

func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func recordOf(res Result) goldenRecord {
	return goldenRecord{
		Name:           res.Spec.Name,
		MaxSkew:        fg(res.MaxSkew),
		MaxSpread:      fg(res.MaxSpread),
		MinPeriod:      fg(res.MinPeriod),
		MaxPeriod:      fg(res.MaxPeriod),
		EnvLo:          fg(res.EnvLo),
		EnvHi:          fg(res.EnvHi),
		CompleteRounds: res.CompleteRounds,
		PulseCount:     res.PulseCount,
		TotalMsgs:      res.TotalMsgs,
	}
}

const goldenPath = "testdata/golden_default_mesh.json"

func TestGoldenResults(t *testing.T) {
	var got []goldenRecord
	for _, spec := range goldenSpecs() {
		got = append(got, recordOf(Run(spec)))
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten with %d records", len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d records, slate has %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("spec %q drifted from golden results:\n got  %+v\n want %+v",
				got[i].Name, got[i], want[i])
		}
	}
}

// TestGoldenSpecsAreDefaultMesh guards the slate's purpose: these specs
// exercise the default full-mesh topology only, which is exactly the
// surface whose results must never drift.
func TestGoldenSpecsAreDefaultMesh(t *testing.T) {
	for _, spec := range goldenSpecs() {
		if spec.Topology != "" || len(spec.Partitions) > 0 {
			t.Errorf("spec %q is not a default-mesh spec", spec.Name)
		}
	}
}
