package harness

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"optsync/internal/core/bounds"
	"optsync/internal/probe"
)

// runTraced runs a spec and returns both the Result and the binary probe
// trace of every event the run emitted. The trace is the strictest
// equality witness available: it pins the order, timing, and payload of
// each observable event, not just the aggregate report.
func runTraced(t *testing.T, spec Spec) (Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := probe.NewWriter(&buf, probe.FormatBinary)
	res, err := RunObserved(context.Background(), spec, func(_ Spec, bus *probe.Bus) {
		bus.Attach(w)
	})
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("%s: flushing trace: %v", spec.Name, err)
	}
	return res, buf.Bytes()
}

// shardPropertySpecs spans the spec dimensions that stress distinct
// sharded-engine mechanisms: topologies exercise the remote-routing and
// neighbor-list broadcast paths, attacks exercise adversary state
// co-location and payload (non-inline) messages, partitions exercise
// global-lane marker events splitting windows, and the delay variants
// exercise different lookahead derivations.
func shardPropertySpecs() []Spec {
	params := func(n, f int, v bounds.Variant) bounds.Params {
		return bounds.Params{
			N: n, F: f, Variant: v,
			Rho: 1e-4, DMin: 0.002, DMax: 0.01,
			Period: 1.0, InitialSkew: 0.005,
		}.WithDefaults()
	}
	specs := []Spec{
		{Algo: AlgoAuth, Params: params(5, 1, bounds.Auth),
			FaultyCount: 1, Attack: AttackSilent, Seed: 1},
		{Algo: AlgoAuth, Params: params(9, 2, bounds.Auth),
			FaultyCount: 2, Attack: AttackEquivocate, Seed: 2},
		{Algo: AlgoAuth, Params: params(8, 2, bounds.Auth),
			FaultyCount: 2, Attack: AttackSelective, Seed: 3},
		{Algo: AlgoCNV, Params: params(7, 2, bounds.Primitive),
			FaultyCount: 2, Attack: AttackBias, Bias: 0.004, Seed: 4},
		{Algo: AlgoAuth, Params: params(6, 1, bounds.Auth),
			FaultyCount: 1, Attack: AttackCrashMid, Seed: 5, SpreadDelays: true},
		{Algo: AlgoAuth, Params: params(12, 2, bounds.Auth),
			FaultyCount: 2, Attack: AttackSilent, Seed: 6, Topology: "ring:4"},
		{Algo: AlgoPrim, Params: params(9, 2, bounds.Primitive),
			FaultyCount: 0, Attack: AttackNone, Seed: 7, Topology: "wan:3"},
		{Algo: AlgoAuth, Params: params(10, 2, bounds.Auth),
			FaultyCount: 0, Attack: AttackNone, Seed: 8,
			Partitions: []Partition{{At: 2, Heal: 4, LeftSize: 3}, {At: 6, Heal: 0, LeftSize: 2}}},
		{Algo: AlgoAuth, Params: params(8, 2, bounds.Auth),
			FaultyCount: 2, Attack: AttackRush, RushInterval: 0.5, Seed: 9},
		{Algo: AlgoAuth, Params: params(6, 1, bounds.Auth),
			FaultyCount: 0, Attack: AttackNone, Seed: 10, SlewRate: 0.05,
			StartAt: map[int]float64{4: 2.5}},
	}
	for i := range specs {
		specs[i].Horizon = 8
		specs[i].KeepSeries = true
		specs[i].Name = fmt.Sprintf("prop-%d", i)
	}
	return specs
}

// TestShardedMatchesSerial is the bit-exactness contract of the parallel
// engine: for every spec in the property grid, shard counts 2 and 8 must
// reproduce the serial engine's Result (including the full skew series
// and pulse log) and its probe trace byte for byte. It runs under -race
// in CI, so it doubles as the data-race witness for the worker pool,
// cross-shard mailboxes, and barrier merges.
func TestShardedMatchesSerial(t *testing.T) {
	for _, spec := range shardPropertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			serial := spec
			serial.Shards = 1
			wantRes, wantTrace := runTraced(t, serial)
			wantRes.Spec = Spec{}
			for _, k := range []int{2, 8} {
				sharded := spec
				sharded.Shards = k
				gotRes, gotTrace := runTraced(t, sharded)
				gotRes.Spec = Spec{}
				if !reflect.DeepEqual(wantRes, gotRes) {
					t.Errorf("shards=%d result diverged from serial:\n serial  %+v\n sharded %+v", k, wantRes, gotRes)
				}
				if !bytes.Equal(wantTrace, gotTrace) {
					t.Errorf("shards=%d probe trace diverged from serial: %d bytes vs %d (first diff at %d)",
						k, len(wantTrace), len(gotTrace), firstDiff(wantTrace, gotTrace))
				}
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestShardsValidation: negative shard counts are spec errors (not
// panics), zero auto-picks, and counts above N clamp rather than fail.
func TestShardsValidation(t *testing.T) {
	spec := shardPropertySpecs()[0]
	spec.Shards = -1
	if _, err := RunContext(context.Background(), spec); err == nil {
		t.Fatal("Shards=-1 did not error")
	}
	spec.Shards = 0
	if _, err := RunContext(context.Background(), spec); err != nil {
		t.Fatalf("Shards=0 auto-pick failed: %v", err)
	}
	spec.Shards = 64 // N is 5: must clamp, not fail
	if _, err := RunContext(context.Background(), spec); err != nil {
		t.Fatalf("Shards=64 on N=5 failed: %v", err)
	}
}
