package harness

import "context"

// Run is a test-only convenience keeping the pre-PR-4 panic-on-error
// signature for the many tests that drive known-good specs. The library
// surface has no panicking entry point anymore: production callers go
// through RunContext / RunObserved and handle the error.
func Run(spec Spec) Result {
	res, err := RunContext(context.Background(), spec)
	if err != nil {
		panic(err.Error())
	}
	return res
}
