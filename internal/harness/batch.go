package harness

import (
	"context"
	"runtime"
	"sync"

	"optsync/internal/probe"
)

// defaultWorkers is the worker count used when a batch is started with
// workers <= 0 and by the scenario table generators. 0 means GOMAXPROCS.
// It is set once at program start (CLI flag); batches themselves never
// mutate it.
var defaultWorkers int

// SetWorkers sets the default worker-pool size for RunBatch and for the
// scenario/ablation table generators. n <= 0 restores the GOMAXPROCS
// default.
func SetWorkers(n int) { defaultWorkers = n }

// Workers returns the effective default worker-pool size.
func Workers() int {
	if defaultWorkers > 0 {
		return defaultWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// RunBatch executes independent specs concurrently on a bounded pool of
// workers goroutines (Workers() if workers <= 0) and returns the results
// in input order. Each run is single-threaded and deterministic in its
// spec, so the result slice is byte-identical for any worker count.
//
// onResult, if non-nil, is invoked serially (under the batch lock) as
// each run finishes, with the spec's index; completion order is not input
// order. The first error — a malformed spec or ctx cancellation — stops
// the dispatch of further runs and is returned alongside the partial
// results (unfinished entries are zero).
func RunBatch(ctx context.Context, specs []Spec, workers int, onResult func(index int, res Result)) ([]Result, error) {
	return RunBatchObserved(ctx, specs, workers, onResult, nil)
}

// BatchObserve attaches probes for one run of a batch: index is the
// run's position in the expanded spec slice. It is invoked on the worker
// goroutine executing that run, concurrently with other runs' attaches —
// a probe shared across runs must be wrapped with probe.Synchronized
// (the public API does this for WithProbe in batches).
type BatchObserve func(index int, spec Spec, bus *probe.Bus)

// RunBatchObserved is RunBatch with per-run observation attached.
func RunBatchObserved(ctx context.Context, specs []Spec, workers int, onResult func(index int, res Result), attach BatchObserve) ([]Result, error) {
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	next := make(chan int)
	//syncsim:allowlist detrand batch feeder goroutine hands out spec indices; each run itself stays single-threaded and spec-seeded
	go func() {
		defer close(next)
		for i := range specs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//syncsim:allowlist detrand worker pool fans out whole independent runs; per-run determinism is untouched
		go func() {
			defer wg.Done()
			for i := range next {
				var observe Observe
				if attach != nil {
					i := i
					observe = func(spec Spec, bus *probe.Bus) { attach(i, spec, bus) }
				}
				res, err := RunObserved(ctx, specs[i], observe)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				results[i] = res
				if onResult != nil {
					onResult(i, res)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return results, firstErr
}

// runAll is the scenario generators' batch entry point: it fans the specs
// out over the default worker pool. Malformed specs surface as errors
// through Scenario.Run rather than crashing the process.
func runAll(specs []Spec) ([]Result, error) {
	return RunBatch(context.Background(), specs, 0, nil)
}
