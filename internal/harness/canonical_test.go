package harness

import (
	"context"
	"strings"
	"testing"

	"optsync/internal/core/bounds"
)

func keyOf(t *testing.T, spec Spec) string {
	t.Helper()
	key, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestSpecKeyStableAndDiscriminating(t *testing.T) {
	base := Spec{
		Algo: AlgoAuth, Params: defaultParams(5, bounds.Auth),
		FaultyCount: 1, Attack: AttackSilent, Horizon: 8, Seed: 1,
	}
	key := keyOf(t, base)
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		t.Fatalf("key %q is not hex sha256", key)
	}
	if keyOf(t, base) != key {
		t.Fatal("key not stable across calls")
	}

	// Presentation-only fields do not participate.
	named := base
	named.Name = "cell f=1"
	named.KeepSeries = true
	if keyOf(t, named) != key {
		t.Fatal("Name/KeepSeries changed the key")
	}

	// Defaults resolve before hashing: spelling out the default yields
	// the same computation, hence the same key.
	explicit := base
	explicit.Horizon = 8
	explicit.Attack = AttackSilent
	explicit.RushInterval = base.Params.Period / 10
	if keyOf(t, explicit) != key {
		t.Fatal("explicit defaults changed the key")
	}

	// Every physical field participates.
	for name, mutate := range map[string]func(*Spec){
		"seed":    func(s *Spec) { s.Seed = 2 },
		"horizon": func(s *Spec) { s.Horizon = 9 },
		"faulty":  func(s *Spec) { s.FaultyCount = 2 },
		"attack":  func(s *Spec) { s.Attack = AttackCrashMid },
		"algo":    func(s *Spec) { s.Algo = AlgoCNV },
		"dmax":    func(s *Spec) { s.Params.DMax = 0.02 },
		"topo":    func(s *Spec) { s.Topology = "wan:2" },
		"startat": func(s *Spec) { s.StartAt = map[int]float64{1: 2} },
		"parts":   func(s *Spec) { s.Partitions = []Partition{{At: 1, Heal: 2, LeftSize: 2}} },
	} {
		mutated := base
		mutate(&mutated)
		if keyOf(t, mutated) == key {
			t.Fatalf("mutating %s did not change the key", name)
		}
	}
}

// The key computed before a run equals the key of the result's spec
// after the run (RunContext returns the defaulted spec), so a store can
// be addressed from either side.
func TestSpecKeySurvivesRun(t *testing.T) {
	spec := Spec{
		Algo: AlgoAuth, Params: defaultParams(5, bounds.Auth),
		FaultyCount: 1, Attack: AttackSilent, Horizon: 5, Seed: 3,
	}
	before := keyOf(t, spec)
	res, err := RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if after := keyOf(t, res.Spec); after != before {
		t.Fatalf("key drifted across run: %s != %s", after, before)
	}
}
