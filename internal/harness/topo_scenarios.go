package harness

import (
	"context"
	"fmt"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
)

// The W-series experiments exercise the topology layer introduced in
// PR 2: synchronization quality across WAN regions, across a scheduled
// partition/heal cycle, and on sparse graphs. The paper's bounds assume a
// full mesh, so these tables report measured behaviour against the mesh
// baseline rather than against the analytic bounds.

// sparseParams is defaultParams with the resilience dialed down to f=3:
// a process only assembles evidence from its topological neighbourhood,
// so partial connectivity demands f+1 <= min neighbourhood size — the
// resilience/connectivity trade-off sparse deployments impose (W1's
// wan:8 keeps neighbourhoods of 5 and ring:4 of 4, both >= f+1 = 4;
// ring:2 deliberately stays below it).
func sparseParams(n int) bounds.Params {
	return bounds.Params{
		N: n, F: 3, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

// W1SkewVsRegions runs the authenticated algorithm on a ring of cliques
// and sweeps the region count. Every inter-region hop stretches the
// acceptance spread by the hop envelope, so skew grows with region count
// while liveness is preserved — the mesh row (wan:1) is the control.
func W1SkewVsRegions() ([]*Table, error) {
	t := NewTable("W1: skew vs WAN region count (st-auth, n=16, f=3, ring of cliques)",
		"topology", "regions", "max_skew_s", "mesh_bound_s", "complete_rounds", "msgs_per_round")
	var specs []Spec
	for _, regions := range []int{1, 2, 4, 8} {
		specs = append(specs, Spec{
			Name: fmt.Sprintf("wan:%d", regions),
			Algo: AlgoAuth, Params: sparseParams(16),
			Attack:   AttackNone,
			Topology: fmt.Sprintf("wan:%d", regions),
			Horizon:  20, Seed: 21,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(
			res.Spec.Topology, res.Spec.Topology[4:],
			F(res.MaxSkew), F(res.SkewBound),
			fmt.Sprint(res.CompleteRounds), F(res.MsgsPerRound),
		)
	}
	t.AddNote("wan:1 is the full-mesh control; the mesh skew bound does not apply across regions")
	return []*Table{t}, nil
}

// W2PartitionHeal cuts a 7-node cluster 3|4 for ten periods and measures
// convergence after the heal. The minority side (3 < f+1 = 4) cannot
// assemble any round quorum while cut, so its clocks free-run on
// hardware; after the heal the relay step reintegrates it within one
// round. The table reports the skew in each phase.
func W2PartitionHeal() ([]*Table, error) {
	const (
		cutAt  = 10.0
		healAt = 20.0
	)
	p := defaultParams(7, bounds.Auth)
	spec := Spec{
		Name: "partition-heal",
		Algo: AlgoAuth, Params: p,
		Attack:     AttackNone,
		Partitions: []Partition{{At: cutAt, Heal: healAt, LeftSize: 3}},
		Horizon:    35, Seed: 22,
		KeepSeries: true,
	}
	res, err := RunContext(context.Background(), spec)
	if err != nil {
		return nil, err
	}

	// Phase maxima from the sampled series; the post-heal phase skips two
	// periods so reintegration (one round plus delays) has completed.
	var before, during, after float64
	for _, s := range res.Series {
		switch {
		case s.T < cutAt:
			before = max(before, s.Skew)
		case s.T < healAt:
			during = max(during, s.Skew)
		case s.T >= healAt+2*p.Period:
			after = max(after, s.Skew)
		}
	}

	within := func(skew float64, expected bool) string {
		switch {
		case skew <= res.SkewBound:
			return "ok"
		case expected:
			return "exceeded (expected)"
		default:
			return "VIOLATED"
		}
	}
	t := NewTable("W2: convergence across a healed partition (st-auth, n=7, cut 3|4 during [10s,20s))",
		"phase", "max_skew_s", "mesh_bound_s", "within_mesh_bound")
	t.AddRow("before cut", F(before), F(res.SkewBound), within(before, false))
	t.AddRow("during cut", F(during), F(res.SkewBound), within(during, true))
	t.AddRow("after heal (+2P)", F(after), F(res.SkewBound), within(after, false))
	t.AddNote("the minority side (3 < f+1) free-runs while cut — exceeding the mesh bound is the expected cost — then reintegrates via the relay step within one round of the heal")
	return []*Table{t}, nil
}

// W3SparseDegradation runs the authenticated algorithm on circulant
// graphs of shrinking degree. Round evidence now travels hop by hop
// through the relay step, so acceptance spread — and with it skew —
// scales with the graph diameter, while per-round traffic shrinks with
// the degree: the quality/cost trade-off of sparse deployments. The
// ring:2 row sits below the f+1 neighbourhood threshold: no node can
// accept from direct evidence alone, so rounds only complete through
// multi-hop evidence accumulation and the skew blows far past the mesh
// bound.
func W3SparseDegradation() ([]*Table, error) {
	const n = 16
	t := NewTable("W3: degradation on sparse circulant graphs (st-auth, n=16, f=3)",
		"topology", "degree", "max_skew_s", "mesh_bound_s", "complete_rounds", "msgs_per_round")
	var specs []Spec
	for _, degree := range []int{15, 8, 4, 2} {
		topo := fmt.Sprintf("ring:%d", degree)
		if degree >= n-1 {
			topo = "mesh"
		}
		specs = append(specs, Spec{
			Name: topo,
			Algo: AlgoAuth, Params: sparseParams(n),
			Attack:   AttackNone,
			Topology: topo,
			Horizon:  20, Seed: 23,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		degree := n - 1
		if res.Spec.Topology != "mesh" {
			fmt.Sscanf(res.Spec.Topology, "ring:%d", &degree)
		}
		t.AddRow(
			res.Spec.Topology, fmt.Sprint(degree),
			F(res.MaxSkew), F(res.SkewBound),
			fmt.Sprint(res.CompleteRounds), F(res.MsgsPerRound),
		)
	}
	t.AddNote("thinner graphs trade per-round traffic for hop-by-hop propagation latency; the mesh bound applies only to the mesh row")
	return []*Table{t}, nil
}
