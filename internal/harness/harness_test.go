package harness

import (
	"strings"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
)

func quickParams(n int, v bounds.Variant) bounds.Params {
	return bounds.Params{
		N: n, F: v.MaxFaults(n), Variant: v,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

func TestRunAuthWithinBounds(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 15, Seed: 1,
	})
	if !res.WithinSkew {
		t.Fatalf("skew %v > bound %v", res.MaxSkew, res.SkewBound)
	}
	if res.MaxSpread > res.SpreadBound+1e-9 {
		t.Fatalf("spread %v > beta %v", res.MaxSpread, res.SpreadBound)
	}
	if res.CompleteRounds < 10 {
		t.Fatalf("only %d complete rounds", res.CompleteRounds)
	}
	if !res.EnvelopeOK || !res.WithinEnvelope {
		t.Fatalf("envelope [%v, %v] outside [%v, %v]",
			res.EnvLo, res.EnvHi, res.EnvBoundLo, res.EnvBoundHi)
	}
	if res.MinPeriod < res.PminBound-1e-9 || res.MaxPeriod > res.PmaxBound+1e-9 {
		t.Fatalf("periods [%v, %v] outside [%v, %v]",
			res.MinPeriod, res.MaxPeriod, res.PminBound, res.PmaxBound)
	}
	if res.TotalMsgs == 0 || res.MsgsPerRound == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestRunPrimitiveWithinBounds(t *testing.T) {
	p := quickParams(7, bounds.Primitive)
	res := Run(Spec{
		Algo: AlgoPrim, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 15, Seed: 2,
	})
	if !res.WithinSkew {
		t.Fatalf("skew %v > bound %v", res.MaxSkew, res.SkewBound)
	}
	if res.MaxSpread > res.SpreadBound+1e-9 {
		t.Fatalf("spread %v > beta %v", res.MaxSpread, res.SpreadBound)
	}
}

func TestRunBaselinesConverge(t *testing.T) {
	for _, algo := range []Algorithm{AlgoCNV, AlgoFTM} {
		p := quickParams(7, bounds.Primitive)
		res := Run(Spec{
			Algo: algo, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 20, Seed: 3,
		})
		// Baselines have different constants; assert plausibility, not the
		// ST bound: skew must stay far below the period.
		if res.MaxSkew > p.Period/10 {
			t.Fatalf("%s skew %v did not converge", algo, res.MaxSkew)
		}
		if res.CompleteRounds < 10 {
			t.Fatalf("%s only %d rounds", algo, res.CompleteRounds)
		}
	}
}

func TestRushAttackBreaksBeyondResilience(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	within := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackRush,
		RushInterval: p.Period / 5, Horizon: 20, Seed: 4,
	})
	if !within.WithinEnvelope {
		t.Fatalf("rush within resilience broke accuracy: [%v, %v]", within.EnvLo, within.EnvHi)
	}
	beyond := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F + 1, Attack: AttackRush,
		RushInterval: p.Period / 5, Horizon: 20, Seed: 4,
	})
	// With f+1 colluders, rounds fire every P/5: the rate must blow up.
	if beyond.WithinEnvelope {
		t.Fatalf("rush beyond resilience did NOT break accuracy: [%v, %v] within [%v, %v]",
			beyond.EnvLo, beyond.EnvHi, beyond.EnvBoundLo, beyond.EnvBoundHi)
	}
	if beyond.MinPeriod >= beyond.PminBound {
		t.Fatalf("rush beyond resilience did not violate Pmin: %v >= %v",
			beyond.MinPeriod, beyond.PminBound)
	}
}

func TestPrimRushBreaksBeyondResilience(t *testing.T) {
	p := quickParams(7, bounds.Primitive)
	beyond := Run(Spec{
		Algo: AlgoPrim, Params: p,
		FaultyCount: p.F + 1, Attack: AttackRush,
		RushInterval: p.Period / 5, Horizon: 20, Seed: 5,
	})
	if beyond.WithinEnvelope {
		t.Fatalf("primitive rush beyond resilience did not break accuracy: [%v, %v]",
			beyond.EnvLo, beyond.EnvHi)
	}
}

func TestBiasAttackBreaksCNVButNotFTM(t *testing.T) {
	p := quickParams(7, bounds.Primitive)
	bias := 3 * p.Dmax()
	cnv := Run(Spec{
		Algo: AlgoCNV, Params: p,
		FaultyCount: p.F, Attack: AttackBias, Bias: bias,
		Horizon: 120, Seed: 6,
	})
	if cnv.EnvHi <= cnv.EnvBoundHi {
		t.Fatalf("bias attack failed to degrade CNV accuracy: hi=%v bound=%v",
			cnv.EnvHi, cnv.EnvBoundHi)
	}
	ftm := Run(Spec{
		Algo: AlgoFTM, Params: p,
		FaultyCount: p.F, Attack: AttackBias, Bias: bias,
		Horizon: 120, Seed: 6,
	})
	// FTM's midpoint is bounded by correct extremes: rate stays near 1.
	if ftm.EnvHi > cnv.EnvHi {
		t.Fatalf("FTM degraded more than CNV under the same attack: %v > %v",
			ftm.EnvHi, cnv.EnvHi)
	}
}

func TestEquivocationHarmless(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackEquivocate,
		Horizon: 20, Seed: 7,
	})
	if !res.WithinSkew {
		t.Fatalf("equivocation broke agreement: %v > %v", res.MaxSkew, res.SkewBound)
	}
}

func TestCrashMidAttack(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackCrashMid,
		Horizon: 20, Seed: 8,
	})
	if !res.WithinSkew {
		t.Fatalf("mid-run crash broke agreement: %v > %v", res.MaxSkew, res.SkewBound)
	}
	if res.CompleteRounds < 10 {
		t.Fatalf("liveness lost after crashes: %d rounds", res.CompleteRounds)
	}
}

func TestSpreadDelaysStillWithinBounds(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		SpreadDelays: true, Horizon: 15, Seed: 9,
	})
	if !res.WithinSkew {
		t.Fatalf("adversarial-but-legal delays broke the bound: %v > %v",
			res.MaxSkew, res.SkewBound)
	}
}

func TestKeepSeries(t *testing.T) {
	p := quickParams(3, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p, Attack: AttackNone,
		Horizon: 5, KeepSeries: true, Seed: 10,
	})
	if len(res.Series) == 0 {
		t.Fatal("series not kept")
	}
	res2 := Run(Spec{
		Algo: AlgoAuth, Params: p, Attack: AttackNone,
		Horizon: 5, Seed: 10,
	})
	if len(res2.Series) != 0 {
		t.Fatal("series kept without KeepSeries")
	}
}

func TestRunDeterminism(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	spec := Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 10, Seed: 11,
	}
	a, b := Run(spec), Run(spec)
	if a.MaxSkew != b.MaxSkew || a.PulseCount != b.PulseCount || a.TotalMsgs != b.TotalMsgs {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestUnknownAlgoAndAttackPanic(t *testing.T) {
	p := quickParams(3, bounds.Auth)
	for name, spec := range map[string]Spec{
		"algo":              {Algo: "nope", Params: p, Attack: AttackNone, Seed: 1},
		"attack":            {Algo: AlgoAuth, Params: p, FaultyCount: 1, Attack: "nope", Seed: 1},
		"bias on auth":      {Algo: AlgoAuth, Params: p, FaultyCount: 1, Attack: AttackBias, Seed: 1},
		"selective on prim": {Algo: AlgoPrim, Params: quickParams(4, bounds.Primitive), FaultyCount: 1, Attack: AttackSelective, Seed: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			Run(spec)
		}()
	}
}

func TestSlewedRunStaysWithinBounds(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		SlewRate: 0.05, Horizon: 20, Seed: 12,
	})
	if !res.WithinSkew {
		t.Fatalf("slewed run skew %v > bound %v", res.MaxSkew, res.SkewBound)
	}
	if res.CompleteRounds < 15 {
		t.Fatalf("slewed run lost liveness: %d rounds", res.CompleteRounds)
	}
}

func TestColdStartRunConverges(t *testing.T) {
	p := quickParams(5, bounds.Auth)
	res := Run(Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		ColdStart: true, Horizon: 10, Seed: 13,
	})
	if res.CompleteRounds < 5 {
		t.Fatalf("cold-start run made only %d rounds", res.CompleteRounds)
	}
	// Initial skew is ~100 periods, so WithinSkew (which uses the steady
	// bound incl. start) is judged over the whole run and will fail; the
	// meaningful check is pulse-spread, which must be within beta once
	// running.
	if res.MaxSpread > res.SpreadBound+1e-9 {
		t.Fatalf("cold-start spread %v > beta %v", res.MaxSpread, res.SpreadBound)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("note %d", 7)
	out := tb.Render()
	for _, want := range []string{"== demo ==", "a    bb", "333  4", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tb.AddRow("only one")
}

func TestFormatHelpers(t *testing.T) {
	if F(0.125) != "0.125" {
		t.Fatalf("F = %q", F(0.125))
	}
	if FmtBool(true) != "ok" || FmtBool(false) != "VIOLATED" {
		t.Fatal("FmtBool wrong")
	}
}

func TestFindScenario(t *testing.T) {
	if _, ok := FindScenario("T1"); !ok {
		t.Fatal("T1 not found")
	}
	if _, ok := FindScenario("ZZ"); ok {
		t.Fatal("ZZ found")
	}
	ids := map[string]bool{}
	for _, s := range Scenarios() {
		if ids[s.ID] {
			t.Fatalf("duplicate scenario id %s", s.ID)
		}
		ids[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Fatalf("scenario %s incomplete", s.ID)
		}
	}
	for _, want := range []string{
		"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7",
		"A1", "A2", "A3",
	} {
		if !ids[want] {
			t.Fatalf("scenario %s missing", want)
		}
	}
}
