package harness

import (
	"fmt"

	"optsync/internal/core"
	"optsync/internal/core/bounds"
)

// Ablation and extension scenarios: these are not reproductions of paper
// claims but measurements of the design choices the paper makes (DESIGN.md
// §ablations): what the relay step buys, what the adjustment constant
// alpha trades, what amortized (slewed) adjustment costs, and how the
// cold-start initialization extension behaves.

// A1RelayAblation measures the relay-on-accept step: under selective
// signing, disabling the relay forces non-targets to assemble full correct
// quorums, blowing up spread and skew.
func A1RelayAblation() ([]*Table, error) {
	t := NewTable("A1 (ablation): the relay step under selective signing",
		"relay", "max_spread_s", "beta_s", "max_skew_s", "Dmax_s")
	p := defaultParams(5, bounds.Auth)
	var specs []Spec
	for _, disable := range []bool{false, true} {
		specs = append(specs, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSelective,
			DisableRelay: disable,
			Horizon:      20 * p.Period,
			Seed:         71,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		mode := "on"
		if res.Spec.DisableRelay {
			mode = "OFF"
		}
		t.AddRow(mode, F(res.MaxSpread), F(res.SpreadBound), F(res.MaxSkew), F(res.SkewBound))
	}
	t.AddNote("without the relay, acceptance waits for the slowest correct signer: the spread bound is void")
	return []*Table{t}, nil
}

// A2AlphaAblation sweeps the adjustment constant alpha: larger alpha means
// larger forward jumps (higher worst-case rate P/(P-alpha)), smaller alpha
// means backward jumps; the paper's choice (1+rho)*dmax centers the jump.
func A2AlphaAblation() ([]*Table, error) {
	t := NewTable("A2 (ablation): adjustment constant alpha",
		"alpha_s", "rate_hi", "rate_bound_hi", "max_skew_s", "backward_jumps")
	base := defaultParams(5, bounds.Auth)
	def := bounds.DefaultAlpha(base.Rho, base.DMax)
	var specs []Spec
	for _, alpha := range []float64{1e-9, def / 2, def, 3 * def} {
		p := base
		p.Alpha = alpha
		specs = append(specs, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 60 * p.Period,
			Seed:    72,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		back, err := countBackwardJumps(res.Spec.Params, 72)
		if err != nil {
			return nil, err
		}
		t.AddRow(F(res.Spec.Params.Alpha), F(res.EnvHi), F(res.EnvBoundHi),
			F(res.MaxSkew), fmt.Sprint(back))
	}
	t.AddNote("alpha ~ (1+rho)*dmax (the paper's choice) balances forward rate error against backward jumps")
	return []*Table{t}, nil
}

// countBackwardJumps reruns the spec and counts negative adjustment deltas
// across correct nodes.
func countBackwardJumps(p bounds.Params, seed int64) (int, error) {
	spec := Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 60 * p.Period, Seed: seed,
	}
	spec = spec.withDefaults()
	cluster, err := startedCluster(spec)
	if err != nil {
		return 0, err
	}
	cluster.Run(spec.Horizon)
	count := 0
	for _, id := range correctIDs(p.N, spec.FaultyCount) {
		for _, adj := range cluster.Nodes[id].Clock().History() {
			if adj.New < adj.Old {
				count++
			}
		}
	}
	return count, nil
}

// A3SlewAblation compares jump adjustment with amortized (slewed)
// adjustment: slewing keeps every logical clock strictly monotone at the
// cost of a slightly larger transient skew.
func A3SlewAblation() ([]*Table, error) {
	t := NewTable("A3 (extension): amortized adjustment (monotone clocks)",
		"mode", "max_skew_s", "Dmax_s", "backward_clock_steps", "rounds")
	p := defaultParams(5, bounds.Auth)
	for _, slew := range []float64{0, 0.05} {
		spec := Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 30 * p.Period, SlewRate: slew,
			Seed: 73,
		}
		run := spec.withDefaults()
		cluster, err := startedCluster(run)
		if err != nil {
			return nil, err
		}
		correct := correctIDs(p.N, run.FaultyCount)
		maxSkew := 0.0
		for tt := 0.01; tt <= run.Horizon; tt += 0.01 {
			cluster.Run(tt)
			if s := cluster.Skew(correct); s > maxSkew {
				maxSkew = s
			}
		}
		// A jump-mode clock steps backward whenever an adjustment shrinks;
		// a slewed clock never steps (it is continuous and strictly
		// monotone — a property-tested invariant of SlewedLogical), it
		// only flattens to rate (1-sigma) temporarily.
		backSteps := 0
		if slew == 0 {
			for _, id := range correct {
				for _, adj := range cluster.Nodes[id].Clock().History() {
					if adj.New < adj.Old {
						backSteps++
					}
				}
			}
		}
		mode := "jump"
		if slew > 0 {
			mode = fmt.Sprintf("slew sigma=%g", slew)
		}
		rounds := 0
		seen := map[int]bool{}
		for _, rec := range cluster.Pulses {
			if !seen[rec.Round] {
				seen[rec.Round] = true
				rounds++
			}
		}
		t.AddRow(mode, F(maxSkew), F(p.DmaxWithStart()), fmt.Sprint(backSteps), fmt.Sprint(rounds))
	}
	t.AddNote("jump mode can step a clock backward at resynchronization; slewing (the paper's")
	t.AddNote("amortization remark) is strictly monotone with a modest skew premium")
	return []*Table{t}, nil
}

// T8Scale pushes both algorithms to large clusters (n up to 101, f at the
// optimum) and confirms the bounds hold and the simulator remains
// practical — a smoke test that the library is usable at deployment
// sizes, not just textbook examples.
func T8Scale() ([]*Table, error) {
	t := NewTable("T8: large-cluster scale-out at optimal resilience",
		"algo", "n", "f", "max_skew_s", "Dmax_bound_s", "within", "msgs_per_round", "pulses")
	var specs []Spec
	for _, tc := range []struct {
		algo Algorithm
		ns   []int
	}{
		{AlgoAuth, []int{25, 51, 101}},
		{AlgoPrim, []int{25, 52, 100}},
	} {
		variant := bounds.Auth
		if tc.algo == AlgoPrim {
			variant = bounds.Primitive
		}
		for _, n := range tc.ns {
			p := defaultParams(n, variant)
			specs = append(specs, Spec{
				Algo: tc.algo, Params: p,
				FaultyCount: p.F, Attack: AttackSilent,
				Horizon: 15 * p.Period,
				Seed:    int64(n) * 13,
			})
		}
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(string(res.Spec.Algo), fmt.Sprint(res.Spec.Params.N),
			fmt.Sprint(res.Spec.Params.F),
			F(res.MaxSkew), F(res.SkewBound), FmtBool(res.WithinSkew),
			F(res.MsgsPerRound), fmt.Sprint(res.PulseCount))
	}
	t.AddNote("bounds are independent of n; measured skew shrinks with n (order-statistic concentration)")
	return []*Table{t}, nil
}

// F7ColdStart measures the initialization extension: processes boot with
// clocks up to 100 periods wrong and no initial synchrony, establish a
// common epoch via the awake quorum, and converge to the steady-state
// bound.
func F7ColdStart() ([]*Table, error) {
	t := NewTable("F7 (extension): cold-start initialization (auth, n=5)",
		"clock_error_max_s", "synchronized", "skew_after_5P_s", "Dmax_s", "within")
	p := defaultParams(5, bounds.Auth)
	for _, seed := range []int64{81, 82, 83} {
		spec := Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			ColdStart: true,
			Horizon:   5 * p.Period,
			Seed:      seed,
		}
		run := spec.withDefaults()
		cluster, err := startedCluster(run)
		if err != nil {
			return nil, err
		}
		cluster.Run(run.Horizon)
		correct := correctIDs(p.N, run.FaultyCount)
		synced := 0
		for _, id := range correct {
			if a, ok := cluster.Nodes[id].Protocol().(*core.AuthProtocol); ok && a.Synchronized() {
				synced++
			}
		}
		skew := cluster.Skew(correct)
		t.AddRow(F(100*p.Period), fmt.Sprintf("%d/%d", synced, len(correct)),
			F(skew), F(p.Dmax()), FmtBool(skew <= p.Dmax()))
	}
	t.AddNote("boot clocks are arbitrary; the f+1 awake quorum establishes a common epoch within one delay")
	return []*Table{t}, nil
}
