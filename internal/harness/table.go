package harness

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a renderable experiment result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the cell count mismatches the columns
// (a programming error in a scenario).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV returns a comma-separated rendering (quotes are not needed: cells are
// numeric or simple identifiers by construction).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// FmtBool renders pass/fail cells.
func FmtBool(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
