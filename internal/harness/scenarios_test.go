package harness

import (
	"strconv"
	"strings"
	"testing"
)

// colIndex returns the index of a column by name.
func colIndex(t *testing.T, tb *Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %q has no column %q (have %v)", tb.Title, name, tb.Columns)
	return -1
}

func TestT1AllRowsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tb := firstTable(t, T1AuthAgreement)
	skew := colIndex(t, tb, "skew")
	spread := colIndex(t, tb, "spread")
	if len(tb.Rows) != 6*3*3 {
		t.Fatalf("T1 rows = %d, want 54", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[skew] != "ok" || row[spread] != "ok" {
			t.Fatalf("T1 row violated bound: %v", row)
		}
	}
}

func TestT2AllRowsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tb := firstTable(t, T2PrimAgreement)
	skew := colIndex(t, tb, "skew")
	for _, row := range tb.Rows {
		if row[skew] != "ok" {
			t.Fatalf("T2 row violated bound: %v", row)
		}
	}
}

func TestT3AccuracySeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizons")
	}
	tb := firstTable(t, T3Accuracy)
	within := colIndex(t, tb, "within")
	algo := colIndex(t, tb, "algo")
	attack := colIndex(t, tb, "attack")
	for _, row := range tb.Rows {
		attacked := row[attack] == string(AttackBias)
		switch {
		case !attacked && row[within] != "ok":
			t.Fatalf("un-attacked run escaped its envelope: %v", row)
		case attacked && row[within] != "VIOLATED":
			t.Fatalf("bias attack did not register as an accuracy violation: %v", row)
		}
	}
	// CNV must degrade more than FTM under the same attack.
	var cnvHi, ftmHi float64
	hi := colIndex(t, tb, "env_hi")
	for _, row := range tb.Rows {
		if row[attack] != string(AttackBias) {
			continue
		}
		v, err := strconv.ParseFloat(row[hi], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch Algorithm(row[algo]) {
		case AlgoCNV:
			cnvHi = v
		case AlgoFTM:
			ftmHi = v
		}
	}
	if cnvHi <= ftmHi {
		t.Fatalf("CNV (%v) should degrade more than FTM (%v)", cnvHi, ftmHi)
	}
}

func TestT4BoundaryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	checkBoundary(t, firstTable(t, T4AuthResilience))
}

func TestT5BoundaryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	checkBoundary(t, firstTable(t, T5PrimResilience))
}

// checkBoundary asserts the resilience-boundary shape: within resilience
// everything ok, one fault beyond everything broken.
func checkBoundary(t *testing.T, tb *Table) {
	t.Helper()
	fCfg := colIndex(t, tb, "f_cfg")
	fAct := colIndex(t, tb, "f_actual")
	period := colIndex(t, tb, "period")
	acc := colIndex(t, tb, "accuracy")
	for _, row := range tb.Rows {
		within := row[fCfg] == row[fAct]
		if within && (row[period] != "ok" || row[acc] != "ok") {
			t.Fatalf("within-resilience row broken: %v", row)
		}
		if !within && (row[period] == "ok" || row[acc] == "ok") {
			t.Fatalf("beyond-resilience row not broken: %v", row)
		}
	}
}

func TestT6ZeroViolations(t *testing.T) {
	tb := firstTable(t, T6Primitive)
	miss := colIndex(t, tb, "accept_violations")
	forged := colIndex(t, tb, "forged_accepts")
	spread := colIndex(t, tb, "max_spread_s")
	bound := colIndex(t, tb, "relay_bound_s")
	for _, row := range tb.Rows {
		if row[miss] != "0" || row[forged] != "0" {
			t.Fatalf("primitive property violated: %v", row)
		}
		s, _ := strconv.ParseFloat(row[spread], 64)
		b, _ := strconv.ParseFloat(row[bound], 64)
		if s > b {
			t.Fatalf("relay spread %v > bound %v", s, b)
		}
	}
}

func TestT7QuadraticShape(t *testing.T) {
	tb := firstTable(t, T7Messages)
	ratio := colIndex(t, tb, "ratio_to_n2")
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[ratio], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Theta(n^2): the per-n^2 ratio must stay within a small constant
		// band across the sweep.
		if v < 0.3 || v > 3 {
			t.Fatalf("msgs/round not Theta(n^2): %v", row)
		}
	}
}

func TestT8ScaleAllWithin(t *testing.T) {
	if testing.Short() {
		t.Skip("large clusters")
	}
	tb := firstTable(t, T8Scale)
	within := colIndex(t, tb, "within")
	for _, row := range tb.Rows {
		if row[within] != "ok" {
			t.Fatalf("scale row violated bound: %v", row)
		}
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestF1SawtoothHasResyncDrops(t *testing.T) {
	tb := firstTable(t, F1Trace)
	if len(tb.Rows) < 50 {
		t.Fatalf("trace too short: %d samples", len(tb.Rows))
	}
	// The trace must contain both growth and drops (the sawtooth).
	var ups, downs int
	prev := -1.0
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 {
			if v > prev {
				ups++
			}
			if v < prev {
				downs++
			}
		}
		prev = v
	}
	if ups < 10 || downs < 5 {
		t.Fatalf("no sawtooth: %d ups, %d downs", ups, downs)
	}
}

func TestF2AllWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tb := firstTable(t, F2SkewVsFaults)
	within := colIndex(t, tb, "within")
	for _, row := range tb.Rows {
		if row[within] != "ok" {
			t.Fatalf("F2 row violated: %v", row)
		}
	}
}

func TestF3LinearVsFlatSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tb := firstTable(t, F3SkewVsDelay)
	stCol := colIndex(t, tb, "st_auth_skew_s")
	ftmCol := colIndex(t, tb, "ftm_skew_s")
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	stFirst, _ := strconv.ParseFloat(first[stCol], 64)
	stLast, _ := strconv.ParseFloat(last[stCol], 64)
	ftmFirst, _ := strconv.ParseFloat(first[ftmCol], 64)
	ftmLast, _ := strconv.ParseFloat(last[ftmCol], 64)
	// d grew 50x with u fixed. Under the selective-signing attack ST's
	// skew grows with d (relay path costs one full delay); FTM's tracks
	// only the reading error u.
	if stLast < 10*stFirst {
		t.Fatalf("ST skew not growing with d under selective signing: %v -> %v", stFirst, stLast)
	}
	if ftmLast > 3*ftmFirst {
		t.Fatalf("FTM skew should be ~flat in d: %v -> %v", ftmFirst, ftmLast)
	}
	boundCol := colIndex(t, tb, "st_bound_s")
	bFirst, _ := strconv.ParseFloat(first[boundCol], 64)
	bLast, _ := strconv.ParseFloat(last[boundCol], 64)
	if bLast < 40*bFirst {
		t.Fatalf("ST bound not linear in d: %v -> %v", bFirst, bLast)
	}
	if stLast < 5*ftmLast {
		t.Fatalf("at large d, ST skew (%v) should far exceed FTM (%v)", stLast, ftmLast)
	}
}

func TestF4JoinerSynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tb := firstTable(t, F4Reintegration)
	within := colIndex(t, tb, "within")
	for _, row := range tb.Rows {
		if row[within] != "ok" {
			t.Fatalf("joiner failed to synchronize: %v", row)
		}
	}
}

func TestF5RatesWithinEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	tb := firstTable(t, F5Envelope)
	if len(tb.Rows) == 0 {
		t.Fatal("no per-node fits")
	}
	rate := colIndex(t, tb, "rate")
	// Parse the bounds out of the note.
	if len(tb.Notes) == 0 {
		t.Fatal("missing envelope note")
	}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[rate], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0.98 || v > 1.02 {
			t.Fatalf("rate %v wildly off hardware envelope", v)
		}
	}
	if !strings.Contains(tb.Notes[0], "[") {
		t.Fatalf("note malformed: %q", tb.Notes[0])
	}
}

func TestF7ColdStartRows(t *testing.T) {
	tb := firstTable(t, F7ColdStart)
	within := colIndex(t, tb, "within")
	synced := colIndex(t, tb, "synchronized")
	for _, row := range tb.Rows {
		if row[within] != "ok" || row[synced] != "3/3" {
			t.Fatalf("cold start failed: %v", row)
		}
	}
}

func TestA1RelaySeparation(t *testing.T) {
	tb := firstTable(t, A1RelayAblation)
	spread := colIndex(t, tb, "max_spread_s")
	on, _ := strconv.ParseFloat(tb.Rows[0][spread], 64)
	off, _ := strconv.ParseFloat(tb.Rows[1][spread], 64)
	if off <= on {
		t.Fatalf("relay ablation: spread %v (off) <= %v (on)", off, on)
	}
}

func TestA2AlphaTradeoff(t *testing.T) {
	tb := firstTable(t, A2AlphaAblation)
	back := colIndex(t, tb, "backward_jumps")
	rate := colIndex(t, tb, "rate_hi")
	firstBack, _ := strconv.Atoi(tb.Rows[0][back])
	lastBack, _ := strconv.Atoi(tb.Rows[len(tb.Rows)-1][back])
	if firstBack <= lastBack {
		t.Fatalf("backward jumps should fall as alpha grows: %d -> %d", firstBack, lastBack)
	}
	firstRate, _ := strconv.ParseFloat(tb.Rows[0][rate], 64)
	lastRate, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][rate], 64)
	if lastRate <= firstRate {
		t.Fatalf("rate should rise as alpha grows: %v -> %v", firstRate, lastRate)
	}
}

func TestA3SlewMonotone(t *testing.T) {
	tb := firstTable(t, A3SlewAblation)
	steps := colIndex(t, tb, "backward_clock_steps")
	jump, _ := strconv.Atoi(tb.Rows[0][steps])
	slew, _ := strconv.Atoi(tb.Rows[1][steps])
	if jump == 0 {
		t.Fatal("jump mode showed no backward steps; ablation vacuous")
	}
	if slew != 0 {
		t.Fatalf("slewed mode stepped backward %d times", slew)
	}
}

func TestF6MonotoneBound(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tb := firstTable(t, F6SkewVsPeriod)
	within := colIndex(t, tb, "within")
	bound := colIndex(t, tb, "Dmax_bound_s")
	prev := 0.0
	for _, row := range tb.Rows {
		if row[within] != "ok" {
			t.Fatalf("F6 row violated: %v", row)
		}
		b, _ := strconv.ParseFloat(row[bound], 64)
		if b <= prev {
			t.Fatalf("bound not increasing in P: %v", row)
		}
		prev = b
	}
}

// firstTable runs a scenario generator and returns its first table,
// failing the test on error — scenario specs are known-good.
func firstTable(t *testing.T, run func() ([]*Table, error)) *Table {
	t.Helper()
	tables, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("scenario produced no tables")
	}
	return tables[0]
}
