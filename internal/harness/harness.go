// Package harness assembles complete experiments: it builds clusters for
// any (algorithm, fault pattern, attack) combination, runs them, measures
// skew / spread / pulse periods / envelope rates, and checks the results
// against the analytic bounds.
//
// Every table and figure of EXPERIMENTS.md is generated through this
// package (see scenarios.go), and the benchmark targets in the repository
// root drive the same code.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"

	"optsync/internal/adversary"
	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/metrics"
	"optsync/internal/network"
	"optsync/internal/node"
	"optsync/internal/probe"
)

// Algorithm selects the protocol under test.
type Algorithm string

// Supported algorithms.
const (
	AlgoAuth Algorithm = "st-auth"
	AlgoPrim Algorithm = "st-primitive"
	AlgoCNV  Algorithm = "cnv"
	AlgoFTM  Algorithm = "ftm"
)

// Attack selects the behaviour of faulty nodes.
type Attack string

// Supported attacks.
const (
	// AttackNone runs a fault-free cluster (FaultyCount ignored).
	AttackNone Attack = "none"
	// AttackSilent crashes faulty nodes at boot.
	AttackSilent Attack = "silent"
	// AttackCrashMid runs faulty nodes correctly, then kills them halfway
	// through the horizon.
	AttackCrashMid Attack = "crash-mid"
	// AttackRush fires protocol rounds at the adversary's pace
	// (AuthRush/PrimRush depending on the algorithm). Needs
	// FaultyCount >= Params.F+1 to actually break anything.
	AttackRush Attack = "rush"
	// AttackBias reports biased clock readings (baselines).
	AttackBias Attack = "bias"
	// AttackEquivocate sends selective/stale evidence (auth algorithm,
	// within resilience; must be harmless).
	AttackEquivocate Attack = "equivocate"
	// AttackSelective signs early but delivers signatures to only half the
	// correct processes, forcing the rest onto the relay path — the
	// Theta(d) worst case of the authenticated algorithm.
	AttackSelective Attack = "selective"
)

// Spec fully describes one run.
type Spec struct {
	Name   string
	Algo   Algorithm
	Params bounds.Params
	// FaultyCount is the actual number of Byzantine nodes (may exceed
	// Params.F for resilience-boundary experiments). The highest node ids
	// are faulty.
	FaultyCount int
	Attack      Attack
	// Bias is the clock-report shift for AttackBias.
	Bias float64
	// RushInterval is the real-time round spacing for AttackRush.
	RushInterval float64
	// Horizon is the simulated duration; zero defaults to 30 periods.
	Horizon float64
	// SampleEvery is the skew sampling interval; zero defaults to
	// Period/20.
	SampleEvery float64
	Seed        int64
	// CNVDelta is the egocentric threshold for AlgoCNV; zero defaults to
	// 4x the ST skew bound (a plausible operating point).
	CNVDelta float64
	// Window is the baseline collection window; zero defaults to
	// 4*(1+rho)*dmax + InitialSkew.
	Window float64
	// KeepSeries retains the full skew time series in the result.
	KeepSeries bool
	// SpreadDelays uses the adversarial Spread delay policy (min delay to
	// half the nodes, max to the other half) instead of Uniform.
	SpreadDelays bool
	// SlewRate, when positive, amortizes clock adjustments (monotone
	// continuous logical clocks) instead of jumping.
	SlewRate float64
	// ColdStart boots the core algorithms without initial synchrony:
	// hardware clocks start up to 100 periods wrong.
	ColdStart bool
	// DisableRelay ablates the relay-on-accept step (auth algorithm).
	DisableRelay bool
	// StartAt optionally delays individual nodes' boot to the given
	// virtual time (reintegration experiments); absent nodes boot at 0.
	// Skew is then sampled over booted nodes only, and MaxSkew includes
	// each joiner's integration window — read Series/Pulses for
	// integration analyses rather than WithinSkew.
	StartAt map[int]float64
	// ClockOffset optionally pins individual correct nodes' initial
	// hardware clock offset, overriding the random draw (late joiners
	// fresh from repair, adversarially placed clocks).
	ClockOffset map[int]float64
	// Topology selects the network connectivity by registered name
	// ("mesh", "wan:R", "ring", "sparse:D", ...). Empty means the default
	// full mesh, whose results are pinned by the golden tests.
	Topology string
	// Shards selects the execution strategy, never the result: every
	// shard count produces bit-identical results, stats, and probe
	// traces, so Shards is excluded from the canonical spec key. 0
	// auto-picks from the machine and cluster size, 1 forces the serial
	// engine, k > 1 runs k parallel worker shards (clamped to N; falls
	// back to serial when the delay policy exposes no positive minimum
	// delay, since conservative parallelism needs the dmin lookahead).
	// Negative values are a spec error.
	Shards int
	// Partitions schedules network partition/heal churn on top of the
	// topology: during each window, links crossing the cut are down.
	Partitions []Partition
}

// Partition is one scheduled partition window: from At until Heal, nodes
// with id < LeftSize cannot exchange messages with the rest. Heal <= At
// means the partition never heals within the run.
type Partition struct {
	// At is the virtual time the cut appears.
	At float64
	// Heal is the virtual time the cut disappears (0 or <= At: never).
	Heal float64
	// LeftSize is the number of lowest-id nodes on the left side.
	LeftSize int
}

// ParsePartition parses one "at:heal:leftSize" window (heal 0 = never
// heals) — the textual form shared by the CLI flag and the campaign
// axis. strconv parsing rejects trailing garbage that Sscanf would
// silently drop.
func ParsePartition(s string) (Partition, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Partition{}, fmt.Errorf("partition %q: want at:heal:leftSize", s)
	}
	var (
		p   Partition
		err error
	)
	if p.At, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return Partition{}, fmt.Errorf("partition %q: bad at %q", s, parts[0])
	}
	if p.Heal, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return Partition{}, fmt.Errorf("partition %q: bad heal %q", s, parts[1])
	}
	if p.LeftSize, err = strconv.Atoi(parts[2]); err != nil {
		return Partition{}, fmt.Errorf("partition %q: bad leftSize %q", s, parts[2])
	}
	return p, nil
}

func (s Spec) withDefaults() Spec {
	s.Params = s.Params.WithDefaults()
	if s.Horizon == 0 {
		s.Horizon = 30 * s.Params.Period
	}
	if s.SampleEvery == 0 {
		s.SampleEvery = s.Params.Period / 20
	}
	if s.Attack == "" {
		s.Attack = AttackNone
	}
	if s.Attack == AttackNone {
		s.FaultyCount = 0
	}
	if s.CNVDelta == 0 {
		s.CNVDelta = 4 * s.Params.Dmax()
	}
	if s.Window == 0 {
		s.Window = 4*s.Params.Rho.MaxRate()*s.Params.DMax + s.Params.InitialSkew
	}
	if s.RushInterval == 0 {
		s.RushInterval = s.Params.Period / 10
	}
	return s
}

// Result aggregates everything measured in one run.
type Result struct {
	Spec Spec

	// Agreement.
	MaxSkew     float64
	SkewBound   float64
	WithinSkew  bool
	SkewSamples int
	// SkewP50/P95/P99 are streaming (P-squared) percentile estimates of
	// the sampled skew, computed by the built-in probe collector in O(1)
	// memory — the per-cell distribution campaigns previously needed
	// KeepSeries for.
	SkewP50, SkewP95, SkewP99 float64

	// Acceptance spread (core algorithms; 0 rounds for baselines means
	// spread is measured over baseline pulses instead).
	MaxSpread   float64
	SpreadBound float64

	// Liveness.
	CompleteRounds int
	PulseCount     int

	// Pulse periods.
	MinPeriod, MaxPeriod float64
	PminBound, PmaxBound float64

	// Accuracy envelope.
	EnvLo, EnvHi           float64
	EnvBoundLo, EnvBoundHi float64
	WithinEnvelope         bool
	EnvelopeOK             bool // fit succeeded

	// Traffic. TotalMsgs is what went on a wire (network Stats.Sent);
	// the drop counters keep the network layer's disjoint taxonomy:
	// Dropped at send by the delay policy, DroppedOffline at delivery
	// with no handler, DroppedLink suppressed for want of a usable link
	// (never counted in TotalMsgs).
	TotalMsgs      uint64
	MsgsPerRound   float64
	Delivered      uint64
	Dropped        uint64
	DroppedOffline uint64
	DroppedLink    uint64

	// Series and Pulses, if Spec.KeepSeries.
	Series []metrics.Sample
	Pulses []node.PulseRecord
}

// runChunks splits a run's horizon into this many context-check slices so
// long simulations notice cancellation without measurable overhead.
const runChunks = 8

// Observe attaches probes for one run about to execute. It is invoked
// after the cluster is built and before the engine runs, with the
// defaulted spec and the run's bus; everything it attaches sees the full
// event stream. Probes observe — they must not schedule events or draw
// randomness, and the engine gives them no handle to do either, so a
// probed run is byte-identical to an unprobed one.
type Observe func(spec Spec, bus *probe.Bus)

// RunContext executes the spec and returns measurements. The protocol and
// the faulty-node behaviour are resolved through the registry, so any
// algorithm or attack registered by any package is reachable from a Spec.
// Cancelling ctx aborts the simulation between event-processing chunks
// and returns ctx.Err(). Results are deterministic in the spec alone.
func RunContext(ctx context.Context, spec Spec) (Result, error) {
	return RunObserved(ctx, spec, nil)
}

// RunObserved is RunContext with observation attached: the run's typed
// event stream (messages, pulses, resyncs, boots, partition markers, skew
// samples) is fanned out to whatever attach subscribes, alongside the
// built-in collectors that produce the Result's skew statistics.
func RunObserved(ctx context.Context, spec Spec, attach Observe) (Result, error) {
	spec = spec.withDefaults()
	p := spec.Params

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cluster, err := buildCluster(spec)
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()

	// The observation pipeline: the sampler drives skew-sample events;
	// bounded-memory collectors fold them into the Result; the full
	// series is retained only on request, by a collector like any other.
	bus := cluster.Engine.Probes()
	skewStats := probe.NewSkewStats()
	bus.AttachCollector(skewStats)
	var series *probe.Series
	if spec.KeepSeries {
		series = probe.NewSeries()
		bus.AttachCollector(series)
	}
	if attach != nil {
		attach(spec, bus)
	}
	schedulePartitionMarkers(cluster, spec.Partitions)

	cluster.Start()

	correct := correctIDs(p.N, spec.FaultyCount)
	var sampler *metrics.SkewSampler
	if len(spec.StartAt) > 0 {
		// Staggered boots: sample only nodes that have booted by each
		// tick — an offline joiner's clock is not yet comparable. Note
		// that MaxSkew still covers a joiner's integration window (boot
		// until its first accepted round), so WithinSkew is about the
		// whole run, not just steady state; integration experiments read
		// Series/Pulses.
		sampler = metrics.NewBootedSkewSampler(cluster, spec.SampleEvery)
	} else {
		sampler = metrics.NewSkewSampler(cluster, correct, spec.SampleEvery)
	}
	sampler.DiscardSeries() // collectors own retention now
	for i := 1; i <= runChunks; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		until := spec.Horizon * float64(i) / runChunks
		if i == runChunks {
			until = spec.Horizon // exact horizon, no float drift
		}
		cluster.Run(until)
	}
	sampler.Stop()

	rep := metrics.NewPulseReport(cluster.Pulses, correct)
	res := Result{
		Spec:        spec,
		MaxSkew:     skewStats.Max(),
		SkewBound:   p.DmaxWithStart(),
		SkewSamples: skewStats.Count(),
		SkewP50:     skewStats.P50(),
		SkewP95:     skewStats.P95(),
		SkewP99:     skewStats.P99(),
		SpreadBound: p.Beta(),
		MaxSpread:   rep.MaxSpread(len(correct)),
		PulseCount:  len(cluster.Pulses),
		PminBound:   p.Pmin(),
		PmaxBound:   p.Pmax(),
	}
	res.WithinSkew = res.MaxSkew <= res.SkewBound
	res.CompleteRounds = rep.CompleteRounds(len(correct))

	if periods := rep.Periods(); len(periods) > 0 {
		res.MinPeriod, res.MaxPeriod = periods[0], periods[0]
		for _, d := range periods {
			if d < res.MinPeriod {
				res.MinPeriod = d
			}
			if d > res.MaxPeriod {
				res.MaxPeriod = d
			}
		}
	}

	if lo, hi, err := metrics.EnvelopeRates(cluster.Pulses, correct); err == nil {
		res.EnvLo, res.EnvHi = lo, hi
		res.EnvelopeOK = true
	}
	// Envelope bounds are evaluated over the actual measurement span, where
	// bounded per-round phase noise averages out (see bounds.EnvelopeSlackOver).
	res.EnvBoundLo, res.EnvBoundHi = envelopeBounds(spec, spec.Horizon-p.Period)
	res.WithinEnvelope = res.EnvelopeOK &&
		res.EnvLo >= res.EnvBoundLo && res.EnvHi <= res.EnvBoundHi

	stats := cluster.NetStats()
	res.TotalMsgs = stats.Sent
	res.Delivered = stats.Delivered
	res.Dropped = stats.Dropped
	res.DroppedOffline = stats.DroppedOffline
	res.DroppedLink = stats.DroppedLink
	if res.CompleteRounds > 0 {
		res.MsgsPerRound = float64(stats.Sent) / float64(res.CompleteRounds)
	}
	if spec.KeepSeries {
		res.Series = series.Samples
		res.Pulses = cluster.Pulses
	}
	return res, nil
}

// schedulePartitionMarkers places inert marker events at every scheduled
// cut and heal instant so traces and probes see partition churn as part
// of the event stream. The markers draw no randomness and touch no
// simulation state, so scheduling them never perturbs results.
func schedulePartitionMarkers(cluster *node.Cluster, windows []Partition) {
	bus := cluster.Engine.Probes()
	for _, w := range windows {
		w := w
		at := w.At
		if at < 0 {
			at = 0
		}
		cluster.Engine.MustAt(at, func() {
			if bus.Active(probe.TypePartitionCut) {
				bus.Emit(probe.Event{
					Type: probe.TypePartitionCut, From: -1, To: int32(w.LeftSize),
					T: cluster.Engine.Now(),
				})
			}
		})
		if w.Heal > at {
			cluster.Engine.MustAt(w.Heal, func() {
				if bus.Active(probe.TypePartitionHeal) {
					bus.Emit(probe.Event{
						Type: probe.TypePartitionHeal, From: -1, To: int32(w.LeftSize),
						T: cluster.Engine.Now(),
					})
				}
			})
		}
	}
}

// envelopeBounds returns the admissible long-run clock rate interval for
// the algorithm under test. Protocols registered with WithEnvelope (the
// ST algorithms carry the paper's alpha/P and (beta+dmax)/P correction
// terms, provably unavoidable) supply their own bounds; every other
// protocol — the averaging baselines make no alpha jump — is held to the
// plain hardware envelope plus regression slack over the measurement span,
// which is exactly why a sustained bias attack on CNV is a visible
// accuracy violation.
func envelopeBounds(spec Spec, span float64) (lo, hi float64) {
	if env := protocolEnvelope(spec.Algo); env != nil {
		return env(spec, span)
	}
	p := spec.Params
	if min := p.Pmin(); span < min {
		span = min
	}
	eps := p.DMax + p.InitialSkew // per-round phase noise amplitude
	s := 4 * eps / span
	return p.Rho.MinRate() - s, p.Rho.MaxRate() + s
}

func correctIDs(n, faulty int) []node.ID {
	ids := make([]node.ID, 0, n-faulty)
	for i := 0; i < n-faulty; i++ {
		ids = append(ids, i)
	}
	return ids
}

// buildCluster wires protocols, clocks, delays, and attacks. Both the
// correct-node protocol and the faulty-node behaviour are resolved through
// the registry; there is no hard-wired algorithm or attack list here.
func buildCluster(spec Spec) (*node.Cluster, error) {
	p := spec.Params

	// Validate all names up front so a misspelled spec fails loudly even
	// when no faulty node would have exercised the attack builder.
	if _, err := lookupProtocol(spec.Algo); err != nil {
		return nil, err
	}
	if _, err := lookupAttack(spec.Attack); err != nil {
		return nil, err
	}
	topo, err := topologyFor(spec)
	if err != nil {
		return nil, err
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("harness: Shards=%d invalid (0 auto-picks, 1 forces serial, k>1 runs k shards)", spec.Shards)
	}

	faulty := make(map[int]bool, spec.FaultyCount)
	for i := p.N - spec.FaultyCount; i < p.N; i++ {
		faulty[i] = true
	}

	coalition := adversary.NewCollusion()
	rushRounds := int(spec.Horizon/spec.RushInterval) + 1
	leader := p.N - spec.FaultyCount // the lowest faulty id leads coalitions

	protos := make([]node.Protocol, p.N)
	for i := 0; i < p.N; i++ {
		var err error
		if faulty[i] {
			protos[i], err = newAttack(spec, AttackEnv{
				ID:         i,
				Leader:     i == leader,
				Coalition:  coalition,
				RushRounds: rushRounds,
			})
		} else {
			protos[i], err = NewProtocol(spec)
		}
		if err != nil {
			return nil, err
		}
	}

	var delay network.Policy = network.Uniform{Min: p.DMin, Max: p.DMax}
	if spec.SpreadDelays {
		slow := make(map[node.ID]bool)
		for i := 0; i < p.N; i += 2 {
			slow[i] = true
		}
		delay = network.Spread{Min: p.DMin, Max: p.DMax, Slow: slow}
	}

	shards := spec.Shards
	if shards == 0 {
		shards = autoShards(p.N)
	}

	return node.NewCluster(node.Config{
		N: p.N, F: p.F, Seed: spec.Seed,
		Rho:       p.Rho,
		Delay:     delay,
		Topology:  topo,
		SlewRate:  spec.SlewRate,
		StartAt:   spec.StartAt,
		Shards:    shards,
		Lookahead: network.Lookahead(delay),
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			if faulty[i] {
				// Faulty nodes get perfect clocks: the adversary can
				// schedule on real time.
				return clock.NewConstant(0, 1, p.Rho)
			}
			// Draw before applying any pinned offset so the per-node rng
			// stream stays aligned with and without overrides.
			offset := rng.Float64() * p.InitialSkew
			if spec.ColdStart {
				offset = rng.Float64() * 100 * p.Period
			}
			if pinned, ok := spec.ClockOffset[i]; ok {
				offset = pinned
			}
			return clock.NewHardware(offset, p.Rho,
				clock.RandomWalk{Rho: p.Rho, MinDur: p.Period / 7, MaxDur: p.Period}, rng)
		},
		Protocols: func(i int) node.Protocol { return protos[i] },
		Faulty:    faulty,
	}), nil
}

// autoShards picks the shard count for Spec.Shards == 0: serial below
// the cluster size where window barriers start paying for themselves
// (sharding a small mesh costs more in synchronization than it saves),
// otherwise up to 8 workers bounded by the machine's parallelism. The
// choice affects wall-clock only — results are identical either way.
func autoShards(n int) int {
	if n < 1024 {
		return 1
	}
	k := runtime.GOMAXPROCS(0)
	if k > 8 {
		k = 8
	}
	if k < 1 {
		k = 1
	}
	return k
}

// startedCluster builds the cluster for an already-defaulted spec and
// boots it — the entry point for scenario generators that introspect
// cluster state directly instead of going through RunContext. Malformed
// specs surface as errors, never panics.
func startedCluster(spec Spec) (*node.Cluster, error) {
	cluster, err := buildCluster(spec)
	if err != nil {
		return nil, err
	}
	cluster.Start()
	return cluster, nil
}
