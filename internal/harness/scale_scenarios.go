package harness

import (
	"context"
	"fmt"
	"time"

	"optsync/internal/core/bounds"
)

// L1/L2 are the large-n scaling tier: the authenticated algorithm at
// n=2048 and n=4096 on sparse circulant rings. Full-mesh runs at these
// sizes would push Theta(n^2) messages per round per *link* budget the
// paper never needs — the sparse rings keep per-round traffic at
// Theta(n*degree) while the event core still absorbs the n-wide
// broadcast fan-out every round, which is exactly the regime the
// value-inline ladder scheduler exists for. The scenarios run serially
// (one cluster of this size at a time) and report wall-clock per run, so
// the table doubles as a simulator-throughput record.

// scaleParams is sparseParams for the scaling tier: resilience stays at
// f=3 (a process only assembles evidence from its topological
// neighbourhood — degree >= f+1 is required for direct acceptance; see
// sparseParams), with the standard LAN operating point.
func scaleParams(n int) bounds.Params {
	return sparseParams(n)
}

// scaleRows runs one spec per (n, degree) pair and renders the shared
// table shape for L1/L2.
func scaleRows(t *Table, n int, degrees []int, horizon float64) error {
	p := scaleParams(n)
	for _, degree := range degrees {
		topo := fmt.Sprintf("ring:%d", degree)
		spec := Spec{
			Name: fmt.Sprintf("n=%d/%s", n, topo),
			Algo: AlgoAuth, Params: p,
			Attack:   AttackNone,
			Topology: topo,
			Horizon:  horizon,
			Seed:     int64(n) + int64(degree),
		}
		//syncsim:allowlist detrand wall-clock brackets the run to report throughput; it never feeds simulation state
		start := time.Now()
		res, err := RunContext(context.Background(), spec)
		if err != nil {
			return err
		}
		//syncsim:allowlist detrand wall-clock throughput report only
		wall := time.Since(start).Seconds()
		t.AddRow(
			fmt.Sprint(n), topo, F(horizon),
			F(res.MaxSkew), fmt.Sprint(res.CompleteRounds),
			F(res.MsgsPerRound), fmt.Sprintf("%.2f", wall),
		)
	}
	return nil
}

func scaleTable(title string) *Table {
	return NewTable(title,
		"n", "topology", "horizon_s", "max_skew_s", "complete_rounds", "msgs_per_round", "wall_s")
}

// L1Scale runs the n=2048 tier across two ring degrees.
func L1Scale() ([]*Table, error) {
	t := scaleTable("L1: scaling tier, n=2048 on sparse rings (st-auth, f=3)")
	if err := scaleRows(t, 2048, []int{8, 16}, 6); err != nil {
		return nil, err
	}
	t.AddNote("per-round traffic is Theta(n*degree); rounds must keep completing and skew must stay bounded as the mesh assumption is dropped")
	t.AddNote("wall_s is host wall-clock per run: the scaling tier doubles as a simulator-throughput record")
	return []*Table{t}, nil
}

// L2Scale runs the n=4096 tier.
func L2Scale() ([]*Table, error) {
	t := scaleTable("L2: scaling tier, n=4096 on sparse rings (st-auth, f=3)")
	if err := scaleRows(t, 4096, []int{16}, 4); err != nil {
		return nil, err
	}
	t.AddNote("4096 nodes, degree 16: ~70k deliveries per round through the ladder queue; see README \"Performance\"")
	return []*Table{t}, nil
}

// L3Scale runs the n=65536 tier, the sharded-engine showcase: a cluster
// this size only fits in a short horizon because Spec.Shards auto-picks
// the conservative parallel engine (and because Circulant adjacency is
// ring arithmetic — a 65536^2 adjacency matrix alone would be 4 GiB).
func L3Scale() ([]*Table, error) {
	t := scaleTable("L3: scaling tier, n=65536 on a sparse ring (st-auth, f=3, sharded engine)")
	if err := scaleRows(t, 65536, []int{8}, 2); err != nil {
		return nil, err
	}
	t.AddNote("~590k deliveries per round; runs on the auto-sharded parallel engine (results are bit-identical to serial at any shard count)")
	return []*Table{t}, nil
}
