package harness

import (
	"context"
	"strings"
	"testing"

	"optsync/internal/core/bounds"
)

func topoSpec(topology string) Spec {
	p := defaultParams(7, bounds.Auth)
	return Spec{
		Algo: AlgoAuth, Params: p,
		Attack: AttackNone, Topology: topology,
		Horizon: 3, Seed: 1,
	}
}

func TestUnknownTopologyIsError(t *testing.T) {
	_, err := RunContext(context.Background(), topoSpec("hypercube"))
	if err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("err = %v, want unknown-topology error", err)
	}
	// Bad args on a known topology are errors too, not panics — and they
	// must name the offending spec, not misconfigure silently. The matrix
	// covers missing (trailing colon), zero, negative, non-numeric, and
	// out-of-range arguments for every parameterized builtin.
	for _, bad := range []string{
		"wan:", "wan:0", "wan:-1", "wan:99", "wan:x", "wan:2.5", "wan:2x",
		"ring:", "ring:0", "ring:-2", "ring:1", "ring:3", "ring:8", "ring:y",
		"mesh:", "mesh:3",
	} {
		_, err := RunContext(context.Background(), topoSpec(bad))
		if err == nil {
			t.Fatalf("topology %q accepted", bad)
		}
		if !strings.Contains(err.Error(), `"`+bad+`"`) {
			t.Fatalf("topology %q: error does not name the spec: %v", bad, err)
		}
	}
}

func TestTopologyNamesResolve(t *testing.T) {
	for _, good := range []string{"mesh", "wan", "wan:2", "wan:4", "ring:4"} {
		res, err := RunContext(context.Background(), topoSpec(good))
		if err != nil {
			t.Fatalf("topology %q: %v", good, err)
		}
		if res.PulseCount == 0 {
			t.Fatalf("topology %q: no liveness", good)
		}
	}
	names := Topologies()
	for _, want := range []string{"mesh", "ring", "wan"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("built-in topology %q not registered (have %v)", want, names)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	spec := topoSpec("")
	spec.Partitions = []Partition{{At: 1, Heal: 2, LeftSize: 0}}
	if _, err := RunContext(context.Background(), spec); err == nil {
		t.Fatal("LeftSize 0 accepted")
	}
	spec.Partitions = []Partition{{At: 1, Heal: 2, LeftSize: 7}}
	if _, err := RunContext(context.Background(), spec); err == nil {
		t.Fatal("LeftSize >= N accepted")
	}
	spec.Partitions = []Partition{{At: 1, Heal: 2, LeftSize: 3}}
	if _, err := RunContext(context.Background(), spec); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
}

// The mesh name must be exactly the default: identical results with and
// without it.
func TestExplicitMeshMatchesDefault(t *testing.T) {
	def := Run(topoSpec(""))
	mesh := Run(topoSpec("mesh"))
	def.Spec, mesh.Spec = Spec{}, Spec{} // specs differ by the name only
	if len(def.Series) != len(mesh.Series) {
		t.Fatal("series lengths differ")
	}
	if def.MaxSkew != mesh.MaxSkew || def.TotalMsgs != mesh.TotalMsgs ||
		def.PulseCount != mesh.PulseCount || def.EnvHi != mesh.EnvHi {
		t.Fatalf("explicit mesh diverged from default:\n %+v\n %+v", def, mesh)
	}
}
