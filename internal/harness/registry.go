package harness

import (
	"fmt"
	"sort"
	"sync"

	"optsync/internal/adversary"
	"optsync/internal/node"
)

// ProtocolBuilder constructs the protocol a *correct* process runs under
// the given spec. Builders must be pure: every call returns a fresh
// protocol instance and consumes no shared mutable state, so that
// independent runs can execute concurrently.
type ProtocolBuilder func(spec Spec) (node.Protocol, error)

// AttackEnv carries the per-node wiring an attack builder may need beyond
// the spec itself.
type AttackEnv struct {
	// ID is the node id of the faulty process being built.
	ID int
	// Leader reports whether this is the lowest-id faulty node; coalition
	// attacks conventionally elect it as coordinator.
	Leader bool
	// Coalition is the shared state of all faulty nodes in this run.
	Coalition *adversary.Collusion
	// RushRounds is the number of protocol rounds an attack pacing itself
	// at Spec.RushInterval can fire within the horizon.
	RushRounds int
}

// AttackBuilder constructs the protocol a *faulty* process runs. A builder
// that only applies to certain algorithms should return an error for the
// rest rather than misbehave silently.
type AttackBuilder func(spec Spec, env AttackEnv) (node.Protocol, error)

// EnvelopeFunc computes a protocol's admissible long-run logical clock
// rate interval over a measurement span.
type EnvelopeFunc func(spec Spec, span float64) (lo, hi float64)

type protocolEntry struct {
	build    ProtocolBuilder
	envelope EnvelopeFunc
}

// ProtocolOption customizes a protocol registration.
type ProtocolOption func(*protocolEntry)

// WithEnvelope attaches protocol-specific accuracy bounds to a
// registration. Protocols registered without it are held to the plain
// hardware drift envelope plus regression slack (see envelopeBounds).
func WithEnvelope(fn EnvelopeFunc) ProtocolOption {
	return func(e *protocolEntry) { e.envelope = fn }
}

var registry = struct {
	mu        sync.RWMutex
	protocols map[Algorithm]*protocolEntry
	attacks   map[Attack]AttackBuilder
}{
	protocols: make(map[Algorithm]*protocolEntry),
	attacks:   make(map[Attack]AttackBuilder),
}

// RegisterProtocol makes an algorithm constructible by name through Spec.
// It panics if the name is empty, the builder is nil, or the name is
// already taken — registration is a program-initialization step, like
// database/sql driver registration.
func RegisterProtocol(name Algorithm, build ProtocolBuilder, opts ...ProtocolOption) {
	if name == "" {
		panic("harness: RegisterProtocol with empty name")
	}
	if build == nil {
		panic("harness: RegisterProtocol with nil builder")
	}
	entry := &protocolEntry{build: build}
	for _, opt := range opts {
		opt(entry)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.protocols[name]; dup {
		panic(fmt.Sprintf("harness: protocol %q registered twice", name))
	}
	registry.protocols[name] = entry
}

// RegisterAttack makes a faulty-node behaviour constructible by name
// through Spec. Same registration contract as RegisterProtocol.
func RegisterAttack(name Attack, build AttackBuilder) {
	if name == "" {
		panic("harness: RegisterAttack with empty name")
	}
	if build == nil {
		panic("harness: RegisterAttack with nil builder")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.attacks[name]; dup {
		panic(fmt.Sprintf("harness: attack %q registered twice", name))
	}
	registry.attacks[name] = build
}

// Protocols returns the registered algorithm names, sorted.
func Protocols() []Algorithm {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return protocolNamesLocked()
}

// Attacks returns the registered attack names, sorted.
func Attacks() []Attack {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return attackNamesLocked()
}

func lookupProtocol(name Algorithm) (*protocolEntry, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	entry, ok := registry.protocols[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown algorithm %q (registered: %v)", name, protocolNamesLocked())
	}
	return entry, nil
}

func lookupAttack(name Attack) (AttackBuilder, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	build, ok := registry.attacks[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown attack %q (registered: %v)", name, attackNamesLocked())
	}
	return build, nil
}

// protocolNamesLocked and attackNamesLocked assume registry.mu is held.
func protocolNamesLocked() []Algorithm {
	out := make([]Algorithm, 0, len(registry.protocols))
	for name := range registry.protocols {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func attackNamesLocked() []Attack {
	out := make([]Attack, 0, len(registry.attacks))
	for name := range registry.attacks {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewProtocol builds the correct-node protocol for the spec via the
// registry. Attack builders that wrap correct behaviour (crash-mid, bias)
// use it to obtain their inner protocol.
func NewProtocol(spec Spec) (node.Protocol, error) {
	entry, err := lookupProtocol(spec.Algo)
	if err != nil {
		return nil, err
	}
	return entry.build(spec)
}

// newAttack builds the faulty-node protocol for the spec via the registry.
func newAttack(spec Spec, env AttackEnv) (node.Protocol, error) {
	build, err := lookupAttack(spec.Attack)
	if err != nil {
		return nil, err
	}
	return build(spec, env)
}

// protocolEnvelope returns the registered envelope bounds for the
// algorithm, or nil if none (or the algorithm is unknown).
func protocolEnvelope(name Algorithm) EnvelopeFunc {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if entry, ok := registry.protocols[name]; ok {
		return entry.envelope
	}
	return nil
}
