package harness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
)

// Property: for ANY within-resilience combination of cluster size, drift,
// delays, attack, and seed, the authenticated algorithm keeps agreement
// within the analytic bound and never loses liveness. This is the
// randomized sweep backing the paper's main theorem.
func TestAuthAgreementFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	attacks := []Attack{AttackSilent, AttackCrashMid, AttackEquivocate, AttackRush, AttackSelective}
	f := func(rawN, rawRho, rawD, rawAttack uint8, seed int64) bool {
		n := 3 + int(rawN%9) // 3..11
		p := bounds.Params{
			N: n, F: bounds.Auth.MaxFaults(n), Variant: bounds.Auth,
			Rho:    clock.Rho(float64(rawRho%200+1) * 1e-5), // 1e-5 .. 2e-3
			DMax:   float64(rawD%40+1) * 1e-3,               // 1 .. 40 ms
			Period: 1.0,
		}
		p.DMin = p.DMax / 5
		p.InitialSkew = p.DMax / 2
		p = p.WithDefaults()
		if p.Validate() != nil {
			return true // out-of-model combination
		}
		attack := attacks[int(rawAttack)%len(attacks)]
		res := Run(Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: attack,
			Horizon: 12, Seed: seed,
		})
		if !res.WithinSkew {
			t.Logf("n=%d f=%d rho=%v dmax=%v attack=%s seed=%d: skew %v > %v",
				n, p.F, float64(p.Rho), p.DMax, attack, seed, res.MaxSkew, res.SkewBound)
			return false
		}
		if res.CompleteRounds < 8 {
			t.Logf("n=%d attack=%s seed=%d: only %d rounds", n, attack, seed, res.CompleteRounds)
			return false
		}
		return res.MaxSpread <= res.SpreadBound+1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(67))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: same for the primitive-based algorithm with its attack set.
func TestPrimitiveAgreementFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	attacks := []Attack{AttackSilent, AttackCrashMid, AttackRush}
	f := func(rawN, rawRho, rawAttack uint8, seed int64) bool {
		n := 4 + int(rawN%10) // 4..13
		p := bounds.Params{
			N: n, F: bounds.Primitive.MaxFaults(n), Variant: bounds.Primitive,
			Rho:  clock.Rho(float64(rawRho%200+1) * 1e-5),
			DMin: 0.002, DMax: 0.01,
			Period: 1.0, InitialSkew: 0.005,
		}.WithDefaults()
		if p.Validate() != nil {
			return true
		}
		attack := attacks[int(rawAttack)%len(attacks)]
		res := Run(Spec{
			Algo: AlgoPrim, Params: p,
			FaultyCount: p.F, Attack: attack,
			Horizon: 12, Seed: seed,
		})
		return res.WithinSkew && res.CompleteRounds >= 8 &&
			res.MaxSpread <= res.SpreadBound+1e-9
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
