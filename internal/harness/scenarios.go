package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"optsync/internal/analysis"
	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/core/stcast"
	"optsync/internal/network"
	"optsync/internal/node"
)

// Scenario is a registered experiment. Run executes it and returns its
// tables; malformed specs and cancelled batches surface as errors (the
// scenario suite never panics on bad input).
type Scenario struct {
	ID    string
	Title string
	Run   func() ([]*Table, error)
}

// Scenarios returns the full experiment suite in presentation order, one
// entry per table/figure of EXPERIMENTS.md.
func Scenarios() []Scenario {
	return []Scenario{
		{"T1", "Agreement, authenticated algorithm (skew <= Dmax)", T1AuthAgreement},
		{"T2", "Agreement, primitive-based algorithm (skew <= Dmax)", T2PrimAgreement},
		{"T3", "Optimal accuracy vs baselines under attack", T3Accuracy},
		{"T4", "Resilience boundary, authenticated (f = ceil(n/2)-1 vs +1)", T4AuthResilience},
		{"T5", "Resilience boundary, primitive (f = floor((n-1)/3) vs +1)", T5PrimResilience},
		{"T6", "Broadcast primitive: correctness/unforgeability/relay", T6Primitive},
		{"T7", "Message complexity per round (O(n^2))", T7Messages},
		{"T8", "Large-cluster scale-out (n up to 101)", T8Scale},
		{"F1", "Skew-vs-time sawtooth trace", F1Trace},
		{"F2", "Skew vs number of faults (n=13, authenticated)", F2SkewVsFaults},
		{"F3", "Skew vs max delay: ST Theta(d) vs FTM Theta(u+rho*d)", F3SkewVsDelay},
		{"F4", "Reintegration of a late-joining process", F4Reintegration},
		{"F5", "Per-node accuracy envelope fits", F5Envelope},
		{"F6", "Skew vs resynchronization period P", F6SkewVsPeriod},
		{"F7", "Cold-start initialization (extension)", F7ColdStart},
		{"A1", "Ablation: relay step under selective signing", A1RelayAblation},
		{"A2", "Ablation: adjustment constant alpha", A2AlphaAblation},
		{"A3", "Extension: amortized (slewed) adjustment", A3SlewAblation},
		{"W1", "Topology: skew vs WAN region count (extension)", W1SkewVsRegions},
		{"W2", "Topology: convergence across a healed partition (extension)", W2PartitionHeal},
		{"W3", "Topology: degradation on sparse graphs (extension)", W3SparseDegradation},
		{"L1", "Scaling tier: n=2048 on sparse rings (extension)", L1Scale},
		{"L2", "Scaling tier: n=4096 on sparse rings (extension)", L2Scale},
		{"L3", "Scaling tier: n=65536 sparse ring, sharded engine (extension)", L3Scale},
	}
}

// FindScenario returns the scenario with the given id, or false.
func FindScenario(id string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.ID == id {
			return s, true
		}
	}
	return Scenario{}, false
}

// defaultParams is the reference operating point used across experiments:
// quartz-grade drift (1e-4), LAN-grade delays (2-10 ms), 1 s period.
func defaultParams(n int, variant bounds.Variant) bounds.Params {
	return bounds.Params{
		N: n, F: variant.MaxFaults(n), Variant: variant,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

// T1AuthAgreement sweeps n, rho, and dmax at maximum tolerated silent
// faults and checks measured skew and acceptance spread against Dmax and
// beta. The 54-cell grid is a single parallel batch.
func T1AuthAgreement() ([]*Table, error) {
	t := NewTable("T1: agreement, authenticated, f = ceil(n/2)-1 silent",
		"n", "f", "rho", "dmax_s", "max_skew_s", "Dmax_bound_s", "skew", "max_spread_s", "beta_s", "spread")
	var specs []Spec
	for _, n := range []int{3, 5, 7, 9, 15, 25} {
		for _, rho := range []float64{1e-6, 1e-4, 1e-3} {
			for _, dmax := range []float64{0.001, 0.01, 0.05} {
				p := defaultParams(n, bounds.Auth)
				p.Rho = clock.Rho(rho)
				p.DMax = dmax
				p.DMin = dmax / 5
				p.InitialSkew = dmax / 2
				p.Alpha = 0
				p = p.WithDefaults()
				specs = append(specs, Spec{
					Algo: AlgoAuth, Params: p,
					FaultyCount: p.F, Attack: AttackSilent,
					Seed: int64(n*1000) + int64(rho*1e7) + int64(dmax*1e4),
				})
			}
		}
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		p := res.Spec.Params
		t.AddRow(
			fmt.Sprint(p.N), fmt.Sprint(p.F), F(float64(p.Rho)), F(p.DMax),
			F(res.MaxSkew), F(res.SkewBound), FmtBool(res.WithinSkew),
			F(res.MaxSpread), F(res.SpreadBound),
			FmtBool(res.MaxSpread <= res.SpreadBound+1e-9),
		)
	}
	t.AddNote("paper claim: skew <= Dmax = (1+rho)*beta + alpha + drift*(resync window) at optimal resilience")
	return []*Table{t}, nil
}

// T2PrimAgreement is T1 for the non-authenticated algorithm.
func T2PrimAgreement() ([]*Table, error) {
	t := NewTable("T2: agreement, primitive-based, f = floor((n-1)/3) silent",
		"n", "f", "rho", "dmax_s", "max_skew_s", "Dmax_bound_s", "skew", "max_spread_s", "beta_s", "spread")
	var specs []Spec
	for _, n := range []int{4, 7, 10, 16, 31} {
		for _, rho := range []float64{1e-6, 1e-4, 1e-3} {
			p := defaultParams(n, bounds.Primitive)
			p.Rho = clock.Rho(rho)
			p.Alpha = 0
			p = p.WithDefaults()
			specs = append(specs, Spec{
				Algo: AlgoPrim, Params: p,
				FaultyCount: p.F, Attack: AttackSilent,
				Seed: int64(n*100) + int64(rho*1e7),
			})
		}
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		p := res.Spec.Params
		t.AddRow(
			fmt.Sprint(p.N), fmt.Sprint(p.F), F(float64(p.Rho)), F(p.DMax),
			F(res.MaxSkew), F(res.SkewBound), FmtBool(res.WithinSkew),
			F(res.MaxSpread), F(res.SpreadBound),
			FmtBool(res.MaxSpread <= res.SpreadBound+1e-9),
		)
	}
	t.AddNote("primitive acceptance spreads over two hops: beta = 2*dmax")
	return []*Table{t}, nil
}

// T3Accuracy compares long-run logical clock rates: the ST algorithms keep
// the hardware envelope even with maximal silent faults, while CNV under a
// within-threshold bias attack escapes it (its accuracy is not optimal).
func T3Accuracy() ([]*Table, error) {
	t := NewTable("T3: accuracy — long-run clock rate vs hardware envelope",
		"algo", "attack", "env_lo", "env_hi", "bound_lo", "bound_hi", "within")
	type caseSpec struct {
		algo   Algorithm
		attack Attack
		fault  func(p bounds.Params) int
	}
	cases := []caseSpec{
		{AlgoAuth, AttackSilent, func(p bounds.Params) int { return p.F }},
		{AlgoPrim, AttackSilent, func(p bounds.Params) int { return p.F }},
		{AlgoCNV, AttackSilent, func(p bounds.Params) int { return p.F }},
		{AlgoFTM, AttackSilent, func(p bounds.Params) int { return p.F }},
		{AlgoAuth, AttackEquivocate, func(p bounds.Params) int { return p.F }},
		{AlgoCNV, AttackBias, func(p bounds.Params) int { return p.F }},
		{AlgoFTM, AttackBias, func(p bounds.Params) int { return p.F }},
	}
	specs := make([]Spec, 0, len(cases))
	for _, c := range cases {
		variant := bounds.Auth
		if c.algo == AlgoPrim || c.algo == AlgoCNV || c.algo == AlgoFTM {
			variant = bounds.Primitive // f < n/3 for all averaging baselines
		}
		p := defaultParams(7, variant)
		spec := Spec{
			Algo: c.algo, Params: p,
			FaultyCount: c.fault(p), Attack: c.attack,
			Horizon: 120 * p.Period, // long run for a stable slope
			Seed:    int64(len(c.algo)) * 31,
		}
		if c.attack == AttackBias {
			spec.Bias = 3 * p.Dmax() // inside CNV's default Delta = 4*Dmax
		}
		specs = append(specs, spec)
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(string(res.Spec.Algo), string(res.Spec.Attack),
			F(res.EnvLo), F(res.EnvHi), F(res.EnvBoundLo), F(res.EnvBoundHi),
			FmtBool(res.WithinEnvelope))
	}
	t.AddNote("paper claim: ST accuracy is optimal — rates stay within the provable envelope even under attack;")
	t.AddNote("CNV's egocentric mean is dragged ~f*Bias/n per round (rate error Theta(f*Delta/(n*P)));")
	t.AddNote("FTM leaks only the correct-spread scale per round (~7x less here) but still escapes — neither baseline is accuracy-optimal")
	return []*Table{t}, nil
}

// T4AuthResilience runs the rush attack at the resilience boundary: with
// f_actual = ceil(n/2)-1 the coalition cannot forge a quorum and the run
// stays within bounds; with one more faulty node it fires rounds at its
// own pace, destroying the period and accuracy guarantees.
func T4AuthResilience() ([]*Table, error) {
	t := NewTable("T4: authenticated resilience boundary under rush attack",
		"n", "f_cfg", "f_actual", "min_period_s", "Pmin_bound_s", "period", "env_hi", "env_bound_hi", "accuracy")
	var specs []Spec
	for _, n := range []int{3, 5, 7} {
		fCfg := bounds.Auth.MaxFaults(n)
		for _, fActual := range []int{fCfg, fCfg + 1} {
			p := defaultParams(n, bounds.Auth)
			specs = append(specs, Spec{
				Algo: AlgoAuth, Params: p,
				FaultyCount: fActual, Attack: AttackRush,
				RushInterval: p.Period / 5,
				Horizon:      40 * p.Period,
				Seed:         int64(n*10 + fActual),
			})
		}
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		periodOK := res.MinPeriod >= res.PminBound-1e-9
		if res.CompleteRounds == 0 {
			periodOK = false
		}
		t.AddRow(fmt.Sprint(res.Spec.Params.N), fmt.Sprint(res.Spec.Params.F),
			fmt.Sprint(res.Spec.FaultyCount),
			F(res.MinPeriod), F(res.PminBound), FmtBool(periodOK),
			F(res.EnvHi), F(res.EnvBoundHi),
			FmtBool(res.EnvHi <= res.EnvBoundHi))
	}
	t.AddNote("beyond f = ceil(n/2)-1 the coalition alone forges f_cfg+1-signature quorums:")
	t.AddNote("rounds fire at the adversary's pace — periods collapse below Pmin and the clock rate leaves the envelope")
	return []*Table{t}, nil
}

// T5PrimResilience is T4 for the primitive-based algorithm.
func T5PrimResilience() ([]*Table, error) {
	t := NewTable("T5: primitive resilience boundary under rush attack",
		"n", "f_cfg", "f_actual", "min_period_s", "Pmin_bound_s", "period", "env_hi", "env_bound_hi", "accuracy")
	var specs []Spec
	for _, n := range []int{4, 7, 10} {
		fCfg := bounds.Primitive.MaxFaults(n)
		for _, fActual := range []int{fCfg, fCfg + 1} {
			p := defaultParams(n, bounds.Primitive)
			specs = append(specs, Spec{
				Algo: AlgoPrim, Params: p,
				FaultyCount: fActual, Attack: AttackRush,
				RushInterval: p.Period / 5,
				Horizon:      40 * p.Period,
				Seed:         int64(n*10 + fActual),
			})
		}
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		periodOK := res.MinPeriod >= res.PminBound-1e-9 && res.CompleteRounds > 0
		t.AddRow(fmt.Sprint(res.Spec.Params.N), fmt.Sprint(res.Spec.Params.F),
			fmt.Sprint(res.Spec.FaultyCount),
			F(res.MinPeriod), F(res.PminBound), FmtBool(periodOK),
			F(res.EnvHi), F(res.EnvBoundHi),
			FmtBool(res.EnvHi <= res.EnvBoundHi))
	}
	t.AddNote("f_cfg+1 colluding readies trigger the join rule at every correct process,")
	t.AddNote("completing the 2f+1 quorum with no correct clock due")
	return []*Table{t}, nil
}

// T7Messages measures per-round traffic against the O(n^2) bound.
func T7Messages() ([]*Table, error) {
	t := NewTable("T7: message complexity per resynchronization round",
		"algo", "n", "msgs_per_round", "bound", "ratio_to_n2")
	var specs []Spec
	for _, algo := range []Algorithm{AlgoAuth, AlgoPrim} {
		variant := bounds.Auth
		if algo == AlgoPrim {
			variant = bounds.Primitive
		}
		for _, n := range []int{4, 7, 13, 25} {
			p := defaultParams(n, variant)
			specs = append(specs, Spec{
				Algo: algo, Params: p,
				FaultyCount: p.F, Attack: AttackSilent,
				Seed: int64(n),
			})
		}
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		p := res.Spec.Params
		t.AddRow(string(res.Spec.Algo), fmt.Sprint(p.N),
			F(res.MsgsPerRound), fmt.Sprint(p.MessagesPerRound()),
			F(res.MsgsPerRound/float64(p.N*p.N)))
	}
	t.AddNote("each correct process broadcasts once per round (+1 relay broadcast for auth): Theta(n^2) messages")
	return []*Table{t}, nil
}

// F1Trace produces the classic sawtooth: skew grows at the drift rate
// between rounds and collapses at each resynchronization.
func F1Trace() ([]*Table, error) {
	p := defaultParams(5, bounds.Auth)
	p.Rho = clock.Rho(1e-3) // exaggerate drift so the sawtooth is visible
	p = bounds.Params{
		N: p.N, F: p.F, Variant: p.Variant, Rho: p.Rho,
		DMin: p.DMin, DMax: p.DMax, Period: p.Period, InitialSkew: p.InitialSkew,
	}.WithDefaults()
	res, err := RunContext(context.Background(), Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 10 * p.Period, SampleEvery: p.Period / 10,
		KeepSeries: true, Seed: 404,
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("F1: skew vs time (sawtooth)", "t_s", "skew_s")
	for _, s := range res.Series {
		t.AddRow(F(s.T), F(s.Skew))
	}
	t.AddNote("skew ramps at ~2*rho between rounds and drops at each resynchronization (P = %s s)", F(p.Period))
	return []*Table{t}, nil
}

// F2SkewVsFaults sweeps the number of silent faults at n=13.
func F2SkewVsFaults() ([]*Table, error) {
	t := NewTable("F2: skew vs faults (n=13, authenticated)",
		"f", "max_skew_s", "Dmax_bound_s", "within")
	var specs []Spec
	for f := 0; f <= 6; f++ {
		p := defaultParams(13, bounds.Auth)
		p.F = f
		specs = append(specs, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: f, Attack: AttackSilent,
			Seed: int64(f) + 500,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(fmt.Sprint(res.Spec.Params.F),
			F(res.MaxSkew), F(res.SkewBound), FmtBool(res.WithinSkew))
	}
	t.AddNote("skew stays within the bound for every f up to ceil(n/2)-1 = 6")
	return []*Table{t}, nil
}

// F3SkewVsDelay sweeps dmax with the uncertainty u = dmax - dmin held
// fixed: ST skew grows linearly with d (Theta(d)), FTM's with u + rho*d —
// the separation later formalized by Lundelius-Welch/Lynch and sharpened in
// the signature setting by Lenzen-Loss (2022).
func F3SkewVsDelay() ([]*Table, error) {
	const u = 0.002
	t := NewTable("F3: skew vs max delay d (uncertainty u = 2 ms fixed)",
		"dmax_s", "u_s", "st_auth_skew_s", "st_bound_s", "ftm_skew_s")
	var specs []Spec
	for _, dmax := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1} {
		p := defaultParams(7, bounds.Auth)
		p.DMax = dmax
		p.DMin = dmax - u
		p.InitialSkew = u
		p.Alpha = 0
		p = p.WithDefaults()
		specs = append(specs, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSelective,
			Seed: int64(dmax * 1e5),
		})
		pf := defaultParams(7, bounds.Primitive)
		pf.DMax = dmax
		pf.DMin = dmax - u
		pf.InitialSkew = u
		pf.Alpha = 0
		pf = pf.WithDefaults()
		specs = append(specs, Spec{
			Algo: AlgoFTM, Params: pf,
			FaultyCount: pf.F, Attack: AttackSilent,
			Seed: int64(dmax*1e5) + 1,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(results); i += 2 {
		st, ftm := results[i], results[i+1]
		t.AddRow(F(st.Spec.Params.DMax), F(u), F(st.MaxSkew), F(st.SkewBound), F(ftm.MaxSkew))
	}
	t.AddNote("ST pays Theta(d): faulty signers serving only half the nodes force the rest onto the relay path (one full delay);")
	t.AddNote("FTM's midpoint pays Theta(u + rho*P): reading error only, so its skew barely moves with d")
	return []*Table{t}, nil
}

// F5Envelope reports per-node envelope fits for a long authenticated run.
func F5Envelope() ([]*Table, error) {
	p := defaultParams(7, bounds.Auth)
	spec := Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: 200 * p.Period,
		Seed:    606,
	}
	spec = spec.withDefaults()
	cluster, err := startedCluster(spec)
	if err != nil {
		return nil, err
	}
	cluster.Run(spec.Horizon)
	correct := correctIDs(p.N, spec.FaultyCount)

	t := NewTable("F5: per-node logical clock rate (long run, P=1s)",
		"node", "rate", "r2", "pulses")
	xs := make(map[node.ID][]float64)
	ys := make(map[node.ID][]float64)
	for _, rec := range cluster.Pulses {
		xs[rec.Node] = append(xs[rec.Node], rec.Real)
		ys[rec.Node] = append(ys[rec.Node], rec.Logical)
	}
	var idsSorted []node.ID
	for _, id := range correct {
		if len(xs[id]) >= 2 {
			idsSorted = append(idsSorted, id)
		}
	}
	sort.Ints(idsSorted)
	lo, hi := p.EnvelopeRateBoundsOver(spec.Horizon - p.Period)
	for _, id := range idsSorted {
		fit, err := analysis.LinearFit(xs[id], ys[id])
		if err != nil {
			continue
		}
		t.AddRow(fmt.Sprint(id), F(fit.Slope), F(fit.R2), fmt.Sprint(fit.N))
	}
	t.AddNote("hardware envelope with slack: [" + F(lo) + ", " + F(hi) + "]; all rates must fall inside")
	return []*Table{t}, nil
}

// F6SkewVsPeriod sweeps the resynchronization period: skew grows linearly
// in P with slope ~ relative drift (2*rho), the paper's trade-off between
// message rate and precision.
func F6SkewVsPeriod() ([]*Table, error) {
	t := NewTable("F6: skew vs resynchronization period P (authenticated, n=7)",
		"P_s", "max_skew_s", "Dmax_bound_s", "within")
	var specs []Spec
	for _, period := range []float64{0.5, 1, 2, 5, 10} {
		p := defaultParams(7, bounds.Auth)
		p.Period = period
		p.Rho = clock.Rho(1e-3) // visible drift term
		specs = append(specs, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 20 * period,
			Seed:    int64(period * 100),
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(F(res.Spec.Params.Period),
			F(res.MaxSkew), F(res.SkewBound), FmtBool(res.WithinSkew))
	}
	t.AddNote("the drift term 2*rho*(1+rho)*P dominates for large P: skew is linear in P")
	return []*Table{t}, nil
}

// castHost adapts the general broadcast primitive to the harness for T6.
type castHost struct {
	rx     *stcast.Receiver
	dealer bool
	tags   []string
	// accepts: tag -> real acceptance time.
	accepts map[string]float64
}

func newCastHost(dealer bool, tags []string) *castHost {
	h := &castHost{dealer: dealer, tags: tags, accepts: make(map[string]float64)}
	h.rx = stcast.NewReceiver(func(env node.Env, src node.ID, tag string) {
		h.accepts[fmt.Sprintf("%d/%s", src, tag)] = env.RealTime()
	})
	return h
}

func (h *castHost) Start(env node.Env) {
	if !h.dealer {
		return
	}
	for i, tag := range h.tags {
		tag := tag
		env.AtLogical(float64(i+1)*0.1, func() { h.rx.Broadcast(env, tag) })
	}
}

func (h *castHost) Deliver(env node.Env, from node.ID, msg node.Message) {
	h.rx.Deliver(env, from, msg)
}

// forgeHost is a faulty process that spams echoes for a tag nobody
// broadcast and spoofed inits in the dealer's name.
type forgeHost struct{ victim node.ID }

func (f *forgeHost) Start(env node.Env) {
	for i := 0; i < 20; i++ {
		i := i
		env.AtLogical(float64(i)*0.05, func() {
			env.Broadcast(stcast.Init(f.victim, "forged"))
			env.Broadcast(stcast.Echo(f.victim, "forged"))
		})
	}
}

func (f *forgeHost) Deliver(node.Env, node.ID, node.Message) {}

// T6Primitive exercises the general (designated-dealer) broadcast
// primitive under forgery attack across cluster sizes and reports property
// violations (which must all be zero).
func T6Primitive() ([]*Table, error) {
	t := NewTable("T6: broadcast primitive properties under forgery attack",
		"n", "f", "broadcasts", "accept_violations", "forged_accepts", "max_spread_s", "relay_bound_s")
	const dmax = 0.01
	for _, n := range []int{4, 7, 13} {
		f := (n - 1) / 3
		hosts := make(map[int]*castHost)
		tags := []string{"a", "b", "c", "d", "e"}
		cluster := node.NewCluster(node.Config{
			N: n, F: f, Seed: int64(n) * 7,
			Delay: network.Uniform{Min: dmax / 5, Max: dmax},
			Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
				return clock.NewConstant(0, 1, 0)
			},
			Protocols: func(i int) node.Protocol {
				if i >= n-f {
					return &forgeHost{victim: 0}
				}
				h := newCastHost(i == 0, tags)
				hosts[i] = h
				return h
			},
		})
		cluster.Start()
		cluster.Run(5)

		var missing, forged int
		var maxSpread float64
		for _, tag := range tags {
			key := "0/" + tag
			var times []float64
			for _, h := range hosts {
				at, ok := h.accepts[key]
				if !ok {
					missing++
					continue
				}
				times = append(times, at)
			}
			if len(times) > 1 {
				sort.Float64s(times)
				if s := times[len(times)-1] - times[0]; s > maxSpread {
					maxSpread = s
				}
			}
		}
		for _, h := range hosts {
			for k := range h.accepts {
				if k == "0/forged" {
					forged++
				}
			}
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(f), fmt.Sprint(len(tags)),
			fmt.Sprint(missing), fmt.Sprint(forged), F(maxSpread), F(2*dmax))
	}
	t.AddNote("correctness: every correct process accepts every dealer broadcast (accept_violations = 0);")
	t.AddNote("unforgeability: no correct process accepts the forged tag (forged_accepts = 0);")
	t.AddNote("relay: acceptance spread <= 2*dmax")
	return []*Table{t}, nil
}

// F4Reintegration boots one node late into a running authenticated cluster
// and measures how long it takes to synchronize (the paper's integration
// property: within one period).
func F4Reintegration() ([]*Table, error) {
	t := NewTable("F4: reintegration of a late joiner (authenticated, n=5)",
		"join_at_s", "first_pulse_s", "sync_latency_s", "one_period_bound_s", "within", "skew_after_s", "Dmax_s")
	p := defaultParams(5, bounds.Auth)
	joiner := p.N - 1 // last node joins late; no faulty nodes
	joins := []float64{5.3, 10.7, 17.1}
	specs := make([]Spec, 0, len(joins))
	for _, joinAt := range joins {
		specs = append(specs, Spec{
			Algo: AlgoAuth, Params: p, Attack: AttackNone,
			Seed:    int64(joinAt * 10),
			Horizon: 30 * p.Period,
			// The joiner boots late with a wildly wrong clock (fresh from
			// repair); everyone else starts inside the initial skew.
			StartAt:     map[int]float64{joiner: joinAt},
			ClockOffset: map[int]float64{joiner: 17},
			KeepSeries:  true,
		})
	}
	results, err := runAll(specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		joinAt := joins[i]
		var firstPulse float64 = -1
		for _, rec := range res.Pulses {
			if rec.Node == joiner {
				firstPulse = rec.Real
				break
			}
		}
		var skewAfter float64
		if n := len(res.Series); n > 0 {
			skewAfter = res.Series[n-1].Skew
		}
		latency := firstPulse - joinAt
		bound := p.Pmax() + p.Beta()
		t.AddRow(F(joinAt), F(firstPulse), F(latency), F(bound),
			FmtBool(firstPulse >= 0 && latency <= bound),
			F(skewAfter), F(p.DmaxWithStart()))
	}
	t.AddNote("a joiner accepts the first round whose evidence it observes: synchronized within one period")
	return []*Table{t}, nil
}
