package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"optsync/internal/core/bounds"
	"optsync/internal/network"
)

// TopologyBuilder constructs the connectivity for a cluster. arg is the
// parameter text after the colon of a "name:arg" topology spec (empty
// when absent); p is the validated parameterization, from which builders
// derive delay-related constants (the built-in WAN hop delay scales with
// DMax, for example).
type TopologyBuilder func(arg string, p bounds.Params) (network.Topology, error)

var topoRegistry = struct {
	mu       sync.RWMutex
	builders map[string]TopologyBuilder
}{builders: make(map[string]TopologyBuilder)}

// RegisterTopology makes a connectivity shape constructible by name
// through Spec.Topology, alongside the built-ins ("mesh", "wan:R",
// "ring:D"). Parameterized names use a colon: Spec.Topology "wan:4"
// resolves the builder registered under "wan" with arg "4". Same
// registration contract as RegisterProtocol: empty names, nil builders,
// and duplicates panic.
func RegisterTopology(name string, build TopologyBuilder) {
	if name == "" {
		panic("harness: RegisterTopology with empty name")
	}
	if strings.Contains(name, ":") {
		panic("harness: topology names must not contain ':' (it separates the arg)")
	}
	if build == nil {
		panic("harness: RegisterTopology with nil builder")
	}
	topoRegistry.mu.Lock()
	defer topoRegistry.mu.Unlock()
	if _, dup := topoRegistry.builders[name]; dup {
		panic(fmt.Sprintf("harness: topology %q registered twice", name))
	}
	topoRegistry.builders[name] = build
}

// Topologies returns the registered topology names, sorted.
func Topologies() []string {
	topoRegistry.mu.RLock()
	defer topoRegistry.mu.RUnlock()
	out := make([]string, 0, len(topoRegistry.builders))
	for name := range topoRegistry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func lookupTopology(name string) (TopologyBuilder, error) {
	topoRegistry.mu.RLock()
	defer topoRegistry.mu.RUnlock()
	build, ok := topoRegistry.builders[name]
	if !ok {
		names := make([]string, 0, len(topoRegistry.builders))
		for n := range topoRegistry.builders {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("harness: unknown topology %q (registered: %v)", name, names)
	}
	return build, nil
}

// topologyFor resolves Spec.Topology and layers Spec.Partitions on top.
// It returns nil for the default spec (empty topology, no partitions),
// which the network treats as the full mesh.
func topologyFor(spec Spec) (network.Topology, error) {
	var topo network.Topology
	if spec.Topology != "" {
		name, arg := spec.Topology, ""
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name, arg = name[:i], name[i+1:]
			if arg == "" {
				// "wan:" is a truncated spec, not a request for the
				// default: misconfiguring silently would be worse than
				// failing loudly.
				return nil, fmt.Errorf("harness: topology %q: missing argument after ':'", spec.Topology)
			}
		}
		build, err := lookupTopology(name)
		if err != nil {
			return nil, err
		}
		topo, err = build(arg, spec.Params)
		if err != nil {
			return nil, fmt.Errorf("harness: topology %q: %w", spec.Topology, err)
		}
	}
	if len(spec.Partitions) == 0 {
		return topo, nil
	}
	base := topo
	if base == nil {
		base = network.FullMesh{}
	}
	windows := make([]network.PartitionWindow, 0, len(spec.Partitions))
	for _, pw := range spec.Partitions {
		if pw.LeftSize <= 0 || pw.LeftSize >= spec.Params.N {
			return nil, fmt.Errorf("harness: partition LeftSize %d outside (0,%d)", pw.LeftSize, spec.Params.N)
		}
		left := make([]bool, spec.Params.N)
		for i := 0; i < pw.LeftSize; i++ {
			left[i] = true
		}
		windows = append(windows, network.PartitionWindow{At: pw.At, Heal: pw.Heal, Left: left})
	}
	return &network.Partitioned{Base: base, Windows: windows}, nil
}

func init() {
	RegisterTopology("mesh", func(arg string, _ bounds.Params) (network.Topology, error) {
		if arg != "" {
			return nil, fmt.Errorf("mesh takes no argument, got %q", arg)
		}
		return network.FullMesh{}, nil
	})

	// wan:R — R cliques on a ring; inter-region links pay a hop envelope
	// of [2*DMax, 4*DMax] on top of the base policy (a WAN hop costs a
	// few LAN delays).
	RegisterTopology("wan", func(arg string, p bounds.Params) (network.Topology, error) {
		regions := 2
		if arg != "" {
			r, err := strconv.Atoi(arg)
			if err != nil || r < 1 {
				return nil, fmt.Errorf("invalid region count %q", arg)
			}
			regions = r
		}
		if regions > p.N {
			return nil, fmt.Errorf("%d regions for %d nodes", regions, p.N)
		}
		return network.NewWANRegions(p.N, regions, 2*p.DMax), nil
	})

	// ring:D — the circulant graph of even degree D (node i linked to
	// i±1..i±D/2), the fixed-degree family for sparse-connectivity
	// degradation sweeps.
	RegisterTopology("ring", func(arg string, p bounds.Params) (network.Topology, error) {
		degree := 2
		if arg != "" {
			d, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("invalid degree %q", arg)
			}
			degree = d
		}
		if degree < 2 || degree%2 != 0 || degree >= p.N {
			return nil, fmt.Errorf("degree %d must be even and in [2,%d] (use \"mesh\" for full connectivity)", degree, p.N-1)
		}
		return network.NewCirculant(p.N, degree), nil
	})
}
