package harness

import (
	"strconv"
	"testing"
)

// assertScaleTable checks the shared L1/L2 contract: every row completed
// at least (horizon - 1) rounds — the cluster keeps resynchronizing at
// scale — with a finite, positive skew.
func assertScaleTable(t *testing.T, tb *Table, wantRows int) {
	t.Helper()
	if len(tb.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), wantRows)
	}
	rounds := colIndex(t, tb, "complete_rounds")
	skew := colIndex(t, tb, "max_skew_s")
	horizon := colIndex(t, tb, "horizon_s")
	for _, row := range tb.Rows {
		r, err := strconv.Atoi(row[rounds])
		if err != nil {
			t.Fatalf("bad complete_rounds %q: %v", row[rounds], err)
		}
		h, err := strconv.ParseFloat(row[horizon], 64)
		if err != nil {
			t.Fatalf("bad horizon %q: %v", row[horizon], err)
		}
		if float64(r) < h-1 {
			t.Fatalf("scaling run stalled: %d rounds over %v s horizon: %v", r, h, row)
		}
		s, err := strconv.ParseFloat(row[skew], 64)
		if err != nil || s <= 0 || s > 1 {
			t.Fatalf("implausible max skew %q: %v", row[skew], row)
		}
	}
}

func TestL1ScaleCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("large clusters")
	}
	assertScaleTable(t, firstTable(t, L1Scale), 2)
}

func TestL2ScaleCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("large clusters")
	}
	assertScaleTable(t, firstTable(t, L2Scale), 1)
}

func TestL3ScaleCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("large clusters")
	}
	assertScaleTable(t, firstTable(t, L3Scale), 1)
}
