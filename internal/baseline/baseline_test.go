package baseline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"optsync/internal/clock"
	"optsync/internal/network"
	"optsync/internal/node"
)

func testConfig() Config {
	return Config{
		Period: 1.0,
		Window: 0.1,
		DMin:   0.002, DMax: 0.01,
		F: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero period":    {Period: 0, Window: 0.1, DMax: 1},
		"zero window":    {Period: 1, Window: 0, DMax: 1},
		"window>=period": {Period: 1, Window: 1, DMax: 1},
		"bad delays":     {Period: 1, Window: 0.1, DMin: 2, DMax: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: New did not panic", name)
				}
			}()
			New(cfg, &FTM{})
		}()
	}
}

func TestCNVAdjustEgocentric(t *testing.T) {
	c := &CNV{Delta: 1.0}
	offsets := map[node.ID]float64{
		1: 0.5,  // accepted
		2: -0.5, // accepted
		3: 5.0,  // outlier: replaced by own 0
	}
	// n=5: (0.5 - 0.5 + 0 + 0 + 0)/5 = 0.
	if got := c.Adjust(offsets, 0, 5); got != 0 {
		t.Fatalf("Adjust = %v, want 0", got)
	}
	offsets = map[node.ID]float64{1: 0.6}
	if got := c.Adjust(offsets, 0, 3); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Adjust = %v, want 0.2", got)
	}
	if c.Name() != "cnv" {
		t.Fatal("name")
	}
}

func TestFTMAdjustMidpoint(t *testing.T) {
	m := &FTM{F: 1}
	offsets := map[node.ID]float64{
		1: -0.4, 2: 0.2, 3: 0.6, 4: 9.9, // 9.9 is Byzantine
	}
	// vals sorted: [-0.4, 0, 0.2, 0.6, 9.9]; trim 1 each side -> [0, 0.2, 0.6]
	// midpoint of extremes: 0.3.
	if got := m.Adjust(offsets, 0, 5); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Adjust = %v, want 0.3", got)
	}
	if m.Name() != "ftm" {
		t.Fatal("name")
	}
}

func TestFTMAdjustTooFewReadings(t *testing.T) {
	m := &FTM{F: 2}
	// Only 3 readings (own + 2) with F=2: 2*F >= len, hold at 0.
	offsets := map[node.ID]float64{1: 5, 2: -5}
	if got := m.Adjust(offsets, 0, 7); got != 0 {
		t.Fatalf("Adjust = %v, want 0 (hold)", got)
	}
}

// Property: FTM's adjustment is always within the range of the non-discarded
// readings, hence within [min, max] of all readings — Byzantine values
// cannot drag the clock beyond the correct extremes when there are at most
// F of them.
func TestFTMBoundedByExtremesProperty(t *testing.T) {
	f := func(raw []int16, fRaw uint8) bool {
		ff := int(fRaw%3) + 1
		m := &FTM{F: ff}
		offsets := make(map[node.ID]float64, len(raw))
		for i, r := range raw {
			offsets[node.ID(i+1)] = float64(r) / 100
		}
		got := m.Adjust(offsets, 0, len(offsets)+1)
		vals := []float64{0}
		for _, o := range offsets {
			vals = append(vals, o)
		}
		sort.Float64s(vals)
		if len(vals) <= 2*ff {
			return got == 0
		}
		// Within the trimmed range.
		return got >= vals[ff]-1e-12 && got <= vals[len(vals)-1-ff]+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: CNV's adjustment is bounded by Delta (every accepted term is,
// and the mean over n includes zeros).
func TestCNVBoundedByDeltaProperty(t *testing.T) {
	f := func(raw []int16, deltaRaw uint8) bool {
		delta := float64(deltaRaw%50+1) / 10
		c := &CNV{Delta: delta}
		offsets := make(map[node.ID]float64, len(raw))
		for i, r := range raw {
			offsets[node.ID(i+1)] = float64(r) / 100
		}
		got := c.Adjust(offsets, 0, len(offsets)+1)
		return math.Abs(got) <= delta+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func buildCluster(t *testing.T, n int, mk func() *Protocol) *node.Cluster {
	t.Helper()
	rho := clock.Rho(1e-4)
	return node.NewCluster(node.Config{
		N: n, F: 1, Seed: 9,
		Rho:   rho,
		Delay: network.Uniform{Min: 0.002, Max: 0.01},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			return clock.NewHardware(rng.Float64()*0.01, rho,
				clock.RandomWalk{Rho: rho, MinDur: 0.2, MaxDur: 1}, rng)
		},
		Protocols: func(i int) node.Protocol { return mk() },
	})
}

func TestCNVConverges(t *testing.T) {
	c := buildCluster(t, 5, func() *Protocol { return NewCNV(testConfig(), 0.1) })
	c.Start()
	c.Run(20)
	ids := []node.ID{0, 1, 2, 3, 4}
	if skew := c.Skew(ids); skew > 0.02 {
		t.Fatalf("CNV did not converge: skew %v", skew)
	}
	// Rounds progressed on all nodes.
	for _, nd := range c.Nodes {
		if r := nd.Protocol().(*Protocol).Round(); r < 18 {
			t.Fatalf("node %d only reached round %d", nd.ID(), r)
		}
	}
}

func TestFTMConverges(t *testing.T) {
	c := buildCluster(t, 5, func() *Protocol { return NewFTM(testConfig()) })
	c.Start()
	c.Run(20)
	ids := []node.ID{0, 1, 2, 3, 4}
	if skew := c.Skew(ids); skew > 0.02 {
		t.Fatalf("FTM did not converge: skew %v", skew)
	}
	if len(c.Pulses) == 0 {
		t.Fatal("no pulses recorded")
	}
}

func TestFTMTightensLargeInitialSkew(t *testing.T) {
	rho := clock.Rho(1e-4)
	c := node.NewCluster(node.Config{
		N: 5, F: 1, Seed: 10,
		Rho:   rho,
		Delay: network.Uniform{Min: 0.002, Max: 0.01},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			// Initial offsets spread over 60 ms.
			return clock.NewConstant(float64(i)*0.015, 1, rho)
		},
		Protocols: func(i int) node.Protocol { return NewFTM(testConfig()) },
	})
	c.Start()
	ids := []node.ID{0, 1, 2, 3, 4}
	before := c.Skew(ids)
	c.Run(20)
	after := c.Skew(ids)
	if after >= before/3 {
		t.Fatalf("FTM did not tighten skew: %v -> %v", before, after)
	}
}

func TestDeliverRejectsGarbage(t *testing.T) {
	c := buildCluster(t, 3, func() *Protocol { return NewFTM(testConfig()) })
	c.Start()
	c.Run(0.1)
	p := c.Nodes[0].Protocol().(*Protocol)
	before := p.Round()
	p.Deliver(c.Nodes[0], 1, network.Raw("garbage"))
	p.Deliver(c.Nodes[0], 1, ClockMessage(99, 1))
	p.Deliver(c.Nodes[0], 1, ClockMessage(1, math.NaN()))
	p.Deliver(c.Nodes[0], 1, ClockMessage(1, math.Inf(1)))
	p.Deliver(c.Nodes[0], 0, ClockMessage(1, 1)) // own echo
	if p.Round() != before {
		t.Fatal("garbage advanced the round")
	}
	if len(p.offsets) != 0 {
		t.Fatalf("garbage was collected: %v", p.offsets)
	}
	p.Deliver(c.Nodes[0], 1, ClockMessage(1, 1)) // valid
	if len(p.offsets) != 1 {
		t.Fatalf("valid reading not collected: %v", p.offsets)
	}
}
