// Package baseline implements the prior clock synchronization algorithms
// that Srikanth & Toueg's paper compares against, in the same runtime
// framework, so the optimal-accuracy claim can be demonstrated
// empirically:
//
//   - CNV: the interactive convergence algorithm of Lamport &
//     Melliar-Smith (1985). Each process periodically collects everyone's
//     clock readings and adopts the "egocentric mean": readings further
//     than a threshold Delta from its own are replaced by its own value
//     before averaging. Tolerates f < n/3, but a Byzantine process can
//     bias every average by just under Delta/n per round, so the
//     synchronized clocks' long-run rate deviates from the hardware rate
//     by up to f*Delta/(n*P) — accuracy is NOT optimal, which experiment
//     T3 shows.
//
//   - FTM: the fault-tolerant midpoint convergence function of Lundelius
//     Welch & Lynch (1988). Offsets are sorted, the f lowest and f highest
//     are discarded, and the midpoint of the remaining extremes is
//     adopted. Byzantine readings inside the correct range can still bias
//     the midpoint, but never past the correct extremes, so FTM degrades
//     far more gracefully than CNV; its skew constant is O(u + rho*P),
//     making it the natural contrast for experiment F3.
//
// Both algorithms estimate peer clock offsets the same way: a process
// broadcasts its logical clock value at logical time k*P; a receiver
// estimates the sender's clock as value + (dmin+dmax)/2 at the reception
// instant and records the difference to its own clock. The reading error
// is at most (dmax-dmin)/2 + drift terms, exactly the model of the papers.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"optsync/internal/network"
	"optsync/internal/node"
)

// KindClock carries the sender's logical clock value at send time for
// resynchronization round Round. Scalar-only: a clock report crosses the
// network without allocating.
var KindClock = network.NewKind("baseline/clock")

// ClockMessage assembles a clock-report envelope for round round.
func ClockMessage(round int, value float64) node.Message {
	return node.Message{Kind: KindClock, Round: round, Value: value}
}

// Config parameterizes either baseline.
type Config struct {
	// Period is the logical time between resynchronizations.
	Period float64
	// Window is how long (logical time) after k*P a process collects
	// readings before applying its adjustment. Must exceed
	// (1+rho)*dmax + expected skew so all correct readings arrive.
	Window float64
	// DMin, DMax are the delay bounds used for midpoint compensation.
	DMin, DMax float64
	// F is the number of extreme readings to discard (FTM) / the fault
	// bound (CNV averaging always spans all n slots).
	F int
}

func (c Config) validate() {
	if c.Period <= 0 || c.Window <= 0 || c.Window >= c.Period {
		panic(fmt.Sprintf("baseline: invalid period/window %v/%v", c.Period, c.Window))
	}
	if c.DMax < c.DMin || c.DMin < 0 {
		panic(fmt.Sprintf("baseline: invalid delays [%v, %v]", c.DMin, c.DMax))
	}
}

// midDelay is the delay compensation added to received clock values.
func (c Config) midDelay() float64 { return (c.DMin + c.DMax) / 2 }

// Convergence maps collected peer offsets (self offset is always 0 and is
// not in the map) to the adjustment to apply.
type Convergence interface {
	// Adjust returns the clock adjustment given offsets by sender. n is
	// the cluster size.
	Adjust(offsets map[node.ID]float64, self node.ID, n int) float64
	// Name identifies the convergence function in reports.
	Name() string
}

// Protocol is the shared round structure of both baselines: broadcast own
// clock at k*P, collect until k*P+Window, adjust by the convergence
// function, repeat.
type Protocol struct {
	cfg  Config
	conv Convergence

	round   int
	offsets map[node.ID]float64
	timer   node.Timer
}

var _ node.Protocol = (*Protocol)(nil)

// New builds a baseline protocol around the given convergence function.
func New(cfg Config, conv Convergence) *Protocol {
	cfg.validate()
	return &Protocol{cfg: cfg, conv: conv, offsets: make(map[node.ID]float64)}
}

// NewCNV builds interactive convergence with egocentric threshold delta.
func NewCNV(cfg Config, delta float64) *Protocol {
	return New(cfg, &CNV{Delta: delta})
}

// NewFTM builds the fault-tolerant midpoint baseline.
func NewFTM(cfg Config) *Protocol {
	return New(cfg, &FTM{F: cfg.F})
}

// Round returns the last completed resynchronization round.
func (p *Protocol) Round() int { return p.round }

// Start implements node.Protocol.
func (p *Protocol) Start(env node.Env) {
	p.armBroadcast(env)
}

func (p *Protocol) armBroadcast(env node.Env) {
	env.Cancel(p.timer)
	k := p.round + 1
	p.timer = env.AtLogical(float64(k)*p.cfg.Period, func() {
		p.broadcastAndCollect(env, k)
	})
}

func (p *Protocol) broadcastAndCollect(env node.Env, k int) {
	p.offsets = make(map[node.ID]float64)
	env.Broadcast(ClockMessage(k, env.LogicalTime()))
	p.timer = env.AtLogical(float64(k)*p.cfg.Period+p.cfg.Window, func() {
		p.applyAdjustment(env, k)
	})
}

func (p *Protocol) applyAdjustment(env node.Env, k int) {
	p.round = k
	adj := p.conv.Adjust(p.offsets, env.ID(), env.N())
	env.SetLogical(env.LogicalTime() + adj)
	env.Pulse(k)
	p.armBroadcast(env)
}

// Deliver implements node.Protocol.
func (p *Protocol) Deliver(env node.Env, from node.ID, msg node.Message) {
	if msg.Kind != KindClock {
		return
	}
	if msg.Round != p.round+1 || from == env.ID() {
		return // stale, future-round, or own echo
	}
	if math.IsNaN(msg.Value) || math.IsInf(msg.Value, 0) {
		return // Byzantine garbage
	}
	// Estimate of sender's clock minus own clock at this instant.
	est := msg.Value + p.cfg.midDelay()
	p.offsets[from] = est - env.LogicalTime()
}

// CNV is Lamport & Melliar-Smith's egocentric mean.
type CNV struct {
	// Delta is the egocentric threshold: readings with |offset| > Delta
	// are replaced by the process's own value (offset 0).
	Delta float64
}

var _ Convergence = (*CNV)(nil)

// Adjust implements Convergence.
func (c *CNV) Adjust(offsets map[node.ID]float64, self node.ID, n int) float64 {
	var sum float64
	for _, o := range offsets {
		if math.Abs(o) > c.Delta {
			continue // egocentric: substitute own reading (0)
		}
		sum += o
	}
	// Missing senders and the process itself contribute 0 (own value).
	return sum / float64(n)
}

// Name implements Convergence.
func (c *CNV) Name() string { return "cnv" }

// FTM is the fault-tolerant midpoint: discard the F lowest and F highest
// readings, adopt the midpoint of the remaining extremes.
type FTM struct {
	F int
}

var _ Convergence = (*FTM)(nil)

// Adjust implements Convergence.
func (m *FTM) Adjust(offsets map[node.ID]float64, self node.ID, n int) float64 {
	vals := make([]float64, 0, len(offsets)+1)
	vals = append(vals, 0) // own clock
	for _, o := range offsets {
		vals = append(vals, o)
	}
	sort.Float64s(vals)
	if len(vals) <= 2*m.F {
		return 0 // too few readings to discard safely; hold
	}
	trimmed := vals[m.F : len(vals)-m.F]
	return (trimmed[0] + trimmed[len(trimmed)-1]) / 2
}

// Name implements Convergence.
func (m *FTM) Name() string { return "ftm" }
