package fabric

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"optsync/internal/campaign"
	"optsync/internal/harness"
)

// BenchmarkCoordinatorRPC measures the coordinator's loopback RPC
// throughput on its two hot endpoints: one op is a full worker
// round-trip — one /lease checkout (1 cell) plus one /report submission
// (JSON decode, key check, store write, lease settle) — i.e. 2 RPCs.
// The scripts/bench_fabric.sh gate derives RPCs/sec as 2e9/(ns/op) and
// fails below 2000. The campaign is sized to b.N up front (seed
// replicates are free to expand), so every iteration settles a fresh
// cell exactly as a real fleet would.
func BenchmarkCoordinatorRPC(b *testing.B) {
	c := testCampaign()
	c.Name = "bench-rpc"
	c.Axes = []campaign.Axis{{Field: "faulty", Values: campaign.Ints(0)}}
	// One cell per op; expansion and keying are untimed setup.
	c.Seeds = b.N
	store, err := campaign.Open(b.TempDir() + "/store")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(c, store, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := hs.Client()

	leaseBody, _ := json.Marshal(LeaseRequest{Worker: "bench", Max: 1})
	canned := harness.Result{Spec: c.Base, MaxSkew: 1e-3}
	post := func(path string, body []byte, out any) {
		resp, err := client.Post(hs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lease LeaseResponse
		post("/lease", leaseBody, &lease)
		if len(lease.Cells) != 1 {
			b.Fatalf("op %d: leased %d cells", i, len(lease.Cells))
		}
		cell := lease.Cells[0]
		res := canned
		res.Spec = cell.Spec
		body, err := json.Marshal(ReportRequest{Worker: "bench",
			Cells: []CellReport{{Index: cell.Index, Key: cell.Key, Result: res}}})
		if err != nil {
			b.Fatal(err)
		}
		var ack ReportResponse
		post("/report", body, &ack)
		if ack.Accepted != 1 {
			b.Fatalf("op %d: ack %+v", i, ack)
		}
	}
	b.StopTimer()
	if done := srv.table.doneCount(); done != b.N {
		b.Fatalf("settled %d cells, want %d", done, b.N)
	}
}
