package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"optsync/internal/campaign"
)

// startServe runs Serve in a goroutine and returns the bound address
// plus a channel carrying its outcome.
type serveOut struct {
	report *campaign.Report
	err    error
}

func startServe(t *testing.T, ctx context.Context, store *campaign.Store, opts ServeOptions) (string, <-chan serveOut) {
	t.Helper()
	ready := make(chan string, 1)
	opts.Ready = func(addr string) { ready <- addr }
	if opts.Linger == 0 {
		opts.Linger = 50 * time.Millisecond
	}
	out := make(chan serveOut, 1)
	go func() {
		report, err := Serve(ctx, testCampaign(), store, opts)
		out <- serveOut{report, err}
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, out
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never bound")
		return "", nil
	}
}

// TestServeFleetEndToEnd: Serve + two RunWorker loops over a real TCP
// listener complete the campaign; the returned report's groups match
// the single-process reference, and CompactOnExit leaves a compacted
// store a plain resume run answers from.
func TestServeFleetEndToEnd(t *testing.T) {
	want := referenceGroups(t)
	dir := t.TempDir() + "/store"
	store := quietStore(t, dir)
	url, out := startServe(t, context.Background(), store, ServeOptions{
		ServerOptions: ServerOptions{LeaseBatch: 2},
		CompactOnExit: true,
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for wi := 0; wi < 2; wi++ {
		wi := wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[wi] = NewWorker(url, WorkerOptions{Name: fmt.Sprintf("w%d", wi), Batch: 2,
				PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(context.Background())
		}()
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", wi, err)
		}
	}
	res := <-out
	if res.err != nil {
		t.Fatal(res.err)
	}
	if got := marshalGroups(t, res.report.Groups); !bytes.Equal(got, want) {
		t.Fatal("Serve report diverges from single-process groups")
	}
	if store.CompactedLen() != res.report.Total {
		t.Fatalf("CompactOnExit left %d of %d cells compacted", store.CompactedLen(), res.report.Total)
	}
	// The compacted store is a normal campaign store.
	resumed, err := campaign.Run(context.Background(), testCampaign(),
		campaign.Options{Store: quietStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 {
		t.Fatalf("resume after served fleet executed %d cells", resumed.Executed)
	}
}

// TestServeGracefulCancel interrupts a coordinator mid-campaign
// (SIGINT's code path: context cancellation), checks the partial report
// and that a second Serve finishes exactly the remaining cells.
func TestServeGracefulCancel(t *testing.T) {
	want := referenceGroups(t)
	dir := t.TempDir() + "/store"
	store := quietStore(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	url, out := startServe(t, ctx, store, ServeOptions{
		ServerOptions: ServerOptions{
			LeaseBatch: 2,
			Progress: func(done, total int) {
				if done >= 4 {
					cancel() // interrupt once a third of the campaign settled
				}
			},
		},
	})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go NewWorker(url, WorkerOptions{Name: "w", Batch: 2,
		PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(wctx)

	res := <-out
	wcancel()
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("interrupted Serve error = %v, want context.Canceled", res.err)
	}
	if res.report == nil || res.report.Total != 12 {
		t.Fatalf("interrupted Serve report = %+v", res.report)
	}
	settled := len(res.report.Cells)
	if settled < 4 || settled >= 12 {
		t.Fatalf("interrupted Serve settled %d cells, want a strict partial >= 4", settled)
	}

	// Re-serve over the same store: preloads the settled cells, a worker
	// finishes the rest, aggregates match the reference byte-for-byte.
	url2, out2 := startServe(t, context.Background(), quietStore(t, dir), ServeOptions{})
	if _, err := NewWorker(url2, WorkerOptions{Name: "w2", Batch: 4,
		PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	res2 := <-out2
	if res2.err != nil {
		t.Fatal(res2.err)
	}
	if res2.report.CacheHits < settled {
		t.Fatalf("re-serve preloaded %d cells, want >= %d", res2.report.CacheHits, settled)
	}
	if got := marshalGroups(t, res2.report.Groups); !bytes.Equal(got, want) {
		t.Fatal("resumed serve aggregates diverge")
	}
}

// cancelOnReport cancels the given context the moment the first /report
// leaves the worker — the shutdown race the grace window exists for.
type cancelOnReport struct {
	inner  http.RoundTripper
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnReport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == "/report" {
		c.once.Do(c.cancel)
	}
	return c.inner.RoundTrip(req)
}

// TestWorkerReportGraceFlushesFinishedBatch: cancelling the worker's
// context during its first report must not lose the finished batch —
// the grace window lands it, and Run returns the cancellation.
func TestWorkerReportGraceFlushesFinishedBatch(t *testing.T) {
	store := quietStore(t, t.TempDir()+"/store")
	srv, err := NewServer(testCampaign(), store, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(hs.URL, WorkerOptions{Name: "graced", Batch: 3,
		PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond,
		HTTPClient: &http.Client{Transport: &cancelOnReport{inner: http.DefaultTransport, cancel: cancel}},
	})
	stats, err := w.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled after the grace flush", err)
	}
	if stats.Executed != 3 {
		t.Fatalf("worker flushed %d cells, want the full batch of 3", stats.Executed)
	}
	if done := srv.table.doneCount(); done != 3 {
		t.Fatalf("coordinator settled %d cells, want 3 — the finished batch was lost", done)
	}
}
