package fabric

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"optsync/internal/harness"
)

// Worker defaults; all overridable through WorkerOptions.
const (
	DefaultWorkerBatch  = 16
	DefaultPollInterval = 200 * time.Millisecond
	DefaultBackoffBase  = 100 * time.Millisecond
	DefaultBackoffMax   = 5 * time.Second
	DefaultMaxAttempts  = 8
	DefaultReportGrace  = 5 * time.Second
)

// WorkerOptions configures a stateless worker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator bookkeeping and logs
	// ("" derives host-pid).
	Name string
	// Batch is how many cells to request per lease (0:
	// DefaultWorkerBatch).
	Batch int
	// Workers bounds the local simulation pool a leased batch fans out
	// over (<= 0: GOMAXPROCS).
	Workers int
	// PollInterval is the base wait between lease attempts while the
	// campaign has work leased elsewhere but nothing pending (0:
	// DefaultPollInterval). Jittered so a worker fleet does not beat on
	// the coordinator in lockstep.
	PollInterval time.Duration
	// BackoffBase/BackoffMax/MaxAttempts shape per-RPC retry:
	// exponential backoff doubling from Base to Max with uniform jitter,
	// giving up after MaxAttempts.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	MaxAttempts int
	// ReportGrace is how long a finished batch may still be reported
	// after ctx is cancelled (0: DefaultReportGrace). Graceful shutdown
	// should not throw away simulations that already completed — the
	// report is one small RPC; only if it too fails does the lease
	// expire and the work re-run elsewhere.
	ReportGrace time.Duration
	// Rand supplies the backoff/poll jitter stream. Nil seeds a fresh
	// generator from crypto/rand — never from the wall clock — so
	// injecting a fixed-seed source makes retry-jitter schedules exactly
	// reproducible in tests while the default stays unpredictable across
	// a worker fleet.
	Rand *rand.Rand
	// HTTPClient overrides the transport (tests); nil uses a client
	// with sane timeouts.
	HTTPClient *http.Client
	// Progress, if non-nil, is invoked after every reported batch with
	// cumulative executed-cell and campaign-done counts.
	Progress func(executed, done, total int)
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	// Executed counts cells this worker simulated and reported.
	Executed int
	// Leases counts successful lease RPCs that returned work.
	Leases int
	// Retries counts RPC attempts beyond the first, across all calls.
	Retries int
}

// Worker pulls cell leases from a coordinator, executes them through
// the harness worker pool, and reports results back, retrying transport
// failures with exponential backoff and jitter. It holds no state the
// coordinator cannot reconstruct: kill -9 a worker at any instant and
// the only consequence is a lease expiring.
type Worker struct {
	base  string
	opts  WorkerOptions
	httpc *http.Client
	rng   *rand.Rand
	stats WorkerStats
}

// NewWorker creates a worker against the coordinator's base URL
// (e.g. "http://127.0.0.1:9190").
func NewWorker(coordinatorURL string, opts WorkerOptions) *Worker {
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultWorkerBatch
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = DefaultPollInterval
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = DefaultBackoffMax
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.ReportGrace <= 0 {
		opts.ReportGrace = DefaultReportGrace
	}
	httpc := opts.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	rng := opts.Rand
	if rng == nil {
		// Jitter quality does not affect results, only politeness — but
		// the seed must not come from the wall clock: workers started in
		// the same tick would jitter in lockstep, and a time-seeded
		// stream can't be pinned by tests.
		rng = rand.New(rand.NewSource(cryptoSeed()))
	}
	return &Worker{
		base:  strings.TrimSuffix(coordinatorURL, "/"),
		opts:  opts,
		httpc: httpc,
		rng:   rng,
	}
}

// cryptoSeed draws a 64-bit seed from the OS entropy source.
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; if it ever
		// does, a worker with degraded jitter is worse than no worker.
		panic(fmt.Sprintf("fabric: reading entropy for jitter seed: %v", err))
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// Run pulls, executes, and reports cells until the campaign completes
// (returns nil), ctx is cancelled (returns ctx.Err()), or the
// coordinator stays unreachable past the retry budget.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	for {
		if err := ctx.Err(); err != nil {
			return w.stats, err
		}
		var lease LeaseResponse
		if err := w.call(ctx, "/lease", LeaseRequest{Worker: w.opts.Name, Max: w.opts.Batch}, &lease); err != nil {
			return w.stats, err
		}
		if len(lease.Cells) == 0 {
			if lease.Complete {
				return w.stats, nil
			}
			// Nothing pending right now (work is leased elsewhere, or a
			// reclaim has not fired yet): poll again after a jittered
			// interval instead of spinning.
			if err := w.sleep(ctx, w.jittered(w.opts.PollInterval)); err != nil {
				return w.stats, err
			}
			continue
		}
		w.stats.Leases++

		specs := make([]harness.Spec, len(lease.Cells))
		for i, cell := range lease.Cells {
			specs[i] = cell.Spec
		}
		results, err := harness.RunBatch(ctx, specs, w.opts.Workers, nil)
		if err != nil {
			return w.stats, err
		}
		report := ReportRequest{Worker: w.opts.Name, Cells: make([]CellReport, len(lease.Cells))}
		for i, cell := range lease.Cells {
			report.Cells[i] = CellReport{Index: cell.Index, Key: cell.Key, Result: results[i]}
		}
		// Report under a grace context: a SIGINT that lands after the
		// batch finished simulating must not discard it one RPC short of
		// durable.
		rctx, rcancel := graceContext(ctx, w.opts.ReportGrace)
		var ack ReportResponse
		err = w.call(rctx, "/report", report, &ack)
		rcancel()
		if err != nil {
			return w.stats, err
		}
		if ack.Rejected > 0 {
			return w.stats, fmt.Errorf("fabric: coordinator rejected %d of %d reported cells (campaign definition mismatch?)",
				ack.Rejected, len(report.Cells))
		}
		w.stats.Executed += len(lease.Cells)
		if w.opts.Progress != nil {
			var prog Progress
			// Best-effort: progress display must not fail the worker.
			_ = w.get(ctx, "/progress", &prog)
			w.opts.Progress(w.stats.Executed, prog.Done, prog.Total)
		}
		if ack.Complete {
			return w.stats, nil
		}
		if err := ctx.Err(); err != nil {
			// The grace window reported the finished batch; now honor the
			// shutdown.
			return w.stats, err
		}
	}
}

// graceContext returns a context that stays live until grace has passed
// after parent's cancellation (or until its own cancel), so shutdown
// can still flush completed work.
func graceContext(parent context.Context, grace time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	stop := context.AfterFunc(parent, func() {
		timer := time.AfterFunc(grace, cancel)
		// Tie the timer to ctx so a normal cancel releases it.
		context.AfterFunc(ctx, func() { timer.Stop() })
	})
	return ctx, func() { stop(); cancel() }
}

// call POSTs a JSON request and decodes the JSON response, retrying
// transport failures and 5xx responses with exponential backoff and
// jitter. 4xx responses are permanent (a client bug), not retried.
func (w *Worker) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fabric: encoding %s: %w", path, err)
	}
	return w.retry(ctx, path, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
		if err != nil {
			return permanent(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		return w.do(hreq, resp)
	})
}

// get GETs a JSON endpoint with the same retry policy.
func (w *Worker) get(ctx context.Context, path string, resp any) error {
	return w.retry(ctx, path, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
		if err != nil {
			return permanent(err)
		}
		return w.do(hreq, resp)
	})
}

func (w *Worker) do(hreq *http.Request, resp any) error {
	hresp, err := w.httpc.Do(hreq)
	if err != nil {
		return err // transport: retryable
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var we wireError
		msg := hresp.Status
		if json.NewDecoder(io.LimitReader(hresp.Body, 4096)).Decode(&we) == nil && we.Error != "" {
			msg = we.Error
		}
		err := fmt.Errorf("fabric: %s: %s", hreq.URL.Path, msg)
		if hresp.StatusCode >= 500 {
			return err // coordinator hiccup: retryable
		}
		return permanent(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("fabric: decoding %s response: %w", hreq.URL.Path, err)
	}
	return nil
}

// permanentError marks an error that retrying cannot fix.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return permanentError{err: err} }

// retry runs fn with exponential backoff + jitter until it succeeds,
// returns a permanent error, exhausts MaxAttempts, or ctx ends.
func (w *Worker) retry(ctx context.Context, what string, fn func() error) error {
	delay := w.opts.BackoffBase
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
		if attempt >= w.opts.MaxAttempts {
			return fmt.Errorf("fabric: %s failed after %d attempts: %w", what, attempt, lastErr)
		}
		w.stats.Retries++
		if serr := w.sleep(ctx, w.jittered(delay)); serr != nil {
			return serr
		}
		delay *= 2
		if delay > w.opts.BackoffMax {
			delay = w.opts.BackoffMax
		}
	}
}

// jittered spreads d uniformly over [d/2, d): full-jitter style, so a
// fleet of workers retrying against a recovering coordinator does not
// arrive as one synchronized thundering herd.
func (w *Worker) jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)))
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
