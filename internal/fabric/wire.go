// Package fabric turns a single-process campaign into a fleet: a
// coordinator (Server) owns the campaign's cell list, the lease table,
// and the content-addressed result store; stateless workers (Worker)
// pull batches of cells over HTTP, execute them through the harness
// worker pool, and push results back.
//
// The whole design leans on one property PR 3 bought: a cell is keyed
// by the content hash of its canonical spec, and its result is a
// deterministic function of that spec. Everything distributed systems
// usually make hard is therefore a no-op here —
//
//   - a worker crash only expires a lease; the cells return to the
//     pending queue and someone else runs them;
//   - a duplicate report (lease expired, two workers raced) carries a
//     byte-identical result by construction, so accepting either is
//     correct and the second is dropped without double-counting;
//   - a coordinator restart replays the store: finished cells are
//     preloaded as done, exactly like a single-process `-resume`.
//
// The wire protocol is deliberately small: four JSON POST/GET
// endpoints (/lease, /report, /progress, /aggregates) plus /healthz.
package fabric

import (
	"optsync/internal/campaign"
	"optsync/internal/harness"
)

// LeaseRequest asks the coordinator to check out up to Max pending
// cells to this worker.
type LeaseRequest struct {
	// Worker self-identifies the requester (diagnostics and lease
	// bookkeeping only; correctness never depends on worker identity).
	Worker string `json:"worker"`
	// Max bounds the batch; the coordinator may return fewer, and caps
	// it at its own batch limit.
	Max int `json:"max"`
}

// LeasedCell is one cell checked out to a worker: everything needed to
// execute it with no other state.
type LeasedCell struct {
	// Index is the cell's position in campaign expansion order.
	Index int `json:"index"`
	// Key is the cell's content address; reports must echo it.
	Key string `json:"key"`
	// Spec is the fully assembled run description.
	Spec harness.Spec `json:"spec"`
}

// LeaseResponse returns the checked-out batch.
type LeaseResponse struct {
	// Cells is the leased batch (empty when nothing is pending).
	Cells []LeasedCell `json:"cells,omitempty"`
	// TTLMillis is how long the lease holds before the cells return to
	// the pending queue.
	TTLMillis int64 `json:"ttl_ms"`
	// Complete reports that every campaign cell is done: the worker can
	// exit.
	Complete bool `json:"complete"`
	// Pending counts cells neither done nor currently leased. A worker
	// seeing Cells empty, Complete false, and Pending 0 knows the
	// remaining work is leased elsewhere and backs off politely.
	Pending int `json:"pending"`
}

// CellReport is one finished cell travelling back to the coordinator.
type CellReport struct {
	Index  int            `json:"index"`
	Key    string         `json:"key"`
	Result harness.Result `json:"result"`
}

// ReportRequest submits a batch of finished cells.
type ReportRequest struct {
	Worker string       `json:"worker"`
	Cells  []CellReport `json:"cells"`
}

// ReportResponse acknowledges a report batch.
type ReportResponse struct {
	// Accepted counts newly settled cells; Duplicates counts cells that
	// were already done (safe no-ops); Rejected counts malformed entries
	// (index/key mismatch — a client bug, not a race).
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Rejected   int  `json:"rejected"`
	Complete   bool `json:"complete"`
}

// Progress is the coordinator's live execution accounting.
type Progress struct {
	// Campaign echoes the campaign name.
	Campaign string `json:"campaign,omitempty"`
	// Total = Done + Leased + Pending at all times.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	// Executed counts cells settled by worker reports this serve;
	// CacheHits counts cells preloaded from the store at startup.
	Executed  int  `json:"executed"`
	CacheHits int  `json:"cache_hits"`
	Complete  bool `json:"complete"`
}

// Aggregates is the live grouped-summary snapshot: the campaign's
// per-group statistics over every cell settled so far. Once Complete,
// Groups is byte-identical to the single-process campaign report for
// the same campaign and store.
type Aggregates struct {
	Campaign string           `json:"campaign,omitempty"`
	Total    int              `json:"total"`
	Done     int              `json:"done"`
	Complete bool             `json:"complete"`
	Groups   []campaign.Group `json:"groups"`
}

// wireError is the JSON error envelope every non-200 response carries.
type wireError struct {
	Error string `json:"error"`
}
