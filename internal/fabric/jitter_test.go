package fabric

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitterReproducibleWithInjectedRand pins the WorkerOptions.Rand
// contract: two workers sharing a seed draw identical jitter schedules,
// so retry-timing tests are deterministic.
func TestJitterReproducibleWithInjectedRand(t *testing.T) {
	mk := func() *Worker {
		return NewWorker("http://127.0.0.1:0", WorkerOptions{
			Rand: rand.New(rand.NewSource(42)),
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		d := time.Duration(1+i) * 100 * time.Millisecond
		ja, jb := a.jittered(d), b.jittered(d)
		if ja != jb {
			t.Fatalf("draw %d: jitter diverged with shared seed: %v vs %v", i, ja, jb)
		}
		if ja < d/2 || ja >= d {
			t.Fatalf("draw %d: jitter %v outside [d/2, d) for d=%v", i, ja, d)
		}
	}
}

// TestJitterDefaultSeedsDiverge checks the crypto-seeded default: two
// workers constructed without an injected Rand must not share a jitter
// schedule (the pre-fix wall-clock seed made same-tick workers retry in
// lockstep).
func TestJitterDefaultSeedsDiverge(t *testing.T) {
	a := NewWorker("http://127.0.0.1:0", WorkerOptions{})
	b := NewWorker("http://127.0.0.1:0", WorkerOptions{})
	d := 10 * time.Second
	for i := 0; i < 32; i++ {
		if a.jittered(d) != b.jittered(d) {
			return
		}
	}
	t.Fatal("32 identical jitter draws from two default-seeded workers: seeds are correlated")
}
