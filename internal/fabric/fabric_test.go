package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"optsync/internal/campaign"
	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/harness"
)

// testCampaign is the shared fixture: a (faulty x dmax) grid with seed
// replicates — 12 cells, each a sub-second simulation.
func testCampaign() campaign.Campaign {
	p := bounds.Params{
		N: 5, F: 1, Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
	return campaign.Campaign{
		Name: "fabric-e2e",
		Base: harness.Spec{
			Algo: harness.AlgoAuth, Params: p,
			FaultyCount: 1, Attack: harness.AttackSilent,
			Horizon: 4, Seed: 1,
		},
		Axes: []campaign.Axis{
			{Field: "faulty", Values: campaign.Ints(0, 1)},
			{Field: "dmax", Values: campaign.Floats(0.008, 0.012, 0.016)},
		},
		Seeds: 2,
	}
}

// referenceGroups runs the campaign single-process against a fresh
// store, re-runs it (the -resume path: 100% cache hits), checks the two
// agree, and returns the canonical aggregate bytes.
func referenceGroups(t *testing.T) []byte {
	t.Helper()
	store, err := campaign.Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	first, err := campaign.Run(context.Background(), testCampaign(), campaign.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := campaign.Run(context.Background(), testCampaign(), campaign.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.CacheHits != resumed.Total || resumed.Executed != 0 {
		t.Fatalf("resume pass executed %d cells, want 0", resumed.Executed)
	}
	a, b := marshalGroups(t, first.Groups), marshalGroups(t, resumed.Groups)
	if !bytes.Equal(a, b) {
		t.Fatal("single-process run and -resume rerun disagree")
	}
	return b
}

func marshalGroups(t *testing.T, groups []campaign.Group) []byte {
	t.Helper()
	blob, err := json.Marshal(groups)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// quietStore opens a store whose warnings go to the test log.
func quietStore(t *testing.T, dir string) *campaign.Store {
	t.Helper()
	store, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetWarn(func(format string, args ...any) { t.Logf(format, args...) })
	return store
}

// runFleet serves the campaign on an httptest server and runs workers
// concurrently until completion, returning the coordinator.
func runFleet(t *testing.T, srvOpts ServerOptions, workers ...WorkerOptions) *Server {
	t.Helper()
	store := quietStore(t, t.TempDir()+"/store")
	srv, err := NewServer(testCampaign(), store, srvOpts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for wi, wopts := range workers {
		wi, wopts := wi, wopts
		if wopts.Name == "" {
			wopts.Name = fmt.Sprintf("w%d", wi)
		}
		wopts.PollInterval = 2 * time.Millisecond
		wopts.BackoffBase = time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[wi] = NewWorker(hs.URL, wopts).Run(ctx)
		}()
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", wi, err)
		}
	}
	if !srv.Complete() {
		t.Fatal("campaign not complete after all workers exited")
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done channel not closed on completion")
	}
	return srv
}

// TestFleetMatchesSingleProcess is the crowning correctness test: a
// coordinator plus two workers over HTTP produce byte-identical grouped
// aggregates to the single-process `-resume` run of the same campaign.
func TestFleetMatchesSingleProcess(t *testing.T) {
	want := referenceGroups(t)
	srv := runFleet(t, ServerOptions{LeaseBatch: 3},
		WorkerOptions{Batch: 3}, WorkerOptions{Batch: 2})
	report := srv.Report()
	if report.Executed != report.Total || report.CacheHits != 0 {
		t.Fatalf("fleet executed %d of %d cells", report.Executed, report.Total)
	}
	if got := marshalGroups(t, report.Groups); !bytes.Equal(got, want) {
		t.Fatalf("fleet aggregates diverge from single-process run:\n got  %s\n want %s", got, want)
	}
}

// TestFleetResumesFromStore: a coordinator over a store with finished
// cells preloads them (the distributed analogue of -resume) and the
// fleet only executes the remainder.
func TestFleetResumesFromStore(t *testing.T) {
	want := referenceGroups(t)
	dir := t.TempDir() + "/store"
	store := quietStore(t, dir)
	cells, err := testCampaign().Cells()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-finish 5 of the 12 cells.
	for _, cell := range cells[:5] {
		res, err := harness.RunContext(context.Background(), cell.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(cell.Key, res); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(testCampaign(), store, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	stats, err := NewWorker(hs.URL, WorkerOptions{Name: "solo", Batch: 4,
		PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 7 {
		t.Fatalf("worker executed %d cells, want the 7 not preloaded", stats.Executed)
	}
	report := srv.Report()
	if report.CacheHits != 5 || report.Executed != 7 {
		t.Fatalf("report accounting = %d hits / %d executed, want 5/7", report.CacheHits, report.Executed)
	}
	if got := marshalGroups(t, report.Groups); !bytes.Equal(got, want) {
		t.Fatal("resumed fleet aggregates diverge")
	}
}

// TestWorkerCrashLeaseExpiry kills a worker mid-campaign (it leases
// cells and never reports) and checks the fleet heals through lease
// expiry with no manual intervention and no lost cells.
func TestWorkerCrashLeaseExpiry(t *testing.T) {
	want := referenceGroups(t)
	clk := newFakeClock()
	store := quietStore(t, t.TempDir()+"/store")
	srv, err := NewServer(testCampaign(), store, ServerOptions{
		LeaseTTL: 30 * time.Second,
		Now:      clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// The doomed worker checks out a batch over the real wire protocol
	// and then crashes (we simply never report).
	var doomed LeaseResponse
	postJSON(t, hs.URL+"/lease", LeaseRequest{Worker: "doomed", Max: 5}, &doomed)
	if len(doomed.Cells) != 5 {
		t.Fatalf("doomed worker leased %d cells, want 5", len(doomed.Cells))
	}
	// Its lease has not expired: a live worker finishes everything else
	// and then spins on polls, because 5 cells are stuck leased.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runOut struct {
		stats WorkerStats
		err   error
	}
	out := make(chan runOut, 1)
	go func() {
		stats, err := NewWorker(hs.URL, WorkerOptions{Name: "survivor", Batch: 3,
			PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(ctx)
		out <- runOut{stats, err}
	}()
	// Wait until only the crashed cells remain, then expire the lease.
	waitFor(t, 10*time.Second, func() bool {
		done, _, _ := srv.table.counts()
		return done == srv.Cells()-5
	})
	clk.Advance(31 * time.Second)
	res := <-out
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.stats.Executed != srv.Cells() {
		t.Fatalf("survivor executed %d cells, want all %d (5 via reclaim)", res.stats.Executed, srv.Cells())
	}
	if got := marshalGroups(t, srv.Report().Groups); !bytes.Equal(got, want) {
		t.Fatal("post-crash aggregates diverge")
	}
}

// TestDuplicateReportsAreSafe replays a full report batch a second time
// straight at the wire and checks nothing double-counts.
func TestDuplicateReportsAreSafe(t *testing.T) {
	store := quietStore(t, t.TempDir()+"/store")
	srv, err := NewServer(testCampaign(), store, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var lease LeaseResponse
	postJSON(t, hs.URL+"/lease", LeaseRequest{Worker: "w", Max: 3}, &lease)
	report := ReportRequest{Worker: "w", Cells: make([]CellReport, len(lease.Cells))}
	for i, cell := range lease.Cells {
		res, err := harness.RunContext(context.Background(), cell.Spec)
		if err != nil {
			t.Fatal(err)
		}
		report.Cells[i] = CellReport{Index: cell.Index, Key: cell.Key, Result: res}
	}
	var first, second ReportResponse
	postJSON(t, hs.URL+"/report", report, &first)
	postJSON(t, hs.URL+"/report", report, &second)
	if first.Accepted != 3 || first.Duplicates != 0 {
		t.Fatalf("first report = %+v", first)
	}
	if second.Accepted != 0 || second.Duplicates != 3 {
		t.Fatalf("duplicate report = %+v, want 3 duplicates and 0 accepted", second)
	}
	var prog Progress
	getJSON(t, hs.URL+"/progress", &prog)
	if prog.Done != 3 || prog.Executed != 3 {
		t.Fatalf("progress after duplicate = %+v, want done=3", prog)
	}
	// A key mismatch is rejected, not stored.
	bogus := ReportRequest{Worker: "w", Cells: []CellReport{{Index: 0, Key: strings.Repeat("ab", 32)}}}
	var rej ReportResponse
	postJSON(t, hs.URL+"/report", bogus, &rej)
	if rej.Rejected != 1 || rej.Accepted != 0 {
		t.Fatalf("mismatched report = %+v, want 1 rejected", rej)
	}
}

// TestFlakyTransportDuplicates runs a fleet where every worker's
// transport randomly drops /report responses after the coordinator has
// processed them — so clients retry batches the server already settled.
// Aggregates must still match the single-process run exactly.
func TestFlakyTransportDuplicates(t *testing.T) {
	want := referenceGroups(t)
	store := quietStore(t, t.TempDir()+"/store")
	srv, err := NewServer(testCampaign(), store, ServerOptions{LeaseBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for wi := 0; wi < 2; wi++ {
		wi := wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			flaky := &http.Client{Transport: &flakyTransport{
				inner: http.DefaultTransport,
				rng:   rand.New(rand.NewSource(int64(wi + 1))),
			}}
			_, errs[wi] = NewWorker(hs.URL, WorkerOptions{
				Name: fmt.Sprintf("flaky-%d", wi), Batch: 2,
				PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond,
				HTTPClient: flaky,
			}).Run(ctx)
		}()
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", wi, err)
		}
	}
	report := srv.Report()
	if report.Total != 12 {
		t.Fatalf("total = %d", report.Total)
	}
	if got := marshalGroups(t, report.Groups); !bytes.Equal(got, want) {
		t.Fatal("flaky-transport aggregates diverge")
	}
}

// flakyTransport forwards every request but drops ~35% of /report
// responses on the floor *after* the server has handled them — the
// worst-case retry ambiguity.
type flakyTransport struct {
	mu    sync.Mutex
	inner http.RoundTripper
	rng   *rand.Rand
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := f.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(req.URL.Path, "/report") {
		f.mu.Lock()
		drop := f.rng.Float64() < 0.35
		f.mu.Unlock()
		if drop {
			resp.Body.Close()
			return nil, fmt.Errorf("flaky transport ate the response")
		}
	}
	return resp, nil
}

// TestFleetWithLiveCompaction compacts the store every few reports
// while workers keep writing, then proves a single-process resume run
// over the compacted store is 100% cache hits with identical groups.
func TestFleetWithLiveCompaction(t *testing.T) {
	want := referenceGroups(t)
	dir := t.TempDir() + "/store"
	store := quietStore(t, dir)
	srv, err := NewServer(testCampaign(), store, ServerOptions{
		LeaseBatch:   2,
		CompactEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx := context.Background()
	for wi := 0; wi < 2; wi++ {
		if _, err := NewWorker(hs.URL, WorkerOptions{Name: fmt.Sprintf("w%d", wi), Batch: 2,
			PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := marshalGroups(t, srv.Report().Groups); !bytes.Equal(got, want) {
		t.Fatal("compacting-fleet aggregates diverge")
	}
	if _, err := srv.Compact(); err != nil {
		t.Fatal(err)
	}
	if store.CompactedLen() == 0 {
		t.Fatal("compaction never ran")
	}
	// The same store now serves a fresh single-process resume run.
	store2 := quietStore(t, dir)
	resumed, err := campaign.Run(ctx, testCampaign(), campaign.Options{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.CacheHits != resumed.Total {
		t.Fatalf("resume over compacted fleet store executed %d cells", resumed.Executed)
	}
	if got := marshalGroups(t, resumed.Groups); !bytes.Equal(got, want) {
		t.Fatal("resume over compacted fleet store diverges")
	}
}

// TestAggregatesEndpointLive checks /aggregates mid-campaign (partial
// groups over settled cells) and at completion (canonical groups), and
// /healthz.
func TestAggregatesEndpointLive(t *testing.T) {
	want := referenceGroups(t)
	store := quietStore(t, t.TempDir()+"/store")
	srv, err := NewServer(testCampaign(), store, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v", resp.Status, err)
	}
	resp.Body.Close()

	var empty Aggregates
	getJSON(t, hs.URL+"/aggregates", &empty)
	if empty.Done != 0 || empty.Complete || len(empty.Groups) != 0 {
		t.Fatalf("empty aggregates = %+v", empty)
	}

	// Settle one lease batch by hand, then check the partial snapshot.
	var lease LeaseResponse
	postJSON(t, hs.URL+"/lease", LeaseRequest{Worker: "w", Max: 4}, &lease)
	report := ReportRequest{Worker: "w", Cells: make([]CellReport, len(lease.Cells))}
	for i, cell := range lease.Cells {
		res, err := harness.RunContext(context.Background(), cell.Spec)
		if err != nil {
			t.Fatal(err)
		}
		report.Cells[i] = CellReport{Index: cell.Index, Key: cell.Key, Result: res}
	}
	var ack ReportResponse
	postJSON(t, hs.URL+"/report", report, &ack)
	var partial Aggregates
	getJSON(t, hs.URL+"/aggregates", &partial)
	if partial.Done != 4 || partial.Complete || len(partial.Groups) == 0 {
		t.Fatalf("partial aggregates done=%d complete=%v groups=%d",
			partial.Done, partial.Complete, len(partial.Groups))
	}

	// Finish with a worker; the endpoint must now serve the canonical
	// groups byte-for-byte.
	if _, err := NewWorker(hs.URL, WorkerOptions{Name: "w2", Batch: 4,
		PollInterval: 2 * time.Millisecond, BackoffBase: time.Millisecond}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var final Aggregates
	getJSON(t, hs.URL+"/aggregates", &final)
	if !final.Complete {
		t.Fatal("aggregates not complete")
	}
	if got := marshalGroups(t, final.Groups); !bytes.Equal(got, want) {
		t.Fatal("completed /aggregates diverges from single-process groups")
	}
}

func postJSON(t *testing.T, url string, req, resp any) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %s", url, hr.Status)
	}
	if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, resp any) {
	t.Helper()
	hr, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, hr.Status)
	}
	if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
