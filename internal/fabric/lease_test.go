package fabric

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable lease clock tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// invariant checks the state partition: Total = Done + Leased + Pending.
func checkPartition(t *testing.T, lt *leaseTable, total int) {
	t.Helper()
	done, leased, pending := lt.counts()
	if done+leased+pending != total {
		t.Fatalf("partition broken: done=%d leased=%d pending=%d total=%d",
			done, leased, pending, total)
	}
}

func TestLeaseTableBasicFlow(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(10, time.Minute, clk.Now)
	checkPartition(t, lt, 10)

	got := lt.lease("w1", 4, nil)
	if len(got) != 4 {
		t.Fatalf("leased %d cells, want 4", len(got))
	}
	checkPartition(t, lt, 10)
	for _, i := range got {
		if !lt.report(i) {
			t.Fatalf("first report of cell %d not accepted", i)
		}
		if lt.report(i) {
			t.Fatalf("duplicate report of cell %d double-counted", i)
		}
	}
	if done, _, _ := lt.counts(); done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	// Lease far more than remains: get exactly the remainder.
	rest := lt.lease("w2", 100, nil)
	if len(rest) != 6 {
		t.Fatalf("leased %d cells, want the remaining 6", len(rest))
	}
	for _, i := range rest {
		lt.report(i)
	}
	if !lt.complete() {
		t.Fatal("table not complete after all cells reported")
	}
	if lt.lease("w3", 1, nil) != nil {
		t.Fatal("lease on a complete table returned cells")
	}
}

func TestLeaseExpiryReclaims(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(4, 30*time.Second, clk.Now)
	crashed := lt.lease("doomed", 3, nil)
	if len(crashed) != 3 {
		t.Fatal("setup lease failed")
	}
	// Within TTL nothing comes back.
	clk.Advance(29 * time.Second)
	if got := lt.lease("w2", 4, nil); len(got) != 1 {
		t.Fatalf("pre-expiry lease got %d cells, want only the 1 never leased", len(got))
	}
	// Past TTL the crashed worker's cells are reclaimed, FIFO at the back.
	clk.Advance(2 * time.Second)
	got := lt.lease("w2", 4, nil)
	if len(got) != 3 {
		t.Fatalf("post-expiry lease got %d cells, want the 3 reclaimed", len(got))
	}
	checkPartition(t, lt, 4)
}

func TestLateReportAfterExpiryStillCounts(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(2, time.Second, clk.Now)
	cells := lt.lease("slow", 2, nil)
	clk.Advance(2 * time.Second)
	// Another worker picks the reclaimed cells up...
	again := lt.lease("fast", 2, nil)
	if len(again) != 2 {
		t.Fatal("reclaim failed")
	}
	// ...but the slow worker's (valid!) results arrive first.
	if !lt.report(cells[0]) || !lt.report(cells[1]) {
		t.Fatal("late report after expiry rejected")
	}
	// The fast worker's duplicates are no-ops.
	if lt.report(again[0]) || lt.report(again[1]) {
		t.Fatal("racing duplicate double-counted")
	}
	if !lt.complete() {
		t.Fatal("table not complete")
	}
}

// TestLeaseTableInterleavingProperty drives random interleavings of
// lease, report, duplicate report, worker crash (a lease that never
// reports), and clock advance past TTL, and checks after every step
// that no cell is ever lost (the partition always sums to Total) and
// none is double-counted (done only grows by accepted first reports —
// exactly Total of them over the whole run).
func TestLeaseTableInterleavingProperty(t *testing.T) {
	const total = 37
	ttl := 10 * time.Second
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := newFakeClock()
			lt := newLeaseTable(total, ttl, clk.Now)
			// outstanding tracks live (not crashed) leases per worker.
			outstanding := map[string][]int{}
			accepted := 0
			settled := make([]bool, total)
			workers := []string{"w1", "w2", "w3"}

			step := func() {
				switch op := rng.Intn(10); {
				case op < 4: // lease a batch to a random worker
					w := workers[rng.Intn(len(workers))]
					got := lt.lease(w, 1+rng.Intn(5), nil)
					outstanding[w] = append(outstanding[w], got...)
				case op < 7: // a worker reports one of its cells
					w := workers[rng.Intn(len(workers))]
					if n := len(outstanding[w]); n > 0 {
						i := outstanding[w][rng.Intn(n)]
						if lt.report(i) {
							if settled[i] {
								t.Fatalf("cell %d double-counted", i)
							}
							settled[i] = true
							accepted++
						}
					}
				case op < 8: // duplicate report of an already settled cell
					for i, s := range settled {
						if s {
							if lt.report(i) {
								t.Fatalf("duplicate report of settled cell %d accepted", i)
							}
							break
						}
					}
				case op < 9: // a worker crashes: its leases are simply forgotten
					w := workers[rng.Intn(len(workers))]
					outstanding[w] = nil
				default: // time passes; expired leases reclaim
					clk.Advance(ttl/2 + time.Duration(rng.Intn(int(ttl))))
				}
				checkPartition(t, lt, total)
			}
			for i := 0; i < 400 && !lt.complete(); i++ {
				step()
			}
			// Drain deterministically: expire everything outstanding and
			// have one worker finish the campaign; crashes and duplicates
			// above must not have lost a single cell.
			clk.Advance(2 * ttl)
			for !lt.complete() {
				got := lt.lease("sweeper", 8, nil)
				if len(got) == 0 {
					clk.Advance(2 * ttl) // some cells still leased to the forgetful
					continue
				}
				for _, i := range got {
					if lt.report(i) {
						if settled[i] {
							t.Fatalf("cell %d double-counted in drain", i)
						}
						settled[i] = true
						accepted++
					}
				}
			}
			if accepted != total {
				t.Fatalf("accepted %d first reports, want exactly %d", accepted, total)
			}
			done, leased, pending := lt.counts()
			if done != total || leased != 0 || pending != 0 {
				t.Fatalf("final state done=%d leased=%d pending=%d", done, leased, pending)
			}
		})
	}
}
