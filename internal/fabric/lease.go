package fabric

import (
	"sync"
	"time"
)

// Cell lifecycle inside the lease table. Exactly one of the three holds
// for every cell at every instant, so Total = Done + Leased + Pending
// is a checked invariant, not an aspiration.
type cellState uint8

const (
	statePending cellState = iota // waiting in the queue
	stateLeased                   // checked out, deadline pending
	stateDone                     // result durably stored
)

// lease records one outstanding checkout.
type lease struct {
	worker   string
	deadline time.Time
}

// leaseTable tracks every campaign cell through pending -> leased ->
// done, with TTL-based reclaim. Done is terminal and idempotent: a cell
// reported twice (expired lease, racing workers) settles once; a lease
// that expires returns its cells to the back of the pending queue. Time
// is injected so tests drive expiry deterministically.
type leaseTable struct {
	mu     sync.Mutex
	ttl    time.Duration
	now    func() time.Time
	state  []cellState
	queue  []int // pending cells, FIFO
	leases map[int]lease
	done   int
}

func newLeaseTable(n int, ttl time.Duration, now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	t := &leaseTable{
		ttl:    ttl,
		now:    now,
		state:  make([]cellState, n),
		queue:  make([]int, n),
		leases: make(map[int]lease),
	}
	for i := range t.queue {
		t.queue[i] = i
	}
	return t
}

// markDone settles a cell outside the lease flow (store preload at
// startup). Reports whether the cell was newly settled.
func (t *leaseTable) markDone(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.settleLocked(i)
}

// settleLocked moves cell i to done from any state, scrubbing it from
// whichever structure held it.
func (t *leaseTable) settleLocked(i int) bool {
	switch t.state[i] {
	case stateDone:
		return false
	case stateLeased:
		delete(t.leases, i)
	case statePending:
		for qi, c := range t.queue {
			if c == i {
				t.queue = append(t.queue[:qi], t.queue[qi+1:]...)
				break
			}
		}
	}
	t.state[i] = stateDone
	t.done++
	return true
}

// reclaimLocked returns every expired lease's cells to the pending
// queue.
func (t *leaseTable) reclaimLocked() int {
	if len(t.leases) == 0 {
		return 0
	}
	now := t.now()
	n := 0
	for i, l := range t.leases {
		if now.After(l.deadline) {
			delete(t.leases, i)
			t.state[i] = statePending
			t.queue = append(t.queue, i)
			n++
		}
	}
	return n
}

// lease checks out up to max pending cells to worker, appending them to
// buf (callers pass reusable scratch), reclaiming expired leases first.
// FIFO order keeps the fleet working through the campaign front-to-back,
// which keeps partial aggregates representative of a prefix rather than
// a random scatter.
func (t *leaseTable) lease(worker string, max int, buf []int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reclaimLocked()
	if max > len(t.queue) {
		max = len(t.queue)
	}
	if max <= 0 {
		return buf
	}
	deadline := t.now().Add(t.ttl)
	buf = append(buf, t.queue[:max]...)
	t.queue = append(t.queue[:0], t.queue[max:]...)
	for _, i := range buf[len(buf)-max:] {
		t.state[i] = stateLeased
		t.leases[i] = lease{worker: worker, deadline: deadline}
	}
	return buf
}

// report settles cell i from a worker report. It accepts the result no
// matter the cell's state — leased by this worker, expired and
// re-pending, even leased by someone else: the result is a pure
// function of the spec, so whoever computed it first wins and everyone
// else is a duplicate. Reports whether the cell was newly settled.
func (t *leaseTable) report(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.settleLocked(i)
}

// counts returns the (done, leased, pending) partition after reclaiming
// expired leases.
func (t *leaseTable) counts() (done, leased, pending int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reclaimLocked()
	return t.done, len(t.leases), len(t.queue)
}

// doneCount returns the settled-cell count.
func (t *leaseTable) doneCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// complete reports whether every cell is done.
func (t *leaseTable) complete() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == len(t.state)
}
