package fabric

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"optsync/internal/campaign"
)

// ServeOptions configures one Serve lifetime around the coordinator's
// ServerOptions.
type ServeOptions struct {
	ServerOptions

	// Addr is the TCP listen address ("" binds 127.0.0.1:0; Ready
	// reports what was bound).
	Addr string
	// Ready, if non-nil, is called once with the bound address before
	// serving begins.
	Ready func(addr string)
	// Linger keeps the coordinator answering after the last cell
	// settles (default 2s), so workers mid-poll learn Complete from a
	// normal lease response instead of a torn-down connection.
	Linger time.Duration
	// ShutdownGrace bounds how long graceful shutdown waits for
	// in-flight reports (default 10s).
	ShutdownGrace time.Duration
	// CompactOnExit folds the loose cell tier into an indexed segment
	// before returning — the store "flush" of a clean shutdown.
	CompactOnExit bool
}

// Serve runs a coordinator for the campaign until every cell settles or
// ctx is cancelled (SIGINT/SIGTERM arrive here via
// signal.NotifyContext), then shuts the listener down gracefully —
// in-flight reports finish and are stored — and returns the final
// report. On cancellation the report covers the settled prefix and the
// error is ctx's; the store already holds every settled cell, so
// re-serving (or a single-process -resume run) picks up exactly where
// this one stopped.
func Serve(ctx context.Context, c campaign.Campaign, store *campaign.Store, opts ServeOptions) (*campaign.Report, error) {
	srv, err := NewServer(c, store, opts.ServerOptions)
	if err != nil {
		return nil, err
	}
	if opts.Linger <= 0 {
		opts.Linger = 2 * time.Second
	}
	if opts.ShutdownGrace <= 0 {
		opts.ShutdownGrace = 10 * time.Second
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.Ready != nil {
		opts.Ready(ln.Addr().String())
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	var cause error
	select {
	case <-srv.Done():
		// Let late pollers hear "complete" before the listener dies.
		select {
		case <-time.After(opts.Linger):
		case <-ctx.Done():
		}
	case <-ctx.Done():
		cause = ctx.Err()
	case err := <-serveErr:
		return nil, err
	}

	shctx, cancel := context.WithTimeout(context.Background(), opts.ShutdownGrace)
	defer cancel()
	if serr := hs.Shutdown(shctx); serr != nil && cause == nil && !errors.Is(serr, http.ErrServerClosed) {
		cause = serr
	}
	if opts.CompactOnExit {
		if _, cerr := store.Compact(); cerr != nil && cause == nil {
			cause = cerr
		}
	}
	return srv.Report(), cause
}
