package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"optsync/internal/campaign"
	"optsync/internal/harness"
)

// DefaultLeaseTTL is the lease lifetime when ServerOptions leaves it
// zero: long enough for a worker to finish a realistic batch, short
// enough that a crashed worker's cells come back quickly.
const DefaultLeaseTTL = 60 * time.Second

// DefaultLeaseBatch caps how many cells one lease hands out when
// ServerOptions leaves it zero.
const DefaultLeaseBatch = 64

// ServerOptions configures a coordinator.
type ServerOptions struct {
	// LeaseTTL is how long a worker holds leased cells before they are
	// reclaimed (0: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// LeaseBatch caps cells per lease regardless of what the worker
	// asks for (0: DefaultLeaseBatch).
	LeaseBatch int
	// CompactEvery folds loose cells into an indexed segment after this
	// many worker-reported cells (0: only on Close/explicit Compact).
	// Compaction runs in the background, concurrent with reports — the
	// store's ordering contract makes that safe.
	CompactEvery int
	// Progress, if non-nil, is invoked after every newly settled cell.
	Progress func(done, total int)
	// Now injects the lease clock (tests); nil means time.Now.
	Now func() time.Time
	// Warn receives recoverable-damage log lines (nil: log.Printf).
	Warn func(format string, args ...any)
}

// Server is the campaign coordinator: it owns the expanded cell list,
// the lease table, and the result store, and serves the fabric wire
// protocol as an http.Handler:
//
//	POST /lease       check out a batch of pending cells with a TTL
//	POST /report      submit finished cells (idempotent)
//	GET  /progress    live execution accounting
//	GET  /aggregates  live grouped summaries over settled cells
//	GET  /healthz     liveness
//
// The server never simulates anything itself; it is pure bookkeeping
// around the store, which is why thousands of lease/report RPCs per
// second cost it nothing measurable.
type Server struct {
	cells []campaign.Cell
	store *campaign.Store
	table *leaseTable
	opts  ServerOptions
	mux   *http.ServeMux

	mu        sync.Mutex
	results   []harness.Result
	settled   []bool
	executed  int // settled by worker reports
	preloaded int // settled from the store at startup
	sinceComp int // reports since the last background compaction
	compactng bool

	doneOnce sync.Once
	doneCh   chan struct{}

	name string
}

// NewServer expands the campaign, preloads every cell the store already
// answers (exactly the single-process resume semantics), and returns a
// ready-to-serve coordinator.
func NewServer(c campaign.Campaign, store *campaign.Store, opts ServerOptions) (*Server, error) {
	if store == nil {
		return nil, errors.New("fabric: coordinator needs a store (results must be durable before cells settle)")
	}
	cells, err := c.Cells()
	if err != nil {
		return nil, err
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.LeaseBatch <= 0 {
		opts.LeaseBatch = DefaultLeaseBatch
	}
	if opts.Warn == nil {
		opts.Warn = log.Printf
	}
	s := &Server{
		cells:   cells,
		store:   store,
		table:   newLeaseTable(len(cells), opts.LeaseTTL, opts.Now),
		opts:    opts,
		results: make([]harness.Result, len(cells)),
		settled: make([]bool, len(cells)),
		doneCh:  make(chan struct{}),
		name:    c.Name,
	}
	for i, cell := range cells {
		res, ok, err := store.Get(cell.Key)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		res.Spec.Name = cell.Spec.Name
		s.results[i] = res
		s.settled[i] = true
		s.table.markDone(i)
		s.preloaded++
	}
	if s.table.complete() {
		s.doneOnce.Do(func() { close(s.doneCh) })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", s.handleLease)
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/aggregates", s.handleAggregates)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Done is closed when every campaign cell has settled.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// Complete reports whether every campaign cell has settled.
func (s *Server) Complete() bool { return s.table.complete() }

// Cells returns the number of campaign cells.
func (s *Server) Cells() int { return len(s.cells) }

// Report assembles the final campaign report. It is meaningful any time
// (partial aggregates over settled cells) but canonical once Complete:
// then Groups is byte-identical to what the single-process campaign run
// produces for the same campaign and store.
func (s *Server) Report() *campaign.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	cells, results := s.settledSnapshotLocked()
	return &campaign.Report{
		Name:      s.name,
		Total:     len(s.cells),
		Executed:  s.executed,
		CacheHits: s.preloaded,
		Groups:    campaign.Aggregate(cells, results),
		Cells:     cells,
		Results:   results,
	}
}

// settledSnapshotLocked returns the settled prefix-preserving subset of
// (cells, results), aligned index-for-index.
func (s *Server) settledSnapshotLocked() ([]campaign.Cell, []harness.Result) {
	cells := make([]campaign.Cell, 0, len(s.cells))
	results := make([]harness.Result, 0, len(s.cells))
	for i := range s.cells {
		if s.settled[i] {
			cells = append(cells, s.cells[i])
			results = append(results, s.results[i])
		}
	}
	return cells, results
}

// Compact folds finished loose cells into the store's segment tier.
func (s *Server) Compact() (campaign.CompactStats, error) { return s.store.Compact() }

// ioBuf is one pooled JSON scratch: a byte buffer with an encoder bound
// to it for life. The coordinator's two hot endpoints run thousands of
// times per second against a fleet, and re-allocating an encode buffer
// and a body-read buffer per RPC was the bulk of its per-op garbage
// (BENCH_PR6 measured 255 allocs and ~28 KB per lease+report pair).
type ioBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var ioBufPool = sync.Pool{New: func() any {
	b := &ioBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// readJSON slurps one request body through a pooled buffer and decodes
// it. Decoding from a contiguous buffer also means a malformed body is
// rejected without partially consuming the connection.
func readJSON(r *http.Request, v any) error {
	b := ioBufPool.Get().(*ioBuf)
	b.buf.Reset()
	_, err := b.buf.ReadFrom(r.Body)
	if err == nil {
		err = json.Unmarshal(b.buf.Bytes(), v)
	}
	ioBufPool.Put(b)
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b := ioBufPool.Get().(*ioBuf)
	b.buf.Reset()
	if err := b.enc.Encode(v); err != nil {
		ioBufPool.Put(b)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(b.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(b.buf.Bytes())
	ioBufPool.Put(b)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wireError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /lease")
		return
	}
	var req LeaseRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "lease: %v", err)
		return
	}
	max := req.Max
	if max <= 0 || max > s.opts.LeaseBatch {
		max = s.opts.LeaseBatch
	}
	// The checkout ids and the response batch live in pooled scratch:
	// both are dead once writeJSON has copied the encoding out.
	sc := leaseScratchPool.Get().(*leaseScratch)
	sc.ids = s.table.lease(req.Worker, max, sc.ids[:0])
	sc.cells = sc.cells[:0]
	for _, i := range sc.ids {
		sc.cells = append(sc.cells, LeasedCell{Index: i, Key: s.cells[i].Key, Spec: s.cells[i].Spec})
	}
	resp := LeaseResponse{
		Cells:     sc.cells,
		TTLMillis: s.opts.LeaseTTL.Milliseconds(),
		Complete:  s.table.complete(),
	}
	_, _, resp.Pending = s.table.counts()
	writeJSON(w, http.StatusOK, resp)
	leaseScratchPool.Put(sc)
}

// leaseScratch is the per-request checkout scratch reused across /lease
// calls.
type leaseScratch struct {
	ids   []int
	cells []LeasedCell
}

var leaseScratchPool = sync.Pool{New: func() any { return &leaseScratch{} }}

// reportReqPool recycles /report request envelopes (the worker-batch
// slice is the reusable part; see handleReport for the zeroing contract).
var reportReqPool = sync.Pool{New: func() any { return new(ReportRequest) }}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /report")
		return
	}
	// Reuse a pooled request across reports. Every element up to capacity
	// is zeroed before decoding: encoding/json reuses the backing array
	// but leaves fields absent from the JSON untouched in reused
	// elements, so each element must start from the zero value — and
	// zeroing also guarantees the Result a previous report copied into
	// s.results shares no inner slices with what this decode writes.
	req := reportReqPool.Get().(*ReportRequest)
	cells := req.Cells[:cap(req.Cells)]
	for i := range cells {
		cells[i] = CellReport{}
	}
	req.Cells = cells[:0]
	req.Worker = ""
	defer reportReqPool.Put(req)
	if err := readJSON(r, req); err != nil {
		writeErr(w, http.StatusBadRequest, "report: %v", err)
		return
	}
	var resp ReportResponse
	for _, cr := range req.Cells {
		if cr.Index < 0 || cr.Index >= len(s.cells) || s.cells[cr.Index].Key != cr.Key {
			// An index/key mismatch is a client bug or a stale campaign
			// definition — never silently store it under the wrong key.
			s.opts.Warn("fabric: worker %s reported cell %d with key %.8s (mismatch); rejected", req.Worker, cr.Index, cr.Key)
			resp.Rejected++
			continue
		}
		// Durability before accounting: the store write lands before the
		// lease table (and the live aggregates) count the cell as done,
		// so a coordinator crash between the two re-serves the cell from
		// the store on restart instead of losing it.
		if err := s.store.Put(cr.Key, cr.Result); err != nil {
			writeErr(w, http.StatusInternalServerError, "storing cell %d: %v", cr.Index, err)
			return
		}
		if !s.table.report(cr.Index) {
			resp.Duplicates++
			continue
		}
		s.mu.Lock()
		s.results[cr.Index] = cr.Result
		s.settled[cr.Index] = true
		s.executed++
		s.sinceComp++
		compact := s.opts.CompactEvery > 0 && s.sinceComp >= s.opts.CompactEvery && !s.compactng
		if compact {
			s.sinceComp = 0
			s.compactng = true
		}
		s.mu.Unlock()
		resp.Accepted++
		if s.opts.Progress != nil {
			s.opts.Progress(s.table.doneCount(), len(s.cells))
		}
		if compact {
			go s.backgroundCompact()
		}
	}
	resp.Complete = s.table.complete()
	if resp.Complete {
		s.doneOnce.Do(func() { close(s.doneCh) })
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) backgroundCompact() {
	if _, err := s.store.Compact(); err != nil {
		s.opts.Warn("fabric: background compaction: %v", err)
	}
	s.mu.Lock()
	s.compactng = false
	s.mu.Unlock()
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	done, leased, pending := s.table.counts()
	s.mu.Lock()
	executed, preloaded := s.executed, s.preloaded
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Progress{
		Campaign:  s.name,
		Total:     len(s.cells),
		Done:      done,
		Leased:    leased,
		Pending:   pending,
		Executed:  executed,
		CacheHits: preloaded,
		Complete:  done == len(s.cells),
	})
}

func (s *Server) handleAggregates(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cells, results := s.settledSnapshotLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Aggregates{
		Campaign: s.name,
		Total:    len(s.cells),
		Done:     len(cells),
		Complete: len(cells) == len(s.cells),
		Groups:   campaign.Aggregate(cells, results),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
