package sim

import "slices"

// This file implements the message-event scheduler: a two-level
// ladder/calendar queue of value-inline events.
//
// Motivation: the simulator's O(n^2)-per-round hot path schedules and
// drains one event per message (or per delivery batch). On a binary heap
// of *Event pointers every message pays two O(log k) pointer-chasing
// reorganizations (push + pop), and the heap itself is a large
// pointer-dense allocation the garbage collector must trace. The ladder
// replaces both costs for message events: scheduling is an append into a
// time-indexed bucket of plain values (no pointers anywhere), and
// draining sorts one small bucket at a time, so the steady-state cost per
// message is O(1) amortized appends plus an O(log b) share of sorting a
// bucket of b ~ tens of events. Closure events keep the heap: they are
// rare (timers), escape to callers, and must support Cancel.
//
// Structure. Rung 0 covers the near future [base, base+256*width) with
// 256 equal buckets; events beyond it go to an unsorted far list. Events
// are drained bucket by bucket: the next non-empty bucket is sealed —
// sorted by event Key into `bottom` — and consumed in order. A sealed
// bucket that is too large is first re-bucketed ("spilled") into rung 1,
// a 256-bucket ring spanning just that bucket's width, whose buckets are
// then sealed individually; a rung-1 bucket is sorted directly however
// large it is (two levels only). When rung 0 is exhausted the ladder
// re-anchors on the far list, re-tuning the bucket width to the far
// events' span so sparse far-future schedules stay O(1) amortized too.
//
// Ordering. The engine's global order is the locally-computable event Key
// (see key.go), shared with closure events. Within the ladder this order
// is restored lazily: buckets are unsorted until sealed, and events that
// arrive behind the drain point (a callback scheduling at or near the
// current instant) are inserted into the sorted bottom by binary search.
// Step merges the ladder's head with the closure heap's head, so the
// interleaving of message and closure events matches a single priority
// queue exactly — pinned by TestLadderMatchesReferenceQueue.

const (
	// ladderBuckets is the bucket count per rung (a power of two keeps
	// the rung arrays cache-friendly; 256 spans 256*width per window).
	ladderBuckets = 256
	// ladderSpillMin is the sealed-bucket size above which a rung-0
	// bucket is re-bucketed into rung 1 instead of sorted directly.
	ladderSpillMin = 128
	// ladderDefaultWidth is the initial rung-0 bucket width in seconds
	// (LAN-scale delivery delays land a handful of buckets apart). The
	// width re-tunes automatically at every re-anchor.
	ladderDefaultWidth = 1e-3
	// ladderMinWidth floors the re-tuned width so locate() never
	// divides by a denormal.
	ladderMinWidth = 1e-12
	// ladderTrimCap is the bucket capacity (in events) above which a
	// drained bucket's backing array is released to the GC when the
	// drain used less than a quarter of it — long runs do not retain
	// worst-case burst memory forever (see TestLadderReleasesBurstMemory).
	ladderTrimCap = 8192
)

// msgEvent is one scheduled message event: a plain value, 64 bytes, no
// pointers. The ladder stores these inline, so a full window of pending
// messages is a handful of contiguous arrays the GC skips entirely.
type msgEvent struct {
	key    Key
	msg    Message
	target int32
}

// msgBefore is the engine's global event order restricted to messages.
func msgBefore(a, b msgEvent) bool { return a.key.Less(b.key) }

// rung is one level of time-indexed buckets.
type rung struct {
	base    Time // start instant of bucket 0
	width   Time // seconds per bucket
	cur     int  // index of the bucket being drained; -1 before the first
	buckets [ladderBuckets][]msgEvent
}

// locate maps an instant to a bucket index, clamped to the rung. Callers
// guarantee at < base+ladderBuckets*width for rung 0 (far list otherwise);
// instants before base (events behind the drain point) clamp to 0.
func (r *rung) locate(at Time) int {
	i := int((at - r.base) / r.width)
	if i < 0 {
		return 0
	}
	if i >= ladderBuckets {
		return ladderBuckets - 1
	}
	return i
}

// ladder is the two-level message-event queue.
type ladder struct {
	count    int // total queued message events, all tiers
	anchored bool
	r0       rung
	r1       rung
	r1active bool

	// bottom is the sealed bucket currently being drained, sorted by
	// (at, seq); pos is the next unconsumed index. Late arrivals that
	// land at or behind the drain point are insertion-sorted into
	// bottom[pos:].
	bottom []msgEvent
	pos    int
	// srcRung/srcIdx remember which bucket lent bottom its backing
	// array, so the (possibly grown) array is returned on release.
	srcRung *rung
	srcIdx  int

	// far holds events beyond rung 0's window, unsorted; scratch is the
	// swap space used to redistribute it at re-anchor time.
	far     []msgEvent
	scratch []msgEvent

	// maxLen is the largest bucket (or far list) drained since the last
	// trim sweep, and prevMax the largest of the sweep period before it:
	// the sweep releases only capacity no recent burst came near, so
	// steady workloads never churn allocations. The floor spans two
	// periods because a round-structured workload quiesces twice per
	// round — once after the round's deliveries drain and once when the
	// next round's trigger events re-anchor the window — and the trigger
	// burst is tiny: a one-period floor would let that sweep release the
	// delivery buckets the round is just about to refill, reallocating
	// the entire steady-state working set every round.
	maxLen  int
	prevMax int
}

// push enqueues ev. ev.at must be finite and >= now, the engine's
// current time (validated by the engine before the event is built).
//
//syncsim:hotpath
func (l *ladder) push(now Time, ev msgEvent) {
	if !l.anchored {
		l.anchor(now)
	}
	l.count++
	if ev.key.At >= l.r0.base+ladderBuckets*l.r0.width {
		l.far = append(l.far, ev)
		return
	}
	i := l.r0.locate(ev.key.At)
	if i > l.r0.cur {
		l.r0.buckets[i] = append(l.r0.buckets[i], ev)
		return
	}
	// At or behind the drain point: the event belongs to the region
	// already sealed. Route it into rung 1 if that still has unsealed
	// buckets ahead of it, else into the sorted bottom.
	if l.r1active {
		if j := l.r1.locate(ev.key.At); j > l.r1.cur {
			l.r1.buckets[j] = append(l.r1.buckets[j], ev)
			return
		}
	}
	l.insortBottom(ev)
}

// anchor starts a fresh window at the current instant — not at the
// first event's: anchoring on an event in the middle of a burst would
// clamp every earlier-delivery event into bucket 0, skewing occupancy by
// the luck of the first delay draw. The bucket width is retained across
// anchors (it re-tunes at re-anchor time).
func (l *ladder) anchor(at Time) {
	if l.r0.width < ladderMinWidth {
		l.r0.width = ladderDefaultWidth
	}
	l.r0.base = at
	l.r0.cur = -1
	l.anchored = true
}

// insortBottom inserts ev into the sorted, partially drained bottom.
func (l *ladder) insortBottom(ev msgEvent) {
	lo, hi := l.pos, len(l.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if msgBefore(ev, l.bottom[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	l.bottom = append(l.bottom, msgEvent{})
	copy(l.bottom[lo+1:], l.bottom[lo:])
	l.bottom[lo] = ev
}

// peek returns the earliest pending message event without consuming it.
func (l *ladder) peek() (msgEvent, bool) {
	if l.count == 0 {
		return msgEvent{}, false
	}
	for l.pos >= len(l.bottom) {
		l.advance()
	}
	return l.bottom[l.pos], true
}

// pop consumes the event peek returned. Callers must call peek first.
//
//syncsim:hotpath
func (l *ladder) pop() msgEvent {
	ev := l.bottom[l.pos]
	l.pos++
	l.count--
	if l.count == 0 {
		// Pristine reset: release the drained bottom back to its bucket
		// and let the next push re-anchor at its own instant. Bucket
		// capacity is retained (steady bursts stay allocation-free)
		// except what the trim sweep finds grossly oversized.
		l.releaseBottom()
		l.r1active = false
		l.anchored = false
		l.sweep()
	}
	return ev
}

// advance seals the next non-empty bucket into bottom. Callers guarantee
// count > 0.
func (l *ladder) advance() {
	l.releaseBottom()
	if l.r1active {
		for j := l.r1.cur + 1; j < ladderBuckets; j++ {
			if len(l.r1.buckets[j]) > 0 {
				l.r1.cur = j
				l.seal(&l.r1, j)
				return
			}
		}
		l.r1active = false
	}
	for {
		for i := l.r0.cur + 1; i < ladderBuckets; i++ {
			b := l.r0.buckets[i]
			if len(b) == 0 {
				continue
			}
			l.r0.cur = i
			if len(b) > ladderSpillMin && l.r0.width/ladderBuckets >= ladderMinWidth {
				l.spill(i)
				for j := 0; j < ladderBuckets; j++ {
					if len(l.r1.buckets[j]) > 0 {
						l.r1.cur = j
						l.seal(&l.r1, j)
						return
					}
				}
				// Unreachable: spill moved len(b) > 0 events into rung 1.
			}
			l.seal(&l.r0, i)
			return
		}
		l.reanchor()
	}
}

// seal sorts bucket i of r in place and makes it the drain bottom.
func (l *ladder) seal(r *rung, i int) {
	b := r.buckets[i]
	slices.SortFunc(b, func(a, b msgEvent) int { return a.key.Compare(b.key) })
	l.bottom = b
	l.pos = 0
	l.srcRung, l.srcIdx = r, i
}

// releaseBottom returns bottom's backing array to the bucket it came
// from.
func (l *ladder) releaseBottom() {
	if l.srcRung != nil {
		if len(l.bottom) > l.maxLen {
			l.maxLen = len(l.bottom)
		}
		l.srcRung.buckets[l.srcIdx] = l.bottom[:0]
		l.srcRung = nil
	}
	l.bottom = nil
	l.pos = 0
}

// sweep releases backing arrays that are both large and far beyond
// anything the workload has needed since the last sweep, so one
// oversized burst does not pin its worst-case memory for the rest of a
// long run (or a campaign batch reusing the engine's allocator churn).
// It runs at quiescent points only — queue empty or window re-anchor —
// and uses a 4x hysteresis against the recent high-water mark, so a
// steady workload never releases (and never re-allocates) anything.
func (l *ladder) sweep() {
	recent := l.maxLen
	if l.prevMax > recent {
		recent = l.prevMax
	}
	floor := recent * 4
	if floor < ladderTrimCap {
		floor = ladderTrimCap
	}
	// Never release a non-empty slice: the re-anchor call site runs the
	// sweep right after redistributing the far list into rung-0 buckets,
	// so an oversized bucket may hold live events — dropping it would
	// silently lose them and desync count.
	for i := range l.r0.buckets {
		if len(l.r0.buckets[i]) == 0 && cap(l.r0.buckets[i]) > floor {
			l.r0.buckets[i] = nil
		}
		if len(l.r1.buckets[i]) == 0 && cap(l.r1.buckets[i]) > floor {
			l.r1.buckets[i] = nil
		}
	}
	if len(l.far) == 0 && cap(l.far) > floor {
		l.far = nil
	}
	if cap(l.scratch) > floor {
		l.scratch = nil
	}
	l.prevMax = l.maxLen
	l.maxLen = 0
}

// spill re-buckets the oversized rung-0 bucket i across rung 1, which
// spans exactly that bucket's width. Rung-1 buckets own their backing
// arrays and retain capacity across spills (trimmed by the quiescent
// sweep like rung 0), so both the scatter and later arrivals routed to
// an unsealed rung-1 bucket are plain appends. Late arrivals are not
// rare under bounded draining: a window bound regularly stops the drain
// mid-spill, and the next window's cross-shard deliveries then land
// inside the still-active rung-1 span — carving buckets out of one
// shared contiguous buffer (an earlier design) made every such arrival
// copy out its whole bucket.
func (l *ladder) spill(i int) {
	b := l.r0.buckets[i]
	l.r1.base = l.r0.base + Time(i)*l.r0.width
	l.r1.width = l.r0.width / ladderBuckets
	l.r1.cur = -1
	l.r1active = true
	if len(b) > l.maxLen {
		l.maxLen = len(b)
	}
	// Count first, then reserve 2x (floor 16) before scattering: per-spill
	// bucket occupancy is a handful of events and drifts round to round,
	// so growing caps by bare appends would keep crossing tiny thresholds
	// forever — with headroom, capacities converge after a few spills and
	// both the scatter and late arrivals stop allocating.
	var cnt [ladderBuckets]int32
	for _, ev := range b {
		cnt[l.r1.locate(ev.key.At)]++
	}
	for j, c := range cnt {
		if int(c) > cap(l.r1.buckets[j]) {
			want := 2 * int(c)
			if want < 16 {
				want = 16
			}
			l.r1.buckets[j] = make([]msgEvent, 0, want)
		}
	}
	for _, ev := range b {
		j := l.r1.locate(ev.key.At)
		l.r1.buckets[j] = append(l.r1.buckets[j], ev)
	}
	l.r0.buckets[i] = b[:0]
}

// reanchor rebuilds rung 0 over the far list after the window drained,
// re-tuning the bucket width to the far events' span. Callers guarantee
// count > 0, which here means far is non-empty.
func (l *ladder) reanchor() {
	lo, hi := l.far[0].key.At, l.far[0].key.At
	for _, ev := range l.far[1:] {
		if ev.key.At < lo {
			lo = ev.key.At
		}
		if ev.key.At > hi {
			hi = ev.key.At
		}
	}
	if w := (hi - lo) / Time(ladderBuckets-1); w >= ladderMinWidth {
		l.r0.width = w
	}
	l.r0.base = lo
	l.r0.cur = -1
	// Redistribute. Every far event fits the new window by construction
	// (locate clamps the hi endpoint into the last bucket).
	for _, ev := range l.far {
		i := l.r0.locate(ev.key.At)
		l.r0.buckets[i] = append(l.r0.buckets[i], ev)
	}
	if len(l.far) > l.maxLen {
		l.maxLen = len(l.far)
	}
	next := l.scratch[:0]
	l.scratch = l.far[:0]
	l.far = next
	l.sweep()
}
