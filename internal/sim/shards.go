package sim

import (
	"fmt"
	"math"

	"optsync/internal/probe"
)

// This file implements the conservative parallel tier of the engine: a
// Shards coordinator that partitions a simulation's lanes (nodes) across
// k worker goroutines, each owning a full Engine — its own ladder
// partition, closure heap, lane counters, and observation buffer.
//
// Parallelism is classic conservative PDES with the network's minimum
// delivery delay as the lookahead bound: a message sent at time t arrives
// no earlier than t+L, so every event in the window [W, W+L) is causally
// independent across shards — cross-shard influence can only arrive at or
// after the window's end. Workers therefore drain their own queues freely
// inside the window, buffering cross-shard sends into per-pair mailboxes
// (owned by the network layer), and the coordinator exchanges the
// mailboxes at a barrier between windows. No rollback is ever needed.
//
// Determinism. Correctness here means more than "no races": a k-shard run
// must be bit-identical to the serial engine — same results, same stats,
// same probe traces. Three mechanisms deliver that:
//
//  1. The event Key (key.go) is computable by the scheduling shard alone
//     yet totally orders all events exactly as the serial engine executes
//     them; each worker drains strictly below a per-window key bound.
//  2. Events on LaneGlobal (skew samplers, partition markers — anything
//     reading cross-shard state) live on a separate global engine and run
//     single-threaded at barriers; the window bound clamps to the next
//     global event's key so shard events before/after it in key order
//     really execute before/after it.
//  3. Observations made inside a window (probe events, pulses) are
//     buffered per shard, tagged with (executing event key, emission
//     index), and k-way merged into the real bus at the barrier — the
//     merged stream is byte-identical to serial emission order.
//
// The worker goroutines persist for the life of the coordinator and park
// on channels between windows, so a steady-state window costs 2k channel
// operations and no allocation (the 0 allocs/op message-path guarantee
// holds per shard).
type Shards struct {
	k         int
	lookahead Time
	global    *Engine
	engs      []*Engine
	recs      []*shardRecorder
	barriers  []func()

	startCh []chan Key
	doneCh  chan struct{}
	closed  bool

	mirrored []bool // probe types already mirrored onto shard buses
	mergePos []int  // scratch for the k-way observation merge
}

// NewShards builds a conservative parallel coordinator with k shard
// engines plus one global engine, all seeded identically (derived random
// streams depend on (seed, id) alone, so every engine can answer for any
// entity). lookahead is the network's minimum delivery delay: the width
// of the safe window. It must be positive — a zero-lookahead model has no
// safe window and must run serially.
func NewShards(seed int64, k int, lookahead Time) *Shards {
	if k < 1 {
		panic(fmt.Sprintf("sim: NewShards k=%d", k))
	}
	if !(lookahead > 0) { // rejects zero, negatives, and NaN
		panic(fmt.Sprintf("sim: NewShards lookahead=%v (need > 0)", lookahead))
	}
	s := &Shards{
		k:         k,
		lookahead: lookahead,
		global:    New(seed),
		startCh:   make([]chan Key, k),
		doneCh:    make(chan struct{}, k),
		mirrored:  make([]bool, len(probe.AllTypes())+1),
		mergePos:  make([]int, k),
	}
	for i := 0; i < k; i++ {
		e := New(seed)
		s.engs = append(s.engs, e)
		s.recs = append(s.recs, &shardRecorder{eng: e})
		s.startCh[i] = make(chan Key, 1)
	}
	for i := 0; i < k; i++ {
		go s.worker(i)
	}
	return s
}

// K returns the shard count.
func (s *Shards) K() int { return s.k }

// Lookahead returns the window width.
func (s *Shards) Lookahead() Time { return s.lookahead }

// Global returns the coordinator's global engine: the home of LaneGlobal
// closures and of the run's real probe bus. Its clock is the simulation
// frontier.
func (s *Shards) Global() *Engine { return s.global }

// Shard returns shard i's engine. Outside Run, the caller owns it (build
// and boot single-threaded); during Run only its worker touches it.
func (s *Shards) Shard(i int) *Engine { return s.engs[i] }

// Now returns the simulation frontier.
func (s *Shards) Now() Time { return s.global.Now() }

// Processed returns the number of events executed across all engines.
func (s *Shards) Processed() uint64 {
	total := s.global.Processed()
	for _, e := range s.engs {
		total += e.Processed()
	}
	return total
}

// Pending returns the number of events queued across all engines.
func (s *Shards) Pending() int {
	total := s.global.Pending()
	for _, e := range s.engs {
		total += e.Pending()
	}
	return total
}

// OnBarrier registers fn to run at every window barrier, after workers
// have parked and observations merged. The network layer registers its
// mailbox exchange here. Hooks run on the coordinator goroutine, strictly
// ordered with the workers (channel synchronization), so they may touch
// every shard's state.
func (s *Shards) OnBarrier(fn func()) {
	s.barriers = append(s.barriers, fn)
}

// worker is one shard's drain loop: park, drain the window, report.
func (s *Shards) worker(i int) {
	e := s.engs[i]
	for bound := range s.startCh[i] {
		e.runBefore(bound)
		s.doneCh <- struct{}{}
	}
}

// mirror subscribes each shard's recorder to every probe type active on
// the real bus, so the Bus.Active guards across network/node code behave
// identically on every shard — and identically to a serial run.
func (s *Shards) mirror() {
	for _, t := range probe.AllTypes() {
		if !s.mirrored[t] && s.global.probes.Active(t) {
			s.mirrored[t] = true
			for i := range s.engs {
				s.engs[i].probes.Attach(s.recs[i], t)
			}
		}
	}
}

// Run executes events until every queue is drained past until, then
// advances all clocks to until — the sharded equivalent of Engine.Run.
// It may be called repeatedly with increasing horizons.
func (s *Shards) Run(until Time) { s.run(until) }

// Drain executes until no pending events remain anywhere, leaving the
// clocks at the frontier (the sharded equivalent of Engine.RunAll with no
// limit).
func (s *Shards) Drain() { s.run(math.Inf(1)) }

func (s *Shards) run(until Time) {
	if s.closed {
		panic("sim: Shards.Run after Close")
	}
	s.mirror()
	for {
		// Frontier: the earliest pending instant anywhere. Jumping the
		// window start to it skips empty windows entirely, so sparse
		// schedules don't pay one barrier per lookahead-width of idle
		// virtual time.
		next := math.Inf(1)
		for _, e := range s.engs {
			if at, ok := e.nextAt(); ok && at < next {
				next = at
			}
		}
		gk, gok := s.global.nextKey()
		if gok && gk.At < next {
			next = gk.At
		}
		if next > until || math.IsInf(next, 1) {
			break
		}
		// Window [next, next+L): safe because nothing sent inside it can
		// arrive before its end. The bound is exclusive at next+L (a
		// minimum-delay message sent at the window start lands exactly
		// there and belongs to the next window); the final partial window
		// [next, until] is inclusive, mirroring Engine.Run's at <= until.
		var bound Key
		if wEnd := next + s.lookahead; wEnd <= until {
			bound = keyBefore(wEnd)
		} else {
			bound = keyAfter(until)
		}
		runGlobal := gok && gk.Less(bound)
		if runGlobal {
			// A global event splits the window: shards drain strictly
			// below its key, then it runs alone at the barrier, seeing
			// exactly the cross-shard state a serial run would.
			bound = gk
		}
		for i := range s.startCh {
			s.startCh[i] <- bound
		}
		for range s.engs {
			<-s.doneCh
		}
		frontier := bound.At
		if frontier > until {
			frontier = until
		}
		for _, e := range s.engs {
			e.advanceTo(frontier)
		}
		s.flushObservations()
		for _, fn := range s.barriers {
			fn()
		}
		if runGlobal {
			s.global.Step()
		} else {
			s.global.advanceTo(frontier)
		}
	}
	if !math.IsInf(until, 1) {
		for _, e := range s.engs {
			e.advanceTo(until)
		}
		s.global.advanceTo(until)
	}
}

// flushObservations k-way merges the shards' buffered probe events into
// the real bus in (key, emission) order — the exact order a serial run
// emits them. Buffers are reused; a steady-state merge allocates nothing.
func (s *Shards) flushObservations() {
	any := false
	for i, r := range s.recs {
		s.mergePos[i] = 0
		if len(r.buf) > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	bus := &s.global.probes
	for {
		best := -1
		var bestTag obsTag
		for i, r := range s.recs {
			j := s.mergePos[i]
			if j >= len(r.buf) {
				continue
			}
			if best < 0 || r.buf[j].tag.less(bestTag) {
				best, bestTag = i, r.buf[j].tag
			}
		}
		if best < 0 {
			break
		}
		//syncsim:allowlist probeguard merge drains events the shard recorders already buffered; buffers are empty unless probes were attached, so the unobserved run never reaches this loop
		bus.Emit(s.recs[best].buf[s.mergePos[best]].ev)
		s.mergePos[best]++
	}
	for _, r := range s.recs {
		r.buf = r.buf[:0]
	}
}

// Close parks and releases the worker goroutines. The coordinator cannot
// run afterwards; engines remain readable (stats, clocks, queues).
func (s *Shards) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.startCh {
		close(ch)
	}
}

// obsTag orders one buffered observation: the key of the event that was
// executing plus the emission index within it.
type obsTag struct {
	key Key
	seq uint32
}

func (t obsTag) less(o obsTag) bool {
	if t.key != o.key {
		return t.key.Less(o.key)
	}
	return t.seq < o.seq
}

// taggedEvent is one buffered probe event awaiting the barrier merge.
type taggedEvent struct {
	tag obsTag
	ev  probe.Event
}

// shardRecorder buffers every probe event a shard's window produces,
// tagged for the deterministic merge. It is attached to the shard
// engine's bus for exactly the types the real bus subscribes.
type shardRecorder struct {
	eng *Engine
	buf []taggedEvent
}

var _ probe.Probe = (*shardRecorder)(nil)

// OnEvent implements probe.Probe.
func (r *shardRecorder) OnEvent(ev probe.Event) {
	k, seq := r.eng.ExecTag()
	r.buf = append(r.buf, taggedEvent{tag: obsTag{key: k, seq: seq}, ev: ev})
}
