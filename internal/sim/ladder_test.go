package sim

import (
	"math"
	"math/rand"
	"testing"
)

// --- Reference implementation ---
//
// refQueue is the executable specification of the engine's event order: a
// flat slice scanned for the (time, seq) minimum on every pop. It is
// O(n) per operation and obviously correct; the ladder+heap engine must
// reproduce its execution order bit-identically.

type refItem struct {
	at       Time
	seq      uint64
	id       int
	canceled bool
}

type refQueue struct {
	items []refItem
	seq   uint64
}

func (q *refQueue) push(at Time, id int) uint64 {
	s := q.seq
	q.seq++
	q.items = append(q.items, refItem{at: at, seq: s, id: id})
	return s
}

func (q *refQueue) cancel(seq uint64) {
	for i := range q.items {
		if q.items[i].seq == seq {
			q.items[i].canceled = true
		}
	}
}

func (q *refQueue) pop() (refItem, bool) {
	best := -1
	for i := range q.items {
		if q.items[i].canceled {
			continue
		}
		if best < 0 || q.items[i].at < q.items[best].at ||
			(q.items[i].at == q.items[best].at && q.items[i].seq < q.items[best].seq) {
			best = i
		}
	}
	if best < 0 {
		q.items = q.items[:0]
		return refItem{}, false
	}
	it := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return it, true
}

// ladderProgram is one randomized schedule driven identically through the
// real engine and the reference queue. Times are drawn from a mix of
// regimes chosen to hit every ladder tier and transition:
//
//   - dense near-future offsets (rung-0 buckets, spill to rung 1)
//   - exact duplicates and zero offsets (equal-timestamp FIFO)
//   - bucket-boundary multiples of the default width (locate edges)
//   - far-future offsets (far list, re-anchor, width re-tune)
//
// A fraction of events are closures (heap tier, some canceled), the rest
// message events (ladder tier), so the cross-tier merge is exercised at
// every instant; fired events schedule follow-ups with the same time
// distribution, so insertion behind the drain point (sorted-bottom
// insort, rung-1 late routing) happens constantly.
func ladderProgram(t *testing.T, seed int64, initial, spawn int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	e := New(seed)
	ref := &refQueue{}
	var engineOrder, refOrder []int
	var engineTimes []Time

	delta := func() Time {
		switch rng.Intn(10) {
		case 0:
			return 0 // same instant
		case 1:
			return Time(rng.Intn(4)) * ladderDefaultWidth // exact bucket boundaries
		case 2:
			return 200e-3 + rng.Float64() // near/far threshold and beyond
		case 3:
			return 10 + rng.Float64()*100 // deep far list
		default:
			return rng.Float64() * 12e-3 // dense LAN-style offsets
		}
	}

	target := e.RegisterDispatcher(&funcDispatcher{})
	nextID := 0
	budget := spawn

	var schedule func(base Time, n int)
	schedule = func(base Time, n int) {
		for k := 0; k < n; k++ {
			id := nextID
			nextID++
			at := base + delta()
			if rng.Intn(3) == 0 { // closure event
				seq := ref.push(at, id)
				ev := e.MustAt(at, func() {
					engineOrder = append(engineOrder, id)
					engineTimes = append(engineTimes, e.Now())
					if budget > 0 && rng.Intn(4) == 0 {
						budget--
						schedule(e.Now(), 1)
					}
				})
				if rng.Intn(8) == 0 { // cancel some closures immediately
					e.Cancel(ev)
					ref.cancel(seq)
				}
			} else { // message event
				ref.push(at, id)
				e.MustAtMsg(at, target, Message{Index: uint32(id)})
			}
		}
	}
	// The dispatcher needs access to the closure state; install it now.
	e.dispatchers[target] = &funcDispatcher{fn: func(now Time, m Message) {
		engineOrder = append(engineOrder, int(m.Index))
		engineTimes = append(engineTimes, now)
		if budget > 0 && rng.Intn(4) == 0 {
			budget--
			schedule(now, 1)
		}
	}}

	schedule(0, initial)

	// Drain through horizon-bounded Run calls plus a final RunAll so the
	// Run(until) boundary logic is part of the property.
	e.Run(6e-3)
	e.Run(6e-3) // idempotent horizon re-run
	e.RunAll(3)
	e.RunAll(0)

	// The reference executes its own copy of the schedule. Follow-ups are
	// already in ref.items (the engine-side callbacks pushed them), so a
	// straight drain yields the reference order.
	for {
		it, ok := ref.pop()
		if !ok {
			break
		}
		refOrder = append(refOrder, it.id)
	}

	if len(engineOrder) != len(refOrder) {
		t.Fatalf("seed %d: engine fired %d events, reference %d", seed, len(engineOrder), len(refOrder))
	}
	for i := range refOrder {
		if engineOrder[i] != refOrder[i] {
			t.Fatalf("seed %d: order diverges at %d: engine %v... reference %v...",
				seed, i, engineOrder[max(0, i-3):min(len(engineOrder), i+3)],
				refOrder[max(0, i-3):min(len(refOrder), i+3)])
		}
	}
	for i := 1; i < len(engineTimes); i++ {
		if engineTimes[i] < engineTimes[i-1] {
			t.Fatalf("seed %d: time ran backwards at %d: %v -> %v", seed, i, engineTimes[i-1], engineTimes[i])
		}
	}
}

// TestLadderMatchesReferenceQueue drives random schedules through the
// ladder+heap engine and a brute-force reference queue: the execution
// order — across closure and message events, equal timestamps, cancels,
// spills, far-list re-anchors, and horizon boundaries — must match
// event for event.
func TestLadderMatchesReferenceQueue(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		ladderProgram(t, seed, 60, 120)
	}
	// One larger schedule to force multi-bucket spills.
	ladderProgram(t, 4242, 600, 400)
}

// ladderProgram's reference follow-up scheduling rides the engine
// callbacks, so both sides see the identical schedule by construction.
// A second property pins the pure ladder (no closures): random message
// schedules must drain in nondecreasing (time, seq) order with nothing
// lost, including when every event shares one instant.
func TestLadderDrainOrderProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var l ladder
		n := 1 + rng.Intn(2000)
		sameAt := rng.Intn(3) == 0
		for i := 0; i < n; i++ {
			at := rng.Float64() * math.Pow(10, float64(rng.Intn(6))-3)
			if sameAt {
				at = 1.5
			}
			l.push(0, msgEvent{key: Key{At: at, Seq: uint32(i)}, msg: Message{Index: uint32(i)}})
		}
		var prev msgEvent
		for k := 0; k < n; k++ {
			ev, ok := l.peek()
			if !ok {
				t.Fatalf("seed %d: ladder empty after %d of %d", seed, k, n)
			}
			got := l.pop()
			if got != ev {
				t.Fatalf("seed %d: pop returned %+v, peek said %+v", seed, got, ev)
			}
			if k > 0 && msgBefore(got, prev) {
				t.Fatalf("seed %d: order violation at %d: %+v after %+v", seed, k, got, prev)
			}
			prev = got
		}
		if _, ok := l.peek(); ok || l.count != 0 {
			t.Fatalf("seed %d: ladder not empty after full drain", seed)
		}
	}
}

// TestLadderReleasesBurstMemory asserts the quiescent-sweep cap: after a
// burst far larger than ladderTrimCap drains and a small steady workload
// follows, the burst's bucket capacity is released instead of pinned for
// the rest of the run.
func TestLadderReleasesBurstMemory(t *testing.T) {
	e := New(1)
	target := e.RegisterDispatcher(&funcDispatcher{fn: func(Time, Message) {}})

	// Burst: everything lands in one rung-0 bucket, forcing a giant
	// bucket, a giant spill buffer, and a giant far list.
	const burst = 10 * ladderTrimCap
	for i := 0; i < burst; i++ {
		e.MustAtMsg(e.Now()+1e-4*Time(i%7)/7, target, Message{Index: uint32(i)})
		e.MustAtMsg(e.Now()+100+Time(i%5), target, Message{Index: uint32(i)}) // far tier
	}
	e.RunAll(0)

	peak := ladderRetained(&e.ladder)
	if peak <= ladderTrimCap {
		t.Fatalf("burst retained only %d slots; fixture too small to test the cap", peak)
	}

	// Steady small workload: a few events per quiescent cycle.
	for round := 0; round < 3; round++ {
		for i := 0; i < 16; i++ {
			e.MustAtMsg(e.Now()+1e-3*Time(i), target, Message{Index: uint32(i)})
		}
		e.RunAll(0)
	}

	after := ladderRetained(&e.ladder)
	if after > ladderTrimCap {
		t.Fatalf("ladder retains %d event slots after the burst drained (cap %d, peak %d)",
			after, ladderTrimCap, peak)
	}
}

// TestReanchorSweepKeepsLiveEvents is the regression test for a trim bug:
// reanchor() redistributes the far list into rung-0 buckets and then runs
// the trim sweep, so a bucket retaining a huge cap from an old burst can
// be both oversized and freshly refilled — the sweep must never release a
// non-empty bucket (it used to, silently losing the events and then
// panicking in the next reanchor on the desynced count).
func TestReanchorSweepKeepsLiveEvents(t *testing.T) {
	e := New(1)
	delivered := 0
	var target int
	target = e.RegisterDispatcher(&funcDispatcher{fn: func(Time, Message) { delivered++ }})

	const burst = 20000
	total := 0
	// 1. Burst into one rung-0 bucket: retained cap ~burst > ladderTrimCap.
	for i := 0; i < burst; i++ {
		e.MustAtMsg(0.0001+Time(i%10)*1e-5, target, Message{Index: uint32(i)})
		total++
	}
	// Sentinels keep the ladder non-empty across both re-anchors (no
	// pristine reset, so the big bucket's capacity is retained).
	e.MustAtMsg(500, target, Message{})
	e.MustAtMsg(1000, target, Message{})
	total += 2
	// 2. Drain the burst; the next peek re-anchors onto {500, 1000} and
	// sweeps with maxLen ~ burst (floor high: nothing trimmed).
	e.Run(600)
	// 3. Small far batch beyond the re-anchored window.
	for i := 0; i < 64; i++ {
		e.MustAtMsg(2000+Time(i), target, Message{Index: uint32(i)})
		total++
	}
	// 4. Draining past 1000 exhausts the window: the second reanchor
	// redistributes the batch into the big-cap bucket and sweeps with a
	// small maxLen — the oversized bucket now holds live events.
	e.RunAll(0)
	if delivered != total {
		t.Fatalf("delivered %d of %d events (trim sweep dropped live events)", delivered, total)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after full drain", e.Pending())
	}
}

// ladderRetained sums the event capacity held by every ladder tier.
func ladderRetained(l *ladder) int {
	total := cap(l.far) + cap(l.scratch) + cap(l.bottom)
	for i := range l.r0.buckets {
		total += cap(l.r0.buckets[i]) + cap(l.r1.buckets[i])
	}
	return total
}

// TestAfterRejectsNonFiniteDelay is the regression test for the
// Engine.After validation: NaN and infinite delays must surface as
// errors (previously they were forwarded into MustAt and panicked).
func TestAfterRejectsNonFiniteDelay(t *testing.T) {
	e := New(1)
	for _, d := range []Time{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := e.After(d, func() {}); err == nil {
			t.Fatalf("After(%v) did not return an error", d)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("rejected delays left %d events queued", e.Pending())
	}
	// MustAfter panics on the same inputs (the validated-caller contract).
	defer func() {
		if recover() == nil {
			t.Fatal("MustAfter(NaN) did not panic")
		}
	}()
	e.MustAfter(math.NaN(), func() {})
}
