package sim

import "math"

// LaneGlobal is the scheduling lane of events created outside any node's
// execution context: initialization code, samplers, partition markers.
// Global-lane events are the only events that may read cross-node state,
// so the sharded engine executes them single-threaded at window barriers.
const LaneGlobal int32 = -1

// Key totally orders every pending event across both tiers (the closure
// heap and the message ladder). It replaces the old single global
// sequence number, which only a serial engine can assign: the sharded
// engine needs an order every shard can compute locally, yet one that the
// serial engine reproduces exactly, so that k-shard runs are bit-identical
// to serial runs.
//
// The order is lexicographic (At, Cause, Lane, Seq):
//
//   - At is the execution instant.
//   - Cause is the instant the event was scheduled. Among events due at
//     the same instant, earlier-scheduled events run first — this keeps
//     the order causal: an event executing at t can only create events
//     with Cause = t, which sort after every same-instant event scheduled
//     before t, so nothing is ever inserted behind the execution frontier.
//   - Lane is the scheduling lane: LaneGlobal for engine-level events,
//     the node id for everything a node schedules (its timers and, one
//     per accepted recipient, its transmissions).
//   - Seq is a per-lane counter. A lane is only ever driven by one
//     goroutine (a node belongs to exactly one shard), so the counter
//     needs no synchronization yet yields the same values in serial and
//     sharded runs: a node's execution sequence is identical in both.
//
// Uniqueness: (Lane, Seq) alone is unique, so the full key is.
type Key struct {
	At    Time
	Cause Time
	Lane  int32
	Seq   uint32
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	if k.Cause != o.Cause {
		return k.Cause < o.Cause
	}
	if k.Lane != o.Lane {
		return k.Lane < o.Lane
	}
	return k.Seq < o.Seq
}

// Compare returns -1, 0, or +1 by the total event order.
func (k Key) Compare(o Key) int {
	if k.Less(o) {
		return -1
	}
	if o.Less(k) {
		return 1
	}
	return 0
}

// keyBefore is the exclusive lower sentinel of instant t: every real event
// at t orders at or after it (real causes are finite and > -Inf). Window
// drains use it as a strict upper bound meaning "everything before t".
func keyBefore(t Time) Key {
	return Key{At: t, Cause: math.Inf(-1), Lane: math.MinInt32}
}

// keyAfter is the inclusive upper sentinel of instant t: every real event
// at t orders strictly before it. Window drains use it as a strict upper
// bound meaning "everything at or before t".
func keyAfter(t Time) Key {
	return Key{At: t, Cause: math.Inf(1), Lane: math.MaxInt32, Seq: math.MaxUint32}
}

// StreamSeed derives the seed of an auxiliary deterministic random stream
// from the engine seed, an entity id, and a purpose salt. Streams derived
// this way depend on (seed, id, salt) alone — never on how many draws any
// other component made — which is what lets a sharded run consume exactly
// the random sequences the serial run does. RandFor uses salt 0; the
// network's per-sender delay streams use their own salt.
func StreamSeed(seed int64, id int, salt int64) int64 {
	return seed ^ int64(0x9E3779B97F4A7C15*uint64(id+1)) ^ salt
}
