package sim

import (
	"testing"
)

// recorder is a test dispatcher logging (now, msg) pairs.
type recorder struct {
	at   []Time
	msgs []Message
}

func (r *recorder) Dispatch(now Time, m Message) {
	r.at = append(r.at, now)
	r.msgs = append(r.msgs, m)
}

func TestAtMsgDispatchesToTarget(t *testing.T) {
	e := New(1)
	a, b := &recorder{}, &recorder{}
	ta := e.RegisterDispatcher(a)
	tb := e.RegisterDispatcher(b)
	e.MustAtMsg(2, ta, Message{From: 7, Kind: 1, Index: 11})
	e.MustAtMsg(1, tb, Message{From: 8, Kind: 2, Index: 22})
	e.RunAll(0)
	if len(a.msgs) != 1 || a.msgs[0] != (Message{From: 7, Kind: 1, Index: 11}) || a.at[0] != 2 {
		t.Fatalf("dispatcher a got %v at %v", a.msgs, a.at)
	}
	if len(b.msgs) != 1 || b.msgs[0].From != 8 {
		t.Fatalf("dispatcher b got %v", b.msgs)
	}
}

func TestAtMsgErrors(t *testing.T) {
	e := New(1)
	target := e.RegisterDispatcher(&recorder{})
	e.MustAt(5, func() {})
	e.Step()
	if err := e.AtMsg(1, target, Message{}); err == nil {
		t.Fatal("expected past-time error")
	}
	if err := e.AtMsg(10, 99, Message{}); err == nil {
		t.Fatal("expected unknown-target error")
	}
	if err := e.AtMsg(10, -1, Message{}); err == nil {
		t.Fatal("expected negative-target error")
	}
}

func TestRegisterNilDispatcherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterDispatcher(nil) did not panic")
		}
	}()
	New(1).RegisterDispatcher(nil)
}

// Message events interleave with closure events in strict (time, seq)
// order — the pooled path must not disturb the FIFO tie-break.
func TestMsgAndClosureEventInterleaving(t *testing.T) {
	e := New(1)
	var order []int
	target := e.RegisterDispatcher(&funcDispatcher{func(_ Time, m Message) {
		order = append(order, int(m.Index))
	}})
	e.MustAt(1, func() { order = append(order, -1) })
	e.MustAtMsg(1, target, Message{Index: 100})
	e.MustAt(1, func() { order = append(order, -2) })
	e.MustAtMsg(1, target, Message{Index: 101})
	e.RunAll(0)
	want := []int{-1, 100, -2, 101}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type funcDispatcher struct {
	fn func(Time, Message)
}

func (d *funcDispatcher) Dispatch(now Time, m Message) { d.fn(now, m) }

// Steady-state message events must reuse retained ladder bucket
// capacity (the old engine's free list is gone — events are values now):
// after a warm-up round, scheduling another batch allocates nothing.
func TestMsgEventPoolReuse(t *testing.T) {
	e := New(1)
	target := e.RegisterDispatcher(&recorder{})
	for i := 0; i < 100; i++ {
		e.MustAtMsg(Time(i), target, Message{Index: uint32(i)})
	}
	e.RunAll(0)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 100; i++ {
			e.MustAtMsg(e.Now()+Time(i), target, Message{Index: uint32(i)})
		}
		e.RunAll(0)
	})
	if allocs > 1 { // the recorder's append may occasionally grow
		t.Fatalf("steady-state AtMsg allocated %.1f objects per round", allocs)
	}
}

// A dispatcher that schedules from inside Dispatch inserts behind the
// ladder's drain point; the engine must order the follow-up correctly.
func TestDispatchReschedulesFromPool(t *testing.T) {
	e := New(1)
	var seen []uint32
	var target int
	target = e.RegisterDispatcher(&funcDispatcher{func(now Time, m Message) {
		seen = append(seen, m.Index)
		if m.Index < 5 {
			e.MustAtMsg(now+1, target, Message{Index: m.Index + 1})
		}
	}})
	e.MustAtMsg(0, target, Message{Index: 0})
	e.RunAll(0)
	if len(seen) != 6 || seen[5] != 5 {
		t.Fatalf("chain = %v", seen)
	}
}

// --- Per-node random streams ---

func TestRandForIsCallOrderInvariant(t *testing.T) {
	draw := func(e *Engine, id int) float64 { return e.RandFor(id).Float64() }

	e1 := New(42)
	a1 := draw(e1, 0)
	b1 := draw(e1, 1)

	e2 := New(42)
	// Ask in the opposite order; the streams must be identical anyway.
	b2 := draw(e2, 1)
	a2 := draw(e2, 0)

	if a1 != a2 || b1 != b2 {
		t.Fatalf("RandFor depends on acquisition order: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
	// Unlike Rand(), interleaving draws on the shared stream must not
	// disturb per-id streams.
	e3 := New(42)
	e3.Rand().Float64()
	if got := draw(e3, 0); got != a1 {
		t.Fatalf("shared-stream draws disturbed RandFor(0): %v vs %v", got, a1)
	}
}

func TestRandForIsStateful(t *testing.T) {
	e := New(1)
	first := e.RandFor(3).Float64()
	second := e.RandFor(3).Float64()
	if first == second {
		t.Fatal("repeated RandFor draws returned the same value (stream reset?)")
	}
	if e.Seed() != 1 {
		t.Fatalf("Seed() = %d", e.Seed())
	}
}

// --- Edge cases of the engine loop ---

// Cancel-then-step: cancelling the head of the queue between steps must
// not stall or misorder the remaining events.
func TestCancelHeadThenStep(t *testing.T) {
	e := New(1)
	var got []int
	head := e.MustAt(1, func() { got = append(got, 1) })
	e.MustAt(2, func() { got = append(got, 2) })
	e.MustAt(3, func() { got = append(got, 3) })
	e.Cancel(head)
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if e.Now() != 2 || len(got) != 1 || got[0] != 2 {
		t.Fatalf("after step: now=%v got=%v", e.Now(), got)
	}
	e.Step()
	if len(got) != 2 || got[1] != 3 {
		t.Fatalf("got = %v", got)
	}
	if e.Step() {
		t.Fatal("Step returned true on an empty queue")
	}
}

// Run(until) with an event exactly at the horizon: the event fires (the
// horizon is inclusive) and Now lands exactly on the horizon, not past it.
func TestRunUntilEventExactlyAtHorizon(t *testing.T) {
	e := New(1)
	var fired []Time
	e.MustAt(5, func() { fired = append(fired, e.Now()) })
	e.MustAt(5.0000000001, func() { fired = append(fired, e.Now()) })
	e.Run(5)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("fired = %v, want exactly the t=5 event", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", e.Now())
	}
	// An event scheduled from the boundary event at the boundary instant
	// still belongs to the horizon.
	e2 := New(1)
	ran := false
	e2.MustAt(5, func() { e2.MustAt(5, func() { ran = true }) })
	e2.Run(5)
	if !ran {
		t.Fatal("event chained at the horizon instant did not run within Run(5)")
	}
}

// RunAll(limit) with events that schedule further events: the limit
// counts executed events, including newly spawned ones, and the remainder
// stays queued.
func TestRunAllLimitWithSelfScheduling(t *testing.T) {
	e := New(1)
	var count int
	var loop func()
	loop = func() {
		count++
		e.MustAfter(1, loop) // every event schedules its successor
	}
	e.MustAfter(0, loop)
	if n := e.RunAll(7); n != 7 {
		t.Fatalf("RunAll(7) processed %d", n)
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the next self-scheduled event", e.Pending())
	}
	// Resuming picks up where the limit stopped.
	if n := e.RunAll(2); n != 2 || count != 9 {
		t.Fatalf("resume processed %d, count %d", n, count)
	}
}
