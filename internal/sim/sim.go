// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual "real time" clock (float64 seconds) and
// two event tiers sharing one global (time, sequence) order: a two-level
// ladder/calendar queue of value-inline message events (the O(n^2)
// steady-state path — see ladder.go) and a binary heap of closure events
// (timers), which escape to callers and support Cancel. Events scheduled
// for the same instant execute in scheduling order (FIFO), which together
// with a seeded random source makes every simulation fully reproducible.
//
// The engine is single-threaded by design: distributed-system
// "concurrency" is modelled by event interleaving, not goroutines, so
// simulations are deterministic and race-free.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"optsync/internal/probe"
)

// Time is virtual real time in seconds since the start of the simulation.
type Time = float64

// Message is a value-typed event payload routed to a registered
// Dispatcher instead of a heap-allocated closure. The engine treats every
// field as opaque; by convention From/To are endpoint ids and Index is a
// slot in a dispatcher-owned arena holding the real payload — or, when
// the dispatcher's Flags say so, the scalar fields carry the entire
// payload inline and the event never touches an arena at all. Either
// way the steady-state message path stays allocation-free.
type Message struct {
	// From and To are endpoint hints (dispatcher-defined; To < 0 for
	// batched deliveries that fan out inside the dispatcher).
	From, To int32
	// Kind is a dispatcher-defined discriminator.
	Kind uint16
	// Flags carries dispatcher-defined bits (e.g. "payload is inline").
	Flags uint16
	// Index addresses the payload in the dispatcher's arena.
	Index uint32
	// Round and Value are dispatcher-defined inline payload scalars:
	// envelopes that fit them skip the arena and ride the event queue
	// as one self-contained value.
	Round int32
	Value float64
}

// Dispatcher consumes value-typed message events at their delivery time.
// Implementations own the arena Message.Index points into.
type Dispatcher interface {
	Dispatch(now Time, m Message)
}

// Event is a scheduled callback. It is returned by the scheduling methods
// so that callers can cancel it before it fires. Message events (AtMsg)
// ride the ladder queue as inline values instead and have no handle.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// ErrPastTime is returned when scheduling an event before the current
// virtual time.
var ErrPastTime = errors.New("sim: schedule time is in the past")

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now  Time
	seed int64
	// seq is the global scheduling sequence, shared by both event tiers:
	// (at, seq) totally orders every pending event.
	seq uint64
	// closures is the heap tier: cancellable callback events only.
	closures eventQueue
	// ladder is the message tier: value-inline, near-O(1) scheduling.
	ladder      ladder
	rng         *rand.Rand
	perID       map[int]*rand.Rand
	processed   uint64
	dispatchers []Dispatcher
	// probes is the run's observation bus. The engine owns it so every
	// layer sharing the engine (network, nodes, samplers) shares one
	// event stream; the engine itself emits nothing.
	probes probe.Bus
	// Trap, if non-nil, is invoked with every panic message raised via
	// Fatalf; by default Fatalf panics.
	Trap func(format string, args ...any)
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		seed: seed,
		// Deliberately *not* crypto-random: reproducibility is the point.
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Probes returns the engine's observation bus. Attach probes before the
// engine runs; emission sites across sim/network/node guard with
// Bus.Active so an empty bus costs nothing.
func (e *Engine) Probes() *probe.Bus { return &e.probes }

// Rand returns the engine's deterministic random source. All randomness in
// a simulation must come from this source (or sources derived from it) to
// preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// RandFor returns a deterministic random stream derived from the engine
// seed and id alone. Unlike Rand, the stream a caller receives does not
// depend on how many draws other components made before it asked, so
// per-node randomness is invariant under registration/boot reordering.
// Repeated calls with the same id return the same (stateful) stream.
func (e *Engine) RandFor(id int) *rand.Rand {
	if r, ok := e.perID[id]; ok {
		return r
	}
	if e.perID == nil {
		e.perID = make(map[int]*rand.Rand)
	}
	r := rand.New(rand.NewSource(e.seed ^ int64(0x9E3779B97F4A7C15*uint64(id+1))))
	e.perID[id] = r
	return r
}

// RegisterDispatcher installs d and returns the target id to pass to
// AtMsg. Dispatchers cannot be unregistered: the id is an index into an
// append-only table, kept trivially stable for the life of the engine.
func (e *Engine) RegisterDispatcher(d Dispatcher) int {
	if d == nil {
		panic("sim: RegisterDispatcher(nil)")
	}
	e.dispatchers = append(e.dispatchers, d)
	return len(e.dispatchers) - 1
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.closures) + e.ladder.count }

// At schedules fn to run at virtual time t. Scheduling at the current time
// is allowed (the event runs after all previously scheduled events for that
// time). Scheduling in the past returns ErrPastTime.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastTime, t, e.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("sim: invalid event time %v", t)
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.closures, ev)
	return ev, nil
}

// AtMsg schedules a value-typed message event for virtual time t, to be
// delivered to the dispatcher registered under target. Message events are
// stored inline in the ladder queue: in steady state AtMsg performs no
// heap allocation and no heap reorganization. They cannot be individually
// canceled (no handle escapes); cancellation belongs to the dispatcher's
// own arena bookkeeping.
func (e *Engine) AtMsg(t Time, target int, m Message) error {
	if t < e.now {
		return fmt.Errorf("%w: t=%v now=%v", ErrPastTime, t, e.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: invalid event time %v", t)
	}
	if target < 0 || target >= len(e.dispatchers) {
		return fmt.Errorf("sim: unknown dispatch target %d", target)
	}
	e.ladder.push(e.now, msgEvent{at: t, seq: e.seq, msg: m, target: int32(target)})
	e.seq++
	return nil
}

// MustAtMsg is AtMsg for callers that have already validated t and target;
// it panics on error.
func (e *Engine) MustAtMsg(t Time, target int, m Message) {
	if err := e.AtMsg(t, target, m); err != nil {
		panic(err)
	}
}

// MustAt is At for callers that have already validated t; it panics on error.
func (e *Engine) MustAt(t Time, fn func()) *Event {
	ev, err := e.At(t, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// After schedules fn to run d seconds of virtual time from now. Negative
// delays clamp to zero (run after the already-scheduled events for the
// current instant); NaN and infinite delays are errors.
func (e *Engine) After(d Time, fn func()) (*Event, error) {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return nil, fmt.Errorf("sim: invalid delay %v", d)
	}
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// MustAfter is After for callers that have already validated d; it panics
// on error.
func (e *Engine) MustAfter(d Time, fn func()) *Event {
	ev, err := e.After(d, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Cancel removes a pending event so that it never fires. Canceling a fired
// or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.canceled = true
	heap.Remove(&e.closures, ev.index)
}

// Step executes the single next event, advancing virtual time to it.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	m, okM := e.ladder.peek()
	if len(e.closures) == 0 {
		if !okM {
			return false
		}
	} else if c := e.closures[0]; !okM || c.at < m.at || (c.at == m.at && c.seq < m.seq) {
		heap.Pop(&e.closures)
		e.now = c.at
		e.processed++
		c.fn()
		return true
	}
	e.ladder.pop()
	e.now = m.at
	e.processed++
	e.dispatchers[m.target].Dispatch(e.now, m.msg)
	return true
}

// nextAt returns the instant of the earliest pending event.
func (e *Engine) nextAt() (Time, bool) {
	m, okM := e.ladder.peek()
	if len(e.closures) == 0 {
		return m.at, okM
	}
	if c := e.closures[0]; !okM || c.at < m.at {
		return c.at, true
	}
	return m.at, true
}

// Run executes events until the queue is empty or the next event is
// strictly after until. Virtual time is advanced to until at the end, so
// subsequent scheduling is relative to the horizon.
func (e *Engine) Run(until Time) {
	for {
		at, ok := e.nextAt()
		if !ok || at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue is empty or limit events were
// processed. It returns the number of events processed by this call. A
// limit of 0 means no limit.
func (e *Engine) RunAll(limit uint64) uint64 {
	var count uint64
	for e.Pending() > 0 {
		if limit > 0 && count >= limit {
			break
		}
		e.Step()
		count++
	}
	return count
}

// Fatalf reports a fatal simulation error. By default it panics; tests can
// install a Trap to capture it.
func (e *Engine) Fatalf(format string, args ...any) {
	if e.Trap != nil {
		e.Trap(format, args...)
		return
	}
	panic(fmt.Sprintf("sim: "+format, args...))
}

// eventQueue is a binary heap of closure events ordered by (time, sequence).
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
