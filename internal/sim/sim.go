// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual "real time" clock (float64 seconds) and
// two event tiers sharing one global Key order (see key.go): a two-level
// ladder/calendar queue of value-inline message events (the O(n^2)
// steady-state path — see ladder.go) and a binary heap of closure events
// (timers), which escape to callers and support Cancel. The order is
// locally computable — (instant, scheduling instant, lane, per-lane
// sequence) — so the same total order is produced whether one engine runs
// every event (the serial reference) or a Shards coordinator partitions
// the lanes across worker goroutines (shards.go); together with seeded,
// per-entity random streams this makes every simulation fully
// reproducible, bit-for-bit, at any shard count.
//
// A serial engine is single-threaded by design: distributed-system
// "concurrency" is modelled by event interleaving, not goroutines. The
// sharded engine keeps that discipline per shard — each shard engine is
// only ever driven by one goroutine at a time, with barriers between
// windows — so simulations stay deterministic and race-free.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"optsync/internal/probe"
)

// Time is virtual real time in seconds since the start of the simulation.
type Time = float64

// Message is a value-typed event payload routed to a registered
// Dispatcher instead of a heap-allocated closure. The engine treats every
// field as opaque; by convention From/To are endpoint ids and Index is a
// slot in a dispatcher-owned arena holding the real payload — or, when
// the dispatcher's Flags say so, the scalar fields carry the entire
// payload inline and the event never touches an arena at all. Either
// way the steady-state message path stays allocation-free.
type Message struct {
	// From and To are endpoint hints (dispatcher-defined; To < 0 for
	// batched deliveries that fan out inside the dispatcher).
	From, To int32
	// Kind is a dispatcher-defined discriminator.
	Kind uint16
	// Flags carries dispatcher-defined bits (e.g. "payload is inline").
	Flags uint16
	// Index addresses the payload in the dispatcher's arena.
	Index uint32
	// Round and Value are dispatcher-defined inline payload scalars:
	// envelopes that fit them skip the arena and ride the event queue
	// as one self-contained value.
	Round int32
	Value float64
}

// Dispatcher consumes value-typed message events at their delivery time.
// Implementations own the arena Message.Index points into.
type Dispatcher interface {
	Dispatch(now Time, m Message)
}

// Event is a scheduled callback. It is returned by the scheduling methods
// so that callers can cancel it before it fires. Message events (AtMsg)
// ride the ladder queue as inline values instead and have no handle.
type Event struct {
	key      Key
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.key.At }

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// ErrPastTime is returned when scheduling an event before the current
// virtual time.
var ErrPastTime = errors.New("sim: schedule time is in the past")

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now  Time
	seed int64
	// laneSeq holds the per-lane scheduling counters, indexed lane+1
	// (slot 0 is LaneGlobal). Together with Cause they replace the old
	// single global sequence: every lane's counter advances identically
	// in serial and sharded execution.
	laneSeq []uint32
	// curLane is the lane of the event currently executing (LaneGlobal
	// outside event execution); scheduling calls inherit it.
	curLane int32
	// execKey is the key of the event currently executing and emitSeq
	// counts the observations (probe events, pulses) it has produced —
	// the tag the sharded engine's per-shard buffers merge on.
	execKey Key
	emitSeq uint32
	// closures is the heap tier: cancellable callback events only.
	closures eventQueue
	// ladder is the message tier: value-inline, near-O(1) scheduling.
	ladder      ladder
	rng         *rand.Rand
	perID       map[int]*rand.Rand
	processed   uint64
	dispatchers []Dispatcher
	// probes is the run's observation bus. The engine owns it so every
	// layer sharing the engine (network, nodes, samplers) shares one
	// event stream; the engine itself emits nothing. In a sharded run
	// each shard engine's bus mirrors the coordinator's subscriptions
	// through a buffering recorder (see shards.go).
	probes probe.Bus
	// Trap, if non-nil, is invoked with every panic message raised via
	// Fatalf; by default Fatalf panics.
	Trap func(format string, args ...any)
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		seed: seed,
		// Deliberately *not* crypto-random: reproducibility is the point.
		rng:     rand.New(rand.NewSource(seed)),
		curLane: LaneGlobal,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Probes returns the engine's observation bus. Attach probes before the
// engine runs; emission sites across sim/network/node guard with
// Bus.Active so an empty bus costs nothing.
func (e *Engine) Probes() *probe.Bus { return &e.probes }

// Rand returns the engine's deterministic random source. All randomness in
// a simulation must come from this source (or streams derived from the
// engine seed — see RandFor and StreamSeed) to preserve reproducibility.
// Draws from this shared stream depend on global draw order, so runtime
// simulation code must prefer the derived streams; the shared stream is
// for setup-time and test randomness.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// RandFor returns a deterministic random stream derived from the engine
// seed and id alone. Unlike Rand, the stream a caller receives does not
// depend on how many draws other components made before it asked, so
// per-node randomness is invariant under registration/boot reordering.
// Repeated calls with the same id return the same (stateful) stream.
func (e *Engine) RandFor(id int) *rand.Rand {
	if r, ok := e.perID[id]; ok {
		return r
	}
	if e.perID == nil {
		e.perID = make(map[int]*rand.Rand)
	}
	r := rand.New(rand.NewSource(StreamSeed(e.seed, id, 0)))
	e.perID[id] = r
	return r
}

// RegisterDispatcher installs d and returns the target id to pass to
// AtMsg. Dispatchers cannot be unregistered: the id is an index into an
// append-only table, kept trivially stable for the life of the engine.
func (e *Engine) RegisterDispatcher(d Dispatcher) int {
	if d == nil {
		panic("sim: RegisterDispatcher(nil)")
	}
	e.dispatchers = append(e.dispatchers, d)
	return len(e.dispatchers) - 1
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.closures) + e.ladder.count }

// nextSeq takes the next per-lane sequence number.
func (e *Engine) nextSeq(lane int32) uint32 {
	i := int(lane) + 1
	for len(e.laneSeq) <= i {
		e.laneSeq = append(e.laneSeq, 0)
	}
	s := e.laneSeq[i]
	e.laneSeq[i] = s + 1
	if s+1 == 0 {
		e.Fatalf("lane %d scheduling sequence overflow", lane)
	}
	return s
}

// TakeKey allocates the ordering key a message scheduled now for instant
// at would receive: the current scheduling lane and its next sequence
// number. It is the cross-shard send path's half of AtMsg — the sender's
// engine assigns the key (so local and remote transmissions consume one
// per-lane sequence each, exactly as a serial run would), and the owning
// shard's engine enqueues it later via ScheduleMsg.
func (e *Engine) TakeKey(at Time) Key {
	return Key{At: at, Cause: e.now, Lane: e.curLane, Seq: e.nextSeq(e.curLane)}
}

// ScheduleMsg enqueues a message event under a key previously allocated
// with TakeKey (possibly by another shard's engine). The key must not be
// behind this engine's clock — in a sharded run that would mean the
// lookahead bound was violated.
func (e *Engine) ScheduleMsg(k Key, target int, m Message) {
	if k.At < e.now {
		e.Fatalf("ScheduleMsg at %v behind engine clock %v (lookahead violation?)", k.At, e.now)
		return
	}
	if target < 0 || target >= len(e.dispatchers) {
		e.Fatalf("ScheduleMsg: unknown dispatch target %d", target)
		return
	}
	e.ladder.push(e.now, msgEvent{key: k, msg: m, target: int32(target)})
}

// ExecLane returns the scheduling lane of the event currently executing
// (LaneGlobal outside event execution).
func (e *Engine) ExecLane() int32 { return e.curLane }

// SetExecLane rebinds the current scheduling lane mid-event. It exists
// for batch dispatchers: one message event may fan out to several
// recipients, and each recipient's handler must schedule on its own lane
// (the recipient's timers and relays belong to the recipient, not to the
// batch's sender). The engine restores LaneGlobal after the event.
func (e *Engine) SetExecLane(lane int32) { e.curLane = lane }

// ExecTag returns the key of the event currently executing plus the next
// observation sequence number within it. Per-shard observation buffers
// (probe events, pulse records) tag entries with it so a k-way merge at
// the window barrier reproduces the serial emission order exactly.
func (e *Engine) ExecTag() (Key, uint32) {
	s := e.emitSeq
	e.emitSeq++
	return e.execKey, s
}

// At schedules fn to run at virtual time t on the current scheduling lane.
// Scheduling at the current time is allowed (the event runs after all
// previously scheduled events for that time). Scheduling in the past
// returns ErrPastTime.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	return e.AtLane(e.curLane, t, fn)
}

// AtLane schedules fn to run at virtual time t on an explicit scheduling
// lane. Use it from initialization code to place node-owned events (boot
// closures) on the node's lane, where the sharded engine will run them on
// the node's shard; everything else should use At, which inherits the
// executing event's lane. Cross-lane scheduling at the current instant
// from inside a running simulation is a fatal error when it would land
// behind the execution frontier: the event order could then differ
// between serial and sharded runs.
func (e *Engine) AtLane(lane int32, t Time, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastTime, t, e.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("sim: invalid event time %v", t)
	}
	k := Key{At: t, Cause: e.now, Lane: lane, Seq: e.nextSeq(lane)}
	if lane != e.curLane && e.processed > 0 && k.Less(e.execKey) {
		e.Fatalf("cross-lane event (lane %d, t=%v) scheduled behind the execution frontier (lane %d, t=%v)",
			lane, t, e.curLane, e.execKey.At)
	}
	ev := &Event{key: k, fn: fn, index: -1}
	heap.Push(&e.closures, ev)
	return ev, nil
}

// MustAtLane is AtLane for callers that have already validated t; it
// panics on error.
func (e *Engine) MustAtLane(lane int32, t Time, fn func()) *Event {
	ev, err := e.AtLane(lane, t, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// AtMsg schedules a value-typed message event for virtual time t, to be
// delivered to the dispatcher registered under target. The event is keyed
// to the current scheduling lane (the sender executing right now), so a
// broadcast's recipients inherit the sender's per-lane sequence in
// recipient order. Message events are stored inline in the ladder queue:
// in steady state AtMsg performs no heap allocation and no heap
// reorganization. They cannot be individually canceled (no handle
// escapes); cancellation belongs to the dispatcher's own arena
// bookkeeping.
func (e *Engine) AtMsg(t Time, target int, m Message) error {
	if t < e.now {
		return fmt.Errorf("%w: t=%v now=%v", ErrPastTime, t, e.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: invalid event time %v", t)
	}
	if target < 0 || target >= len(e.dispatchers) {
		return fmt.Errorf("sim: unknown dispatch target %d", target)
	}
	k := Key{At: t, Cause: e.now, Lane: e.curLane, Seq: e.nextSeq(e.curLane)}
	e.ladder.push(e.now, msgEvent{key: k, msg: m, target: int32(target)})
	return nil
}

// MustAtMsg is AtMsg for callers that have already validated t and target;
// it panics on error.
func (e *Engine) MustAtMsg(t Time, target int, m Message) {
	if err := e.AtMsg(t, target, m); err != nil {
		panic(err)
	}
}

// MustAt is At for callers that have already validated t; it panics on error.
func (e *Engine) MustAt(t Time, fn func()) *Event {
	ev, err := e.At(t, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// After schedules fn to run d seconds of virtual time from now. Negative
// delays clamp to zero (run after the already-scheduled events for the
// current instant); NaN and infinite delays are errors.
func (e *Engine) After(d Time, fn func()) (*Event, error) {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return nil, fmt.Errorf("sim: invalid delay %v", d)
	}
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// MustAfter is After for callers that have already validated d; it panics
// on error.
func (e *Engine) MustAfter(d Time, fn func()) *Event {
	ev, err := e.After(d, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Cancel removes a pending event so that it never fires. Canceling a fired
// or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.canceled = true
	heap.Remove(&e.closures, ev.index)
}

// Step executes the single next event, advancing virtual time to it.
// It returns false when the queue is empty.
//
//syncsim:hotpath
func (e *Engine) Step() bool {
	m, okM := e.ladder.peek()
	if len(e.closures) == 0 {
		if !okM {
			return false
		}
	} else if c := e.closures[0]; !okM || c.key.Less(m.key) {
		heap.Pop(&e.closures)
		e.now = c.key.At
		e.execKey, e.curLane, e.emitSeq = c.key, c.key.Lane, 0
		e.processed++
		c.fn()
		e.curLane = LaneGlobal
		return true
	}
	e.ladder.pop()
	e.now = m.key.At
	// Message events order on the sender's lane but execute recipient
	// code: the dispatcher rebinds the lane per recipient (SetExecLane).
	e.execKey, e.curLane, e.emitSeq = m.key, LaneGlobal, 0
	e.processed++
	e.dispatchers[m.target].Dispatch(e.now, m.msg)
	e.curLane = LaneGlobal
	return true
}

// nextAt returns the instant of the earliest pending event.
func (e *Engine) nextAt() (Time, bool) {
	m, okM := e.ladder.peek()
	if len(e.closures) == 0 {
		return m.key.At, okM
	}
	if c := e.closures[0]; !okM || c.key.At < m.key.At {
		return c.key.At, true
	}
	return m.key.At, true
}

// nextKey returns the key of the earliest pending event.
func (e *Engine) nextKey() (Key, bool) {
	m, okM := e.ladder.peek()
	if len(e.closures) == 0 {
		if !okM {
			return Key{}, false
		}
		return m.key, true
	}
	if c := e.closures[0]; !okM || c.key.Less(m.key) {
		return c.key, true
	}
	return m.key, true
}

// runBefore executes every pending event ordering strictly before bound,
// including events those events schedule, in key order. It is the shard
// worker's inner loop: bound is the window's safe horizon.
func (e *Engine) runBefore(bound Key) {
	for {
		k, ok := e.nextKey()
		if !ok || !k.Less(bound) {
			return
		}
		e.Step()
	}
}

// advanceTo moves the engine clock forward to t without executing
// anything (the window barrier's frontier advance). Earlier t is a no-op.
func (e *Engine) advanceTo(t Time) {
	if e.now < t {
		e.now = t
	}
}

// Run executes events until the queue is empty or the next event is
// strictly after until. Virtual time is advanced to until at the end, so
// subsequent scheduling is relative to the horizon.
func (e *Engine) Run(until Time) {
	for {
		at, ok := e.nextAt()
		if !ok || at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue is empty or limit events were
// processed. It returns the number of events processed by this call. A
// limit of 0 means no limit.
func (e *Engine) RunAll(limit uint64) uint64 {
	var count uint64
	for e.Pending() > 0 {
		if limit > 0 && count >= limit {
			break
		}
		e.Step()
		count++
	}
	return count
}

// Fatalf reports a fatal simulation error. By default it panics; tests can
// install a Trap to capture it.
func (e *Engine) Fatalf(format string, args ...any) {
	if e.Trap != nil {
		e.Trap(format, args...)
		return
	}
	panic(fmt.Sprintf("sim: "+format, args...))
}

// eventQueue is a binary heap of closure events in key order.
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool { return q[i].key.Less(q[j].key) }

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
