package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := New(1)
	var got []int
	e.MustAt(3, func() { got = append(got, 3) })
	e.MustAt(1, func() { got = append(got, 1) })
	e.MustAt(2, func() { got = append(got, 2) })
	e.RunAll(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineFIFOForTies(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustAt(5, func() { got = append(got, i) })
	}
	e.RunAll(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineRejectsPast(t *testing.T) {
	e := New(1)
	e.MustAt(10, func() {})
	e.Step()
	if _, err := e.At(5, func() {}); err == nil {
		t.Fatal("expected error scheduling in the past")
	}
	if _, err := e.At(math.NaN(), func() {}); err == nil {
		t.Fatal("expected error scheduling at NaN")
	}
	if _, err := e.At(math.Inf(1), func() {}); err == nil {
		t.Fatal("expected error scheduling at +Inf")
	}
}

func TestEngineSameTimeAllowed(t *testing.T) {
	e := New(1)
	ran := false
	e.MustAt(10, func() {
		// Scheduling at the current instant must be legal and run later.
		e.MustAt(e.Now(), func() { ran = true })
	})
	e.RunAll(0)
	if !ran {
		t.Fatal("event scheduled at current time did not run")
	}
}

func TestEngineCancel(t *testing.T) {
	e := New(1)
	ran := false
	ev := e.MustAt(1, func() { ran = true })
	e.Cancel(ev)
	e.RunAll(0)
	if ran {
		t.Fatal("canceled event ran")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	if ev.Pending() {
		t.Fatal("canceled event still pending")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := New(1)
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.MustAt(Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(evs[i])
	}
	e.RunAll(0)
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("canceled event %d ran", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("got %d events, want 13", len(got))
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New(1)
	var got []Time
	for _, tt := range []Time{1, 2, 3, 4, 5} {
		tt := tt
		e.MustAt(tt, func() { got = append(got, tt) })
	}
	e.Run(3)
	if len(got) != 3 {
		t.Fatalf("processed %d events by t=3, want 3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	e.Run(10)
	if len(got) != 5 {
		t.Fatalf("processed %d events total, want 5", len(got))
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want horizon 10", e.Now())
	}
}

func TestEngineAfter(t *testing.T) {
	e := New(1)
	var at Time
	e.MustAt(5, func() {
		e.MustAfter(2.5, func() { at = e.Now() })
	})
	e.RunAll(0)
	if at != 7.5 {
		t.Fatalf("After fired at %v, want 7.5", at)
	}
	// Negative delays clamp to "now".
	fired := false
	e.MustAfter(-1, func() { fired = true })
	e.RunAll(0)
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := New(seed)
		var got []Time
		var schedule func()
		n := 0
		schedule = func() {
			if n >= 100 {
				return
			}
			n++
			d := e.Rand().Float64()
			e.MustAfter(d, func() {
				got = append(got, e.Now())
				schedule()
			})
		}
		schedule()
		e.RunAll(0)
		return got
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestEngineProcessedAndPending(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.MustAt(Time(i), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
	e.RunAll(2)
	if e.Processed() != 2 {
		t.Fatalf("Processed() = %d, want 2", e.Processed())
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", e.Pending())
	}
}

func TestEngineFatalfTrap(t *testing.T) {
	e := New(1)
	var captured string
	e.Trap = func(format string, args ...any) { captured = format }
	e.Fatalf("boom %d", 7)
	if captured != "boom %d" {
		t.Fatalf("Trap not invoked, captured=%q", captured)
	}
	e.Trap = nil
	defer func() {
		if recover() == nil {
			t.Fatal("Fatalf without Trap did not panic")
		}
	}()
	e.Fatalf("boom")
}

// Property: for any batch of event times, execution order is the sorted
// order of times (stable for equal times).
func TestEngineHeapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New(7)
		times := make([]Time, len(raw))
		for i, r := range raw {
			times[i] = Time(r) / 16
		}
		var got []Time
		for _, tt := range times {
			tt := tt
			e.MustAt(tt, func() { got = append(got, tt) })
		}
		e.RunAll(0)
		want := append([]Time(nil), times...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset removes exactly that subset.
func TestEngineCancelProperty(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		e := New(3)
		type item struct {
			ev       *Event
			canceled bool
		}
		items := make([]item, len(raw))
		ran := make(map[int]bool)
		for i, r := range raw {
			i := i
			items[i].ev = e.MustAt(Time(r), func() { ran[i] = true })
		}
		for i := range items {
			if i < len(mask) && mask[i] {
				e.Cancel(items[i].ev)
				items[i].canceled = true
			}
		}
		e.RunAll(0)
		for i := range items {
			if items[i].canceled == ran[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
