// Package lint is syncsim's project-specific static analysis suite: a
// stdlib-only (go/parser + go/types + go/importer) driver plus the
// analyzers that keep the repo's two load-bearing invariants checkable
// before anything runs:
//
//   - bit-exact determinism — serial, sharded, and trace-replayed runs
//     must produce identical bytes, so deterministic packages may not
//     read wall clocks, draw from the global math/rand source, spawn
//     goroutines outside the Shards coordinator, or let map iteration
//     order reach scheduling, probe emission, or ordered output;
//   - the allocation-free observed hot path — probe emission sites must
//     be dominated by a Bus.Active guard, and functions annotated
//     //syncsim:hotpath may not use alloc-inducing constructs.
//
// The driver loads and type-checks every package in the module without
// golang.org/x/tools: module-local import paths are resolved to source
// directories under the module root and type-checked recursively, while
// standard-library paths are satisfied from the toolchain's compiler
// export data via go/importer.
package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package with its syntax retained
// for analysis.
type Package struct {
	// Path is the import path the package was loaded under. Fixture
	// packages may be loaded under a synthetic path to place them inside
	// or outside an analyzer's scope.
	Path string
	// Dir is the source directory.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages for analysis. Module-local packages (import
// paths under the module path of ModRoot/go.mod) are parsed and
// type-checked from source; standard-library packages come from the
// installed compiler's export data. Both are memoized, so a whole-module
// load type-checks each package exactly once.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at modRoot (the
// directory containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "gc", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// NewLoaderHere walks upward from dir to the enclosing go.mod and
// creates a loader for that module.
func NewLoaderHere(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return NewLoader(d)
		}
		if filepath.Dir(d) == d {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer: module-local paths load from source,
// everything else from compiler export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads and type-checks the package in dir under the given
// import path, memoized by path. The path controls analyzer scoping, so
// fixture tests can load testdata directories under synthetic module
// paths.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir with comments retained,
// in sorted file-name order. Files whose //go:build constraint excludes
// the host platform are skipped, mirroring what the compiler would
// build — without this, platform pairs like tracelake's mmap_unix.go /
// mmap_other.go would redeclare symbols and fail type-checking.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		ok, err := buildsOnHost(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// unixGOOS mirrors the GOOS set the toolchain's implicit "unix" build
// tag matches.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// buildsOnHost evaluates a file's //go:build line (if any) against the
// host GOOS/GOARCH. Only the modern directive form is recognized; the
// scan stops at the first non-comment line, where a constraint would no
// longer be valid anyway. Files without a constraint always build.
func buildsOnHost(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return false, fmt.Errorf("lint: %s: %v", path, err)
			}
			return expr.Eval(hostTag), nil
		}
		if line != "" && !strings.HasPrefix(line, "//") {
			break
		}
	}
	return true, sc.Err()
}

// hostTag reports whether one build tag is satisfied on the host.
// Release tags (go1.N) are treated as satisfied: the analysis toolchain
// is at least as new as anything the repo targets.
func hostTag(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixGOOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1."):
		return true
	}
	return false
}

// Expand resolves package patterns relative to the module root. "./..."
// (or "...") expands to every package directory under the root, skipping
// testdata, vendor, and dot/underscore directories; "dir/..." expands
// below dir; anything else names a single directory.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || pat == "./..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			paths = append(paths, l.ModPath)
		} else {
			paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// Load loads every package named by the expanded patterns.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
