// Package fixture seeds mustcheck cases: discarded results of
// Engine.After, a buffered sink's Flush, and the campaign store's
// Put/Compact, next to the accepted forms (checked, or explicitly
// assigned to blank).
package fixture

import (
	"bufio"

	"optsync/internal/campaign"
	"optsync/internal/harness"
	"optsync/internal/sim"
)

func discardAfter(e *sim.Engine) {
	e.After(1, func() {}) // want mustcheck "result of Engine.After discarded"
}

func checkedAfterOK(e *sim.Engine) {
	if _, err := e.After(1, func() {}); err != nil {
		panic(err)
	}
}

func blankAfterOK(e *sim.Engine) {
	_, _ = e.After(1, func() {})
}

func deferredFlush(w *bufio.Writer) {
	defer w.Flush() // want mustcheck "deferred result of Writer.Flush discarded"
}

func checkedFlushOK(w *bufio.Writer) error {
	return w.Flush()
}

func discardPut(s *campaign.Store, res harness.Result) {
	s.Put("cell-key", res) // want mustcheck "result of Store.Put discarded"
}

func discardCompact(s *campaign.Store) {
	s.Compact() // want mustcheck "result of Store.Compact discarded"
}

func checkedPutOK(s *campaign.Store, res harness.Result) error {
	return s.Put("cell-key", res)
}
