// Package fixture seeds probeguard cases: every recognized guard idiom
// (direct, init-statement, hoisted bool, closure-captured bool), the
// violations, and both allowlist-directive outcomes (a used suppression
// and an unused one, which is itself a finding).
package fixture

import "optsync/internal/probe"

func unguarded(bus *probe.Bus, ev probe.Event) {
	bus.Emit(ev) // want probeguard "not dominated by a Bus.Active guard"
}

func directGuardOK(bus *probe.Bus, ev probe.Event) {
	if bus.Active(ev.Type) {
		bus.Emit(ev)
	}
}

type holder struct{ bus *probe.Bus }

func initStmtGuardOK(h *holder, ev probe.Event) {
	if b := h.bus; b.Active(ev.Type) {
		b.Emit(ev)
	}
}

func hoistedGuardOK(bus *probe.Bus, evs []probe.Event) {
	pulseActive := bus.Active(probe.TypePulse)
	for _, ev := range evs {
		if pulseActive {
			bus.Emit(ev)
		}
	}
}

func hoistedClosureGuardOK(bus *probe.Bus, ev probe.Event) func() {
	anyActive := bus.AnyActive()
	return func() {
		if anyActive {
			bus.Emit(ev)
		}
	}
}

func elseBranch(bus *probe.Bus, ev probe.Event) int {
	if bus.Active(ev.Type) {
		return 1
	} else {
		bus.Emit(ev) // want probeguard "not dominated by a Bus.Active guard"
	}
	return 0
}

func unrelatedBool(bus *probe.Bus, evs []probe.Event) {
	nonEmpty := len(evs) > 0
	if nonEmpty {
		bus.Emit(evs[0]) // want probeguard "not dominated by a Bus.Active guard"
	}
}

func allowlistedOK(bus *probe.Bus, ev probe.Event) {
	//syncsim:allowlist probeguard replay-style fixture: events were guarded when recorded
	bus.Emit(ev)
}

func allowlistedSameLineOK(bus *probe.Bus, ev probe.Event) {
	bus.Emit(ev) //syncsim:allowlist probeguard same-line suppression form
}

//syncsim:allowlist probeguard nothing in this body violates probeguard // want directive "suppresses no finding; delete it"
func unusedDirective(bus *probe.Bus, ev probe.Event) {
	if bus.Active(ev.Type) {
		bus.Emit(ev)
	}
}
