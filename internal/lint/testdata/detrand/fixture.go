// Package fixture seeds known detrand violations and the idioms that
// must NOT be flagged. lint_test loads it twice: once under a synthetic
// path inside the deterministic core (every "want" below must fire) and
// once under a neutral path (detrand must stay silent).
package fixture

import (
	"math/rand"
	"sort"
	"time"

	"optsync/internal/probe"
	"optsync/internal/sim"
)

func wallClock() float64 {
	return float64(time.Now().UnixNano()) // want detrand "wall-clock read time.Now"
}

func wallClockElapsed(start time.Time) time.Duration {
	return time.Since(start) // want detrand "wall-clock read time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want detrand "global math/rand source (rand.Intn)"
}

func localRandOK(rng *rand.Rand) int {
	return rng.Intn(10) // method on an injected stream, not the global source
}

func spawn(fn func()) {
	go fn() // want detrand "goroutine spawned outside the sim.Shards coordinator"
}

func spawnFromConstructorOK(fn func()) *sim.Shards {
	go fn() // constructor-shaped: result type *sim.Shards
	return nil
}

func mapRangeEmit(bus *probe.Bus, m map[int32]float64) {
	for id, v := range m { // want detrand "probe emission (Bus.Emit)"
		if bus.Active(probe.TypePulse) {
			bus.Emit(probe.Event{Type: probe.TypePulse, From: id, To: -1, Value: v})
		}
	}
}

func mapRangeSchedule(e *sim.Engine, m map[int]sim.Time) {
	for _, at := range m { // want detrand "event scheduling (Engine.MustAt)"
		e.MustAt(at, func() {})
	}
}

func mapRangeAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want detrand "ordered output (append inside the loop, never sorted)"
		out = append(out, k)
	}
	return out
}

func sortedKeysOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRangeOK(e *sim.Engine, ats []sim.Time) {
	for _, at := range ats { // slices iterate in index order
		e.MustAt(at, func() {})
	}
}
