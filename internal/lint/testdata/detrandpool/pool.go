// Fixture for the file-scoped allowlist: the directive below sits above
// the package clause, so it must suppress every detrand finding in THIS
// file — the idiom the tracelake decode pool uses, one reasoned
// carve-out instead of a directive per go statement. Both goroutines
// below would be detrand findings without it; neither carries a want
// comment, so a regression in file scoping fails the fixture test as an
// unexpected diagnostic.
//
//syncsim:allowlist detrand fixture decode pool: workers deliver in deterministic order, no simulation state touched

package pool

func spawnWorker(fn func()) {
	go fn() // suppressed by the file-scoped directive above the package clause
}

func spawnFeeder(done chan struct{}) {
	go func() { close(done) }() // also suppressed: file scope covers every line
}
