// The other half of the file-scope contract: a file-scoped directive is
// still subject to the unused-directive rule. This file has no detrand
// violation, so the directive itself must be reported.
//
//syncsim:allowlist detrand nothing in this file trips the rule // want directive "suppresses no finding"

package pool

func plainCode() int { return 42 }
