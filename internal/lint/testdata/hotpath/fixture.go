// Package fixture seeds hotpath cases: one annotated function per
// alloc-inducing construct the analyzer flags, one annotated function
// using only the allowed idioms, and an unannotated function showing
// the analyzer scopes to //syncsim:hotpath bodies only.
package fixture

import "fmt"

type buf struct {
	data []int
	name string
}

func sink(v any) { _ = v }

// hot collects every flagged construct.
//
//syncsim:hotpath
func hot(b *buf, x int, tag string) {
	fmt.Println(x)     // want hotpath "call to fmt.Println allocates"
	b.name = tag + "!" // want hotpath "string concatenation allocates"
	f := func() int {  // want hotpath "function literal allocates"
		return x
	}
	_ = f
	_ = any(x)                 // want hotpath "conversion to interface any allocates (boxing)"
	sink(x)                    // want hotpath "implicit conversion of int to interface any allocates (boxing)"
	tmp := make([]int, 0, 8)   // want hotpath "make allocates"
	p := new(buf)              // want hotpath "new allocates"
	grown := append(b.data, x) // want hotpath "append into a different destination allocates"
	_, _, _ = tmp, p, grown
}

// hotClean stays inside the contract: self-append reuse (including
// sliced reuse), pointer-shaped interface args, no formatting.
//
//syncsim:hotpath
func hotClean(b *buf, x int) {
	b.data = append(b.data, x)
	b.data = append(b.data[:0], x)
	sink(b)
}

// cold is unannotated: the same constructs draw no findings.
func cold(b *buf, x int) {
	fmt.Println(x)
	_ = any(x)
	b.data = append(make([]int, 0, 8), x)
}
