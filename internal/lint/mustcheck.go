package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MustCheck forbids silently discarding results whose loss corrupts a
// run or its durability:
//
//   - sim.Engine.After returns (event, error) — a dropped error means a
//     mis-parameterized timer silently never fires;
//   - any Flush method with results — sinks and trace writers buffer,
//     so an unchecked Flush can lose the tail of a table or a trace;
//   - campaign Store.Put / Store.Compact — the content-addressed store's
//     durability contract.
//
// Discarding means an expression statement, a defer, or a go statement.
// An explicit blank assignment (`_ = w.Flush()`) documents intent and is
// accepted.
var MustCheck = &Analyzer{
	Name: "mustcheck",
	Doc:  "forbid discarding results of Engine.After, Flush, and campaign Store.Put/Compact",
	Run:  runMustCheck,
}

func runMustCheck(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, kind = n.Call, "deferred "
			case *ast.GoStmt:
				call, kind = n.Call, "spawned "
			}
			if call == nil {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil {
				return true
			}
			if why := mustCheckTarget(fn); why != "" {
				out = append(out, Finding{
					Pos:     call.Pos(),
					Message: fmt.Sprintf("%sresult of %s discarded; %s (check it, or assign to _ explicitly)", kind, recvTypeName(fn)+"."+fn.Name(), why),
				})
			}
			return true
		})
	}
	return out
}

// mustCheckTarget reports why fn's results must not be discarded (""
// when fn is not a tracked call).
func mustCheckTarget(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return ""
	}
	switch {
	case isMethod(fn, simPath, "Engine", "After"):
		return "an invalid delay silently drops the timer"
	case fn.Name() == "Flush" && recvTypeName(fn) != "":
		return "a failed flush loses buffered output"
	case isMethod(fn, campaignPath, "Store", "Put"),
		isMethod(fn, campaignPath, "Store", "Compact"):
		return "a failed store write breaks campaign resume"
	}
	return ""
}
