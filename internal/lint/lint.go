package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //syncsim:allowlist directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports findings for the pass's package.
	Run func(*Pass) []Finding
}

// Finding is an analyzer's raw report before directive filtering.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package through the analyzers.
type Pass struct {
	Loader *Loader
	Pkg    *Package
	// Det reports whether the package is in the deterministic core (see
	// DeterministicPaths), the scope of the detrand analyzer.
	Det bool

	parents map[ast.Node]ast.Node
	hot     []hotFunc
}

// hotFunc is a function annotated //syncsim:hotpath.
type hotFunc struct {
	decl *ast.FuncDecl
	file *ast.File
}

// DeterministicPaths lists the module-relative package paths (each
// covering its subtree) whose code must be bit-exact across serial,
// sharded, and replayed execution. internal/rt is deliberately absent —
// it is the wall-clock runtime — as are the campaign/fabric layers,
// which orchestrate whole runs and may use real time and crypto-seeded
// jitter (see internal/fabric.NewWorker).
var DeterministicPaths = []string{
	"internal/sim",
	"internal/network",
	"internal/node",
	"internal/core",
	"internal/adversary",
	"internal/baseline",
	"internal/lockstep",
	"internal/harness",
	"internal/metrics",
	"internal/clock",
	"internal/probe",
	"internal/tracelake",
}

// Deterministic reports whether the import path (under module path mod)
// is inside the deterministic core.
func Deterministic(mod, path string) bool {
	rel, ok := strings.CutPrefix(path, mod+"/")
	if !ok {
		return false
	}
	for _, p := range DeterministicPaths {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers is the full suite in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, ProbeGuard, MustCheck, HotPath}
}

// analyzerNames returns the set of valid analyzer names for directive
// validation.
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// directive is one parsed //syncsim:allowlist comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	// funcScope, when non-nil, is the line range of the annotated
	// function: the directive sits in a function's doc comment and
	// suppresses every matching finding in its body.
	funcScope *[2]int
	// fileScope marks a directive placed above the package clause: it
	// suppresses every matching finding in the file. The coarse scope
	// exists for files whose whole point trips one rule — the tracelake
	// decode pool's worker goroutines against detrand — so the reason
	// is stated once instead of per line.
	fileScope bool
	used      bool
}

const (
	allowlistPrefix = "syncsim:allowlist"
	hotpathPrefix   = "syncsim:hotpath"
)

// parseDirectives collects the allowlist directives of one file and
// resolves function-scoped ones against the file's declarations.
// Malformed directives become diagnostics immediately.
func parseDirectives(fset *token.FileSet, f *ast.File, valid map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, allowlistPrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "directive",
					Message:  "malformed //syncsim:allowlist: want \"//syncsim:allowlist <analyzer> <reason>\"",
				})
				continue
			}
			if !valid[fields[0]] {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "directive",
					Message:  fmt.Sprintf("//syncsim:allowlist names unknown analyzer %q", fields[0]),
				})
				continue
			}
			dirs = append(dirs, &directive{
				pos:      pos,
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	// A directive above the package clause suppresses across the whole
	// file.
	pkgLine := fset.Position(f.Package).Line
	for _, d := range dirs {
		if d.pos.Line < pkgLine {
			d.fileScope = true
		}
	}
	// A directive inside a function's doc comment suppresses across the
	// whole body.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		start := fset.Position(fd.Doc.Pos()).Line
		end := fset.Position(fd.Body.End()).Line
		for _, d := range dirs {
			if d.pos.Line >= start && d.pos.Line < fset.Position(fd.Body.Pos()).Line {
				d.funcScope = &[2]int{start, end}
			}
		}
	}
	return dirs, diags
}

// suppresses reports whether directive d covers a finding from analyzer
// at line. Statement scope is the directive's own line or the line
// directly below it; function scope covers the annotated body; file
// scope (directive above the package clause) covers the whole file —
// the caller has already matched the filename.
func (d *directive) suppresses(analyzer string, line int) bool {
	if d.analyzer != analyzer {
		return false
	}
	if d.fileScope {
		return true
	}
	if d.funcScope != nil {
		return line >= d.funcScope[0] && line <= d.funcScope[1]
	}
	return line == d.pos.Line || line == d.pos.Line+1
}

// hasHotpathDirective reports whether a //syncsim:hotpath line appears
// in the given comment group.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == hotpathPrefix {
			return true
		}
	}
	return false
}

// HotRange is a //syncsim:hotpath function's source extent, consumed by
// scripts/check_hotpath_allocs.sh to map escape-analysis output back to
// annotated bodies.
type HotRange struct {
	File       string // module-root-relative path
	Start, End int    // 1-based line range including the declaration
	Name       string // (*Recv).Name or Name
}

// newPass builds the shared analysis state for one package: the parent
// map every ancestor walk uses and the hotpath function set.
func newPass(l *Loader, pkg *Package) *Pass {
	p := &Pass{
		Loader:  l,
		Pkg:     pkg,
		Det:     Deterministic(l.ModPath, pkg.Path),
		parents: make(map[ast.Node]ast.Node),
	}
	for _, f := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if len(stack) > 0 {
				p.parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasHotpathDirective(fd.Doc) && fd.Body != nil {
				p.hot = append(p.hot, hotFunc{decl: fd, file: f})
			}
		}
	}
	return p
}

// parent returns the syntactic parent of n (nil at file scope).
func (p *Pass) parent(n ast.Node) ast.Node { return p.parents[n] }

// enclosingFunc returns the FuncDecl whose body contains n, walking
// through any function literals.
func (p *Pass) enclosingFunc(n ast.Node) *ast.FuncDecl {
	for cur := p.parent(n); cur != nil; cur = p.parent(cur) {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// funcName renders a FuncDecl's name as (*Recv).Name or Name.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// HotRanges returns the //syncsim:hotpath function extents of pkgs,
// with file paths relative to the module root.
func HotRanges(l *Loader, pkgs []*Package) []HotRange {
	var out []HotRange
	for _, pkg := range pkgs {
		pass := newPass(l, pkg)
		for _, h := range pass.hot {
			start := l.Fset.Position(h.decl.Pos())
			end := l.Fset.Position(h.decl.End())
			file := start.Filename
			if rel, err := relToModRoot(l.ModRoot, file); err == nil {
				file = rel
			}
			out = append(out, HotRange{File: file, Start: start.Line, End: end.Line, Name: funcName(h.decl)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Start < out[j].Start
	})
	return out
}

func relToModRoot(root, file string) (string, error) {
	rel, err := filepathRel(root, file)
	if err != nil {
		return "", err
	}
	return rel, nil
}

// RunPackage runs the full suite over one package, applies allowlist
// directives, and reports unused directives so every suppression stays
// tied to a live finding.
func RunPackage(l *Loader, pkg *Package) []Diagnostic {
	pass := newPass(l, pkg)
	valid := analyzerNames()

	var dirs []*directive
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ds, dd := parseDirectives(l.Fset, f, valid)
		dirs = append(dirs, ds...)
		diags = append(diags, dd...)
	}

	for _, a := range Analyzers() {
		for _, f := range a.Run(pass) {
			pos := l.Fset.Position(f.Pos)
			suppressed := false
			for _, d := range dirs {
				if d.pos.Filename == pos.Filename && d.suppresses(a.Name, pos.Line) {
					d.used = true
					suppressed = true
				}
			}
			if !suppressed {
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: a.Name, Message: f.Message})
			}
		}
	}
	for _, d := range dirs {
		if !d.used {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  fmt.Sprintf("//syncsim:allowlist %s suppresses no finding; delete it", d.analyzer),
			})
		}
	}
	sortDiags(diags)
	return diags
}

// Run loads the packages named by patterns and runs the suite over each,
// returning all diagnostics with positions relative to the module root.
func Run(l *Loader, patterns []string) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, RunPackage(l, pkg)...)
	}
	for i := range diags {
		if rel, err := filepathRel(l.ModRoot, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	sortDiags(diags)
	return diags, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
