package lint

import (
	"go/ast"
	"go/types"
)

// ProbeGuard enforces the one-branch cost of an unobserved run: every
// (*probe.Bus).Emit call site must be dominated by a Bus.Active (or
// AnyActive) guard, so that when nobody listens the hot path pays an
// array-length test and skips building the Event entirely. Two guard
// idioms are recognized:
//
//	if bus.Active(probe.TypePulse) { bus.Emit(...) }         // direct,
//	                                  // including `if b := ...; b.Active`
//	sentActive := nt.probes.Active(probe.TypeMessageSent)    // hoisted
//	...
//	if sentActive { nt.probes.Emit(...) }
//
// Emission sites that are unconditional by design — trace replay, the
// sharded coordinator's ordered merge of already-buffered events — carry
// a //syncsim:allowlist probeguard directive instead, keeping the
// exceptions auditable.
var ProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc:  "require Bus.Emit call sites to be dominated by a Bus.Active guard",
	Run:  runProbeGuard,
}

func runProbeGuard(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if !isMethod(fn, probeBusPath, "Bus", "Emit") {
				return true
			}
			if !p.emitGuarded(call) {
				out = append(out, Finding{
					Pos:     call.Pos(),
					Message: "Bus.Emit not dominated by a Bus.Active guard; unobserved runs must pay one branch, not an Event build",
				})
			}
			return true
		})
	}
	return out
}

// emitGuarded walks the ancestors of an Emit call looking for an
// enclosing if statement (entered through its then-branch) whose
// condition either calls Active/AnyActive directly or tests a boolean
// local that was assigned from such a call in the same function — the
// hoisted-guard pattern used by batched delivery loops.
func (p *Pass) emitGuarded(call *ast.CallExpr) bool {
	fd := p.enclosingFunc(call)
	var prev ast.Node = call
	for cur := p.parent(call); cur != nil; prev, cur = cur, p.parent(cur) {
		ifStmt, ok := cur.(*ast.IfStmt)
		if !ok || ifStmt.Body != prev {
			continue
		}
		if p.containsActiveCall(ifStmt.Cond) {
			return true
		}
		if fd != nil && p.condHoistedFromActive(fd, ifStmt.Cond) {
			return true
		}
	}
	return false
}

// condHoistedFromActive reports whether cond references a boolean
// variable assigned from a Bus.Active/AnyActive call somewhere in fd's
// body (assignment or var declaration). The guard bool may be captured
// by a closure; fd is the outermost function declaration, so captures
// resolve too.
func (p *Pass) condHoistedFromActive(fd *ast.FuncDecl, cond ast.Expr) bool {
	for _, id := range exprIdents(cond) {
		obj := p.Pkg.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		if basic, ok := v.Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.Bool {
			continue
		}
		if p.assignedFromActive(fd, obj) {
			return true
		}
	}
	return false
}

// assignedFromActive scans fd's body for an assignment or declaration
// binding obj to an expression containing an Active call.
func (p *Pass) assignedFromActive(fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				lobj := p.Pkg.Info.Defs[id]
				if lobj == nil {
					lobj = p.Pkg.Info.Uses[id]
				}
				if lobj != obj {
					continue
				}
				// Single-value or parallel assignment: check the
				// matching RHS when positions pair up, else any RHS.
				if len(n.Rhs) == len(n.Lhs) {
					if p.containsActiveCall(n.Rhs[i]) {
						found = true
					}
				} else {
					for _, rhs := range n.Rhs {
						if p.containsActiveCall(rhs) {
							found = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if p.Pkg.Info.Defs[id] != obj {
					continue
				}
				if len(n.Values) > i && p.containsActiveCall(n.Values[i]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
