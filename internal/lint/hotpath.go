package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces allocation-free bodies for functions annotated with
// a //syncsim:hotpath directive — the pulse-round inner loop, where the
// 0 allocs/op contract is CI-gated at a handful of benchmark points but
// must hold on every branch. The static checks flag the constructs that
// reliably induce heap allocation:
//
//   - any fmt call (formatting boxes every operand);
//   - explicit or implicit conversion of a concrete value to an
//     interface (boxing);
//   - function literals (closures capture by reference and escape);
//   - string concatenation at runtime;
//   - append that grows into a destination other than its own source
//     (self-append `x = append(x, ...)` reuses amortized capacity and is
//     allowed — the dynamic side gates it);
//   - make and new.
//
// scripts/check_hotpath_allocs.sh backs this up with the compiler's
// escape analysis: any "escapes to heap" diagnostic inside an annotated
// body fails the build, catching whatever the syntax-level list misses.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid alloc-inducing constructs in //syncsim:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) []Finding {
	var out []Finding
	for _, h := range p.hot {
		out = append(out, checkHotBody(p, h.decl)...)
	}
	return out
}

func checkHotBody(p *Pass, fd *ast.FuncDecl) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:     pos,
			Message: fmt.Sprintf("//syncsim:hotpath %s: ", funcName(fd)) + fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates (closure capture escapes)")
			return false // don't descend: the closure body is off the hot path
		case *ast.CallExpr:
			checkHotCall(p, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isRuntimeString(p, n) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(p.Pkg.Info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
	return out
}

func checkHotCall(p *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Explicit conversion: T(x) with T an interface type.
	if target, ok := p.isConversion(call); ok {
		if isIface(target) && len(call.Args) == 1 && !isIface(p.Pkg.Info.TypeOf(call.Args[0])) {
			report(call.Pos(), "conversion to interface %s allocates (boxing)", types.TypeString(target, types.RelativeTo(p.Pkg.Types)))
		}
		return
	}
	// Builtins.
	switch {
	case p.isBuiltin(call, "append"):
		if !isSelfAppend(p, call) {
			report(call.Pos(), "append into a different destination allocates a grown backing array; pre-size or reuse the source slice")
		}
		return
	case p.isBuiltin(call, "make"):
		report(call.Pos(), "make allocates")
		return
	case p.isBuiltin(call, "new"):
		report(call.Pos(), "new allocates")
		return
	}
	if fn := p.calleeFunc(call); fn != nil && funcPkgPath(fn) == "fmt" {
		report(call.Pos(), "call to fmt.%s allocates", fn.Name())
		return
	}
	// Implicit interface conversions at argument positions (boxing).
	sig, ok := p.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := p.Pkg.Info.TypeOf(arg)
		tv := p.Pkg.Info.Types[arg]
		if isIface(pt) && !isIface(at) && at != nil && !tv.IsNil() && !pointerShaped(at) {
			report(arg.Pos(), "implicit conversion of %s to interface %s allocates (boxing)",
				types.TypeString(at, types.RelativeTo(p.Pkg.Types)),
				types.TypeString(pt, types.RelativeTo(p.Pkg.Types)))
		}
	}
}

// pointerShaped reports whether values of t fit an interface data word
// without boxing: pointers, channels, maps, funcs, and unsafe.Pointer
// are stored directly, so converting them to an interface does not
// allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isIface reports whether t's underlying type is a non-type-param
// interface.
func isIface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isRuntimeString reports whether the expression is a string add that
// survives to run time (constant folding makes compile-time concats
// free).
func isRuntimeString(p *Pass, expr *ast.BinaryExpr) bool {
	tv := p.Pkg.Info.Types[expr]
	return isStringType(tv.Type) && tv.Value == nil
}

// isSelfAppend recognizes `x = append(x, ...)` (including sliced reuse
// like `x = append(x[:0], ...)` and element targets like
// `b[i] = append(b[i], ...)`): growth amortizes into capacity the
// steady state reuses, which the allocation benchmarks gate dynamically.
func isSelfAppend(p *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	assign, ok := p.parent(call).(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return false
	}
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == call {
			src := ast.Unparen(call.Args[0])
			if s, ok := src.(*ast.SliceExpr); ok {
				src = s.X
			}
			return types.ExprString(ast.Unparen(assign.Lhs[i])) == types.ExprString(src)
		}
	}
	return false
}
