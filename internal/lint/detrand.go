package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DetRand enforces the determinism contract inside the deterministic
// core (DeterministicPaths): results must be a pure function of the
// spec, bit-exact across serial, sharded, and replayed execution. Four
// ways code silently breaks that are caught here:
//
//   - wall-clock reads (time.Now and friends) make results depend on
//     when a run happens;
//   - the global math/rand source is shared process state: draw order
//     depends on what else ran, and shards cannot reproduce it
//     (per-entity streams seeded from the spec are the repo idiom, see
//     sim.Engine.RandFor and the PR 7 per-sender-RNG migration);
//   - goroutines outside the sim.Shards coordinator introduce scheduler
//     interleaving into what must be a single logical thread;
//   - Go map iteration order is randomized per run, so a map-range body
//     that schedules events, emits probes, or appends to ordered output
//     injects that randomness into the event stream. Collect the keys,
//     sort them, and iterate the sorted slice (append-then-sort inside
//     the loop is recognized as the first half of that idiom).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock, global rand, stray goroutines, and ordered map iteration in deterministic packages",
	Run:  runDetRand,
}

// wallClockFuncs are the time package entry points that read or depend
// on the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions that draw from the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

func runDetRand(p *Pass) []Finding {
	if !p.Det {
		return nil
	}
	var out []Finding
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				out = append(out, checkDetSelector(p, n)...)
			case *ast.GoStmt:
				if !goStmtAllowed(p, n) {
					out = append(out, Finding{
						Pos:     n.Pos(),
						Message: "goroutine spawned outside the sim.Shards coordinator; deterministic code runs on one logical thread",
					})
				}
			case *ast.RangeStmt:
				out = append(out, checkMapRange(p, n)...)
			}
			return true
		})
	}
	return out
}

// checkDetSelector flags wall-clock and global-rand references at their
// use sites.
func checkDetSelector(p *Pass, sel *ast.SelectorExpr) []Finding {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || recvTypeName(fn) != "" {
		return nil
	}
	switch funcPkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return []Finding{{
				Pos:     sel.Pos(),
				Message: fmt.Sprintf("wall-clock read time.%s in deterministic package; use engine virtual time (sim.Engine.Now) or move the code out of the deterministic core", fn.Name()),
			}}
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			return []Finding{{
				Pos:     sel.Pos(),
				Message: fmt.Sprintf("global math/rand source (rand.%s) in deterministic package; draw from a spec-seeded *rand.Rand stream (sim.Engine.RandFor, network per-sender streams)", fn.Name()),
			}}
		}
	}
	return nil
}

// goStmtAllowed permits goroutine spawns only inside the parallel
// coordinator itself: methods of sim.Shards and the functions that
// construct it (result type *sim.Shards).
func goStmtAllowed(p *Pass, g *ast.GoStmt) bool {
	fd := p.enclosingFunc(g)
	if fd == nil {
		return false
	}
	fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	if isMethod(fn, simPath, "Shards", fn.Name()) {
		return true
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Name() == "Shards" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == simPath {
			return true
		}
	}
	return false
}

// engineScheduleMethods are sim.Engine methods that enqueue events: a
// map-range body calling one injects map order into the event sequence.
var engineScheduleMethods = map[string]bool{
	"At": true, "AtLane": true, "AtMsg": true, "After": true,
	"MustAt": true, "MustAtLane": true, "MustAtMsg": true,
	"MustAfter": true, "ScheduleMsg": true, "TakeKey": true,
}

// netSendMethods are network.Net entry points that put messages on the
// wire.
var netSendMethods = map[string]bool{"Send": true, "Broadcast": true}

// checkMapRange flags range statements over maps whose body schedules
// events, emits probes, or appends to ordered output without a
// subsequent sort.
func checkMapRange(p *Pass, rng *ast.RangeStmt) []Finding {
	t := p.Pkg.Info.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	var out []Finding
	report := func(pos token.Pos, what string) {
		out = append(out, Finding{
			Pos:     rng.Pos(),
			Message: fmt.Sprintf("map iteration order reaches %s; collect and sort the keys, then iterate the sorted slice", what),
		})
	}
	seen := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if seen {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p.isBuiltin(call, "append") {
			if !appendTargetSortedLater(p, rng, call) {
				report(call.Pos(), "ordered output (append inside the loop, never sorted)")
				seen = true
			}
			return true
		}
		fn := p.calleeFunc(call)
		switch {
		case isMethod(fn, probeBusPath, "Bus", "Emit"):
			report(call.Pos(), "probe emission (Bus.Emit)")
			seen = true
		case fn != nil && funcPkgPath(fn) == simPath && recvTypeName(fn) == "Engine" && engineScheduleMethods[fn.Name()]:
			report(call.Pos(), "event scheduling (Engine."+fn.Name()+")")
			seen = true
		case fn != nil && funcPkgPath(fn) == networkPath && recvTypeName(fn) == "Net" && netSendMethods[fn.Name()]:
			report(call.Pos(), "message transmission (Net."+fn.Name()+")")
			seen = true
		}
		return true
	})
	return out
}

// appendTargetSortedLater recognizes the first half of the sorted-keys
// idiom: appending map keys to a slice inside the range is fine when the
// slice is sorted after the loop (sort.* or slices.Sort* on the same
// variable, positioned after the range statement, in the same function).
func appendTargetSortedLater(p *Pass, rng *ast.RangeStmt, call *ast.CallExpr) bool {
	assign, ok := p.parent(call).(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 {
		return false
	}
	obj := rootObj(p, assign.Lhs[0])
	if obj == nil {
		return false
	}
	fd := p.enclosingFunc(rng)
	if fd == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= rng.End() {
			return true
		}
		fn := p.calleeFunc(c)
		if fn == nil {
			return true
		}
		pkg := funcPkgPath(fn)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range c.Args {
			for _, id := range exprIdents(arg) {
				if p.Pkg.Info.Uses[id] == obj {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}

// rootObj resolves the base identifier of an lvalue chain (x, x[i],
// x.f, *x) to its object.
func rootObj(p *Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[e]; obj != nil {
				return obj
			}
			return p.Pkg.Info.Defs[e]
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
