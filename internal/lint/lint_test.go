package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"optsync/internal/lint"
)

// The fixture tests pin each analyzer's behavior against known-bad and
// known-good code under internal/lint/testdata. Expectations live next
// to the code they describe as `// want <analyzer> "<substring>"`
// comments; a fixture run must produce exactly the wanted diagnostics —
// same file, same line, matching analyzer and message — and nothing
// else, so both false negatives and false positives fail loudly.

// moduleRoot walks up from the test's working directory to the
// directory containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

// want is one expected diagnostic, anchored to the line its comment
// sits on.
type want struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

// parseWants scans a fixture directory's Go files for want comments.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, want{file: e.Name(), line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

// runFixture loads one testdata package under a synthetic import path
// (which controls analyzer scoping) and runs the full suite over it.
func runFixture(t *testing.T, fixture, asPath string) []lint.Diagnostic {
	t.Helper()
	root := moduleRoot(t)
	ld, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(filepath.Join(root, "internal", "lint", "testdata", fixture), asPath)
	if err != nil {
		t.Fatal(err)
	}
	return lint.RunPackage(ld, pkg)
}

// checkWants matches diagnostics against want comments one-to-one.
func checkWants(t *testing.T, diags []lint.Diagnostic, wants []want) {
	t.Helper()
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line &&
				d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic: %s:%d: %s: ...%q...", w.file, w.line, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestDetRandFixture(t *testing.T) {
	// Loaded under a path inside internal/sim so the deterministic-core
	// scoping applies.
	diags := runFixture(t, "detrand", "optsync/internal/sim/lintfixture")
	checkWants(t, diags, parseWants(t, filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "detrand")))
}

func TestDetRandScopedToDeterministicCore(t *testing.T) {
	// The same fixture under a neutral path: every detrand want must go
	// silent (the fixture's probe emissions are guarded, so the other
	// analyzers are silent too).
	diags := runFixture(t, "detrand", "optsync/lintfixture")
	for _, d := range diags {
		t.Errorf("diagnostic outside the deterministic core: %s", d)
	}
}

func TestDetRandFileScopedDirective(t *testing.T) {
	// A directive above the package clause suppresses the whole file
	// (pool.go's two goroutines go silent) but is still held to the
	// unused rule (unused.go's directive is reported). Loaded under a
	// deterministic-core path so detrand is in scope.
	diags := runFixture(t, "detrandpool", "optsync/internal/sim/lintfixturepool")
	checkWants(t, diags, parseWants(t, filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "detrandpool")))
}

func TestProbeGuardFixture(t *testing.T) {
	diags := runFixture(t, "probeguard", "optsync/lintfixtures/probeguard")
	checkWants(t, diags, parseWants(t, filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "probeguard")))
}

func TestMustCheckFixture(t *testing.T) {
	diags := runFixture(t, "mustcheck", "optsync/lintfixtures/mustcheck")
	checkWants(t, diags, parseWants(t, filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "mustcheck")))
}

func TestHotPathFixture(t *testing.T) {
	diags := runFixture(t, "hotpath", "optsync/lintfixtures/hotpath")
	checkWants(t, diags, parseWants(t, filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "hotpath")))
}

// TestRepoLintClean is the self-test the CI lint job relies on: the
// committed tree must produce zero diagnostics, so any regression —
// a deleted Bus.Active guard, a stray time.Now in internal/sim — fails
// here as well as in the standalone syncsimlint run.
func TestRepoLintClean(t *testing.T) {
	ld, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(ld, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestHotRangesFloor pins the //syncsim:hotpath coverage contract that
// scripts/check_hotpath_allocs.sh enforces dynamically: at least five
// annotated functions across internal/sim and internal/network.
func TestHotRangesFloor(t *testing.T) {
	ld, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	ranges := lint.HotRanges(ld, pkgs)
	core := 0
	for _, r := range ranges {
		file := filepath.ToSlash(r.File)
		if strings.HasPrefix(file, "internal/sim/") || strings.HasPrefix(file, "internal/network/") {
			core++
		}
		if r.End <= r.Start {
			t.Errorf("degenerate range for %s: %d-%d", r.Name, r.Start, r.End)
		}
	}
	if core < 5 {
		var list []string
		for _, r := range ranges {
			list = append(list, fmt.Sprintf("%s (%s:%d)", r.Name, r.File, r.Start))
		}
		t.Fatalf("want >= 5 hotpath functions in internal/sim + internal/network, got %d: %s",
			core, strings.Join(list, ", "))
	}
}
