package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

func filepathRel(root, file string) (string, error) {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(rel), nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether the call expression is a type conversion
// and, if so, returns the target type.
func (p *Pass) isConversion(call *ast.CallExpr) (types.Type, bool) {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// funcPkgPath returns the import path of fn's defining package ("" for
// universe-scope objects).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the name of fn's receiver's named type ("" for
// non-methods).
func recvTypeName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isMethod reports whether fn is the named method on the named type of
// the given package path.
func isMethod(fn *types.Func, pkgPath, typeName, method string) bool {
	return fn != nil && fn.Name() == method &&
		funcPkgPath(fn) == pkgPath && recvTypeName(fn) == typeName
}

// isPkgFunc reports whether fn is the named package-level function.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name &&
		funcPkgPath(fn) == pkgPath && recvTypeName(fn) == ""
}

// probeBusPath is the import path of the probe bus; detrand, probeguard,
// and hotpath all key on its types. Fixture packages under testdata
// import the real package, so analyzer behavior in tests matches the
// tree.
const probeBusPath = "optsync/internal/probe"

// simPath is the import path of the event engine.
const simPath = "optsync/internal/sim"

// networkPath is the import path of the simulated network.
const networkPath = "optsync/internal/network"

// campaignPath is the import path of the campaign store.
const campaignPath = "optsync/internal/campaign"

// containsActiveCall reports whether expr contains a call to
// (*probe.Bus).Active or (*probe.Bus).AnyActive.
func (p *Pass) containsActiveCall(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if isMethod(fn, probeBusPath, "Bus", "Active") || isMethod(fn, probeBusPath, "Bus", "AnyActive") {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprIdents collects the identifiers appearing in expr.
func exprIdents(expr ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}
