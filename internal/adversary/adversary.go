// Package adversary implements Byzantine strategies against the
// synchronization protocols. Faulty processes are ordinary node.Protocol
// implementations — the model's adversary is a single entity, so colluding
// strategies may share memory (signature pools, coordinated schedules)
// instead of using the network.
//
// The strategies:
//
//   - Silent: crash at boot (tests the liveness quorums).
//   - CrashAt: run a correct protocol, then fall silent at a chosen real
//     time (tests mid-run degradation).
//   - AuthRush: beyond-resilience attack on the authenticated algorithm.
//     With f_actual >= f_config+1 colluders, the faulty processes alone
//     assemble the f+1-signature quorum and fire rounds at an arbitrary
//     pace, destroying accuracy (though relay still preserves agreement)
//     — the observable that experiment T4 reports.
//   - PrimRush: the analogous attack on the primitive-based algorithm:
//     f_config+1 colluding readies trigger correct joins, completing the
//     2f+1 quorum without any correct clock being due.
//   - BiasedReporter: attack on averaging baselines. The faulty process
//     participates in the round structure but reports its clock shifted
//     by Bias (kept inside the victim's acceptance threshold), dragging
//     the cluster average each round — the accuracy-degradation attack
//     that separates CNV from the optimal-accuracy algorithms (T3).
package adversary

import (
	"sort"

	"optsync/internal/baseline"
	"optsync/internal/core"
	"optsync/internal/node"
)

// Silent never sends anything.
type Silent struct{}

var _ node.Protocol = Silent{}

// Start implements node.Protocol.
func (Silent) Start(node.Env) {}

// Deliver implements node.Protocol.
func (Silent) Deliver(node.Env, node.ID, node.Message) {}

// CrashAt runs Inner until real time At, then suppresses all of the node's
// output (timers keep firing but sends are dropped — the process is dead
// to the network).
type CrashAt struct {
	Inner node.Protocol
	At    float64
}

var _ node.Protocol = (*CrashAt)(nil)

// Start implements node.Protocol.
func (c *CrashAt) Start(env node.Env) { c.Inner.Start(&muzzledEnv{Env: env, at: c.At}) }

// Deliver implements node.Protocol.
func (c *CrashAt) Deliver(env node.Env, from node.ID, msg node.Message) {
	if env.RealTime() >= c.At {
		return // dead processes do not process input either
	}
	c.Inner.Deliver(&muzzledEnv{Env: env, at: c.At}, from, msg)
}

// muzzledEnv passes everything through until the deadline, then drops
// outbound traffic.
type muzzledEnv struct {
	node.Env
	at float64
}

func (m *muzzledEnv) Send(to node.ID, msg node.Message) {
	if m.Env.RealTime() >= m.at {
		return
	}
	m.Env.Send(to, msg)
}

func (m *muzzledEnv) Broadcast(msg node.Message) {
	if m.Env.RealTime() >= m.at {
		return
	}
	m.Env.Broadcast(msg)
}

// Collusion is the shared state of a coalition attacking the authenticated
// algorithm: a pool of round signatures contributed by the members.
type Collusion struct {
	members map[node.ID]node.Env
	order   []node.ID
}

// NewCollusion returns an empty coalition.
func NewCollusion() *Collusion {
	return &Collusion{members: make(map[node.ID]node.Env)}
}

func (c *Collusion) join(env node.Env) {
	if _, ok := c.members[env.ID()]; ok {
		return
	}
	c.members[env.ID()] = env
	c.order = append(c.order, env.ID())
	sort.Ints(c.order)
}

// Size returns the number of joined members.
func (c *Collusion) Size() int { return len(c.members) }

// evidence assembles round-k signatures from every joined member.
func (c *Collusion) evidence(round int) []core.SignedEntry {
	payload := core.RoundPayload(round)
	out := make([]core.SignedEntry, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, core.SignedEntry{Signer: id, Sig: c.members[id].Sign(payload)})
	}
	return out
}

// AuthRush is a coalition member attacking AuthProtocol. All members join
// the shared Collusion at boot; the member designated Leader broadcasts
// coalition evidence for rounds 1, 2, 3, ... every Interval of real time.
// If the coalition has at least f_config+1 members, correct processes
// accept each broadcast — rounds fire at the adversary's pace instead of
// the hardware clocks' pace.
type AuthRush struct {
	Coalition *Collusion
	Leader    bool
	// Interval is the real-time spacing of forged rounds.
	Interval float64
	// Rounds is how many rounds to forge.
	Rounds int
}

var _ node.Protocol = (*AuthRush)(nil)

// Start implements node.Protocol.
func (a *AuthRush) Start(env node.Env) {
	a.Coalition.join(env)
	if !a.Leader {
		return
	}
	for k := 1; k <= a.Rounds; k++ {
		k := k
		// Schedule on real time: the adversary is not bound to its own
		// hardware clock. (Faulty nodes' Env is still the vehicle for
		// scheduling; with perfect default clocks AtLogical is real time.)
		env.AtLogical(float64(k)*a.Interval, func() {
			env.Broadcast(core.RoundMessage(k, a.Coalition.evidence(k)))
		})
	}
}

// Deliver implements node.Protocol.
func (a *AuthRush) Deliver(node.Env, node.ID, node.Message) {}

// PrimRush attacks PrimitiveProtocol: every coalition member broadcasts
// ready(k) for rounds 1..Rounds at Interval spacing. With f_config+1
// members the join rule fires at every correct process, completing the
// 2f+1 quorum with no correct clock due.
type PrimRush struct {
	Interval float64
	Rounds   int
}

var _ node.Protocol = (*PrimRush)(nil)

// Start implements node.Protocol.
func (a *PrimRush) Start(env node.Env) {
	for k := 1; k <= a.Rounds; k++ {
		k := k
		env.AtLogical(float64(k)*a.Interval, func() {
			env.Broadcast(core.ReadyMessage(k))
		})
	}
}

// Deliver implements node.Protocol.
func (a *PrimRush) Deliver(node.Env, node.ID, node.Message) {}

// BiasedReporter attacks averaging baselines: it runs the full baseline
// protocol (so it keeps pace with the cluster, adjusting its own clock
// like everyone else) but every clock value it reports is shifted by Bias.
// Keeping |Bias| at or below the victim's acceptance threshold (CNV's
// Delta) makes the lie indistinguishable from a legitimate fast clock, so
// every correct average is dragged by about Bias/n per round, forever —
// a genuine rate error of f*Bias/(n*P), not a bounded phase shift.
type BiasedReporter struct {
	Inner *baseline.Protocol
	Bias  float64
}

var _ node.Protocol = (*BiasedReporter)(nil)

// Start implements node.Protocol.
func (b *BiasedReporter) Start(env node.Env) {
	b.Inner.Start(&biasedEnv{Env: env, bias: b.Bias})
}

// Deliver implements node.Protocol.
func (b *BiasedReporter) Deliver(env node.Env, from node.ID, msg node.Message) {
	b.Inner.Deliver(&biasedEnv{Env: env, bias: b.Bias}, from, msg)
}

// biasedEnv shifts outgoing clock reports.
type biasedEnv struct {
	node.Env
	bias float64
}

func (e *biasedEnv) Broadcast(msg node.Message) {
	if msg.Kind == baseline.KindClock {
		msg.Value += e.bias
	}
	e.Env.Broadcast(msg)
}

// SelectiveSigner realizes the Theta(d) worst case of the authenticated
// algorithm *within* resilience: the faulty processes sign every round
// early (legal — a signature only claims "my clock reached k*P") but send
// their signatures exclusively to Targets. Targets assemble the f+1 quorum
// the moment the first correct process signs; every other correct process
// lacks the faulty signatures and only accepts via the targets' relay — a
// full message delay later. The acceptance spread, and hence the skew, is
// driven to ~dmax even when the delay uncertainty u = dmax - dmin is tiny,
// matching the paper's skew bound being Theta(d) rather than Theta(u).
type SelectiveSigner struct {
	Cfg     core.Config
	Targets map[node.ID]bool
	Rounds  int
	// Lead is how much (in local clock units) before k*P the signature is
	// produced and sent, ensuring targets hold the faulty signatures
	// before any correct process signs.
	Lead float64
}

var _ node.Protocol = (*SelectiveSigner)(nil)

// Start implements node.Protocol.
func (s *SelectiveSigner) Start(env node.Env) {
	for k := 1; k <= s.Rounds; k++ {
		k := k
		env.AtLogical(float64(k)*s.Cfg.Period-s.Lead, func() {
			entry := core.SignedEntry{Signer: env.ID(), Sig: env.Sign(core.RoundPayload(k))}
			for to := 0; to < env.N(); to++ {
				if s.Targets[to] {
					env.Send(to, core.RoundMessage(k, []core.SignedEntry{entry}))
				}
			}
		})
	}
}

// Deliver implements node.Protocol.
func (s *SelectiveSigner) Deliver(node.Env, node.ID, node.Message) {}

// Equivocator attacks the authenticated algorithm *within* resilience: it
// signs rounds as early as allowed to different subsets at different times
// and replays old evidence, verifying that none of this breaks agreement
// (used by the robustness tests; a correct run should shrug it off).
type Equivocator struct {
	Cfg core.Config
	// TargetA receives evidence promptly, TargetB stale evidence later.
	TargetA, TargetB node.ID
	Rounds           int
}

var _ node.Protocol = (*Equivocator)(nil)

// Start implements node.Protocol.
func (e *Equivocator) Start(env node.Env) {
	for k := 1; k <= e.Rounds; k++ {
		k := k
		env.AtLogical(float64(k)*e.Cfg.Period, func() {
			// Sign the due round (legitimate) but send it selectively,
			// plus a replay of the previous round's own signature.
			own := core.SignedEntry{Signer: env.ID(), Sig: env.Sign(core.RoundPayload(k))}
			env.Send(e.TargetA, core.RoundMessage(k, []core.SignedEntry{own}))
			if k > 1 {
				stale := core.SignedEntry{Signer: env.ID(), Sig: env.Sign(core.RoundPayload(k - 1))}
				env.Send(e.TargetB, core.RoundMessage(k-1, []core.SignedEntry{stale}))
			}
		})
	}
}

// Deliver implements node.Protocol.
func (e *Equivocator) Deliver(node.Env, node.ID, node.Message) {}
