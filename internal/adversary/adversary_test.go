package adversary

import (
	"testing"

	"optsync/internal/baseline"
	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
)

func authCfg() core.Config {
	p := bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho: clock.Rho(1e-4), DMin: 0.002, DMax: 0.01,
		Period: 1, InitialSkew: 0.005,
	}.WithDefaults()
	return core.ConfigFromBounds(p)
}

func newCluster(n, f int, protos func(i int) node.Protocol) *node.Cluster {
	return node.NewCluster(node.Config{
		N: n, F: f, Seed: 3,
		Rho:       clock.Rho(1e-4),
		Delay:     network.Uniform{Min: 0.002, Max: 0.01},
		Protocols: protos,
	})
}

func TestSilentSendsNothing(t *testing.T) {
	c := newCluster(2, 0, func(i int) node.Protocol { return Silent{} })
	c.Start()
	c.Run(5)
	if s := c.Net.Stats(); s.Sent != 0 {
		t.Fatalf("Silent sent %d messages", s.Sent)
	}
}

func TestCrashAtStopsOutput(t *testing.T) {
	cfg := authCfg()
	c := newCluster(3, 1, func(i int) node.Protocol {
		if i == 0 {
			return &CrashAt{Inner: core.NewAuth(cfg), At: 2.5}
		}
		return core.NewAuth(cfg)
	})
	c.Start()
	c.Run(2.4)
	sentBefore := c.Net.Stats().BySender[0]
	if sentBefore == 0 {
		t.Fatal("crashing node never sent before the deadline")
	}
	c.Run(10)
	sentAfter := c.Net.Stats().BySender[0]
	if sentAfter != sentBefore {
		t.Fatalf("node sent %d messages after crashing", sentAfter-sentBefore)
	}
}

func TestCrashAtMuzzlesDirectSends(t *testing.T) {
	// A protocol that direct-Sends on every deliver; after the crash
	// deadline both input processing and output must stop.
	inner := &senderProto{}
	c := newCluster(2, 0, func(i int) node.Protocol {
		if i == 0 {
			return &CrashAt{Inner: inner, At: 1.0}
		}
		return Silent{}
	})
	c.Start()
	crashed := &CrashAt{Inner: inner, At: 0}
	// Before the deadline, Send passes through.
	env := c.Nodes[0]
	c.Run(0.5)
	before := c.Net.Stats().Sent
	c.Nodes[0].Protocol().(*CrashAt).Deliver(env, 1, network.Raw("poke"))
	if got := c.Net.Stats().Sent; got != before+1 {
		t.Fatalf("pre-crash deliver sent %d messages, want 1", got-before)
	}
	// After the deadline, both Deliver and Send are dead.
	c.Run(2)
	before = c.Net.Stats().Sent
	c.Nodes[0].Protocol().(*CrashAt).Deliver(env, 1, network.Raw("poke"))
	if got := c.Net.Stats().Sent; got != before {
		t.Fatal("post-crash deliver produced output")
	}
	crashed.Start(env) // deadline 0: Start's sends are muzzled too
	if got := c.Net.Stats().Sent; got != before {
		t.Fatal("post-crash start produced output")
	}
}

// senderProto sends a direct message on boot and on every delivery.
type senderProto struct{}

func (senderProto) Start(env node.Env) { env.Send((env.ID()+1)%env.N(), network.Raw("boot")) }
func (senderProto) Deliver(env node.Env, _ node.ID, _ node.Message) {
	env.Send((env.ID()+1)%env.N(), network.Raw("reply"))
}

func TestCollusionJoinIdempotent(t *testing.T) {
	col := NewCollusion()
	c := newCluster(2, 0, func(i int) node.Protocol { return Silent{} })
	c.Start()
	col.join(c.Nodes[0])
	col.join(c.Nodes[0]) // duplicate join is a no-op
	if col.Size() != 1 {
		t.Fatalf("Size = %d after duplicate join", col.Size())
	}
}

func TestCollusionEvidence(t *testing.T) {
	col := NewCollusion()
	c := newCluster(4, 1, func(i int) node.Protocol {
		if i >= 2 {
			return &AuthRush{Coalition: col, Leader: i == 2, Interval: 0.5, Rounds: 3}
		}
		return core.NewAuth(authCfg())
	})
	c.Start()
	c.Run(0.01)
	if col.Size() != 2 {
		t.Fatalf("coalition size = %d, want 2", col.Size())
	}
	ev := col.evidence(1)
	if len(ev) != 2 {
		t.Fatalf("evidence entries = %d", len(ev))
	}
	// Signatures must verify against the canonical payload.
	payload := core.RoundPayload(1)
	for _, e := range ev {
		if !c.Nodes[0].Verify(e.Signer, payload, e.Sig) {
			t.Fatalf("coalition signature by %d does not verify", e.Signer)
		}
	}
	// Deterministic signer order.
	if ev[0].Signer >= ev[1].Signer {
		t.Fatalf("evidence not sorted: %d, %d", ev[0].Signer, ev[1].Signer)
	}
}

func TestAuthRushWithinResilienceHarmless(t *testing.T) {
	// f_actual = f_config = 2 on n=5: coalition evidence carries only 2 < 3
	// signatures; correct processes must not accept rounds early.
	col := NewCollusion()
	cfg := authCfg()
	c := newCluster(5, 2, func(i int) node.Protocol {
		if i >= 3 {
			return &AuthRush{Coalition: col, Leader: i == 3, Interval: 0.1, Rounds: 50}
		}
		return core.NewAuth(cfg)
	})
	c.Start()
	c.Run(0.95) // before any correct clock reaches P
	if len(c.Pulses) != 0 {
		t.Fatalf("%d pulses before any correct clock was due", len(c.Pulses))
	}
}

func TestAuthRushBeyondResilienceForcesEarlyRounds(t *testing.T) {
	// f_actual = 3 > f_config = 2 on n=5: the coalition forges quorums.
	col := NewCollusion()
	cfg := authCfg()
	c := newCluster(5, 2, func(i int) node.Protocol {
		if i >= 2 {
			return &AuthRush{Coalition: col, Leader: i == 2, Interval: 0.1, Rounds: 50}
		}
		return core.NewAuth(cfg)
	})
	c.Start()
	c.Run(0.95)
	if len(c.Pulses) == 0 {
		t.Fatal("forged quorum did not trigger early acceptance")
	}
}

func TestPrimRushBeyondResilienceForcesEarlyRounds(t *testing.T) {
	p := bounds.Params{
		N: 7, F: 2, Variant: bounds.Primitive,
		Rho: clock.Rho(1e-4), DMin: 0.002, DMax: 0.01,
		Period: 1, InitialSkew: 0.005,
	}.WithDefaults()
	cfg := core.ConfigFromBounds(p)
	c := newCluster(7, 2, func(i int) node.Protocol {
		if i >= 4 { // 3 = f_config+1 rushers
			return &PrimRush{Interval: 0.1, Rounds: 50}
		}
		return core.NewPrimitive(cfg)
	})
	c.Start()
	c.Run(0.95)
	if len(c.Pulses) == 0 {
		t.Fatal("ready flood did not trigger early acceptance")
	}
}

func TestPrimRushWithinResilienceHarmless(t *testing.T) {
	p := bounds.Params{
		N: 7, F: 2, Variant: bounds.Primitive,
		Rho: clock.Rho(1e-4), DMin: 0.002, DMax: 0.01,
		Period: 1, InitialSkew: 0.005,
	}.WithDefaults()
	cfg := core.ConfigFromBounds(p)
	c := newCluster(7, 2, func(i int) node.Protocol {
		if i >= 5 { // only f_config = 2 rushers: below the join threshold
			return &PrimRush{Interval: 0.1, Rounds: 50}
		}
		return core.NewPrimitive(cfg)
	})
	c.Start()
	c.Run(0.95)
	if len(c.Pulses) != 0 {
		t.Fatalf("%d pulses before any correct clock was due", len(c.Pulses))
	}
}

func TestBiasedReporterShiftsOnlyClockMessages(t *testing.T) {
	bcfg := baseline.Config{Period: 1, Window: 0.1, DMin: 0.002, DMax: 0.01, F: 1}
	var captured []node.Message
	c := newCluster(3, 1, func(i int) node.Protocol {
		if i == 0 {
			return &BiasedReporter{Inner: baseline.NewFTM(bcfg), Bias: 0.5}
		}
		return collectProto{&captured}
	})
	c.Start()
	c.Run(1.2) // past the first broadcast at logical 1.0
	var seen bool
	for _, m := range captured {
		if m.Kind == baseline.KindClock {
			seen = true
			// Value was ~1.0 at send; bias pushes it to ~1.5.
			if m.Value < 1.4 || m.Value > 1.6 {
				t.Fatalf("biased value = %v, want ~1.5", m.Value)
			}
		}
	}
	if !seen {
		t.Fatal("no ClockMessage captured")
	}
}

type collectProto struct{ sink *[]node.Message }

func (collectProto) Start(node.Env) {}
func (c collectProto) Deliver(_ node.Env, _ node.ID, m node.Message) {
	*c.sink = append(*c.sink, m)
}

func TestSelectiveSignerForcesRelayPathSkew(t *testing.T) {
	// n=5, f=2 selective signers serving only node 0: nodes 1, 2 must wait
	// for node 0's relay, one full message delay behind. Acceptance spread
	// approaches dmax even though delays are nearly uniform.
	const dmax = 0.05
	p := bounds.Params{
		N: 5, F: 2, Variant: bounds.Auth,
		Rho: clock.Rho(1e-4), DMin: dmax * 0.9, DMax: dmax,
		Period: 1, InitialSkew: 0.001,
	}.WithDefaults()
	cfg := core.ConfigFromBounds(p)
	c := node.NewCluster(node.Config{
		N: 5, F: 2, Seed: 8,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Protocols: func(i int) node.Protocol {
			if i >= 3 {
				return &SelectiveSigner{Cfg: cfg, Targets: map[node.ID]bool{0: true}, Rounds: 10, Lead: 0.25}
			}
			return core.NewAuth(cfg)
		},
	})
	c.Start()
	c.Run(8)
	first := make(map[int]float64)
	last := make(map[int]float64)
	for _, rec := range c.Pulses {
		if rec.Node >= 3 {
			continue
		}
		if v, ok := first[rec.Round]; !ok || rec.Real < v {
			first[rec.Round] = rec.Real
		}
		if v, ok := last[rec.Round]; !ok || rec.Real > v {
			last[rec.Round] = rec.Real
		}
	}
	if len(first) < 5 {
		t.Fatalf("only %d rounds completed", len(first))
	}
	var maxSpread float64
	for k := range first {
		if s := last[k] - first[k]; s > maxSpread {
			maxSpread = s
		}
	}
	// Relay path: spread must be near a full dmax (far above u = 0.005)
	// yet within the beta = dmax bound.
	if maxSpread < dmax*0.8 {
		t.Fatalf("spread %v, want ~dmax %v (relay path not exercised)", maxSpread, dmax)
	}
	if maxSpread > dmax+1e-9 {
		t.Fatalf("spread %v exceeds beta %v", maxSpread, dmax)
	}
}

func TestEquivocatorDoesNotBreakAgreement(t *testing.T) {
	cfg := authCfg()
	c := newCluster(5, 2, func(i int) node.Protocol {
		if i >= 3 {
			return &Equivocator{Cfg: cfg, TargetA: 0, TargetB: 1, Rounds: 10}
		}
		return core.NewAuth(cfg)
	})
	c.Start()
	c.Run(10)
	ids := []node.ID{0, 1, 2}
	if skew := c.Skew(ids); skew > 0.03 {
		t.Fatalf("equivocation broke agreement: skew %v", skew)
	}
	if len(c.Pulses) == 0 {
		t.Fatal("no liveness under equivocation")
	}
}
