package probe

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// traceTestEvents builds a representative stream: every type, awkward
// floats (shortest-round-trip stress), negative ids.
func traceTestEvents() []Event {
	rng := rand.New(rand.NewSource(3))
	evs := []Event{
		{Type: TypeMessageSent, Kind: 7, From: 0, To: 3, Round: 2, T: 0.1, Value: 0.1071234567890123},
		{Type: TypeMessageDelivered, Kind: 7, From: 0, To: 3, Round: 2, T: 0.1071234567890123},
		{Type: TypeMessageDropPolicy, Kind: 7, From: 5, To: 6, Round: 2, T: 0.2, Value: -1},
		{Type: TypeMessageDropOffline, Kind: 7, From: 1, To: 4, Round: 3, T: 0.3},
		{Type: TypeMessageDropLink, Kind: 7, From: 2, To: 0, Round: 3, T: 0.4, Value: -1},
		{Type: TypePulse, From: 1, Round: 4, T: 4.000000000000001, Value: 4.25},
		{Type: TypeResync, From: 1, T: 4.01, Value: 4.25, Aux: 4.249998},
		{Type: TypeNodeBoot, From: 6, T: 7.25},
		{Type: TypePartitionCut, From: -1, To: 3, T: 10},
		{Type: TypePartitionHeal, From: -1, To: 3, T: 20},
		{Type: TypeSkewSample, From: -1, To: -1, Round: 7, T: 1.05, Value: 1.0 / 3.0},
	}
	for i := 0; i < 200; i++ {
		evs = append(evs, Event{
			Type: TypeSkewSample, From: -1, To: -1, Round: 7,
			T: rng.Float64() * 30, Value: rng.Float64() * 0.01,
		})
	}
	return evs
}

func roundTrip(t *testing.T, format Format) {
	t.Helper()
	events := traceTestEvents()
	var buf bytes.Buffer
	w := NewWriter(&buf, format)
	for _, ev := range events {
		w.OnEvent(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != uint64(len(events)) {
		t.Fatalf("Events = %d, want %d", w.Events(), len(events))
	}

	var got []Event
	if err := ReadTrace(bytes.NewReader(buf.Bytes()), func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, wrote %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d drifted:\n got  %+v\n want %+v", i, got[i], events[i])
		}
	}
}

func TestTraceRoundTripJSONL(t *testing.T)  { roundTrip(t, FormatJSONL) }
func TestTraceRoundTripBinary(t *testing.T) { roundTrip(t, FormatBinary) }

// TestReplayReproducesAggregates is the replay contract in miniature: a
// recorded stream fed through fresh collectors yields bit-identical
// aggregates in both formats.
func TestReplayReproducesAggregates(t *testing.T) {
	events := traceTestEvents()
	live := []Collector{NewSkewStats(), NewSpreadStats(), NewMsgStats(), NewReintegrationWindows(), NewSeries()}
	var liveBus Bus
	for _, c := range live {
		liveBus.AttachCollector(c)
	}

	for _, format := range []Format{FormatJSONL, FormatBinary} {
		var buf bytes.Buffer
		w := NewWriter(&buf, format)
		for _, ev := range events {
			w.OnEvent(ev)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if format == FormatJSONL {
			for _, ev := range events {
				liveBus.Emit(ev)
			}
		}

		replayed := []Collector{NewSkewStats(), NewSpreadStats(), NewMsgStats(), NewReintegrationWindows(), NewSeries()}
		probes := make([]Probe, len(replayed))
		for i, c := range replayed {
			probes[i] = c
		}
		n, err := Replay(bytes.NewReader(buf.Bytes()), probes...)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(events) {
			t.Fatalf("replayed %d events, want %d", n, len(events))
		}
		for i := range live {
			a, b := live[i].Aggregate(), replayed[i].Aggregate()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("format %v collector %s: live %+v != replay %+v",
					format, live[i].Name(), a, b)
			}
		}
	}
}

func TestReadTraceEmpty(t *testing.T) {
	if err := ReadTrace(strings.NewReader(""), func(Event) error {
		t.Fatal("callback on empty trace")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceTruncatedBinary(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatBinary)
	w.OnEvent(Event{Type: TypePulse, T: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5] // cut mid-frame
	err := ReadTrace(bytes.NewReader(data), func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation error", err)
	}
}

func TestReadTraceBadJSONLType(t *testing.T) {
	err := ReadTrace(strings.NewReader(`{"type":"no_such_event","t":1}`+"\n"),
		func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown type") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadTraceCallbackError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatJSONL)
	w.OnEvent(Event{Type: TypePulse, T: 1})
	w.OnEvent(Event{Type: TypePulse, T: 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	err := ReadTrace(bytes.NewReader(buf.Bytes()), func(Event) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("err = %v after %d events", err, n)
	}
}

// failWriter fails after k bytes.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.left {
		n := f.left
		f.left = 0
		return n, errors.New("disk full")
	}
	f.left -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failWriter{left: 16}, FormatBinary)
	for i := 0; i < 2000; i++ { // overflow the bufio buffer to force the write through
		w.OnEvent(Event{Type: TypeSkewSample, T: float64(i), Value: 0.001})
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush hid the write error")
	}
	if w.Err() == nil {
		t.Fatal("Err lost the write error")
	}
	before := w.Events()
	w.OnEvent(Event{Type: TypeSkewSample}) // must be a no-op now
	if w.Events() != before {
		t.Fatal("writer kept counting after error")
	}
}

// TestReadTraceRejectsLake pins the format-sniffing contract: a lake
// container handed to the row readers fails fast with a pointer to the
// lake API, instead of being misparsed as JSONL.
func TestReadTraceRejectsLake(t *testing.T) {
	data := append(LakeMagic[:], []byte("rest of a columnar container")...)
	err := ReadTrace(bytes.NewReader(data), func(Event) error {
		t.Fatal("callback invoked on a lake stream")
		return nil
	})
	if err == nil {
		t.Fatal("ReadTrace accepted a lake container")
	}
	for _, want := range []string{"columnar trace lake", "optsync.OpenLake"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err = %v, want mention of %q", err, want)
		}
	}
}

// Corrupt-input contract: decode errors name the byte offset of the
// damage, so a mangled multi-gigabyte trace is debuggable with dd.

func TestReadTraceTruncatedBinaryNamesOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatBinary)
	for i := 0; i < 3; i++ {
		w.OnEvent(Event{Type: TypePulse, T: float64(i)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Cut inside the third frame: the error must point at its start.
	data := buf.Bytes()[:8+2*binaryFrameSize+11]
	err := ReadTrace(bytes.NewReader(data), func(Event) error { return nil })
	wantOff := fmt.Sprintf("byte offset %d", 8+2*binaryFrameSize)
	if err == nil || !strings.Contains(err.Error(), "event 2") || !strings.Contains(err.Error(), wantOff) {
		t.Fatalf("err = %v, want truncation at event 2, %s", err, wantOff)
	}
}

func TestReadTraceBinaryBadTypeNamesOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatBinary)
	for i := 0; i < 2; i++ {
		w.OnEvent(Event{Type: TypePulse, T: float64(i)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8+binaryFrameSize] = 0xEE // clobber frame 1's type byte
	err := ReadTrace(bytes.NewReader(data), func(Event) error { return nil })
	wantOff := fmt.Sprintf("byte offset %d", 8+binaryFrameSize)
	if err == nil || !strings.Contains(err.Error(), "frame 1") || !strings.Contains(err.Error(), wantOff) {
		t.Fatalf("err = %v, want invalid type at frame 1, %s", err, wantOff)
	}
}

func TestReadTraceMalformedJSONLNamesOffset(t *testing.T) {
	line := `{"type":"pulse","t":1,"from":0,"to":0,"kind":0,"round":1,"value":0,"aux":0}` + "\n"
	data := line + line + `{"type":"pulse","t":` // cut mid-object
	n := 0
	err := ReadTrace(strings.NewReader(data), func(Event) error {
		n++
		return nil
	})
	if n != 2 {
		t.Fatalf("decoded %d events before the damage, want 2", n)
	}
	// The decoder's offset sits at the closing brace of the last good
	// object — one byte shy of its newline.
	wantOff := fmt.Sprintf("byte offset %d", 2*len(line)-1)
	if err == nil || !strings.Contains(err.Error(), "event 2") || !strings.Contains(err.Error(), wantOff) {
		t.Fatalf("err = %v, want malformed-json error at event 2, %s", err, wantOff)
	}
}

// TestBinaryDensity documents the compact-framing claim: binary frames
// are fixed 40 bytes vs ~150 for JSONL.
func TestBinaryDensity(t *testing.T) {
	var jb, bb bytes.Buffer
	jw, bw := NewWriter(&jb, FormatJSONL), NewWriter(&bb, FormatBinary)
	for i := 0; i < 100; i++ {
		ev := Event{Type: TypeSkewSample, From: -1, To: -1, T: float64(i) * 0.05, Value: 1.0 / float64(i+3)}
		jw.OnEvent(ev)
		bw.OnEvent(ev)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bb.Len() != 8+100*binaryFrameSize {
		t.Fatalf("binary trace is %d bytes, want %d", bb.Len(), 8+100*binaryFrameSize)
	}
	if bb.Len() >= jb.Len() {
		t.Fatalf("binary (%d B) not denser than jsonl (%d B)", bb.Len(), jb.Len())
	}
}
