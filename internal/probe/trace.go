package probe

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Format selects a trace encoding.
type Format uint8

const (
	// FormatJSONL encodes one self-describing JSON object per line —
	// greppable, diffable, toolable. Go's shortest-round-trip float
	// encoding keeps replay exact.
	FormatJSONL Format = iota
	// FormatBinary encodes fixed-width 40-byte little-endian frames after
	// an 8-byte magic header — about 4x denser than JSONL and bit-exact
	// by construction.
	FormatBinary
)

// binaryMagic identifies a binary trace stream (format version 1).
var binaryMagic = [8]byte{'O', 'S', 'T', 'R', 'A', 'C', 'E', '1'}

// LakeMagic identifies a columnar lake container (internal/tracelake).
// The row-oriented readers here cannot stream one — a lake needs random
// access to its footer index — so ReadTrace recognizes the magic and
// fails with a pointer to the lake API instead of misparsing the bytes
// as JSONL. Defined here, beside the other stream magics, so format
// sniffing has one home; tracelake asserts it matches its own header.
var LakeMagic = [8]byte{'O', 'S', 'L', 'A', 'K', 'E', '1', '\n'}

// binaryFrameSize is the fixed record width of FormatBinary.
const binaryFrameSize = 40

// traceRecord is the JSONL projection of an Event. Every field is always
// present so replay never guesses at defaults.
type traceRecord struct {
	Type  string  `json:"type"`
	T     float64 `json:"t"`
	From  int32   `json:"from"`
	To    int32   `json:"to"`
	Kind  uint16  `json:"kind"`
	Round int32   `json:"round"`
	Value float64 `json:"value"`
	Aux   float64 `json:"aux"`
}

var typeByName = func() map[string]Type {
	m := make(map[string]Type, numTypes)
	for t := typeInvalid + 1; t < numTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

// Writer records the event stream it observes. It implements Probe, so
// installing a trace is just attaching it to the bus (WithTrace does).
// Writes are buffered; call Flush when the run is over. I/O errors are
// sticky: the first one stops further writes and is reported by Flush
// and Err.
type Writer struct {
	bw     *bufio.Writer
	format Format
	enc    *json.Encoder
	frame  [binaryFrameSize]byte
	err    error
	events uint64
	wrote  bool
}

// NewWriter returns a trace writer emitting the given format to w.
func NewWriter(w io.Writer, format Format) *Writer {
	bw := bufio.NewWriter(w)
	tw := &Writer{bw: bw, format: format}
	if format == FormatJSONL {
		tw.enc = json.NewEncoder(bw)
	}
	return tw
}

// Events returns the number of events recorded so far.
func (w *Writer) Events() uint64 { return w.events }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// OnEvent implements Probe.
func (w *Writer) OnEvent(ev Event) {
	if w.err != nil {
		return
	}
	if !w.wrote {
		w.wrote = true
		if w.format == FormatBinary {
			if _, err := w.bw.Write(binaryMagic[:]); err != nil {
				w.err = err
				return
			}
		}
	}
	switch w.format {
	case FormatJSONL:
		w.err = w.enc.Encode(traceRecord{
			Type: ev.Type.String(), T: ev.T,
			From: ev.From, To: ev.To,
			Kind: ev.Kind, Round: ev.Round,
			Value: ev.Value, Aux: ev.Aux,
		})
	case FormatBinary:
		b := w.frame[:]
		b[0] = byte(ev.Type)
		b[1] = 0
		binary.LittleEndian.PutUint16(b[2:4], ev.Kind)
		binary.LittleEndian.PutUint32(b[4:8], uint32(ev.From))
		binary.LittleEndian.PutUint32(b[8:12], uint32(ev.To))
		binary.LittleEndian.PutUint32(b[12:16], uint32(ev.Round))
		binary.LittleEndian.PutUint64(b[16:24], math.Float64bits(ev.T))
		binary.LittleEndian.PutUint64(b[24:32], math.Float64bits(ev.Value))
		binary.LittleEndian.PutUint64(b[32:40], math.Float64bits(ev.Aux))
		_, w.err = w.bw.Write(b)
	}
	if w.err == nil {
		w.events++
	}
}

// Flush drains the buffer and returns the first error seen by any write
// or the flush itself. A trace is complete only after a nil Flush.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// ReadTrace decodes a trace stream (either format, auto-detected from
// the leading bytes) and invokes fn for every event in order. A non-nil
// error from fn aborts the read and is returned.
func ReadTrace(r io.Reader, fn func(Event) error) error {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == io.EOF && len(head) == 0 {
		return nil // empty trace: a run nobody observed
	}
	if err == nil && [8]byte(head) == binaryMagic {
		return readBinary(br, fn)
	}
	if err == nil && [8]byte(head) == LakeMagic {
		return errors.New("probe: stream is a columnar trace lake, not a row trace; " +
			"open it with optsync.OpenLake (or tracelake.Open) instead of ReplayTrace")
	}
	return readJSONL(br, fn)
}

func readBinary(br *bufio.Reader, fn func(Event) error) error {
	if _, err := io.ReadFull(br, make([]byte, len(binaryMagic))); err != nil {
		return err
	}
	var b [binaryFrameSize]byte
	for n := uint64(0); ; n++ {
		off := uint64(len(binaryMagic)) + n*binaryFrameSize
		if _, err := io.ReadFull(br, b[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if err == io.ErrUnexpectedEOF {
				return fmt.Errorf("probe: binary trace truncated mid-frame at event %d (byte offset %d)", n, off)
			}
			return err
		}
		t := Type(b[0])
		if t <= typeInvalid || t >= numTypes {
			return fmt.Errorf("probe: binary trace frame %d (byte offset %d) has invalid event type %d", n, off, b[0])
		}
		ev := Event{
			Type:  t,
			Kind:  binary.LittleEndian.Uint16(b[2:4]),
			From:  int32(binary.LittleEndian.Uint32(b[4:8])),
			To:    int32(binary.LittleEndian.Uint32(b[8:12])),
			Round: int32(binary.LittleEndian.Uint32(b[12:16])),
			T:     math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
			Aux:   math.Float64frombits(binary.LittleEndian.Uint64(b[32:40])),
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

func readJSONL(br *bufio.Reader, fn func(Event) error) error {
	dec := json.NewDecoder(br)
	for n := uint64(0); ; n++ {
		var rec traceRecord
		off := dec.InputOffset()
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("probe: jsonl trace event %d (byte offset %d): %w", n, off, err)
		}
		t, ok := typeByName[rec.Type]
		if !ok {
			return fmt.Errorf("probe: jsonl trace event %d (byte offset %d) has unknown type %q", n, off, rec.Type)
		}
		ev := Event{
			Type: t, T: rec.T,
			From: rec.From, To: rec.To,
			Kind: rec.Kind, Round: rec.Round,
			Value: rec.Value, Aux: rec.Aux,
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// Replay feeds a recorded trace back through probes, in recorded order,
// and returns the number of events replayed. Collectors fed a replayed
// trace reproduce the aggregates of the original run exactly: both
// formats round-trip float64 values bit-for-bit.
func Replay(r io.Reader, probes ...Probe) (int, error) {
	var bus Bus
	for _, p := range probes {
		if c, ok := p.(Collector); ok {
			bus.AttachCollector(c)
			continue
		}
		bus.Attach(p)
	}
	n := 0
	err := ReadTrace(r, func(ev Event) error {
		n++
		//syncsim:allowlist probeguard replay emits every recorded event to explicitly attached probes; there is no unobserved fast path to protect
		bus.Emit(ev)
		return nil
	})
	return n, err
}
