package probe

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

type countingProbe struct {
	byType map[Type]int
}

func newCountingProbe() *countingProbe { return &countingProbe{byType: make(map[Type]int)} }

func (c *countingProbe) OnEvent(ev Event) { c.byType[ev.Type]++ }

func TestBusFanOutByType(t *testing.T) {
	var bus Bus
	all := newCountingProbe()
	msgs := newCountingProbe()
	bus.Attach(all)
	bus.Attach(msgs, MessageTypes()...)

	if !bus.AnyActive() {
		t.Fatal("AnyActive = false after Attach")
	}
	if !bus.Active(TypePulse) || !bus.Active(TypeMessageSent) {
		t.Fatal("Active wrong")
	}

	bus.Emit(Event{Type: TypeMessageSent})
	bus.Emit(Event{Type: TypePulse})
	bus.Emit(Event{Type: TypeSkewSample})

	if all.byType[TypeMessageSent] != 1 || all.byType[TypePulse] != 1 || all.byType[TypeSkewSample] != 1 {
		t.Fatalf("all-types probe saw %v", all.byType)
	}
	if msgs.byType[TypeMessageSent] != 1 || msgs.byType[TypePulse] != 0 {
		t.Fatalf("message probe saw %v", msgs.byType)
	}
}

func TestBusEmptyIsInert(t *testing.T) {
	var bus Bus
	if bus.AnyActive() || bus.Active(TypePulse) {
		t.Fatal("empty bus reports active")
	}
	bus.Emit(Event{Type: TypePulse}) // must not panic
}

func TestBusAttachValidation(t *testing.T) {
	var bus Bus
	for _, fn := range []func(){
		func() { bus.Attach(nil) },
		func() { bus.Attach(Func(func(Event) {}), Type(0)) },
		func() { bus.Attach(Func(func(Event) {}), numTypes) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

// TestEmitDoesNotAllocate pins the core promise: delivering events to an
// attached probe performs no heap allocation.
func TestEmitDoesNotAllocate(t *testing.T) {
	var bus Bus
	sink := 0
	bus.Attach(Func(func(ev Event) { sink += int(ev.Round) }), MessageTypes()...)
	ev := Event{Type: TypeMessageSent, From: 1, To: 2, Round: 3, T: 0.5, Value: 0.51}
	allocs := testing.AllocsPerRun(1000, func() { bus.Emit(ev) })
	if allocs != 0 {
		t.Fatalf("Emit allocates %v per call", allocs)
	}
	_ = sink
}

func TestSkewStats(t *testing.T) {
	s := NewSkewStats()
	if s.Count() != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 || s.P50() != 0 {
		t.Fatal("empty SkewStats not zero")
	}
	values := []float64{0.003, 0.001, 0.002, 0.005, 0.004}
	for _, v := range values {
		s.OnEvent(Event{Type: TypeSkewSample, Value: v})
		s.OnEvent(Event{Type: TypePulse, Value: 99}) // ignored
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Max() != 0.005 || s.Min() != 0.001 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-0.003) > 1e-15 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.P50() != 0.003 {
		t.Fatalf("P50 of 5 exact samples = %v, want the median 0.003", s.P50())
	}
	hist := s.Histogram()
	total := uint64(0)
	for _, c := range hist {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram holds %d samples, want 5", total)
	}
}

// TestSkewStatsQuantileAccuracy checks the P² estimates against exact
// quantiles on a deterministic pseudo-random stream.
func TestSkewStatsQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSkewStats()
	values := make([]float64, 5000)
	for i := range values {
		v := rng.Float64() * 0.01
		values[i] = v
		s.OnEvent(Event{Type: TypeSkewSample, Value: v})
	}
	sort.Float64s(values)
	exact := func(q float64) float64 { return values[int(q*float64(len(values)-1))] }
	for _, tc := range []struct {
		got, want float64
		name      string
	}{
		{s.P50(), exact(0.50), "p50"},
		{s.P95(), exact(0.95), "p95"},
		{s.P99(), exact(0.99), "p99"},
	} {
		// P² on a uniform stream of 5000 samples is accurate to well
		// under 2% of the range here.
		if math.Abs(tc.got-tc.want) > 0.0002 {
			t.Errorf("%s = %v, exact %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestHistBucket(t *testing.T) {
	if histBucket(0) != 0 || histBucket(-1) != 0 {
		t.Fatal("non-positive values must land in bucket 0")
	}
	// v = 1.0 has Frexp exponent 1 (1.0 = 0.5 * 2^1): bucket 42 covers [1, 2).
	if b := histBucket(1.0); b != 42 {
		t.Fatalf("bucket(1.0) = %d", b)
	}
	if b := histBucket(1.99); b != 42 {
		t.Fatalf("bucket(1.99) = %d", b)
	}
	if histBucket(math.SmallestNonzeroFloat64) != 1 {
		t.Fatal("tiny values must clamp to bucket 1")
	}
	if histBucket(math.MaxFloat64) != skewHistBuckets-1 {
		t.Fatal("huge values must clamp to the top bucket")
	}
}

func TestSpreadStats(t *testing.T) {
	s := NewSpreadStats()
	// Round 1: three acceptances spread over 4 ms; round 2: two.
	for _, p := range []struct {
		round int32
		at    float64
	}{{1, 1.000}, {1, 1.003}, {1, 1.004}, {2, 2.000}, {2, 2.010}} {
		s.OnEvent(Event{Type: TypePulse, Round: p.round, T: p.at, From: 0})
	}
	if s.Rounds() != 2 {
		t.Fatalf("Rounds = %d", s.Rounds())
	}
	if s.CompleteRounds(3) != 1 || s.CompleteRounds(2) != 1 {
		t.Fatal("CompleteRounds wrong")
	}
	if got := s.MaxSpread(3); math.Abs(got-0.004) > 1e-12 {
		t.Fatalf("MaxSpread(3) = %v", got)
	}
	if got := s.MaxSpread(0); math.Abs(got-0.010) > 1e-12 {
		t.Fatalf("MaxSpread(0) = %v", got)
	}
	agg := s.Aggregate()
	if agg[0].Key != "rounds" || agg[0].Value != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestMsgStats(t *testing.T) {
	s := NewMsgStats()
	for i := 0; i < 3; i++ {
		s.OnEvent(Event{Type: TypeMessageSent, Round: 1})
	}
	s.OnEvent(Event{Type: TypeMessageSent, Round: 2})
	s.OnEvent(Event{Type: TypeMessageDelivered})
	s.OnEvent(Event{Type: TypeMessageDropPolicy})
	s.OnEvent(Event{Type: TypeMessageDropOffline})
	s.OnEvent(Event{Type: TypeMessageDropLink})
	if s.Sent() != 4 || s.Delivered() != 1 {
		t.Fatalf("sent/delivered = %d/%d", s.Sent(), s.Delivered())
	}
	per := s.PerRound()
	if len(per) != 2 || per[0].Key != "round_1" || per[0].Value != 3 || per[1].Value != 1 {
		t.Fatalf("PerRound = %+v", per)
	}
	want := []Stat{
		{"sent", 4}, {"delivered", 1},
		{"drop_policy", 1}, {"drop_offline", 1}, {"drop_link", 1},
		{"rounds", 2}, {"sent_per_round", 2},
	}
	got := s.Aggregate()
	if len(got) != len(want) {
		t.Fatalf("aggregate = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aggregate[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReintegrationWindows(t *testing.T) {
	s := NewReintegrationWindows()
	s.OnEvent(Event{Type: TypeNodeBoot, From: 0, T: 0})   // boots at zero: not a joiner
	s.OnEvent(Event{Type: TypeNodeBoot, From: 4, T: 5.5}) // late joiner
	s.OnEvent(Event{Type: TypePulse, From: 0, T: 1.0})
	s.OnEvent(Event{Type: TypePulse, From: 4, T: 6.25})
	s.OnEvent(Event{Type: TypePulse, From: 4, T: 7.25}) // later pulses ignored
	w := s.Windows()
	if len(w) != 1 || w[0].Key != "node_4" || math.Abs(w[0].Value-0.75) > 1e-12 {
		t.Fatalf("Windows = %+v", w)
	}
	agg := s.Aggregate()
	if agg[0] != (Stat{"joiners", 1}) || agg[1] != (Stat{"synced", 1}) {
		t.Fatalf("aggregate = %+v", agg)
	}
	if math.Abs(agg[2].Value-0.75) > 1e-12 || math.Abs(agg[3].Value-0.75) > 1e-12 {
		t.Fatalf("window stats = %+v", agg)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.OnEvent(Event{Type: TypeSkewSample, T: 1, Value: 0.001})
	s.OnEvent(Event{Type: TypeSkewSample, T: 2, Value: 0.002})
	s.OnEvent(Event{Type: TypePulse, T: 3, Value: 9}) // ignored
	if len(s.Samples) != 2 || s.Samples[1] != (Sample{T: 2, Skew: 0.002}) {
		t.Fatalf("Samples = %+v", s.Samples)
	}
	agg := s.Aggregate()
	if agg[0].Value != 2 || agg[1].Value != 0.002 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

// TestSynchronized hammers a wrapped probe from several goroutines; run
// with -race this proves the serialization contract.
func TestSynchronized(t *testing.T) {
	sum := 0
	p := Synchronized(Func(func(ev Event) { sum += int(ev.Round) }))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.OnEvent(Event{Type: TypePulse, Round: 1})
			}
		}()
	}
	wg.Wait()
	if sum != 8000 {
		t.Fatalf("sum = %d, want 8000", sum)
	}
}

func TestTypeString(t *testing.T) {
	if TypeMessageSent.String() != "message_sent" || TypeSkewSample.String() != "skew_sample" {
		t.Fatal("type names drifted (they are the JSONL wire format)")
	}
	if Type(200).String() != "invalid" || Type(0).String() != "invalid" {
		t.Fatal("out-of-range types must stringify as invalid")
	}
	if len(AllTypes()) != int(numTypes)-1 {
		t.Fatal("AllTypes incomplete")
	}
}
