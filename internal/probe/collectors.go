package probe

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// --- streaming quantiles (P-squared) ---

// p2 is the P² streaming quantile estimator (Jain & Chlamtac 1985): five
// markers track the running quantile in O(1) memory with parabolic
// interpolation. It is deterministic in the observation sequence, so
// replaying a trace reproduces the estimate bit-for-bit.
type p2 struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	npos [5]float64 // desired positions
	dn   [5]float64 // desired-position increments
}

func newP2(p float64) p2 {
	return p2{p: p, dn: [5]float64{0, p / 2, p, (1 + p) / 2, 1}}
}

func (s *p2) observe(x float64) {
	if s.n < 5 {
		s.q[s.n] = x
		s.n++
		if s.n == 5 {
			q := s.q[:]
			sort.Float64s(q)
			s.pos = [5]float64{1, 2, 3, 4, 5}
			s.npos = [5]float64{1, 1 + 2*s.p, 1 + 4*s.p, 3 + 2*s.p, 5}
		}
		return
	}
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x < s.q[1]:
		k = 0
	case x < s.q[2]:
		k = 1
	case x < s.q[3]:
		k = 2
	case x <= s.q[4]:
		k = 3
	default:
		s.q[4] = x
		k = 3
	}
	s.n++
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.npos {
		s.npos[i] += s.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := s.npos[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			if qp := s.parabolic(i, sign); s.q[i-1] < qp && qp < s.q[i+1] {
				s.q[i] = qp
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

func (s *p2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

func (s *p2) linear(i int, d float64) float64 {
	return s.q[i] + d*(s.q[int(float64(i)+d)]-s.q[i])/(s.pos[int(float64(i)+d)]-s.pos[i])
}

// value returns the current estimate. With fewer than five observations
// it falls back to the nearest-rank quantile of what it has.
func (s *p2) value() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n < 5 {
		tmp := make([]float64, s.n)
		copy(tmp, s.q[:s.n])
		sort.Float64s(tmp)
		idx := int(math.Ceil(s.p*float64(s.n))) - 1
		if idx < 0 {
			idx = 0
		}
		return tmp[idx]
	}
	return s.q[2]
}

// --- skew ---

// skewHistBuckets is the fixed size of the exponential skew histogram.
const skewHistBuckets = 64

// SkewStats folds TypeSkewSample events into O(1)-memory skew statistics:
// count/min/max/mean, P² estimates of the 50th/95th/99th percentiles, and
// a base-2 exponential histogram. It replaces retaining the full skew
// series when only its shape is wanted — the bounded-memory per-cell
// collector of million-cell campaigns.
type SkewStats struct {
	count         uint64
	max, min, sum float64
	q50, q95, q99 p2
	// hist bucket 0 counts non-positive samples; bucket i in [1,63]
	// counts samples in [2^(i-42), 2^(i-41)).
	hist [skewHistBuckets]uint64
}

// NewSkewStats returns an empty skew collector.
func NewSkewStats() *SkewStats {
	return &SkewStats{
		min: math.Inf(1),
		q50: newP2(0.50), q95: newP2(0.95), q99: newP2(0.99),
	}
}

// OnEvent implements Probe.
func (s *SkewStats) OnEvent(ev Event) {
	if ev.Type != TypeSkewSample {
		return
	}
	v := ev.Value
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
	if v < s.min {
		s.min = v
	}
	s.q50.observe(v)
	s.q95.observe(v)
	s.q99.observe(v)
	s.hist[histBucket(v)]++
}

func histBucket(v float64) int {
	if v <= 0 {
		return 0
	}
	_, exp := math.Frexp(v)
	b := exp + 41
	if b < 1 {
		b = 1
	}
	if b >= skewHistBuckets {
		b = skewHistBuckets - 1
	}
	return b
}

// Count returns the number of samples observed.
func (s *SkewStats) Count() int { return int(s.count) }

// Max returns the maximum observed skew (0 with no samples), the fold the
// harness reports as Result.MaxSkew.
func (s *SkewStats) Max() float64 { return s.max }

// Min returns the minimum observed skew (0 with no samples).
func (s *SkewStats) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Mean returns the mean observed skew (0 with no samples).
func (s *SkewStats) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// P50, P95, and P99 return the streaming percentile estimates.
func (s *SkewStats) P50() float64 { return s.q50.value() }
func (s *SkewStats) P95() float64 { return s.q95.value() }
func (s *SkewStats) P99() float64 { return s.q99.value() }

// Histogram returns the sample counts per bucket: bucket 0 holds
// non-positive samples, bucket i in [1,63] holds samples in
// [2^(i-42), 2^(i-41)) seconds (bucket 42 covers [1s, 2s)).
func (s *SkewStats) Histogram() [skewHistBuckets]uint64 { return s.hist }

// Name implements Collector.
func (s *SkewStats) Name() string { return "skew" }

// Types implements Collector.
func (s *SkewStats) Types() []Type { return []Type{TypeSkewSample} }

// Aggregate implements Collector.
func (s *SkewStats) Aggregate() []Stat {
	return []Stat{
		{"samples", float64(s.count)},
		{"min_s", s.Min()},
		{"max_s", s.Max()},
		{"mean_s", s.Mean()},
		{"p50_s", s.P50()},
		{"p95_s", s.P95()},
		{"p99_s", s.P99()},
	}
}

// --- acceptance spread ---

type spreadRound struct {
	first, last float64
	count       int
}

// SpreadStats folds TypePulse events into per-round acceptance spreads
// (latest minus earliest acceptance of each resynchronization round).
// Memory is O(rounds). Pulses from faulty nodes are the emitter's to
// filter; the harness measures spread over correct pulses only, this
// collector over everything it is fed.
type SpreadStats struct {
	rounds map[int32]*spreadRound
}

// NewSpreadStats returns an empty spread collector.
func NewSpreadStats() *SpreadStats {
	return &SpreadStats{rounds: make(map[int32]*spreadRound)}
}

// OnEvent implements Probe.
func (s *SpreadStats) OnEvent(ev Event) {
	if ev.Type != TypePulse {
		return
	}
	r := s.rounds[ev.Round]
	if r == nil {
		r = &spreadRound{first: ev.T, last: ev.T}
		s.rounds[ev.Round] = r
	}
	if ev.T < r.first {
		r.first = ev.T
	}
	if ev.T > r.last {
		r.last = ev.T
	}
	r.count++
}

// Rounds returns the number of distinct rounds observed.
func (s *SpreadStats) Rounds() int { return len(s.rounds) }

// CompleteRounds counts rounds with exactly want acceptances.
func (s *SpreadStats) CompleteRounds(want int) int {
	n := 0
	for _, r := range s.rounds {
		if r.count == want {
			n++
		}
	}
	return n
}

// MaxSpread returns the maximum spread over rounds with exactly want
// acceptances (all rounds when want <= 0).
func (s *SpreadStats) MaxSpread(want int) float64 {
	max := 0.0
	for _, r := range s.rounds {
		if want > 0 && r.count != want {
			continue
		}
		if sp := r.last - r.first; sp > max {
			max = sp
		}
	}
	return max
}

// Name implements Collector.
func (s *SpreadStats) Name() string { return "spread" }

// Types implements Collector.
func (s *SpreadStats) Types() []Type { return []Type{TypePulse} }

// Aggregate implements Collector.
func (s *SpreadStats) Aggregate() []Stat {
	var sum float64
	for _, r := range s.rounds {
		sum += r.last - r.first
	}
	mean := 0.0
	if len(s.rounds) > 0 {
		mean = sum / float64(len(s.rounds))
	}
	return []Stat{
		{"rounds", float64(len(s.rounds))},
		{"max_spread_s", s.MaxSpread(0)},
		{"mean_spread_s", mean},
	}
}

// --- message complexity ---

// MsgStats folds the five message event types into traffic counters and a
// per-round send histogram (keyed by the protocol round the envelope
// carries). Memory is O(rounds).
type MsgStats struct {
	sent, delivered                   uint64
	dropPolicy, dropOffline, dropLink uint64
	perRound                          map[int32]uint64
}

// NewMsgStats returns an empty traffic collector.
func NewMsgStats() *MsgStats {
	return &MsgStats{perRound: make(map[int32]uint64)}
}

// OnEvent implements Probe.
func (s *MsgStats) OnEvent(ev Event) {
	switch ev.Type {
	case TypeMessageSent:
		s.sent++
		s.perRound[ev.Round]++
	case TypeMessageDelivered:
		s.delivered++
	case TypeMessageDropPolicy:
		s.dropPolicy++
	case TypeMessageDropOffline:
		s.dropOffline++
	case TypeMessageDropLink:
		s.dropLink++
	}
}

// Sent returns the number of messages put on a wire.
func (s *MsgStats) Sent() uint64 { return s.sent }

// Delivered returns the number of handler deliveries.
func (s *MsgStats) Delivered() uint64 { return s.delivered }

// PerRound returns the send count per protocol round, sorted by round.
func (s *MsgStats) PerRound() []Stat {
	rounds := make([]int32, 0, len(s.perRound))
	for r := range s.perRound {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	out := make([]Stat, len(rounds))
	for i, r := range rounds {
		out[i] = Stat{Key: "round_" + strconv.Itoa(int(r)), Value: float64(s.perRound[r])}
	}
	return out
}

// Name implements Collector.
func (s *MsgStats) Name() string { return "messages" }

// Types implements Collector.
func (s *MsgStats) Types() []Type { return MessageTypes() }

// Aggregate implements Collector.
func (s *MsgStats) Aggregate() []Stat {
	perRound := 0.0
	if len(s.perRound) > 0 {
		perRound = float64(s.sent) / float64(len(s.perRound))
	}
	return []Stat{
		{"sent", float64(s.sent)},
		{"delivered", float64(s.delivered)},
		{"drop_policy", float64(s.dropPolicy)},
		{"drop_offline", float64(s.dropOffline)},
		{"drop_link", float64(s.dropLink)},
		{"rounds", float64(len(s.perRound))},
		{"sent_per_round", perRound},
	}
}

// --- reintegration windows ---

// ReintegrationWindows tracks, for every node booted after time zero (a
// late joiner), the window from its boot to its first accepted pulse —
// the paper's integration property, measured streaming.
type ReintegrationWindows struct {
	bootAt     map[int32]float64
	firstPulse map[int32]float64
}

// NewReintegrationWindows returns an empty reintegration tracker.
func NewReintegrationWindows() *ReintegrationWindows {
	return &ReintegrationWindows{
		bootAt:     make(map[int32]float64),
		firstPulse: make(map[int32]float64),
	}
}

// OnEvent implements Probe.
func (s *ReintegrationWindows) OnEvent(ev Event) {
	switch ev.Type {
	case TypeNodeBoot:
		s.bootAt[ev.From] = ev.T
	case TypePulse:
		if _, seen := s.firstPulse[ev.From]; !seen {
			s.firstPulse[ev.From] = ev.T
		}
	}
}

// Windows returns (node, window) pairs for every late joiner that pulsed,
// sorted by node id.
func (s *ReintegrationWindows) Windows() []Stat {
	ids := make([]int32, 0, len(s.bootAt))
	for id, at := range s.bootAt {
		if at > 0 {
			if _, ok := s.firstPulse[id]; ok {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Stat, len(ids))
	for i, id := range ids {
		out[i] = Stat{Key: "node_" + strconv.Itoa(int(id)), Value: s.firstPulse[id] - s.bootAt[id]}
	}
	return out
}

// Name implements Collector.
func (s *ReintegrationWindows) Name() string { return "reintegration" }

// Types implements Collector.
func (s *ReintegrationWindows) Types() []Type { return []Type{TypeNodeBoot, TypePulse} }

// Aggregate implements Collector.
func (s *ReintegrationWindows) Aggregate() []Stat {
	windows := s.Windows()
	joiners := 0
	for _, at := range s.bootAt {
		if at > 0 {
			joiners++
		}
	}
	var max, sum float64
	for _, w := range windows {
		sum += w.Value
		if w.Value > max {
			max = w.Value
		}
	}
	mean := 0.0
	if len(windows) > 0 {
		mean = sum / float64(len(windows))
	}
	return []Stat{
		{"joiners", float64(joiners)},
		{"synced", float64(len(windows))},
		{"max_window_s", max},
		{"mean_window_s", mean},
	}
}

// --- series (compatibility collector) ---

// Sample is one skew observation of a retained series.
type Sample struct {
	T    float64 // real time
	Skew float64 // max - min logical clock over sampled nodes
}

// Series retains the full skew time series — the collector behind
// Spec.KeepSeries. Unlike the other collectors its memory is O(samples);
// prefer SkewStats when only the distribution is wanted.
type Series struct {
	Samples []Sample
}

// NewSeries returns an empty series collector.
func NewSeries() *Series { return &Series{} }

// OnEvent implements Probe.
func (s *Series) OnEvent(ev Event) {
	if ev.Type != TypeSkewSample {
		return
	}
	s.Samples = append(s.Samples, Sample{T: ev.T, Skew: ev.Value})
}

// Name implements Collector.
func (s *Series) Name() string { return "series" }

// Types implements Collector.
func (s *Series) Types() []Type { return []Type{TypeSkewSample} }

// Aggregate implements Collector.
func (s *Series) Aggregate() []Stat {
	last := 0.0
	if n := len(s.Samples); n > 0 {
		last = s.Samples[n-1].Skew
	}
	return []Stat{
		{"samples", float64(len(s.Samples))},
		{"last_skew_s", last},
	}
}

// --- cross-run serialization ---

type synchronized struct {
	mu sync.Mutex
	p  Probe
}

// Synchronized wraps p so that OnEvent calls are serialized by a mutex —
// required when one probe observes events from runs executing
// concurrently (RunBatch with several workers). Events from different
// runs interleave arbitrarily; per-run isolation needs per-run probes.
func Synchronized(p Probe) Probe {
	if p == nil {
		panic("probe: Synchronized(nil)")
	}
	return &synchronized{p: p}
}

// OnEvent implements Probe.
func (s *synchronized) OnEvent(ev Event) {
	s.mu.Lock()
	s.p.OnEvent(ev)
	s.mu.Unlock()
}
