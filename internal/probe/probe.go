// Package probe is the observation layer of the simulator: one typed
// event stream shared by the engine, the network, the node runtime, and
// the metrics pipeline.
//
// Every observable moment of a run — a message put on a wire, a delivery,
// a drop, an accepted resynchronization pulse, a clock adjustment, a node
// boot, a partition cut or heal, a skew sample — is described by a value
// Event and fanned out through a Bus to any number of registered Probes.
// The design constraints, in order:
//
//  1. Zero cost when unused. Events are plain values (no pointers, no
//     interfaces), emission sites guard with Bus.Active (an array index
//     and a length test), and Emit never allocates. With no probe
//     attached the message hot path is identical to the un-instrumented
//     one; with a no-op probe attached it stays allocation-free (a
//     CI-enforced property, see BenchmarkPulseRound).
//  2. Per-type fan-out. Probes subscribe to the event types they consume,
//     so a skew collector does not tax the O(n^2)-per-round message path.
//  3. Replayability. An Event carries everything its consumers need, so a
//     recorded stream (see trace.go) replayed through the same collectors
//     reproduces their aggregates exactly.
//
// The package is a leaf: sim, network, node, metrics, and harness all
// import it, never the reverse.
package probe

// Type discriminates events.
type Type uint8

// Event types. The zero Type is invalid so that an uninitialized Event is
// recognizably broken rather than quietly miscounted.
const (
	typeInvalid Type = iota
	// TypeMessageSent: a message was accepted for transmission.
	// From/To/Kind/Round describe the envelope, T is the send instant and
	// Value the delivery instant chosen by the delay policy.
	TypeMessageSent
	// TypeMessageDelivered: a message reached a registered handler.
	// T is the delivery instant.
	TypeMessageDelivered
	// TypeMessageDropPolicy: the delay policy refused the message at send
	// time (adversarial drop on a faulty-endpoint link). T is the send
	// instant; Value is -1.
	TypeMessageDropPolicy
	// TypeMessageDropOffline: the message reached its delivery instant
	// with no handler registered (destination offline). T is the delivery
	// instant.
	TypeMessageDropOffline
	// TypeMessageDropLink: the topology provided no usable from->to link
	// at send time (absent edge or active partition); nothing went on a
	// wire. T is the send instant; Value is -1.
	TypeMessageDropLink
	// TypePulse: node From accepted resynchronization round Round at real
	// time T with logical clock Value. Faulty nodes emit pulses too (they
	// may fake them); consumers filter by From when they care.
	TypePulse
	// TypeResync: node From set its logical clock (a resynchronization
	// jump or slew retarget). Value is the new reading, Aux the old.
	TypeResync
	// TypeNodeBoot: node From booted at T (T > 0 means a late joiner).
	TypeNodeBoot
	// TypePartitionCut: a scheduled partition window opened at T; To is
	// the size of the left (low-id) side.
	TypePartitionCut
	// TypePartitionHeal: the partition window closed at T; To is the size
	// of the left side.
	TypePartitionHeal
	// TypeSkewSample: the sampler measured skew Value over Round nodes at
	// T.
	TypeSkewSample

	numTypes
)

// NumTypes is the count of Type values including the invalid zero: valid
// types are 1..NumTypes-1. Sized arrays indexed by Type (the bus here,
// the per-type row buffers of internal/tracelake) use it.
const NumTypes = int(numTypes)

// TypeByName resolves the stable snake_case name of a type (the inverse
// of Type.String), for query surfaces that take types as text.
func TypeByName(name string) (Type, bool) {
	t, ok := typeByName[name]
	return t, ok
}

var typeNames = [numTypes]string{
	typeInvalid:            "invalid",
	TypeMessageSent:        "message_sent",
	TypeMessageDelivered:   "message_delivered",
	TypeMessageDropPolicy:  "message_drop_policy",
	TypeMessageDropOffline: "message_drop_offline",
	TypeMessageDropLink:    "message_drop_link",
	TypePulse:              "pulse",
	TypeResync:             "resync",
	TypeNodeBoot:           "node_boot",
	TypePartitionCut:       "partition_cut",
	TypePartitionHeal:      "partition_heal",
	TypeSkewSample:         "skew_sample",
}

// String returns the stable snake_case name used by the JSONL trace
// format.
func (t Type) String() string {
	if t < numTypes {
		return typeNames[t]
	}
	return "invalid"
}

// MessageTypes lists the five per-message event types — the hot-path
// subscription set for traffic probes.
func MessageTypes() []Type {
	return []Type{
		TypeMessageSent, TypeMessageDelivered,
		TypeMessageDropPolicy, TypeMessageDropOffline, TypeMessageDropLink,
	}
}

// AllTypes lists every valid event type.
func AllTypes() []Type {
	out := make([]Type, 0, numTypes-1)
	for t := typeInvalid + 1; t < numTypes; t++ {
		out = append(out, t)
	}
	return out
}

// Event is one observation. It is a plain value — fixed size, no
// pointers — so emitting one costs a stack write and recording one costs
// a fixed-width frame. Field meaning is per-Type (see the Type
// constants); unused fields are zero, except From/To which are -1 when
// not applicable.
type Event struct {
	Type Type
	// Kind is the message kind for message events.
	Kind uint16
	// From and To are node ids (-1 when not applicable). TypePartitionCut
	// and TypePartitionHeal reuse To for the left-side size.
	From, To int32
	// Round is the protocol round for message and pulse events, and the
	// sampled node count for TypeSkewSample.
	Round int32
	// T is the virtual time of the event.
	T float64
	// Value is the per-type payload: delivery instant (sent), logical
	// clock (pulse), new logical reading (resync), skew (skew sample).
	Value float64
	// Aux is the secondary payload: the old logical reading for
	// TypeResync.
	Aux float64
}

// Probe consumes events. OnEvent runs inline at the emission site, on the
// single simulation goroutine of one run: implementations need no
// locking against the emitter, must not block, and — if they share state
// across concurrently executing runs — must be wrapped (see
// Synchronized). A probe that allocates per event forfeits the
// allocation-free hot path; the built-in collectors do not.
type Probe interface {
	OnEvent(Event)
}

// Func adapts a function to the Probe interface.
type Func func(Event)

// OnEvent implements Probe.
func (f Func) OnEvent(ev Event) { f(ev) }

// Collector is a Probe that folds its event subscription into a named,
// bounded-memory aggregate. Aggregates are deterministic in the event
// sequence alone, which is what makes trace replay reproduce them
// exactly.
type Collector interface {
	Probe
	// Name identifies the collector in rendered aggregates.
	Name() string
	// Types is the event subscription the collector needs.
	Types() []Type
	// Aggregate returns the folded statistics in a stable order.
	Aggregate() []Stat
}

// Stat is one named aggregate value.
type Stat struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// Bus fans events out to probes by type. The zero value is ready to use
// and costs one nil-slice index per guarded emission site while empty.
// Attach is not synchronized with Emit: attach everything before the
// engine runs (the run entry points do).
type Bus struct {
	byType [numTypes][]Probe
	total  int
}

// Attach subscribes p to the given event types, or to every type when
// none are given. Attaching the same probe to the same type twice
// delivers events to it twice.
func (b *Bus) Attach(p Probe, types ...Type) {
	if p == nil {
		panic("probe: Attach(nil)")
	}
	if len(types) == 0 {
		types = AllTypes()
	}
	for _, t := range types {
		if t <= typeInvalid || t >= numTypes {
			panic("probe: Attach with invalid event type")
		}
		b.byType[t] = append(b.byType[t], p)
		b.total++
	}
}

// AttachCollector subscribes c to exactly the types it declares.
func (b *Bus) AttachCollector(c Collector) { b.Attach(c, c.Types()...) }

// Active reports whether any probe subscribes to t. Emission sites guard
// with it so that building the Event is also skipped when nobody listens.
func (b *Bus) Active(t Type) bool { return len(b.byType[t]) > 0 }

// AnyActive reports whether any probe is attached at all.
func (b *Bus) AnyActive() bool { return b.total > 0 }

// Emit delivers ev to every probe subscribed to its type, in attach
// order. It never allocates.
//
//syncsim:hotpath
func (b *Bus) Emit(ev Event) {
	for _, p := range b.byType[ev.Type] {
		p.OnEvent(ev)
	}
}
