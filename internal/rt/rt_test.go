package rt

import (
	"testing"
	"time"

	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/node"
)

// rtParams: generous margins so OS scheduling jitter (typically well under
// a millisecond) is negligible against the 20-50 ms delay window.
func rtParams() bounds.Params {
	return bounds.Params{
		N: 4, F: 1, Variant: bounds.Auth,
		Rho:  clock.Rho(0.01), // 1% synthetic drift: visible within seconds
		DMin: 0.020, DMax: 0.050,
		Period:      0.25,
		InitialSkew: 0.02,
	}.WithDefaults()
}

func TestRealTimeAuthSynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := rtParams()
	cfg := core.ConfigFromBounds(p)
	c := New(Config{
		N: p.N, F: p.F, Seed: 5,
		Rho:       p.Rho,
		MaxOffset: p.InitialSkew,
		DelayMin:  time.Duration(p.DMin * float64(time.Second)),
		DelayMax:  time.Duration(p.DMax * float64(time.Second)),
		Protocols: func(i int) node.Protocol { return core.NewAuth(cfg) },
	})
	c.Start()
	defer c.Stop()

	ids := []node.ID{0, 1, 2, 3}
	deadline := time.After(3 * time.Second)
	maxSkew := 0.0
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			if s := c.Skew(ids); s > maxSkew {
				maxSkew = s
			}
		}
	}
	// Sampling is not instantaneous across nodes; allow one extra delay of
	// slack on top of the analytic bound.
	limit := p.DmaxWithStart() + p.DMax
	if maxSkew > limit {
		t.Fatalf("real-time skew %v exceeds %v", maxSkew, limit)
	}
	pulses := c.Pulses()
	if len(pulses) == 0 {
		t.Fatal("no pulses in 3 s of real time")
	}
	// Every node pulsed, rounds monotone per node.
	lastRound := map[node.ID]int{}
	seen := map[node.ID]bool{}
	for _, rec := range pulses {
		seen[rec.Node] = true
		if rec.Round <= lastRound[rec.Node] {
			t.Fatalf("node %d rounds not monotone: %d after %d", rec.Node, rec.Round, lastRound[rec.Node])
		}
		lastRound[rec.Node] = rec.Round
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("node %d never pulsed", id)
		}
	}
}

func TestRealTimePrimitive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := rtParams()
	p.Variant = bounds.Primitive
	p = p.WithDefaults()
	cfg := core.ConfigFromBounds(p)
	c := New(Config{
		N: p.N, F: p.F, Seed: 6,
		Rho:       p.Rho,
		MaxOffset: p.InitialSkew,
		DelayMin:  time.Duration(p.DMin * float64(time.Second)),
		DelayMax:  time.Duration(p.DMax * float64(time.Second)),
		Protocols: func(i int) node.Protocol { return core.NewPrimitive(cfg) },
	})
	c.Start()
	defer c.Stop()
	time.Sleep(2 * time.Second)
	if len(c.Pulses()) == 0 {
		t.Fatal("no primitive pulses in 2 s of real time")
	}
}

func TestRealTimeStopIsIdempotent(t *testing.T) {
	p := rtParams()
	cfg := core.ConfigFromBounds(p)
	c := New(Config{
		N: p.N, F: p.F, Seed: 7,
		Rho:       p.Rho,
		Protocols: func(i int) node.Protocol { return core.NewAuth(cfg) },
	})
	c.Start()
	c.Stop()
	c.Stop() // double stop must not panic
	_ = c.ReadLogical(0)
}

func TestRealTimeConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	New(Config{N: 0})
}
