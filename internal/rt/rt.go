// Package rt is a real-time runtime for the synchronization protocols: the
// exact same node.Protocol implementations that run on the deterministic
// simulator run here over wall-clock time, goroutines, and channels.
//
// Each process is one goroutine owning an inbox channel; timers are
// time.AfterFunc callbacks posted to the inbox; message delays are drawn
// from a configured window and applied on the sender side. Hardware clocks
// are synthesized over the wall clock as H(t) = offset + rate·elapsed with
// per-node rates inside the drift envelope, so the protocols face genuine
// (if tame) clock skew and drift.
//
// The runtime serializes all protocol interaction per node through the
// node's event loop: Start, Deliver, and timer callbacks all execute on
// the loop goroutine, so protocol code needs no locking — the same
// discipline the simulator provides. Reading clocks from outside (for
// measurements) is safe via Cluster.ReadLogical, which takes the node's
// adjustment lock.
//
// This runtime exists to demonstrate that the library is a protocol
// implementation, not a simulation artifact; it deliberately keeps the
// transport in-process (channels). Swapping in net.UDPConn per link would
// only change dial/encode plumbing, not protocol code.
package rt

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"optsync/internal/clock"
	"optsync/internal/node"
	"optsync/internal/sig"
)

// Config assembles a real-time cluster.
type Config struct {
	N, F int
	Seed int64
	// Rho bounds synthetic clock rates: each node gets a fixed rate in
	// [1/(1+Rho), 1+Rho].
	Rho clock.Rho
	// MaxOffset bounds the synthetic initial clock offsets (seconds).
	MaxOffset float64
	// DelayMin, DelayMax bound the artificial message delays.
	DelayMin, DelayMax time.Duration
	// Scheme is the signature scheme; nil selects HMAC.
	Scheme sig.Scheme
	// Protocols builds node i's program.
	Protocols func(i int) node.Protocol
}

// Cluster runs N protocol instances in real time.
type Cluster struct {
	cfg   Config
	nodes []*rtNode
	start time.Time

	mu      sync.Mutex
	pulses  []node.PulseRecord
	stopped bool
}

type envelope struct {
	from node.ID
	msg  node.Message
}

type rtNode struct {
	id      node.ID
	c       *Cluster
	proto   node.Protocol
	inbox   chan func()
	rng     *rand.Rand
	rate    float64
	offset  float64
	done    chan struct{}
	stopped sync.Once

	// adjMu guards adj, the logical clock adjustment, for cross-goroutine
	// reads by measurements.
	adjMu sync.Mutex
	adj   float64
}

var _ node.Env = (*rtNode)(nil)

// New builds a cluster (not yet started).
func New(cfg Config) *Cluster {
	if cfg.N <= 0 || cfg.Protocols == nil {
		panic("rt: invalid config")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sig.NewHMAC(cfg.N, cfg.Seed)
	}
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 5 * time.Millisecond
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.N; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x9E3779B97F4A7C15*uint64(i+1))))
		lo, hi := cfg.Rho.MinRate(), cfg.Rho.MaxRate()
		c.nodes = append(c.nodes, &rtNode{
			id:     i,
			c:      c,
			proto:  cfg.Protocols(i),
			inbox:  make(chan func(), 1024),
			rng:    rng,
			rate:   lo + rng.Float64()*(hi-lo),
			offset: rng.Float64() * cfg.MaxOffset,
			done:   make(chan struct{}),
		})
	}
	return c
}

// Start boots every node.
func (c *Cluster) Start() {
	c.start = time.Now()
	for _, nd := range c.nodes {
		nd := nd
		go nd.loop()
		nd.post(func() { nd.proto.Start(nd) })
	}
}

// Stop shuts all nodes down. Safe to call once.
func (c *Cluster) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	for _, nd := range c.nodes {
		nd.stopped.Do(func() { close(nd.done) })
	}
}

// Pulses returns a snapshot of recorded pulses.
func (c *Cluster) Pulses() []node.PulseRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]node.PulseRecord(nil), c.pulses...)
}

// ReadLogical reads node id's logical clock now (thread-safe).
func (c *Cluster) ReadLogical(id node.ID) float64 {
	return c.nodes[id].logicalAt(time.Now())
}

// Skew returns the max pairwise logical clock difference over ids, sampled
// as close to simultaneously as the runtime allows.
func (c *Cluster) Skew(ids []node.ID) float64 {
	now := time.Now()
	lo, hi := 0.0, 0.0
	for i, id := range ids {
		v := c.nodes[id].logicalAt(now)
		if i == 0 {
			lo, hi = v, v
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func (nd *rtNode) loop() {
	for {
		select {
		case fn := <-nd.inbox:
			fn()
		case <-nd.done:
			return
		}
	}
}

// post enqueues fn onto the node's loop; drops when the node is stopped or
// the inbox is full (equivalent to a lossy late message; bounded inboxes
// keep a runaway sender from wedging the process).
func (nd *rtNode) post(fn func()) {
	select {
	case nd.inbox <- fn:
	case <-nd.done:
	default:
	}
}

// hardwareAt returns H(t) for wall time t.
func (nd *rtNode) hardwareAt(t time.Time) float64 {
	return nd.offset + nd.rate*t.Sub(nd.c.start).Seconds()
}

func (nd *rtNode) logicalAt(t time.Time) float64 {
	nd.adjMu.Lock()
	defer nd.adjMu.Unlock()
	return nd.hardwareAt(t) + nd.adj
}

// ID implements node.Env.
func (nd *rtNode) ID() node.ID { return nd.id }

// N implements node.Env.
func (nd *rtNode) N() int { return nd.c.cfg.N }

// F implements node.Env.
func (nd *rtNode) F() int { return nd.c.cfg.F }

// LogicalTime implements node.Env.
func (nd *rtNode) LogicalTime() float64 { return nd.logicalAt(time.Now()) }

// HardwareTime implements node.Env.
func (nd *rtNode) HardwareTime() float64 { return nd.hardwareAt(time.Now()) }

// SetLogical implements node.Env.
func (nd *rtNode) SetLogical(value float64) {
	now := time.Now()
	nd.adjMu.Lock()
	nd.adj = value - nd.hardwareAt(now)
	nd.adjMu.Unlock()
}

// AtLogical implements node.Env.
func (nd *rtNode) AtLogical(value float64, fn func()) node.Timer {
	now := time.Now()
	nd.adjMu.Lock()
	cur := nd.hardwareAt(now) + nd.adj
	adj := nd.adj
	nd.adjMu.Unlock()
	var wait time.Duration
	if value > cur {
		// Convert the logical distance to wall time via the clock rate.
		localDelta := value - adj - nd.hardwareAt(now)
		wait = time.Duration(localDelta / nd.rate * float64(time.Second))
	}
	return time.AfterFunc(wait, func() { nd.post(fn) })
}

// Cancel implements node.Env.
func (nd *rtNode) Cancel(t node.Timer) {
	if t == nil {
		return
	}
	tm, ok := t.(*time.Timer)
	if !ok {
		panic(fmt.Sprintf("rt: foreign timer handle %T", t))
	}
	tm.Stop()
}

// Send implements node.Env.
func (nd *rtNode) Send(to node.ID, msg node.Message) {
	d := nd.c.cfg.DelayMin
	if window := nd.c.cfg.DelayMax - nd.c.cfg.DelayMin; window > 0 {
		d += time.Duration(nd.rng.Int63n(int64(window)))
	}
	dst := nd.c.nodes[to]
	from := nd.id
	time.AfterFunc(d, func() {
		dst.post(func() { dst.proto.Deliver(dst, from, msg) })
	})
}

// Broadcast implements node.Env.
func (nd *rtNode) Broadcast(msg node.Message) {
	for i := range nd.c.nodes {
		nd.Send(i, msg)
	}
}

// Sign implements node.Env.
func (nd *rtNode) Sign(payload []byte) sig.Signature {
	return nd.c.cfg.Scheme.Sign(nd.id, payload)
}

// Verify implements node.Env.
func (nd *rtNode) Verify(signer node.ID, payload []byte, s sig.Signature) bool {
	return nd.c.cfg.Scheme.Verify(signer, payload, s)
}

// Pulse implements node.Env.
func (nd *rtNode) Pulse(round int) {
	now := time.Now()
	rec := node.PulseRecord{
		Node:    nd.id,
		Round:   round,
		Real:    now.Sub(nd.c.start).Seconds(),
		Logical: nd.logicalAt(now),
	}
	nd.c.mu.Lock()
	nd.c.pulses = append(nd.c.pulses, rec)
	nd.c.mu.Unlock()
}

// Rand implements node.Env.
func (nd *rtNode) Rand() *rand.Rand { return nd.rng }

// RealTime implements node.Env.
func (nd *rtNode) RealTime() float64 { return time.Since(nd.c.start).Seconds() }
