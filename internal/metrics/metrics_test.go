package metrics

import (
	"math"
	"testing"

	"optsync/internal/node"
	"optsync/internal/probe"
)

type idleProto struct{}

func (idleProto) Start(node.Env)                          {}
func (idleProto) Deliver(node.Env, node.ID, node.Message) {}

func testCluster(n int) *node.Cluster {
	c := node.NewCluster(node.Config{
		N: n, F: 0, Seed: 1,
		Protocols: func(int) node.Protocol { return idleProto{} },
	})
	c.Start()
	return c
}

func TestSkewSamplerRecordsSeries(t *testing.T) {
	c := testCluster(2)
	s := NewSkewSampler(c, []node.ID{0, 1}, 0.5)
	c.Nodes[1].SetLogical(0.3) // static offset of 0.3 between perfect clocks
	c.Run(2.6)
	if len(s.Series) != 5 {
		t.Fatalf("samples = %d, want 5", len(s.Series))
	}
	for _, smp := range s.Series {
		if math.Abs(smp.Skew-0.3) > 1e-12 {
			t.Fatalf("sample %+v, want skew 0.3", smp)
		}
	}
	if math.Abs(s.Max()-0.3) > 1e-12 {
		t.Fatalf("Max = %v", s.Max())
	}
	if got := s.Skews(); len(got) != 5 || math.Abs(got[0]-0.3) > 1e-12 {
		t.Fatalf("Skews = %v", got)
	}
}

func TestSkewSamplerStop(t *testing.T) {
	c := testCluster(2)
	s := NewSkewSampler(c, []node.ID{0, 1}, 0.5)
	c.Run(1.1)
	s.Stop()
	c.Run(5)
	if len(s.Series) != 2 {
		t.Fatalf("samples after stop = %d, want 2", len(s.Series))
	}
}

func TestSkewSamplerEmptyMax(t *testing.T) {
	c := testCluster(1)
	s := NewSkewSampler(c, []node.ID{0}, 1)
	if s.Max() != 0 {
		t.Fatalf("Max with no samples = %v", s.Max())
	}
}

func pulses() []node.PulseRecord {
	return []node.PulseRecord{
		{Node: 0, Round: 1, Real: 1.00, Logical: 1.1},
		{Node: 1, Round: 1, Real: 1.02, Logical: 1.1},
		{Node: 0, Round: 2, Real: 2.00, Logical: 2.1},
		{Node: 1, Round: 2, Real: 2.05, Logical: 2.1},
		{Node: 2, Round: 2, Real: 2.50, Logical: 2.1}, // faulty fake
	}
}

func TestPulseReportGrouping(t *testing.T) {
	rep := NewPulseReport(pulses(), []node.ID{0, 1})
	if len(rep.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	r1 := rep.Rounds[0]
	if r1.Round != 1 || r1.Count != 2 || math.Abs(r1.Spread-0.02) > 1e-12 {
		t.Fatalf("round 1 = %+v", r1)
	}
	r2 := rep.Rounds[1]
	// Faulty node 2's record must be excluded.
	if r2.Count != 2 || math.Abs(r2.Spread-0.05) > 1e-12 {
		t.Fatalf("round 2 = %+v", r2)
	}
	if got := rep.MaxSpread(2); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("MaxSpread = %v", got)
	}
	if got := rep.CompleteRounds(2); got != 2 {
		t.Fatalf("CompleteRounds = %d", got)
	}
	if got := rep.CompleteRounds(3); got != 0 {
		t.Fatalf("CompleteRounds(3) = %d", got)
	}
}

func TestPulseReportPeriods(t *testing.T) {
	rep := NewPulseReport(pulses(), []node.ID{0, 1})
	got := rep.Periods()
	if len(got) != 2 {
		t.Fatalf("periods = %v", got)
	}
	want := map[float64]bool{1.0: true, 1.03: true}
	for _, p := range got {
		matched := false
		for w := range want {
			if math.Abs(p-w) < 1e-9 {
				matched = true
			}
		}
		if !matched {
			t.Fatalf("unexpected period %v", p)
		}
	}
}

func TestMaxSpreadIgnoresIncompleteRounds(t *testing.T) {
	ps := []node.PulseRecord{
		{Node: 0, Round: 1, Real: 1.0},
		{Node: 1, Round: 1, Real: 1.1},
		{Node: 0, Round: 2, Real: 9.0}, // node 1 hasn't accepted round 2 yet
	}
	rep := NewPulseReport(ps, []node.ID{0, 1})
	if got := rep.MaxSpread(2); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MaxSpread = %v, want 0.1", got)
	}
}

func TestEnvelopeRatesPerfectClock(t *testing.T) {
	// Pulses exactly at real time k (rate 1 clock), value k*P with P=1.
	var ps []node.PulseRecord
	for k := 1; k <= 10; k++ {
		ps = append(ps, node.PulseRecord{Node: 0, Round: k, Real: float64(k), Logical: float64(k)})
		ps = append(ps, node.PulseRecord{Node: 1, Round: k, Real: float64(k) * 1.01, Logical: float64(k)})
	}
	lo, hi, err := EnvelopeRates(ps, []node.ID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1/1.01) > 1e-9 {
		t.Fatalf("lo = %v, want %v", lo, 1/1.01)
	}
	if math.Abs(hi-1) > 1e-9 {
		t.Fatalf("hi = %v, want 1", hi)
	}
}

func TestEnvelopeRatesErrors(t *testing.T) {
	if _, _, err := EnvelopeRates(nil, []node.ID{0}); err == nil {
		t.Fatal("no data accepted")
	}
	ps := []node.PulseRecord{{Node: 0, Round: 1, Real: 1}}
	if _, _, err := EnvelopeRates(ps, []node.ID{0}); err == nil {
		t.Fatal("single point accepted")
	}
}

// --- probe emission and edge cases ---

// TestSkewSamplerEmitsProbeEvents: every tick goes to the engine bus with
// the sampled node count and skew, whether or not the series is retained.
func TestSkewSamplerEmitsProbeEvents(t *testing.T) {
	c := testCluster(2)
	s := NewSkewSampler(c, []node.ID{0, 1}, 0.5)
	s.DiscardSeries()
	var got []probe.Event
	c.Engine.Probes().Attach(probe.Func(func(ev probe.Event) {
		got = append(got, ev)
	}), probe.TypeSkewSample)
	c.Nodes[1].SetLogical(0.3)
	c.Run(2.6)
	if len(s.Series) != 0 {
		t.Fatalf("DiscardSeries retained %d samples", len(s.Series))
	}
	if len(got) != 5 {
		t.Fatalf("bus saw %d skew samples, want 5", len(got))
	}
	for _, ev := range got {
		if ev.Round != 2 || math.Abs(ev.Value-0.3) > 1e-12 || ev.From != -1 {
			t.Fatalf("event = %+v", ev)
		}
	}
}

// TestSkewSamplerStopBeforeFirstTick: stopping before the first interval
// elapses must record nothing and leave no stray events firing.
func TestSkewSamplerStopBeforeFirstTick(t *testing.T) {
	c := testCluster(2)
	s := NewSkewSampler(c, []node.ID{0, 1}, 1.0)
	events := 0
	c.Engine.Probes().Attach(probe.Func(func(probe.Event) { events++ }), probe.TypeSkewSample)
	c.Run(0.5)
	s.Stop()
	c.Run(10)
	if len(s.Series) != 0 || events != 0 {
		t.Fatalf("stopped-before-first-tick sampler recorded %d samples, %d events",
			len(s.Series), events)
	}
	if s.Max() != 0 {
		t.Fatalf("Max = %v", s.Max())
	}
}

// TestBootedSamplerZeroBootedNodes: with every correct node booting late,
// early ticks sample an empty id set — the skew must be 0, not a panic,
// and the tick must still be recorded (liveness of the sampling loop).
func TestBootedSamplerZeroBootedNodes(t *testing.T) {
	c := node.NewCluster(node.Config{
		N: 2, F: 0, Seed: 1,
		Protocols: func(int) node.Protocol { return idleProto{} },
		StartAt:   map[int]float64{0: 5, 1: 5},
	})
	c.Start()
	s := NewBootedSkewSampler(c, 1.0)
	c.Run(3.5)
	if len(s.Series) != 3 {
		t.Fatalf("samples = %d, want 3", len(s.Series))
	}
	for _, smp := range s.Series {
		if smp.Skew != 0 {
			t.Fatalf("pre-boot sample %+v, want zero skew", smp)
		}
	}
	if s.Max() != 0 {
		t.Fatalf("Max = %v", s.Max())
	}
}

// TestSkewSamplerPastHorizon: Engine.Run(until) advances time to the
// horizon even when the last tick lands beyond it; the sampler must not
// record a sample past the last processed tick, and resuming the engine
// must resume sampling without a gap.
func TestSkewSamplerPastHorizon(t *testing.T) {
	c := testCluster(2)
	s := NewSkewSampler(c, []node.ID{0, 1}, 1.0)
	c.Run(2.5) // ticks at 1.0 and 2.0; the 3.0 tick is pending
	if len(s.Series) != 2 {
		t.Fatalf("samples = %d, want 2", len(s.Series))
	}
	if last := s.Series[len(s.Series)-1].T; last > 2.5 {
		t.Fatalf("sample recorded at %v, past the horizon", last)
	}
	c.Run(4.5) // pending tick fires at 3.0, then 4.0
	if len(s.Series) != 4 {
		t.Fatalf("samples after resume = %d, want 4", len(s.Series))
	}
	if got := s.Series[2].T; math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("resumed tick at %v, want 3.0 (no gap, no drift)", got)
	}
}
