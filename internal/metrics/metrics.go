// Package metrics turns raw simulation output (clock samples, pulse
// records) into the quantities the experiments report: skew time series,
// per-round acceptance spreads, per-node pulse periods, and clock-envelope
// rates.
package metrics

import (
	"sort"

	"optsync/internal/analysis"
	"optsync/internal/node"
	"optsync/internal/probe"
)

// Sample is one skew observation. It is the probe-layer sample type: a
// retained series and a replayed trace describe skew identically.
type Sample = probe.Sample

// SkewSampler periodically measures the skew among a fixed node set (or,
// for staggered boots, among whichever correct nodes have booted by each
// tick). Every tick emits a probe.TypeSkewSample event on the cluster
// engine's bus; unless DiscardSeries is called the sample is also
// appended to Series, the pre-probe in-memory surface.
type SkewSampler struct {
	Series []Sample

	cluster  *node.Cluster
	ids      []node.ID
	booted   bool
	interval float64
	stopped  bool
	discard  bool
}

// NewSkewSampler installs a recurring sampling event on the cluster's
// engine that records the skew over ids every interval, starting one
// interval from now. Sampling continues until Stop (samples are generated
// lazily as the engine runs).
func NewSkewSampler(c *node.Cluster, ids []node.ID, interval float64) *SkewSampler {
	s := &SkewSampler{cluster: c, ids: ids, interval: interval}
	s.arm()
	return s
}

// NewBootedSkewSampler records the skew over the correct nodes that have
// booted by each tick — the right measure when StartAt staggers boots: an
// offline node has no meaningful logical clock to compare yet.
func NewBootedSkewSampler(c *node.Cluster, interval float64) *SkewSampler {
	s := &SkewSampler{cluster: c, booted: true, interval: interval}
	s.arm()
	return s
}

func (s *SkewSampler) arm() {
	_, err := s.cluster.Engine.After(s.interval, func() {
		if s.stopped {
			return
		}
		ids := s.ids
		if s.booted {
			ids = s.cluster.CorrectIDs()
		}
		now := s.cluster.Engine.Now()
		skew := s.cluster.Skew(ids)
		if !s.discard {
			s.Series = append(s.Series, Sample{T: now, Skew: skew})
		}
		if bus := s.cluster.Engine.Probes(); bus.Active(probe.TypeSkewSample) {
			bus.Emit(probe.Event{
				Type: probe.TypeSkewSample, From: -1, To: -1,
				Round: int32(len(ids)), T: now, Value: skew,
			})
		}
		s.arm()
	})
	if err != nil {
		s.cluster.Engine.Fatalf("metrics: invalid sampling interval %v: %v", s.interval, err)
	}
}

// Stop ends sampling.
func (s *SkewSampler) Stop() { s.stopped = true }

// DiscardSeries stops retaining samples in Series: the sampler becomes a
// pure probe-event driver and its memory stays O(1) regardless of the
// horizon. Collectors on the bus (probe.SkewStats, probe.Series) take
// over retention policy — this is what the harness does.
func (s *SkewSampler) DiscardSeries() { s.discard = true }

// Max returns the maximum observed skew (0 if no samples).
func (s *SkewSampler) Max() float64 {
	max := 0.0
	for _, smp := range s.Series {
		if smp.Skew > max {
			max = smp.Skew
		}
	}
	return max
}

// Skews returns the raw skew values (for summaries).
func (s *SkewSampler) Skews() []float64 {
	out := make([]float64, len(s.Series))
	for i, smp := range s.Series {
		out[i] = smp.Skew
	}
	return out
}

// RoundStat describes one resynchronization round across correct nodes.
type RoundStat struct {
	Round  int
	First  float64 // earliest acceptance (real time)
	Last   float64 // latest acceptance (real time)
	Count  int     // number of nodes that accepted
	Spread float64 // Last - First
}

// PulseReport aggregates a cluster's pulse records.
type PulseReport struct {
	Rounds []RoundStat
	// ByNode maps node -> acceptance real times in round order.
	ByNode map[node.ID][]float64
}

// NewPulseReport groups pulses by round and node. Records from nodes not in
// ids (e.g. faulty nodes that fake pulses) are ignored.
func NewPulseReport(pulses []node.PulseRecord, ids []node.ID) *PulseReport {
	included := make(map[node.ID]bool, len(ids))
	for _, id := range ids {
		included[id] = true
	}
	byRound := make(map[int]*RoundStat)
	rep := &PulseReport{ByNode: make(map[node.ID][]float64)}
	for _, p := range pulses {
		if !included[p.Node] {
			continue
		}
		rs := byRound[p.Round]
		if rs == nil {
			rs = &RoundStat{Round: p.Round, First: p.Real, Last: p.Real}
			byRound[p.Round] = rs
		}
		if p.Real < rs.First {
			rs.First = p.Real
		}
		if p.Real > rs.Last {
			rs.Last = p.Real
		}
		rs.Count++
		rep.ByNode[p.Node] = append(rep.ByNode[p.Node], p.Real)
	}
	for _, rs := range byRound {
		rs.Spread = rs.Last - rs.First
		rep.Rounds = append(rep.Rounds, *rs)
	}
	sort.Slice(rep.Rounds, func(i, j int) bool { return rep.Rounds[i].Round < rep.Rounds[j].Round })
	return rep
}

// MaxSpread returns the maximum acceptance spread over complete rounds
// (rounds in which want nodes accepted); incomplete trailing rounds are
// excluded because their spread is not yet final.
func (r *PulseReport) MaxSpread(want int) float64 {
	max := 0.0
	for _, rs := range r.Rounds {
		if rs.Count == want && rs.Spread > max {
			max = rs.Spread
		}
	}
	return max
}

// CompleteRounds counts rounds accepted by exactly want nodes.
func (r *PulseReport) CompleteRounds(want int) int {
	n := 0
	for _, rs := range r.Rounds {
		if rs.Count == want {
			n++
		}
	}
	return n
}

// Periods returns all per-node gaps between consecutive pulses, in
// ascending node order (map iteration order must not reach the returned
// slice: downstream consumers may be order-sensitive).
func (r *PulseReport) Periods() []float64 {
	ids := make([]node.ID, 0, len(r.ByNode))
	for id := range r.ByNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []float64
	for _, id := range ids {
		sorted := append([]float64(nil), r.ByNode[id]...)
		sort.Float64s(sorted)
		for i := 1; i < len(sorted); i++ {
			out = append(out, sorted[i]-sorted[i-1])
		}
	}
	return out
}

// EnvelopeRates fits, per node, the logical clock value adopted at each
// pulse against the real acceptance time, and returns the minimum and
// maximum slope across nodes. For an algorithm with optimal accuracy these
// slopes lie within the hardware envelope [1/(1+rho), 1+rho] (plus the
// analytic slack); for sub-optimal algorithms under attack they escape it.
func EnvelopeRates(pulses []node.PulseRecord, ids []node.ID) (lo, hi float64, err error) {
	included := make(map[node.ID]bool, len(ids))
	for _, id := range ids {
		included[id] = true
	}
	xs := make(map[node.ID][]float64)
	ys := make(map[node.ID][]float64)
	for _, p := range pulses {
		if !included[p.Node] {
			continue
		}
		xs[p.Node] = append(xs[p.Node], p.Real)
		ys[p.Node] = append(ys[p.Node], p.Logical)
	}
	first := true
	for id := range xs {
		fit, ferr := analysis.LinearFit(xs[id], ys[id])
		if ferr != nil {
			return 0, 0, ferr
		}
		if first {
			lo, hi = fit.Slope, fit.Slope
			first = false
			continue
		}
		if fit.Slope < lo {
			lo = fit.Slope
		}
		if fit.Slope > hi {
			hi = fit.Slope
		}
	}
	if first {
		return 0, 0, errNoData
	}
	return lo, hi, nil
}

type noDataError struct{}

func (noDataError) Error() string { return "metrics: no pulse data for envelope fit" }

var errNoData = noDataError{}
