// Package lockstep turns the pulse synchronization protocol into a
// synchronous round simulator — the application the paper (and the
// literature around it) motivates clock synchronization with: once clocks
// agree within S and pulses are at least S + dmax of real time apart,
// every message sent at a correct process's pulse k arrives before any
// correct process's pulse k+1, so the pulses delimit lock-step rounds and
// any synchronous algorithm can run on top, Byzantine faults included.
//
// The synchronizer wraps the authenticated ST protocol: synchronization
// traffic (RoundMessage/AwakeMessage) and application traffic (Envelope)
// share the channel and are demultiplexed here. Applications implement the
// App interface; at each pulse they receive everything sent at the
// previous pulse and emit messages for the next round.
package lockstep

import (
	"fmt"

	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
)

// AppMessage is an opaque application payload.
type AppMessage any

// Outgoing is one application message with its destination; Broadcast
// sends to all processes.
type Outgoing struct {
	To        node.ID
	Broadcast bool
	Payload   AppMessage
}

// Incoming is a received application message.
type Incoming struct {
	From    node.ID
	Payload AppMessage
}

// App is a synchronous round-based algorithm.
type App interface {
	// FirstRound runs at the process's first pulse and returns the
	// messages for round 1.
	FirstRound(env node.Env) []Outgoing
	// Round runs at pulse k+1 with all round-k messages received from
	// distinct processes; it returns the messages for round k+1.
	// Duplicate messages from one sender within a round are dropped
	// (authenticated channels let us attribute senders).
	Round(env node.Env, round int, in []Incoming) []Outgoing
}

// KindApp tags application traffic: envelope.Round is the lock-step
// round, the payload the opaque application message.
var KindApp = network.NewKind("lockstep/app")

// Envelope assembles the wire format for application traffic.
func Envelope(round int, payload AppMessage) node.Message {
	return node.Message{Kind: KindApp, Round: round, Payload: payload}
}

// Protocol combines the synchronizer with an application.
type Protocol struct {
	sync *core.AuthProtocol
	app  App

	started  bool
	curRound int
	// inbox[k] holds round-k messages, at most one per sender.
	inbox map[int]map[node.ID]AppMessage
	order map[int][]node.ID // deterministic delivery order
}

var _ node.Protocol = (*Protocol)(nil)

// MinPeriod returns the smallest pulse period that makes the lock-step
// guarantee hold for the given deployment: pulses must be at least
// skew + dmax of real time apart.
func MinPeriod(p bounds.Params) float64 {
	return p.DmaxWithStart() + p.DMax
}

// New builds a lock-step protocol over the authenticated synchronizer.
// The caller must ensure cfg's period satisfies MinPeriod (checked against
// params by NewChecked).
func New(cfg core.Config, app App) *Protocol {
	return &Protocol{
		sync:  core.NewAuth(cfg),
		app:   app,
		inbox: make(map[int]map[node.ID]AppMessage),
		order: make(map[int][]node.ID),
	}
}

// NewChecked is New plus a validation that the parameterization delivers
// the lock-step guarantee.
func NewChecked(p bounds.Params, app App) (*Protocol, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Pmin() < MinPeriod(p) {
		return nil, fmt.Errorf("lockstep: Pmin %v < required %v (skew + dmax)",
			p.Pmin(), MinPeriod(p))
	}
	return New(core.ConfigFromBounds(p), app), nil
}

// Rounds returns the highest completed application round.
func (p *Protocol) Rounds() int { return p.curRound }

// Start implements node.Protocol.
func (p *Protocol) Start(env node.Env) {
	p.sync.OnAccept = func(k int) { p.onPulse(env, k) }
	p.sync.Start(env)
}

// Deliver implements node.Protocol.
func (p *Protocol) Deliver(env node.Env, from node.ID, msg node.Message) {
	if msg.Kind == KindApp {
		set := p.inbox[msg.Round]
		if set == nil {
			set = make(map[node.ID]AppMessage)
			p.inbox[msg.Round] = set
		}
		if _, dup := set[from]; dup {
			return // one message per sender per round
		}
		set[from] = msg.Payload
		p.order[msg.Round] = append(p.order[msg.Round], from)
		return
	}
	p.sync.Deliver(env, from, msg)
}

// onPulse runs at each accepted synchronization round.
func (p *Protocol) onPulse(env node.Env, k int) {
	var out []Outgoing
	if !p.started {
		p.started = true
		p.curRound = k
		out = p.app.FirstRound(env)
	} else {
		in := p.collect(p.curRound)
		p.curRound = k
		out = p.app.Round(env, k, in)
	}
	for _, o := range out {
		e := Envelope(k, o.Payload)
		if o.Broadcast {
			env.Broadcast(e)
		} else {
			env.Send(o.To, e)
		}
	}
	// Old rounds can no longer legally deliver; drop their buffers.
	for r := range p.inbox {
		if r < k {
			delete(p.inbox, r)
			delete(p.order, r)
		}
	}
}

// collect drains round r's inbox in arrival order.
func (p *Protocol) collect(r int) []Incoming {
	set := p.inbox[r]
	var in []Incoming
	for _, from := range p.order[r] {
		in = append(in, Incoming{From: from, Payload: set[from]})
	}
	delete(p.inbox, r)
	delete(p.order, r)
	return in
}
