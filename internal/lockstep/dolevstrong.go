package lockstep

import (
	"encoding/binary"
	"sort"

	"optsync/internal/node"
	"optsync/internal/sig"
)

// DolevStrong is the classic authenticated Byzantine broadcast (Dolev &
// Strong 1983) implemented as a lock-step App — the canonical "synchronous
// algorithm run on top of synchronized clocks" that the paper's
// introduction motivates. With signatures it tolerates any number of
// faulty processes for consistency; termination takes f+1 rounds.
//
// Round structure (value space: uint64):
//
//	round 1:    the dealer signs its value and broadcasts it.
//	round r<=f+1: on receiving a value with r-1 distinct valid signatures
//	            (the dealer's first), a process adds the value to its
//	            extracted set, appends its own signature, and broadcasts.
//	after round f+1: decide — the single extracted value, or the default
//	            if zero or multiple values were extracted (an equivocating
//	            dealer yields the same default everywhere).
type DolevStrong struct {
	Dealer node.ID
	// Value is the dealer's input (ignored on other processes).
	Value uint64
	// F is the number of tolerated faults; deciding takes F+1 rounds.
	F int
	// Default is decided when the dealer equivocates or stays silent.
	Default uint64

	extracted map[uint64][]chainEntry // value -> best signature chain seen
	sent      map[uint64]bool
	decided   bool
	decision  uint64
	round     int

	// OnDecide, if set, observes the decision.
	OnDecide func(value uint64)
}

var _ App = (*DolevStrong)(nil)

type chainEntry struct {
	Signer node.ID
	Sig    sig.Signature
}

// dsMessage carries a value and its signature chain.
type dsMessage struct {
	Value uint64
	Chain []chainEntry
}

func dsPayload(dealer node.ID, value uint64) []byte {
	const prefix = "optsync/dolev-strong/"
	buf := make([]byte, len(prefix)+16)
	copy(buf, prefix)
	binary.BigEndian.PutUint64(buf[len(prefix):], uint64(int64(dealer)))
	binary.BigEndian.PutUint64(buf[len(prefix)+8:], value)
	return buf
}

// Decided reports whether and what the process decided.
func (d *DolevStrong) Decided() (uint64, bool) { return d.decision, d.decided }

// NewDSMessage builds a round-1 Dolev-Strong message signed by env's key
// in dealer's name (meaningful only when env.ID() == dealer, since
// signatures are per-identity). Exported so adversarial dealers in
// examples and tests can equivocate — the model lets a Byzantine process
// sign whatever it likes with its own key.
func NewDSMessage(env node.Env, dealer node.ID, value uint64) AppMessage {
	return dsMessage{Value: value, Chain: []chainEntry{
		{Signer: dealer, Sig: env.Sign(dsPayload(dealer, value))},
	}}
}

// FirstRound implements App.
func (d *DolevStrong) FirstRound(env node.Env) []Outgoing {
	d.extracted = make(map[uint64][]chainEntry)
	d.sent = make(map[uint64]bool)
	d.round = 1
	if env.ID() != d.Dealer {
		return nil
	}
	chain := []chainEntry{{Signer: env.ID(), Sig: env.Sign(dsPayload(d.Dealer, d.Value))}}
	d.extracted[d.Value] = chain
	d.sent[d.Value] = true
	return []Outgoing{{Broadcast: true, Payload: dsMessage{Value: d.Value, Chain: chain}}}
}

// Round implements App.
func (d *DolevStrong) Round(env node.Env, _ int, in []Incoming) []Outgoing {
	if d.decided {
		return nil
	}
	d.round++
	var out []Outgoing
	for _, m := range in {
		msg, ok := m.Payload.(dsMessage)
		if !ok {
			continue
		}
		if !d.validChain(env, msg) {
			continue
		}
		if _, seen := d.extracted[msg.Value]; seen {
			continue
		}
		d.extracted[msg.Value] = msg.Chain
		if d.sent[msg.Value] || d.round > d.F+1 {
			continue
		}
		// Relay with our signature appended.
		chain := append(append([]chainEntry(nil), msg.Chain...), chainEntry{
			Signer: env.ID(),
			Sig:    env.Sign(dsPayload(d.Dealer, msg.Value)),
		})
		d.sent[msg.Value] = true
		out = append(out, Outgoing{Broadcast: true, Payload: dsMessage{Value: msg.Value, Chain: chain}})
	}
	if d.round == d.F+2 { // rounds 1..F+1 are over: decide
		d.decide()
	}
	return out
}

// validChain checks a message received in round d.round: it needs at least
// d.round-1 distinct signers, the dealer first, all signatures valid.
func (d *DolevStrong) validChain(env node.Env, m dsMessage) bool {
	need := d.round - 1
	if len(m.Chain) < need || len(m.Chain) == 0 {
		return false
	}
	if m.Chain[0].Signer != d.Dealer {
		return false
	}
	payload := dsPayload(d.Dealer, m.Value)
	seen := make(map[node.ID]bool, len(m.Chain))
	for _, e := range m.Chain {
		if seen[e.Signer] {
			return false // duplicate signer in chain
		}
		seen[e.Signer] = true
		if !env.Verify(e.Signer, payload, e.Sig) {
			return false
		}
	}
	return true
}

func (d *DolevStrong) decide() {
	d.decided = true
	values := make([]uint64, 0, len(d.extracted))
	for v := range d.extracted {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	if len(values) == 1 {
		d.decision = values[0]
	} else {
		d.decision = d.Default // silent or equivocating dealer
	}
	if d.OnDecide != nil {
		d.OnDecide(d.decision)
	}
}
