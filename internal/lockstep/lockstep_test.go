package lockstep

import (
	"math/rand"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
)

func lockstepParams(n int) bounds.Params {
	return bounds.Params{
		N: n, F: bounds.Auth.MaxFaults(n), Variant: bounds.Auth,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

func buildCluster(t *testing.T, p bounds.Params, protos func(i int) node.Protocol) *node.Cluster {
	t.Helper()
	return node.NewCluster(node.Config{
		N: p.N, F: p.F, Seed: 17,
		Rho:   p.Rho,
		Delay: network.Uniform{Min: p.DMin, Max: p.DMax},
		Clocks: func(i int, rng *rand.Rand) *clock.Hardware {
			return clock.NewHardware(rng.Float64()*p.InitialSkew, p.Rho,
				clock.RandomWalk{Rho: p.Rho, MinDur: p.Period / 7, MaxDur: p.Period}, rng)
		},
		Protocols: protos,
	})
}

// echoApp broadcasts the round number each round and records what arrives.
type echoApp struct {
	rounds map[int][]node.ID // round -> senders received
}

func (a *echoApp) FirstRound(env node.Env) []Outgoing {
	a.rounds = make(map[int][]node.ID)
	return []Outgoing{{Broadcast: true, Payload: "hello"}}
}

func (a *echoApp) Round(env node.Env, round int, in []Incoming) []Outgoing {
	for _, m := range in {
		a.rounds[round] = append(a.rounds[round], m.From)
	}
	return []Outgoing{{Broadcast: true, Payload: "hello"}}
}

func TestLockStepDeliversFullRounds(t *testing.T) {
	p := lockstepParams(5)
	apps := make([]*echoApp, p.N)
	cfg := core.ConfigFromBounds(p)
	c := buildCluster(t, p, func(i int) node.Protocol {
		apps[i] = &echoApp{}
		return New(cfg, apps[i])
	})
	c.Start()
	c.Run(15)
	// Every process must have received all n messages in every completed
	// round after the first: the lock-step guarantee.
	for i, a := range apps {
		checked := 0
		for round, senders := range a.rounds {
			if round < 3 || round > 12 {
				continue // skip warm-up and the in-flight tail
			}
			if len(senders) != p.N {
				t.Fatalf("node %d round %d: received %d messages, want %d",
					i, round, len(senders), p.N)
			}
			checked++
		}
		if checked < 8 {
			t.Fatalf("node %d completed only %d full rounds", i, checked)
		}
	}
}

func TestLockStepDropsDuplicateSenders(t *testing.T) {
	p := lockstepParams(5)
	cfg := core.ConfigFromBounds(p)
	app := &echoApp{}
	proto := New(cfg, app)
	c := buildCluster(t, p, func(i int) node.Protocol {
		if i == 0 {
			return proto
		}
		return New(cfg, &echoApp{})
	})
	c.Start()
	c.Run(1.5) // first pulse done
	// Inject three duplicates from sender 1 for the current round.
	k := proto.Rounds()
	before := len(proto.order[k])
	for j := 0; j < 3; j++ {
		proto.Deliver(c.Nodes[0], 1, Envelope(k, "dup"))
	}
	if got := len(proto.order[k]); got > before+1 {
		t.Fatalf("duplicates recorded: %d new entries, want at most 1", got-before)
	}
	if len(proto.order[k]) != len(proto.inbox[k]) {
		t.Fatalf("order/inbox out of sync: %d vs %d", len(proto.order[k]), len(proto.inbox[k]))
	}
}

func TestNewCheckedRejectsShortPeriod(t *testing.T) {
	p := lockstepParams(5)
	p.Period = 0.06 // Pmin < skew+dmax at these delays
	if _, err := NewChecked(p, &echoApp{}); err == nil {
		t.Fatal("short period accepted")
	}
	good := lockstepParams(5)
	if _, err := NewChecked(good, &echoApp{}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func runDolevStrong(t *testing.T, n int, dealerProto func(cfg core.Config, p bounds.Params) node.Protocol, silentFaults int) []*DolevStrong {
	t.Helper()
	p := lockstepParams(n)
	cfg := core.ConfigFromBounds(p)
	apps := make([]*DolevStrong, n)
	c := buildCluster(t, p, func(i int) node.Protocol {
		if i == 0 && dealerProto != nil {
			return dealerProto(cfg, p)
		}
		if i >= n-silentFaults {
			return silentProto{}
		}
		apps[i] = &DolevStrong{Dealer: 0, Value: 42, F: p.F, Default: 99}
		return New(cfg, apps[i])
	})
	c.Start()
	c.Run(float64(p.F+6) * p.Period)
	return apps
}

type silentProto struct{}

func (silentProto) Start(node.Env)                          {}
func (silentProto) Deliver(node.Env, node.ID, node.Message) {}

func TestDolevStrongHonestDealer(t *testing.T) {
	apps := runDolevStrong(t, 5, nil, 0)
	for i, a := range apps {
		if a == nil {
			continue
		}
		v, ok := a.Decided()
		if !ok {
			t.Fatalf("node %d did not decide", i)
		}
		if v != 42 {
			t.Fatalf("node %d decided %d, want 42", i, v)
		}
	}
}

func TestDolevStrongHonestDealerWithSilentFaults(t *testing.T) {
	// n=5, f=2: two non-dealer processes crash; the rest still decide 42.
	apps := runDolevStrong(t, 5, nil, 2)
	for i, a := range apps {
		if a == nil {
			continue
		}
		v, ok := a.Decided()
		if !ok {
			t.Fatalf("node %d did not decide", i)
		}
		if v != 42 {
			t.Fatalf("node %d decided %d, want 42", i, v)
		}
	}
}

// equivocatingDealer participates in the synchronizer correctly but sends
// value 7 to the first half and value 8 to the second half in round 1.
type equivocatingDealer struct {
	sync *core.AuthProtocol
	sent bool
}

func (d *equivocatingDealer) Start(env node.Env) {
	d.sync.OnAccept = func(k int) { d.onPulse(env, k) }
	d.sync.Start(env)
}

func (d *equivocatingDealer) Deliver(env node.Env, from node.ID, msg node.Message) {
	if msg.Kind == KindApp {
		return
	}
	d.sync.Deliver(env, from, msg)
}

func (d *equivocatingDealer) onPulse(env node.Env, k int) {
	if d.sent {
		return
	}
	d.sent = true
	for _, value := range []uint64{7, 8} {
		chain := []chainEntry{{Signer: env.ID(), Sig: env.Sign(dsPayload(env.ID(), value))}}
		msg := Envelope(k, dsMessage{Value: value, Chain: chain})
		for to := 0; to < env.N(); to++ {
			if (to%2 == 0) == (value == 7) {
				env.Send(to, msg)
			}
		}
	}
}

func TestDolevStrongEquivocatingDealer(t *testing.T) {
	apps := runDolevStrong(t, 5, func(cfg core.Config, p bounds.Params) node.Protocol {
		return &equivocatingDealer{sync: core.NewAuth(cfg)}
	}, 0)
	var first uint64
	decided := 0
	for i, a := range apps {
		if a == nil {
			continue
		}
		v, ok := a.Decided()
		if !ok {
			t.Fatalf("node %d did not decide", i)
		}
		if decided == 0 {
			first = v
		} else if v != first {
			t.Fatalf("consistency violated: node %d decided %d, others %d", i, v, first)
		}
		decided++
	}
	if decided < 4 {
		t.Fatalf("only %d nodes decided", decided)
	}
	// With both values extracted, everyone lands on the default.
	if first != 99 {
		t.Fatalf("decided %d, want default 99 under equivocation", first)
	}
}

func TestDolevStrongSilentDealerDecidesDefault(t *testing.T) {
	// The dealer is Byzantine-silent: nobody ever extracts a value, so
	// everyone decides the default.
	apps := runDolevStrong(t, 5, func(core.Config, bounds.Params) node.Protocol {
		return silentProto{}
	}, 0)
	for i, a := range apps {
		if a == nil {
			continue
		}
		v, ok := a.Decided()
		if !ok {
			t.Fatalf("node %d did not decide", i)
		}
		if v != 99 {
			t.Fatalf("node %d decided %d, want default 99", i, v)
		}
	}
}

func TestNewDSMessage(t *testing.T) {
	p := lockstepParams(4)
	cfg := core.ConfigFromBounds(p)
	c := buildCluster(t, p, func(i int) node.Protocol {
		return New(cfg, &DolevStrong{Dealer: 0, Value: 1, F: p.F})
	})
	c.Start()
	env := c.Nodes[0]
	msg, ok := NewDSMessage(env, 0, 77).(dsMessage)
	if !ok {
		t.Fatal("NewDSMessage returned wrong type")
	}
	if msg.Value != 77 || len(msg.Chain) != 1 || msg.Chain[0].Signer != 0 {
		t.Fatalf("message = %+v", msg)
	}
	if !env.Verify(0, dsPayload(0, 77), msg.Chain[0].Sig) {
		t.Fatal("signature does not verify")
	}
}

func TestNewCheckedRejectsInvalidResilience(t *testing.T) {
	p := lockstepParams(5)
	p.F = 3 // 2f >= n
	if _, err := NewChecked(p, &echoApp{}); err == nil {
		t.Fatal("invalid resilience accepted")
	}
}

func TestDolevStrongForgedChainsRejected(t *testing.T) {
	p := lockstepParams(4)
	cfg := core.ConfigFromBounds(p)
	app := &DolevStrong{Dealer: 2, Value: 5, F: p.F, Default: 9}
	proto := New(cfg, app)
	c := buildCluster(t, p, func(i int) node.Protocol {
		if i == 0 {
			return proto
		}
		return New(cfg, &DolevStrong{Dealer: 2, Value: 5, F: p.F, Default: 9})
	})
	c.Start()
	c.Run(1.5)
	app.round = 2 // simulate being in round 2: chains need 1 valid signer
	env := c.Nodes[0]
	bad := []dsMessage{
		{Value: 5, Chain: nil}, // empty chain
		{Value: 5, Chain: []chainEntry{{Signer: 1, Sig: []byte("x")}}}, // not dealer-first
		{Value: 5, Chain: []chainEntry{{Signer: 2, Sig: []byte("x")}}}, // bad signature
		{Value: 5, Chain: []chainEntry{ // duplicate signer
			{Signer: 2, Sig: env.Sign(dsPayload(2, 5))},
			{Signer: 2, Sig: env.Sign(dsPayload(2, 5))},
		}},
	}
	for i, m := range bad {
		if app.validChain(env, m) {
			t.Fatalf("forged chain %d accepted", i)
		}
	}
	good := dsMessage{Value: 5, Chain: []chainEntry{
		{Signer: 2, Sig: c.Nodes[2].Sign(dsPayload(2, 5))},
	}}
	if !app.validChain(env, good) {
		t.Fatal("valid chain rejected")
	}
}
