// Package clock models the clocks of the Srikanth-Toueg system: hardware
// clocks with bounded drift and logical clocks obtained from them by a
// (discontinuous) adjustment.
//
// A hardware clock is a strictly increasing, continuous, piecewise-linear
// function H mapping real time t to local time H(t). The model requires
// that for all t' >= t
//
//	(t'-t)/(1+rho) <= H(t') - H(t) <= (1+rho)(t'-t),
//
// i.e. every segment's rate lies in [1/(1+rho), 1+rho]. The adversary of the
// paper chooses these functions arbitrarily within the envelope; here they
// are built from pluggable segment generators (constant, random-walk,
// adversarial extremes, scripted).
//
// Clocks extend lazily: generators are consulted on demand when a read or
// inversion goes past the currently materialized horizon, with all
// randomness drawn from an injected deterministic source.
package clock

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Generator produces successive clock segments. Implementations must be
// deterministic given the random source passed to them.
type Generator interface {
	// NextSegment returns the real-time duration of the next segment and
	// the clock rate during it. Duration must be positive and the rate
	// must lie in the drift envelope of the clock using the generator.
	NextSegment(rng *rand.Rand) (dur, rate float64)
}

// Hardware is a piecewise-linear hardware clock.
type Hardware struct {
	// Breakpoints: H(ts[i]) = hs[i]; on [ts[i], ts[i+1]) the rate is rates[i].
	ts    []float64
	hs    []float64
	rates []float64

	gen Generator
	rng *rand.Rand

	minRate, maxRate float64
}

// Rho is a drift bound. MinRate and MaxRate convert it to the rate envelope
// used throughout the paper: rates in [1/(1+rho), 1+rho].
type Rho float64

// MinRate returns the slowest admissible clock rate, 1/(1+rho).
func (r Rho) MinRate() float64 { return 1 / (1 + float64(r)) }

// MaxRate returns the fastest admissible clock rate, 1+rho.
func (r Rho) MaxRate() float64 { return 1 + float64(r) }

// RelativeDrift returns the maximum rate at which two correct hardware
// clocks can drift apart: (1+rho) - 1/(1+rho).
func (r Rho) RelativeDrift() float64 { return r.MaxRate() - r.MinRate() }

// NewHardware builds a clock that reads offset at real time 0 and evolves
// according to gen. The rng must be dedicated to this clock (derive it from
// the engine's seed). rho bounds the admissible rates; NewHardware panics if
// a generator ever emits a rate outside [1/(1+rho), 1+rho] or a non-positive
// duration, since that would violate the model rather than be a runtime
// condition.
func NewHardware(offset float64, rho Rho, gen Generator, rng *rand.Rand) *Hardware {
	if gen == nil {
		gen = Constant{Rate: 1}
	}
	return &Hardware{
		ts:      []float64{0},
		hs:      []float64{offset},
		rates:   []float64{},
		gen:     gen,
		rng:     rng,
		minRate: rho.MinRate(),
		maxRate: rho.MaxRate(),
	}
}

// NewConstant is a convenience constructor for a fixed-rate clock.
func NewConstant(offset, rate float64, rho Rho) *Hardware {
	return NewHardware(offset, rho, Constant{Rate: rate}, nil)
}

// Offset returns H(0).
func (h *Hardware) Offset() float64 { return h.hs[0] }

// RateBounds returns the admissible rate envelope of this clock.
func (h *Hardware) RateBounds() (min, max float64) { return h.minRate, h.maxRate }

// extendTo materializes segments until the last breakpoint's real time is
// strictly greater than t.
func (h *Hardware) extendTo(t float64) {
	for h.ts[len(h.ts)-1] <= t {
		h.appendSegment()
	}
}

// extendToLocal materializes segments until the last breakpoint's local
// time is strictly greater than local.
func (h *Hardware) extendToLocal(local float64) {
	for h.hs[len(h.hs)-1] <= local {
		h.appendSegment()
	}
}

func (h *Hardware) appendSegment() {
	dur, rate := h.gen.NextSegment(h.rng)
	if dur <= 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
		panic(fmt.Sprintf("clock: generator emitted invalid duration %v", dur))
	}
	const slack = 1e-12 // tolerate float rounding at the envelope edge
	if rate < h.minRate-slack || rate > h.maxRate+slack {
		panic(fmt.Sprintf("clock: generator emitted rate %v outside [%v, %v]",
			rate, h.minRate, h.maxRate))
	}
	last := len(h.ts) - 1
	h.rates = append(h.rates, rate)
	h.ts = append(h.ts, h.ts[last]+dur)
	h.hs = append(h.hs, h.hs[last]+dur*rate)
}

// Read returns the local time H(t). t must be >= 0.
func (h *Hardware) Read(t float64) float64 {
	if t < 0 {
		panic(fmt.Sprintf("clock: Read(%v) before time 0", t))
	}
	h.extendTo(t)
	// Find the segment containing t: greatest i with ts[i] <= t.
	i := sort.SearchFloat64s(h.ts, t)
	if i == len(h.ts) || h.ts[i] > t {
		i--
	}
	if i == len(h.rates) {
		i-- // t exactly at the last breakpoint
	}
	return h.hs[i] + (t-h.ts[i])*h.rates[i]
}

// Invert returns the earliest real time t with H(t) >= local. For local
// values before H(0) it returns 0 (the clock already shows them or more).
func (h *Hardware) Invert(local float64) float64 {
	if local <= h.hs[0] {
		return 0
	}
	h.extendToLocal(local)
	i := sort.SearchFloat64s(h.hs, local)
	if i == len(h.hs) || h.hs[i] > local {
		i--
	}
	if i == len(h.rates) {
		i--
	}
	return h.ts[i] + (local-h.hs[i])/h.rates[i]
}

// Segments returns the number of materialized segments (for tests).
func (h *Hardware) Segments() int { return len(h.rates) }

// Constant emits an endless run of fixed-rate segments.
type Constant struct {
	// Rate is the clock rate; it must lie within the owning clock's
	// envelope.
	Rate float64
}

var _ Generator = Constant{}

// NextSegment implements Generator.
func (c Constant) NextSegment(*rand.Rand) (dur, rate float64) {
	return 1 << 20, c.Rate // effectively infinite segments
}

// RandomWalk emits segments with rates drawn uniformly from the drift
// envelope and durations drawn uniformly from [MinDur, MaxDur]. This is the
// "benign but wobbly" oscillator model.
type RandomWalk struct {
	Rho    Rho
	MinDur float64
	MaxDur float64
}

var _ Generator = RandomWalk{}

// NextSegment implements Generator.
func (w RandomWalk) NextSegment(rng *rand.Rand) (dur, rate float64) {
	lo, hi := w.Rho.MinRate(), w.Rho.MaxRate()
	rate = lo + rng.Float64()*(hi-lo)
	dur = w.MinDur + rng.Float64()*(w.MaxDur-w.MinDur)
	if dur <= 0 {
		dur = math.SmallestNonzeroFloat64
	}
	return dur, rate
}

// Extremal alternates between the fastest and slowest admissible rates with
// a fixed half-period. This is the adversarial clock schedule used in the
// paper's worst-case arguments: it maximizes divergence between a clock
// pinned fast and a clock pinned slow.
type Extremal struct {
	Rho Rho
	// HalfPeriod is the duration of each extreme phase.
	HalfPeriod float64
	// StartFast selects the initial phase.
	StartFast bool

	flipped bool
}

var _ Generator = (*Extremal)(nil)

// NextSegment implements Generator.
func (a *Extremal) NextSegment(*rand.Rand) (dur, rate float64) {
	fast := a.StartFast != a.flipped
	a.flipped = !a.flipped
	if fast {
		return a.HalfPeriod, a.Rho.MaxRate()
	}
	return a.HalfPeriod, a.Rho.MinRate()
}

// Scripted replays an explicit list of segments, then holds the final rate
// forever. It is the "adversary writes down the clock function" model used
// in lower-bound style tests.
type Scripted struct {
	Durs  []float64
	Rates []float64

	next int
}

var _ Generator = (*Scripted)(nil)

// NextSegment implements Generator.
func (s *Scripted) NextSegment(*rand.Rand) (dur, rate float64) {
	if s.next >= len(s.Durs) || s.next >= len(s.Rates) {
		last := 1.0
		if len(s.Rates) > 0 {
			last = s.Rates[len(s.Rates)-1]
		}
		return 1 << 20, last
	}
	i := s.next
	s.next++
	return s.Durs[i], s.Rates[i]
}
