package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRhoRates(t *testing.T) {
	r := Rho(0.001)
	if got := r.MaxRate(); got != 1.001 {
		t.Fatalf("MaxRate = %v, want 1.001", got)
	}
	if got := r.MinRate(); math.Abs(got-1/1.001) > 1e-15 {
		t.Fatalf("MinRate = %v, want %v", got, 1/1.001)
	}
	if got := r.RelativeDrift(); math.Abs(got-(1.001-1/1.001)) > 1e-15 {
		t.Fatalf("RelativeDrift = %v", got)
	}
}

func TestConstantClockRead(t *testing.T) {
	h := NewConstant(5, 1.5, Rho(0.5))
	cases := []struct{ t, want float64 }{
		{0, 5}, {1, 6.5}, {2, 8}, {10, 20},
	}
	for _, c := range cases {
		if got := h.Read(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Read(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestConstantClockInvert(t *testing.T) {
	h := NewConstant(5, 2, Rho(1))
	if got := h.Invert(9); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Invert(9) = %v, want 2", got)
	}
	// Local values at or before the offset map to time 0.
	if got := h.Invert(5); got != 0 {
		t.Fatalf("Invert(5) = %v, want 0", got)
	}
	if got := h.Invert(-3); got != 0 {
		t.Fatalf("Invert(-3) = %v, want 0", got)
	}
}

func TestReadRejectsNegativeTime(t *testing.T) {
	h := NewConstant(0, 1, Rho(0))
	defer func() {
		if recover() == nil {
			t.Fatal("Read(-1) did not panic")
		}
	}()
	h.Read(-1)
}

func TestScriptedSegments(t *testing.T) {
	gen := &Scripted{
		Durs:  []float64{1, 2, 1},
		Rates: []float64{1.0, 0.5, 2.0},
	}
	h := NewHardware(0, Rho(1), gen, nil)
	// H: [0,1)@1 -> 1; [1,3)@0.5 -> 2; [3,4)@2 -> 4; then rate 2 forever.
	cases := []struct{ t, want float64 }{
		{0, 0}, {0.5, 0.5}, {1, 1}, {2, 1.5}, {3, 2}, {3.5, 3}, {4, 4}, {5, 6},
	}
	for _, c := range cases {
		if got := h.Read(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Read(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Inversion across the non-uniform region.
	for _, local := range []float64{0.25, 1.0, 1.75, 2.5, 3.5, 5.5} {
		tt := h.Invert(local)
		if got := h.Read(tt); math.Abs(got-local) > 1e-9 {
			t.Fatalf("Read(Invert(%v)) = %v", local, got)
		}
	}
}

func TestGeneratorRateValidation(t *testing.T) {
	gen := &Scripted{Durs: []float64{1}, Rates: []float64{3}} // outside rho=0.1
	h := NewHardware(0, Rho(0.1), gen, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-envelope rate did not panic")
		}
	}()
	h.Read(10)
}

func TestGeneratorDurationValidation(t *testing.T) {
	gen := &Scripted{Durs: []float64{-1}, Rates: []float64{1}}
	h := NewHardware(0, Rho(0.1), gen, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive duration did not panic")
		}
	}()
	h.Read(10)
}

func TestExtremalAlternates(t *testing.T) {
	rho := Rho(0.5)
	gen := &Extremal{Rho: rho, HalfPeriod: 1, StartFast: true}
	h := NewHardware(0, rho, gen, nil)
	// First second at 1.5, second at 1/1.5.
	if got := h.Read(1); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Read(1) = %v, want 1.5", got)
	}
	want := 1.5 + 1/1.5
	if got := h.Read(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Read(2) = %v, want %v", got, want)
	}
}

func TestRandomWalkStaysInEnvelope(t *testing.T) {
	rho := Rho(0.01)
	rng := rand.New(rand.NewSource(5))
	h := NewHardware(0, rho, RandomWalk{Rho: rho, MinDur: 0.1, MaxDur: 2}, rng)
	prevT, prevH := 0.0, h.Read(0)
	for tt := 0.25; tt < 500; tt += 0.25 {
		cur := h.Read(tt)
		rate := (cur - prevH) / (tt - prevT)
		if rate < rho.MinRate()-1e-9 || rate > rho.MaxRate()+1e-9 {
			t.Fatalf("window rate %v outside envelope at t=%v", rate, tt)
		}
		prevT, prevH = tt, cur
	}
	if h.Segments() < 100 {
		t.Fatalf("expected many segments, got %d", h.Segments())
	}
}

// Property: Read is monotone non-decreasing (strictly increasing for
// positive rates) and respects the global envelope between any two times.
func TestReadMonotoneAndEnvelopeProperty(t *testing.T) {
	rho := Rho(0.05)
	f := func(seed int64, rawA, rawB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHardware(3, rho, RandomWalk{Rho: rho, MinDur: 0.05, MaxDur: 1.5}, rng)
		a, b := float64(rawA)/64, float64(rawB)/64
		if a > b {
			a, b = b, a
		}
		ha, hb := h.Read(a), h.Read(b)
		if hb < ha {
			return false
		}
		dt := b - a
		dh := hb - ha
		return dh >= dt*rho.MinRate()-1e-9 && dh <= dt*rho.MaxRate()+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Invert is a right inverse of Read wherever defined.
func TestInvertRoundTripProperty(t *testing.T) {
	rho := Rho(0.1)
	f := func(seed int64, raw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHardware(1, rho, RandomWalk{Rho: rho, MinDur: 0.05, MaxDur: 1}, rng)
		local := 1 + float64(raw)/32
		tt := h.Invert(local)
		return math.Abs(h.Read(tt)-local) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRateBounds(t *testing.T) {
	h := NewConstant(0, 1, Rho(0.25))
	lo, hi := h.RateBounds()
	if hi != 1.25 || math.Abs(lo-0.8) > 1e-12 {
		t.Fatalf("RateBounds = (%v, %v)", lo, hi)
	}
	if h.Offset() != 0 {
		t.Fatalf("Offset = %v", h.Offset())
	}
}
