package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSlewedValidatesSigma(t *testing.T) {
	hw := NewConstant(0, 1, Rho(0))
	for _, sigma := range []float64{0, -0.5, 1, 2} {
		sigma := sigma
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("sigma=%v accepted", sigma)
				}
			}()
			NewSlewed(hw, sigma)
		}()
	}
	if l := NewSlewed(hw, 0.25); l.Sigma() != 0.25 || l.Hardware() != hw {
		t.Fatal("accessors wrong")
	}
}

func TestSlewReachesTargetGradually(t *testing.T) {
	hw := NewConstant(0, 1, Rho(0))
	l := NewSlewed(hw, 0.1) // 0.1 logical units per local unit
	if got := l.Read(5); got != 5 {
		t.Fatalf("pre-adjust Read = %v", got)
	}
	// At t=10 request +1: slew takes 10 local units.
	delta := l.SetAt(10, 11)
	if delta != 1 {
		t.Fatalf("delta = %v", delta)
	}
	if got := l.Read(10); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Read at slew start = %v, want 10 (no jump)", got)
	}
	if got := l.Read(15); math.Abs(got-15.5) > 1e-12 {
		t.Fatalf("Read mid-slew = %v, want 15.5", got)
	}
	if !l.Slewing(15) {
		t.Fatal("Slewing(15) = false")
	}
	if got := l.Read(20); math.Abs(got-21) > 1e-12 {
		t.Fatalf("Read at slew end = %v, want 21", got)
	}
	if l.Slewing(20.001) {
		t.Fatal("Slewing after completion")
	}
	if got := l.Read(25); math.Abs(got-26) > 1e-12 {
		t.Fatalf("Read after slew = %v, want 26", got)
	}
	if got := l.Adjustment(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Adjustment = %v, want 1", got)
	}
	if l.Jumps() != 1 || len(l.History()) != 1 {
		t.Fatal("history wrong")
	}
}

func TestSlewNegativeAdjustmentStaysMonotone(t *testing.T) {
	hw := NewConstant(0, 1, Rho(0))
	l := NewSlewed(hw, 0.5)
	l.SetAt(10, 8) // request -2: slew over 4 local units at rate -0.5
	prev := math.Inf(-1)
	for tt := 9.0; tt <= 16; tt += 0.125 {
		got := l.Read(tt)
		if got <= prev {
			t.Fatalf("clock not strictly increasing at t=%v: %v <= %v", tt, got, prev)
		}
		prev = got
	}
	if got := l.Read(14); math.Abs(got-12) > 1e-12 {
		t.Fatalf("Read(14) = %v, want 12 (slew done)", got)
	}
}

func TestSlewTruncationMidSlew(t *testing.T) {
	hw := NewConstant(0, 1, Rho(0))
	l := NewSlewed(hw, 0.1)
	l.SetAt(10, 11) // +1 over 10 units
	// Halfway (adj = +0.5), re-target to current trajectory -0.5:
	// at t=15 clock reads 15.5; request it to read 15.0.
	l.SetAt(15, 15)
	if got := l.Read(15); math.Abs(got-15.5) > 1e-12 {
		t.Fatalf("Read at retarget = %v, want 15.5 (continuous)", got)
	}
	// New slew: adj from +0.5 to 0.0 over 5 units.
	if got := l.Read(20); math.Abs(got-20) > 1e-12 {
		t.Fatalf("Read(20) = %v, want 20", got)
	}
	if got := l.Read(30); math.Abs(got-30) > 1e-12 {
		t.Fatalf("Read(30) = %v, want 30", got)
	}
}

func TestSlewWhenReads(t *testing.T) {
	hw := NewConstant(0, 1, Rho(0))
	l := NewSlewed(hw, 0.1)
	l.SetAt(10, 11)
	// During the slew C(t) = t + 0.1*(t-10) for t in [10,20]:
	// C = 15.5 at t = 15; after, C = t+1.
	cases := []struct{ value, want float64 }{
		{5, 5},     // before any adjustment
		{15.5, 15}, // mid-slew
		{21, 20},   // slew end
		{26, 25},   // after slew
	}
	for _, c := range cases {
		if got := l.WhenReads(c.value); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("WhenReads(%v) = %v, want %v", c.value, got, c.want)
		}
	}
}

func TestSlewWhenReadsWithDriftingHardware(t *testing.T) {
	hw := NewConstant(0, 2, Rho(1)) // rate-2 clock
	l := NewSlewed(hw, 0.2)
	l.SetAt(1, 3) // at t=1 H=2, request C=3: +1 over 5 local = 2.5 real
	for _, value := range []float64{1.5, 2.5, 4.0, 7.0, 20.0} {
		tt := l.WhenReads(value)
		if got := l.Read(tt); math.Abs(got-value) > 1e-9 {
			t.Fatalf("Read(WhenReads(%v)) = %v", value, got)
		}
	}
}

// Property: slewed clocks are strictly monotone and continuous under any
// sequence of adjustment requests.
func TestSlewMonotoneProperty(t *testing.T) {
	rho := Rho(0.01)
	f := func(seed int64, raws []int8) bool {
		if len(raws) > 12 {
			raws = raws[:12]
		}
		rng := rand.New(rand.NewSource(seed))
		hw := NewHardware(0, rho, RandomWalk{Rho: rho, MinDur: 0.1, MaxDur: 1}, rng)
		l := NewSlewed(hw, 0.3)
		tt := 0.5
		for _, r := range raws {
			target := l.Read(tt) + float64(r)/50
			l.SetAt(tt, target)
			tt += 0.4
		}
		prev := math.Inf(-1)
		for x := 0.0; x < tt+3; x += 0.05 {
			got := l.Read(x)
			if got <= prev {
				return false
			}
			prev = got
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(59))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: WhenReads is a right inverse of Read for slewed clocks, across
// random adjustment sequences.
func TestSlewWhenReadsProperty(t *testing.T) {
	rho := Rho(0.01)
	f := func(seed int64, raws []int8, probe uint16) bool {
		if len(raws) > 8 {
			raws = raws[:8]
		}
		rng := rand.New(rand.NewSource(seed))
		hw := NewHardware(1, rho, RandomWalk{Rho: rho, MinDur: 0.1, MaxDur: 1}, rng)
		l := NewSlewed(hw, 0.25)
		tt := 0.3
		for _, r := range raws {
			l.SetAt(tt, l.Read(tt)+float64(r)/60)
			tt += 0.5
		}
		value := l.Read(tt) + float64(probe)/2048
		when := l.WhenReads(value)
		return math.Abs(l.Read(when)-value) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSlewZeroDeltaIsNoop(t *testing.T) {
	hw := NewConstant(0, 1, Rho(0))
	l := NewSlewed(hw, 0.1)
	if delta := l.SetAt(5, 5); delta != 0 {
		t.Fatalf("delta = %v", delta)
	}
	if got := l.Read(7); math.Abs(got-7) > 1e-12 {
		t.Fatalf("Read(7) = %v", got)
	}
	if l.Slewing(5.5) {
		t.Fatal("zero-delta slew reported in progress")
	}
}
