package clock

// Adjustment records a discrete change of a logical clock's offset, as
// performed at resynchronization.
type Adjustment struct {
	// RealTime is the virtual real time at which the adjustment was made.
	RealTime float64
	// LocalTime is the hardware clock reading at that instant.
	LocalTime float64
	// Old and New are the adjustment values before and after.
	Old, New float64
}

// LogicalClock is the interface shared by the jump-adjusted Logical and
// the amortizing SlewedLogical; the node runtime works against it so
// protocols can run in either adjustment mode.
type LogicalClock interface {
	// Read returns C(t).
	Read(t float64) float64
	// SetAt requests that the clock read value at real time t (a jump, or
	// the start of a slew) and returns the signed delta.
	SetAt(t, value float64) float64
	// WhenReads returns the earliest real time the clock will read value,
	// assuming no further adjustments.
	WhenReads(value float64) float64
	// Hardware exposes the underlying hardware clock.
	Hardware() *Hardware
	// History returns the adjustment(-request) history.
	History() []Adjustment
	// Jumps returns the number of adjustments performed.
	Jumps() int
	// Adjustment returns the current adjustment target.
	Adjustment() float64
}

// Logical is a logical clock C(t) = H(t) + A(t), where A is a piecewise
// constant adjustment controlled by the synchronization protocol. The full
// adjustment history is retained for analysis (envelope measurements need
// the jump points).
type Logical struct {
	hw      *Hardware
	adj     float64
	history []Adjustment
}

var _ LogicalClock = (*Logical)(nil)

// NewLogical wraps a hardware clock with a zero initial adjustment, so the
// logical clock initially equals the hardware clock.
func NewLogical(hw *Hardware) *Logical {
	return &Logical{hw: hw}
}

// Hardware exposes the underlying hardware clock.
func (l *Logical) Hardware() *Hardware { return l.hw }

// Adjustment returns the current adjustment A.
func (l *Logical) Adjustment() float64 { return l.adj }

// Read returns C(t) = H(t) + A.
func (l *Logical) Read(t float64) float64 { return l.hw.Read(t) + l.adj }

// SetAt sets the logical clock to read value at real time t, recording the
// jump. It returns the (signed) size of the jump in logical-time units.
func (l *Logical) SetAt(t, value float64) float64 {
	local := l.hw.Read(t)
	old := l.adj
	l.adj = value - local
	l.history = append(l.history, Adjustment{
		RealTime:  t,
		LocalTime: local,
		Old:       old,
		New:       l.adj,
	})
	return l.adj - old
}

// AdvanceAt adds delta to the clock at real time t, recording the jump.
func (l *Logical) AdvanceAt(t, delta float64) {
	local := l.hw.Read(t)
	old := l.adj
	l.adj += delta
	l.history = append(l.history, Adjustment{
		RealTime:  t,
		LocalTime: local,
		Old:       old,
		New:       l.adj,
	})
}

// WhenReads returns the earliest real time at which the logical clock will
// read value, assuming no further adjustments.
func (l *Logical) WhenReads(value float64) float64 {
	return l.hw.Invert(value - l.adj)
}

// History returns the adjustment history (not a copy; callers must not
// mutate it).
func (l *Logical) History() []Adjustment { return l.history }

// Jumps returns the number of adjustments performed.
func (l *Logical) Jumps() int { return len(l.history) }
