package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogicalTracksHardware(t *testing.T) {
	h := NewConstant(2, 1, Rho(0))
	l := NewLogical(h)
	if got := l.Read(3); got != 5 {
		t.Fatalf("Read(3) = %v, want 5", got)
	}
	if l.Adjustment() != 0 {
		t.Fatalf("initial adjustment = %v", l.Adjustment())
	}
	if l.Hardware() != h {
		t.Fatal("Hardware() mismatch")
	}
}

func TestLogicalSetAt(t *testing.T) {
	h := NewConstant(0, 1, Rho(0))
	l := NewLogical(h)
	jump := l.SetAt(10, 25) // clock read 10, now reads 25
	if jump != 15 {
		t.Fatalf("jump = %v, want 15", jump)
	}
	if got := l.Read(10); got != 25 {
		t.Fatalf("Read(10) = %v, want 25", got)
	}
	if got := l.Read(12); got != 27 {
		t.Fatalf("Read(12) = %v, want 27", got)
	}
	if l.Jumps() != 1 {
		t.Fatalf("Jumps = %d", l.Jumps())
	}
	rec := l.History()[0]
	if rec.RealTime != 10 || rec.LocalTime != 10 || rec.Old != 0 || rec.New != 15 {
		t.Fatalf("history record = %+v", rec)
	}
}

func TestLogicalAdvanceAt(t *testing.T) {
	h := NewConstant(0, 2, Rho(1))
	l := NewLogical(h)
	l.AdvanceAt(1, -0.5)
	if got := l.Read(1); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Read(1) = %v, want 1.5", got)
	}
	l.AdvanceAt(2, 0.25)
	if got := l.Adjustment(); math.Abs(got+0.25) > 1e-12 {
		t.Fatalf("Adjustment = %v, want -0.25", got)
	}
	if l.Jumps() != 2 {
		t.Fatalf("Jumps = %d", l.Jumps())
	}
}

func TestLogicalWhenReads(t *testing.T) {
	h := NewConstant(0, 1, Rho(0))
	l := NewLogical(h)
	l.SetAt(5, 100) // adj = 95
	// Clock reads 110 at real time 15.
	if got := l.WhenReads(110); math.Abs(got-15) > 1e-12 {
		t.Fatalf("WhenReads(110) = %v, want 15", got)
	}
}

// Property: after SetAt(t, v), Read(t) == v, for drifting clocks too.
func TestSetAtProperty(t *testing.T) {
	rho := Rho(0.02)
	f := func(seed int64, rawT, rawV uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHardware(0, rho, RandomWalk{Rho: rho, MinDur: 0.1, MaxDur: 1}, rng)
		l := NewLogical(h)
		tt := float64(rawT) / 128
		v := float64(rawV) / 8
		l.SetAt(tt, v)
		if math.Abs(l.Read(tt)-v) > 1e-9 {
			return false
		}
		// WhenReads inverts correctly for future values.
		target := v + 1
		when := l.WhenReads(target)
		return math.Abs(l.Read(when)-target) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
