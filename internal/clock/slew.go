package clock

import (
	"fmt"
	"math"
)

// Slewing support: the paper notes that the discrete adjustment made at
// each resynchronization can be amortized ("spread out") to obtain
// continuous, strictly monotone logical clocks, at the cost of slightly
// larger constants. SlewedLogical implements this: instead of jumping, the
// adjustment A moves toward its target at a bounded rate sigma per unit of
// *local* (hardware) time, so the logical clock's rate stays within
// [(1-sigma), (1+sigma)] times the hardware rate — never negative for
// sigma < 1, hence monotone.
//
// The adjustment trajectory is piecewise linear in local time h:
// each SetAt starts a new segment from the current adjustment toward the
// new target with slope +-sigma, truncating any slew in progress.

// adjSegment describes A(h) = startAdj + slope*(h-startH) for h in
// [startH, endH), after which A stays at the segment's final value until
// the next segment (or forever).
type adjSegment struct {
	startH   float64
	endH     float64
	startAdj float64
	slope    float64
}

func (s adjSegment) at(h float64) float64 {
	if h >= s.endH {
		h = s.endH
	}
	return s.startAdj + s.slope*(h-s.startH)
}

func (s adjSegment) final() float64 { return s.at(s.endH) }

// SlewedLogical is a logical clock whose adjustments are amortized at a
// bounded rate. It offers the same interface as Logical.
type SlewedLogical struct {
	hw    *Hardware
	sigma float64
	segs  []adjSegment // in increasing startH order; empty means A = 0
	hist  []Adjustment
}

var _ LogicalClock = (*SlewedLogical)(nil)

// NewSlewed wraps a hardware clock. sigma is the maximum adjustment rate
// in logical units per local time unit; it must lie in (0, 1) so the
// logical clock remains strictly increasing.
func NewSlewed(hw *Hardware, sigma float64) *SlewedLogical {
	if sigma <= 0 || sigma >= 1 {
		panic(fmt.Sprintf("clock: slew rate %v outside (0, 1)", sigma))
	}
	return &SlewedLogical{hw: hw, sigma: sigma}
}

// Hardware exposes the underlying hardware clock.
func (l *SlewedLogical) Hardware() *Hardware { return l.hw }

// Sigma returns the slew rate.
func (l *SlewedLogical) Sigma() float64 { return l.sigma }

// adjAt evaluates the adjustment at local time h.
func (l *SlewedLogical) adjAt(h float64) float64 {
	if len(l.segs) == 0 {
		return 0
	}
	// Find the last segment starting at or before h.
	lo, hi := 0, len(l.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.segs[mid].startH <= h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0 // before the first adjustment
	}
	return l.segs[lo-1].at(h)
}

// Read returns C(t) = H(t) + A(H(t)).
func (l *SlewedLogical) Read(t float64) float64 {
	h := l.hw.Read(t)
	return h + l.adjAt(h)
}

// Adjustment returns the target adjustment currently being slewed toward
// (the final value of the last segment), or 0.
func (l *SlewedLogical) Adjustment() float64 {
	if len(l.segs) == 0 {
		return 0
	}
	return l.segs[len(l.segs)-1].final()
}

// SetAt requests that the clock read value at real time t. The adjustment
// begins slewing toward the implied target immediately; it reaches it
// after |delta|/sigma local time. Returns the (signed) remaining delta.
func (l *SlewedLogical) SetAt(t, value float64) float64 {
	h := l.hw.Read(t)
	cur := l.adjAt(h)
	target := value - h
	delta := target - cur
	slope := l.sigma
	if delta < 0 {
		slope = -l.sigma
	}
	end := h
	if delta != 0 {
		end = h + math.Abs(delta)/l.sigma
	}
	// Truncate any segment in progress so segments never overlap: the old
	// trajectory is cut at h (where it evaluates to cur, the new segment's
	// starting adjustment).
	if n := len(l.segs); n > 0 && l.segs[n-1].endH > h {
		l.segs[n-1].endH = h
	}
	l.segs = append(l.segs, adjSegment{startH: h, endH: end, startAdj: cur, slope: slope})
	l.hist = append(l.hist, Adjustment{RealTime: t, LocalTime: h, Old: cur, New: target})
	return delta
}

// WhenReads returns the earliest real time at which the clock will read
// value, assuming no further SetAt calls. Because every segment's slope
// is > -1, C(h) = h + A(h) is strictly increasing in h and the equation
// C(h) = value has a unique solution found segment by segment.
func (l *SlewedLogical) WhenReads(value float64) float64 {
	// Local-time candidate assuming adjustment constant after the last
	// segment; walk segments to find where C crosses value.
	solve := func(startH, startAdj, slope, endH float64) (float64, bool) {
		// C(h) = h + startAdj + slope*(h - startH) on [startH, endH].
		cStart := startH + startAdj
		cEnd := endH + startAdj + slope*(endH-startH)
		if value < cStart-1e-12 || value > cEnd+1e-12 {
			return 0, false
		}
		h := (value - startAdj + slope*startH) / (1 + slope)
		if h < startH {
			h = startH
		}
		if h > endH {
			h = endH
		}
		return h, true
	}
	prevEnd := 0.0
	prevAdj := 0.0
	for _, s := range l.segs {
		// Constant stretch before this segment.
		if h, ok := solve(prevEnd, prevAdj, 0, s.startH); ok && s.startH > prevEnd {
			return l.hw.Invert(h)
		}
		if h, ok := solve(s.startH, s.startAdj, s.slope, s.endH); ok {
			return l.hw.Invert(h)
		}
		prevEnd = s.endH
		prevAdj = s.final()
	}
	// After all segments: C(h) = h + prevAdj.
	h := value - prevAdj
	if h < prevEnd {
		h = prevEnd
	}
	return l.hw.Invert(h)
}

// History returns the adjustment request history.
func (l *SlewedLogical) History() []Adjustment { return l.hist }

// Jumps returns the number of adjustment requests.
func (l *SlewedLogical) Jumps() int { return len(l.hist) }

// Slewing reports whether an adjustment is still in progress at real
// time t.
func (l *SlewedLogical) Slewing(t float64) bool {
	if len(l.segs) == 0 {
		return false
	}
	h := l.hw.Read(t)
	last := l.segs[len(l.segs)-1]
	return h < last.endH
}
