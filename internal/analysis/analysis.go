// Package analysis provides the small statistical toolkit used to evaluate
// simulation runs: least-squares regression (for clock-envelope rates) and
// summary statistics (for skew distributions).
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Fit is a least-squares line y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination in [0, 1].
	R2 float64
	// N is the number of points fitted.
	N int
}

// LinearFit computes the ordinary least-squares fit of ys over xs. It
// requires at least two distinct x values; otherwise it returns an error.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("analysis: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Fit{}, fmt.Errorf("analysis: need >= 2 points, got %d", n)
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("analysis: all x values identical")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx, N: n}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // perfectly flat data is perfectly explained
	}
	return fit, nil
}

// Summary describes a sample of observations.
type Summary struct {
	Count         int
	Min, Max      float64
	Mean, Std     float64
	P50, P95, P99 float64
}

// Summarize computes summary statistics; an empty input yields a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var varSum float64
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	quantile := func(q float64) float64 {
		v, _ := Quantile(sorted, q) // sorted is non-empty and q in range
		return v
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  mean,
		Std:   math.Sqrt(varSum / float64(len(sorted))),
		P50:   quantile(0.50),
		P95:   quantile(0.95),
		P99:   quantile(0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted values using
// linear interpolation. An empty slice or q outside [0, 1] is an error,
// not a panic: quantile requests reach this boundary from configuration
// (sweep aggregation), and a bad config must not crash a long campaign.
func Quantile(sorted []float64, q float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, fmt.Errorf("analysis: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("analysis: quantile %v outside [0,1]", q)
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
