package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2.5) > 1e-12 || math.Abs(fit.Intercept+1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if fit.N != 5 {
		t.Fatalf("N = %d", fit.N)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 1000; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 3*x+5+rng.NormFloat64()*0.1)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.01 {
		t.Fatalf("slope = %v, want ~3", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearFitFlatData(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Fatalf("flat fit = %+v", fit)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Fatal("vertical data accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.P50-2.5) > 1e-12 {
		t.Fatalf("p50 = %v", s.P50)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15},
	}
	for _, c := range cases {
		got, err := Quantile(sorted, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	for name, fn := range map[string]func() (float64, error){
		"empty": func() (float64, error) { return Quantile(nil, 0.5) },
		"q>1":   func() (float64, error) { return Quantile([]float64{1}, 1.5) },
		"q<0":   func() (float64, error) { return Quantile([]float64{1}, -0.5) },
		"qNaN":  func() (float64, error) { return Quantile([]float64{1}, math.NaN()) },
	} {
		if _, err := fn(); err == nil {
			t.Fatalf("%s did not error", name)
		}
	}
}

// Property: summary invariants Min <= P50 <= P95 <= P99 <= Max and
// Min <= Mean <= Max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Exclude non-finite and extreme values whose sums overflow:
			// Summarize targets physical quantities, not the float edge.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers slope/intercept of any exact line.
func TestLinearFitRecoveryProperty(t *testing.T) {
	f := func(rawSlope, rawIcpt int16, n uint8) bool {
		slope := float64(rawSlope) / 100
		icpt := float64(rawIcpt) / 100
		count := 2 + int(n%50)
		xs := make([]float64, count)
		ys := make([]float64, count)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + icpt
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-icpt) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
