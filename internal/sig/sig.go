// Package sig provides the signature schemes used by the authenticated
// Srikanth-Toueg algorithm.
//
// The paper treats signatures axiomatically: a correct process's signature
// on a message cannot be produced by anyone else. Two implementations are
// provided:
//
//   - Ed25519: real public-key signatures from crypto/ed25519. Forgery is
//     computationally infeasible, matching the axiom cryptographically.
//   - HMAC: a fast symmetric stand-in where the scheme itself acts as a
//     trusted verification oracle. Within the simulation, Byzantine code can
//     only interact through Sign/Verify, so the unforgeability axiom holds
//     by construction; this trades the cryptographic guarantee for ~50x
//     faster simulation, which matters for large parameter sweeps.
//
// Signer identities are small integers (node indices). Keys are derived
// deterministically from a seed so that simulations are reproducible.
package sig

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Signature is an opaque signature blob.
type Signature []byte

// Scheme signs and verifies on behalf of a fixed universe of n signers,
// identified by indices 0..n-1.
type Scheme interface {
	// Sign produces signer's signature over payload. It panics if signer
	// is out of range (that is a harness bug, not a runtime condition).
	Sign(signer int, payload []byte) Signature
	// Verify reports whether s is signer's valid signature over payload.
	// Malformed inputs simply verify as false.
	Verify(signer int, payload []byte, s Signature) bool
	// Name identifies the scheme in reports.
	Name() string
}

// deriveSeed expands (seed, signer) into 32 deterministic bytes.
func deriveSeed(seed int64, signer int) [32]byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(signer)))
	return sha256.Sum256(buf[:])
}

// Ed25519 is a real public-key signature scheme over deterministic
// per-signer keys.
type Ed25519 struct {
	privs []ed25519.PrivateKey
	pubs  []ed25519.PublicKey
}

var _ Scheme = (*Ed25519)(nil)

// NewEd25519 derives n key pairs from seed.
func NewEd25519(n int, seed int64) *Ed25519 {
	s := &Ed25519{
		privs: make([]ed25519.PrivateKey, n),
		pubs:  make([]ed25519.PublicKey, n),
	}
	for i := 0; i < n; i++ {
		ks := deriveSeed(seed, i)
		priv := ed25519.NewKeyFromSeed(ks[:])
		s.privs[i] = priv
		s.pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return s
}

// Sign implements Scheme.
func (s *Ed25519) Sign(signer int, payload []byte) Signature {
	s.check(signer)
	return Signature(ed25519.Sign(s.privs[signer], payload))
}

// Verify implements Scheme.
func (s *Ed25519) Verify(signer int, payload []byte, sg Signature) bool {
	if signer < 0 || signer >= len(s.pubs) || len(sg) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(s.pubs[signer], payload, []byte(sg))
}

// Name implements Scheme.
func (s *Ed25519) Name() string { return "ed25519" }

func (s *Ed25519) check(signer int) {
	if signer < 0 || signer >= len(s.privs) {
		panic(fmt.Sprintf("sig: signer %d out of range [0,%d)", signer, len(s.privs)))
	}
}

// HMAC is a fast symmetric scheme: Sign(i, m) = HMAC-SHA256(key_i, m).
// Because verification recomputes with key_i held by the scheme, the scheme
// is a trusted oracle; within the simulation the unforgeability axiom holds
// because all parties (including Byzantine protocol code) interact only
// through this API.
type HMAC struct {
	keys [][]byte
}

var _ Scheme = (*HMAC)(nil)

// NewHMAC derives n keys from seed.
func NewHMAC(n int, seed int64) *HMAC {
	s := &HMAC{keys: make([][]byte, n)}
	for i := 0; i < n; i++ {
		k := deriveSeed(seed, i)
		s.keys[i] = k[:]
	}
	return s
}

// Sign implements Scheme.
func (s *HMAC) Sign(signer int, payload []byte) Signature {
	if signer < 0 || signer >= len(s.keys) {
		panic(fmt.Sprintf("sig: signer %d out of range [0,%d)", signer, len(s.keys)))
	}
	mac := hmac.New(sha256.New, s.keys[signer])
	mac.Write(payload)
	return mac.Sum(nil)
}

// Verify implements Scheme.
func (s *HMAC) Verify(signer int, payload []byte, sg Signature) bool {
	if signer < 0 || signer >= len(s.keys) {
		return false
	}
	mac := hmac.New(sha256.New, s.keys[signer])
	mac.Write(payload)
	return hmac.Equal(mac.Sum(nil), []byte(sg))
}

// Name implements Scheme.
func (s *HMAC) Name() string { return "hmac-sha256" }

// Counting wraps a Scheme and counts operations; used to report the
// cryptographic cost of a protocol run.
type Counting struct {
	Inner Scheme

	signs, verifies, rejects uint64
}

var _ Scheme = (*Counting)(nil)

// NewCounting wraps inner.
func NewCounting(inner Scheme) *Counting { return &Counting{Inner: inner} }

// Sign implements Scheme.
func (c *Counting) Sign(signer int, payload []byte) Signature {
	c.signs++
	return c.Inner.Sign(signer, payload)
}

// Verify implements Scheme.
func (c *Counting) Verify(signer int, payload []byte, s Signature) bool {
	c.verifies++
	ok := c.Inner.Verify(signer, payload, s)
	if !ok {
		c.rejects++
	}
	return ok
}

// Name implements Scheme.
func (c *Counting) Name() string { return c.Inner.Name() + "+counting" }

// Stats returns (signs, verifies, failed verifies).
func (c *Counting) Stats() (signs, verifies, rejects uint64) {
	return c.signs, c.verifies, c.rejects
}
