package sig

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func schemes(n int, seed int64) map[string]Scheme {
	return map[string]Scheme{
		"ed25519": NewEd25519(n, seed),
		"hmac":    NewHMAC(n, seed),
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for name, s := range schemes(4, 1) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("round 7")
			for i := 0; i < 4; i++ {
				sg := s.Sign(i, msg)
				if !s.Verify(i, msg, sg) {
					t.Fatalf("signer %d: valid signature rejected", i)
				}
			}
		})
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	for name, s := range schemes(4, 1) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("round 7")
			sg := s.Sign(0, msg)
			for i := 1; i < 4; i++ {
				if s.Verify(i, msg, sg) {
					t.Fatalf("signature by 0 verified for signer %d", i)
				}
			}
		})
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	for name, s := range schemes(4, 1) {
		t.Run(name, func(t *testing.T) {
			sg := s.Sign(2, []byte("round 7"))
			if s.Verify(2, []byte("round 8"), sg) {
				t.Fatal("tampered payload verified")
			}
		})
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	for name, s := range schemes(4, 1) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("round 7")
			sg := s.Sign(2, msg)
			bad := append(Signature(nil), sg...)
			bad[0] ^= 0xFF
			if s.Verify(2, msg, bad) {
				t.Fatal("tampered signature verified")
			}
		})
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	for name, s := range schemes(4, 1) {
		t.Run(name, func(t *testing.T) {
			if s.Verify(0, []byte("m"), nil) {
				t.Fatal("nil signature verified")
			}
			if s.Verify(0, []byte("m"), Signature("short")) {
				t.Fatal("short signature verified")
			}
			if s.Verify(-1, []byte("m"), Signature(make([]byte, 64))) {
				t.Fatal("negative signer verified")
			}
			if s.Verify(99, []byte("m"), Signature(make([]byte, 64))) {
				t.Fatal("out-of-range signer verified")
			}
		})
	}
}

func TestSignOutOfRangePanics(t *testing.T) {
	for name, s := range schemes(3, 1) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Sign(5) did not panic")
				}
			}()
			s.Sign(5, []byte("m"))
		})
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := NewEd25519(3, 99)
	b := NewEd25519(3, 99)
	msg := []byte("hello")
	if !bytes.Equal(a.Sign(1, msg), b.Sign(1, msg)) {
		t.Fatal("same seed produced different ed25519 signatures")
	}
	c := NewEd25519(3, 100)
	if bytes.Equal(a.Sign(1, msg), c.Sign(1, msg)) {
		t.Fatal("different seeds produced identical ed25519 signatures")
	}
}

func TestCrossSchemeRejection(t *testing.T) {
	ed := NewEd25519(3, 1)
	hm := NewHMAC(3, 1)
	msg := []byte("m")
	if hm.Verify(0, msg, ed.Sign(0, msg)) {
		t.Fatal("hmac verified an ed25519 signature")
	}
	if ed.Verify(0, msg, hm.Sign(0, msg)) {
		t.Fatal("ed25519 verified an hmac signature")
	}
}

func TestCountingScheme(t *testing.T) {
	c := NewCounting(NewHMAC(2, 1))
	msg := []byte("m")
	sg := c.Sign(0, msg)
	if !c.Verify(0, msg, sg) {
		t.Fatal("valid signature rejected")
	}
	c.Verify(1, msg, sg) // wrong signer: rejected
	signs, verifies, rejects := c.Stats()
	if signs != 1 || verifies != 2 || rejects != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 2, 1)", signs, verifies, rejects)
	}
	if c.Name() != "hmac-sha256+counting" {
		t.Fatalf("Name = %q", c.Name())
	}
}

// Property: no signer's signature over one payload verifies for any other
// (signer, payload) pair.
func TestNoCrossVerifyProperty(t *testing.T) {
	s := NewHMAC(4, 7)
	f := func(p1, p2 []byte, a, b uint8) bool {
		sa, sb := int(a%4), int(b%4)
		sg := s.Sign(sa, p1)
		if sa == sb && bytes.Equal(p1, p2) {
			return s.Verify(sb, p2, sg)
		}
		return !s.Verify(sb, p2, sg)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
