package node

import (
	"math"
	"math/rand"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/network"
	"optsync/internal/probe"
)

// echoProto broadcasts one message at boot and counts deliveries.
type echoProto struct {
	started   bool
	delivered []ID
	payloads  []Message
}

func (p *echoProto) Start(env Env) {
	p.started = true
	env.Broadcast(network.Raw("hi"))
}

func (p *echoProto) Deliver(_ Env, from ID, msg Message) {
	p.delivered = append(p.delivered, from)
	p.payloads = append(p.payloads, msg)
}

func newEchoCluster(n int) (*Cluster, []*echoProto) {
	protos := make([]*echoProto, n)
	c := NewCluster(Config{
		N:     n,
		F:     (n - 1) / 3,
		Seed:  1,
		Rho:   clock.Rho(0.001),
		Delay: network.Fixed{D: 0.01},
		Protocols: func(i int) Protocol {
			protos[i] = &echoProto{}
			return protos[i]
		},
	})
	return c, protos
}

func TestClusterBootAndBroadcast(t *testing.T) {
	c, protos := newEchoCluster(3)
	c.Start()
	c.Run(1)
	for i, p := range protos {
		if !p.started {
			t.Fatalf("node %d not started", i)
		}
		if len(p.delivered) != 3 {
			t.Fatalf("node %d delivered %d messages, want 3", i, len(p.delivered))
		}
	}
}

func TestLogicalTimeAndSetLogical(t *testing.T) {
	c := NewCluster(Config{
		N: 1, F: 0, Seed: 1,
		Protocols: func(i int) Protocol { return protoFunc{} },
	})
	c.Start()
	c.Run(5)
	nd := c.Nodes[0]
	if got := nd.LogicalTime(); got != 5 {
		t.Fatalf("LogicalTime = %v, want 5 (perfect default clock)", got)
	}
	nd.SetLogical(100)
	if got := nd.LogicalTime(); got != 100 {
		t.Fatalf("LogicalTime after SetLogical = %v", got)
	}
	if got := c.ReadLogical(0); got != 100 {
		t.Fatalf("ReadLogical = %v", got)
	}
	if nd.HardwareTime() != 5 {
		t.Fatalf("HardwareTime = %v, want 5", nd.HardwareTime())
	}
	if nd.RealTime() != 5 {
		t.Fatalf("RealTime = %v, want 5", nd.RealTime())
	}
}

type protoFunc struct{}

func (protoFunc) Start(Env)                {}
func (protoFunc) Deliver(Env, ID, Message) {}

func TestAtLogicalFiresAtValue(t *testing.T) {
	c := NewCluster(Config{
		N: 1, F: 0, Seed: 1,
		Rho:       clock.Rho(0.5),
		Protocols: func(int) Protocol { return protoFunc{} },
	})
	c.Start()
	c.Run(0)
	nd := c.Nodes[0]
	var fired float64 = -1
	nd.AtLogical(2.5, func() { fired = c.Engine.Now() })
	c.Run(10)
	if fired != 2.5 {
		t.Fatalf("timer fired at %v, want 2.5", fired)
	}
	// Past values fire immediately (not in the past).
	fired = -1
	nd.AtLogical(1.0, func() { fired = c.Engine.Now() })
	c.Run(20)
	if fired != 10 {
		t.Fatalf("past-value timer fired at %v, want now=10", fired)
	}
}

func TestAtLogicalWithDriftingClock(t *testing.T) {
	rho := clock.Rho(1)
	c2 := NewCluster(Config{
		N: 1, F: 0, Seed: 1, Rho: rho,
		Clocks: func(int, *rand.Rand) *clock.Hardware {
			return clock.NewConstant(0, 2, rho)
		},
		Protocols: func(int) Protocol { return protoFunc{} },
	})
	c2.Start()
	var fired float64 = -1
	c2.Nodes[0].AtLogical(4, func() { fired = c2.Engine.Now() })
	c2.Run(10)
	if math.Abs(fired-2) > 1e-12 {
		t.Fatalf("rate-2 clock timer fired at %v, want 2", fired)
	}
}

func TestCancelTimer(t *testing.T) {
	c, _ := newEchoCluster(1)
	c.Start()
	c.Run(0)
	fired := false
	tm := c.Nodes[0].AtLogical(0.5, func() { fired = true })
	c.Nodes[0].Cancel(tm)
	c.Nodes[0].Cancel(nil) // nil-safe
	c.Run(2)
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestDelayedStartDropsEarlyTraffic(t *testing.T) {
	protos := make([]*echoProto, 2)
	c := NewCluster(Config{
		N: 2, F: 0, Seed: 1,
		Delay: network.Fixed{D: 0.01},
		Protocols: func(i int) Protocol {
			protos[i] = &echoProto{}
			return protos[i]
		},
		StartAt: map[int]float64{1: 5.0},
	})
	c.Start()
	c.Run(10)
	// Node 1 boots at t=5; node 0's boot broadcast (delivered t=0.01) is lost.
	// Node 1's own boot broadcast at t=5 reaches both.
	if len(protos[0].delivered) != 2 { // own echo + node1's echo
		t.Fatalf("node 0 delivered %d, want 2", len(protos[0].delivered))
	}
	if len(protos[1].delivered) != 1 { // only its own echo
		t.Fatalf("node 1 delivered %d, want 1", len(protos[1].delivered))
	}
}

func TestPulseRecording(t *testing.T) {
	c, _ := newEchoCluster(2)
	c.Start()
	c.Run(1)
	var observed []PulseRecord
	c.OnPulse = func(r PulseRecord) { observed = append(observed, r) }
	c.Nodes[0].Pulse(3)
	c.Nodes[1].Pulse(3)
	if len(c.Pulses) != 2 || len(observed) != 2 {
		t.Fatalf("pulses = %d observed = %d", len(c.Pulses), len(observed))
	}
	r := c.Pulses[0]
	if r.Node != 0 || r.Round != 3 || r.Real != 1 {
		t.Fatalf("record = %+v", r)
	}
}

func TestSignVerifyThroughEnv(t *testing.T) {
	c, _ := newEchoCluster(3)
	c.Start()
	c.Run(0)
	payload := []byte("round 1")
	s := c.Nodes[0].Sign(payload)
	if !c.Nodes[1].Verify(0, payload, s) {
		t.Fatal("peer failed to verify signature")
	}
	if c.Nodes[1].Verify(2, payload, s) {
		t.Fatal("signature verified for wrong signer")
	}
}

func TestSkewComputation(t *testing.T) {
	c, _ := newEchoCluster(3)
	c.Start()
	c.Run(1)
	c.Nodes[0].SetLogical(10)
	c.Nodes[1].SetLogical(12)
	c.Nodes[2].SetLogical(11)
	if got := c.Skew([]ID{0, 1, 2}); got != 2 {
		t.Fatalf("Skew = %v, want 2", got)
	}
	if got := c.Skew(nil); got != 0 {
		t.Fatalf("Skew(nil) = %v", got)
	}
}

func TestCorrectIDsExcludesFaultyAndUnbooted(t *testing.T) {
	c := NewCluster(Config{
		N: 4, F: 1, Seed: 1,
		Protocols: func(int) Protocol { return protoFunc{} },
		Faulty:    map[int]bool{2: true},
		StartAt:   map[int]float64{3: 100},
	})
	c.Start()
	c.Run(1)
	ids := c.CorrectIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("CorrectIDs = %v", ids)
	}
	if !c.Nodes[2].Faulty() || c.Nodes[2].Started() == false {
		t.Fatalf("node 2 flags wrong")
	}
	if c.Nodes[3].Started() {
		t.Fatal("node 3 should not have started")
	}
}

func TestEnvAccessors(t *testing.T) {
	c, _ := newEchoCluster(3)
	c.Start()
	c.Run(0.5)
	nd := c.Nodes[1]
	if nd.ID() != 1 || nd.N() != 3 || nd.F() != 0 {
		t.Fatalf("accessors: id=%d n=%d f=%d", nd.ID(), nd.N(), nd.F())
	}
	if nd.Clock() == nil || nd.Protocol() == nil || nd.Rand() == nil {
		t.Fatal("nil accessor")
	}
	// Direct send delivers.
	got := false
	c.Net.Register(2, func(from ID, msg Message) { got = from == 1 && msg.Payload == "direct" })
	nd.Send(2, network.Raw("direct"))
	c.Run(1)
	if !got {
		t.Fatal("Send did not deliver")
	}
}

func TestCancelForeignHandlePanics(t *testing.T) {
	c, _ := newEchoCluster(1)
	c.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign timer handle accepted")
		}
	}()
	c.Nodes[0].Cancel("not a timer")
}

func TestClusterSlewRateOption(t *testing.T) {
	c := NewCluster(Config{
		N: 1, F: 0, Seed: 1,
		SlewRate:  0.1,
		Protocols: func(int) Protocol { return protoFunc{} },
	})
	c.Start()
	c.Run(1)
	nd := c.Nodes[0]
	nd.SetLogical(2) // +1: slews over 10 local units
	if got := nd.LogicalTime(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("slewed clock jumped: %v", got)
	}
	c.Run(12)
	if got := nd.LogicalTime(); math.Abs(got-13) > 1e-9 {
		t.Fatalf("slew did not complete: %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero N":       {N: 0, Protocols: func(int) Protocol { return protoFunc{} }},
		"nil protocol": {N: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: NewCluster did not panic", name)
				}
			}()
			NewCluster(cfg)
		}()
	}
}

// TestClusterProbeEvents pins the node-layer event stream: boots (with
// late-joiner times), pulses (round + logical value), and resyncs
// (old/new readings) all reach the engine bus.
func TestClusterProbeEvents(t *testing.T) {
	c := NewCluster(Config{
		N: 2, F: 0, Seed: 1,
		Protocols: func(int) Protocol { return protoFunc{} },
		StartAt:   map[int]float64{1: 2.5},
	})
	var boots, pulses, resyncs []probe.Event
	c.Engine.Probes().Attach(probe.Func(func(ev probe.Event) {
		switch ev.Type {
		case probe.TypeNodeBoot:
			boots = append(boots, ev)
		case probe.TypePulse:
			pulses = append(pulses, ev)
		case probe.TypeResync:
			resyncs = append(resyncs, ev)
		}
	}), probe.TypeNodeBoot, probe.TypePulse, probe.TypeResync)
	c.Start()
	c.Run(1)
	c.Nodes[0].Pulse(3)
	c.Nodes[0].SetLogical(7.5)
	c.Run(3)

	if len(boots) != 2 || boots[0].From != 0 || boots[0].T != 0 ||
		boots[1].From != 1 || boots[1].T != 2.5 {
		t.Fatalf("boot events = %+v", boots)
	}
	if len(pulses) != 1 || pulses[0].From != 0 || pulses[0].Round != 3 ||
		pulses[0].T != 1 || pulses[0].Value != 1 {
		t.Fatalf("pulse events = %+v", pulses)
	}
	if len(resyncs) != 1 || resyncs[0].From != 0 ||
		resyncs[0].Value != 7.5 || resyncs[0].Aux != 1 {
		t.Fatalf("resync events = %+v", resyncs)
	}
	// The cluster log and the event stream must agree.
	if len(c.Pulses) != 1 || c.Pulses[0].Round != 3 {
		t.Fatalf("cluster pulses = %+v", c.Pulses)
	}
}
