// Package node provides the process runtime: it binds a protocol
// implementation to a hardware clock, the network, and a signature scheme,
// and exposes the environment interface protocols are written against.
//
// Correct protocols observe time exclusively through their logical clock
// (LogicalTime, AtLogical); real time exists in the interface only for
// Byzantine protocol implementations, which per the model are controlled by
// an omniscient adversary.
package node

import (
	"fmt"
	"math/rand"

	"optsync/internal/clock"
	"optsync/internal/network"
	"optsync/internal/probe"
	"optsync/internal/sig"
	"optsync/internal/sim"
)

// ID identifies a process.
type ID = network.NodeID

// Message is the typed network envelope protocols exchange: a Kind
// discriminator plus inline scalars and an optional structured payload.
// Protocols allocate kinds with network.NewKind and dispatch on msg.Kind
// instead of type-switching over `any`.
type Message = network.Message

// Timer is an opaque handle to a cancellable scheduled callback. The
// simulation runtime backs it with a *sim.Event; the real-time runtime
// (internal/rt) with a *time.Timer. Protocols only store it and hand it
// back to Env.Cancel.
type Timer any

// Env is the world as seen by a protocol instance.
type Env interface {
	// ID returns this process's identity.
	ID() ID
	// N returns the total number of processes.
	N() int
	// F returns the resilience parameter (max faults tolerated).
	F() int

	// LogicalTime returns the current logical clock reading C = H + A.
	LogicalTime() float64
	// HardwareTime returns the current hardware clock reading H.
	HardwareTime() float64
	// SetLogical sets the logical clock to read value now (a resync jump).
	SetLogical(value float64)
	// AtLogical schedules fn for the instant the logical clock reads
	// value (immediately if it already does). The timer assumes no
	// further adjustments: after any SetLogical, protocols must cancel
	// and re-arm pending logical timers.
	AtLogical(value float64, fn func()) Timer
	// Cancel cancels a pending timer (nil-safe).
	Cancel(Timer)

	// Send transmits a message to one process.
	Send(to ID, msg Message)
	// Broadcast transmits a message to all processes (including self).
	Broadcast(msg Message)

	// Sign signs payload with this process's key.
	Sign(payload []byte) sig.Signature
	// Verify checks signer's signature over payload.
	Verify(signer ID, payload []byte, s sig.Signature) bool

	// Pulse reports that this process accepted resynchronization round
	// r (used by the metrics pipeline; semantically "clock hit kP+alpha").
	Pulse(round int)

	// Rand returns this process's deterministic randomness source.
	Rand() *rand.Rand

	// RealTime returns true real time. Correct protocols MUST NOT call
	// this (processes cannot observe real time); it exists for Byzantine
	// implementations and assertions in tests.
	RealTime() float64
}

// Protocol is a process's program.
type Protocol interface {
	// Start runs when the process boots.
	Start(Env)
	// Deliver runs when a message arrives.
	Deliver(Env, ID, Message)
}

// PulseRecord logs one accepted resynchronization round at one node.
type PulseRecord struct {
	Node    ID
	Round   int
	Real    float64
	Logical float64
}

// Node is one simulated process.
type Node struct {
	id      ID
	cluster *Cluster
	logical clock.LogicalClock
	proto   Protocol
	rng     *rand.Rand
	started bool
	faulty  bool
}

var _ Env = (*Node)(nil)

// ID implements Env.
func (nd *Node) ID() ID { return nd.id }

// N implements Env.
func (nd *Node) N() int { return len(nd.cluster.Nodes) }

// F implements Env.
func (nd *Node) F() int { return nd.cluster.cfg.F }

// Faulty reports whether the node was configured as faulty.
func (nd *Node) Faulty() bool { return nd.faulty }

// Started reports whether the node has booted.
func (nd *Node) Started() bool { return nd.started }

// Clock exposes the logical clock (for metrics; protocols use the Env
// methods).
func (nd *Node) Clock() clock.LogicalClock { return nd.logical }

// Protocol returns the protocol instance bound to this node.
func (nd *Node) Protocol() Protocol { return nd.proto }

// LogicalTime implements Env.
func (nd *Node) LogicalTime() float64 {
	return nd.logical.Read(nd.cluster.Engine.Now())
}

// HardwareTime implements Env.
func (nd *Node) HardwareTime() float64 {
	return nd.logical.Hardware().Read(nd.cluster.Engine.Now())
}

// SetLogical implements Env.
func (nd *Node) SetLogical(value float64) {
	now := nd.cluster.Engine.Now()
	if bus := nd.cluster.probes; bus.Active(probe.TypeResync) {
		bus.Emit(probe.Event{
			Type: probe.TypeResync, From: int32(nd.id), To: -1,
			T: now, Value: value, Aux: nd.logical.Read(now),
		})
	}
	nd.logical.SetAt(now, value)
}

// AtLogical implements Env.
func (nd *Node) AtLogical(value float64, fn func()) Timer {
	t := nd.logical.WhenReads(value)
	now := nd.cluster.Engine.Now()
	if t < now {
		t = now
	}
	// Schedule through the validated API: a protocol asking for a NaN or
	// infinite logical instant (a divergent clock inversion, a NaN from
	// upstream arithmetic) is a simulation error, reported through the
	// engine's trap rather than a bare scheduling panic.
	ev, err := nd.cluster.Engine.At(t, fn)
	if err != nil {
		nd.cluster.Engine.Fatalf("node %d: AtLogical(%v) resolves to unschedulable instant %v: %v",
			nd.id, value, t, err)
		return nil
	}
	return ev
}

// Cancel implements Env.
func (nd *Node) Cancel(t Timer) {
	if t == nil {
		return
	}
	ev, ok := t.(*sim.Event)
	if !ok {
		panic("node: Cancel called with a foreign timer handle")
	}
	nd.cluster.Engine.Cancel(ev)
}

// Send implements Env.
func (nd *Node) Send(to ID, msg Message) {
	nd.cluster.Net.Send(nd.id, to, msg)
}

// Broadcast implements Env.
func (nd *Node) Broadcast(msg Message) {
	nd.cluster.Net.Broadcast(nd.id, msg)
}

// Sign implements Env.
func (nd *Node) Sign(payload []byte) sig.Signature {
	return nd.cluster.cfg.Scheme.Sign(nd.id, payload)
}

// Verify implements Env.
func (nd *Node) Verify(signer ID, payload []byte, s sig.Signature) bool {
	return nd.cluster.cfg.Scheme.Verify(signer, payload, s)
}

// Pulse implements Env.
func (nd *Node) Pulse(round int) {
	now := nd.cluster.Engine.Now()
	rec := PulseRecord{
		Node:    nd.id,
		Round:   round,
		Real:    now,
		Logical: nd.logical.Read(now),
	}
	nd.cluster.Pulses = append(nd.cluster.Pulses, rec)
	if bus := nd.cluster.probes; bus.Active(probe.TypePulse) {
		bus.Emit(probe.Event{
			Type: probe.TypePulse, From: int32(nd.id), To: -1,
			Round: int32(round), T: now, Value: rec.Logical,
		})
	}
	if nd.cluster.OnPulse != nil {
		nd.cluster.OnPulse(rec)
	}
}

// Rand implements Env.
func (nd *Node) Rand() *rand.Rand { return nd.rng }

// RealTime implements Env.
func (nd *Node) RealTime() float64 { return nd.cluster.Engine.Now() }

// Config assembles a cluster.
type Config struct {
	// N is the number of processes; F the resilience parameter exposed to
	// protocols (the thresholds f+1, 2f+1 derive from it).
	N, F int
	// Seed drives all randomness (clocks, delays, keys).
	Seed int64
	// Rho is the hardware drift bound.
	Rho clock.Rho
	// Delay is the network delay policy.
	Delay network.Policy
	// Topology is the network connectivity; nil selects the full mesh.
	Topology network.Topology
	// Scheme is the signature scheme; nil selects HMAC (fast default).
	Scheme sig.Scheme
	// Clocks builds node i's hardware clock. nil defaults to perfect
	// clocks (offset 0, rate 1).
	Clocks func(i int, rng *rand.Rand) *clock.Hardware
	// Protocols builds node i's program.
	Protocols func(i int) Protocol
	// Faulty marks nodes as Byzantine (affects bookkeeping only; their
	// behaviour is whatever protocol Protocols returns for them).
	Faulty map[int]bool
	// StartAt optionally delays a node's boot to the given virtual time
	// (used for reintegration experiments). Zero means boot at time 0.
	StartAt map[int]float64
	// SlewRate, when positive, amortizes clock adjustments instead of
	// jumping: the adjustment moves toward its target at SlewRate logical
	// units per local time unit, keeping logical clocks continuous and
	// strictly monotone (the paper's amortization remark). Must be < 1.
	SlewRate float64
}

// Cluster wires N nodes to an engine and network.
type Cluster struct {
	Engine *sim.Engine
	Net    *network.Net
	Nodes  []*Node
	Pulses []PulseRecord
	// OnPulse, if set, observes every pulse as it happens. New code
	// should prefer a probe subscribed to probe.TypePulse on
	// Engine.Probes(); the hook predates the bus and is kept for direct
	// cluster embedders.
	OnPulse func(PulseRecord)

	cfg    Config
	probes *probe.Bus
}

// NewCluster builds the cluster; call Start then Engine.Run.
func NewCluster(cfg Config) *Cluster {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("node: invalid N=%d", cfg.N))
	}
	if cfg.Protocols == nil {
		panic("node: Config.Protocols is required")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sig.NewHMAC(cfg.N, cfg.Seed)
	}
	if cfg.Delay == nil {
		cfg.Delay = network.Fixed{D: 0.001}
	}
	engine := sim.New(cfg.Seed)
	c := &Cluster{
		Engine: engine,
		Net:    network.New(engine, cfg.N, cfg.Delay, cfg.Topology),
		cfg:    cfg,
		probes: engine.Probes(),
	}
	for i := 0; i < cfg.N; i++ {
		var hw *clock.Hardware
		// Per-node stream derived from (seed, id) alone: node randomness
		// is invariant under construction/boot reordering (the engine's
		// shared stream is reserved for the network adversary).
		rng := engine.RandFor(i)
		if cfg.Clocks != nil {
			hw = cfg.Clocks(i, rng)
		} else {
			hw = clock.NewConstant(0, 1, cfg.Rho)
		}
		var logical clock.LogicalClock
		if cfg.SlewRate > 0 {
			logical = clock.NewSlewed(hw, cfg.SlewRate)
		} else {
			logical = clock.NewLogical(hw)
		}
		nd := &Node{
			id:      i,
			cluster: c,
			logical: logical,
			proto:   cfg.Protocols(i),
			rng:     rng,
			faulty:  cfg.Faulty[i],
		}
		c.Nodes = append(c.Nodes, nd)
	}
	return c
}

// Start boots every node at its configured start time and registers
// delivery handlers. A node delivers messages only once booted.
func (c *Cluster) Start() {
	for _, nd := range c.Nodes {
		nd := nd
		c.Net.Register(nd.id, func(from ID, msg Message) {
			if !nd.started {
				return // offline: pre-boot traffic is lost
			}
			nd.proto.Deliver(nd, from, msg)
		})
		at := c.cfg.StartAt[nd.id]
		c.Engine.MustAt(at, func() {
			nd.started = true
			if c.probes.Active(probe.TypeNodeBoot) {
				c.probes.Emit(probe.Event{
					Type: probe.TypeNodeBoot, From: int32(nd.id), To: -1,
					T: c.Engine.Now(),
				})
			}
			nd.proto.Start(nd)
		})
	}
}

// Run starts the cluster (if not already) and runs until the horizon.
func (c *Cluster) Run(until float64) {
	c.Engine.Run(until)
}

// CorrectIDs returns the IDs of non-faulty nodes that have booted by now.
func (c *Cluster) CorrectIDs() []ID {
	var out []ID
	for _, nd := range c.Nodes {
		if !nd.faulty && nd.started {
			out = append(out, nd.id)
		}
	}
	return out
}

// ReadLogical returns node id's logical clock at the current instant.
func (c *Cluster) ReadLogical(id ID) float64 {
	return c.Nodes[id].logical.Read(c.Engine.Now())
}

// Skew returns the max pairwise difference of the logical clocks of the
// given nodes at the current virtual time.
func (c *Cluster) Skew(ids []ID) float64 {
	if len(ids) == 0 {
		return 0
	}
	lo, hi := c.ReadLogical(ids[0]), c.ReadLogical(ids[0])
	for _, id := range ids[1:] {
		v := c.ReadLogical(id)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
