// Package node provides the process runtime: it binds a protocol
// implementation to a hardware clock, the network, and a signature scheme,
// and exposes the environment interface protocols are written against.
//
// Correct protocols observe time exclusively through their logical clock
// (LogicalTime, AtLogical); real time exists in the interface only for
// Byzantine protocol implementations, which per the model are controlled by
// an omniscient adversary.
package node

import (
	"fmt"
	"math/rand"
	"sort"

	"optsync/internal/clock"
	"optsync/internal/network"
	"optsync/internal/probe"
	"optsync/internal/sig"
	"optsync/internal/sim"
)

// ID identifies a process.
type ID = network.NodeID

// Message is the typed network envelope protocols exchange: a Kind
// discriminator plus inline scalars and an optional structured payload.
// Protocols allocate kinds with network.NewKind and dispatch on msg.Kind
// instead of type-switching over `any`.
type Message = network.Message

// Timer is an opaque handle to a cancellable scheduled callback. The
// simulation runtime backs it with a *sim.Event; the real-time runtime
// (internal/rt) with a *time.Timer. Protocols only store it and hand it
// back to Env.Cancel.
type Timer any

// Env is the world as seen by a protocol instance.
type Env interface {
	// ID returns this process's identity.
	ID() ID
	// N returns the total number of processes.
	N() int
	// F returns the resilience parameter (max faults tolerated).
	F() int

	// LogicalTime returns the current logical clock reading C = H + A.
	LogicalTime() float64
	// HardwareTime returns the current hardware clock reading H.
	HardwareTime() float64
	// SetLogical sets the logical clock to read value now (a resync jump).
	SetLogical(value float64)
	// AtLogical schedules fn for the instant the logical clock reads
	// value (immediately if it already does). The timer assumes no
	// further adjustments: after any SetLogical, protocols must cancel
	// and re-arm pending logical timers.
	AtLogical(value float64, fn func()) Timer
	// Cancel cancels a pending timer (nil-safe).
	Cancel(Timer)

	// Send transmits a message to one process.
	Send(to ID, msg Message)
	// Broadcast transmits a message to all processes (including self).
	Broadcast(msg Message)

	// Sign signs payload with this process's key.
	Sign(payload []byte) sig.Signature
	// Verify checks signer's signature over payload.
	Verify(signer ID, payload []byte, s sig.Signature) bool

	// Pulse reports that this process accepted resynchronization round
	// r (used by the metrics pipeline; semantically "clock hit kP+alpha").
	Pulse(round int)

	// Rand returns this process's deterministic randomness source.
	Rand() *rand.Rand

	// RealTime returns true real time. Correct protocols MUST NOT call
	// this (processes cannot observe real time); it exists for Byzantine
	// implementations and assertions in tests.
	RealTime() float64
}

// Protocol is a process's program.
type Protocol interface {
	// Start runs when the process boots.
	Start(Env)
	// Deliver runs when a message arrives.
	Deliver(Env, ID, Message)
}

// PulseRecord logs one accepted resynchronization round at one node.
type PulseRecord struct {
	Node    ID
	Round   int
	Real    float64
	Logical float64
}

// Node is one simulated process.
type Node struct {
	id      ID
	cluster *Cluster
	// eng, net, and probes are the node's execution home: the cluster's
	// only engine/network in a serial run, the owning shard's in a
	// sharded run. All node-side scheduling, transmission, and probe
	// emission goes through them, never through the cluster directly.
	eng     *sim.Engine
	net     *network.Net
	probes  *probe.Bus
	shard   int32
	logical clock.LogicalClock
	proto   Protocol
	rng     *rand.Rand
	started bool
	faulty  bool
}

var _ Env = (*Node)(nil)

// ID implements Env.
func (nd *Node) ID() ID { return nd.id }

// N implements Env.
func (nd *Node) N() int { return len(nd.cluster.Nodes) }

// F implements Env.
func (nd *Node) F() int { return nd.cluster.cfg.F }

// Faulty reports whether the node was configured as faulty.
func (nd *Node) Faulty() bool { return nd.faulty }

// Started reports whether the node has booted.
func (nd *Node) Started() bool { return nd.started }

// Clock exposes the logical clock (for metrics; protocols use the Env
// methods).
func (nd *Node) Clock() clock.LogicalClock { return nd.logical }

// Protocol returns the protocol instance bound to this node.
func (nd *Node) Protocol() Protocol { return nd.proto }

// LogicalTime implements Env.
func (nd *Node) LogicalTime() float64 {
	return nd.logical.Read(nd.eng.Now())
}

// HardwareTime implements Env.
func (nd *Node) HardwareTime() float64 {
	return nd.logical.Hardware().Read(nd.eng.Now())
}

// SetLogical implements Env.
func (nd *Node) SetLogical(value float64) {
	now := nd.eng.Now()
	if bus := nd.probes; bus.Active(probe.TypeResync) {
		bus.Emit(probe.Event{
			Type: probe.TypeResync, From: int32(nd.id), To: -1,
			T: now, Value: value, Aux: nd.logical.Read(now),
		})
	}
	nd.logical.SetAt(now, value)
}

// AtLogical implements Env.
func (nd *Node) AtLogical(value float64, fn func()) Timer {
	t := nd.logical.WhenReads(value)
	now := nd.eng.Now()
	if t < now {
		t = now
	}
	// Schedule through the validated API: a protocol asking for a NaN or
	// infinite logical instant (a divergent clock inversion, a NaN from
	// upstream arithmetic) is a simulation error, reported through the
	// engine's trap rather than a bare scheduling panic.
	ev, err := nd.eng.At(t, fn)
	if err != nil {
		nd.eng.Fatalf("node %d: AtLogical(%v) resolves to unschedulable instant %v: %v",
			nd.id, value, t, err)
		return nil
	}
	return ev
}

// Cancel implements Env.
func (nd *Node) Cancel(t Timer) {
	if t == nil {
		return
	}
	ev, ok := t.(*sim.Event)
	if !ok {
		panic("node: Cancel called with a foreign timer handle")
	}
	nd.eng.Cancel(ev)
}

// Send implements Env.
func (nd *Node) Send(to ID, msg Message) {
	nd.net.Send(nd.id, to, msg)
}

// Broadcast implements Env.
func (nd *Node) Broadcast(msg Message) {
	nd.net.Broadcast(nd.id, msg)
}

// Sign implements Env.
func (nd *Node) Sign(payload []byte) sig.Signature {
	return nd.cluster.cfg.Scheme.Sign(nd.id, payload)
}

// Verify implements Env.
func (nd *Node) Verify(signer ID, payload []byte, s sig.Signature) bool {
	return nd.cluster.cfg.Scheme.Verify(signer, payload, s)
}

// Pulse implements Env.
func (nd *Node) Pulse(round int) {
	now := nd.eng.Now()
	rec := PulseRecord{
		Node:    nd.id,
		Round:   round,
		Real:    now,
		Logical: nd.logical.Read(now),
	}
	c := nd.cluster
	if c.coord != nil {
		// Sharded: buffer the record per shard, tagged with the executing
		// event's key, and merge into c.Pulses in key order at the end of
		// each Run — the exact order the serial engine appends in.
		k, seq := nd.eng.ExecTag()
		c.shardPulses[nd.shard] = append(c.shardPulses[nd.shard], taggedPulse{key: k, seq: seq, rec: rec})
	} else {
		c.Pulses = append(c.Pulses, rec)
	}
	if bus := nd.probes; bus.Active(probe.TypePulse) {
		bus.Emit(probe.Event{
			Type: probe.TypePulse, From: int32(nd.id), To: -1,
			Round: int32(round), T: now, Value: rec.Logical,
		})
	}
	if c.coord == nil && c.OnPulse != nil {
		c.OnPulse(rec)
	}
}

// Rand implements Env.
func (nd *Node) Rand() *rand.Rand { return nd.rng }

// RealTime implements Env.
func (nd *Node) RealTime() float64 { return nd.eng.Now() }

// Config assembles a cluster.
type Config struct {
	// N is the number of processes; F the resilience parameter exposed to
	// protocols (the thresholds f+1, 2f+1 derive from it).
	N, F int
	// Seed drives all randomness (clocks, delays, keys).
	Seed int64
	// Rho is the hardware drift bound.
	Rho clock.Rho
	// Delay is the network delay policy.
	Delay network.Policy
	// Topology is the network connectivity; nil selects the full mesh.
	Topology network.Topology
	// Scheme is the signature scheme; nil selects HMAC (fast default).
	Scheme sig.Scheme
	// Clocks builds node i's hardware clock. nil defaults to perfect
	// clocks (offset 0, rate 1).
	Clocks func(i int, rng *rand.Rand) *clock.Hardware
	// Protocols builds node i's program.
	Protocols func(i int) Protocol
	// Faulty marks nodes as Byzantine (affects bookkeeping only; their
	// behaviour is whatever protocol Protocols returns for them).
	Faulty map[int]bool
	// StartAt optionally delays a node's boot to the given virtual time
	// (used for reintegration experiments). Zero means boot at time 0.
	StartAt map[int]float64
	// SlewRate, when positive, amortizes clock adjustments instead of
	// jumping: the adjustment moves toward its target at SlewRate logical
	// units per local time unit, keeping logical clocks continuous and
	// strictly monotone (the paper's amortization remark). Must be < 1.
	SlewRate float64
	// Shards, when > 1, partitions the nodes across that many parallel
	// worker shards (conservative PDES — see sim.Shards). Requires a
	// positive Lookahead; results are bit-identical to a serial run at
	// any shard count. Values above N are clamped to N.
	Shards int
	// Lookahead is the network's minimum delivery delay (the safe-window
	// width). Obtain it with network.Lookahead(cfg.Delay); a sharded
	// cluster with a non-positive lookahead falls back to serial
	// execution.
	Lookahead float64
}

// taggedPulse is one pulse buffered during a sharded window, ordered for
// the deterministic merge by the executing event's key plus the emission
// index within it.
type taggedPulse struct {
	key sim.Key
	seq uint32
	rec PulseRecord
}

// Cluster wires N nodes to an engine and network — one of each in a
// serial run, one per shard plus a global pair in a sharded run.
type Cluster struct {
	// Engine is the cluster-level engine: the only engine of a serial
	// run, the coordinator's global engine of a sharded one. Its clock is
	// always the simulation frontier, its probe bus always carries the
	// full merged observation stream, and cluster-level scheduling
	// (samplers, markers) belongs on it.
	Engine *sim.Engine
	// Net is the serial run's network; nil in a sharded run, where each
	// shard owns one (use NetStats for merged counters).
	Net    *network.Net
	Nodes  []*Node
	Pulses []PulseRecord
	// OnPulse, if set, observes every pulse as it happens. New code
	// should prefer a probe subscribed to probe.TypePulse on
	// Engine.Probes(); the hook predates the bus and is kept for direct
	// cluster embedders. In a sharded run the hook fires at window
	// barriers, in the exact serial order, rather than mid-window.
	OnPulse func(PulseRecord)

	cfg    Config
	probes *probe.Bus

	// Sharded-execution state (nil/empty in a serial run).
	coord       *sim.Shards
	nets        []*network.Net
	owner       []int32
	shardPulses [][]taggedPulse
	pulseMerge  []taggedPulse // reused merge scratch
}

// NewCluster builds the cluster; call Start then Run (or Engine.Run for a
// serial cluster).
func NewCluster(cfg Config) *Cluster {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("node: invalid N=%d", cfg.N))
	}
	if cfg.Protocols == nil {
		panic("node: Config.Protocols is required")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sig.NewHMAC(cfg.N, cfg.Seed)
	}
	if cfg.Delay == nil {
		cfg.Delay = network.Fixed{D: 0.001}
	}
	k := cfg.Shards
	if k > cfg.N {
		k = cfg.N
	}
	c := &Cluster{cfg: cfg}
	if k > 1 && cfg.Lookahead > 0 {
		c.coord = sim.NewShards(cfg.Seed, k, cfg.Lookahead)
		c.Engine = c.coord.Global()
		// Contiguous balanced placement; every faulty node is co-located
		// on the last shard, because adversarial protocol instances may
		// share coordination state (a collusion pool) that they mutate at
		// boot — one shard serializes those accesses. Placement affects
		// only which worker runs a node, never the event order.
		c.owner = make([]int32, cfg.N)
		for i := range c.owner {
			c.owner[i] = int32(i * k / cfg.N)
		}
		for id, f := range cfg.Faulty {
			if f && id >= 0 && id < cfg.N {
				c.owner[id] = int32(k - 1)
			}
		}
		c.nets = network.NewSharded(c.coord, cfg.N, cfg.Delay, cfg.Topology, c.owner)
		c.shardPulses = make([][]taggedPulse, k)
	} else {
		engine := sim.New(cfg.Seed)
		c.Engine = engine
		c.Net = network.New(engine, cfg.N, cfg.Delay, cfg.Topology)
	}
	c.probes = c.Engine.Probes()
	for i := 0; i < cfg.N; i++ {
		eng, net := c.Engine, c.Net
		var shard int32
		if c.coord != nil {
			shard = c.owner[i]
			eng, net = c.coord.Shard(int(shard)), c.nets[shard]
		}
		var hw *clock.Hardware
		// Per-node stream derived from (seed, id) alone: node randomness
		// is invariant under construction/boot reordering and under
		// sharding (the engine's shared stream is reserved for the
		// network adversary and setup code).
		rng := eng.RandFor(i)
		if cfg.Clocks != nil {
			hw = cfg.Clocks(i, rng)
		} else {
			hw = clock.NewConstant(0, 1, cfg.Rho)
		}
		var logical clock.LogicalClock
		if cfg.SlewRate > 0 {
			logical = clock.NewSlewed(hw, cfg.SlewRate)
		} else {
			logical = clock.NewLogical(hw)
		}
		nd := &Node{
			id:      i,
			cluster: c,
			eng:     eng,
			net:     net,
			probes:  eng.Probes(),
			shard:   shard,
			logical: logical,
			proto:   cfg.Protocols(i),
			rng:     rng,
			faulty:  cfg.Faulty[i],
		}
		c.Nodes = append(c.Nodes, nd)
	}
	return c
}

// Start boots every node at its configured start time and registers
// delivery handlers. A node delivers messages only once booted. Boot
// events are scheduled on the node's own lane (and, in a sharded run, on
// the node's own shard engine): the boot and everything the protocol's
// Start schedules belong to the node, so the event keys — and therefore
// the execution order — are identical at every shard count.
func (c *Cluster) Start() {
	for _, nd := range c.Nodes {
		nd := nd
		nd.net.Register(nd.id, func(from ID, msg Message) {
			if !nd.started {
				return // offline: pre-boot traffic is lost
			}
			nd.proto.Deliver(nd, from, msg)
		})
		at := c.cfg.StartAt[nd.id]
		nd.eng.MustAtLane(int32(nd.id), at, func() {
			nd.started = true
			if nd.probes.Active(probe.TypeNodeBoot) {
				nd.probes.Emit(probe.Event{
					Type: probe.TypeNodeBoot, From: int32(nd.id), To: -1,
					T: nd.eng.Now(),
				})
			}
			nd.proto.Start(nd)
		})
	}
}

// Run starts the cluster (if not already) and runs until the horizon:
// serially on the cluster engine, or across the shard workers with
// window barriers. It may be called repeatedly with increasing horizons.
func (c *Cluster) Run(until float64) {
	if c.coord != nil {
		c.coord.Run(until)
		c.mergePulses()
		return
	}
	c.Engine.Run(until)
}

// Close releases the shard worker goroutines of a sharded cluster; the
// cluster remains readable (clocks, pulses, stats) but cannot Run again.
// Serial clusters need no Close (it is a no-op).
func (c *Cluster) Close() {
	if c.coord != nil {
		c.coord.Close()
	}
}

// NetStats returns the run's traffic counters: the single network's in a
// serial cluster, the deterministic sum of the per-shard networks' in a
// sharded one.
func (c *Cluster) NetStats() network.Stats {
	if c.coord != nil {
		return network.MergeStats(c.nets)
	}
	return c.Net.Stats()
}

// Shards reports the number of parallel worker shards (1 = serial).
func (c *Cluster) Shards() int {
	if c.coord != nil {
		return c.coord.K()
	}
	return 1
}

// mergePulses drains the per-shard pulse buffers into c.Pulses in global
// event order. Run horizons are increasing and every buffered pulse of a
// Run call was executed within it, so per-call merges append in order.
func (c *Cluster) mergePulses() {
	total := 0
	for _, b := range c.shardPulses {
		total += len(b)
	}
	if total == 0 {
		return
	}
	buf := c.pulseMerge[:0]
	for i, b := range c.shardPulses {
		buf = append(buf, b...)
		c.shardPulses[i] = b[:0]
	}
	sort.Slice(buf, func(a, b int) bool {
		ta, tb := &buf[a], &buf[b]
		if ta.key != tb.key {
			return ta.key.Less(tb.key)
		}
		return ta.seq < tb.seq
	})
	for i := range buf {
		c.Pulses = append(c.Pulses, buf[i].rec)
		if c.OnPulse != nil {
			c.OnPulse(buf[i].rec)
		}
	}
	c.pulseMerge = buf[:0]
}

// CorrectIDs returns the IDs of non-faulty nodes that have booted by now.
func (c *Cluster) CorrectIDs() []ID {
	var out []ID
	for _, nd := range c.Nodes {
		if !nd.faulty && nd.started {
			out = append(out, nd.id)
		}
	}
	return out
}

// ReadLogical returns node id's logical clock at the current instant.
func (c *Cluster) ReadLogical(id ID) float64 {
	return c.Nodes[id].logical.Read(c.Engine.Now())
}

// Skew returns the max pairwise difference of the logical clocks of the
// given nodes at the current virtual time.
func (c *Cluster) Skew(ids []ID) float64 {
	if len(ids) == 0 {
		return 0
	}
	lo, hi := c.ReadLogical(ids[0]), c.ReadLogical(ids[0])
	for _, id := range ids[1:] {
		v := c.ReadLogical(id)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
