package optsync

import (
	"io"

	"optsync/internal/probe"
	"optsync/internal/tracelake"
)

// The probe vocabulary, re-exported as aliases so probes and collectors
// flow between this package and extension code without conversion.
type (
	// Event is one typed observation of a run: a message sent, delivered,
	// or dropped; a pulse; a resync; a node boot; a partition cut or
	// heal; a skew sample. Events are plain values — recording them is a
	// fixed-width frame, and emitting them allocates nothing.
	Event = probe.Event
	// EventType discriminates events (EventMessageSent, EventPulse, ...).
	EventType = probe.Type
	// Probe consumes events inline at the emission site. A probe runs on
	// the simulation goroutine of one run; in a batch, WithProbe wraps it
	// so calls from concurrent runs are serialized.
	Probe = probe.Probe
	// ProbeFunc adapts a function to the Probe interface.
	ProbeFunc = probe.Func
	// Collector is a probe that folds its subscription into a named,
	// bounded-memory aggregate, deterministic in the event sequence.
	Collector = probe.Collector
	// Stat is one named aggregate value of a Collector.
	Stat = probe.Stat
	// SkewStats / SpreadStats / MsgStats / ReintegrationWindows / Series
	// are the built-in streaming collectors.
	SkewStats            = probe.SkewStats
	SpreadStats          = probe.SpreadStats
	MsgStats             = probe.MsgStats
	ReintegrationWindows = probe.ReintegrationWindows
	Series               = probe.Series
	// TraceWriter records the event stream it observes (a Probe).
	TraceWriter = probe.Writer
	// TraceFormat selects the trace encoding.
	TraceFormat = probe.Format
)

// Event types.
const (
	EventMessageSent        = probe.TypeMessageSent
	EventMessageDelivered   = probe.TypeMessageDelivered
	EventMessageDropPolicy  = probe.TypeMessageDropPolicy
	EventMessageDropOffline = probe.TypeMessageDropOffline
	EventMessageDropLink    = probe.TypeMessageDropLink
	EventPulse              = probe.TypePulse
	EventResync             = probe.TypeResync
	EventNodeBoot           = probe.TypeNodeBoot
	EventPartitionCut       = probe.TypePartitionCut
	EventPartitionHeal      = probe.TypePartitionHeal
	EventSkewSample         = probe.TypeSkewSample

	// TraceJSONL is one self-describing JSON object per event;
	// TraceBinary is a compact fixed-width framing (~4x denser). Both
	// round-trip float64 values exactly, so replay is bit-faithful.
	TraceJSONL  = probe.FormatJSONL
	TraceBinary = probe.FormatBinary
)

// MessageEventTypes lists the five per-message event types — the hot-path
// subscription for traffic probes.
func MessageEventTypes() []EventType { return probe.MessageTypes() }

// AllEventTypes lists every event type.
func AllEventTypes() []EventType { return probe.AllTypes() }

// EventTypeByName resolves an event type from its wire name ("pulse",
// "skew_sample", ...) — the names JSONL traces and query flags use.
func EventTypeByName(name string) (EventType, bool) { return probe.TypeByName(name) }

// LakeMagic is the 8-byte header identifying a columnar trace lake.
// Format sniffers compare a stream's leading bytes against it to route
// lakes to OpenLake and row traces to ReplayTrace.
var LakeMagic = probe.LakeMagic

// NewSkewCollector returns a streaming skew collector: count/min/max/mean,
// P² percentile estimates (p50/p95/p99), and an exponential histogram, in
// O(1) memory. Subscribe with WithCollector.
func NewSkewCollector() *SkewStats { return probe.NewSkewStats() }

// NewSpreadCollector returns a per-round acceptance-spread collector.
func NewSpreadCollector() *SpreadStats { return probe.NewSpreadStats() }

// NewMsgCollector returns a message-complexity collector: traffic
// counters plus per-protocol-round send counts.
func NewMsgCollector() *MsgStats { return probe.NewMsgStats() }

// NewReintegrationCollector returns a collector tracking each late
// joiner's boot-to-first-pulse window.
func NewReintegrationCollector() *ReintegrationWindows { return probe.NewReintegrationWindows() }

// NewSeriesCollector returns the full-series collector behind
// WithKeepSeries — O(samples) memory, for when the whole trace matters.
func NewSeriesCollector() *Series { return probe.NewSeries() }

// NewTraceWriter returns a trace writer emitting the given format to w.
// Install it with WithTrace; the run entry points flush it and surface
// its I/O errors.
func NewTraceWriter(w io.Writer, format TraceFormat) *TraceWriter {
	return probe.NewWriter(w, format)
}

// ReplayTrace feeds a recorded trace (either format, auto-detected) back
// through probes in recorded order and returns the number of events
// replayed. Collectors fed a replayed trace reproduce the aggregates of
// the original run exactly — `syncsim trace` is this function with the
// built-in collectors.
func ReplayTrace(r io.Reader, probes ...Probe) (int, error) {
	return probe.Replay(r, probes...)
}

// SynchronizedProbe wraps p so OnEvent calls are serialized by a mutex —
// what WithProbe does automatically when a batch shares one probe across
// concurrent runs. Use it directly when attaching a shared probe through
// lower-level APIs.
func SynchronizedProbe(p Probe) Probe { return probe.Synchronized(p) }

// The trace-lake vocabulary, re-exported like the probe types above. A
// lake is the columnar, indexed trace container: events stored as
// per-type column blocks with a footer index, so queries prune whole
// blocks on type / time / node / round bounds instead of decoding the
// stream front to back.
type (
	// Lake is an open container. Scan (merged event order), ScanUnordered
	// (block order, cheapest), ScanRows, Stats (footer-only counting),
	// and Replay are its methods; Close releases the underlying file or
	// mapping.
	Lake = tracelake.Lake
	// LakeQuery selects events. The zero value selects everything; chain
	// WithTypes / WithNode / WithTimeRange / WithRounds to restrict it
	// and WithWorkers to size the decode pool (0 = one per core; output
	// is identical at every worker count).
	LakeQuery = tracelake.Query
	// LakeScanStats reports what a scan touched — pruned, covered
	// (answered from the footer without decoding, Stats only), and
	// scanned blocks, decoded vs matched rows.
	LakeScanStats = tracelake.ScanStats
	// LakeRows is one decoded column block in struct-of-arrays form, as
	// seen by ScanRows callbacks.
	LakeRows = tracelake.Rows
	// LakeWriter streams events into a lake container (a Probe; install
	// with WithLakeTrace).
	LakeWriter = tracelake.Writer
)

// NewLakeWriter returns a lake writer emitting to w. Install it with
// WithLakeTrace to record a run, or feed it events directly to convert
// an existing trace (`syncsim trace -out x.lake` does). The container is
// complete only after a nil Flush.
func NewLakeWriter(w io.Writer) *LakeWriter { return tracelake.NewWriter(w) }

// OpenLake opens a lake file for querying. The footer index is read and
// verified up front; block payloads are read (and checksummed) lazily,
// only when a query admits them. On unix the container is memory-mapped
// — opening costs O(footer) regardless of lake size and blocks decode
// zero-copy from the mapped pages; SYNCSIM_LAKE_MMAP=off forces the
// positioned-read fallback (the default where mmap is unavailable).
func OpenLake(path string) (*Lake, error) { return tracelake.Open(path) }

// OpenLakeBytes opens an in-memory lake image without copying it. The
// caller must not mutate data while the lake is in use.
func OpenLakeBytes(data []byte) (*Lake, error) { return tracelake.OpenBytes(data) }

// QueryLake is the one-shot form of OpenLake + Scan + Close: it streams
// every event q admits through fn in recorded order and reports what the
// scan touched.
func QueryLake(path string, q LakeQuery, fn func(Event) error) (LakeScanStats, error) {
	l, err := OpenLake(path)
	if err != nil {
		return LakeScanStats{}, err
	}
	defer l.Close()
	return l.Scan(q, fn)
}

// ReplayLake feeds the events q admits back through probes, in recorded
// order, and returns the number of events replayed — ReplayTrace for
// lakes, plus the query. Collectors fed a match-all replay reproduce the
// recording run's aggregates exactly.
func ReplayLake(path string, q LakeQuery, probes ...Probe) (int, error) {
	l, err := OpenLake(path)
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Replay(q, probes...)
}
