package optsync

import (
	"io"

	"optsync/internal/probe"
)

// The probe vocabulary, re-exported as aliases so probes and collectors
// flow between this package and extension code without conversion.
type (
	// Event is one typed observation of a run: a message sent, delivered,
	// or dropped; a pulse; a resync; a node boot; a partition cut or
	// heal; a skew sample. Events are plain values — recording them is a
	// fixed-width frame, and emitting them allocates nothing.
	Event = probe.Event
	// EventType discriminates events (EventMessageSent, EventPulse, ...).
	EventType = probe.Type
	// Probe consumes events inline at the emission site. A probe runs on
	// the simulation goroutine of one run; in a batch, WithProbe wraps it
	// so calls from concurrent runs are serialized.
	Probe = probe.Probe
	// ProbeFunc adapts a function to the Probe interface.
	ProbeFunc = probe.Func
	// Collector is a probe that folds its subscription into a named,
	// bounded-memory aggregate, deterministic in the event sequence.
	Collector = probe.Collector
	// Stat is one named aggregate value of a Collector.
	Stat = probe.Stat
	// SkewStats / SpreadStats / MsgStats / ReintegrationWindows / Series
	// are the built-in streaming collectors.
	SkewStats            = probe.SkewStats
	SpreadStats          = probe.SpreadStats
	MsgStats             = probe.MsgStats
	ReintegrationWindows = probe.ReintegrationWindows
	Series               = probe.Series
	// TraceWriter records the event stream it observes (a Probe).
	TraceWriter = probe.Writer
	// TraceFormat selects the trace encoding.
	TraceFormat = probe.Format
)

// Event types.
const (
	EventMessageSent        = probe.TypeMessageSent
	EventMessageDelivered   = probe.TypeMessageDelivered
	EventMessageDropPolicy  = probe.TypeMessageDropPolicy
	EventMessageDropOffline = probe.TypeMessageDropOffline
	EventMessageDropLink    = probe.TypeMessageDropLink
	EventPulse              = probe.TypePulse
	EventResync             = probe.TypeResync
	EventNodeBoot           = probe.TypeNodeBoot
	EventPartitionCut       = probe.TypePartitionCut
	EventPartitionHeal      = probe.TypePartitionHeal
	EventSkewSample         = probe.TypeSkewSample

	// TraceJSONL is one self-describing JSON object per event;
	// TraceBinary is a compact fixed-width framing (~4x denser). Both
	// round-trip float64 values exactly, so replay is bit-faithful.
	TraceJSONL  = probe.FormatJSONL
	TraceBinary = probe.FormatBinary
)

// MessageEventTypes lists the five per-message event types — the hot-path
// subscription for traffic probes.
func MessageEventTypes() []EventType { return probe.MessageTypes() }

// AllEventTypes lists every event type.
func AllEventTypes() []EventType { return probe.AllTypes() }

// NewSkewCollector returns a streaming skew collector: count/min/max/mean,
// P² percentile estimates (p50/p95/p99), and an exponential histogram, in
// O(1) memory. Subscribe with WithCollector.
func NewSkewCollector() *SkewStats { return probe.NewSkewStats() }

// NewSpreadCollector returns a per-round acceptance-spread collector.
func NewSpreadCollector() *SpreadStats { return probe.NewSpreadStats() }

// NewMsgCollector returns a message-complexity collector: traffic
// counters plus per-protocol-round send counts.
func NewMsgCollector() *MsgStats { return probe.NewMsgStats() }

// NewReintegrationCollector returns a collector tracking each late
// joiner's boot-to-first-pulse window.
func NewReintegrationCollector() *ReintegrationWindows { return probe.NewReintegrationWindows() }

// NewSeriesCollector returns the full-series collector behind
// WithKeepSeries — O(samples) memory, for when the whole trace matters.
func NewSeriesCollector() *Series { return probe.NewSeries() }

// NewTraceWriter returns a trace writer emitting the given format to w.
// Install it with WithTrace; the run entry points flush it and surface
// its I/O errors.
func NewTraceWriter(w io.Writer, format TraceFormat) *TraceWriter {
	return probe.NewWriter(w, format)
}

// ReplayTrace feeds a recorded trace (either format, auto-detected) back
// through probes in recorded order and returns the number of events
// replayed. Collectors fed a replayed trace reproduce the aggregates of
// the original run exactly — `syncsim trace` is this function with the
// built-in collectors.
func ReplayTrace(r io.Reader, probes ...Probe) (int, error) {
	return probe.Replay(r, probes...)
}

// SynchronizedProbe wraps p so OnEvent calls are serialized by a mutex —
// what WithProbe does automatically when a batch shares one probe across
// concurrent runs. Use it directly when attaching a shared probe through
// lower-level APIs.
func SynchronizedProbe(p Probe) Probe { return probe.Synchronized(p) }
