#!/usr/bin/env python3
"""Fold `go test -bench ...` output into a trajectory file.

Usage: bench_to_json.py <bench.out> <BENCH_PRx.json>

Parses three benchmark families:

  BenchmarkPulseRound/n=512[/probed]           serial engine (PR 5 record)
  BenchmarkPulseRoundSharded/n=2048/shards=8   sharded engine (PR 7 record)
  BenchmarkLakeScan/{full,pruned,merge},       trace-lake scan/ingest
  BenchmarkLakeWrite                             (PR 8 record)
  BenchmarkLakeScanParallel/workers=K          parallel lake scan (PR 10)

including the `/probed` variants (no-op probe attached to every message
event type) and `-cpu` suffixes (`-8` becomes a `/cpu=8` key suffix, so
a `-cpu 1,8` matrix records both points instead of overwriting one).
Results land under the "ci_latest" key of the trajectory file, and the
script exits non-zero if any steady-state pulse round allocated — serial
or sharded, probed or not, at any shard count: the allocation-free
message path is a regression-tested property, not an aspiration. Lake
lines are recorded with their events/s / scanned-frac metrics but are
exempt from the zero-alloc gate (block decoding amortizes buffer growth
per scan, not per event); their floor gates live in bench_compare.sh.

Required tiers (a run that silently dropped a regime must not pass):
  serial lines present   -> n=512, n=512/probed, n=2048, n=2048/probed
  sharded lines present  -> n=2048/shards=1, n=2048/shards=8
  lake lines present     -> lake/full, lake/pruned
  parallel lines present -> lake/parallel/workers=1, lake/parallel/workers=8

ns/op regression gating, the shards=8 speedup gate, and the lake
events/s + pruning-ratio floors live in bench_compare.sh.
"""
import json
import re
import sys

LINE_RE = re.compile(
    r"^BenchmarkPulseRound(Sharded)?/"
    r"(n=\d+(?:/probed)?(?:/shards=\d+)?)"
    r"(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
    r".*?\s(\d+) B/op\s+(\d+) allocs/op"
)

LAKE_RE = re.compile(
    r"^BenchmarkLake(?:(Scan)/(full|pruned|merge)|(Write))"
    r"(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$"
)
LAKEPAR_RE = re.compile(
    r"^BenchmarkLakeScanParallel/(workers=\d+)"
    r"(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$"
)
METRIC_RE = re.compile(r"([\d.e+-]+) (events/s|scanned-frac)")

SERIAL_REQUIRED = {"n=512", "n=512/probed", "n=2048", "n=2048/probed"}
SHARDED_REQUIRED = {"n=2048/shards=1", "n=2048/shards=8"}
LAKE_REQUIRED = {"lake/full", "lake/pruned"}
LAKEPAR_REQUIRED = {"lake/parallel/workers=1", "lake/parallel/workers=8"}


def parse(path):
    """Returns {key: {ns_per_op, bytes_per_op, allocs_per_op}} for every
    pulse-round benchmark line (serial and sharded), plus lake/{full,
    pruned,merge,write} entries carrying their custom metrics."""
    results = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            m = LINE_RE.match(line)
            if m:
                key = m.group(2)
                if m.group(3):  # -cpu suffix: keep the matrix points distinct
                    key += f"/cpu={m.group(3)}"
                results[key] = {
                    "ns_per_op": float(m.group(4)),
                    "bytes_per_op": int(m.group(5)),
                    "allocs_per_op": int(m.group(6)),
                }
                continue
            pm = LAKEPAR_RE.match(line)
            if pm:
                key = f"lake/parallel/{pm.group(1)}"
                if pm.group(2):
                    key += f"/cpu={pm.group(2)}"
                rec = {"ns_per_op": float(pm.group(3))}
                for val, unit in METRIC_RE.findall(pm.group(4)):
                    rec["events_per_s" if unit == "events/s" else "scanned_frac"] = float(val)
                results[key] = rec
                continue
            lm = LAKE_RE.match(line)
            if lm:
                key = f"lake/{lm.group(2)}" if lm.group(1) else "lake/write"
                rec = {"ns_per_op": float(lm.group(5))}
                for val, unit in METRIC_RE.findall(lm.group(6)):
                    rec["events_per_s" if unit == "events/s" else "scanned_frac"] = float(val)
                results[key] = rec
    return results


def base_tier(key):
    """Strips a trailing /cpu=N so required-tier checks see the tier."""
    return re.sub(r"/cpu=\d+$", "", key)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_out, traj_path = sys.argv[1], sys.argv[2]

    results = parse(bench_out)
    if not results:
        print("bench_to_json: no BenchmarkPulseRound[Sharded]/BenchmarkLake* lines found",
              file=sys.stderr)
        return 1

    tiers = {base_tier(k) for k in results}
    pulse = {t for t in tiers if not t.startswith("lake/")}
    required = set()
    if any("shards=" not in t for t in pulse):
        required |= SERIAL_REQUIRED
    if any("shards=" in t for t in pulse):
        required |= SHARDED_REQUIRED
    if any(t.startswith("lake/") and not t.startswith("lake/parallel/") for t in tiers):
        required |= LAKE_REQUIRED
    if any(t.startswith("lake/parallel/") for t in tiers):
        required |= LAKEPAR_REQUIRED
    missing = required - tiers
    if missing:
        print(f"bench_to_json: required tiers missing from the run: {sorted(missing)}",
              file=sys.stderr)
        return 1

    with open(traj_path) as f:
        traj = json.load(f)
    traj["ci_latest"] = {"results": results}
    with open(traj_path, "w") as f:
        json.dump(traj, f, indent=2)
        f.write("\n")

    leaks = {n: r for n, r in results.items()
             if not n.startswith("lake/") and r.get("allocs_per_op", 0) > 0}
    if leaks:
        print(f"bench_to_json: steady-state allocations regressed: {leaks}", file=sys.stderr)
        return 1
    print(f"bench_to_json: {len(results)} tiers recorded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
