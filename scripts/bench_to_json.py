#!/usr/bin/env python3
"""Fold `go test -bench BenchmarkPulseRound...` output into a trajectory file.

Usage: bench_to_json.py <bench.out> <BENCH_PRx.json>

Parses both benchmark families:

  BenchmarkPulseRound/n=512[/probed]           serial engine (PR 5 record)
  BenchmarkPulseRoundSharded/n=2048/shards=8   sharded engine (PR 7 record)

including the `/probed` variants (no-op probe attached to every message
event type) and `-cpu` suffixes (`-8` becomes a `/cpu=8` key suffix, so
a `-cpu 1,8` matrix records both points instead of overwriting one).
Results land under the "ci_latest" key of the trajectory file, and the
script exits non-zero if any steady-state pulse round allocated — serial
or sharded, probed or not, at any shard count: the allocation-free
message path is a regression-tested property, not an aspiration.

Required tiers (a run that silently dropped a regime must not pass):
  serial lines present  -> n=512, n=512/probed, n=2048, n=2048/probed
  sharded lines present -> n=2048/shards=1, n=2048/shards=8

ns/op regression gating and the shards=8 speedup gate live in
bench_compare.sh.
"""
import json
import re
import sys

LINE_RE = re.compile(
    r"^BenchmarkPulseRound(Sharded)?/"
    r"(n=\d+(?:/probed)?(?:/shards=\d+)?)"
    r"(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
    r".*?\s(\d+) B/op\s+(\d+) allocs/op"
)

SERIAL_REQUIRED = {"n=512", "n=512/probed", "n=2048", "n=2048/probed"}
SHARDED_REQUIRED = {"n=2048/shards=1", "n=2048/shards=8"}


def parse(path):
    """Returns {key: {ns_per_op, bytes_per_op, allocs_per_op}} for every
    pulse-round benchmark line, serial and sharded."""
    results = {}
    with open(path) as f:
        for line in f:
            m = LINE_RE.match(line.strip())
            if not m:
                continue
            key = m.group(2)
            if m.group(3):  # -cpu suffix: keep the matrix points distinct
                key += f"/cpu={m.group(3)}"
            results[key] = {
                "ns_per_op": float(m.group(4)),
                "bytes_per_op": int(m.group(5)),
                "allocs_per_op": int(m.group(6)),
            }
    return results


def base_tier(key):
    """Strips a trailing /cpu=N so required-tier checks see the tier."""
    return re.sub(r"/cpu=\d+$", "", key)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_out, traj_path = sys.argv[1], sys.argv[2]

    results = parse(bench_out)
    if not results:
        print("bench_to_json: no BenchmarkPulseRound[Sharded] lines found", file=sys.stderr)
        return 1

    tiers = {base_tier(k) for k in results}
    required = set()
    if any("shards=" not in t for t in tiers):
        required |= SERIAL_REQUIRED
    if any("shards=" in t for t in tiers):
        required |= SHARDED_REQUIRED
    missing = required - tiers
    if missing:
        print(f"bench_to_json: required tiers missing from the run: {sorted(missing)}",
              file=sys.stderr)
        return 1

    with open(traj_path) as f:
        traj = json.load(f)
    traj["ci_latest"] = {"results": results}
    with open(traj_path, "w") as f:
        json.dump(traj, f, indent=2)
        f.write("\n")

    leaks = {n: r for n, r in results.items() if r["allocs_per_op"] > 0}
    if leaks:
        print(f"bench_to_json: steady-state allocations regressed: {leaks}", file=sys.stderr)
        return 1
    print(f"bench_to_json: {len(results)} tiers recorded, all allocation-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
