#!/usr/bin/env python3
"""Fold `go test -bench BenchmarkPulseRound` output into a trajectory file.

Usage: bench_to_json.py <bench.out> <BENCH_PRx.json>

Parses the benchmark lines — including the `/probed` variants that run
with a no-op probe attached to every message event type — records them
under the "ci_latest" key of the trajectory file, and exits non-zero if
any steady-state pulse round allocated (probed or not): the
allocation-light message path is a regression-tested property, not an
aspiration. The required tier set includes the n=2048 scaling tier
(PR 5): a run that silently dropped the large-n regime must not pass.
ns/op regression gating lives in bench_compare.sh.
"""
import json
import re
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_out, traj_path = sys.argv[1], sys.argv[2]

    line_re = re.compile(
        r"^BenchmarkPulseRound/(n=\d+(?:/probed)?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
        r".*?\s(\d+) B/op\s+(\d+) allocs/op"
    )
    results = {}
    with open(bench_out) as f:
        for line in f:
            m = line_re.match(line.strip())
            if m:
                results[m.group(1)] = {
                    "ns_per_op": float(m.group(2)),
                    "bytes_per_op": int(m.group(3)),
                    "allocs_per_op": int(m.group(4)),
                }
    if not results:
        print("bench_to_json: no BenchmarkPulseRound lines found", file=sys.stderr)
        return 1

    required = {"n=512", "n=512/probed", "n=2048", "n=2048/probed"}
    missing = required - results.keys()
    if missing:
        print(f"bench_to_json: required tiers missing from the run: {sorted(missing)}",
              file=sys.stderr)
        return 1

    with open(traj_path) as f:
        traj = json.load(f)
    traj["ci_latest"] = {"results": results}
    with open(traj_path, "w") as f:
        json.dump(traj, f, indent=2)
        f.write("\n")

    leaks = {n: r for n, r in results.items() if r["allocs_per_op"] > 0}
    if leaks:
        print(f"bench_to_json: steady-state allocations regressed: {leaks}", file=sys.stderr)
        return 1
    print(f"bench_to_json: {len(results)} sizes recorded, all allocation-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
