#!/usr/bin/env bash
# bench_fabric.sh — measure and gate the campaign coordinator's loopback
# RPC throughput, and record it as BENCH_PR6.json.
#
# Usage: scripts/bench_fabric.sh [bench.out]
#
#   bench.out  `go test -bench BenchmarkCoordinatorRPC -benchmem` output;
#              when omitted, the benchmark is run fresh (benchtime 2s).
#
# One benchmark op is a full worker round-trip: one /lease RPC plus one
# /report RPC (JSON decode, key check, durable store write, lease
# settle). RPCs/sec is therefore 2e9 / (ns/op).
#
# Fails when throughput lands below the floor (default 2000 RPC/s,
# override with FABRIC_RPC_FLOOR). Writes BENCH_PR6.json next to the
# other trajectory records unless BENCH_JSON_OUT says otherwise; set
# BENCH_JSON_OUT=/dev/null to skip recording (CI compares against the
# committed file instead of overwriting it).
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_OUT="${1:-}"
FLOOR="${FABRIC_RPC_FLOOR:-2000}"
JSON_OUT="${BENCH_JSON_OUT:-BENCH_PR6.json}"

if [[ -z "$BENCH_OUT" ]]; then
    BENCH_OUT="$(mktemp)"
    echo "bench_fabric: running BenchmarkCoordinatorRPC (benchtime 2s)..." >&2
    go test -run xxx -bench BenchmarkCoordinatorRPC -benchtime 2s -benchmem \
        ./internal/fabric/ | tee "$BENCH_OUT"
fi

python3 - "$BENCH_OUT" "$FLOOR" "$JSON_OUT" <<'PY'
import json, re, sys

bench_out, floor, json_out = sys.argv[1], float(sys.argv[2]), sys.argv[3]
line_re = re.compile(
    r"^BenchmarkCoordinatorRPC(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
    r"(?:\s+(\d+) B/op\s+(\d+) allocs/op)?"
)
ns_per_op = None
for line in open(bench_out):
    m = line_re.match(line.strip())
    if m:
        ns_per_op = float(m.group(1))
        bytes_per_op = int(m.group(2)) if m.group(2) else None
        allocs_per_op = int(m.group(3)) if m.group(3) else None
if ns_per_op is None:
    sys.exit("bench_fabric: no BenchmarkCoordinatorRPC line in " + bench_out)

RPCS_PER_OP = 2  # one /lease + one /report
rpc_per_sec = RPCS_PER_OP * 1e9 / ns_per_op
print(f"bench_fabric: {ns_per_op:.0f} ns/op "
      f"({RPCS_PER_OP} RPCs/op) -> {rpc_per_sec:.0f} RPC/s (floor {floor:.0f})")

record = {
    "benchmark": "BenchmarkCoordinatorRPC",
    "description": "coordinator loopback throughput; one op = one /lease + one /report",
    "rpcs_per_op": RPCS_PER_OP,
    "ns_per_op": ns_per_op,
    "rpc_per_sec": round(rpc_per_sec, 1),
    "floor_rpc_per_sec": floor,
}
if bytes_per_op is not None:
    record["bytes_per_op"] = bytes_per_op
    record["allocs_per_op"] = allocs_per_op
if json_out != "/dev/null":
    with open(json_out, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    print(f"bench_fabric: recorded {json_out}")

if rpc_per_sec < floor:
    sys.exit(f"bench_fabric: FAIL: {rpc_per_sec:.0f} RPC/s below the "
             f"{floor:.0f} RPC/s floor")
print("bench_fabric: OK")
PY
