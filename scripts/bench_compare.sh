#!/usr/bin/env bash
# bench_compare.sh — gate the pulse-round hot path against the committed
# benchmark record.
#
# Usage: scripts/bench_compare.sh [bench.out] [BENCH_PRx.json]
#
#   bench.out      `go test -bench BenchmarkPulseRound -benchmem` output;
#                  when omitted, the benchmark is run fresh (benchtime 3x).
#   BENCH_PRx.json committed trajectory file (default BENCH_PR5.json);
#                  its probe_off results are the regression baseline.
#
# Fails when:
#   - any BenchmarkPulseRound size allocates (probed or not), or
#   - the fresh n=512 probe-off ns/op regresses more than 10% against the
#     committed record.
#
# When benchstat (golang.org/x/perf) is on PATH, a baseline bench file is
# synthesized from the JSON and a full benchstat delta report is printed;
# without it the script falls back to a plain ratio table. benchstat is a
# nicety for humans — the gate itself needs only python3.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_OUT="${1:-}"
BASELINE="${2:-BENCH_PR5.json}"
TOLERANCE="${BENCH_TOLERANCE:-1.10}"

if [[ -z "$BENCH_OUT" ]]; then
    BENCH_OUT="$(mktemp)"
    echo "bench_compare: running BenchmarkPulseRound (benchtime 3x)..." >&2
    go test -run xxx -bench BenchmarkPulseRound -benchtime 3x -benchmem . | tee "$BENCH_OUT"
fi

if command -v benchstat >/dev/null 2>&1; then
    OLD="$(mktemp)"
    python3 - "$BASELINE" > "$OLD" <<'PY'
import json, sys
traj = json.load(open(sys.argv[1]))
for name, r in sorted(traj["probe_off"]["results"].items()):
    print(f"BenchmarkPulseRound/{name}-1 1 {r['ns_per_op']} ns/op")
PY
    echo "--- benchstat (committed ${BASELINE} probe-off vs fresh run) ---"
    benchstat "$OLD" "$BENCH_OUT" || true
fi

python3 - "$BENCH_OUT" "$BASELINE" "$TOLERANCE" <<'PY'
import json, re, sys

bench_out, baseline_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
line_re = re.compile(
    r"^BenchmarkPulseRound/(n=\d+(?:/probed)?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
    r".*?\s(\d+) B/op\s+(\d+) allocs/op"
)
fresh = {}
for line in open(bench_out):
    m = line_re.match(line.strip())
    if m:
        fresh[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "allocs_per_op": int(m.group(4)),
        }
if not fresh:
    sys.exit("bench_compare: no BenchmarkPulseRound lines in " + bench_out)

failures = []
leaks = {n: r["allocs_per_op"] for n, r in fresh.items() if r["allocs_per_op"] > 0}
if leaks:
    failures.append(f"steady-state allocations regressed: {leaks}")

committed = json.load(open(baseline_path))["probe_off"]["results"]
print(f"{'size':>16} {'committed ns/op':>16} {'fresh ns/op':>14} {'ratio':>7}")
for name, base in sorted(committed.items()):
    got = fresh.get(name)
    if got is None:
        failures.append(f"{name}: missing from fresh run")
        continue
    ratio = got["ns_per_op"] / base["ns_per_op"]
    print(f"{name:>16} {base['ns_per_op']:>16.0f} {got['ns_per_op']:>14.0f} {ratio:>6.2f}x")

gate = "n=512"
if gate in fresh and gate in committed:
    ratio = fresh[gate]["ns_per_op"] / committed[gate]["ns_per_op"]
    if ratio > tolerance:
        failures.append(
            f"{gate} probe-off regressed {ratio:.2f}x vs committed "
            f"{baseline_path} (tolerance {tolerance:.2f}x)"
        )

if failures:
    for f in failures:
        print("bench_compare: FAIL:", f, file=sys.stderr)
    sys.exit(1)
print("bench_compare: OK (no allocations; n=512 within tolerance)")
PY
