#!/usr/bin/env bash
# bench_compare.sh — gate the pulse-round hot path against the committed
# benchmark record.
#
# Usage: scripts/bench_compare.sh [bench.out] [BENCH_PRx.json]
#
#   bench.out      `go test -bench BenchmarkPulseRound -benchmem` output
#                  (serial and/or sharded lines); when omitted, both
#                  families are run fresh (benchtime 3x).
#   BENCH_PRx.json committed trajectory file (default BENCH_PR5.json);
#                  its probe_off results, when present, are the serial
#                  ns/op regression baseline. A record without probe_off
#                  (e.g. BENCH_PR7.json, sharded-only) skips that gate.
#
# Fails when:
#   - any pulse-round tier allocates (serial or sharded, probed or not), or
#   - the fresh n=512 probe-off ns/op regresses more than 10% against the
#     committed record (serial runs only), or
#   - the run includes the n=2048 shard matrix on a >=8-CPU point and
#     shards=8 is not at least SHARD_SPEEDUP_FLOOR (default 3.0) times
#     faster than shards=1 at the same CPU count. The speedup gate is
#     core-aware: a single-core runner executes the shard matrix for the
#     allocation gate but cannot measure parallelism, so the ratio check
#     arms only when the benchmark actually ran with >=8 CPUs (the -cpu
#     suffix on the result line is the ground truth, not the host's nproc), or
#   - the run includes BenchmarkLakeScan lines and the full sequential
#     scan decodes below LAKE_SCAN_FLOOR events/s (default 100e6,
#     single-core), or the ~1%-selective pruned scan is not at least
#     LAKE_PRUNE_RATIO (default 5.0) times faster than the full scan —
#     the trace lake's two PR 8 acceptance floors, or
#   - the run includes the BenchmarkLakeScanParallel matrix on a >=8-CPU
#     point and workers=8 is not at least LAKE_PARALLEL_FLOOR (default
#     3.0) times faster than workers=1 at the same CPU count. Like the
#     shard gate, this arms only when the -cpu suffix proves the run had
#     >=8 CPUs — a single-core runner exercises the pool for correctness
#     but cannot witness parallel speedup.
#
# When benchstat (golang.org/x/perf) is on PATH, a baseline bench file is
# synthesized from the JSON and a full benchstat delta report is printed;
# without it the script falls back to a plain ratio table. benchstat is a
# nicety for humans — the gate itself needs only python3.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_OUT="${1:-}"
BASELINE="${2:-BENCH_PR5.json}"
TOLERANCE="${BENCH_TOLERANCE:-1.10}"
SPEEDUP_FLOOR="${SHARD_SPEEDUP_FLOOR:-3.0}"
LAKE_FLOOR="${LAKE_SCAN_FLOOR:-100000000}"
LAKE_RATIO="${LAKE_PRUNE_RATIO:-5.0}"
LAKEPAR_FLOOR="${LAKE_PARALLEL_FLOOR:-3.0}"

if [[ -z "$BENCH_OUT" ]]; then
    BENCH_OUT="$(mktemp)"
    echo "bench_compare: running BenchmarkPulseRound[Sharded] (benchtime 3x)..." >&2
    go test -run xxx -bench 'BenchmarkPulseRound(Sharded)?$' -benchtime 3x -benchmem . | tee "$BENCH_OUT"
    echo "bench_compare: running BenchmarkLakeScan..." >&2
    go test -run xxx -bench 'BenchmarkLakeScan$' -benchmem ./internal/tracelake | tee -a "$BENCH_OUT"
fi

if command -v benchstat >/dev/null 2>&1; then
    OLD="$(mktemp)"
    python3 - "$BASELINE" > "$OLD" <<'PY'
import json, sys
traj = json.load(open(sys.argv[1]))
for name, r in sorted(traj.get("probe_off", {}).get("results", {}).items()):
    print(f"BenchmarkPulseRound/{name}-1 1 {r['ns_per_op']} ns/op")
PY
    if [[ -s "$OLD" ]]; then
        echo "--- benchstat (committed ${BASELINE} probe-off vs fresh run) ---"
        benchstat "$OLD" "$BENCH_OUT" || true
    fi
fi

python3 - "$BENCH_OUT" "$BASELINE" "$TOLERANCE" "$SPEEDUP_FLOOR" "$LAKE_FLOOR" "$LAKE_RATIO" "$LAKEPAR_FLOOR" <<'PY'
import json, re, sys

bench_out, baseline_path = sys.argv[1], sys.argv[2]
tolerance, speedup_floor = float(sys.argv[3]), float(sys.argv[4])
lake_floor, lake_ratio = float(sys.argv[5]), float(sys.argv[6])
lakepar_floor = float(sys.argv[7])
line_re = re.compile(
    r"^BenchmarkPulseRound(Sharded)?/"
    r"(n=\d+(?:/probed)?(?:/shards=\d+)?)"
    r"(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
    r".*?\s(\d+) B/op\s+(\d+) allocs/op"
)
lake_re = re.compile(
    r"^BenchmarkLakeScan/(full|pruned|merge)"
    r"(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$"
)
lakepar_re = re.compile(
    r"^BenchmarkLakeScanParallel/workers=(\d+)"
    r"(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$"
)
metric_re = re.compile(r"([\d.e+-]+) (events/s|scanned-frac)")
serial, sharded, lake, lakepar = {}, {}, {}, {}
for line in open(bench_out):
    line = line.strip()
    pm = lakepar_re.match(line)
    if pm:
        rec = {"ns_per_op": float(pm.group(3))}
        for val, unit in metric_re.findall(pm.group(4)):
            rec[unit] = float(val)
        cpu = int(pm.group(2)) if pm.group(2) else None
        lakepar[(int(pm.group(1)), cpu)] = rec
        continue
    m = line_re.match(line)
    if m:
        rec = {"ns_per_op": float(m.group(4)), "allocs_per_op": int(m.group(6))}
        cpu = int(m.group(3)) if m.group(3) else None
        if m.group(1):  # Sharded
            sm = re.match(r"n=(\d+)/shards=(\d+)", m.group(2))
            sharded[(int(sm.group(1)), int(sm.group(2)), cpu)] = rec
        else:
            # Serial: last cpu point wins for the ratio table (same tier key).
            serial[m.group(2)] = rec
        continue
    lm = lake_re.match(line)
    if lm:
        rec = {"ns_per_op": float(lm.group(2))}
        for val, unit in metric_re.findall(lm.group(3)):
            rec[unit] = float(val)
        lake[lm.group(1)] = rec
if not serial and not sharded and not lake and not lakepar:
    sys.exit("bench_compare: no BenchmarkPulseRound[Sharded]/BenchmarkLakeScan[Parallel] lines in " + bench_out)

failures = []
leaks = {n: r["allocs_per_op"] for n, r in serial.items() if r["allocs_per_op"] > 0}
leaks.update({f"n={n}/shards={k}" + (f"/cpu={c}" if c else ""): r["allocs_per_op"]
              for (n, k, c), r in sharded.items() if r["allocs_per_op"] > 0})
if leaks:
    failures.append(f"steady-state allocations regressed: {leaks}")

committed = json.load(open(baseline_path)).get("probe_off", {}).get("results", {})
if committed and serial:
    print(f"{'size':>16} {'committed ns/op':>16} {'fresh ns/op':>14} {'ratio':>7}")
    for name, base in sorted(committed.items()):
        got = serial.get(name)
        if got is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        ratio = got["ns_per_op"] / base["ns_per_op"]
        print(f"{name:>16} {base['ns_per_op']:>16.0f} {got['ns_per_op']:>14.0f} {ratio:>6.2f}x")

    gate = "n=512"
    if gate in serial and gate in committed:
        ratio = serial[gate]["ns_per_op"] / committed[gate]["ns_per_op"]
        if ratio > tolerance:
            failures.append(
                f"{gate} probe-off regressed {ratio:.2f}x vs committed "
                f"{baseline_path} (tolerance {tolerance:.2f}x)"
            )
elif serial:
    print(f"bench_compare: {baseline_path} has no probe_off record; serial ns/op gate skipped")

if sharded:
    print(f"{'shard tier':>24} {'ns/op':>14} {'vs shards=1':>12}")
    for (n, k, c), r in sorted(sharded.items(), key=lambda kv: (kv[0][0], kv[0][2] or 0, kv[0][1])):
        base = sharded.get((n, 1, c))
        rel = f"{base['ns_per_op'] / r['ns_per_op']:.2f}x" if base else "-"
        cpu = f"/cpu={c}" if c else ""
        print(f"{f'n={n}/shards={k}{cpu}':>24} {r['ns_per_op']:>14.0f} {rel:>12}")

    # Core-aware parallel speedup gate: only a measurement that actually
    # ran with >=8 CPUs can witness (or refute) the 8-shard speedup.
    gated = False
    for (n, k, c), r in sharded.items():
        if n == 2048 and k == 8 and c is not None and c >= 8:
            base = sharded.get((n, 1, c))
            if base is None:
                failures.append(f"n=2048/shards=1/cpu={c}: missing, cannot gate speedup")
                continue
            gated = True
            speedup = base["ns_per_op"] / r["ns_per_op"]
            if speedup < speedup_floor:
                failures.append(
                    f"n=2048 shards=8 speedup {speedup:.2f}x at cpu={c} is below the "
                    f"{speedup_floor:.1f}x floor (override with SHARD_SPEEDUP_FLOOR)"
                )
            else:
                print(f"bench_compare: n=2048 shards=8 speedup {speedup:.2f}x at cpu={c} "
                      f"(floor {speedup_floor:.1f}x)")
    if not gated:
        print("bench_compare: shard speedup gate skipped (no n=2048 point ran with >=8 CPUs)")

if lake:
    print(f"{'lake tier':>12} {'ns/op':>14} {'events/s':>14} {'vs full':>8}")
    full = lake.get("full")
    for name in ("full", "pruned", "merge"):
        r = lake.get(name)
        if r is None:
            continue
        evs = f"{r['events/s']:.3g}" if "events/s" in r else "-"
        rel = f"{full['ns_per_op'] / r['ns_per_op']:.1f}x" if full and name != "full" else "-"
        print(f"{name:>12} {r['ns_per_op']:>14.0f} {evs:>14} {rel:>8}")

    if full is None or "pruned" not in lake:
        failures.append("lake: BenchmarkLakeScan ran without both full and pruned tiers")
    else:
        evs = full.get("events/s", 0.0)
        if evs < lake_floor:
            failures.append(
                f"lake full scan {evs:.3g} events/s is below the {lake_floor:.3g} floor "
                f"(override with LAKE_SCAN_FLOOR)"
            )
        else:
            print(f"bench_compare: lake full scan {evs:.3g} events/s (floor {lake_floor:.3g})")
        speedup = full["ns_per_op"] / lake["pruned"]["ns_per_op"]
        if speedup < lake_ratio:
            failures.append(
                f"lake pruned scan only {speedup:.2f}x faster than full (floor {lake_ratio:.1f}x, "
                f"override with LAKE_PRUNE_RATIO)"
            )
        else:
            print(f"bench_compare: lake pruned scan {speedup:.1f}x faster than full "
                  f"(floor {lake_ratio:.1f}x)")

if lakepar:
    print(f"{'parallel tier':>24} {'ns/op':>14} {'events/s':>14} {'vs workers=1':>13}")
    for (w, c), r in sorted(lakepar.items(), key=lambda kv: (kv[0][1] or 0, kv[0][0])):
        base = lakepar.get((1, c))
        rel = f"{base['ns_per_op'] / r['ns_per_op']:.2f}x" if base and w != 1 else "-"
        evs = f"{r['events/s']:.3g}" if "events/s" in r else "-"
        cpu = f"/cpu={c}" if c else ""
        print(f"{f'workers={w}{cpu}':>24} {r['ns_per_op']:>14.0f} {evs:>14} {rel:>13}")

    # Core-aware parallel-scan speedup gate, same arming rule as the
    # shard gate: only a >=8-CPU measurement can witness the speedup.
    gated = False
    for (w, c), r in lakepar.items():
        if w == 8 and c is not None and c >= 8:
            base = lakepar.get((1, c))
            if base is None:
                failures.append(f"lake workers=1/cpu={c}: missing, cannot gate parallel speedup")
                continue
            gated = True
            speedup = base["ns_per_op"] / r["ns_per_op"]
            if speedup < lakepar_floor:
                failures.append(
                    f"lake workers=8 speedup {speedup:.2f}x at cpu={c} is below the "
                    f"{lakepar_floor:.1f}x floor (override with LAKE_PARALLEL_FLOOR)"
                )
            else:
                print(f"bench_compare: lake workers=8 speedup {speedup:.2f}x at cpu={c} "
                      f"(floor {lakepar_floor:.1f}x)")
    if not gated:
        print("bench_compare: lake parallel gate skipped (no workers=8 point ran with >=8 CPUs)")

if failures:
    for f in failures:
        print("bench_compare: FAIL:", f, file=sys.stderr)
    sys.exit(1)
print("bench_compare: OK")
PY
