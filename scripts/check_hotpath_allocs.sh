#!/usr/bin/env bash
# check_hotpath_allocs.sh — the dynamic half of the hotpath contract.
#
# syncsimlint's hotpath analyzer statically forbids alloc-inducing
# syntax in //syncsim:hotpath functions; this script asks the compiler's
# escape analysis for the rest: build the annotated packages with
# -gcflags=-m and fail if any "escapes to heap" / "moved to heap"
# diagnostic lands inside an annotated function's line range (the ranges
# come from `syncsimlint -hotpath-ranges`). -a forces recompilation so a
# warm build cache can never swallow the diagnostics and pass vacuously.
#
# MIN_HOTPATH (default 5) guards against the annotations being deleted
# wholesale: fewer annotated functions than the floor is itself a
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

min="${MIN_HOTPATH:-5}"

ranges="$(go run ./cmd/syncsimlint -hotpath-ranges ./...)"
n="$(printf '%s\n' "$ranges" | sed '/^$/d' | wc -l)"
if [ "$n" -lt "$min" ]; then
  echo "check_hotpath_allocs: found $n //syncsim:hotpath functions, need >= $min" >&2
  exit 1
fi
echo "checking $n hotpath functions:"
printf '%s\n' "$ranges" | awk '{printf "  %-45s %s:%s-%s\n", $4, $1, $2, $3}'

# Build only the packages that contain annotations (plus whatever they
# pull in); -gcflags=-m applies to the named packages, whose files are
# the only ones the ranges can name.
dirs="$(printf '%s\n' "$ranges" | awk '{print $1}' | xargs -n1 dirname | sort -u | sed 's|^|./|')"
# shellcheck disable=SC2086
escapes="$(go build -a -gcflags=-m $dirs 2>&1 | grep -E 'escapes to heap|moved to heap' || true)"

bad=0
while read -r file start end name; do
  [ -n "$file" ] || continue
  hits="$(printf '%s\n' "$escapes" | awk -F: -v f="$file" -v s="$start" -v e="$end" '$1==f && $2+0>=s && $2+0<=e')"
  if [ -n "$hits" ]; then
    echo "FAIL: //syncsim:hotpath $name ($file:$start-$end) allocates:" >&2
    printf '%s\n' "$hits" >&2
    bad=1
  fi
done <<EOF
$ranges
EOF

if [ "$bad" -ne 0 ]; then
  exit 1
fi
echo "ok: no escape-analysis allocations inside hotpath functions"
