package optsync

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes a stream of results. Run and RunBatch write results in
// input order and call Flush before returning; sinks need not be
// goroutine-safe.
type Sink interface {
	Write(Result) error
	Flush() error
}

// resultRecord is the flattened, machine-readable projection of a Result
// shared by the CSV and JSON sinks.
type resultRecord struct {
	Name    string    `json:"name,omitempty"`
	Algo    Algorithm `json:"algo"`
	Attack  Attack    `json:"attack"`
	N       int       `json:"n"`
	F       int       `json:"f"`
	Faulty  int       `json:"faulty"`
	Seed    int64     `json:"seed"`
	Horizon float64   `json:"horizon_s"`

	MaxSkew    float64 `json:"max_skew_s"`
	SkewBound  float64 `json:"skew_bound_s"`
	WithinSkew bool    `json:"within_skew"`
	SkewP50    float64 `json:"skew_p50_s"`
	SkewP95    float64 `json:"skew_p95_s"`
	SkewP99    float64 `json:"skew_p99_s"`

	MaxSpread   float64 `json:"max_spread_s"`
	SpreadBound float64 `json:"spread_bound_s"`

	CompleteRounds int `json:"complete_rounds"`
	PulseCount     int `json:"pulses"`

	MinPeriod float64 `json:"min_period_s"`
	MaxPeriod float64 `json:"max_period_s"`
	PminBound float64 `json:"pmin_bound_s"`
	PmaxBound float64 `json:"pmax_bound_s"`

	EnvLo          float64 `json:"env_lo"`
	EnvHi          float64 `json:"env_hi"`
	EnvBoundLo     float64 `json:"env_bound_lo"`
	EnvBoundHi     float64 `json:"env_bound_hi"`
	WithinEnvelope bool    `json:"within_envelope"`

	TotalMsgs      uint64  `json:"total_msgs"`
	MsgsPerRound   float64 `json:"msgs_per_round"`
	Delivered      uint64  `json:"delivered"`
	Dropped        uint64  `json:"dropped"`
	DroppedOffline uint64  `json:"dropped_offline"`
	DroppedLink    uint64  `json:"dropped_link"`

	Series []Sample `json:"series,omitempty"`
}

func record(r Result) resultRecord {
	return resultRecord{
		Name:   r.Spec.Name,
		Algo:   r.Spec.Algo,
		Attack: r.Spec.Attack,
		N:      r.Spec.Params.N, F: r.Spec.Params.F,
		Faulty: r.Spec.FaultyCount,
		Seed:   r.Spec.Seed, Horizon: r.Spec.Horizon,
		MaxSkew: r.MaxSkew, SkewBound: r.SkewBound, WithinSkew: r.WithinSkew,
		SkewP50: r.SkewP50, SkewP95: r.SkewP95, SkewP99: r.SkewP99,
		MaxSpread: r.MaxSpread, SpreadBound: r.SpreadBound,
		CompleteRounds: r.CompleteRounds, PulseCount: r.PulseCount,
		MinPeriod: r.MinPeriod, MaxPeriod: r.MaxPeriod,
		PminBound: r.PminBound, PmaxBound: r.PmaxBound,
		EnvLo: r.EnvLo, EnvHi: r.EnvHi,
		EnvBoundLo: r.EnvBoundLo, EnvBoundHi: r.EnvBoundHi,
		WithinEnvelope: r.WithinEnvelope,
		TotalMsgs:      r.TotalMsgs, MsgsPerRound: r.MsgsPerRound,
		Delivered: r.Delivered, Dropped: r.Dropped,
		DroppedOffline: r.DroppedOffline, DroppedLink: r.DroppedLink,
		Series: r.Series,
	}
}

// JSONSink emits one JSON object per result (JSON Lines): self-describing
// snake_case keys, skew series included when Spec.KeepSeries is set.
type JSONSink struct {
	enc *json.Encoder
}

// NewJSONSink writes JSON Lines to w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Write implements Sink.
func (s *JSONSink) Write(res Result) error { return s.enc.Encode(record(res)) }

// Flush implements Sink; the encoder writes through, so it is a no-op.
func (s *JSONSink) Flush() error { return nil }

// csvColumns is the fixed CSV header (the record minus the series).
var csvColumns = []string{
	"name", "algo", "attack", "n", "f", "faulty", "seed", "horizon_s",
	"max_skew_s", "skew_bound_s", "within_skew",
	"max_spread_s", "spread_bound_s",
	"complete_rounds", "pulses",
	"min_period_s", "max_period_s", "pmin_bound_s", "pmax_bound_s",
	"env_lo", "env_hi", "env_bound_lo", "env_bound_hi", "within_envelope",
	"total_msgs", "msgs_per_round",
	"delivered", "dropped", "dropped_offline", "dropped_link",
	"skew_p50_s", "skew_p95_s", "skew_p99_s",
}

// CSVSink emits one row per result with a fixed header.
type CSVSink struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVSink writes CSV to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Write implements Sink.
func (s *CSVSink) Write(res Result) error {
	if !s.wroteHeader {
		if err := s.w.Write(csvColumns); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	rec := record(res)
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return s.w.Write([]string{
		rec.Name, string(rec.Algo), string(rec.Attack),
		strconv.Itoa(rec.N), strconv.Itoa(rec.F), strconv.Itoa(rec.Faulty),
		strconv.FormatInt(rec.Seed, 10), g(rec.Horizon),
		g(rec.MaxSkew), g(rec.SkewBound), strconv.FormatBool(rec.WithinSkew),
		g(rec.MaxSpread), g(rec.SpreadBound),
		strconv.Itoa(rec.CompleteRounds), strconv.Itoa(rec.PulseCount),
		g(rec.MinPeriod), g(rec.MaxPeriod), g(rec.PminBound), g(rec.PmaxBound),
		g(rec.EnvLo), g(rec.EnvHi), g(rec.EnvBoundLo), g(rec.EnvBoundHi),
		strconv.FormatBool(rec.WithinEnvelope),
		strconv.FormatUint(rec.TotalMsgs, 10), g(rec.MsgsPerRound),
		strconv.FormatUint(rec.Delivered, 10), strconv.FormatUint(rec.Dropped, 10),
		strconv.FormatUint(rec.DroppedOffline, 10), strconv.FormatUint(rec.DroppedLink, 10),
		g(rec.SkewP50), g(rec.SkewP95), g(rec.SkewP99),
	})
}

// Flush implements Sink.
func (s *CSVSink) Flush() error {
	s.w.Flush()
	return s.w.Error()
}

// TableSink accumulates a compact human-readable summary row per result
// and renders one aligned table on Flush.
type TableSink struct {
	out io.Writer
	t   *Table
}

// NewTableSink renders to w on Flush.
func NewTableSink(w io.Writer) *TableSink {
	return &TableSink{
		out: w,
		t: NewTable("results",
			"name", "algo", "attack", "n", "f", "faulty", "seed",
			"max_skew_s", "skew_bound_s", "skew",
			"env_lo", "env_hi", "envelope", "rounds", "msgs_per_round"),
	}
}

// Title overrides the rendered table title.
func (s *TableSink) Title(title string) *TableSink {
	s.t.Title = title
	return s
}

// Write implements Sink.
func (s *TableSink) Write(res Result) error {
	s.t.AddRow(
		res.Spec.Name, string(res.Spec.Algo), string(res.Spec.Attack),
		strconv.Itoa(res.Spec.Params.N), strconv.Itoa(res.Spec.Params.F),
		strconv.Itoa(res.Spec.FaultyCount), strconv.FormatInt(res.Spec.Seed, 10),
		F(res.MaxSkew), F(res.SkewBound), FmtBool(res.WithinSkew),
		F(res.EnvLo), F(res.EnvHi), FmtBool(res.WithinEnvelope),
		strconv.Itoa(res.CompleteRounds), F(res.MsgsPerRound),
	)
	return nil
}

// Flush implements Sink: renders the accumulated table.
func (s *TableSink) Flush() error {
	if len(s.t.Rows) == 0 {
		return nil
	}
	_, err := fmt.Fprintln(s.out, s.t.Render())
	rows := s.t.Rows[:0]
	s.t.Rows = rows
	return err
}
