package optsync

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// collectors returns one fresh instance of every built-in collector.
func collectors() []Collector {
	return []Collector{
		NewSkewCollector(), NewSpreadCollector(), NewMsgCollector(),
		NewReintegrationCollector(), NewSeriesCollector(),
	}
}

// aggregates snapshots every collector's aggregate for exact comparison.
func aggregates(cols []Collector) map[string][]Stat {
	out := make(map[string][]Stat, len(cols))
	for _, c := range cols {
		out[c.Name()] = c.Aggregate()
	}
	return out
}

func TestWithProbeAndCollector(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	var msgEvents atomic.Int64
	msgs := NewMsgCollector()
	skew := NewSkewCollector()
	res, err := Run(context.Background(), spec,
		WithProbe(ProbeFunc(func(Event) { msgEvents.Add(1) }), MessageEventTypes()...),
		WithCollector(msgs),
		WithCollector(skew),
	)
	if err != nil {
		t.Fatal(err)
	}
	if msgEvents.Load() == 0 {
		t.Fatal("message probe saw nothing")
	}
	if msgs.Sent() != res.TotalMsgs {
		t.Fatalf("collector sent %d != result %d", msgs.Sent(), res.TotalMsgs)
	}
	if skew.Max() != res.MaxSkew || skew.P95() != res.SkewP95 {
		t.Fatalf("skew collector (max %v, p95 %v) disagrees with result (max %v, p95 %v)",
			skew.Max(), skew.P95(), res.MaxSkew, res.SkewP95)
	}
}

// TestTraceReplayRoundTrip is the PR's acceptance contract: export a
// run's trace (both formats), replay it through fresh collectors, and
// require bit-identical aggregates.
func TestTraceReplayRoundTrip(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	// A late joiner and a partition window exercise every event type.
	spec.StartAt = map[int]float64{0: 3.25}
	spec.Partitions = []Partition{{At: 2, Heal: 4, LeftSize: 2}}

	for _, format := range []TraceFormat{TraceJSONL, TraceBinary} {
		var buf bytes.Buffer
		tw := NewTraceWriter(&buf, format)
		live := collectors()
		opts := []Option{WithTrace(tw)}
		for _, c := range live {
			opts = append(opts, WithCollector(c))
		}
		if _, err := Run(context.Background(), spec, opts...); err != nil {
			t.Fatal(err)
		}
		if tw.Events() == 0 {
			t.Fatal("trace recorded no events")
		}

		replayed := collectors()
		probes := make([]Probe, len(replayed))
		for i, c := range replayed {
			probes[i] = c
		}
		n, err := ReplayTrace(bytes.NewReader(buf.Bytes()), probes...)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(n) != tw.Events() {
			t.Fatalf("replayed %d of %d recorded events", n, tw.Events())
		}
		liveAgg, replayAgg := aggregates(live), aggregates(replayed)
		if !reflect.DeepEqual(liveAgg, replayAgg) {
			t.Fatalf("format %v: replay aggregates diverged\n live   %+v\n replay %+v",
				format, liveAgg, replayAgg)
		}
	}
}

// TestLakeTraceReplayRoundTrip is the lake acceptance contract at the
// public-API layer: a run recorded with WithLakeTrace, replayed from the
// container through fresh collectors, reproduces the live aggregates
// exactly — including when the recording run used the sharded engine.
func TestLakeTraceReplayRoundTrip(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	// A late joiner and a partition window exercise every event type.
	spec.StartAt = map[int]float64{0: 3.25}
	spec.Partitions = []Partition{{At: 2, Heal: 4, LeftSize: 2}}

	for _, shards := range []int{1, 8} {
		spec.Shards = shards
		var buf bytes.Buffer
		lw := NewLakeWriter(&buf)
		live := collectors()
		opts := []Option{WithLakeTrace(lw)}
		for _, c := range live {
			opts = append(opts, WithCollector(c))
		}
		if _, err := Run(context.Background(), spec, opts...); err != nil {
			t.Fatal(err)
		}
		if lw.Events() == 0 {
			t.Fatal("lake recorded no events")
		}

		path := filepath.Join(t.TempDir(), "run.lake")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}

		// File-path layer: ReplayLake with a match-all query.
		replayed := collectors()
		probes := make([]Probe, len(replayed))
		for i, c := range replayed {
			probes[i] = c
		}
		n, err := ReplayLake(path, LakeQuery{}, probes...)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(n) != lw.Events() {
			t.Fatalf("shards=%d: replayed %d of %d recorded events", shards, n, lw.Events())
		}
		liveAgg, replayAgg := aggregates(live), aggregates(replayed)
		if !reflect.DeepEqual(liveAgg, replayAgg) {
			t.Fatalf("shards=%d: lake replay aggregates diverged\n live   %+v\n replay %+v",
				shards, liveAgg, replayAgg)
		}

		// In-memory layer: OpenLakeBytes sees the same stream.
		l, err := OpenLakeBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		memReplayed := collectors()
		memProbes := make([]Probe, len(memReplayed))
		for i, c := range memReplayed {
			memProbes[i] = c
		}
		if m, err := l.Replay(LakeQuery{}, memProbes...); err != nil || m != n {
			t.Fatalf("shards=%d: OpenLakeBytes replay: %d events, err %v (want %d, nil)", shards, m, err, n)
		}
		if got := aggregates(memReplayed); !reflect.DeepEqual(liveAgg, got) {
			t.Fatalf("shards=%d: in-memory replay aggregates diverged", shards)
		}
		l.Close()
	}
}

// TestQueryLakePushdown checks the one-shot query path end to end: a
// typed, time-bounded query returns exactly the events a full replay
// would filter to, and the footer index pruned at least one block.
func TestQueryLakePushdown(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	var buf bytes.Buffer
	lw := NewLakeWriter(&buf)
	if _, err := Run(context.Background(), spec, WithLakeTrace(lw)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.lake")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	q := LakeQuery{}.WithTypes(EventSkewSample).WithTimeRange(0, spec.Horizon/2)
	var want int
	if _, err := QueryLake(path, LakeQuery{}, func(ev Event) error {
		if ev.Type == EventSkewSample && ev.T <= spec.Horizon/2 {
			want++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	got := 0
	st, err := QueryLake(path, q, func(ev Event) error {
		if ev.Type != EventSkewSample || ev.T > spec.Horizon/2 {
			t.Fatalf("query leaked event %+v", ev)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got == 0 {
		t.Fatalf("query matched %d events, reference filter %d", got, want)
	}
	if uint64(got) != st.EventsMatched {
		t.Fatalf("stats count %d != callback count %d", st.EventsMatched, got)
	}
	if st.BlocksPruned == 0 {
		t.Fatalf("typed query pruned nothing: %+v", st)
	}
}

// TestBatchSharedProbeIsSerialized: one unguarded collector over a
// parallel batch must tally every run exactly once (the WithProbe
// wrapper serializes concurrent calls; -race proves the absence of
// races).
func TestBatchSharedProbeIsSerialized(t *testing.T) {
	specs := testSpecs(t, 12)
	msgs := NewMsgCollector()
	shared := 0 // deliberately unguarded shared state
	results, err := RunBatch(context.Background(), specs,
		WithWorkers(8),
		WithCollector(msgs),
		WithProbe(ProbeFunc(func(Event) { shared++ }), EventNodeBoot),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wantSent uint64
	for _, res := range results {
		wantSent += res.TotalMsgs
	}
	if msgs.Sent() != wantSent {
		t.Fatalf("batch collector sent %d, runs total %d", msgs.Sent(), wantSent)
	}
	if wantBoots := len(specs) * specs[0].Params.N; shared != wantBoots {
		t.Fatalf("shared probe counted %d boots, want %d", shared, wantBoots)
	}
}

// TestProgressAndSinkConcurrencyContract hammers a parallel batch whose
// progress callback and sink both mutate unguarded shared state — the
// documented contract is that both are serialized under the batch lock.
// Run under -race (CI does) this test is the proof.
func TestProgressAndSinkConcurrencyContract(t *testing.T) {
	specs := testSpecs(t, 16)
	type row struct {
		index int
		skew  float64
	}
	var (
		progressed []row  // mutated from the progress callback
		emitted    []Spec // mutated from the sink
	)
	sink := sinkFunc(func(res Result) error {
		emitted = append(emitted, res.Spec)
		return nil
	})
	_, err := RunBatch(context.Background(), specs,
		WithWorkers(8),
		WithSeeds(2),
		WithProgress(func(ev ProgressEvent) {
			progressed = append(progressed, row{ev.Index, ev.Result.MaxSkew})
		}),
		WithSink(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(progressed) != 32 || len(emitted) != 32 {
		t.Fatalf("progress %d, sink %d, want 32 each", len(progressed), len(emitted))
	}
	// Sink order is input order even under 8 workers.
	for i, spec := range emitted {
		if want := specs[i/2].Seed + int64(i%2); spec.Seed != want {
			t.Fatalf("sink row %d has seed %d, want %d (input order broken)", i, spec.Seed, want)
		}
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(Result) error

func (f sinkFunc) Write(res Result) error { return f(res) }
func (f sinkFunc) Flush() error           { return nil }

// TestTraceWriterErrorSurfaces: a trace writer whose underlying writer
// fails must surface the error from Run's flush path.
func TestTraceWriterErrorSurfaces(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	tw := NewTraceWriter(failingWriter{}, TraceBinary)
	if _, err := Run(context.Background(), spec, WithTrace(tw)); err == nil {
		t.Fatal("trace I/O error vanished")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errWriteFailed }

var errWriteFailed = errTrace("trace write failed")

type errTrace string

func (e errTrace) Error() string { return string(e) }
