package optsync

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func testCampaign(t testing.TB) Campaign {
	return Campaign{
		Name:  "api-test",
		Base:  testSpecs(t, 1)[0],
		Axes:  []Axis{{Field: "faulty", Values: Ints(0, 1)}},
		Seeds: 2,
	}
}

func TestRunCampaignThroughPublicAPI(t *testing.T) {
	store, err := OpenStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	var (
		csvBuf bytes.Buffer
		ticks  int
	)
	report, err := RunCampaign(context.Background(), testCampaign(t),
		WithStore(store),
		WithCampaignWorkers(2),
		WithCampaignSink(NewCSVSink(&csvBuf)),
		WithCampaignProgress(func(done, total int) { ticks++ }))
	if err != nil {
		t.Fatal(err)
	}
	if report.Total != 4 || report.Executed != 4 || ticks != 4 {
		t.Fatalf("accounting: %s (ticks %d)", report.Summary(), ticks)
	}
	if len(report.Groups) != 2 {
		t.Fatalf("groups: %d", len(report.Groups))
	}
	// Per-cell stream: header + 4 rows, in cell order.
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("cell stream has %d lines:\n%s", len(lines), csvBuf.String())
	}
	if !strings.Contains(lines[1], "faulty=0") || !strings.Contains(lines[3], "faulty=1") {
		t.Fatalf("cell stream out of order:\n%s", csvBuf.String())
	}

	// Resume through the facade: all hits, identical aggregates.
	again, err := RunCampaign(context.Background(), testCampaign(t), WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.CacheHits != 4 {
		t.Fatalf("resume recomputed: %s", again.Summary())
	}
	if again.Table().CSV() != report.Table().CSV() {
		t.Fatal("resumed aggregates drifted")
	}

	// Recompute ignores the cache.
	third, err := RunCampaign(context.Background(), testCampaign(t),
		WithStore(store), WithRecompute())
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 4 {
		t.Fatalf("recompute served hits: %s", third.Summary())
	}
}

func TestThresholdSearchThroughPublicAPI(t *testing.T) {
	c := Campaign{
		Base: testSpecs(t, 1)[0],
		Axes: []Axis{{Field: "dmax", Values: Floats(0.006, 0.008, 0.01, 0.012)}},
	}
	report, err := RunThresholdSearch(context.Background(), c, ThresholdSearch{
		Axis:   "dmax",
		Passes: func(r Result) bool { return r.Spec.Params.DMax < 0.009 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Groups) != 1 {
		t.Fatalf("groups: %d", len(report.Groups))
	}
	if g := report.Groups[0]; g.LastPass != "0.008" || g.FirstFail != "0.01" {
		t.Fatalf("bracket = %+v", g)
	}
	if 2*(report.Executed+report.CacheHits) > report.ExhaustiveCells {
		t.Fatalf("search settled more than half the grid: %d of %d",
			report.Executed+report.CacheHits, report.ExhaustiveCells)
	}
}

func TestSpecKeyExported(t *testing.T) {
	spec := testSpecs(t, 1)[0]
	key, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	named := spec
	named.Name = "renamed"
	key2, err := SpecKey(named)
	if err != nil {
		t.Fatal(err)
	}
	if key != key2 {
		t.Fatal("Name participates in the content address")
	}
	canon := CanonicalSpec(spec)
	if canon.Horizon == 0 || canon.Name != "" {
		t.Fatalf("CanonicalSpec did not normalize: %+v", canon)
	}
	fields := AxisFields()
	for _, want := range []string{"n", "f", "dmax", "algo", "attack", "topology", "seed"} {
		found := false
		for _, f := range fields {
			found = found || f == want
		}
		if !found {
			t.Fatalf("AxisFields missing %q (have %v)", want, fields)
		}
	}
}

// brokenWriter accepts nothing: with a buffering sink (CSV), the damage
// only surfaces at Flush — exactly the path that must not vanish.
type brokenWriter struct{}

var errWriterBroken = errors.New("writer broken")

func (brokenWriter) Write([]byte) (int, error) { return 0, errWriterBroken }

// flushFailingSink writes fine but cannot flush.
type flushFailingSink struct{}

var errFlushBroken = errors.New("flush broken")

func (flushFailingSink) Write(Result) error { return nil }
func (flushFailingSink) Flush() error       { return errFlushBroken }

func TestFlushErrorsPropagate(t *testing.T) {
	spec := testSpecs(t, 1)[0]

	// CSV onto a broken writer: Write buffers successfully, Flush fails.
	if _, err := Run(context.Background(), spec,
		WithSink(NewCSVSink(brokenWriter{}))); !errors.Is(err, errWriterBroken) {
		t.Fatalf("Run swallowed the CSV flush error: %v", err)
	}
	if _, err := RunBatch(context.Background(), testSpecs(t, 2),
		WithSink(NewCSVSink(brokenWriter{}))); !errors.Is(err, errWriterBroken) {
		t.Fatalf("RunBatch swallowed the CSV flush error: %v", err)
	}

	// The table sink renders on Flush; a broken writer must surface too.
	if _, err := Run(context.Background(), spec,
		WithSink(NewTableSink(brokenWriter{}))); !errors.Is(err, errWriterBroken) {
		t.Fatalf("Run swallowed the table flush error: %v", err)
	}

	// A sink whose Flush itself fails.
	if _, err := RunBatch(context.Background(), testSpecs(t, 2),
		WithSink(flushFailingSink{})); !errors.Is(err, errFlushBroken) {
		t.Fatalf("RunBatch swallowed the sink flush error: %v", err)
	}

	// Campaign cell streams flush through the same contract.
	if _, err := RunCampaign(context.Background(), testCampaign(t),
		WithCampaignSink(NewCSVSink(brokenWriter{}))); !errors.Is(err, errWriterBroken) {
		t.Fatalf("RunCampaign swallowed the CSV flush error: %v", err)
	}
	if _, err := RunCampaign(context.Background(), testCampaign(t),
		WithCampaignSink(flushFailingSink{})); !errors.Is(err, errFlushBroken) {
		t.Fatalf("RunCampaign swallowed the sink flush error: %v", err)
	}
}
