package optsync

// Option configures Run and RunBatch. Options replace the old pattern of
// threading every knob through a growing Spec struct: runner concerns
// (parallelism, replication, observation, output) stay out of the
// experiment description.
type Option func(*config)

// ProgressEvent reports one finished run inside a batch.
type ProgressEvent struct {
	// Completed runs so far and the batch Total (after seed expansion).
	Completed, Total int
	// Index of the finished run in the expanded batch; completion order
	// is not index order when workers > 1.
	Index int
	// Result of that run.
	Result Result
}

type config struct {
	workers  int
	seeds    int
	progress func(ProgressEvent)
	sinks    []Sink
	specOpts []func(*Spec)
}

func newConfig(opts []Option) *config {
	cfg := &config{seeds: 1}
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

func (c *config) applySpec(spec *Spec) {
	for _, fn := range c.specOpts {
		fn(spec)
	}
}

func (c *config) emit(res Result) error {
	for _, s := range c.sinks {
		if err := s.Write(res); err != nil {
			return err
		}
	}
	return nil
}

func (c *config) flushSinks() error {
	var first error
	for _, s := range c.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WithWorkers bounds the batch worker pool. n <= 0 (and the default)
// means the package default (SetDefaultWorkers, else GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithSeeds replicates each spec k times with consecutive seeds
// (Seed, Seed+1, ..., Seed+k-1) — the standard way to average a scenario
// table cell over independent randomness. k < 1 is treated as 1.
func WithSeeds(k int) Option {
	if k < 1 {
		k = 1
	}
	return func(c *config) { c.seeds = k }
}

// WithProgress installs a callback invoked serially after each finished
// run. It must not block: it runs under the batch lock.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *config) { c.progress = fn }
}

// WithSink streams results to s in input order, independent of worker
// scheduling. Sinks are flushed before Run/RunBatch returns. May be
// given multiple times.
func WithSink(s Sink) Option {
	return func(c *config) { c.sinks = append(c.sinks, s) }
}

// WithSeed sets every spec's base seed.
func WithSeed(seed int64) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Seed = seed })
	}
}

// WithHorizon sets every spec's simulated duration in seconds.
func WithHorizon(seconds float64) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Horizon = seconds })
	}
}

// WithKeepSeries retains the skew time series and pulse log in results.
func WithKeepSeries() Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.KeepSeries = true })
	}
}

// WithTopology sets every spec's network connectivity by registered name
// ("mesh", "wan:4", "ring:6", or a custom RegisterTopology name). The
// empty string restores the default full mesh.
func WithTopology(name string) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Topology = name })
	}
}

// WithPartitions schedules partition/heal churn on every spec, replacing
// any previously set windows.
func WithPartitions(windows ...Partition) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Partitions = windows })
	}
}
