package optsync

import "optsync/internal/probe"

// Option configures Run and RunBatch. Options replace the old pattern of
// threading every knob through a growing Spec struct: runner concerns
// (parallelism, replication, observation, output) stay out of the
// experiment description.
type Option func(*config)

// ProgressEvent reports one finished run inside a batch.
type ProgressEvent struct {
	// Completed runs so far and the batch Total (after seed expansion).
	Completed, Total int
	// Index of the finished run in the expanded batch; completion order
	// is not index order when workers > 1.
	Index int
	// Result of that run.
	Result Result
}

// probeReg is one probe registration: the probe plus its subscription.
type probeReg struct {
	p     probe.Probe
	types []probe.Type
}

// flusher is the finalization contract shared by trace sinks: row trace
// writers and lake writers both buffer, and both report their first I/O
// error from Flush. Run/RunBatch flush every registered sink before
// returning.
type flusher interface{ Flush() error }

type config struct {
	workers  int
	seeds    int
	progress func(ProgressEvent)
	sinks    []Sink
	specOpts []func(*Spec)
	probes   []probeReg
	traces   []flusher
}

func newConfig(opts []Option) *config {
	cfg := &config{seeds: 1}
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

func (c *config) applySpec(spec *Spec) {
	for _, fn := range c.specOpts {
		fn(spec)
	}
}

func (c *config) emit(res Result) error {
	for _, s := range c.sinks {
		if err := s.Write(res); err != nil {
			return err
		}
	}
	return nil
}

func (c *config) flushSinks() error {
	var first error
	for _, s := range c.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	for _, t := range c.traces {
		if err := t.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// synchronizedProbes wraps every registered probe once (one mutex per
// probe for the whole batch), so a single probe can observe all runs of
// a batch with serialized calls.
func (c *config) synchronizedProbes() []probeReg {
	out := make([]probeReg, len(c.probes))
	for i, r := range c.probes {
		out[i] = probeReg{p: probe.Synchronized(r.p), types: r.types}
	}
	return out
}

// WithWorkers bounds the batch worker pool. n <= 0 (and the default)
// means the package default (SetDefaultWorkers, else GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithSeeds replicates each spec k times with consecutive seeds
// (Seed, Seed+1, ..., Seed+k-1) — the standard way to average a scenario
// table cell over independent randomness. k < 1 is treated as 1.
func WithSeeds(k int) Option {
	if k < 1 {
		k = 1
	}
	return func(c *config) { c.seeds = k }
}

// WithProgress installs a callback invoked after each finished run.
//
// Concurrency contract: whatever WithWorkers says, calls are serialized
// under the batch lock and happen-before RunBatch returns — the callback
// may touch shared state without its own locking (a -race test pins
// this). Completion order is not input order when workers > 1. It must
// not block: every worker's result delivery waits on the same lock.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *config) { c.progress = fn }
}

// WithSink streams results to s in input order, independent of worker
// scheduling. Sinks are flushed before Run/RunBatch returns. May be
// given multiple times.
//
// Concurrency contract: Sink.Write and Sink.Flush are always invoked
// serially (under the batch lock, in input order) and happen-before
// RunBatch returns, so sinks need no locking of their own even with
// WithWorkers(n > 1).
func WithSink(s Sink) Option {
	return func(c *config) { c.sinks = append(c.sinks, s) }
}

// WithProbe subscribes p to the run's typed event stream — every message
// send/delivery/drop, pulse, resync, node boot, partition cut/heal, and
// skew sample, as value events with zero allocation on the hot path. No
// types means every type; pass a subset (e.g. MessageEventTypes()...) to
// keep high-rate events away from a slow probe.
//
// In Run, p observes the single run inline. In RunBatch, the same p
// observes every run of the batch: calls are serialized through a mutex,
// but events from concurrently executing runs interleave — aggregate
// across the batch with a Collector, or key on Event fields. Probes
// observe; they cannot perturb the simulation, and results stay
// byte-identical with any probes installed.
func WithProbe(p Probe, types ...EventType) Option {
	return func(c *config) { c.probes = append(c.probes, probeReg{p: p, types: types}) }
}

// WithCollector subscribes a collector to exactly the event types it
// declares. Read its aggregate after Run/RunBatch returns. Same batch
// semantics as WithProbe (one collector folds the whole batch).
func WithCollector(col Collector) Option {
	return func(c *config) { c.probes = append(c.probes, probeReg{p: col, types: col.Types()}) }
}

// WithTrace records the full event stream to t (see NewTraceWriter).
// The writer is flushed before Run/RunBatch returns and its first I/O
// error is returned. In a batch the trace interleaves events of
// concurrent runs; trace single runs (or WithWorkers(1)) when replay
// must reproduce per-run aggregates.
func WithTrace(t *TraceWriter) Option {
	return func(c *config) {
		c.traces = append(c.traces, t)
		c.probes = append(c.probes, probeReg{p: t})
	}
}

// WithLakeTrace records the full event stream to w as a columnar trace
// lake (see NewLakeWriter) — the queryable container, written live with
// no intermediate row trace. The writer is flushed (finalizing the
// container) before Run/RunBatch returns and its first I/O error is
// returned. Batch caveats match WithTrace: concurrent runs interleave in
// one stream.
func WithLakeTrace(w *LakeWriter) Option {
	return func(c *config) {
		c.traces = append(c.traces, w)
		c.probes = append(c.probes, probeReg{p: w})
	}
}

// WithSeed sets every spec's base seed.
func WithSeed(seed int64) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Seed = seed })
	}
}

// WithHorizon sets every spec's simulated duration in seconds.
func WithHorizon(seconds float64) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Horizon = seconds })
	}
}

// WithKeepSeries retains the skew time series and pulse log in results.
func WithKeepSeries() Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.KeepSeries = true })
	}
}

// WithTopology sets every spec's network connectivity by registered name
// ("mesh", "wan:4", "ring:6", or a custom RegisterTopology name). The
// empty string restores the default full mesh.
func WithTopology(name string) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Topology = name })
	}
}

// WithShards sets every spec's shard-worker count for the parallel
// engine: k > 1 partitions the nodes across k workers that drain events
// in dmin-wide safe windows, k == 1 forces the serial engine, and 0
// (the default) picks automatically (serial below n=1024, up to
// min(GOMAXPROCS, 8) workers above). Results are bit-identical at every
// shard count; negative k fails Spec validation.
func WithShards(k int) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Shards = k })
	}
}

// WithPartitions schedules partition/heal churn on every spec, replacing
// any previously set windows.
func WithPartitions(windows ...Partition) Option {
	return func(c *config) {
		c.specOpts = append(c.specOpts, func(s *Spec) { s.Partitions = windows })
	}
}
