package optsync

import (
	"context"

	"optsync/internal/campaign"
	"optsync/internal/fabric"
)

// The distributed-campaign fabric, re-exported as aliases. A coordinator
// (ServeCampaign) owns the expanded cell list and the result store and
// hands out cell leases over a small JSON/HTTP API; stateless workers
// (RunWorker) pull leases, execute them through the simulation pool, and
// report results back. Because cells are content-addressed by SpecKey,
// every failure mode reduces to something already safe: a crashed worker
// is a lease that expires and re-queues, a duplicate report carries a
// byte-identical result and is dropped, and a restarted coordinator
// replays settled cells from the store exactly like a -resume run.
type (
	// FabricServer is the campaign coordinator; it implements
	// http.Handler, so it can be mounted in a larger mux. Most callers
	// want ServeCampaign, which also owns the listener and lifecycle.
	FabricServer = fabric.Server
	// FabricServerOptions tunes coordinator behavior: lease TTL and
	// batch size, background compaction cadence, progress callbacks.
	FabricServerOptions = fabric.ServerOptions
	// FabricServeOptions wraps FabricServerOptions with listener
	// lifecycle knobs (address, readiness hook, shutdown grace,
	// compact-on-exit).
	FabricServeOptions = fabric.ServeOptions
	// FabricWorkerOptions tunes a worker: lease batch size, local
	// simulation parallelism, poll interval, retry backoff, and the
	// report grace window used during shutdown.
	FabricWorkerOptions = fabric.WorkerOptions
	// FabricWorkerStats summarizes one worker run: cells executed,
	// leases taken, RPC retries.
	FabricWorkerStats = fabric.WorkerStats
	// FabricProgress is the coordinator's /progress wire shape.
	FabricProgress = fabric.Progress
	// FabricAggregates is the coordinator's /aggregates wire shape.
	FabricAggregates = fabric.Aggregates
)

// ServeCampaign runs a campaign coordinator until every cell settles or
// ctx is cancelled, then shuts down gracefully (in-flight reports
// finish and are stored) and returns the final report. On cancellation
// the error is ctx's and the report covers the settled prefix; the
// store already holds every settled cell, so serving again — or a plain
// RunCampaign with the same store — resumes exactly where this run
// stopped. The report's aggregates are byte-identical to what
// RunCampaign produces for the same campaign, regardless of how many
// workers contributed.
func ServeCampaign(ctx context.Context, c Campaign, store *Store, opts FabricServeOptions) (*CampaignReport, error) {
	return fabric.Serve(ctx, c, store, opts)
}

// RunWorker runs one stateless worker loop against a coordinator's base
// URL until the campaign completes (nil error), ctx is cancelled, or
// the coordinator stays unreachable past the retry budget. Workers hold
// no campaign state: killing one at any instant only expires a lease.
func RunWorker(ctx context.Context, coordinatorURL string, opts FabricWorkerOptions) (FabricWorkerStats, error) {
	return fabric.NewWorker(coordinatorURL, opts).Run(ctx)
}

// NewCampaignServer builds a coordinator without binding a listener,
// for embedding the fabric API into an existing HTTP server. The
// returned server preloads settled cells from the store (resume
// semantics) and is ready to mount as an http.Handler.
func NewCampaignServer(c Campaign, store *Store, opts FabricServerOptions) (*FabricServer, error) {
	return fabric.NewServer(c, store, opts)
}

// CompactStore folds the store's loose one-file-per-cell tier into an
// append-only indexed segment, returning how many cells were compacted.
// Safe to run while a coordinator is accepting reports against the same
// store.
func CompactStore(s *Store) (campaign.CompactStats, error) {
	return s.Compact()
}

// CompactStats reports one compaction pass.
type CompactStats = campaign.CompactStats
