// Package optsync's root benchmark suite: one benchmark per experiment
// table/figure (T1-T7, F1-F6 in EXPERIMENTS.md), each driving the same
// public API as the CLI, plus batch-throughput benchmarks and
// microbenchmarks of the substrates (event engine, signatures, broadcast
// primitive).
//
// Run everything:
//
//	go test -bench=. -benchmem .
package optsync

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"optsync/internal/clock"
	"optsync/internal/core/bounds"
	"optsync/internal/network"
	"optsync/internal/node"
	"optsync/internal/sig"
	"optsync/internal/sim"
)

func benchParams(n int, v bounds.Variant) bounds.Params {
	return bounds.Params{
		N: n, F: v.MaxFaults(n), Variant: v,
		Rho:  clock.Rho(1e-4),
		DMin: 0.002, DMax: 0.01,
		Period:      1.0,
		InitialSkew: 0.005,
	}.WithDefaults()
}

// mustRun executes one spec through the public runner.
func mustRun(b *testing.B, spec Spec) Result {
	b.Helper()
	res, err := Run(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// scenarioTables regenerates one experiment of the reproduction suite.
func scenarioTables(b *testing.B, id string) []*Table {
	b.Helper()
	s, ok := FindScenario(id)
	if !ok {
		b.Fatalf("scenario %s missing", id)
	}
	tables, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	return tables
}

// runSpec executes one harness run per iteration and reports the key
// reproduction metrics alongside the timing.
func runSpec(b *testing.B, spec Spec) {
	b.Helper()
	var last Result
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		last = mustRun(b, spec)
	}
	b.ReportMetric(last.MaxSkew*1e3, "skew_ms")
	b.ReportMetric(last.SkewBound*1e3, "bound_ms")
	b.ReportMetric(float64(last.CompleteRounds), "rounds")
}

// BenchmarkT1AuthAgreement regenerates a T1 cell: authenticated algorithm
// at optimal resilience with silent faults.
func BenchmarkT1AuthAgreement(b *testing.B) {
	p := benchParams(7, bounds.Auth)
	runSpec(b, Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent, Horizon: 20,
	})
}

// BenchmarkT2PrimitiveAgreement regenerates a T2 cell.
func BenchmarkT2PrimitiveAgreement(b *testing.B) {
	p := benchParams(7, bounds.Primitive)
	runSpec(b, Spec{
		Algo: AlgoPrim, Params: p,
		FaultyCount: p.F, Attack: AttackSilent, Horizon: 20,
	})
}

// BenchmarkT3Accuracy regenerates the headline accuracy comparison (one
// long CNV-under-attack run; the full table is `syncsim -exp T3`).
func BenchmarkT3Accuracy(b *testing.B) {
	p := benchParams(7, bounds.Primitive)
	var last Result
	for i := 0; i < b.N; i++ {
		last = mustRun(b, Spec{
			Algo: AlgoCNV, Params: p,
			FaultyCount: p.F, Attack: AttackBias, Bias: 3 * p.Dmax(),
			Horizon: 120, Seed: int64(i + 1),
		})
	}
	b.ReportMetric(last.EnvHi, "rate")
	b.ReportMetric(last.EnvBoundHi, "rate_bound")
}

// BenchmarkT4AuthResilience regenerates the beyond-resilience rush attack.
func BenchmarkT4AuthResilience(b *testing.B) {
	p := benchParams(5, bounds.Auth)
	var last Result
	for i := 0; i < b.N; i++ {
		last = mustRun(b, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F + 1, Attack: AttackRush,
			RushInterval: p.Period / 5, Horizon: 30, Seed: int64(i + 1),
		})
	}
	b.ReportMetric(last.EnvHi, "rate")
	b.ReportMetric(last.MinPeriod*1e3, "min_period_ms")
}

// BenchmarkT5PrimResilience regenerates the primitive-variant boundary.
func BenchmarkT5PrimResilience(b *testing.B) {
	p := benchParams(7, bounds.Primitive)
	var last Result
	for i := 0; i < b.N; i++ {
		last = mustRun(b, Spec{
			Algo: AlgoPrim, Params: p,
			FaultyCount: p.F + 1, Attack: AttackRush,
			RushInterval: p.Period / 5, Horizon: 30, Seed: int64(i + 1),
		})
	}
	b.ReportMetric(last.EnvHi, "rate")
}

// BenchmarkT6Primitive runs the general broadcast primitive experiment.
func BenchmarkT6Primitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := scenarioTables(b, "T6")
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkT7Messages measures message complexity at n=13.
func BenchmarkT7Messages(b *testing.B) {
	p := benchParams(13, bounds.Auth)
	var last Result
	for i := 0; i < b.N; i++ {
		last = mustRun(b, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 20, Seed: int64(i + 1),
		})
	}
	b.ReportMetric(last.MsgsPerRound, "msgs_per_round")
}

// BenchmarkF1Trace regenerates the sawtooth trace.
func BenchmarkF1Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scenarioTables(b, "F1")
	}
}

// BenchmarkF2SkewVsF runs the f-sweep cell at maximum faults.
func BenchmarkF2SkewVsF(b *testing.B) {
	p := benchParams(13, bounds.Auth)
	runSpec(b, Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent, Horizon: 20,
	})
}

// BenchmarkF3SkewVsDelay runs the selective-signing Theta(d) cell.
func BenchmarkF3SkewVsDelay(b *testing.B) {
	p := benchParams(7, bounds.Auth)
	p.DMax = 0.05
	p.DMin = 0.048
	p = bounds.Params{
		N: p.N, F: p.F, Variant: p.Variant, Rho: p.Rho,
		DMin: p.DMin, DMax: p.DMax, Period: p.Period, InitialSkew: 0.002,
	}.WithDefaults()
	runSpec(b, Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSelective, Horizon: 20,
	})
}

// BenchmarkF4Reintegration runs the late-joiner experiment.
func BenchmarkF4Reintegration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scenarioTables(b, "F4")
	}
}

// BenchmarkF5Envelope runs the long accuracy-envelope fit.
func BenchmarkF5Envelope(b *testing.B) {
	p := benchParams(7, bounds.Auth)
	var last Result
	for i := 0; i < b.N; i++ {
		last = mustRun(b, Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 200, Seed: int64(i + 1),
		})
	}
	b.ReportMetric(last.EnvHi, "rate_hi")
	b.ReportMetric(last.EnvLo, "rate_lo")
}

// BenchmarkF6SkewVsPeriod runs the P-sweep cell at P=10s.
func BenchmarkF6SkewVsPeriod(b *testing.B) {
	p := benchParams(7, bounds.Auth)
	p.Period = 10
	p.Rho = clock.Rho(1e-3)
	runSpec(b, Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent, Horizon: 200,
	})
}

// --- Substrate microbenchmarks ---

// BenchmarkEngineEvents measures raw discrete-event throughput.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.New(1)
	n := 0
	var loop func()
	loop = func() {
		n++
		if n < b.N {
			e.MustAfter(0.001, loop)
		}
	}
	b.ResetTimer()
	e.MustAfter(0.001, loop)
	e.RunAll(0)
}

// BenchmarkNetworkBroadcast measures message fan-out cost (n=25).
func BenchmarkNetworkBroadcast(b *testing.B) {
	e := sim.New(1)
	nt := network.New(e, 25, network.Fixed{D: 0.001}, nil)
	for i := 0; i < 25; i++ {
		nt.Register(i, func(node.ID, network.Message) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nt.Broadcast(i%25, network.Message{Round: i})
		e.RunAll(0)
	}
}

// benchPulseKind tags the benchmark's round announcements.
var benchPulseKind = network.NewKind("bench/pulse")

// noopProbe is the cheapest possible subscriber: the probed benchmark
// variant measures pure fan-out overhead, and the allocation assertion
// proves the emission path itself does not allocate.
type noopProbe struct{ events uint64 }

func (p *noopProbe) OnEvent(Event) { p.events++ }

// benchPulseNet builds the n-node broadcast fixture with a few warm
// rounds so the event buckets and delivery pools are at steady-state
// size: the ladder queue re-anchors its bucket grid on every round, so
// per-bucket occupancy (and with it the retained capacity) needs several
// rounds to reach its high-water mark.
func benchPulseNet(n int, probed bool) (*sim.Engine, *network.Net, *noopProbe) {
	e := sim.New(1)
	nt := network.New(e, n, network.Uniform{Min: 0.002, Max: 0.01}, nil)
	for i := 0; i < n; i++ {
		nt.Register(i, func(node.ID, network.Message) {})
	}
	var p *noopProbe
	if probed {
		p = &noopProbe{}
		e.Probes().Attach(p, MessageEventTypes()...)
	}
	// One double-fan round first: every sender broadcasts twice, so every
	// bucket, arena, and scratch capacity is warmed to ~2x the steady
	// occupancy — random per-round occupancy drift can then never cross a
	// growth threshold mid-measurement.
	for from := 0; from < n; from++ {
		nt.Broadcast(from, network.Message{Kind: benchPulseKind, Round: 0})
		nt.Broadcast(from, network.Message{Kind: benchPulseKind, Round: 0})
	}
	e.RunAll(0)
	for round := 0; round < 3; round++ {
		for from := 0; from < n; from++ {
			nt.Broadcast(from, network.Message{Kind: benchPulseKind, Round: 0})
		}
		e.RunAll(0)
	}
	return e, nt, p
}

// benchmarkPulseRound measures one full "pulse round" of the message
// substrate: every node broadcasts one round announcement and the engine
// drains all deliveries. This is the O(n^2) hot path of every simulated
// resynchronization round, so allocs/op here bound the large-n cost of
// the whole simulator. Before PR 2's typed-envelope/pooled-event refactor
// this cost ~2 allocs per message (a closure and a heap event each); the
// probed variant attaches a no-op probe to every message event type and
// must stay at 0 allocs/op too (BENCH_PR4.json records probe-off vs
// probe-on, CI enforces both).
func benchmarkPulseRound(b *testing.B, n int, probed bool) {
	e, nt, _ := benchPulseNet(n, probed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for from := 0; from < n; from++ {
			nt.Broadcast(from, network.Message{Kind: benchPulseKind, Round: i + 1})
		}
		e.RunAll(0)
	}
	b.ReportMetric(float64(n*n), "msgs/op")
}

// BenchmarkPulseRound sizes: the n=2048 tier (4.2M messages per op) is
// the large-n regime the ladder scheduler targets; it holds the whole
// round's events in the value-inline buckets (~250 MB peak, no GC
// pressure — the buckets contain no pointers) and must stay 0 allocs/op
// like every other size.
func BenchmarkPulseRound(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchmarkPulseRound(b, n, false) })
		b.Run(fmt.Sprintf("n=%d/probed", n), func(b *testing.B) { benchmarkPulseRound(b, n, true) })
	}
}

// TestPulseRoundZeroAllocsWithNoopProbe is the tier-1 (non-bench) guard
// on the probed hot path: a full n=32 pulse round with a no-op probe
// subscribed to every message event type must not allocate.
func TestPulseRoundZeroAllocsWithNoopProbe(t *testing.T) {
	const n = 32
	e, nt, p := benchPulseNet(n, true)
	round := 0
	allocs := testing.AllocsPerRun(20, func() {
		round++
		for from := 0; from < n; from++ {
			nt.Broadcast(from, network.Message{Kind: benchPulseKind, Round: round})
		}
		e.RunAll(0)
	})
	if allocs != 0 {
		t.Fatalf("probed pulse round allocates %v per round", allocs)
	}
	if p.events == 0 {
		t.Fatal("probe saw no events")
	}
}

// benchShardKick turns a kick event into a round announcement from the
// sender it names. The benchmark injects one kick per node per round with
// an explicit key on the sender's lane (Cause = At = the round instant,
// which no engine-assigned key can collide with, since real deliveries
// always have At > Cause); rebinding the exec lane before Broadcast makes
// the fan-out consume the sender's own lane sequence, exactly as node
// code does.
type benchShardKick struct {
	eng *sim.Engine
	nt  *network.Net
}

func (k *benchShardKick) Dispatch(_ sim.Time, m sim.Message) {
	k.eng.SetExecLane(m.From)
	k.nt.Broadcast(int(m.From), network.Message{Kind: benchPulseKind, Round: int(m.Round)})
}

// shardedPulseFixture is benchPulseNet for the conservative parallel
// engine: n nodes striped over k shard engines with persistent parked
// workers, a kick dispatcher per shard, and the Uniform LAN policy whose
// 2ms floor is the lookahead.
type shardedPulseFixture struct {
	coord *sim.Shards
	engs  []*sim.Engine
	tgt   []int
	owner []int32
	n     int
	round int
}

func benchPulseNetSharded(n, k int) *shardedPulseFixture {
	coord := sim.NewShards(1, k, 0.002)
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = int32(i * k / n)
	}
	nets := network.NewSharded(coord, n, network.Uniform{Min: 0.002, Max: 0.01}, nil, owner)
	for _, nt := range nets {
		for i := 0; i < n; i++ {
			nt.Register(i, func(node.ID, network.Message) {})
		}
	}
	f := &shardedPulseFixture{coord: coord, owner: owner, n: n}
	for i := 0; i < k; i++ {
		eng := coord.Shard(i)
		f.engs = append(f.engs, eng)
		f.tgt = append(f.tgt, eng.RegisterDispatcher(&benchShardKick{eng: eng, nt: nets[i]}))
	}
	// Same warm-up shape as benchPulseNet: one double-fan round, then a
	// few steady rounds, so buckets, mailboxes, and merge scratch reach
	// their high-water capacity before measurement.
	f.kickRound(2)
	for i := 0; i < 3; i++ {
		f.kickRound(1)
	}
	return f
}

// kickRound schedules fan broadcasts per node at the next whole-second
// round instant and drains the window machinery to quiescence.
func (f *shardedPulseFixture) kickRound(fan int) {
	f.round++
	at := float64(f.round)
	for from := 0; from < f.n; from++ {
		sh := f.owner[from]
		for c := 0; c < fan; c++ {
			f.engs[sh].ScheduleMsg(
				sim.Key{At: at, Cause: at, Lane: int32(from), Seq: uint32(c)},
				f.tgt[sh],
				sim.Message{From: int32(from), Round: int32(f.round)},
			)
		}
	}
	f.coord.Drain()
}

// BenchmarkPulseRoundSharded is BenchmarkPulseRound on the sharded
// engine: one op is a full n-wide pulse round (n^2 messages) through k
// worker shards, window barriers and cross-shard mailboxes included.
// shards=1 runs the identical machinery with no remote traffic, so the
// shards=8/shards=1 ratio isolates the parallel speedup; on a single
// hardware thread the ratio instead prices the coordination overhead.
// Steady state must stay 0 allocs/op at every shard count, like the
// serial engine (BENCH_PR7.json records the matrix, CI gates it).
func BenchmarkPulseRoundSharded(b *testing.B) {
	for _, n := range []int{512, 2048} {
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, k), func(b *testing.B) {
				f := benchPulseNetSharded(n, k)
				b.Cleanup(f.coord.Close)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.kickRound(1)
				}
				b.ReportMetric(float64(n*n), "msgs/op")
			})
		}
	}
}

// TestShardedPulseRoundZeroAllocs is the tier-1 guard on the sharded hot
// path: a full pulse round across 4 shards — kicks, fan-out, cross-shard
// exchange, barriers — must not allocate once warm.
func TestShardedPulseRoundZeroAllocs(t *testing.T) {
	f := benchPulseNetSharded(32, 4)
	defer f.coord.Close()
	allocs := testing.AllocsPerRun(20, func() { f.kickRound(1) })
	if allocs != 0 {
		t.Fatalf("sharded pulse round allocates %v per round", allocs)
	}
}

// BenchmarkSignHMAC / BenchmarkSignEd25519 compare the signature schemes.
func BenchmarkSignHMAC(b *testing.B) {
	s := sig.NewHMAC(4, 1)
	payload := []byte("optsync/st/round/0000000000000001")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(i%4, payload)
	}
}

func BenchmarkSignEd25519(b *testing.B) {
	s := sig.NewEd25519(4, 1)
	payload := []byte("optsync/st/round/0000000000000001")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(i%4, payload)
	}
}

func BenchmarkVerifyHMAC(b *testing.B) {
	s := sig.NewHMAC(4, 1)
	payload := []byte("optsync/st/round/0000000000000001")
	sg := s.Sign(0, payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Verify(0, payload, sg) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkVerifyEd25519(b *testing.B) {
	s := sig.NewEd25519(4, 1)
	payload := []byte("optsync/st/round/0000000000000001")
	sg := s.Sign(0, payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Verify(0, payload, sg) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkProtocolRound measures end-to-end cost of one simulated
// resynchronization round (n=25, authenticated).
func BenchmarkProtocolRound(b *testing.B) {
	p := benchParams(25, bounds.Auth)
	spec := Spec{
		Algo: AlgoAuth, Params: p,
		FaultyCount: p.F, Attack: AttackSilent,
		Horizon: float64(b.N) + 2, Seed: 1,
	}
	b.ResetTimer()
	res := mustRun(b, spec)
	if res.CompleteRounds == 0 {
		b.Fatal("no rounds")
	}
	b.ReportMetric(float64(res.TotalMsgs)/float64(b.N), "msgs/round")
}

// --- Batch throughput ---

// batchSpecs is a T1-style slate of independent runs.
func batchSpecs(k int) []Spec {
	p := benchParams(7, bounds.Auth)
	specs := make([]Spec, k)
	for i := range specs {
		specs[i] = Spec{
			Algo: AlgoAuth, Params: p,
			FaultyCount: p.F, Attack: AttackSilent,
			Horizon: 20, Seed: int64(i + 1),
		}
	}
	return specs
}

func benchBatch(b *testing.B, workers int) {
	specs := batchSpecs(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(context.Background(), specs, WithWorkers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatchSerial vs BenchmarkRunBatchParallel measure the
// worker-pool speedup on a 16-run slate (near-linear on a multi-core
// host: runs share nothing).
func BenchmarkRunBatchSerial(b *testing.B)   { benchBatch(b, 1) }
func BenchmarkRunBatchParallel(b *testing.B) { benchBatch(b, runtime.GOMAXPROCS(0)) }
