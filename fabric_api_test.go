package optsync

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestFabricThroughPublicAPI drives the whole distributed surface from
// the facade alone: ServeCampaign + two RunWorker loops settle a
// campaign, and the resulting aggregates are identical to a
// single-process RunCampaign of the same campaign.
func TestFabricThroughPublicAPI(t *testing.T) {
	single, err := RunCampaign(context.Background(), testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}

	store, err := OpenStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	type out struct {
		report *CampaignReport
		err    error
	}
	served := make(chan out, 1)
	go func() {
		report, err := ServeCampaign(context.Background(), testCampaign(t), store, FabricServeOptions{
			Ready:         func(addr string) { ready <- addr },
			Linger:        50 * time.Millisecond,
			CompactOnExit: true,
		})
		served <- out{report, err}
	}()
	var url string
	select {
	case addr := <-ready:
		url = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never became ready")
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for wi := range errs {
		wi := wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[wi] = RunWorker(context.Background(), url, FabricWorkerOptions{
				Name:         fmt.Sprintf("api-w%d", wi),
				Batch:        1,
				PollInterval: 2 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	for wi, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", wi, werr)
		}
	}

	res := <-served
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.report.Total != 4 || res.report.Executed != 4 {
		t.Fatalf("fleet accounting: %s", res.report.Summary())
	}
	if !reflect.DeepEqual(res.report.Groups, single.Groups) {
		t.Fatalf("fleet aggregates diverge from single-process:\n got  %+v\n want %+v",
			res.report.Groups, single.Groups)
	}

	// CompactOnExit flushed the store into the segment tier; a plain
	// RunCampaign over the same store answers without executing.
	resumed, err := RunCampaign(context.Background(), testCampaign(t), WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.CacheHits != 4 {
		t.Fatalf("resume over served store recomputed: %s", resumed.Summary())
	}
	if !reflect.DeepEqual(resumed.Groups, single.Groups) {
		t.Fatal("resumed aggregates diverge")
	}
}

// TestCompactStoreThroughPublicAPI exercises the store compaction
// facade on a store populated by RunCampaign.
func TestCompactStoreThroughPublicAPI(t *testing.T) {
	store, err := OpenStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaign(context.Background(), testCampaign(t), WithStore(store)); err != nil {
		t.Fatal(err)
	}
	stats, err := CompactStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 4 {
		t.Fatalf("compacted %d cells, want 4", stats.Compacted)
	}
	resumed, err := RunCampaign(context.Background(), testCampaign(t), WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.CacheHits != 4 {
		t.Fatalf("resume over compacted store recomputed: %s", resumed.Summary())
	}
}
